"""Accuracy gain — the paper's headline efficiency metric (Eq. 2).

``gain = log2(sigma / E) - R`` where ``sigma`` is the standard deviation
of the original data, ``E`` the RMSE of the reconstruction, and ``R`` the
bitrate in bits per point.  It measures the information a compressor
*infers* rather than stores: one extra stored bit should at best halve
the error, so flat regions of a gain-vs-rate curve mark the random-bits
plateau while rising regions mark genuine compression.

``gain`` relates to SNR by ``gain = SNR / (20 log10 2) - R ≈ SNR/6.02 - R``
(Sec. V-B).
"""

from __future__ import annotations

import numpy as np

from .errors import rmse

__all__ = ["accuracy_gain", "accuracy_gain_from_stats", "GAIN_DB_PER_BIT"]

#: 20*log10(2): the dB-per-bit slope that accuracy gain flattens out.
GAIN_DB_PER_BIT = 20.0 * np.log10(2.0)


def accuracy_gain_from_stats(sigma: float, error_rms: float, bpp: float) -> float:
    """Eq. 2 from precomputed statistics.

    Returns ``inf`` for a perfect reconstruction and ``-inf`` for a
    constant (zero-variance) input, for which gain is undefined.
    """
    if sigma <= 0.0:
        return float("-inf")
    if error_rms <= 0.0:
        return float("inf")
    return float(np.log2(sigma / error_rms) - bpp)


def accuracy_gain(
    original: np.ndarray, reconstruction: np.ndarray, bpp: float
) -> float:
    """Eq. 2 computed from arrays plus the achieved bitrate."""
    sigma = float(np.asarray(original, dtype=np.float64).std())
    return accuracy_gain_from_stats(sigma, rmse(original, reconstruction), bpp)
