"""Evaluation metrics: RMSE/PSNR/max-PWE, accuracy gain (Eq. 2), SSIM."""

from .errors import bitrate_bpp, max_pwe, mse, psnr, rmse, snr_db
from .gain import GAIN_DB_PER_BIT, accuracy_gain, accuracy_gain_from_stats
from .ssim import ssim

__all__ = [
    "GAIN_DB_PER_BIT",
    "accuracy_gain",
    "accuracy_gain_from_stats",
    "bitrate_bpp",
    "max_pwe",
    "mse",
    "psnr",
    "rmse",
    "snr_db",
    "ssim",
]
