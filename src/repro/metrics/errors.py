"""Error metrics used throughout the paper's evaluation.

Every pointwise metric takes an optional ``mask`` — a boolean array
marking the *valid* samples — so fields with NaN/Inf regions (ocean
land masks, overflowed diagnostics; see :mod:`repro.core.mask`) can be
scored on exactly the samples the PWE contract covers.  ``mask=None``
keeps the historical behavior of scoring every sample.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidArgumentError

__all__ = ["mse", "rmse", "max_pwe", "psnr", "snr_db", "bitrate_bpp"]


def _pair(
    a: np.ndarray, b: np.ndarray, mask: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise InvalidArgumentError(f"shape mismatch {a.shape} vs {b.shape}")
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != a.shape:
            raise InvalidArgumentError(
                f"mask shape {mask.shape} does not match data shape {a.shape}"
            )
        a, b = a[mask], b[mask]
    if a.size == 0:
        raise InvalidArgumentError("no valid samples to score")
    return a, b


def mse(
    original: np.ndarray,
    reconstruction: np.ndarray,
    mask: np.ndarray | None = None,
) -> float:
    """Mean squared error (over the valid samples when ``mask`` given)."""
    a, b = _pair(original, reconstruction, mask)
    return float(np.mean((a - b) ** 2))


def rmse(
    original: np.ndarray,
    reconstruction: np.ndarray,
    mask: np.ndarray | None = None,
) -> float:
    """Root-mean-square error (the E of the accuracy-gain formula)."""
    return float(np.sqrt(mse(original, reconstruction, mask)))


def max_pwe(
    original: np.ndarray,
    reconstruction: np.ndarray,
    mask: np.ndarray | None = None,
) -> float:
    """Maximum point-wise error — the quantity SPERR bounds."""
    a, b = _pair(original, reconstruction, mask)
    return float(np.abs(a - b).max())


def psnr(
    original: np.ndarray,
    reconstruction: np.ndarray,
    mask: np.ndarray | None = None,
) -> float:
    """Peak signal-to-noise ratio in dB, peak = data range of the original."""
    a, b = _pair(original, reconstruction, mask)
    rng = float(a.max() - a.min())
    e = float(np.sqrt(np.mean((a - b) ** 2)))
    if e == 0.0:
        return float("inf")
    if rng == 0.0:
        return float("-inf")
    return 20.0 * np.log10(rng / e)


def snr_db(
    original: np.ndarray,
    reconstruction: np.ndarray,
    mask: np.ndarray | None = None,
) -> float:
    """Signal-to-noise ratio in dB using the original's standard deviation."""
    a, b = _pair(original, reconstruction, mask)
    sigma = float(a.std())
    e = float(np.sqrt(np.mean((a - b) ** 2)))
    if e == 0.0:
        return float("inf")
    if sigma == 0.0:
        return float("-inf")
    return 20.0 * np.log10(sigma / e)


def bitrate_bpp(nbytes: int, npoints: int) -> float:
    """Bits per point of a compressed payload."""
    if npoints <= 0:
        raise InvalidArgumentError("npoints must be positive")
    return 8.0 * nbytes / npoints
