"""Error metrics used throughout the paper's evaluation."""

from __future__ import annotations

import numpy as np

from ..errors import InvalidArgumentError

__all__ = ["mse", "rmse", "max_pwe", "psnr", "snr_db", "bitrate_bpp"]


def _pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise InvalidArgumentError(f"shape mismatch {a.shape} vs {b.shape}")
    if a.size == 0:
        raise InvalidArgumentError("empty arrays have no error metrics")
    return a, b


def mse(original: np.ndarray, reconstruction: np.ndarray) -> float:
    """Mean squared error."""
    a, b = _pair(original, reconstruction)
    return float(np.mean((a - b) ** 2))


def rmse(original: np.ndarray, reconstruction: np.ndarray) -> float:
    """Root-mean-square error (the E of the accuracy-gain formula)."""
    return float(np.sqrt(mse(original, reconstruction)))


def max_pwe(original: np.ndarray, reconstruction: np.ndarray) -> float:
    """Maximum point-wise error — the quantity SPERR bounds."""
    a, b = _pair(original, reconstruction)
    return float(np.abs(a - b).max())


def psnr(original: np.ndarray, reconstruction: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB, peak = data range of the original."""
    a, b = _pair(original, reconstruction)
    rng = float(a.max() - a.min())
    e = rmse(a, b)
    if e == 0.0:
        return float("inf")
    if rng == 0.0:
        return float("-inf")
    return 20.0 * np.log10(rng / e)


def snr_db(original: np.ndarray, reconstruction: np.ndarray) -> float:
    """Signal-to-noise ratio in dB using the original's standard deviation."""
    a, b = _pair(original, reconstruction)
    sigma = float(a.std())
    e = rmse(a, b)
    if e == 0.0:
        return float("inf")
    if sigma == 0.0:
        return float("-inf")
    return 20.0 * np.log10(sigma / e)


def bitrate_bpp(nbytes: int, npoints: int) -> float:
    """Bits per point of a compressed payload."""
    if npoints <= 0:
        raise InvalidArgumentError("npoints must be positive")
    return 8.0 * nbytes / npoints
