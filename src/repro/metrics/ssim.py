"""Structural similarity (SSIM), the domain-specific metric the paper
points to for use-case-specific evaluation (Sec. VI-C, [39]).

Implemented with uniform local windows over n-D arrays via
``scipy.ndimage.uniform_filter``, following the standard single-scale
SSIM formulation of Wang & Bovik.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import uniform_filter

from ..errors import InvalidArgumentError

__all__ = ["ssim"]


def ssim(
    original: np.ndarray,
    reconstruction: np.ndarray,
    *,
    window: int = 7,
    k1: float = 0.01,
    k2: float = 0.03,
) -> float:
    """Mean SSIM over the array; 1.0 means structurally identical."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstruction, dtype=np.float64)
    if a.shape != b.shape:
        raise InvalidArgumentError(f"shape mismatch {a.shape} vs {b.shape}")
    if min(a.shape) < window:
        raise InvalidArgumentError(
            f"window {window} larger than smallest dimension of {a.shape}"
        )
    rng = float(a.max() - a.min())
    if rng == 0.0:
        return 1.0 if np.array_equal(a, b) else 0.0
    c1 = (k1 * rng) ** 2
    c2 = (k2 * rng) ** 2

    mu_a = uniform_filter(a, size=window)
    mu_b = uniform_filter(b, size=window)
    mu_aa = uniform_filter(a * a, size=window)
    mu_bb = uniform_filter(b * b, size=window)
    mu_ab = uniform_filter(a * b, size=window)

    var_a = np.maximum(mu_aa - mu_a**2, 0.0)
    var_b = np.maximum(mu_bb - mu_b**2, 0.0)
    cov = mu_ab - mu_a * mu_b

    num = (2 * mu_a * mu_b + c1) * (2 * cov + c2)
    den = (mu_a**2 + mu_b**2 + c1) * (var_a + var_b + c2)
    return float(np.mean(num / den))
