"""Command-line interface: ``sperr compress|decompress|info|store|serve``.

Mirrors the ergonomics of the real SPERR command-line tool: an input
array (``.npy``) is compressed under either a point-wise error tolerance
(``--pwe`` or the ``--idx`` label of Table I) or a target bitrate
(``--bpp``), producing a self-contained ``.sperr`` container.  Beyond
single files, ``sperr store`` builds and queries sharded random-access
stores and ``sperr serve`` exposes a store over the async compression
service (``docs/service.md``).
"""

from __future__ import annotations

import argparse
import contextlib
import sys

import numpy as np

from .core import PweMode, SizeMode, compress, decompress, tolerance_from_idx
from .errors import InvalidArgumentError, ReproError, StreamFormatError, UnsupportedModeError

__all__ = ["main", "build_parser", "EXIT_ERROR", "EXIT_BAD_ARGS", "EXIT_CORRUPT"]

#: Exit codes: 1 = generic library error, 2 = bad arguments, 3 = corrupt
#: or unreadable stream.  Scripts can branch on them without parsing text.
EXIT_ERROR = 1
EXIT_BAD_ARGS = 2
EXIT_CORRUPT = 3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sperr",
        description="SPERR (pure-Python reproduction): lossy scientific data "
        "compression with a point-wise error guarantee.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    c = sub.add_parser("compress", help="compress a .npy array into a .sperr container")
    c.add_argument("input", help="input array (.npy, 1-D to 3-D float data)")
    c.add_argument("output", help="output container path")
    bound = c.add_mutually_exclusive_group(required=True)
    bound.add_argument("--pwe", type=float, help="absolute point-wise error tolerance")
    bound.add_argument(
        "--idx", type=int, help="tolerance label: t = Range / 2**idx (Table I)"
    )
    bound.add_argument("--bpp", type=float, help="target bitrate (bits per point)")
    c.add_argument("--chunk", type=int, default=None, help="cubic chunk extent")
    c.add_argument(
        "--mode", default="quality", choices=("quality", "fast", "adaptive"),
        help="codec routing policy: quality = SPERR everywhere, fast = the "
        "SZx-style tier everywhere, adaptive = per-chunk dispatch "
        "(fast/adaptive need --pwe or --idx)",
    )
    c.add_argument(
        "--wavelet", default="cdf97", choices=("cdf97", "cdf53", "haar"),
        help="wavelet filter (default cdf97)",
    )
    c.add_argument(
        "--workers", type=int, default=None,
        help="parallel workers (threads) for chunked compression",
    )
    c.add_argument("--verbose", action="store_true", help="print a cost summary")
    c.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a Chrome trace_event JSON of the per-stage spans to PATH "
        "(load it in chrome://tracing or Perfetto)",
    )

    d = sub.add_parser("decompress", help="reconstruct a .npy array from a container")
    d.add_argument("input", help="input .sperr container")
    d.add_argument("output", help="output array path (.npy)")
    d.add_argument(
        "--salvage", action="store_true",
        help="recover every intact chunk of a damaged container instead of "
        "failing; damaged chunks are filled with --fill-value",
    )
    d.add_argument(
        "--fill-value", type=float, default=None,
        help="fill for unrecoverable chunks in --salvage mode (default NaN); "
        "only valid together with --salvage",
    )
    d.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a Chrome trace_event JSON of the per-stage spans to PATH",
    )

    i = sub.add_parser("info", help="summarize a .sperr container")
    i.add_argument("input", help="input .sperr container")

    pk = sub.add_parser(
        "pack", help="compress several .npy snapshots into one time-series archive"
    )
    pk.add_argument("inputs", nargs="+", help="input arrays (.npy), one per frame")
    pk.add_argument("output", help="output archive path")
    pk_bound = pk.add_mutually_exclusive_group(required=True)
    pk_bound.add_argument("--pwe", type=float, help="absolute PWE tolerance (all frames)")
    pk_bound.add_argument(
        "--idx", type=int, help="per-frame tolerance label: t = Range / 2**idx"
    )
    pk.add_argument("--chunk", type=int, default=None, help="cubic chunk extent")

    ex = sub.add_parser("extract", help="decompress one frame of an archive")
    ex.add_argument("input", help="input time-series archive")
    ex.add_argument("index", type=int, help="frame index (negative counts from the end)")
    ex.add_argument("output", help="output array path (.npy)")

    st = sub.add_parser(
        "store", help="build and query a random-access compressed-array store"
    )
    st_sub = st.add_subparsers(dest="store_command", required=True)

    sb = st_sub.add_parser(
        "build", help="compress .npy arrays into a sharded store directory"
    )
    sb.add_argument("inputs", nargs="+", help="input arrays (.npy), one per frame")
    sb.add_argument("store", help="output store directory")
    sb_bound = sb.add_mutually_exclusive_group(required=True)
    sb_bound.add_argument("--pwe", type=float, help="absolute point-wise error tolerance")
    sb_bound.add_argument(
        "--idx", type=int, help="tolerance label: t = Range / 2**idx (first frame)"
    )
    sb_bound.add_argument("--bpp", type=float, help="target bitrate (bits per point)")
    sb.add_argument("--chunk", type=int, default=None, help="cubic chunk extent")
    sb.add_argument(
        "--mode", default="quality", choices=("quality", "fast", "adaptive"),
        help="codec routing policy per chunk (fast/adaptive need --pwe/--idx)",
    )
    sb.add_argument(
        "--wavelet", default="cdf97", choices=("cdf97", "cdf53", "haar"),
        help="wavelet filter (default cdf97)",
    )
    sb.add_argument(
        "--shard-size", type=int, default=None,
        help="shard rotation threshold in bytes (default 4 MiB)",
    )
    sb.add_argument(
        "--workers", type=int, default=None,
        help="parallel workers (threads) for chunked compression",
    )

    sg = st_sub.add_parser(
        "get", help="decode a window of a store into a .npy array"
    )
    sg.add_argument("store", help="store directory")
    sg.add_argument("output", help="output array path (.npy)")
    sg.add_argument(
        "--window", default=None, metavar="SPEC",
        help="comma-separated per-axis selection, e.g. '8:40,0:32,:' or '7,:,:' "
        "(default: the full array)",
    )
    sg.add_argument("--frame", type=int, default=0, help="frame index (default 0)")
    sg.add_argument(
        "--level", type=int, default=0,
        help="coarsening level: skip this many inverse wavelet levels (default 0)",
    )
    sg.add_argument(
        "--budget", type=int, default=None,
        help="cap decoded compressed bytes for this read (SPECK truncation)",
    )
    sg.add_argument(
        "--salvage", action="store_true",
        help="fill damaged chunks with --fill-value instead of failing",
    )
    sg.add_argument(
        "--fill-value", type=float, default=None,
        help="fill for damaged chunks in --salvage mode (default NaN)",
    )
    sg.add_argument(
        "--workers", type=int, default=None,
        help="parallel workers (threads) for chunk decoding",
    )
    sg.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a Chrome trace_event JSON of the read's spans to PATH",
    )

    si = st_sub.add_parser("info", help="summarize a store directory")
    si.add_argument("store", help="store directory")

    sv = sub.add_parser(
        "serve",
        help="serve a store over the async compression service "
        "(window reads, compress, decompress)",
    )
    sv.add_argument(
        "store", nargs="?", default=None,
        help="store directory to serve (omit for a store-less "
        "compress/decompress service)",
    )
    sv.add_argument("--host", default="127.0.0.1", help="bind address")
    sv.add_argument(
        "--port", type=int, default=9876,
        help="bind port (0 = ephemeral; default 9876)",
    )
    sv.add_argument(
        "--workers", type=int, default=4,
        help="worker threads for decode/compress jobs (default 4)",
    )
    sv.add_argument(
        "--cache-bytes", type=int, default=None,
        help="global decoded-chunk cache ceiling in bytes (default 64 MiB)",
    )
    sv.add_argument(
        "--tenant-quota", type=int, default=None,
        help="per-tenant cache quota in bytes (default: the ceiling)",
    )
    sv.add_argument(
        "--max-inflight", type=int, default=8,
        help="per-tenant in-flight request cap before backpressure",
    )
    sv.add_argument(
        "--max-pending", type=int, default=64,
        help="global admitted-request cap before backpressure",
    )
    sv.add_argument(
        "--batch-hold-ms", type=float, default=0.0,
        help="gathering delay per read batch (coalescing window, ms)",
    )

    cmp_ = sub.add_parser(
        "compare",
        help="run the paper's comparison suite (SPERR vs SZ/ZFP/TTHRESH/MGARD-like) "
        "on a .npy array",
    )
    cmp_.add_argument("input", help="input array (.npy)")
    cmp_.add_argument(
        "--idx", type=int, default=16, help="tolerance label: t = Range / 2**idx"
    )
    cmp_.add_argument(
        "--compressors",
        default="sperr,sz-like,zfp-like,mgard-like",
        help="comma-separated subset of: sperr, sz-like, zfp-like, tthresh-like, mgard-like",
    )

    sc = sub.add_parser(
        "scorecard",
        help="run the codec x scenario robustness matrix and print the table",
    )
    sc.add_argument(
        "--full", action="store_true",
        help="run every registered scenario (default: the tier-1 smoke subset)",
    )
    sc.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the scorecard as JSON to PATH (the CI artifact)",
    )
    sc.add_argument(
        "--codecs", default=None,
        help="comma-separated codec subset, incl. 'adaptive' for the "
        "dispatching pipeline row (default: every codec + adaptive)",
    )
    return parser


@contextlib.contextmanager
def _maybe_trace(path: str | None, name: str):
    """Collect a span trace around the wrapped block and write it to
    ``path`` as Chrome trace JSON; no-op context when ``path`` is None."""
    if path is None:
        yield None
        return
    from . import obs

    with obs.trace(name) as tracer:
        yield tracer
    obs.write_chrome_trace(tracer.report(), path)


def _cmd_compress(args: argparse.Namespace) -> int:
    data = np.load(args.input)
    if args.bpp is not None:
        mode: PweMode | SizeMode = SizeMode(bpp=args.bpp)
    elif args.idx is not None:
        mode = PweMode(tolerance_from_idx(data, args.idx))
    else:
        mode = PweMode(args.pwe)
    with _maybe_trace(args.trace, "sperr.cli.compress") as tracer:
        result = compress(
            data,
            mode,
            chunk_shape=args.chunk,
            wavelet=args.wavelet,
            executor="thread" if args.workers else "serial",
            workers=args.workers,
            codec=args.mode,
        )
    with open(args.output, "wb") as f:
        f.write(result.payload)
    if args.verbose:
        print(f"input:    {data.shape} {data.dtype} ({data.nbytes} bytes)")
        print(f"output:   {result.nbytes} bytes ({result.bpp:.3f} bpp)")
        print(f"ratio:    {data.nbytes / result.nbytes:.1f}x")
        print(f"chunks:   {len(result.reports)}")
        print(f"outliers: {result.n_outliers}")
        if tracer is not None:
            from . import obs

            print(obs.format_stage_table(tracer.report()))
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    if args.fill_value is not None and not args.salvage:
        raise InvalidArgumentError("--fill-value requires --salvage")
    with open(args.input, "rb") as f:
        payload = f.read()
    with _maybe_trace(args.trace, "sperr.cli.decompress"):
        if args.salvage:
            fill = float("nan") if args.fill_value is None else args.fill_value
            result = decompress(payload, on_error="salvage", fill_value=fill)
            report = result.report
            if not report.ok:
                print(f"salvage: {report.summary()}", file=sys.stderr)
                for note in report.notes:
                    print(f"salvage: {note}", file=sys.stderr)
            out = result.data
        else:
            out = decompress(payload)
    np.save(args.output, out)
    return 0


_MODE_NAMES = {0: "PWE-bounded", 1: "size-bounded", 2: "PSNR-bounded"}


def _cmd_info(args: argparse.Namespace) -> int:
    from .core.container import parse_container
    from .core.mask import decode_mask, mask_summary

    with open(args.input, "rb") as f:
        payload = f.read()
    parsed = parse_container(payload)
    npoints = int(np.prod(parsed.shape))
    crc_note = "CRC-protected" if parsed.format_version >= 2 else "no checksums"
    print(f"format:   v{parsed.format_version} ({crc_note})")
    print(f"shape:    {parsed.shape}")
    print(f"dtype:    {parsed.dtype}")
    print(f"mode:     {_MODE_NAMES.get(parsed.mode_code, f'code {parsed.mode_code}')}")
    print(f"chunks:   {len(parsed.chunks)}")
    if parsed.codec_tags:
        names = ("sperr", "szx", "stored")
        counts = {n: 0 for n in names}
        for t in parsed.codec_tags:
            counts[names[t]] += 1
        routed = ", ".join(f"{n}={c}" for n, c in counts.items() if c)
        print(f"codecs:   {routed}")
    print(f"size:     {len(payload)} bytes ({8.0 * len(payload) / npoints:.3f} bpp)")
    if parsed.mask_blob is not None:
        counts = mask_summary(decode_mask(parsed.mask_blob, npoints))
        print(
            f"mask:     {counts['masked']}/{npoints} samples non-finite "
            f"(NaN {counts['nan']}, +Inf {counts['pos_inf']}, "
            f"-Inf {counts['neg_inf']}); {len(parsed.mask_blob)}-byte RLE blob"
        )
    else:
        print("mask:     none (fully finite input)")
    return 0


def _cmd_scorecard(args: argparse.Namespace) -> int:
    import json

    from .analysis import format_scorecard, run_scorecard
    from .compressors import ALL_COMPRESSORS

    codecs = None
    if args.codecs:
        known = set(ALL_COMPRESSORS) | {"adaptive"}
        codecs = [n.strip() for n in args.codecs.split(",") if n.strip()]
        unknown = [n for n in codecs if n not in known]
        if unknown:
            print(
                f"error: unknown compressor(s) {unknown}; choose from "
                f"{sorted(known)}",
                file=sys.stderr,
            )
            return EXIT_BAD_ARGS
    card = run_scorecard(smoke_only=not args.full, codecs=codecs)
    print(format_scorecard(card))
    if args.json:
        with open(args.json, "w") as f:
            json.dump(card.to_dict(), f, indent=2)
        print(f"wrote {args.json}")
    return EXIT_ERROR if card.n_failed else 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .analysis import format_table, rd_point
    from .compressors import ALL_COMPRESSORS

    data = np.load(args.input)
    names = [n.strip() for n in args.compressors.split(",") if n.strip()]
    rows = []
    for name in names:
        if name not in ALL_COMPRESSORS:
            print(
                f"error: unknown compressor {name!r}; choose from "
                f"{sorted(ALL_COMPRESSORS)}",
                file=sys.stderr,
            )
            return EXIT_BAD_ARGS
        comp = ALL_COMPRESSORS[name]()
        p = rd_point(comp, data, args.idx)
        rows.append(
            [
                name,
                f"{p.bpp:.2f}",
                f"{p.psnr_db:.1f}",
                f"{p.gain:.2f}",
                f"{p.max_err:.3e}",
                "yes" if p.satisfied else "NO",
                f"{p.compress_seconds:.2f}s",
            ]
        )
    print(f"comparison at idx={args.idx} (t = Range / 2**{args.idx}):\n")
    print(
        format_table(
            ["compressor", "bpp", "PSNR dB", "gain", "max err", "bound ok", "time"],
            rows,
        )
    )
    return 0


def _parse_window(spec: str | None):
    """Parse a ``--window`` spec like ``"8:40,0:32,:"`` into slices/ints.

    Components are comma-separated; each is ``:``, ``a:b`` (either side
    optional, Python semantics), or a bare integer index.
    """
    if spec is None:
        return None
    window = []
    for part in spec.split(","):
        part = part.strip()
        if ":" in part:
            pieces = part.split(":")
            if len(pieces) != 2:
                raise InvalidArgumentError(
                    f"bad window component {part!r} (use 'a:b', ':' or an index)"
                )
            try:
                lo = int(pieces[0]) if pieces[0] else None
                hi = int(pieces[1]) if pieces[1] else None
            except ValueError:
                raise InvalidArgumentError(f"bad window component {part!r}") from None
            window.append(slice(lo, hi))
        else:
            try:
                window.append(int(part))
            except ValueError:
                raise InvalidArgumentError(f"bad window component {part!r}") from None
    return tuple(window)


def _cmd_store(args: argparse.Namespace) -> int:
    from .store import StoreWriter, open_store

    if args.store_command == "build":
        frames = [np.load(path) for path in args.inputs]
        if args.bpp is not None:
            mode: PweMode | SizeMode = SizeMode(bpp=args.bpp)
        elif args.idx is not None:
            mode = PweMode(tolerance_from_idx(frames[0], args.idx))
        else:
            mode = PweMode(args.pwe)
        kwargs = {}
        if args.shard_size is not None:
            kwargs["shard_bytes"] = args.shard_size
        with StoreWriter(
            args.store,
            mode,
            chunk_shape=args.chunk,
            wavelet=args.wavelet,
            executor="thread" if args.workers else "serial",
            workers=args.workers,
            codec=args.mode,
            **kwargs,
        ) as writer:
            total = 0
            for frame in frames:
                total += writer.append(frame).nbytes
        raw = sum(f.nbytes for f in frames)
        print(
            f"stored {len(frames)} frame(s): {raw} -> {total} payload bytes "
            f"({raw / total:.1f}x)"
        )
        return 0

    if args.store_command == "get":
        if args.fill_value is not None and not args.salvage:
            raise InvalidArgumentError("--fill-value requires --salvage")
        arr = open_store(
            args.store,
            executor="thread" if args.workers else "serial",
            workers=args.workers,
        )
        window = _parse_window(args.window)
        kwargs = {
            "frame": args.frame,
            "level": args.level,
            "budget": args.budget,
        }
        with _maybe_trace(args.trace, "sperr.cli.store.get"):
            if args.salvage:
                fill = float("nan") if args.fill_value is None else args.fill_value
                result = arr.read_window(
                    window, on_error="salvage", fill_value=fill, **kwargs
                )
                if not result.report.ok:
                    print(f"salvage: {result.report.summary()}", file=sys.stderr)
                    for note in result.report.notes:
                        print(f"salvage: {note}", file=sys.stderr)
                out = result.data
            else:
                out = arr.read_window(window, **kwargs)
        np.save(args.output, out)
        print(f"wrote {out.shape} {out.dtype} to {args.output}")
        return 0

    info = open_store(args.store, cache_bytes=0).info()
    print(f"shape:     {info['shape']}")
    print(f"dtype:     {info['dtype']}")
    mode_name = _MODE_NAMES.get(info["mode_code"], f"code {info['mode_code']}")
    print(f"mode:      {mode_name}")
    print(f"wavelet:   {info['wavelet']} (levels: {info['levels'] or 'auto'})")
    print(f"frames:    {info['n_frames']}")
    print(f"chunks:    {info['n_chunks']} per frame (max level {info['max_level']})")
    print(f"shards:    {info['n_shards']}")
    print(f"payload:   {info['payload_bytes']} bytes")
    if info.get("codec_counts"):
        routed = ", ".join(
            f"{n}={c}" for n, c in info["codec_counts"].items() if c
        )
        print(f"codecs:    {routed}")
    if info.get("masked_frames"):
        print(
            f"masks:     frames {info['masked_frames']} carry non-finite "
            f"samples ({info['mask_bytes']} mask bytes)"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service import CompressionService, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_inflight_per_tenant=args.max_inflight,
        max_pending=args.max_pending,
        batch_hold_s=args.batch_hold_ms / 1e3,
    )
    if args.cache_bytes is not None:
        config.cache_bytes = args.cache_bytes
    if args.tenant_quota is not None:
        config.tenant_quota_bytes = args.tenant_quota
    service = CompressionService(args.store, config=config)

    async def run() -> None:
        host, port = await service.start()
        target = args.store if args.store is not None else "(no store)"
        print(f"serving {target} on {host}:{port} - ctrl-c to stop")
        await service.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("\nstopped")
    return 0


def _cmd_pack(args: argparse.Namespace) -> int:
    from .core import compress_frames

    frames = [np.load(path) for path in args.inputs]
    if args.idx is not None:
        modes = [PweMode(tolerance_from_idx(f, args.idx)) for f in frames]
    else:
        modes = [PweMode(args.pwe)] * len(frames)
    payload, results = compress_frames(frames, modes, chunk_shape=args.chunk)
    with open(args.output, "wb") as f:
        f.write(payload)
    raw = sum(fr.nbytes for fr in frames)
    print(
        f"packed {len(frames)} frames: {raw} -> {len(payload)} bytes "
        f"({raw / len(payload):.1f}x)"
    )
    return 0


def _cmd_extract(args: argparse.Namespace) -> int:
    from .core import decompress_frame

    with open(args.input, "rb") as f:
        payload = f.read()
    np.save(args.output, decompress_frame(payload, args.index))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "compress":
            return _cmd_compress(args)
        if args.command == "decompress":
            return _cmd_decompress(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "pack":
            return _cmd_pack(args)
        if args.command == "extract":
            return _cmd_extract(args)
        if args.command == "store":
            return _cmd_store(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "scorecard":
            return _cmd_scorecard(args)
        return _cmd_info(args)
    except (InvalidArgumentError, UnsupportedModeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BAD_ARGS
    except StreamFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_CORRUPT
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())
