"""Command-line interface: ``sperr compress|decompress|info``.

Mirrors the ergonomics of the real SPERR command-line tool: an input
array (``.npy``) is compressed under either a point-wise error tolerance
(``--pwe`` or the ``--idx`` label of Table I) or a target bitrate
(``--bpp``), producing a self-contained ``.sperr`` container.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .core import PweMode, SizeMode, compress, decompress, tolerance_from_idx
from .errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sperr",
        description="SPERR (pure-Python reproduction): lossy scientific data "
        "compression with a point-wise error guarantee.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    c = sub.add_parser("compress", help="compress a .npy array into a .sperr container")
    c.add_argument("input", help="input array (.npy, 1-D to 3-D float data)")
    c.add_argument("output", help="output container path")
    bound = c.add_mutually_exclusive_group(required=True)
    bound.add_argument("--pwe", type=float, help="absolute point-wise error tolerance")
    bound.add_argument(
        "--idx", type=int, help="tolerance label: t = Range / 2**idx (Table I)"
    )
    bound.add_argument("--bpp", type=float, help="target bitrate (bits per point)")
    c.add_argument("--chunk", type=int, default=None, help="cubic chunk extent")
    c.add_argument(
        "--wavelet", default="cdf97", choices=("cdf97", "cdf53", "haar"),
        help="wavelet filter (default cdf97)",
    )
    c.add_argument(
        "--workers", type=int, default=None,
        help="parallel workers (threads) for chunked compression",
    )
    c.add_argument("--verbose", action="store_true", help="print a cost summary")

    d = sub.add_parser("decompress", help="reconstruct a .npy array from a container")
    d.add_argument("input", help="input .sperr container")
    d.add_argument("output", help="output array path (.npy)")

    i = sub.add_parser("info", help="summarize a .sperr container")
    i.add_argument("input", help="input .sperr container")

    pk = sub.add_parser(
        "pack", help="compress several .npy snapshots into one time-series archive"
    )
    pk.add_argument("inputs", nargs="+", help="input arrays (.npy), one per frame")
    pk.add_argument("output", help="output archive path")
    pk_bound = pk.add_mutually_exclusive_group(required=True)
    pk_bound.add_argument("--pwe", type=float, help="absolute PWE tolerance (all frames)")
    pk_bound.add_argument(
        "--idx", type=int, help="per-frame tolerance label: t = Range / 2**idx"
    )
    pk.add_argument("--chunk", type=int, default=None, help="cubic chunk extent")

    ex = sub.add_parser("extract", help="decompress one frame of an archive")
    ex.add_argument("input", help="input time-series archive")
    ex.add_argument("index", type=int, help="frame index (negative counts from the end)")
    ex.add_argument("output", help="output array path (.npy)")

    cmp_ = sub.add_parser(
        "compare",
        help="run the paper's comparison suite (SPERR vs SZ/ZFP/TTHRESH/MGARD-like) "
        "on a .npy array",
    )
    cmp_.add_argument("input", help="input array (.npy)")
    cmp_.add_argument(
        "--idx", type=int, default=16, help="tolerance label: t = Range / 2**idx"
    )
    cmp_.add_argument(
        "--compressors",
        default="sperr,sz-like,zfp-like,mgard-like",
        help="comma-separated subset of: sperr, sz-like, zfp-like, tthresh-like, mgard-like",
    )
    return parser


def _cmd_compress(args: argparse.Namespace) -> int:
    data = np.load(args.input)
    if args.bpp is not None:
        mode: PweMode | SizeMode = SizeMode(bpp=args.bpp)
    elif args.idx is not None:
        mode = PweMode(tolerance_from_idx(data, args.idx))
    else:
        mode = PweMode(args.pwe)
    result = compress(
        data,
        mode,
        chunk_shape=args.chunk,
        wavelet=args.wavelet,
        executor="thread" if args.workers else "serial",
        workers=args.workers,
    )
    with open(args.output, "wb") as f:
        f.write(result.payload)
    if args.verbose:
        print(f"input:    {data.shape} {data.dtype} ({data.nbytes} bytes)")
        print(f"output:   {result.nbytes} bytes ({result.bpp:.3f} bpp)")
        print(f"ratio:    {data.nbytes / result.nbytes:.1f}x")
        print(f"chunks:   {len(result.reports)}")
        print(f"outliers: {result.n_outliers}")
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    with open(args.input, "rb") as f:
        payload = f.read()
    np.save(args.output, decompress(payload))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    import struct

    with open(args.input, "rb") as f:
        payload = f.read()
    if payload[:8] != b"SPRRPY1\x00":
        print("not a SPERR container", file=sys.stderr)
        return 1
    rank, dtype_code, mode_code, lossless_flag = struct.unpack_from("<BBBB", payload, 8)
    shape = struct.unpack_from(f"<{rank}Q", payload, 12)
    (n_chunks,) = struct.unpack_from("<I", payload, 12 + 8 * rank)
    npoints = int(np.prod(shape))
    print(f"shape:    {tuple(shape)}")
    print(f"dtype:    {'float32' if dtype_code == 0 else 'float64'}")
    print(f"mode:     {'PWE-bounded' if mode_code == 0 else 'size-bounded'}")
    print(f"chunks:   {n_chunks}")
    print(f"size:     {len(payload)} bytes ({8.0 * len(payload) / npoints:.3f} bpp)")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .analysis import format_table, rd_point
    from .compressors import ALL_COMPRESSORS

    data = np.load(args.input)
    names = [n.strip() for n in args.compressors.split(",") if n.strip()]
    rows = []
    for name in names:
        if name not in ALL_COMPRESSORS:
            print(
                f"error: unknown compressor {name!r}; choose from "
                f"{sorted(ALL_COMPRESSORS)}",
                file=sys.stderr,
            )
            return 1
        comp = ALL_COMPRESSORS[name]()
        p = rd_point(comp, data, args.idx)
        rows.append(
            [
                name,
                f"{p.bpp:.2f}",
                f"{p.psnr_db:.1f}",
                f"{p.gain:.2f}",
                f"{p.max_err:.3e}",
                "yes" if p.satisfied else "NO",
                f"{p.compress_seconds:.2f}s",
            ]
        )
    print(f"comparison at idx={args.idx} (t = Range / 2**{args.idx}):\n")
    print(
        format_table(
            ["compressor", "bpp", "PSNR dB", "gain", "max err", "bound ok", "time"],
            rows,
        )
    )
    return 0


def _cmd_pack(args: argparse.Namespace) -> int:
    from .core import compress_frames

    frames = [np.load(path) for path in args.inputs]
    if args.idx is not None:
        modes = [PweMode(tolerance_from_idx(f, args.idx)) for f in frames]
    else:
        modes = [PweMode(args.pwe)] * len(frames)
    payload, results = compress_frames(frames, modes, chunk_shape=args.chunk)
    with open(args.output, "wb") as f:
        f.write(payload)
    raw = sum(fr.nbytes for fr in frames)
    print(
        f"packed {len(frames)} frames: {raw} -> {len(payload)} bytes "
        f"({raw / len(payload):.1f}x)"
    )
    return 0


def _cmd_extract(args: argparse.Namespace) -> int:
    from .core import decompress_frame

    with open(args.input, "rb") as f:
        payload = f.read()
    np.save(args.output, decompress_frame(payload, args.index))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "compress":
            return _cmd_compress(args)
        if args.command == "decompress":
            return _cmd_decompress(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "pack":
            return _cmd_pack(args)
        if args.command == "extract":
            return _cmd_extract(args)
        return _cmd_info(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
