"""Lossless backend: the ZSTD-substitute final pass.

Real SPERR pipes its concatenated coefficient + outlier bitstreams through
ZSTD (paper Sec. V).  With no external compressors available we provide a
from-scratch composite backend with several methods and an ``auto`` mode
that keeps whichever candidate is smallest — mirroring the practical effect
of the ZSTD pass (a small, data-dependent saving on top of the entropy-dense
SPECK output, a larger one on structured sections such as code books).

The one-byte method tag at the front makes every payload self-describing.
"""

from __future__ import annotations

import struct

import numpy as np

from ..errors import InvalidArgumentError, StreamFormatError
from ..obs import span
from . import arith, huffman, lz77, rle

__all__ = ["compress", "decompress", "METHODS"]

_TAG_STORED = 0
_TAG_RLE = 1
_TAG_HUFFMAN = 2
_TAG_RLE_HUFFMAN = 3
_TAG_LZ77 = 4
_TAG_AC = 5

METHODS = ("stored", "rle", "huffman", "rle+huffman", "lz77", "ac", "auto")

_LZ77_SIZE_LIMIT = 1 << 18  # LZ77 match finding is a Python loop; cap input
_AC_SIZE_LIMIT = 1 << 16  # arithmetic coding is per-bit Python; cap input

#: ``auto`` skips the Python-loop candidates (LZ77, AC) when the input's
#: order-0 entropy exceeds this many bits per byte: entropy-dense SPECK
#: output is essentially incompressible, and on such data those coders
#: cost hundreds of milliseconds per chunk to save well under 1%.
_DENSE_ENTROPY_BITS = 7.0
#: ... but always try everything on tiny inputs, where they are cheap.
_SMALL_INPUT_BYTES = 1 << 11


def _entropy_bits_per_byte(data: bytes) -> float:
    """Order-0 (byte-histogram) entropy of ``data`` in bits per byte."""
    counts = np.bincount(np.frombuffer(data, dtype=np.uint8), minlength=256)
    p = counts[counts > 0] / len(data)
    return float(-(p * np.log2(p)).sum())


def _huffman_pack(data: bytes) -> bytes:
    arr = np.frombuffer(data, dtype=np.uint8)
    freqs = np.bincount(arr, minlength=256)
    code = huffman.build_code(freqs)
    payload, nbits = huffman.encode(arr, code)
    book = huffman.serialize_code(code)
    return struct.pack("<QQ", len(data), nbits) + book + payload


def _huffman_unpack(data: bytes) -> bytes:
    if len(data) < 16:
        raise StreamFormatError("truncated huffman section")
    n, nbits = struct.unpack("<QQ", data[:16])
    # Both counts are untrusted: every Huffman code spends at least one
    # bit per symbol, and no more bits can be valid than the section
    # holds, so anything outside those bounds is corruption — reject it
    # before the decoder allocates ``n`` output symbols.
    if nbits > 8 * (len(data) - 16):
        raise StreamFormatError(
            f"huffman section declares {nbits} bits in {len(data) - 16} bytes"
        )
    if n > nbits and n > 0:
        raise StreamFormatError(
            f"huffman section declares {n} symbols in {nbits} bits"
        )
    code, consumed = huffman.deserialize_code(data[16:])
    symbols = huffman.decode(data[16 + consumed :], nbits, n, code)
    return symbols.astype(np.uint8).tobytes()


def compress(data: bytes, method: str = "auto") -> bytes:
    """Losslessly compress ``data`` with the chosen method.

    ``auto`` tries stored, RLE, Huffman, RLE+Huffman (and, when the data
    is small or its byte entropy suggests real redundancy, LZ77 and
    arithmetic coding) and keeps the smallest result.
    """
    with span("lossless.encode", method=method) as sp:
        out = _compress_body(data, method)
        sp.add("lossless.bytes_in", len(data)).add("lossless.bytes_out", len(out))
    return out


def _compress_body(data: bytes, method: str) -> bytes:
    """Candidate generation and selection, inside the encode span."""
    if method not in METHODS:
        raise InvalidArgumentError(f"unknown lossless method {method!r}")
    if method == "stored":
        return bytes([_TAG_STORED]) + data

    candidates: list[bytes] = [bytes([_TAG_STORED]) + data]
    if data:
        # Entropy gate for the expensive pure-Python candidates: on
        # entropy-dense sections (SPECK output sits near 8 bits/byte)
        # LZ77 and AC cannot meaningfully beat Huffman, so ``auto``
        # skips them — this is the hot path of every chunked compress.
        try_slow = (
            len(data) <= _SMALL_INPUT_BYTES
            or _entropy_bits_per_byte(data) < _DENSE_ENTROPY_BITS
        )
        if method in ("rle", "auto"):
            candidates.append(bytes([_TAG_RLE]) + rle.encode(data))
        if method in ("huffman", "auto"):
            candidates.append(bytes([_TAG_HUFFMAN]) + _huffman_pack(data))
        if method in ("rle+huffman", "auto"):
            candidates.append(
                bytes([_TAG_RLE_HUFFMAN]) + _huffman_pack(rle.encode(data))
            )
        if method == "lz77" or (
            method == "auto" and try_slow and len(data) <= _LZ77_SIZE_LIMIT
        ):
            candidates.append(bytes([_TAG_LZ77]) + lz77.encode(data))
        if method == "ac" or (
            method == "auto" and try_slow and len(data) <= _AC_SIZE_LIMIT
        ):
            candidates.append(bytes([_TAG_AC]) + arith.encode(data))
    if method != "auto" and len(candidates) > 1:
        # A specific method was requested: return it even if larger than
        # stored, except that empty input always stores.
        return candidates[-1]
    return min(candidates, key=len)


def decompress(payload: bytes) -> bytes:
    """Inverse of :func:`compress` (self-describing via the method tag)."""
    if not payload:
        raise StreamFormatError("empty lossless payload")
    with span("lossless.decode") as sp:
        out = _decompress_body(payload)
        sp.set(tag=payload[0])
    return out


def _decompress_body(payload: bytes) -> bytes:
    """Tag dispatch, inside the decode span."""
    tag, body = payload[0], payload[1:]
    if tag == _TAG_STORED:
        return body
    if tag == _TAG_RLE:
        return rle.decode(body)
    if tag == _TAG_HUFFMAN:
        return _huffman_unpack(body)
    if tag == _TAG_RLE_HUFFMAN:
        return rle.decode(_huffman_unpack(body))
    if tag == _TAG_LZ77:
        return lz77.decode(body)
    if tag == _TAG_AC:
        return arith.decode(body)
    raise StreamFormatError(f"unknown lossless method tag {tag}")
