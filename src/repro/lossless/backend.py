"""Lossless backend: the ZSTD-substitute final pass.

Real SPERR pipes its concatenated coefficient + outlier bitstreams through
ZSTD (paper Sec. V).  With no external compressors available we provide a
from-scratch composite backend with several methods and an ``auto`` mode
that keeps whichever candidate is smallest — mirroring the practical effect
of the ZSTD pass (a small, data-dependent saving on top of the entropy-dense
SPECK output, a larger one on structured sections such as code books).

The one-byte method tag at the front makes every payload self-describing.
Tags 0–5 are the legacy formats and stay decodable forever; tag 6 is the
vectorized static range coder that replaced the per-bit adaptive coder on
the encode side (``method="ac"`` still encodes tag 5 for compatibility
experiments, but ``auto`` never picks it).  docs/lossless.md documents the
formats and the selection policy.

``auto`` prices candidates cheapest-first and hands each coder the current
best size as an abort budget, so losing candidates stop early instead of
finishing a payload that will be thrown away:

1. ``stored`` is the floor.
2. ``rle`` is priced exactly from the run histogram before encoding.
3. ``huffman`` / ``rle+huffman`` are priced exactly from the byte
   histogram and the code-length table; only a winner is packed.
4. ``rc`` is skipped when the order-0 entropy bound already loses, and
   aborts mid-stream past the budget.
5. ``lz77`` runs under the entropy gate below (dictionary matching is
   the most expensive probe and cannot win on entropy-dense data).
"""

from __future__ import annotations

import struct

import numpy as np

from ..errors import InvalidArgumentError, StreamFormatError
from ..obs import span
from . import arith, huffman, lz77, rc, rle

__all__ = ["compress", "decompress", "METHODS"]

_TAG_STORED = 0
_TAG_RLE = 1
_TAG_HUFFMAN = 2
_TAG_RLE_HUFFMAN = 3
_TAG_LZ77 = 4
_TAG_AC = 5
_TAG_RC = 6

METHODS = ("stored", "rle", "huffman", "rle+huffman", "lz77", "ac", "rc", "auto")

#: ``auto`` hands payloads up to this size to the LZ77 probe (the
#: vectorized matcher runs ~1 MiB in well under a second; the old
#: per-byte encoder capped out at 256 KiB).
_LZ77_SIZE_LIMIT = 1 << 20

#: ``auto`` skips the LZ77 probe when the input's order-0 entropy exceeds
#: this many bits per byte: entropy-dense SPECK output is essentially
#: incompressible, and dictionary matching cannot beat the entropy coders
#: there.  (The former ``_AC_SIZE_LIMIT`` is gone: the range coder that
#: replaced AC in ``auto`` is vectorized, so method selection no longer
#: changes at a size threshold.)
_DENSE_ENTROPY_BITS = 7.0
#: ... but always probe everything on tiny inputs, where it is cheap.
_SMALL_INPUT_BYTES = 1 << 11


def _entropy_bits_per_byte(counts: np.ndarray, n: int) -> float:
    """Order-0 entropy in bits per byte, from a byte histogram."""
    p = counts[counts > 0] / n
    return float(-(p * np.log2(p)).sum())


#: Top bit of the symbol-count header field: the section carries a
#: segment index (``uint16`` bit length per full segment) between the
#: code book and the payload, so the decoder can run segments as
#: parallel lanes.  Unflagged sections keep the original layout and the
#: serial decode walk, so old payloads stay decodable byte-for-byte.
_HUFFMAN_INDEX_FLAG = 1 << 63
#: Sections with at least this many symbols are packed with the index
#: (the ~0.5-1.5 % index overhead only pays off once the serial walk
#: would dominate decode time).
_HUFFMAN_INDEX_MIN = 1 << 15


def _huffman_pack(data: bytes, arr: np.ndarray, freqs: np.ndarray,
                  code: huffman.HuffmanCode) -> bytes:
    payload, nbits = huffman.encode(arr, code)
    book = huffman.serialize_code(code)
    n = len(data)
    if n >= _HUFFMAN_INDEX_MIN:
        index = huffman.segment_bits(arr, code)[:-1].astype("<u2").tobytes()
        header = struct.pack("<QQ", n | _HUFFMAN_INDEX_FLAG, nbits)
        return header + book + index + payload
    return struct.pack("<QQ", n, nbits) + book + payload


def _huffman_packed_size(n: int, freqs: np.ndarray, code: huffman.HuffmanCode) -> int:
    """Exact byte size :func:`_huffman_pack` would produce, without packing."""
    nbits = huffman.encoded_nbits(freqs, code)
    book = len(huffman.serialize_code(code))
    index = 0
    if n >= _HUFFMAN_INDEX_MIN:
        index = 2 * (-(-n // huffman.SEGMENT_SYMBOLS) - 1)
    return 16 + book + index + ((nbits + 7) >> 3)


def _huffman_unpack(data: bytes) -> bytes:
    if len(data) < 16:
        raise StreamFormatError("truncated huffman section")
    n_raw, nbits = struct.unpack("<QQ", data[:16])
    indexed = bool(n_raw & _HUFFMAN_INDEX_FLAG)
    n = n_raw & (_HUFFMAN_INDEX_FLAG - 1)
    # Both counts are untrusted: every Huffman code spends at least one
    # bit per symbol, and no more bits can be valid than the section
    # holds, so anything outside those bounds is corruption — reject it
    # before the decoder allocates ``n`` output symbols.
    if nbits > 8 * (len(data) - 16):
        raise StreamFormatError(
            f"huffman section declares {nbits} bits in {len(data) - 16} bytes"
        )
    if n > nbits and n > 0:
        raise StreamFormatError(
            f"huffman section declares {n} symbols in {nbits} bits"
        )
    code, consumed = huffman.deserialize_code(data[16:])
    body = data[16 + consumed :]
    if indexed:
        isize = 2 * (-(-n // huffman.SEGMENT_SYMBOLS) - 1) if n else 0
        if len(body) < isize:
            raise StreamFormatError("truncated huffman segment index")
        seg_bits = np.frombuffer(body[:isize], dtype="<u2")
        symbols = huffman.decode_segmented(body[isize:], nbits, n, code, seg_bits)
    else:
        symbols = huffman.decode(body, nbits, n, code)
    return symbols.astype(np.uint8).tobytes()


def compress(data: bytes, method: str = "auto") -> bytes:
    """Losslessly compress ``data`` with the chosen method.

    ``auto`` prices stored, RLE, Huffman, RLE+Huffman and the range coder
    (plus LZ77 when the data is small or its byte entropy suggests real
    redundancy) and keeps the smallest result.
    """
    with span("lossless.encode", method=method) as sp:
        out = _compress_body(data, method)
        sp.set(tag=out[0])
        sp.add("lossless.bytes_in", len(data)).add("lossless.bytes_out", len(out))
    return out


def _compress_explicit(data: bytes, method: str) -> bytes:
    """Encode with one specific method (returned even if larger)."""
    if method == "rle":
        return bytes([_TAG_RLE]) + rle.encode(data)
    arr = np.frombuffer(data, dtype=np.uint8)
    if method in ("huffman", "rle+huffman"):
        tag = _TAG_HUFFMAN if method == "huffman" else _TAG_RLE_HUFFMAN
        if method == "rle+huffman":
            data = rle.encode(data)
            arr = np.frombuffer(data, dtype=np.uint8)
        freqs = np.bincount(arr, minlength=256)
        code = huffman.build_code(freqs)
        return bytes([tag]) + _huffman_pack(data, arr, freqs, code)
    if method == "lz77":
        return bytes([_TAG_LZ77]) + lz77.encode(data)
    if method == "ac":
        return bytes([_TAG_AC]) + arith.encode(data)
    assert method == "rc"
    return bytes([_TAG_RC]) + rc.encode(data)


def _compress_body(data: bytes, method: str) -> bytes:
    """Candidate pricing and selection, inside the encode span."""
    if method not in METHODS:
        raise InvalidArgumentError(f"unknown lossless method {method!r}")
    if method == "stored" or not data:
        return bytes([_TAG_STORED]) + data
    if method != "auto":
        return _compress_explicit(data, method)

    n = len(data)
    best = bytes([_TAG_STORED]) + data

    # RLE: each (value, run<=255) pair costs two bytes; the pair count
    # follows from the change points, so the size is exact and free.
    arr = np.frombuffer(data, dtype=np.uint8)
    changes = np.flatnonzero(np.diff(arr)) + 1
    bounds = np.concatenate(([0], changes, [n]))
    runs = np.diff(bounds)
    n_pairs = int((-(-runs // 255)).sum())
    rle_size = 1 + 8 + 2 * n_pairs
    rle_data: bytes | None = None
    if rle_size < len(best):
        rle_data = rle.encode(data)
        best = bytes([_TAG_RLE]) + rle_data

    # Huffman over the raw bytes and over the RLE'd bytes: exact sizes
    # from histogram x code-length tables; pack only what wins.
    freqs = np.bincount(arr, minlength=256)
    code = huffman.build_code(freqs)
    if 1 + _huffman_packed_size(n, freqs, code) < len(best):
        best = bytes([_TAG_HUFFMAN]) + _huffman_pack(data, arr, freqs, code)
    rle_nbytes = 8 + 2 * n_pairs
    if rle_data is None and 21 + (rle_nbytes >> 3) < len(best):
        # The RLE+Huffman probe needs the actual RLE bytes.  Huffman
        # spends at least one bit per input byte plus ~21 bytes of tag,
        # header and minimal code book, so when even that floor loses
        # there is no point materializing the RLE form.
        rle_data = rle.encode(data)
    if rle_data is not None:
        rarr = np.frombuffer(rle_data, dtype=np.uint8)
        rfreqs = np.bincount(rarr, minlength=256)
        rcode = huffman.build_code(rfreqs)
        if 1 + _huffman_packed_size(len(rle_data), rfreqs, rcode) < len(best):
            best = bytes([_TAG_RLE_HUFFMAN]) + _huffman_pack(
                rle_data, rarr, rfreqs, rcode
            )

    # Range coder: its payload cannot beat the order-0 entropy bound plus
    # its fixed header, so skip it when that bound already loses.
    entropy = _entropy_bits_per_byte(freqs, n)
    rc_floor = 1 + 9 + 384 + int(entropy * n / 8)
    if rc_floor < len(best):
        cand = rc.encode(data, max_bytes=len(best) - 2)
        if cand is not None and 1 + len(cand) < len(best):
            best = bytes([_TAG_RC]) + cand

    # LZ77: the expensive probe, gated to data with byte-level redundancy.
    if (n <= _SMALL_INPUT_BYTES or entropy < _DENSE_ENTROPY_BITS) and (
        n <= _LZ77_SIZE_LIMIT
    ):
        cand = lz77.encode(data, max_bytes=len(best) - 2)
        if cand is not None and 1 + len(cand) < len(best):
            best = bytes([_TAG_LZ77]) + cand
    return best


def decompress(payload: bytes) -> bytes:
    """Inverse of :func:`compress` (self-describing via the method tag)."""
    if not payload:
        raise StreamFormatError("empty lossless payload")
    with span("lossless.decode") as sp:
        out = _decompress_body(payload)
        sp.set(tag=payload[0])
        sp.add("lossless.bytes_in", len(payload)).add("lossless.bytes_out", len(out))
    return out


def _decompress_body(payload: bytes) -> bytes:
    """Tag dispatch, inside the decode span."""
    tag, body = payload[0], payload[1:]
    if tag == _TAG_STORED:
        return body
    if tag == _TAG_RLE:
        return rle.decode(body)
    if tag == _TAG_HUFFMAN:
        return _huffman_unpack(body)
    if tag == _TAG_RLE_HUFFMAN:
        return rle.decode(_huffman_unpack(body))
    if tag == _TAG_LZ77:
        return lz77.decode(body)
    if tag == _TAG_AC:
        return arith.decode(body)
    if tag == _TAG_RC:
        return rc.decode(body)
    raise StreamFormatError(f"unknown lossless method tag {tag}")
