"""Elias universal codes (gamma and delta).

Sec. II of the paper surveys alternative designs for outlier storage:
"record positions using bitmap coding, and ... handle correction values
using, for example, variable-length coding (e.g., universal codes
[Elias 1975])".  These are those codes, used by the alternative outlier
coders in :mod:`repro.outlier.alternatives` that the Sec.-II design-space
bench compares against SPERR's unified scheme.

Elias gamma codes a positive integer ``n`` as ``floor(log2 n)`` zeros,
then the binary representation of ``n`` (MSB = the terminating 1).
Elias delta codes the length with gamma first, then the remaining bits —
asymptotically better for large values.
"""

from __future__ import annotations

import numpy as np

from ..bitstream import BitReader, BitWriter
from ..errors import InvalidArgumentError, StreamFormatError

__all__ = [
    "gamma_encode",
    "gamma_decode",
    "delta_encode",
    "delta_decode",
    "zigzag",
    "unzigzag",
]


def zigzag(values: np.ndarray) -> np.ndarray:
    """Map signed integers to positive ones: 0,-1,1,-2,2 -> 1,2,3,4,5."""
    values = np.asarray(values, dtype=np.int64)
    return np.where(values >= 0, 2 * values + 1, -2 * values)


def unzigzag(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag`."""
    values = np.asarray(values, dtype=np.int64)
    return np.where(values % 2 == 1, (values - 1) // 2, -(values // 2))


def gamma_encode(values: np.ndarray, writer: BitWriter) -> None:
    """Append the Elias gamma codes of positive integers to a writer."""
    values = np.asarray(values, dtype=np.int64)
    if values.size and values.min() < 1:
        raise InvalidArgumentError("gamma codes require positive integers")
    for v in values.tolist():
        nbits = v.bit_length()
        writer.write_bits(np.zeros(nbits - 1, dtype=np.bool_))
        writer.write_uint(v, nbits)


def gamma_decode(reader: BitReader, count: int) -> np.ndarray:
    """Read ``count`` gamma-coded positive integers."""
    out = np.empty(count, dtype=np.int64)
    for i in range(count):
        zeros = 0
        while True:
            if reader.remaining < 1:
                raise StreamFormatError("gamma stream exhausted")
            if reader.read_bit():
                break
            zeros += 1
        value = 1
        for _ in range(zeros):
            value = (value << 1) | (1 if reader.read_bit() else 0)
        out[i] = value
    return out


def delta_encode(values: np.ndarray, writer: BitWriter) -> None:
    """Append the Elias delta codes of positive integers to a writer."""
    values = np.asarray(values, dtype=np.int64)
    if values.size and values.min() < 1:
        raise InvalidArgumentError("delta codes require positive integers")
    for v in values.tolist():
        nbits = v.bit_length()
        gamma_encode(np.asarray([nbits]), writer)
        if nbits > 1:
            writer.write_uint(v - (1 << (nbits - 1)), nbits - 1)


def delta_decode(reader: BitReader, count: int) -> np.ndarray:
    """Read ``count`` delta-coded positive integers."""
    out = np.empty(count, dtype=np.int64)
    for i in range(count):
        nbits = int(gamma_decode(reader, 1)[0])
        if nbits == 1:
            out[i] = 1
        else:
            tail = reader.read_uint(nbits - 1)
            out[i] = (1 << (nbits - 1)) | tail
    return out
