"""Canonical Huffman coding over byte (or small-integer) alphabets.

This is the entropy-coding substrate used in three places:

* the final lossless pass over concatenated SPERR streams (the paper uses
  ZSTD there; see DESIGN.md for the substitution),
* the SZ-like baseline's quantization-bin codec, and
* the QCAT ``compressQuantBins`` equivalent used by the Fig. 11 outlier
  coding comparison.

Encoding is fully vectorized: symbols are mapped to (code, length) pairs
through table lookups and scattered into a bit array in one pass.  Decoding
uses a windowed lookup table over the next ``max_len`` bits; the per-symbol
loop is plain Python but each iteration is two array reads, which is fast
enough for the stream sizes this reproduction handles.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..errors import InvalidArgumentError, StreamFormatError

__all__ = ["HuffmanCode", "build_code", "encode", "decode"]

_MAX_CODE_LEN = 24  # encoder clamps to this; the decode window table is 2**max_len entries


@dataclass(frozen=True)
class HuffmanCode:
    """A canonical Huffman code book.

    Attributes
    ----------
    lengths:
        ``uint8`` array of code lengths indexed by symbol; zero for unused
        symbols.
    codes:
        ``uint32`` array of canonical code values (MSB-first) per symbol.
    """

    lengths: np.ndarray
    codes: np.ndarray

    @property
    def nsymbols(self) -> int:
        return int(self.lengths.size)


def _huffman_lengths(freqs: np.ndarray) -> np.ndarray:
    """Compute Huffman code lengths from symbol frequencies.

    Uses the standard heap construction; lengths are then limited to
    :data:`_MAX_CODE_LEN` by the simple "push down" adjustment, preserving
    Kraft validity.
    """
    n = freqs.size
    lengths = np.zeros(n, dtype=np.uint8)
    used = np.flatnonzero(freqs > 0)
    if used.size == 0:
        return lengths
    if used.size == 1:
        lengths[used[0]] = 1
        return lengths

    # Heap of (freq, tiebreak, node). Leaves are ints, internal nodes lists
    # of leaf symbols.
    heap: list[tuple[int, int, list[int]]] = [
        (int(freqs[s]), int(s), [int(s)]) for s in used
    ]
    heapq.heapify(heap)
    tiebreak = n
    while len(heap) > 1:
        fa, _, a = heapq.heappop(heap)
        fb, _, b = heapq.heappop(heap)
        for s in a:
            lengths[s] += 1
        for s in b:
            lengths[s] += 1
        heapq.heappush(heap, (fa + fb, tiebreak, a + b))
        tiebreak += 1

    if lengths.max() > _MAX_CODE_LEN:
        lengths = _limit_lengths(lengths, _MAX_CODE_LEN)
    return lengths


def _limit_lengths(lengths: np.ndarray, limit: int) -> np.ndarray:
    """Clamp code lengths to ``limit`` while keeping the Kraft sum <= 1."""
    lengths = lengths.copy()
    lengths[lengths > limit] = limit
    # Repair Kraft inequality: increase lengths of the shortest over-budget
    # codes until sum(2^-len) <= 1.
    used = lengths > 0
    kraft = np.sum(2.0 ** -lengths[used].astype(np.float64))
    while kraft > 1.0 + 1e-12:
        # Lengthen the currently shortest code below the limit.
        candidates = np.flatnonzero(used & (lengths < limit))
        if candidates.size == 0:
            raise InvalidArgumentError("cannot satisfy Kraft inequality")
        shortest = candidates[np.argmin(lengths[candidates])]
        kraft -= 2.0 ** -float(lengths[shortest])
        lengths[shortest] += 1
        kraft += 2.0 ** -float(lengths[shortest])
    return lengths


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical code values from code lengths."""
    codes = np.zeros(lengths.size, dtype=np.uint32)
    order = np.lexsort((np.arange(lengths.size), lengths))
    order = order[lengths[order] > 0]
    code = 0
    prev_len = 0
    for sym in order:
        length = int(lengths[sym])
        code <<= length - prev_len
        codes[sym] = code
        code += 1
        prev_len = length
    return codes


def build_code(freqs: np.ndarray) -> HuffmanCode:
    """Build a canonical Huffman code from a frequency table."""
    freqs = np.asarray(freqs, dtype=np.int64)
    if freqs.ndim != 1:
        raise InvalidArgumentError("freqs must be a 1-D array")
    lengths = _huffman_lengths(freqs)
    return HuffmanCode(lengths=lengths, codes=_canonical_codes(lengths))


def encode(symbols: np.ndarray, code: HuffmanCode) -> tuple[bytes, int]:
    """Encode a symbol array; returns ``(packed_bytes, nbits)``.

    Fully vectorized: each symbol's code bits are expanded with
    ``unpackbits`` on the 32-bit code values and scattered to their cumsum
    offsets in the output bit array.
    """
    symbols = np.asarray(symbols)
    if symbols.size == 0:
        return b"", 0
    lens = code.lengths[symbols].astype(np.int64)
    if np.any(lens == 0):
        raise InvalidArgumentError("symbol without a code encountered")
    codes = code.codes[symbols]

    total = int(lens.sum())
    out = np.zeros(total, dtype=np.uint8)
    # Bit j of symbol i (0 = MSB of its code) lands at offset[i] + j.
    offsets = np.concatenate(([0], np.cumsum(lens)[:-1]))
    # Expand each code into its `len` MSB-first bits.
    max_len = int(lens.max())
    shifts = np.arange(max_len - 1, -1, -1, dtype=np.uint32)
    # bits_mat[i, j] = bit (len_i - 1 - j) ... we want MSB first per symbol:
    # value >> (len-1-j) & 1 for j in [0, len)
    j = np.arange(max_len)
    valid = j[None, :] < lens[:, None]
    shift = (lens[:, None] - 1 - j[None, :]).clip(min=0).astype(np.uint32)
    bits_mat = (codes[:, None] >> shift) & np.uint32(1)
    flat_positions = (offsets[:, None] + j[None, :])[valid]
    out[flat_positions] = bits_mat[valid].astype(np.uint8)
    return np.packbits(out).tobytes(), total


def decode(data: bytes, nbits: int, nsymbols: int, code: HuffmanCode) -> np.ndarray:
    """Decode ``nsymbols`` symbols from a packed Huffman bit stream."""
    if nsymbols == 0:
        return np.zeros(0, dtype=np.int64)
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))[:nbits]
    if bits.size < nbits:
        raise StreamFormatError("huffman stream shorter than declared")

    used = np.flatnonzero(code.lengths > 0)
    if used.size == 0:
        raise StreamFormatError("empty code book")
    max_len = int(code.lengths[used].max())
    if max_len > _MAX_CODE_LEN:
        # The encoder never emits codes past _MAX_CODE_LEN; a longer length
        # can only come from a forged code book, and would size the window
        # table at 2**max_len entries.
        raise StreamFormatError(
            f"huffman code length {max_len} exceeds the {_MAX_CODE_LEN}-bit limit"
        )

    # Window table: value of next `max_len` bits -> (symbol, length).
    table_sym = np.full(1 << max_len, -1, dtype=np.int64)
    table_len = np.zeros(1 << max_len, dtype=np.int64)
    for sym in used.tolist():
        length = int(code.lengths[sym])
        base = int(code.codes[sym]) << (max_len - length)
        span = 1 << (max_len - length)
        table_sym[base : base + span] = sym
        table_len[base : base + span] = length

    # Window values at every bit offset via correlation with powers of two.
    kernel = (1 << np.arange(max_len - 1, -1, -1)).astype(np.int64)
    padded = np.concatenate([bits.astype(np.int64), np.zeros(max_len - 1, dtype=np.int64)])
    windows = np.convolve(padded, kernel[::-1], mode="valid")[: bits.size]

    out = np.empty(nsymbols, dtype=np.int64)
    pos = 0
    wins = windows  # local alias for speed
    tsym = table_sym
    tlen = table_len
    total_bits = int(bits.size)
    for i in range(nsymbols):
        if pos >= total_bits:
            raise StreamFormatError("huffman stream exhausted mid-symbol")
        w = wins[pos]
        sym = tsym[w]
        if sym < 0:
            raise StreamFormatError("invalid huffman code word")
        out[i] = sym
        pos += tlen[w]
    return out


def serialize_code(code: HuffmanCode) -> bytes:
    """Serialize a code book as (nsymbols: u32, lengths: u8 array, RLE'd)."""
    lengths = code.lengths.astype(np.uint8)
    import struct

    # Simple zero-run compression of the length table: pairs (len, run).
    parts = [struct.pack("<I", lengths.size)]
    i = 0
    arr = lengths.tolist()
    n = len(arr)
    while i < n:
        j = i
        while j < n and arr[j] == arr[i] and j - i < 255:
            j += 1
        parts.append(bytes([arr[i], j - i]))
        i = j
    return b"".join(parts)


def deserialize_code(data: bytes) -> tuple[HuffmanCode, int]:
    """Inverse of :func:`serialize_code`; returns (code, bytes_consumed)."""
    import struct

    if len(data) < 4:
        raise StreamFormatError("truncated code book")
    (nsym,) = struct.unpack("<I", data[:4])
    # Each 2-byte (value, run) pair covers at most 255 symbols, so the
    # remaining bytes bound any honest symbol count — check before sizing
    # the length table from the untrusted field.
    if nsym > 255 * ((len(data) - 4) // 2):
        raise StreamFormatError(
            f"code book declares {nsym} symbols in {len(data)} bytes"
        )
    lengths = np.zeros(nsym, dtype=np.uint8)
    pos = 4
    filled = 0
    while filled < nsym:
        if pos + 2 > len(data):
            raise StreamFormatError("truncated code book run")
        val, run = data[pos], data[pos + 1]
        if run == 0:
            raise StreamFormatError("zero-length run in code book")
        if val > _MAX_CODE_LEN:
            raise StreamFormatError(
                f"huffman code length {val} exceeds the {_MAX_CODE_LEN}-bit limit"
            )
        lengths[filled : filled + run] = val
        filled += run
        pos += 2
    return HuffmanCode(lengths=lengths, codes=_canonical_codes(lengths)), pos
