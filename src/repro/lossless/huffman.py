"""Canonical Huffman coding over byte (or small-integer) alphabets.

This is the entropy-coding substrate used in three places:

* the final lossless pass over concatenated SPERR streams (the paper uses
  ZSTD there; see DESIGN.md for the substitution),
* the SZ-like baseline's quantization-bin codec, and
* the QCAT ``compressQuantBins`` equivalent used by the Fig. 11 outlier
  coding comparison.

Both directions are table-driven and vectorized (docs/lossless.md has the
kernel design).  Encoding gathers each symbol's (code, length) pair and
batch-packs the fields with :func:`repro.lossless.bitpack.pack_msb`.
Decoding gathers the next-``max_len``-bits window at every bit offset
through a flat ``2**max_len`` lookup table; the only sequential part left
is the code-length chain walk (one list read + add per symbol), because
symbol boundaries are data-dependent.  Decode tables for short codes are
cached in :mod:`repro.core.plans` keyed by the length table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidArgumentError, StreamFormatError
from . import bitpack

__all__ = [
    "HuffmanCode",
    "build_code",
    "encode",
    "decode",
    "decode_segmented",
    "segment_bits",
    "encoded_nbits",
    "SEGMENT_SYMBOLS",
]

_MAX_CODE_LEN = 24  # encoder clamps to this; the decode window table is 2**max_len entries

#: Symbols per segment in the indexed stream layout (see
#: ``backend._huffman_pack``).  512 symbols of at most ``_MAX_CODE_LEN``
#: bits keep every segment's bit length within a ``uint16`` index entry.
SEGMENT_SYMBOLS = 512

#: Decode tables are memoized in ``core.plans`` only up to this code
#: length (a 2**16-entry table is 512 KiB; anything longer is rebuilt per
#: call so a forged code book cannot pin huge tables in the cache).
_CACHE_MAX_LEN = 16


@dataclass(frozen=True)
class HuffmanCode:
    """A canonical Huffman code book.

    Attributes
    ----------
    lengths:
        ``uint8`` array of code lengths indexed by symbol; zero for unused
        symbols.
    codes:
        ``uint32`` array of canonical code values (MSB-first) per symbol.
    """

    lengths: np.ndarray
    codes: np.ndarray

    @property
    def nsymbols(self) -> int:
        return int(self.lengths.size)


def _huffman_lengths(freqs: np.ndarray) -> np.ndarray:
    """Compute Huffman code lengths from symbol frequencies.

    Uses the standard heap construction; lengths are then limited to
    :data:`_MAX_CODE_LEN` by the simple "push down" adjustment, preserving
    Kraft validity.
    """
    n = freqs.size
    lengths = np.zeros(n, dtype=np.uint8)
    used = np.flatnonzero(freqs > 0)
    if used.size == 0:
        return lengths
    if used.size == 1:
        lengths[used[0]] = 1
        return lengths

    # Two-queue merge: leaves sorted by (freq, symbol); merged nodes come
    # out in creation order with non-decreasing frequency, so a FIFO holds
    # them sorted.  A heap of (freq, tiebreak) nodes — leaf tiebreaks being
    # symbols in [0, n), merged tiebreaks counting up from n — pops the
    # same sequence: a leaf beats a merged node of equal frequency and
    # equal-frequency merged nodes pop in creation order.  Tracking parent
    # pointers instead of merging leaf lists keeps each step O(1).
    order = used[np.argsort(freqs[used], kind="stable")]
    leaf_freqs = freqs[order].tolist()
    n_leaves = len(leaf_freqs)
    node_freqs: list[int] = []
    parent = [0] * (2 * n_leaves - 1)
    li = mi = 0

    def _take() -> tuple[int, int]:
        nonlocal li, mi
        if mi >= len(node_freqs) or (
            li < n_leaves and leaf_freqs[li] <= node_freqs[mi]
        ):
            li += 1
            return leaf_freqs[li - 1], li - 1
        mi += 1
        return node_freqs[mi - 1], n_leaves + mi - 1

    for _ in range(n_leaves - 1):
        fa, a = _take()
        fb, b = _take()
        node = n_leaves + len(node_freqs)
        parent[a] = node
        parent[b] = node
        node_freqs.append(fa + fb)

    # Depth of each node = 1 + depth of its parent; parents always have
    # higher indices, so one reverse sweep resolves every leaf.
    depth = [0] * (2 * n_leaves - 1)
    root = 2 * n_leaves - 2
    for node in range(root - 1, -1, -1):
        depth[node] = depth[parent[node]] + 1
    lengths[order] = np.asarray(depth[:n_leaves], dtype=np.int64).astype(np.uint8)

    if lengths.max() > _MAX_CODE_LEN:
        lengths = _limit_lengths(lengths, _MAX_CODE_LEN)
    return lengths


def _limit_lengths(lengths: np.ndarray, limit: int) -> np.ndarray:
    """Clamp code lengths to ``limit`` while keeping the Kraft sum <= 1."""
    lengths = lengths.copy()
    lengths[lengths > limit] = limit
    # Repair Kraft inequality: increase lengths of the shortest over-budget
    # codes until sum(2^-len) <= 1.
    used = lengths > 0
    kraft = np.sum(2.0 ** -lengths[used].astype(np.float64))
    while kraft > 1.0 + 1e-12:
        # Lengthen the currently shortest code below the limit.
        candidates = np.flatnonzero(used & (lengths < limit))
        if candidates.size == 0:
            raise InvalidArgumentError("cannot satisfy Kraft inequality")
        shortest = candidates[np.argmin(lengths[candidates])]
        kraft -= 2.0 ** -float(lengths[shortest])
        lengths[shortest] += 1
        kraft += 2.0 ** -float(lengths[shortest])
    return lengths


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical code values from code lengths."""
    codes = np.zeros(lengths.size, dtype=np.uint32)
    order = np.lexsort((np.arange(lengths.size), lengths))
    order = order[lengths[order] > 0]
    code = 0
    prev_len = 0
    for sym in order:
        length = int(lengths[sym])
        code <<= length - prev_len
        codes[sym] = code
        code += 1
        prev_len = length
    return codes


def build_code(freqs: np.ndarray) -> HuffmanCode:
    """Build a canonical Huffman code from a frequency table."""
    freqs = np.asarray(freqs, dtype=np.int64)
    if freqs.ndim != 1:
        raise InvalidArgumentError("freqs must be a 1-D array")
    lengths = _huffman_lengths(freqs)
    return HuffmanCode(lengths=lengths, codes=_canonical_codes(lengths))


def encoded_nbits(freqs: np.ndarray, code: HuffmanCode) -> int:
    """Exact bit count :func:`encode` would produce for this histogram.

    Lets the ``auto`` selector price a Huffman candidate from the
    frequency table alone and skip packing when it cannot win.
    """
    freqs = np.asarray(freqs, dtype=np.int64)
    return int((freqs * code.lengths.astype(np.int64)).sum())


def encode(symbols: np.ndarray, code: HuffmanCode) -> tuple[bytes, int]:
    """Encode a symbol array; returns ``(packed_bytes, nbits)``.

    Two table gathers (code value, code length) followed by one batched
    :func:`~repro.lossless.bitpack.pack_msb` pass.
    """
    symbols = np.asarray(symbols)
    if symbols.size == 0:
        return b"", 0
    lens = code.lengths[symbols].astype(np.int64)
    if not lens.all():
        raise InvalidArgumentError("symbol without a code encountered")
    return bitpack.pack_msb(code.codes[symbols], lens)


def build_window_table(code: HuffmanCode) -> tuple[np.ndarray, np.ndarray, int]:
    """Flat decode table: next ``max_len`` bits -> (symbol, code length).

    Returns ``(table_sym, table_len, max_len)`` where invalid windows map
    to symbol ``-1`` / length ``0``.  The arrays are read-only so they can
    be shared through the plan cache.
    """
    used = np.flatnonzero(code.lengths > 0)
    if used.size == 0:
        raise StreamFormatError("empty code book")
    max_len = int(code.lengths[used].max())
    if max_len > _MAX_CODE_LEN:
        # The encoder never emits codes past _MAX_CODE_LEN; a longer length
        # can only come from a forged code book, and would size the window
        # table at 2**max_len entries.
        raise StreamFormatError(
            f"huffman code length {max_len} exceeds the {_MAX_CODE_LEN}-bit limit"
        )
    table_sym = np.full(1 << max_len, -1, dtype=np.int32)
    table_len = np.zeros(1 << max_len, dtype=np.int32)
    for sym in used.tolist():
        length = int(code.lengths[sym])
        base = int(code.codes[sym]) << (max_len - length)
        span = 1 << (max_len - length)
        table_sym[base : base + span] = sym
        table_len[base : base + span] = length
    table_sym.setflags(write=False)
    table_len.setflags(write=False)
    return table_sym, table_len, max_len


def _window_table(code: HuffmanCode) -> tuple[np.ndarray, np.ndarray, int]:
    """Fetch (or build) the decode table, memoized for short codes.

    Canonical code values are a pure function of the length table, so the
    lengths alone key the cache (every code book in this package is built
    canonically).  Long codes bypass the cache — see :data:`_CACHE_MAX_LEN`.
    """
    max_len = int(code.lengths.max(initial=0))
    if max_len == 0 or max_len > _CACHE_MAX_LEN:
        return build_window_table(code)
    from ..core import plans

    return plans.huffman_window_table(code)


def decode(data: bytes, nbits: int, nsymbols: int, code: HuffmanCode) -> np.ndarray:
    """Decode ``nsymbols`` symbols from a packed Huffman bit stream."""
    if nsymbols == 0:
        return np.zeros(0, dtype=np.int64)
    if nbits > len(data) * 8:
        raise StreamFormatError("huffman stream shorter than declared")
    table_sym, table_len, max_len = _window_table(code)

    # Zero any tail bits of the last byte beyond ``nbits`` so windows near
    # the end read the same zero padding the bit-array decoder saw.
    nbytes = (nbits + 7) >> 3
    buf = np.frombuffer(data, dtype=np.uint8, count=nbytes).copy()
    if nbits & 7:
        buf[-1] &= 0xFF << (8 - (nbits & 7)) & 0xFF
    windows = bitpack.byte_windows(buf)

    # Window value, candidate symbol and code length at every bit offset;
    # the data-dependent walk then just chains code lengths.
    pos_all = np.arange(nbits, dtype=np.int64)
    win = bitpack.extract_msb(windows, pos_all, max_len)
    sym_at = table_sym[win]
    steps = table_len[win].tolist()

    positions = []
    append = positions.append
    pos = 0
    for _ in range(nsymbols):
        if pos >= nbits:
            raise StreamFormatError("huffman stream exhausted mid-symbol")
        append(pos)
        pos += steps[pos]
    out = sym_at[positions].astype(np.int64)
    if out.min(initial=0) < 0:
        raise StreamFormatError("invalid huffman code word")
    return out


def segment_bits(symbols: np.ndarray, code: HuffmanCode) -> np.ndarray:
    """Encoded bit length of each :data:`SEGMENT_SYMBOLS`-symbol block.

    This is the segment index the decoder uses to start every segment as
    an independent lane; it prices to two bytes per segment in the packed
    stream.
    """
    lens = code.lengths[symbols].astype(np.int64)
    starts = np.arange(0, symbols.size, SEGMENT_SYMBOLS, dtype=np.int64)
    return np.add.reduceat(lens, starts)


def decode_segmented(
    data: bytes, nbits: int, nsymbols: int, code: HuffmanCode, seg_bits: np.ndarray
) -> np.ndarray:
    """Decode a segment-indexed Huffman stream (see ``backend``).

    ``seg_bits`` holds the bit length of every segment but the last, so
    each segment's start offset is known up front and all segments decode
    together as parallel lanes: the data-dependent chain walk becomes
    :data:`SEGMENT_SYMBOLS` vectorized table-gather steps across every
    lane instead of one Python step per symbol.
    """
    if nsymbols == 0:
        return np.zeros(0, dtype=np.int64)
    if nbits > len(data) * 8 or nbits <= 0:
        raise StreamFormatError("huffman stream shorter than declared")
    nseg = -(-nsymbols // SEGMENT_SYMBOLS)
    seg_bits = np.asarray(seg_bits, dtype=np.int64)
    if seg_bits.size != nseg - 1:
        raise StreamFormatError("huffman segment index has wrong length")
    # Every full segment holds SEGMENT_SYMBOLS codes of 1..max bits.
    if seg_bits.size and (
        (seg_bits < SEGMENT_SYMBOLS).any()
        or (seg_bits > SEGMENT_SYMBOLS * _MAX_CODE_LEN).any()
    ):
        raise StreamFormatError("corrupt huffman segment index")
    starts = np.zeros(nseg, dtype=np.int64)
    np.cumsum(seg_bits, out=starts[1:])
    if int(starts[-1]) >= nbits:
        raise StreamFormatError("huffman segment index past stream end")
    table_sym, table_len, max_len = _window_table(code)

    nbytes = (nbits + 7) >> 3
    buf = np.frombuffer(data, dtype=np.uint8, count=nbytes).copy()
    if nbits & 7:
        buf[-1] &= 0xFF << (8 - (nbits & 7)) & 0xFF
    windows = bitpack.byte_windows(buf)

    # March all lanes one code word at a time.  Lanes that finish early
    # (only the last segment is partial) keep reading clamped windows;
    # their surplus outputs are discarded below, and the end-position
    # check would expose any lane that drifted.
    last_count = nsymbols - SEGMENT_SYMBOLS * (nseg - 1)
    pos = starts.copy()
    sym_out = np.empty((SEGMENT_SYMBOLS, nseg), dtype=np.int32)
    end_last = -1
    for i in range(SEGMENT_SYMBOLS):
        if i == last_count:
            end_last = int(pos[-1])
        cp = np.minimum(pos, nbits - 1)
        win = bitpack.extract_msb(windows, cp, max_len)
        sym_out[i] = table_sym[win]
        pos += table_len[win]
    if end_last < 0:
        end_last = int(pos[-1])

    # A well-formed stream has every lane stopping exactly where the next
    # one starts (and the last at ``nbits``); a stalled lane (invalid
    # window, length 0) or a drifted one cannot satisfy this.
    if nseg > 1 and not np.array_equal(pos[:-1], starts[1:]):
        raise StreamFormatError("huffman segment lanes misaligned")
    if end_last != nbits:
        raise StreamFormatError("huffman stream length mismatch")
    out = sym_out.T.ravel()[:nsymbols]
    if out.min(initial=0) < 0:
        raise StreamFormatError("invalid huffman code word")
    return out.astype(np.int64)


def serialize_code(code: HuffmanCode) -> bytes:
    """Serialize a code book as (nsymbols: u32, lengths: u8 array, RLE'd)."""
    lengths = code.lengths.astype(np.uint8)
    import struct

    # Simple zero-run compression of the length table: pairs (len, run).
    parts = [struct.pack("<I", lengths.size)]
    i = 0
    arr = lengths.tolist()
    n = len(arr)
    while i < n:
        j = i
        while j < n and arr[j] == arr[i] and j - i < 255:
            j += 1
        parts.append(bytes([arr[i], j - i]))
        i = j
    return b"".join(parts)


def deserialize_code(data: bytes) -> tuple[HuffmanCode, int]:
    """Inverse of :func:`serialize_code`; returns (code, bytes_consumed)."""
    import struct

    if len(data) < 4:
        raise StreamFormatError("truncated code book")
    (nsym,) = struct.unpack("<I", data[:4])
    # Each 2-byte (value, run) pair covers at most 255 symbols, so the
    # remaining bytes bound any honest symbol count — check before sizing
    # the length table from the untrusted field.
    if nsym > 255 * ((len(data) - 4) // 2):
        raise StreamFormatError(
            f"code book declares {nsym} symbols in {len(data)} bytes"
        )
    lengths = np.zeros(nsym, dtype=np.uint8)
    pos = 4
    filled = 0
    while filled < nsym:
        if pos + 2 > len(data):
            raise StreamFormatError("truncated code book run")
        val, run = data[pos], data[pos + 1]
        if run == 0:
            raise StreamFormatError("zero-length run in code book")
        if val > _MAX_CODE_LEN:
            raise StreamFormatError(
                f"huffman code length {val} exceeds the {_MAX_CODE_LEN}-bit limit"
            )
        lengths[filled : filled + run] = val
        filled += run
        pos += 2
    return HuffmanCode(lengths=lengths, codes=_canonical_codes(lengths)), pos
