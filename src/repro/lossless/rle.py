"""Byte run-length coding, fully vectorized both ways.

Used as one candidate in the lossless backend's ``auto`` mode.  SPECK
significance streams from smooth fields contain long zero runs at early
bitplanes, which RLE captures cheaply before Huffman coding.
"""

from __future__ import annotations

import struct

import numpy as np

from ..errors import StreamFormatError

__all__ = ["encode", "decode"]

_MAX_RUN = 255


def encode(data: bytes) -> bytes:
    """Encode as ``(value, run_length)`` byte pairs, runs capped at 255."""
    arr = np.frombuffer(data, dtype=np.uint8)
    if arr.size == 0:
        return struct.pack("<Q", 0)
    # Boundaries where the byte value changes.
    change = np.flatnonzero(np.diff(arr)) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [arr.size]))
    values = arr[starts]
    runs = ends - starts
    # Split runs longer than _MAX_RUN into multiple pairs.
    npairs = (runs + _MAX_RUN - 1) // _MAX_RUN
    out_values = np.repeat(values, npairs)
    # Run lengths per pair: _MAX_RUN for all but the last pair of each run.
    out_runs = np.full(int(npairs.sum()), _MAX_RUN, dtype=np.int64)
    last_idx = np.cumsum(npairs) - 1
    out_runs[last_idx] = runs - (npairs - 1) * _MAX_RUN
    pairs = np.empty(out_values.size * 2, dtype=np.uint8)
    pairs[0::2] = out_values
    pairs[1::2] = out_runs.astype(np.uint8)
    return struct.pack("<Q", arr.size) + pairs.tobytes()


def decode(data: bytes) -> bytes:
    """Inverse of :func:`encode`."""
    if len(data) < 8:
        raise StreamFormatError("truncated RLE stream")
    (n,) = struct.unpack("<Q", data[:8])
    pairs = np.frombuffer(data[8:], dtype=np.uint8)
    if pairs.size % 2 != 0:
        raise StreamFormatError("RLE stream has a dangling half-pair")
    values = pairs[0::2]
    runs = pairs[1::2].astype(np.int64)
    out = np.repeat(values, runs)
    if out.size != n:
        raise StreamFormatError(
            f"RLE stream decodes to {out.size} bytes, expected {n}"
        )
    return out.tobytes()
