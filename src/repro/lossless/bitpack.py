"""Vectorized MSB-first bit packing/unpacking kernels.

The entropy coders in this package (Huffman, LZ77 token streams, the
range coder's frequency table) all emit sequences of variable-width
bit fields, MSB-first within each byte — the layout
:class:`~repro.bitstream.writer.BitWriter` produces.  Doing that one
field at a time costs a Python-level loop per symbol; these kernels do
it in O(1) numpy passes:

* :func:`pack_msb` scatters every field's bytes with ``np.bincount``.
  Each field of width ``w`` at bit offset ``p`` touches at most five
  output bytes; because fields never share bits, per-byte contributions
  can be *summed* instead of OR'd, and a weighted bincount per byte
  lane is exact (sums stay below 256).
* :func:`byte_windows` precomputes the 32-bit big-endian window at
  every byte offset, after which :func:`extract_msb` reads a field at
  any bit position with two shifts — the decode-side mirror.

Both ends are byte-for-byte compatible with ``BitWriter``/``BitReader``
(`tests/test_lossless.py` cross-checks them).
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidArgumentError

__all__ = ["pack_msb", "byte_windows", "extract_msb", "MAX_FIELD_BITS"]

#: Widest field :func:`pack_msb` accepts.  A 32-bit field at bit offset
#: 7 spans 39 bits — five byte lanes — which bounds the lane loop.
MAX_FIELD_BITS = 32

#: Widest field :func:`extract_msb` can read from a 32-bit window
#: (width + 7 offset bits must fit in 32).
MAX_EXTRACT_BITS = 25


def pack_msb(values: np.ndarray, lengths: np.ndarray) -> tuple[bytes, int]:
    """Concatenate variable-width bit fields MSB-first; returns (bytes, nbits).

    ``values[i]``'s low ``lengths[i]`` bits are appended in order.  Bits
    above each field's width are masked off.  Widths may be zero (the
    field contributes nothing) but not negative or above
    :data:`MAX_FIELD_BITS`.
    """
    values = np.asarray(values, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if values.shape != lengths.shape or values.ndim != 1:
        raise InvalidArgumentError("values and lengths must be matching 1-D arrays")
    if lengths.size == 0:
        return b"", 0
    if int(lengths.min()) < 0 or int(lengths.max()) > MAX_FIELD_BITS:
        raise InvalidArgumentError(
            f"field widths must lie in [0, {MAX_FIELD_BITS}]"
        )
    ends = np.cumsum(lengths)
    total = int(ends[-1])
    if total == 0:
        return b"", 0
    offsets = ends - lengths
    nbytes = (total + 7) >> 3

    values = values & ((np.uint64(1) << lengths.astype(np.uint64)) - np.uint64(1))
    # Align each field inside a 64-bit big-endian window that starts at
    # its first output byte: bits [r, r+len) of the window, r = offset&7.
    shift = (np.uint64(64) - (offsets & 7).astype(np.uint64) - lengths.astype(np.uint64))
    aligned = values << shift
    byte0 = offsets >> 3

    acc = np.zeros(nbytes + 5, dtype=np.float64)
    for k in range(5):
        lane = ((aligned >> np.uint64(56 - 8 * k)) & np.uint64(0xFF)).astype(np.float64)
        acc += np.bincount(byte0 + k, weights=lane, minlength=nbytes + 5)
    return acc[:nbytes].astype(np.uint8).tobytes(), total


def byte_windows(data: bytes | np.ndarray) -> np.ndarray:
    """32-bit big-endian window starting at every byte offset of ``data``.

    ``w[i]`` holds bytes ``data[i:i+4]`` (zero-padded past the end) as a
    big-endian ``uint32`` — the decode-side companion of
    :func:`pack_msb`, consumed by :func:`extract_msb`.
    """
    buf = (
        np.frombuffer(data, dtype=np.uint8)
        if not isinstance(data, np.ndarray)
        else data.astype(np.uint8, copy=False)
    )
    b = np.concatenate([buf, np.zeros(4, dtype=np.uint8)]).astype(np.uint32)
    return (b[:-3] << 8 | b[1:-2]) << 16 | (b[2:-1] << 8 | b[3:])


def extract_msb(
    windows: np.ndarray, bitpos: np.ndarray, width: int | np.ndarray
) -> np.ndarray:
    """Read a ``width``-bit MSB-first field at each bit position.

    ``windows`` comes from :func:`byte_windows`; ``width`` is either a
    scalar or a per-position array, and must not exceed
    :data:`MAX_EXTRACT_BITS` so the field plus its sub-byte offset fits
    in one 32-bit window.  Callers must keep ``bitpos + width`` within
    the underlying buffer.
    """
    bitpos = np.asarray(bitpos)
    if not np.isscalar(width) and np.asarray(width).ndim > 0:
        warr = np.asarray(width, dtype=np.int64)
        if warr.size and (int(warr.min()) < 0 or int(warr.max()) > MAX_EXTRACT_BITS):
            raise InvalidArgumentError(
                f"extract widths must lie in [0, {MAX_EXTRACT_BITS}]"
            )
        w = windows[bitpos >> 3]
        wa = warr.astype(np.uint32)
        shift = np.uint32(32) - wa - (bitpos & 7).astype(np.uint32)
        return (w >> shift) & ((np.uint32(1) << wa) - np.uint32(1))
    if width < 0 or width > MAX_EXTRACT_BITS:
        raise InvalidArgumentError(
            f"extract width must lie in [0, {MAX_EXTRACT_BITS}]"
        )
    if width == 0:
        return np.zeros(bitpos.shape, dtype=np.uint32)
    w = windows[bitpos >> 3]
    shift = (np.uint32(32 - width) - (bitpos & 7).astype(np.uint32))
    return (w >> shift) & np.uint32((1 << width) - 1)
