"""Adaptive binary arithmetic coding (Witten-Neal-Cleary style).

The SPECK lineage traditionally offers an arithmetic-coded variant (the
original SPECK paper and QccPack both report one): the significance-map
bits of smooth data are heavily skewed toward zero, which an adaptive
bit model exploits without any side information.  Here the coder serves
as an additional method of the lossless backend — useful on SPERR's
significance-heavy sections where Huffman's one-bit-per-symbol floor
costs it.

Implementation: 32-bit integer range coder with carry handling via
pending-bit counting; adaptive models keep per-context zero/one counts
with halving when the total saturates.  Context: the bit's position
within its byte plus the previous bit (16 models) — enough to capture
byte-level structure without a Python-speed-prohibitive model.
"""

from __future__ import annotations

import struct

import numpy as np

from ..errors import StreamFormatError

__all__ = ["encode", "decode", "encode_bits", "decode_bits", "AdaptiveBitModel"]

_TOP = 1 << 32
_HALF = 1 << 31
_QUARTER = 1 << 30
_THREE_QUARTER = 3 << 30
_MASK = _TOP - 1
_MAX_TOTAL = 1 << 16


class AdaptiveBitModel:
    """Zero/one counts with saturation halving; p0 = c0 / (c0 + c1)."""

    __slots__ = ("c0", "c1")

    def __init__(self) -> None:
        self.c0 = 1
        self.c1 = 1

    def update(self, bit: int) -> None:
        if bit:
            self.c1 += 1
        else:
            self.c0 += 1
        if self.c0 + self.c1 >= _MAX_TOTAL:
            self.c0 = (self.c0 + 1) >> 1
            self.c1 = (self.c1 + 1) >> 1


class _Encoder:
    def __init__(self) -> None:
        self.low = 0
        self.high = _MASK
        self.pending = 0
        self.bits: list[int] = []

    def _emit(self, bit: int) -> None:
        self.bits.append(bit)
        other = 1 - bit
        for _ in range(self.pending):
            self.bits.append(other)
        self.pending = 0

    def encode(self, bit: int, model: AdaptiveBitModel) -> None:
        total = model.c0 + model.c1
        span = self.high - self.low + 1
        split = self.low + (span * model.c0) // total - 1
        if bit:
            self.low = split + 1
        else:
            self.high = split
        model.update(bit)
        while True:
            if self.high < _HALF:
                self._emit(0)
            elif self.low >= _HALF:
                self._emit(1)
                self.low -= _HALF
                self.high -= _HALF
            elif self.low >= _QUARTER and self.high < _THREE_QUARTER:
                self.pending += 1
                self.low -= _QUARTER
                self.high -= _QUARTER
            else:
                break
            self.low = (self.low << 1) & _MASK
            self.high = ((self.high << 1) | 1) & _MASK

    def finish(self) -> list[int]:
        self.pending += 1
        if self.low < _QUARTER:
            self._emit(0)
        else:
            self._emit(1)
        return self.bits


class _Decoder:
    def __init__(self, bits: np.ndarray) -> None:
        self.bits = bits
        self.pos = 0
        self.low = 0
        self.high = _MASK
        self.value = 0
        for _ in range(32):
            self.value = (self.value << 1) | self._next()

    def _next(self) -> int:
        if self.pos < self.bits.size:
            b = int(self.bits[self.pos])
            self.pos += 1
            return b
        return 0

    def decode(self, model: AdaptiveBitModel) -> int:
        total = model.c0 + model.c1
        span = self.high - self.low + 1
        split = self.low + (span * model.c0) // total - 1
        bit = 1 if self.value > split else 0
        if bit:
            self.low = split + 1
        else:
            self.high = split
        model.update(bit)
        while True:
            if self.high < _HALF:
                pass
            elif self.low >= _HALF:
                self.low -= _HALF
                self.high -= _HALF
                self.value -= _HALF
            elif self.low >= _QUARTER and self.high < _THREE_QUARTER:
                self.low -= _QUARTER
                self.high -= _QUARTER
                self.value -= _QUARTER
            else:
                break
            self.low = (self.low << 1) & _MASK
            self.high = ((self.high << 1) | 1) & _MASK
            self.value = ((self.value << 1) | self._next()) & _MASK
        return bit


def encode_bits(bits: np.ndarray, n_contexts: int, context_fn) -> bytes:
    """Encode a bit array with caller-supplied context selection."""
    models = [AdaptiveBitModel() for _ in range(n_contexts)]
    enc = _Encoder()
    prev = 0
    for i, b in enumerate(np.asarray(bits, dtype=np.uint8).tolist()):
        enc.encode(int(b), models[context_fn(i, prev)])
        prev = int(b)
    out = enc.finish()
    return np.packbits(np.asarray(out, dtype=np.uint8)).tobytes()


def decode_bits(data: bytes, n: int, n_contexts: int, context_fn) -> np.ndarray:
    """Inverse of :func:`encode_bits`."""
    models = [AdaptiveBitModel() for _ in range(n_contexts)]
    dec = _Decoder(np.unpackbits(np.frombuffer(data, dtype=np.uint8)))
    out = np.zeros(n, dtype=np.uint8)
    prev = 0
    for i in range(n):
        b = dec.decode(models[context_fn(i, prev)])
        out[i] = b
        prev = b
    return out


def _byte_context(i: int, prev: int) -> int:
    return ((i & 7) << 1) | prev


def encode(data: bytes) -> bytes:
    """Arithmetic-code a byte string (16 bit-position/previous-bit contexts)."""
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
    payload = encode_bits(bits, 16, _byte_context)
    return struct.pack("<Q", len(data)) + payload


#: Decode-side cap on the declared output size.  The backend never feeds
#: more than 64 KiB into :func:`encode` (``_AC_SIZE_LIMIT``); a declared
#: size far beyond that is corruption, and the per-bit Python decode loop
#: must not be driven by a forged 2**60 count.
_MAX_DECODE_BYTES = 1 << 17


def decode(payload: bytes) -> bytes:
    """Inverse of :func:`encode`."""
    if len(payload) < 8:
        raise StreamFormatError("truncated arithmetic-coded stream")
    (n,) = struct.unpack("<Q", payload[:8])
    if n > _MAX_DECODE_BYTES:
        raise StreamFormatError(
            f"arithmetic-coded stream declares {n} bytes, beyond the "
            f"{_MAX_DECODE_BYTES}-byte decode cap"
        )
    bits = decode_bits(payload[8:], n * 8, 16, _byte_context)
    return np.packbits(bits).tobytes()
