"""LZ77 with vectorized hash-chain match finding.

This supplies the dictionary-matching half of the "deflate-like" lossless
backend (the ZSTD stand-in; see DESIGN.md and docs/lossless.md).  The
stream format is unchanged from the original per-byte encoder, so old
payloads decode bit-for-bit; only how matches are *found* and how tokens
are *packed* moved to numpy:

* candidates: every position is hashed on its next 4 bytes at once; a
  stable sort groups equal hashes, and shifting the sorted order by
  ``k = 1..8`` yields each position's k-th most recent same-hash
  predecessor — the hash chain, probed in bulk.
* verification/extension: 4-byte equality via ``uint32`` views, then
  8-bytes-at-a-time extension with the mismatch located by counting the
  XOR's trailing zero bytes.
* parsing stays greedy (jump over each emitted match) but walks one
  Python step per *token run*, not per byte; token bit fields are then
  batch-packed with :func:`~repro.lossless.bitpack.pack_msb`.

Token format (bit-packed, MSB-first):
  flag=0: literal byte (8 bits)
  flag=1: match — offset-1 (16 bits), length-MIN_MATCH (8 bits)
"""

from __future__ import annotations

import struct

import numpy as np

from ..errors import StreamFormatError
from . import bitpack

__all__ = ["encode", "decode", "MIN_MATCH", "MAX_MATCH", "WINDOW"]

MIN_MATCH = 4
MAX_MATCH = MIN_MATCH + 255
WINDOW = 1 << 16
#: How many same-hash predecessors each position probes.  The vectorized
#: prober pays one array pass per depth, so this is a direct
#: time/ratio knob (the old per-byte encoder walked up to 16).
_CHAIN_DEPTH = 8
#: The ``auto`` backend routes payloads up to ``_LZ77_SIZE_LIMIT``
#: (1 MiB) through the encoder; the decoder accepts a little headroom
#: beyond that so explicit-method streams stay decodable.
_MAX_DECODE_BYTES = 1 << 22


def _tz_bytes(diff: np.ndarray) -> np.ndarray:
    """Trailing zero *bytes* of each nonzero ``uint64`` (64 where zero).

    Isolates the lowest set bit and takes its float64 ``log2`` — exact,
    because the isolated value is a power of two.
    """
    low = diff & (np.uint64(0) - diff)
    tz = np.full(diff.shape, 64, dtype=np.int64)
    nz = diff != 0
    tz[nz] = np.log2(low[nz].astype(np.float64)).astype(np.int64)
    return tz >> 3


def _find_matches(data: bytes, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Best match (length, offset) at every position; length 0 when none."""
    best_len = np.zeros(n, dtype=np.int64)
    best_off = np.zeros(n, dtype=np.int64)
    npos = n - (MIN_MATCH - 1)
    if npos <= 0:
        return best_len, best_off
    a = np.frombuffer(data, dtype=np.uint8)[:n].astype(np.uint32)
    h = (
        a[: n - 3] * np.uint32(506832829)
        + a[1 : n - 2] * np.uint32(2654435761)
        + a[2 : n - 1] * np.uint32(40503)
        + a[3:n]
    ) & np.uint32(0xFFFF)

    # The 8-byte little-endian word starting at every byte offset, as one
    # gatherable table (padding keeps reads past the end in range; the
    # per-position length cap keeps the padding out of any match).
    padded = np.frombuffer(
        data[:n] + b"\x00" * (MAX_MATCH + 8), dtype=np.uint8
    ).astype(np.uint64)
    u64_at = np.zeros(n + MAX_MATCH, dtype=np.uint64)
    for r in range(8):
        u64_at |= padded[r : r + u64_at.size] << np.uint64(8 * r)

    # Stable sort groups equal hashes in position order; the entry k slots
    # earlier inside a group is the k-th most recent predecessor.  Probe
    # each depth with an 8-byte proxy match; ties on the proxy keep the
    # most recent predecessor (smaller k, probed first).
    order = np.argsort(h, kind="stable").astype(np.int64)
    ho = h[order]
    proxy = np.zeros(n, dtype=np.int64)
    src = np.zeros(n, dtype=np.int64)
    for k in range(1, _CHAIN_DEPTH + 1):
        if k >= order.size:
            break
        ii = order[k:]
        jj = order[:-k]
        valid = (ho[k:] == ho[:-k]) & (ii - jj <= WINDOW)
        ii = ii[valid]
        jj = jj[valid]
        if not ii.size:
            continue
        diff = u64_at[ii] ^ u64_at[jj]
        plen = _tz_bytes(diff)
        # A true 4-byte match means the low 4 bytes agree (the 16-bit
        # hash has collisions); shorter agreement is no match at all.
        plen[plen < MIN_MATCH] = 0
        better = plen > proxy[ii]
        upd = ii[better]
        proxy[upd] = plen[better]
        src[upd] = jj[better]

    # Exact lengths: positions whose proxy maxed out the 8-byte probe are
    # extended in bulk, 8 bytes per round, only while still equal — one
    # winning candidate per position instead of one per chain depth.
    maxlen = np.minimum(MAX_MATCH, n - np.arange(n, dtype=np.int64))
    has = proxy >= MIN_MATCH
    best_len[has] = np.minimum(proxy[has], maxlen[has])
    best_off[has] = np.arange(n, dtype=np.int64)[has] - src[has]
    act = np.flatnonzero(has & (proxy >= 8) & (best_len < maxlen))
    depth = 8
    while act.size and depth < MAX_MATCH:
        diff = u64_at[act + depth] ^ u64_at[src[act] + depth]
        grow = np.minimum(best_len[act] + _tz_bytes(diff), maxlen[act])
        best_len[act] = grow
        act = act[(diff == 0) & (grow < maxlen[act])]
        depth += 8
    return best_len, best_off


def encode(data: bytes, max_bytes: int | None = None) -> bytes | None:
    """Compress ``data``; output is ``<u64 size><u64 nbits><bit tokens>``.

    ``max_bytes`` is the ``auto`` selector's early-abort budget: the
    token census prices the exact output before any bits are packed, so
    a losing candidate costs match finding but never packing.
    """
    n = len(data)
    if n == 0:
        return struct.pack("<QQ", 0, 0)
    best_len, best_off = _find_matches(data, n)

    # Greedy parse, one Python step per literal run or match: precompute
    # each position's next matchable position so literal runs are jumped,
    # not walked.
    has_match = best_len >= MIN_MATCH
    next_match = np.full(n + 1, n, dtype=np.int64)
    idx = np.flatnonzero(has_match)
    next_match[idx] = idx
    next_match = np.minimum.accumulate(next_match[::-1])[::-1]

    bl = best_len.tolist()
    nm = next_match.tolist()
    match_pos: list[int] = []
    lit_runs: list[tuple[int, int]] = []  # [start, stop) of literal bytes
    pos = 0
    n_lit = 0
    while pos < n:
        if bl[pos] >= MIN_MATCH:
            match_pos.append(pos)
            pos += bl[pos]
        else:
            # No match here, so the next match position is strictly ahead;
            # everything up to it is one literal run.
            stop = nm[pos]
            lit_runs.append((pos, stop))
            n_lit += stop - pos
            pos = stop

    nbits = 9 * n_lit + 25 * len(match_pos)
    if max_bytes is not None and 16 + ((nbits + 7) >> 3) > max_bytes:
        return None

    mp = np.array(match_pos, dtype=np.int64)
    arr = np.frombuffer(data, dtype=np.uint8)
    if lit_runs:
        lit_pos = np.concatenate([np.arange(s, e, dtype=np.int64) for s, e in lit_runs])
    else:
        lit_pos = np.empty(0, dtype=np.int64)
    # One token per literal byte (flag 0 + byte) and per match
    # (flag 1 + 16-bit offset-1 + 8-bit length-4), ordered by position.
    tok_pos = np.concatenate([lit_pos, mp])
    tok_val = np.concatenate(
        [
            arr[lit_pos].astype(np.uint64),
            (np.uint64(1 << 24) | (
                (best_off[mp] - 1).astype(np.uint64) << np.uint64(8)
            ) | (best_len[mp] - MIN_MATCH).astype(np.uint64))
            if mp.size
            else np.empty(0, dtype=np.uint64),
        ]
    )
    tok_width = np.concatenate(
        [
            np.full(lit_pos.size, 9, dtype=np.int64),
            np.full(mp.size, 25, dtype=np.int64),
        ]
    )
    by_pos = np.argsort(tok_pos, kind="stable")
    payload, packed_bits = bitpack.pack_msb(tok_val[by_pos], tok_width[by_pos])
    assert packed_bits == nbits
    return struct.pack("<QQ", n, nbits) + payload


def decode(data: bytes) -> bytes:
    """Inverse of :func:`encode` (and of the original per-byte encoder)."""
    if len(data) < 16:
        raise StreamFormatError("truncated LZ77 stream")
    n, nbits = struct.unpack("<QQ", data[:16])
    # The encoder never sees more than the backend's 1 MiB size gate; a
    # declared size far beyond that is a corrupt length field, and the
    # reconstruction loop must not chase it.
    if n > _MAX_DECODE_BYTES:
        raise StreamFormatError(
            f"LZ77 stream declares {n} bytes, beyond the decode cap"
        )
    if n == 0:
        return b""
    body = data[16:]
    avail = min(nbits, len(body) * 8)

    # Pass 1 — token boundaries.  The flag bit alone fixes each token's
    # width, so the walk is a few list reads per token; the loop must
    # track match lengths as it goes to know when the output is full.
    windows = bitpack.byte_windows(body)
    wlist = windows.tolist()
    flag_list = np.unpackbits(np.frombuffer(body, dtype=np.uint8)).tolist()
    tok_pos: list[int] = []
    tok_flag: list[bool] = []
    produced = 0
    pos = 0
    while produced < n:
        if pos >= avail:
            raise StreamFormatError("LZ77 stream exhausted early")
        flag = flag_list[pos]
        width = 25 if flag else 9
        if pos + width > avail:
            raise StreamFormatError("LZ77 stream exhausted early")
        tok_pos.append(pos)
        tok_flag.append(bool(flag))
        if flag:
            bp = pos + 17  # 8-bit length field after flag + 16-bit offset
            produced += ((wlist[bp >> 3] >> (24 - (bp & 7))) & 0xFF) + MIN_MATCH
        else:
            produced += 1
        pos += width

    tok_pos_a = np.asarray(tok_pos, dtype=np.int64)
    tok_flag_a = np.asarray(tok_flag, dtype=bool)

    lit_tok = tok_pos_a[~tok_flag_a]
    mat_tok = tok_pos_a[tok_flag_a]
    lit_bytes = bitpack.extract_msb(windows, lit_tok + 1, 8).astype(np.uint8)
    offsets = bitpack.extract_msb(windows, mat_tok + 1, 16).astype(np.int64) + 1
    lengths = bitpack.extract_msb(windows, mat_tok + 17, 8).astype(np.int64) + MIN_MATCH

    sizes = np.where(tok_flag_a, 0, 1)
    sizes[tok_flag_a] = lengths
    ends = np.cumsum(sizes)
    if int(ends[-1]) != n:
        raise StreamFormatError("LZ77 stream decodes to wrong size")

    # Pass 2 — reconstruction, one Python step per literal run or match.
    out = bytearray(n)
    lit_all = lit_bytes.tobytes()
    cursor = 0
    lit_cursor = 0
    it_off = offsets.tolist()
    it_len = lengths.tolist()
    mi = 0
    flag_runs = tok_flag_a
    i = 0
    ntok = tok_pos_a.size
    while i < ntok:
        if not flag_runs[i]:
            j = i
            while j < ntok and not flag_runs[j]:
                j += 1
            run = j - i
            out[cursor : cursor + run] = lit_all[lit_cursor : lit_cursor + run]
            cursor += run
            lit_cursor += run
            i = j
        else:
            off = it_off[mi]
            length = it_len[mi]
            mi += 1
            if off > cursor:
                raise StreamFormatError("LZ77 match offset beyond output")
            start = cursor - off
            if off >= length:
                out[cursor : cursor + length] = out[start : start + length]
            else:
                piece = bytes(out[start:cursor])
                reps = -(-length // off)
                out[cursor : cursor + length] = (piece * reps)[:length]
            cursor += length
            i += 1
    return bytes(out)
