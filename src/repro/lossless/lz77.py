"""LZ77 with hash-chain match finding.

This supplies the dictionary-matching half of the "deflate-like" lossless
backend (the ZSTD stand-in; see DESIGN.md).  Match finding is a Python loop
with a 4-byte-hash chain table, so the backend only routes small-to-medium
payloads (headers, code books, low-entropy sections) through it; the
``auto`` selector keeps whichever candidate is smallest.

Token format (bit-packed, MSB-first):
  flag=0: literal byte (8 bits)
  flag=1: match — offset-1 (16 bits), length-MIN_MATCH (8 bits)
"""

from __future__ import annotations

import struct

import numpy as np

from ..bitstream import BitReader, BitWriter
from ..errors import StreamFormatError

__all__ = ["encode", "decode", "MIN_MATCH", "MAX_MATCH", "WINDOW"]

MIN_MATCH = 4
MAX_MATCH = MIN_MATCH + 255
WINDOW = 1 << 16
_CHAIN_LIMIT = 16


def _hash4(data: bytes, i: int) -> int:
    return (data[i] * 506832829 + data[i + 1] * 2654435761
            + data[i + 2] * 40503 + data[i + 3]) & 0xFFFF


def encode(data: bytes) -> bytes:
    """Compress ``data``; output is ``<u64 original size><bit tokens>``."""
    n = len(data)
    writer = BitWriter()
    head: dict[int, list[int]] = {}
    i = 0
    while i < n:
        best_len = 0
        best_off = 0
        if i + MIN_MATCH <= n:
            h = _hash4(data, i)
            chain = head.get(h)
            if chain:
                lo = i - WINDOW
                for j in reversed(chain[-_CHAIN_LIMIT:]):
                    if j < lo:
                        break
                    # Extend the match.
                    length = 0
                    max_len = min(MAX_MATCH, n - i)
                    while length < max_len and data[j + length] == data[i + length]:
                        length += 1
                    if length > best_len:
                        best_len = length
                        best_off = i - j
                        if length >= MAX_MATCH:
                            break
            head.setdefault(h, []).append(i)
        if best_len >= MIN_MATCH:
            writer.write_bit(1)
            writer.write_uint(best_off - 1, 16)
            writer.write_uint(best_len - MIN_MATCH, 8)
            # Insert hash entries for skipped positions (sparsely, every
            # other position, to bound encoder time).
            end = i + best_len
            k = i + 1
            while k < end and k + MIN_MATCH <= n:
                head.setdefault(_hash4(data, k), []).append(k)
                k += 2
            i = end
        else:
            writer.write_bit(0)
            writer.write_uint(data[i], 8)
            i += 1
    payload = writer.getvalue()
    return struct.pack("<QQ", n, writer.nbits) + payload


def decode(data: bytes) -> bytes:
    """Inverse of :func:`encode`."""
    if len(data) < 16:
        raise StreamFormatError("truncated LZ77 stream")
    n, nbits = struct.unpack("<QQ", data[:16])
    # The encoder never sees more than 256 KiB (the backend's size gate);
    # a declared size far beyond that is a corrupt length field, and the
    # byte-wise reconstruction loop must not chase it.
    if n > 1 << 20:
        raise StreamFormatError(
            f"LZ77 stream declares {n} bytes, beyond the decode cap"
        )
    reader = BitReader(data[16:], nbits=min(nbits, (len(data) - 16) * 8))
    out = bytearray()
    while len(out) < n:
        if reader.remaining < 1:
            raise StreamFormatError("LZ77 stream exhausted early")
        if reader.read_bit():
            off = reader.read_uint(16) + 1
            length = reader.read_uint(8) + MIN_MATCH
            if off > len(out):
                raise StreamFormatError("LZ77 match offset beyond output")
            start = len(out) - off
            for k in range(length):  # overlapping copies must be byte-wise
                out.append(out[start + k])
        else:
            out.append(reader.read_uint(8))
    if len(out) != n:
        raise StreamFormatError("LZ77 stream decodes to wrong size")
    return bytes(out)
