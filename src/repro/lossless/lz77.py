"""LZ77 with vectorized hash-chain match finding.

This supplies the dictionary-matching half of the "deflate-like" lossless
backend (the ZSTD stand-in; see DESIGN.md and docs/lossless.md).  The
stream format is unchanged from the original per-byte encoder, so old
payloads decode bit-for-bit; only how matches are *found* and how tokens
are *packed* moved to numpy:

* candidates: every position is hashed on its next 4 bytes at once; a
  sort groups equal hashes, and shifting the sorted order by
  ``k = 1..8`` yields each position's k-th most recent same-hash
  predecessor — the hash chain, probed in bulk with an adaptive depth
  cap (a depth that improves almost nothing ends the walk).
* verification: 8-byte probe words XOR'd in bulk, the mismatch located
  bytewise; saturated probes are extended lazily at parse time.
* parsing stays greedy (jump over each emitted match) but walks one
  Python step per *token run*, not per byte; token bit fields are then
  batch-packed with :func:`~repro.lossless.bitpack.pack_msb`.

Token format (bit-packed, MSB-first):
  flag=0: literal byte (8 bits)
  flag=1: match — offset-1 (16 bits), length-MIN_MATCH (8 bits)
"""

from __future__ import annotations

import struct

import numpy as np

from ..errors import StreamFormatError
from . import bitpack

__all__ = ["encode", "decode", "MIN_MATCH", "MAX_MATCH", "WINDOW"]

MIN_MATCH = 4
MAX_MATCH = MIN_MATCH + 255
WINDOW = 1 << 16
#: How many same-hash predecessors each position probes.  The vectorized
#: prober pays one array pass per depth, so this is a direct
#: time/ratio knob (the old per-byte encoder walked up to 16).
_CHAIN_DEPTH = 8
#: The ``auto`` backend routes payloads up to ``_LZ77_SIZE_LIMIT``
#: (1 MiB) through the encoder; the decoder accepts a little headroom
#: beyond that so explicit-method streams stay decodable.
_MAX_DECODE_BYTES = 1 << 22


def _prefix_bytes(diff: np.ndarray) -> np.ndarray:
    """Agreeing low-order byte count (0..8) of each XOR'd ``uint64`` pair.

    Little-endian words put the first pair byte lowest, so the index of
    the first nonzero byte *is* the match proxy length.
    """
    bv = diff.view(np.uint8).reshape(-1, 8) != 0
    plen = bv.argmax(axis=1).astype(np.int64)
    plen[diff == 0] = 8
    return plen


def _find_matches(data: bytes, n: int) -> tuple[np.ndarray, np.ndarray]:
    """8-byte-capped match (proxy length, source position) per position.

    ``proxy[i]`` is the length of agreement with the best candidate,
    saturated at 8 (the probe word width); values below ``MIN_MATCH``
    mean no match.  The greedy parser extends saturated proxies lazily —
    only at positions it actually visits, which on long-match data is a
    tiny fraction of the positions probed here.
    """
    proxy = np.zeros(n, dtype=np.int64)
    src = np.zeros(n, dtype=np.int64)
    npos = n - (MIN_MATCH - 1)
    if npos <= 0:
        return proxy, src
    # The 8-byte (and 4-byte) little-endian words starting at every byte
    # offset — unaligned strided views over the padded buffer, so building
    # them costs nothing and only touched elements are ever materialized.
    buf = data[:n] + b"\x00" * (MAX_MATCH + 16)
    buf += b"\x00" * ((-len(buf)) % 8)
    u8 = np.frombuffer(buf, dtype=np.uint8)
    u64_at = np.lib.stride_tricks.as_strided(
        u8.view(np.uint64), shape=(n + MAX_MATCH,), strides=(1,)
    )
    u32_at = np.lib.stride_tricks.as_strided(
        u8.view(np.uint32), shape=(npos,), strides=(1,)
    )
    # Fibonacci (Knuth multiplicative) hash of each 4-byte window word:
    # one wrapping multiply and a shift, keeping the top 16 bits.
    h = (u32_at * np.uint32(2654435761)) >> np.uint32(16)

    # Sorting groups equal hashes in position order; the entry k slots
    # earlier inside a group is the k-th most recent predecessor.  The
    # (hash << 24 | position) key makes an unstable sort stable and a
    # single int64 quicksort beats a stable argsort several-fold; huge
    # inputs overflow the position field and fall back.
    if h.size < (1 << 24):
        key = (h.astype(np.int64) << 24) | np.arange(h.size, dtype=np.int64)
        key.sort()
        order = key & 0xFFFFFF
        ho = None  # key deltas below subsume the hash-equality test
    else:
        order = np.argsort(h.astype(np.uint16), kind="stable").astype(np.int64)
        ho = h[order].astype(np.int64)
        key = None

    # Probe each depth with an 8-byte proxy; ties keep the most recent
    # predecessor (smaller k, probed first).  State lives in sorted
    # (order-space) arrays so every depth compares shifted views, and
    # positions whose proxy already maxed out the probe drop out of deeper
    # depths — an exact filter, since an update needs a strictly longer
    # proxy and 8 is the ceiling, so the found matches are unchanged.
    # The probe cap itself adapts: once a depth improves almost no
    # positions, deeper predecessors are nearly always worse-or-equal
    # (more distant, same hash bucket), so the chain walk stops early —
    # random data stops after one depth, saturated repetitive data after
    # two, and only mixed data pays the full depth.
    u64o = u64_at[order]
    proxy_o = np.zeros(order.size, dtype=np.int64)
    src_o = np.zeros(order.size, dtype=np.int64)
    yield_floor = max(64, npos >> 9)
    for k in range(1, _CHAIN_DEPTH + 1):
        if k >= order.size:
            break
        if key is not None:
            # Sorted keys are (hash << 24) | position: a delta within the
            # 64 KiB window implies the hash bits agree too, so one
            # subtract covers both the group and the window test.
            cand = key[k:] - key[:-k] <= WINDOW
        else:
            cand = (ho[k:] == ho[:-k]) & (order[k:] - order[:-k] <= WINDOW)
        if k > 1:
            cand &= proxy_o[k:] < 8
        idx = np.flatnonzero(cand)
        if not idx.size:
            break
        diff = u64o[idx + k] ^ u64o[idx]
        plen = _prefix_bytes(diff)
        # A true 4-byte match means the low 4 bytes agree (the 16-bit
        # hash has collisions); shorter agreement is no match at all.
        plen[plen < MIN_MATCH] = 0
        better = plen != 0 if k == 1 else plen > proxy_o[idx + k]
        upd = idx[better] + k
        proxy_o[upd] = plen[better]
        src_o[upd] = order[idx[better]]
        if upd.size < yield_floor:
            break
    proxy[order] = proxy_o
    src[order] = src_o
    return proxy, src


def encode(data: bytes, max_bytes: int | None = None) -> bytes | None:
    """Compress ``data``; output is ``<u64 size><u64 nbits><bit tokens>``.

    ``max_bytes`` is the ``auto`` selector's early-abort budget: the
    token census prices the exact output before any bits are packed, so
    a losing candidate costs match finding but never packing.
    """
    n = len(data)
    if n == 0:
        return struct.pack("<QQ", 0, 0)
    proxy, src = _find_matches(data, n)
    arr = np.frombuffer(data, dtype=np.uint8)

    # Greedy parse, one Python step per literal run or match: precompute
    # each position's next matchable position so literal runs are jumped,
    # not walked.  Saturated proxies are extended exactly here — one short
    # array compare per *emitted* match instead of a bulk extension pass
    # over every matchable position.
    has_match = proxy >= MIN_MATCH
    next_match = np.full(n + 1, n, dtype=np.int64)
    idx = np.flatnonzero(has_match)
    next_match[idx] = idx
    next_match = np.minimum.accumulate(next_match[::-1])[::-1]

    # The parse touches one position per token, a tiny fraction of n, so
    # scalar numpy reads beat materializing whole-array Python lists.
    bl = proxy
    sl = src
    nm = next_match
    match_pos: list[int] = []
    match_len: list[int] = []
    lit_runs: list[tuple[int, int]] = []  # [start, stop) of literal bytes
    pos = 0
    n_lit = 0
    while pos < n:
        length = int(bl[pos])
        if length >= MIN_MATCH:
            maxl = MAX_MATCH if n - pos > MAX_MATCH else n - pos
            if length > maxl:
                length = maxl
            elif length == 8 and maxl > 8:
                s = int(sl[pos])
                ne = arr[pos + 8 : pos + maxl] != arr[s + 8 : s + maxl]
                hit = np.argmax(ne)
                length = 8 + (int(hit) if ne[hit] else maxl - 8)
            if length >= MIN_MATCH:
                match_pos.append(pos)
                match_len.append(length)
                pos += length
                continue
            # Length cap near the buffer end sank this below MIN_MATCH;
            # fall through and emit the gap as literals.
            lit_runs.append((pos, pos + 1))
            n_lit += 1
            pos += 1
        else:
            # No match here, so the next match position is strictly ahead;
            # everything up to it is one literal run.
            stop = int(nm[pos])
            lit_runs.append((pos, stop))
            n_lit += stop - pos
            pos = stop

    nbits = 9 * n_lit + 25 * len(match_pos)
    if max_bytes is not None and 16 + ((nbits + 7) >> 3) > max_bytes:
        return None

    mp = np.array(match_pos, dtype=np.int64)
    ml = np.array(match_len, dtype=np.int64)
    if lit_runs:
        lit_pos = np.concatenate([np.arange(s, e, dtype=np.int64) for s, e in lit_runs])
    else:
        lit_pos = np.empty(0, dtype=np.int64)
    # One token per literal byte (flag 0 + byte) and per match
    # (flag 1 + 16-bit offset-1 + 8-bit length-4), ordered by position.
    tok_pos = np.concatenate([lit_pos, mp])
    tok_val = np.concatenate(
        [
            arr[lit_pos].astype(np.uint64),
            (np.uint64(1 << 24) | (
                (mp - src[mp] - 1).astype(np.uint64) << np.uint64(8)
            ) | (ml - MIN_MATCH).astype(np.uint64))
            if mp.size
            else np.empty(0, dtype=np.uint64),
        ]
    )
    tok_width = np.concatenate(
        [
            np.full(lit_pos.size, 9, dtype=np.int64),
            np.full(mp.size, 25, dtype=np.int64),
        ]
    )
    by_pos = np.argsort(tok_pos, kind="stable")
    payload, packed_bits = bitpack.pack_msb(tok_val[by_pos], tok_width[by_pos])
    assert packed_bits == nbits
    return struct.pack("<QQ", n, nbits) + payload


def decode(data: bytes) -> bytes:
    """Inverse of :func:`encode` (and of the original per-byte encoder)."""
    if len(data) < 16:
        raise StreamFormatError("truncated LZ77 stream")
    n, nbits = struct.unpack("<QQ", data[:16])
    # The encoder never sees more than the backend's 1 MiB size gate; a
    # declared size far beyond that is a corrupt length field, and the
    # reconstruction loop must not chase it.
    if n > _MAX_DECODE_BYTES:
        raise StreamFormatError(
            f"LZ77 stream declares {n} bytes, beyond the decode cap"
        )
    if n == 0:
        return b""
    body = data[16:]
    avail = min(nbits, len(body) * 8)

    # Pass 1 — token boundaries.  The flag bit alone fixes each token's
    # width, so the walk is a few list reads per token; the loop must
    # track match lengths as it goes to know when the output is full.
    windows = bitpack.byte_windows(body)
    wlist = windows.tolist()
    flag_list = np.unpackbits(np.frombuffer(body, dtype=np.uint8)).tolist()
    tok_pos: list[int] = []
    tok_flag: list[bool] = []
    produced = 0
    pos = 0
    while produced < n:
        if pos >= avail:
            raise StreamFormatError("LZ77 stream exhausted early")
        flag = flag_list[pos]
        width = 25 if flag else 9
        if pos + width > avail:
            raise StreamFormatError("LZ77 stream exhausted early")
        tok_pos.append(pos)
        tok_flag.append(bool(flag))
        if flag:
            bp = pos + 17  # 8-bit length field after flag + 16-bit offset
            produced += ((wlist[bp >> 3] >> (24 - (bp & 7))) & 0xFF) + MIN_MATCH
        else:
            produced += 1
        pos += width

    tok_pos_a = np.asarray(tok_pos, dtype=np.int64)
    tok_flag_a = np.asarray(tok_flag, dtype=bool)

    lit_tok = tok_pos_a[~tok_flag_a]
    mat_tok = tok_pos_a[tok_flag_a]
    lit_bytes = bitpack.extract_msb(windows, lit_tok + 1, 8).astype(np.uint8)
    offsets = bitpack.extract_msb(windows, mat_tok + 1, 16).astype(np.int64) + 1
    lengths = bitpack.extract_msb(windows, mat_tok + 17, 8).astype(np.int64) + MIN_MATCH

    sizes = np.where(tok_flag_a, 0, 1)
    sizes[tok_flag_a] = lengths
    ends = np.cumsum(sizes)
    if int(ends[-1]) != n:
        raise StreamFormatError("LZ77 stream decodes to wrong size")

    # Pass 2 — reconstruction, one Python step per literal run or match.
    out = bytearray(n)
    lit_all = lit_bytes.tobytes()
    cursor = 0
    lit_cursor = 0
    it_off = offsets.tolist()
    it_len = lengths.tolist()
    mi = 0
    flag_runs = tok_flag_a
    i = 0
    ntok = tok_pos_a.size
    while i < ntok:
        if not flag_runs[i]:
            j = i
            while j < ntok and not flag_runs[j]:
                j += 1
            run = j - i
            out[cursor : cursor + run] = lit_all[lit_cursor : lit_cursor + run]
            cursor += run
            lit_cursor += run
            i = j
        else:
            off = it_off[mi]
            length = it_len[mi]
            mi += 1
            if off > cursor:
                raise StreamFormatError("LZ77 match offset beyond output")
            start = cursor - off
            if off >= length:
                out[cursor : cursor + length] = out[start : start + length]
            else:
                piece = bytes(out[start:cursor])
                reps = -(-length // off)
                out[cursor : cursor + length] = (piece * reps)[:length]
            cursor += length
            i += 1
    return bytes(out)
