"""Block-interleaved static range coder (byte-wise rANS) — stream tag 6.

This replaces the per-bit adaptive arithmetic coder (:mod:`.arith`, tag
5, now decode-only legacy) on the encode side.  The asymmetric numeral
system formulation keeps the whole coder in integer adds/shifts and —
crucially for this pure-numpy codebase — interleaves ``L`` independent
coder states so renormalization runs over numpy lanes: the Python-level
loop executes once per *block* of ``L`` symbols, not once per bit.

Model: static order-0 byte histogram, normalized to 12-bit frequencies
(sum exactly ``4096``, every occurring byte >= 1).  Compression on SPERR
streams is within ~1% of the adaptive coder's; the static table is what
makes the lanes independent and the decode table a single 4096-entry
gather.

State invariant (standard rANS with 16-bit renormalization): each lane
state ``x`` stays in ``[2^16, 2^32)``.  Encoding runs the symbols
backwards, emitting at most one ``u16`` per lane per step; the finished
word stream is reversed so the decoder — which runs forwards — reads it
with a single monotonically advancing pointer.  Within one step the
renorming lanes are emitted in ascending lane order, so after the global
reversal the decoder sees them descending; :func:`decode` reverses each
step's slice to match.

Payload layout (after the backend's one-byte method tag)::

    u8            format version (=1)
    u64           n, original byte count          [n == 0: payload ends]
    384 bytes     256 x 12-bit frequencies, MSB-first packed
    L x u32       final encoder states (= initial decoder states), LE
    u32           word count W
    W x u16       renormalization words, LE, in decode order

``L`` is not stored: it is a pure function of ``n`` (:func:`_lanes`),
chosen so the block loop runs at most ~:data:`_STEP_TARGET` iterations.
That both keeps the header small and bounds decoder work for any forged
``n`` the cap below admits.  Decoding a valid stream must end with every
lane back at the initial state ``2^16`` and the word stream fully
consumed — a free integrity check that catches most corruption even
though the format carries no checksum of its own.
"""

from __future__ import annotations

import struct

import numpy as np

from ..errors import StreamFormatError
from . import bitpack

__all__ = ["encode", "decode"]

_VERSION = 1
_PROB_BITS = 12
_PROB_SCALE = 1 << _PROB_BITS
_RANS_L = 1 << 16  # lower bound of the state interval [2^16, 2^32)
_FREQ_TABLE_BYTES = 256 * _PROB_BITS // 8

#: Target number of Python-level block iterations per encode/decode.
_STEP_TARGET = 512
#: Reject declared sizes past this before allocating (mirrors the other
#: decoders' caps; far beyond any section the pipeline produces).
_MAX_DECODE_BYTES = 1 << 27


def _lanes(n: int) -> int:
    """Interleaving width for ``n`` symbols (power of two, >= 1)."""
    need = -(-n // _STEP_TARGET)
    lanes = 1
    while lanes < need:
        lanes <<= 1
    return lanes


def _normalize_freqs(counts: np.ndarray) -> np.ndarray:
    """Scale a byte histogram to 12-bit frequencies summing to 4096.

    Every byte that occurs keeps frequency >= 1; the rounding residue is
    settled against the largest entries, which costs the least code
    length.  Deterministic, so encoder and tests agree bit-for-bit.
    """
    total = int(counts.sum())
    scaled = counts * _PROB_SCALE // total
    scaled[(counts > 0) & (scaled == 0)] = 1
    diff = _PROB_SCALE - int(scaled.sum())
    if diff > 0:
        scaled[int(np.argmax(scaled))] += diff
    while diff < 0:
        # Shrink the largest entry, never below 1.  Each pass settles as
        # much residue as that entry allows, so this terminates in at
        # most 256 iterations (the residue cannot exceed the number of
        # occurring symbols).
        i = int(np.argmax(scaled))
        take = min(int(scaled[i]) - 1, -diff)
        scaled[i] -= take
        diff += take
    if int(scaled.max()) == _PROB_SCALE:
        # A single occurring byte would need frequency 4096, one past the
        # 12-bit field; donate one count to a neighbor (≈0.0004 bits per
        # byte of rate, and the decoder needs no special case).
        i = int(np.argmax(scaled))
        scaled[i] -= 1
        scaled[(i + 1) % 256] += 1
    return scaled


def encode(data: bytes, max_bytes: int | None = None) -> bytes | None:
    """Range-code ``data``; returns the payload, or None past ``max_bytes``.

    ``max_bytes`` is the early-abort budget for the ``auto`` selector:
    once the emitted words alone guarantee a bigger payload than the
    current best candidate, encoding stops.
    """
    n = len(data)
    head = struct.pack("<BQ", _VERSION, n)
    if n == 0:
        return head
    arr = np.frombuffer(data, dtype=np.uint8)
    freqs = _normalize_freqs(np.bincount(arr, minlength=256).astype(np.int64))
    freq_u = freqs.astype(np.uint64)
    cum_u = np.concatenate(([0], np.cumsum(freqs)[:-1])).astype(np.uint64)

    lanes = _lanes(n)
    steps = -(-n // lanes)
    rem = n - (steps - 1) * lanes  # lanes active in the final block
    sym = np.zeros(steps * lanes, dtype=np.uint8)
    sym[:n] = arr
    sym = sym.reshape(steps, lanes)

    fixed_bytes = len(head) + _FREQ_TABLE_BYTES + 4 * lanes + 4

    x = np.full(lanes, _RANS_L, dtype=np.uint64)
    chunks: list[np.ndarray] = []
    emitted = 0
    # Encode blocks in reverse; the final (partial) block goes first so
    # the forward-running decoder meets it last.
    for t in range(steps - 1, -1, -1):
        active = lanes if t < steps - 1 else rem
        s = sym[t, :active]
        f = freq_u[s]
        c = cum_u[s]
        xa = x[:active]
        renorm = xa >= (f << np.uint64(32 - _PROB_BITS))
        if renorm.any():
            out = (xa[renorm] & np.uint64(0xFFFF)).astype(np.uint16)
            chunks.append(out)
            emitted += out.size
            xa = np.where(renorm, xa >> np.uint64(16), xa)
        x[:active] = ((xa // f) << np.uint64(_PROB_BITS)) + (xa % f) + c
        if max_bytes is not None and fixed_bytes + 2 * emitted > max_bytes:
            return None

    words = np.concatenate(chunks)[::-1] if chunks else np.empty(0, dtype=np.uint16)
    if max_bytes is not None and fixed_bytes + 2 * words.size > max_bytes:
        return None
    table, table_bits = bitpack.pack_msb(
        freqs.astype(np.uint64), np.full(256, _PROB_BITS, dtype=np.int64)
    )
    assert table_bits == 8 * _FREQ_TABLE_BYTES
    return b"".join(
        (
            head,
            table,
            x.astype("<u4").tobytes(),
            struct.pack("<I", words.size),
            words.astype("<u2").tobytes(),
        )
    )


def decode(payload: bytes) -> bytes:
    """Inverse of :func:`encode`; raises ``StreamFormatError`` on damage."""
    if len(payload) < 9:
        raise StreamFormatError("truncated range-coder header")
    version, n = struct.unpack_from("<BQ", payload, 0)
    if version != _VERSION:
        raise StreamFormatError(f"unknown range-coder version {version}")
    if n == 0:
        return b""
    if n > _MAX_DECODE_BYTES:
        raise StreamFormatError(
            f"range-coder stream declares {n} bytes, beyond the decode cap"
        )
    lanes = _lanes(n)
    steps = -(-n // lanes)
    rem = n - (steps - 1) * lanes
    pos = 9
    need = _FREQ_TABLE_BYTES + 4 * lanes + 4
    if len(payload) < pos + need:
        raise StreamFormatError("truncated range-coder section")
    table = bitpack.byte_windows(payload[pos : pos + _FREQ_TABLE_BYTES])
    freqs = bitpack.extract_msb(
        table, np.arange(256, dtype=np.int64) * _PROB_BITS, _PROB_BITS
    ).astype(np.int64)
    pos += _FREQ_TABLE_BYTES
    if int(freqs.sum()) != _PROB_SCALE:
        raise StreamFormatError(
            "range-coder frequency table does not sum to 4096"
        )
    x = np.frombuffer(payload, dtype="<u4", count=lanes, offset=pos).astype(np.uint64)
    pos += 4 * lanes
    (n_words,) = struct.unpack_from("<I", payload, pos)
    pos += 4
    if 2 * n_words > len(payload) - pos:
        raise StreamFormatError(
            f"range-coder stream declares {n_words} words beyond the payload"
        )
    words = np.frombuffer(payload, dtype="<u2", count=n_words, offset=pos).astype(
        np.uint64
    )

    if (x < np.uint64(_RANS_L)).any():
        # Valid lane states live in [2^16, 2^32); anything below can only
        # come from corruption and would desync the renormalization.
        raise StreamFormatError("range-coder lane state below the interval")
    freq_u = freqs.astype(np.uint64)
    cum = np.concatenate(([0], np.cumsum(freqs)[:-1]))
    cum_u = cum.astype(np.uint64)
    cum2sym = np.repeat(np.arange(256, dtype=np.uint8), freqs)

    out = np.empty((steps, lanes), dtype=np.uint8)
    ptr = 0
    for t in range(steps):
        active = lanes if t < steps - 1 else rem
        xa = x[:active]
        slot = xa & np.uint64(_PROB_SCALE - 1)
        s = cum2sym[slot]
        out[t, :active] = s
        xa = freq_u[s] * (xa >> np.uint64(_PROB_BITS)) + slot - cum_u[s]
        renorm = np.flatnonzero(xa < np.uint64(_RANS_L))
        k = renorm.size
        if k:
            if ptr + k > words.size:
                raise StreamFormatError("range-coder word stream exhausted")
            # The encoder emitted this step's words in ascending lane
            # order; the global reversal flipped them, so read descending.
            xa[renorm] = (xa[renorm] << np.uint64(16)) | words[ptr : ptr + k][::-1]
            ptr += k
        x[:active] = xa
    if ptr != words.size or not (x == np.uint64(_RANS_L)).all():
        # A clean decode consumes every word and parks every lane back at
        # the initial state; anything else means the stream was damaged.
        raise StreamFormatError("range-coder stream fails the final-state check")
    return out.reshape(-1)[:n].tobytes()
