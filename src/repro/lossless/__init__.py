"""From-scratch lossless codecs: Huffman, RLE, LZ77, a static range
coder, and the composite backend used as SPERR's final (ZSTD-substitute)
pass.  See docs/lossless.md for stream formats and the selection policy."""

from . import arith, bitpack, huffman, lz77, rc, rle, universal
from .backend import METHODS, compress, decompress

__all__ = [
    "compress",
    "decompress",
    "METHODS",
    "arith",
    "bitpack",
    "huffman",
    "rc",
    "rle",
    "lz77",
    "universal",
]
