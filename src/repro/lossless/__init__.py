"""From-scratch lossless codecs: Huffman, RLE, LZ77, and the composite
backend used as SPERR's final (ZSTD-substitute) pass."""

from . import arith, huffman, lz77, rle, universal
from .backend import METHODS, compress, decompress

__all__ = ["compress", "decompress", "METHODS", "arith", "huffman", "rle", "lz77", "universal"]
