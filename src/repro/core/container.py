"""Multi-chunk container format and the top-level compress/decompress.

Layout of a version-2 ``.sperr`` container::

    magic "SPRRPY2\\0"                      8 bytes
    rank                 u8
    dtype code           u8  (0=float32, 1=float64)
    mode code            u8  (0=PWE, 1=size, 2=PSNR)
    lossless flag        u8
    header CRC32         u32 (over the whole header, this field zeroed)
    global shape         rank * u64
    n_chunks             u32
    per-chunk bounds     n_chunks * rank * 2 * u64
    per-chunk byte size  n_chunks * u64
    per-chunk CRC32      n_chunks * u32
    chunk payloads       (each optionally lossless-compressed)

Version 1 (magic ``SPRRPY1\\0``) lacks the two CRC layers; v1 payloads
remain readable and decode bit-identically (`parse_container` reports
``format_version``).  Version 3 (magic ``SPRRPY3\\0``) appends a
non-finite mask field to the chunk table — ``mask nbytes u64`` and
``mask CRC32 u32`` after the per-chunk CRCs, with the RLE-coded mask
blob (:mod:`repro.core.mask`) placed between the header and the first
chunk payload.  v3 is written only when the input carries NaN/Inf
samples; finite inputs keep producing byte-identical v2 payloads.

Version 4 (magic ``SPRRPY4\\0``) is the *adaptive* layout: a per-chunk
codec tag column (``n_chunks * u8``, values from
:mod:`repro.core.adaptive`) sits between the per-chunk CRCs and the
mask field, and the mask nbytes/CRC pair is always present (zero for
finite inputs).  Each chunk stream is then self-contained under its
tag's decoder — the lossless-wrapped SPERR stream, a raw ``SZX1``
stream, or verbatim ``RAW1`` bytes — so mixed-codec payloads are
self-describing.  v4 is written only when at least one chunk routed
away from sperr; all-sperr output (including everything produced by
``codec="quality"``, the default) keeps its exact v2/v3 bytes.

Each sperr chunk payload is the self-contained stream of
:func:`repro.core.pipeline.compress_chunk`, mirroring real SPERR's
concatenation of independent per-chunk bitstreams (Sec. III-D).  The
per-chunk CRCs make chunk independence a *fault-isolation* boundary:
:func:`decompress` can verify, skip, and report damaged chunks
(``on_error="salvage"``) instead of losing the whole volume.
"""

from __future__ import annotations

import math
import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

from functools import partial

from .. import lossless, obs
from ..errors import (
    AllocationLimitError,
    IntegrityError,
    InvalidArgumentError,
    StreamFormatError,
    decode_guard,
)
from .adaptive import (
    CODEC_SPERR,
    CODEC_STORED,
    CODEC_SZX,
    choose_codecs,
    decode_stored_chunk,
    encode_stored_chunk,
)
from .chunking import Chunk, assemble, plan_chunks
from .mask import (
    DegradationNote,
    apply_mask,
    decode_mask,
    encode_mask,
    sanitize_array,
    tighten_pwe_for_dtype,
)
from .modes import PsnrMode, PweMode, SizeMode
from .parallel import map_chunk_arrays, robust_chunk_map
from .pipeline import ChunkReport, compress_chunk, decompress_chunk

__all__ = [
    "CompressionResult",
    "ParsedContainer",
    "ChunkDecodeStatus",
    "DecodeReport",
    "DecodeResult",
    "DegradationNote",
    "CONTAINER_VERSION",
    "MASKED_CONTAINER_VERSION",
    "ADAPTIVE_CONTAINER_VERSION",
    "MAX_TOTAL_POINTS",
    "compress",
    "decompress",
    "decode_tagged_chunk",
    "parse_container",
    "build_container",
]

_MAGIC_V1 = b"SPRRPY1\x00"
_MAGIC_V2 = b"SPRRPY2\x00"
_MAGIC_V3 = b"SPRRPY3\x00"
_MAGIC_V4 = b"SPRRPY4\x00"
_MAGIC_BY_VERSION = {1: _MAGIC_V1, 2: _MAGIC_V2, 3: _MAGIC_V3, 4: _MAGIC_V4}

#: Container format version written by :func:`build_container` by default.
#: Version 3 adds the non-finite mask section and is only emitted for
#: inputs that actually carry NaN/Inf samples, so fully-finite payloads
#: stay byte-identical to version 2.
CONTAINER_VERSION = 2

#: Container version carrying a non-finite sample mask (see layout above).
MASKED_CONTAINER_VERSION = 3

#: Container version carrying per-chunk codec tags (see layout above);
#: written only when the adaptive dispatcher routed a chunk off sperr.
ADAPTIVE_CONTAINER_VERSION = 4

#: Hard cap on the number of points a container may declare before the
#: decoder allocates the output volume.  Untrusted shape fields beyond
#: this raise :class:`~repro.errors.AllocationLimitError` instead of
#: letting a forged header request terabytes from ``np.empty``.
MAX_TOTAL_POINTS = 1 << 31

_DTYPES = {np.dtype(np.float32): 0, np.dtype(np.float64): 1}
_DTYPE_BY_CODE = {v: k for k, v in _DTYPES.items()}

#: byte offset of the v2 header-CRC field (after magic + 4 meta bytes)
_HEADER_CRC_OFFSET = 12


@dataclass
class CompressionResult:
    """Compressed payload plus accounting from every chunk.

    ``trace`` is a :class:`~repro.obs.TraceReport` when :func:`compress`
    ran with ``trace=True`` (and no ambient trace was already
    collecting); otherwise ``None``.  ``notes`` lists every
    :class:`~repro.core.mask.DegradationNote` the input-hardening layer
    absorbed (masked samples, constant fields, denormal-heavy data).
    """

    payload: bytes
    reports: list[ChunkReport]
    trace: "obs.TraceReport | None" = None
    notes: list[DegradationNote] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        return len(self.payload)

    @property
    def npoints(self) -> int:
        return sum(r.npoints for r in self.reports)

    @property
    def bpp(self) -> float:
        """Achieved container bitrate in bits per point."""
        return 8.0 * self.nbytes / self.npoints

    @property
    def n_outliers(self) -> int:
        return sum(r.n_outliers for r in self.reports)


def _compress_chunk_job(
    part: np.ndarray,
    mode: PweMode | SizeMode | PsnrMode,
    wavelet: str,
    levels: int | None,
    lossless_method: str,
) -> tuple[bytes, ChunkReport]:
    """Module-level chunk job (picklable for the process executor).

    The lossless final pass runs here — inside the executor — so chunked
    compression parallelizes the entropy-coding stage along with the
    transform/SPECK stages instead of serializing it in the parent.
    """
    raw, report = compress_chunk(part, mode, wavelet=wavelet, levels=levels)
    packed = lossless.compress(raw, method=lossless_method)
    report.total_nbytes = len(packed)
    return packed, report


def decode_tagged_chunk(
    stream: bytes, tag: int, rank: int, expected_shape: tuple[int, ...]
) -> np.ndarray:
    """Decode one chunk stream under its chunk-table codec tag.

    Shared by the container decoder and the store reader so every decode
    path dispatches identically on mixed-codec payloads.
    """
    if tag == CODEC_SPERR:
        with decode_guard("sperr"):
            return decompress_chunk(
                lossless.decompress(stream),
                rank=rank,
                expected_shape=expected_shape,
            )
    if tag == CODEC_SZX:
        from ..compressors.szxlike.codec import decode_chunk as szx_decode

        return szx_decode(stream, expected_shape=expected_shape)
    if tag == CODEC_STORED:
        return decode_stored_chunk(stream, expected_shape=expected_shape)
    raise StreamFormatError(f"unknown chunk codec tag {tag}")


def _decompress_chunk_job(
    item: tuple[bytes, tuple[int, ...], int], rank: int
) -> np.ndarray:
    """Module-level chunk-decode job (picklable for the process executor)."""
    stream, expected_shape, tag = item
    return decode_tagged_chunk(stream, tag, rank, expected_shape)


def _salvage_chunk_job(
    item: tuple[bytes, tuple[int, ...], int | None, int], rank: int
) -> tuple[str, np.ndarray | str]:
    """Salvage-mode chunk job: never raises, returns ``(status, value)``.

    ``value`` is the decoded array on success, or a one-line exception
    summary on failure.  CRC verification happens here (inside the
    executor) so a damaged chunk costs one checksum, not one traceback.
    """
    stream, expected_shape, crc, tag = item
    if crc is not None and zlib.crc32(stream) != crc:
        return ("crc_mismatch", f"chunk CRC mismatch (stored {crc:#010x})")
    try:
        out = decode_tagged_chunk(stream, tag, rank, expected_shape)
        return ("ok", out)
    except Exception as exc:  # noqa: BLE001 - isolation boundary by design
        return ("decode_error", f"{type(exc).__name__}: {exc}")


def compress(
    data: np.ndarray,
    mode: PweMode | SizeMode | PsnrMode,
    *,
    chunk_shape: int | tuple[int, ...] | None = None,
    wavelet: str = "cdf97",
    levels: int | None = None,
    lossless_method: str = "auto",
    executor: str = "batch",
    workers: int | None = None,
    trace: bool = False,
    codec: str = "quality",
) -> CompressionResult:
    """Compress an array into a self-contained SPERR container.

    ``chunk_shape=None`` compresses the volume as a single chunk;
    an int or tuple tiles it for parallel execution (Sec. III-D).
    The default ``batch`` executor runs same-shaped chunks through
    stacked numpy kernels in-process (byte-identical to ``serial``);
    ``thread``/``process`` fan chunks out across workers instead.
    ``trace=True`` collects a per-stage span trace for this call and
    attaches it as ``result.trace``; when an ambient
    :class:`~repro.obs.trace` is already active, spans flow to it
    instead and ``result.trace`` stays ``None``.

    ``codec`` selects the compression tier per chunk
    (:mod:`repro.core.adaptive`): ``"quality"`` (default) runs every
    chunk through the SPERR pipeline and is byte-identical to the
    pre-adaptive behaviour; ``"fast"`` routes every chunk to the
    SZx-style block codec; ``"adaptive"`` samples each chunk and picks
    szx / sperr / stored per its smoothness.  ``fast`` and ``adaptive``
    require a :class:`~repro.core.modes.PweMode` bound, which every
    tier honors — routing trades ratio against throughput only.
    """
    if trace and not obs.is_active():
        with obs.trace("sperr.compress") as tracer:
            result = _compress_impl(
                data,
                mode,
                chunk_shape=chunk_shape,
                wavelet=wavelet,
                levels=levels,
                lossless_method=lossless_method,
                executor=executor,
                workers=workers,
                codec=codec,
            )
        result.trace = tracer.report()
        return result
    return _compress_impl(
        data,
        mode,
        chunk_shape=chunk_shape,
        wavelet=wavelet,
        levels=levels,
        lossless_method=lossless_method,
        executor=executor,
        workers=workers,
        codec=codec,
    )


def _compress_impl(
    data: np.ndarray,
    mode: PweMode | SizeMode | PsnrMode,
    *,
    chunk_shape: int | tuple[int, ...] | None,
    wavelet: str,
    levels: int | None,
    lossless_method: str,
    executor: str,
    workers: int | None,
    codec: str = "quality",
) -> CompressionResult:
    """Validation, chunk fan-out, codec routing, and container framing."""
    data = np.asarray(data)
    if data.dtype not in _DTYPES:
        if np.issubdtype(data.dtype, np.floating) or np.issubdtype(data.dtype, np.integer):
            data = data.astype(np.float64)
        else:
            raise InvalidArgumentError(f"unsupported dtype {data.dtype}")
    if data.ndim < 1 or data.ndim > 3:
        raise InvalidArgumentError("only 1-D, 2-D, and 3-D arrays are supported")
    # Input hardening happens once, before any executor dispatch, so the
    # batch / serial / thread / process paths all see the same finite
    # field and stay byte-identical on masked inputs.
    data, mask_codes, notes = sanitize_array(data)
    mode = tighten_pwe_for_dtype(mode, data)

    chunks = plan_chunks(data.shape, chunk_shape)
    # ``quality`` skips the sampling pass entirely, so the default path
    # stays byte-identical (and cycle-identical) to the legacy pipeline.
    if codec == "quality":
        tags = np.zeros(len(chunks), dtype=np.uint8)
    else:
        tags = choose_codecs(
            [data[c.slices()] for c in chunks], mode, codec
        )

    with obs.span(
        "sperr.compress",
        shape=data.shape,
        chunks=len(chunks),
        executor=executor,
        codec=codec,
    ):
        if not tags.any():
            if executor == "batch" and len(chunks) > 1 and not isinstance(mode, PsnrMode):
                # Same-shaped chunks traverse each stage as one stacked numpy
                # call; output streams are byte-identical to the serial loop.
                from .batch import compress_chunks_batched

                results = compress_chunks_batched(
                    data,
                    chunks,
                    mode,
                    wavelet=wavelet,
                    levels=levels,
                    lossless_method=lossless_method,
                )
            else:
                # Chunks are sliced inside the executor: the process path
                # ships the volume through shared memory once instead of
                # pickling every chunk.  ``batch`` with a single chunk (or
                # PSNR mode, whose per-chunk calibration is sequential)
                # degrades to the serial reference loop.
                results = map_chunk_arrays(
                    _compress_chunk_job,
                    data,
                    chunks,
                    args=(mode, wavelet, levels, lossless_method),
                    executor=executor,
                    workers=workers,
                )
        else:
            results = _compress_parts_mixed(
                data,
                chunks,
                tags,
                mode,
                wavelet=wavelet,
                levels=levels,
                lossless_method=lossless_method,
                executor=executor,
                workers=workers,
            )
        streams = [packed for packed, _ in results]
        reports = [report for _, report in results]

        mode_code = 0 if isinstance(mode, PweMode) else (2 if isinstance(mode, PsnrMode) else 1)
        with obs.span("container.build", n_chunks=len(chunks)):
            mask_blob = None if mask_codes is None else encode_mask(mask_codes)
            if tags.any():
                version = ADAPTIVE_CONTAINER_VERSION
            elif mask_blob is not None:
                version = MASKED_CONTAINER_VERSION
            else:
                version = CONTAINER_VERSION
            payload = build_container(
                data.ndim,
                np.dtype(data.dtype),
                mode_code,
                data.shape,
                chunks,
                streams,
                mask_blob=mask_blob,
                version=version,
                codec_tags=tags if tags.any() else None,
            )
        obs.add_counter("container.bytes", len(payload))
    return CompressionResult(payload=payload, reports=reports, notes=notes)


def _fast_tier_report(
    shape: tuple[int, ...], tolerance: float, nbytes: int
) -> ChunkReport:
    """Accounting stub for szx/stored chunks (no SPECK/outlier stages)."""
    return ChunkReport(
        shape=tuple(shape),
        q=2.0 * tolerance,
        tolerance=tolerance,
        speck_nbits=0,
        outlier_nbits=0,
        n_outliers=0,
        total_nbytes=nbytes,
    )


def _compress_parts_mixed(
    data: np.ndarray,
    chunks: list[Chunk],
    tags: np.ndarray,
    mode: PweMode | SizeMode | PsnrMode,
    *,
    wavelet: str,
    levels: int | None,
    lossless_method: str,
    executor: str,
    workers: int | None,
) -> list[tuple[bytes, ChunkReport]]:
    """Compress a mixed-codec chunk plan, lane by lane.

    sperr-tagged chunks keep their batched/parallel path; szx-tagged
    chunks run through one stacked :func:`encode_chunks` kernel call
    (which is byte-identical chunk-by-chunk to serial encoding); stored
    chunks are framed verbatim.  Results come back in chunk order.
    """
    results: list[tuple[bytes, ChunkReport] | None] = [None] * len(chunks)
    sperr_idx = [i for i, t in enumerate(tags) if t == CODEC_SPERR]
    szx_idx = [i for i, t in enumerate(tags) if t == CODEC_SZX]
    stored_idx = [i for i, t in enumerate(tags) if t == CODEC_STORED]

    if sperr_idx:
        sub = [chunks[i] for i in sperr_idx]
        if executor == "batch" and len(sub) > 1 and not isinstance(mode, PsnrMode):
            from .batch import compress_chunks_batched

            pairs = compress_chunks_batched(
                data,
                sub,
                mode,
                wavelet=wavelet,
                levels=levels,
                lossless_method=lossless_method,
            )
        else:
            pairs = map_chunk_arrays(
                _compress_chunk_job,
                data,
                sub,
                args=(mode, wavelet, levels, lossless_method),
                executor=executor,
                workers=workers,
            )
        for i, pair in zip(sperr_idx, pairs):
            results[i] = pair

    # fast/adaptive policies guarantee PweMode before any chunk is
    # tagged szx or stored (see choose_codecs).
    if szx_idx:
        from ..compressors.szxlike.codec import encode_chunks as szx_encode

        views = [
            np.ascontiguousarray(data[chunks[i].slices()], dtype=np.float64)
            for i in szx_idx
        ]
        with obs.span("szx.encode", n_chunks=len(szx_idx)):
            streams = szx_encode(views, mode.tolerance)
        for i, stream, view in zip(szx_idx, streams, views):
            results[i] = (
                stream,
                _fast_tier_report(view.shape, mode.tolerance, len(stream)),
            )

    if stored_idx:
        with obs.span("stored.encode", n_chunks=len(stored_idx)):
            for i in stored_idx:
                part = data[chunks[i].slices()]
                stream = encode_stored_chunk(part)
                results[i] = (
                    stream,
                    _fast_tier_report(part.shape, mode.tolerance, len(stream)),
                )

    return results  # type: ignore[return-value]


@dataclass(frozen=True)
class ParsedContainer:
    """Structural view of a container payload (headers decoded, chunk
    streams still lossless-compressed).

    ``format_version`` is 1 for legacy payloads, 2 for CRC-protected
    ones, 3 for CRC-protected payloads carrying a non-finite sample
    mask, and 4 for adaptive payloads with per-chunk codec tags;
    ``chunk_crcs`` is ``None`` on v1 payloads.  ``mask_blob`` is
    the raw (still lossless-compressed) mask section of a v3/v4 payload —
    its stored CRC is in ``mask_crc`` and is verified by
    :func:`decompress`, not here, so salvage can survive mask damage.
    ``codec_tags`` is the per-chunk codec column of a v4 payload
    (:data:`~repro.core.adaptive.CODEC_SPERR` /
    :data:`~repro.core.adaptive.CODEC_SZX` /
    :data:`~repro.core.adaptive.CODEC_STORED`), ``None`` below v4
    (every chunk is sperr).
    """

    rank: int
    dtype: np.dtype
    mode_code: int
    shape: tuple[int, ...]
    chunks: list[Chunk]
    streams: list[bytes]
    format_version: int = CONTAINER_VERSION
    chunk_crcs: tuple[int, ...] | None = None
    mask_blob: bytes | None = None
    mask_crc: int | None = None
    codec_tags: tuple[int, ...] | None = None


def parse_container(payload: bytes) -> ParsedContainer:
    """Decode the container framing without touching chunk payloads.

    Accepts both v1 and v2 payloads; on v2, the header CRC is verified
    before any field is trusted (:class:`~repro.errors.IntegrityError` on
    mismatch).  Chunk-stream CRCs are *returned*, not verified — chunk
    verification belongs to :func:`decompress`, which can salvage.
    """
    if payload[:8] == _MAGIC_V1:
        version = 1
    elif payload[:8] == _MAGIC_V2:
        version = 2
    elif payload[:8] == _MAGIC_V3:
        version = 3
    elif payload[:8] == _MAGIC_V4:
        version = 4
    else:
        raise StreamFormatError("not a SPERR container (bad magic)")
    try:
        return _parse_container_body(payload, version)
    except struct.error as exc:
        raise StreamFormatError(f"container framing truncated: {exc}") from exc


def _parse_container_body(payload: bytes, version: int) -> ParsedContainer:
    pos = 8
    rank, dtype_code, mode_code, _lossless_flag = struct.unpack_from("<BBBB", payload, pos)
    pos += 4
    stored_header_crc = None
    if version >= 2:
        (stored_header_crc,) = struct.unpack_from("<I", payload, pos)
        pos += 4
    if rank < 1 or rank > 3:
        raise StreamFormatError(f"invalid rank {rank}")
    if dtype_code not in _DTYPE_BY_CODE:
        raise StreamFormatError(f"invalid dtype code {dtype_code}")
    shape = struct.unpack_from(f"<{rank}Q", payload, pos)
    pos += 8 * rank
    npoints = math.prod(int(s) for s in shape)
    if npoints > MAX_TOTAL_POINTS:
        raise AllocationLimitError(
            f"container declares {npoints} points, beyond the "
            f"{MAX_TOTAL_POINTS}-point decode cap"
        )
    (n_chunks,) = struct.unpack_from("<I", payload, pos)
    pos += 4
    if n_chunks > max(1, npoints):
        raise StreamFormatError(
            f"container declares {n_chunks} chunks for {npoints} points"
        )
    chunks = []
    for _ in range(n_chunks):
        bounds = []
        for axis in range(rank):
            a, b = struct.unpack_from("<QQ", payload, pos)
            pos += 16
            if a >= b or b > int(shape[axis]):
                raise StreamFormatError(
                    f"chunk bounds ({a}, {b}) outside axis extent {shape[axis]}"
                )
            bounds.append((a, b))
        chunks.append(Chunk(bounds=tuple(bounds)))
    sizes = struct.unpack_from(f"<{n_chunks}Q", payload, pos)
    pos += 8 * n_chunks
    chunk_crcs: tuple[int, ...] | None = None
    mask_nbytes = 0
    mask_crc: int | None = None
    codec_tags: tuple[int, ...] | None = None
    if version >= 2:
        chunk_crcs = struct.unpack_from(f"<{n_chunks}I", payload, pos)
        pos += 4 * n_chunks
        if version >= 4:
            codec_tags = struct.unpack_from(f"<{n_chunks}B", payload, pos)
            pos += n_chunks
            if any(t > 2 for t in codec_tags):
                raise StreamFormatError(
                    "container chunk table carries an unknown codec tag"
                )
        if version >= 3:
            mask_nbytes, mask_crc = struct.unpack_from("<QI", payload, pos)
            pos += 12
        header = bytearray(payload[:pos])
        header[_HEADER_CRC_OFFSET : _HEADER_CRC_OFFSET + 4] = b"\x00\x00\x00\x00"
        if zlib.crc32(bytes(header)) != stored_header_crc:
            raise IntegrityError("container header CRC mismatch")
    if mask_nbytes > len(payload) - pos:
        raise StreamFormatError(
            f"container declares a {mask_nbytes}-byte mask but only "
            f"{len(payload) - pos} bytes remain"
        )
    mask_blob: bytes | None = None
    if version >= 3 and mask_nbytes:
        mask_blob = payload[pos : pos + mask_nbytes]
        pos += mask_nbytes
    declared = sum(int(s) for s in sizes)
    if declared > len(payload) - pos:
        raise StreamFormatError(
            f"container truncated: sections declare {declared} bytes but "
            f"only {len(payload) - pos} remain"
        )
    if declared < len(payload) - pos:
        raise StreamFormatError(
            f"{len(payload) - pos - declared} trailing bytes after the "
            "last chunk stream"
        )
    streams = []
    for size in sizes:
        streams.append(payload[pos : pos + size])
        pos += size
    return ParsedContainer(
        rank=rank,
        dtype=_DTYPE_BY_CODE[dtype_code],
        mode_code=mode_code,
        shape=tuple(int(s) for s in shape),
        chunks=chunks,
        streams=streams,
        format_version=version,
        chunk_crcs=chunk_crcs,
        mask_blob=mask_blob,
        mask_crc=mask_crc,
        codec_tags=codec_tags,
    )


def build_container(
    rank: int,
    dtype: np.dtype,
    mode_code: int,
    shape: tuple[int, ...],
    chunks: list[Chunk],
    streams: list[bytes],
    *,
    version: int = CONTAINER_VERSION,
    mask_blob: bytes | None = None,
    codec_tags: "np.ndarray | tuple[int, ...] | None" = None,
) -> bytes:
    """Assemble a container payload from its parts (inverse of parsing).

    ``version=2`` (default) writes the CRC-protected layout; ``version=1``
    reproduces the legacy byte layout for compatibility testing.
    ``mask_blob`` (an :func:`repro.core.mask.encode_mask` record)
    requires ``version>=3``; a ``codec_tags`` column (any chunk routed
    off sperr) requires ``version=4``.
    """
    if version not in _MAGIC_BY_VERSION:
        raise InvalidArgumentError(f"unknown container version {version}")
    if mask_blob is not None and version < 3:
        raise InvalidArgumentError(
            f"a non-finite mask needs container version 3, got {version}"
        )
    tags = None if codec_tags is None else [int(t) for t in codec_tags]
    if tags is not None and any(t != CODEC_SPERR for t in tags) and version < 4:
        raise InvalidArgumentError(
            f"per-chunk codec tags need container version 4, got {version}"
        )
    if version >= 4:
        if tags is None:
            tags = [CODEC_SPERR] * len(chunks)
        if len(tags) != len(chunks):
            raise InvalidArgumentError(
                f"{len(tags)} codec tags for {len(chunks)} chunks"
            )
        if any(t not in (CODEC_SPERR, CODEC_SZX, CODEC_STORED) for t in tags):
            raise InvalidArgumentError(f"unknown codec tag in {tags}")
    head = bytearray()
    head += _MAGIC_BY_VERSION[version]
    head += struct.pack("<BBBB", rank, _DTYPES[np.dtype(dtype)], mode_code, 1)
    if version >= 2:
        head += b"\x00\x00\x00\x00"  # header CRC, patched below
    head += struct.pack(f"<{rank}Q", *shape)
    head += struct.pack("<I", len(chunks))
    for chunk in chunks:
        for a, b in chunk.bounds:
            head += struct.pack("<QQ", a, b)
    for s in streams:
        head += struct.pack("<Q", len(s))
    mask = mask_blob or b""
    if version >= 2:
        for s in streams:
            head += struct.pack("<I", zlib.crc32(s))
        if version >= 4:
            head += struct.pack(f"<{len(tags)}B", *tags)
        if version >= 3:
            head += struct.pack("<QI", len(mask), zlib.crc32(mask))
        struct.pack_into("<I", head, _HEADER_CRC_OFFSET, zlib.crc32(bytes(head)))
    return bytes(head) + mask + b"".join(streams)


@dataclass(frozen=True)
class ChunkDecodeStatus:
    """Outcome of decoding one chunk: ``ok``, ``crc_mismatch``, or
    ``decode_error`` (with a one-line exception summary)."""

    index: int
    status: str
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class DecodeReport:
    """Structured account of one container decode.

    Produced by salvage-mode :func:`decompress`; lists per-chunk status,
    which chunks failed CRC verification, and any executor degradations
    (timeouts, broken pools) that were absorbed along the way.
    """

    format_version: int
    chunk_status: list[ChunkDecodeStatus] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def n_chunks(self) -> int:
        return len(self.chunk_status)

    @property
    def failed_chunks(self) -> list[int]:
        """Indices of chunks that did not decode (CRC or decode failure)."""
        return [s.index for s in self.chunk_status if not s.ok]

    @property
    def crc_mismatches(self) -> list[int]:
        """Indices of chunks whose stored CRC32 did not match."""
        return [s.index for s in self.chunk_status if s.status == "crc_mismatch"]

    @property
    def ok(self) -> bool:
        """True when every chunk decoded and no degradation occurred."""
        return not self.failed_chunks

    def summary(self) -> str:
        """One-line human-readable digest (used by the CLI)."""
        if self.ok:
            return f"all {self.n_chunks} chunks decoded (format v{self.format_version})"
        return (
            f"{self.n_chunks - len(self.failed_chunks)}/{self.n_chunks} chunks "
            f"decoded; failed chunks {self.failed_chunks} "
            f"(CRC mismatches {self.crc_mismatches})"
        )


@dataclass
class DecodeResult:
    """Salvage-mode decode output: the reconstructed volume (failed chunks
    filled with ``fill_value``) plus the :class:`DecodeReport`.

    Behaves like its array in numpy expressions via ``__array__``.
    """

    data: np.ndarray
    report: DecodeReport

    def __array__(self, dtype=None, copy=None):
        if dtype is not None:
            return self.data.astype(dtype)
        return self.data

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype


def decompress(
    payload: bytes,
    *,
    executor: str = "serial",
    workers: int | None = None,
    on_error: str = "raise",
    fill_value: float = float("nan"),
    timeout: float | None = None,
) -> np.ndarray | DecodeResult:
    """Decompress a container produced by :func:`compress`.

    ``on_error="raise"`` (default) verifies every chunk CRC (v2) and
    raises on the first damaged chunk, returning the bare array on
    success.  ``on_error="salvage"`` decodes every intact chunk, fills
    damaged ones with ``fill_value`` (default NaN), and returns a
    :class:`DecodeResult` carrying the array and a :class:`DecodeReport` —
    per-chunk independence as a fault-isolation boundary.  ``timeout``
    bounds each parallel chunk task in seconds; an expired or broken pool
    degrades to serial for the affected chunks and is recorded in the
    report rather than raised.
    """
    if on_error not in ("raise", "salvage"):
        raise InvalidArgumentError(
            f"on_error must be 'raise' or 'salvage', got {on_error!r}"
        )
    with obs.span("sperr.decompress", nbytes=len(payload), mode=on_error):
        with obs.span("container.parse"):
            parsed = parse_container(payload)
        crcs: list[int | None]
        if parsed.chunk_crcs is None:
            crcs = [None] * len(parsed.streams)
        else:
            crcs = list(parsed.chunk_crcs)
        tags = (
            list(parsed.codec_tags)
            if parsed.codec_tags is not None
            else [CODEC_SPERR] * len(parsed.streams)
        )

        if on_error == "raise":
            with obs.span("container.verify", n_chunks=len(parsed.streams)):
                for i, (stream, crc) in enumerate(zip(parsed.streams, crcs)):
                    if crc is not None and zlib.crc32(stream) != crc:
                        raise IntegrityError(f"chunk {i} CRC mismatch")
            work = partial(_decompress_chunk_job, rank=parsed.rank)
            items = [
                (s, c.shape, t)
                for s, c, t in zip(parsed.streams, parsed.chunks, tags)
            ]
            parts, _notes = robust_chunk_map(
                work, items, executor=executor, workers=workers, timeout=timeout
            )
            with obs.span("container.assemble"):
                out = assemble(parsed.shape, parsed.chunks, parts)
            out = out.astype(parsed.dtype, copy=False)
            _restore_mask(out, parsed)
            return out

        report = DecodeReport(format_version=parsed.format_version)
        work = partial(_salvage_chunk_job, rank=parsed.rank)
        items = [
            (s, c.shape, crc, t)
            for s, c, crc, t in zip(parsed.streams, parsed.chunks, crcs, tags)
        ]
        results, notes = robust_chunk_map(
            work, items, executor=executor, workers=workers, timeout=timeout
        )
        report.notes.extend(notes)
        parts = []
        for i, ((status, value), chunk) in enumerate(zip(results, parsed.chunks)):
            if status == "ok":
                report.chunk_status.append(ChunkDecodeStatus(index=i, status="ok"))
                parts.append(value)
            else:
                report.chunk_status.append(
                    ChunkDecodeStatus(index=i, status=status, error=str(value))
                )
                parts.append(np.full(chunk.shape, fill_value, dtype=np.float64))
        with obs.span("container.assemble"):
            out = assemble(parsed.shape, parsed.chunks, parts)
        out = out.astype(parsed.dtype, copy=False)
        _restore_mask(out, parsed, report)
        return DecodeResult(data=out, report=report)


def _restore_mask(
    out: np.ndarray, parsed: ParsedContainer, report: DecodeReport | None = None
) -> None:
    """Re-impose a v3 payload's NaN/±Inf pattern onto the decoded volume.

    In strict mode (``report=None``) a damaged mask raises; in salvage
    mode the damage is recorded as a report note and the decode proceeds
    without the mask (the fill values are legitimate in-range data, so
    nothing unflagged leaks out).
    """
    if parsed.mask_blob is None:
        return
    try:
        if (
            parsed.mask_crc is not None
            and zlib.crc32(parsed.mask_blob) != parsed.mask_crc
        ):
            raise IntegrityError("container mask CRC mismatch")
        apply_mask(out, decode_mask(parsed.mask_blob, out.size))
    except (IntegrityError, StreamFormatError) as exc:
        if report is None:
            raise
        report.notes.append(f"mask section unrecoverable: {exc}")
