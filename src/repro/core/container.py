"""Multi-chunk container format and the top-level compress/decompress.

Layout of a ``.sperr`` container::

    magic "SPRRPY1\\0"                      8 bytes
    rank                 u8
    dtype code           u8  (0=float32, 1=float64)
    mode code            u8  (0=PWE, 1=size)
    lossless flag        u8
    global shape         rank * u64
    n_chunks             u32
    per-chunk bounds     n_chunks * rank * 2 * u64
    per-chunk byte size  n_chunks * u64
    chunk payloads       (each optionally lossless-compressed)

Each chunk payload is the self-contained stream of
:func:`repro.core.pipeline.compress_chunk`, mirroring real SPERR's
concatenation of independent per-chunk bitstreams (Sec. III-D).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from .. import lossless
from ..errors import InvalidArgumentError, StreamFormatError
from functools import partial

from .chunking import Chunk, assemble, plan_chunks
from .modes import PsnrMode, PweMode, SizeMode
from .parallel import chunk_map, map_chunk_arrays
from .pipeline import ChunkReport, compress_chunk, decompress_chunk

__all__ = [
    "CompressionResult",
    "ParsedContainer",
    "compress",
    "decompress",
    "parse_container",
    "build_container",
]

_MAGIC = b"SPRRPY1\x00"
_DTYPES = {np.dtype(np.float32): 0, np.dtype(np.float64): 1}
_DTYPE_BY_CODE = {v: k for k, v in _DTYPES.items()}


@dataclass
class CompressionResult:
    """Compressed payload plus accounting from every chunk."""

    payload: bytes
    reports: list[ChunkReport]

    @property
    def nbytes(self) -> int:
        return len(self.payload)

    @property
    def npoints(self) -> int:
        return sum(r.npoints for r in self.reports)

    @property
    def bpp(self) -> float:
        """Achieved container bitrate in bits per point."""
        return 8.0 * self.nbytes / self.npoints

    @property
    def n_outliers(self) -> int:
        return sum(r.n_outliers for r in self.reports)


def _compress_chunk_job(
    part: np.ndarray,
    mode: PweMode | SizeMode | PsnrMode,
    wavelet: str,
    levels: int | None,
) -> tuple[bytes, ChunkReport]:
    """Module-level chunk job (picklable for the process executor)."""
    return compress_chunk(part, mode, wavelet=wavelet, levels=levels)


def _decompress_chunk_job(stream: bytes, rank: int) -> np.ndarray:
    """Module-level chunk-decode job (picklable for the process executor)."""
    return decompress_chunk(lossless.decompress(stream), rank=rank)


def compress(
    data: np.ndarray,
    mode: PweMode | SizeMode | PsnrMode,
    *,
    chunk_shape: int | tuple[int, ...] | None = None,
    wavelet: str = "cdf97",
    levels: int | None = None,
    lossless_method: str = "auto",
    executor: str = "serial",
    workers: int | None = None,
) -> CompressionResult:
    """Compress an array into a self-contained SPERR container.

    ``chunk_shape=None`` compresses the volume as a single chunk;
    an int or tuple tiles it for parallel execution (Sec. III-D).
    """
    data = np.asarray(data)
    if data.dtype not in _DTYPES:
        if np.issubdtype(data.dtype, np.floating) or np.issubdtype(data.dtype, np.integer):
            data = data.astype(np.float64)
        else:
            raise InvalidArgumentError(f"unsupported dtype {data.dtype}")
    if data.ndim < 1 or data.ndim > 3:
        raise InvalidArgumentError("only 1-D, 2-D, and 3-D arrays are supported")
    if (
        data.dtype == np.float32
        and isinstance(mode, PweMode)
        and data.size
        and np.isfinite(data.max() - data.min())
    ):
        # The reconstruction is rounded back to float32; a tolerance near
        # or below single-precision ULP of the data cannot survive that
        # rounding.  Mirrors the paper's idx caps for single-precision
        # fields (idx <= 25-35, Sec. VI-C).
        ulp = float(np.max(np.abs(data))) * 2.0**-23
        if mode.tolerance <= 0.5 * ulp:
            raise InvalidArgumentError(
                f"tolerance {mode.tolerance:g} is below float32 precision "
                f"(~{ulp:g}) for this data; use float64 input or a looser "
                "tolerance"
            )
        # Compress against a tolerance tightened by the worst-case cast
        # rounding, so the bound holds on the float32 output too.
        mode = PweMode(mode.tolerance - 0.5 * ulp, q_factor=mode.q_factor)

    chunks = plan_chunks(data.shape, chunk_shape)

    # Chunks are sliced inside the executor: the process path ships the
    # volume through shared memory once instead of pickling every chunk.
    results = map_chunk_arrays(
        _compress_chunk_job,
        data,
        chunks,
        args=(mode, wavelet, levels),
        executor=executor,
        workers=workers,
    )
    streams = []
    reports = []
    for raw, report in results:
        packed = lossless.compress(raw, method=lossless_method)
        report.total_nbytes = len(packed)
        streams.append(packed)
        reports.append(report)

    mode_code = 0 if isinstance(mode, PweMode) else (2 if isinstance(mode, PsnrMode) else 1)
    payload = build_container(
        data.ndim, np.dtype(data.dtype), mode_code, data.shape, chunks, streams
    )
    return CompressionResult(payload=payload, reports=reports)


@dataclass(frozen=True)
class ParsedContainer:
    """Structural view of a container payload (headers decoded, chunk
    streams still lossless-compressed)."""

    rank: int
    dtype: np.dtype
    mode_code: int
    shape: tuple[int, ...]
    chunks: list[Chunk]
    streams: list[bytes]


def parse_container(payload: bytes) -> ParsedContainer:
    """Decode the container framing without touching chunk payloads."""
    if payload[:8] != _MAGIC:
        raise StreamFormatError("not a SPERR container (bad magic)")
    try:
        return _parse_container_body(payload)
    except struct.error as exc:
        raise StreamFormatError(f"container framing truncated: {exc}") from exc


def _parse_container_body(payload: bytes) -> ParsedContainer:
    pos = 8
    rank, dtype_code, mode_code, _lossless_flag = struct.unpack_from("<BBBB", payload, pos)
    pos += 4
    if rank < 1 or rank > 3:
        raise StreamFormatError(f"invalid rank {rank}")
    if dtype_code not in _DTYPE_BY_CODE:
        raise StreamFormatError(f"invalid dtype code {dtype_code}")
    shape = struct.unpack_from(f"<{rank}Q", payload, pos)
    pos += 8 * rank
    (n_chunks,) = struct.unpack_from("<I", payload, pos)
    pos += 4
    chunks = []
    for _ in range(n_chunks):
        bounds = []
        for _ in range(rank):
            a, b = struct.unpack_from("<QQ", payload, pos)
            pos += 16
            bounds.append((a, b))
        chunks.append(Chunk(bounds=tuple(bounds)))
    sizes = struct.unpack_from(f"<{n_chunks}Q", payload, pos)
    pos += 8 * n_chunks
    streams = []
    for size in sizes:
        streams.append(payload[pos : pos + size])
        pos += size
        if len(streams[-1]) != size:
            raise StreamFormatError("container truncated")
    return ParsedContainer(
        rank=rank,
        dtype=_DTYPE_BY_CODE[dtype_code],
        mode_code=mode_code,
        shape=tuple(int(s) for s in shape),
        chunks=chunks,
        streams=streams,
    )


def build_container(
    rank: int,
    dtype: np.dtype,
    mode_code: int,
    shape: tuple[int, ...],
    chunks: list[Chunk],
    streams: list[bytes],
) -> bytes:
    """Assemble a container payload from its parts (inverse of parsing)."""
    head = bytearray()
    head += _MAGIC
    head += struct.pack("<BBBB", rank, _DTYPES[np.dtype(dtype)], mode_code, 1)
    head += struct.pack(f"<{rank}Q", *shape)
    head += struct.pack("<I", len(chunks))
    for chunk in chunks:
        for a, b in chunk.bounds:
            head += struct.pack("<QQ", a, b)
    for s in streams:
        head += struct.pack("<Q", len(s))
    return bytes(head) + b"".join(streams)


def decompress(
    payload: bytes,
    *,
    executor: str = "serial",
    workers: int | None = None,
) -> np.ndarray:
    """Decompress a container produced by :func:`compress`."""
    parsed = parse_container(payload)
    work = partial(_decompress_chunk_job, rank=parsed.rank)
    parts = chunk_map(work, parsed.streams, executor=executor, workers=workers)
    out = assemble(parsed.shape, parsed.chunks, parts)
    return out.astype(parsed.dtype, copy=False)
