"""Cached codec plans: memoized per-shape immutable coder state.

Chunked compression (paper Sec. III-D) runs the same per-shape setup —
wavelet decomposition schedules, SPECK partition geometry, ZFP block
scan tables — once per chunk even though every same-shaped chunk needs
the identical immutable object.  This module provides a small LRU cache
layer so N same-shaped chunks pay the setup cost once, which is where a
large share of multi-chunk throughput lives (cuSZ+ and the ETH parallel
framework make the same observation for their codecs).

Everything cached here is *shape-derived and immutable*: nothing depends
on chunk data, so sharing across chunks, threads, and repeated calls is
safe and cannot change any bitstream.  Each process-pool worker builds
its own caches on first use.

The accessor functions import their target modules lazily, which keeps
this module import-cycle-free (it is imported by the wavelet, SPECK,
and ZFP layers, all of which ``repro.core`` itself imports).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable

from ..errors import InvalidArgumentError

__all__ = [
    "PlanCache",
    "wavelet_plan",
    "speck_geometry",
    "zfp_scan_order",
    "huffman_window_table",
    "cache_stats",
    "clear_plan_caches",
]


class PlanCache:
    """Thread-safe LRU cache with hit/miss/eviction counters.

    Values are built by the ``factory`` passed to :meth:`get` and must be
    immutable (they are shared between callers and threads).
    """

    def __init__(self, maxsize: int = 64, name: str = "plans") -> None:
        if maxsize < 1:
            raise InvalidArgumentError("maxsize must be at least 1")
        self.maxsize = maxsize
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building it on a miss.

        The factory runs under the cache lock: plan construction is quick
        and serializing it guarantees each plan is built exactly once.
        """
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                pass
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                return value
            self.misses += 1
            value = factory()
            self._entries[key] = value
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
            return value

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss/eviction counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> dict:
        """Snapshot of counters and occupancy (for benches and tests)."""
        with self._lock:
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


#: Wavelet decomposition schedules, keyed (shape, wavelet, levels, max_levels).
WAVELET_PLANS = PlanCache(maxsize=64, name="wavelet_plans")
#: SPECK partition geometries (incl. child tables), keyed by shape.
SPECK_GEOMETRIES = PlanCache(maxsize=32, name="speck_geometries")
#: ZFP total-sequency scan orders, keyed by ndim.
ZFP_SCAN_ORDERS = PlanCache(maxsize=8, name="zfp_scan_orders")
#: Huffman flat decode tables, keyed by the code-length table bytes.
#: Canonical code values are a pure function of the lengths, so the key is
#: complete; the Huffman layer only routes codes up to 16 bits here (a
#: 2**16-entry table is 512 KiB, bounding the cache at ~16 MiB).
HUFFMAN_TABLES = PlanCache(maxsize=32, name="huffman_tables")

_ALL_CACHES = (WAVELET_PLANS, SPECK_GEOMETRIES, ZFP_SCAN_ORDERS, HUFFMAN_TABLES)


def wavelet_plan(
    shape: tuple[int, ...],
    wavelet: str = "cdf97",
    levels: int | None = None,
    max_levels: int | None = None,
):
    """Cached :class:`~repro.wavelets.dwt.WaveletPlan` for ``shape``."""
    from ..wavelets.dwt import MAX_LEVELS, WaveletPlan

    ml = MAX_LEVELS if max_levels is None else max_levels
    key = (tuple(shape), wavelet, levels, ml)
    return WAVELET_PLANS.get(
        key,
        lambda: WaveletPlan.create(
            tuple(shape), wavelet=wavelet, max_levels=ml, levels=levels
        ),
    )


def speck_geometry(shape: tuple[int, ...]):
    """Cached :class:`~repro.speck.geometry.Geometry` for ``shape``."""
    from ..speck.geometry import Geometry

    return SPECK_GEOMETRIES.get(tuple(shape), lambda: Geometry(shape))


def zfp_scan_order(ndim: int):
    """Cached ``(permutation, inverse_permutation)`` for the ZFP-like codec."""
    import numpy as np

    from ..compressors.zfplike.transform import permutation

    def build():
        perm = permutation(ndim)
        inv = np.argsort(perm)
        perm.setflags(write=False)
        inv.setflags(write=False)
        return perm, inv

    return ZFP_SCAN_ORDERS.get(int(ndim), build)


def huffman_window_table(code):
    """Cached flat decode table for a canonical :class:`HuffmanCode`.

    Keyed by the length-table bytes (which fully determine canonical code
    values).  Chunked compression decodes many sections under the same
    code book — SZ-like quantization bins especially — so sharing the
    table skips the ``2**max_len`` rebuild per section.
    """
    from ..lossless.huffman import build_window_table

    key = (int(code.lengths.size), code.lengths.tobytes())
    return HUFFMAN_TABLES.get(key, lambda: build_window_table(code))


def cache_stats() -> dict:
    """Hit/miss/eviction counters for every plan cache, by name."""
    return {cache.name: cache.stats() for cache in _ALL_CACHES}


def clear_plan_caches() -> None:
    """Empty every plan cache (used by benches to measure cold setup)."""
    for cache in _ALL_CACHES:
        cache.clear()
