"""Per-chunk SPERR compression pipeline.

The four stages of paper Sec. V-C:

1. forward wavelet transform of the chunk;
2. SPECK coding of the coefficients (quantization step ``q = 1.5 t`` in
   PWE mode, or bit-budget truncation in size mode);
3. locating outliers — an inverse transform of the coded coefficients
   plus a comparison with the original input;
4. coding the located outliers with the SPECK-inspired outlier coder.

Stage timings and bit accounting are captured in :class:`ChunkReport`,
which feeds the Fig. 2/4/6 reproductions directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..bitstream import HEADER_SIZE, ChunkHeader, ChunkParams
from ..errors import InvalidArgumentError, StreamFormatError
from ..obs import add_counter, span
from ..outlier import OutlierCoder, encode_outliers, locate_outliers
from ..speck import SpeckStats, decode_coefficients, encode_coefficients
from ..quant import calibrate_step
from ..wavelets import forward as dwt_forward
from ..wavelets import inverse as dwt_inverse
from .modes import PsnrMode, PweMode, SizeMode
from .plans import wavelet_plan

__all__ = ["ChunkReport", "compress_chunk", "decompress_chunk"]

#: Size-mode quantization: q = max|coefficient| / 2**SIZE_MODE_PLANES, deep
#: enough that any practical bit budget truncates before precision runs out.
SIZE_MODE_PLANES = 40


@dataclass
class ChunkReport:
    """Cost and timing breakdown for one compressed chunk."""

    shape: tuple[int, ...]
    q: float
    tolerance: float
    speck_nbits: int
    outlier_nbits: int
    n_outliers: int
    total_nbytes: int
    #: seconds per stage: transform / speck / locate / outlier_code
    timings: dict[str, float] = field(default_factory=dict)
    speck_stats: SpeckStats | None = None

    @property
    def npoints(self) -> int:
        return int(np.prod(self.shape))

    @property
    def bpp(self) -> float:
        """Total achieved bitrate in bits per point (header included)."""
        return 8.0 * self.total_nbytes / self.npoints

    @property
    def speck_bpp(self) -> float:
        return self.speck_nbits / self.npoints

    @property
    def outlier_bpp(self) -> float:
        return self.outlier_nbits / self.npoints

    @property
    def bits_per_outlier(self) -> float:
        return self.outlier_nbits / self.n_outliers if self.n_outliers else 0.0

    @property
    def outlier_fraction(self) -> float:
        return self.n_outliers / self.npoints


def _shape3(shape: tuple[int, ...]) -> tuple[int, int, int]:
    """Pad a 1/2/3-D shape with trailing 1s for the fixed header."""
    return tuple(list(shape) + [1] * (3 - len(shape)))  # type: ignore[return-value]


def compress_chunk(
    data: np.ndarray,
    mode: PweMode | SizeMode | PsnrMode,
    *,
    wavelet: str = "cdf97",
    levels: int | None = None,
) -> tuple[bytes, ChunkReport]:
    """Compress one chunk; returns ``(stream, report)``.

    The stream is self-contained: fixed 20-byte header, parameter block,
    SPECK section, optional outlier section.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim < 1 or data.ndim > 3:
        raise InvalidArgumentError("chunks must be 1-D, 2-D, or 3-D")
    if not np.all(np.isfinite(data)):
        raise InvalidArgumentError("input contains NaN or Inf")
    with span("chunk.compress", shape=data.shape):
        return _compress_chunk_body(data, mode, wavelet, levels)


def _compress_chunk_body(
    data: np.ndarray,
    mode: PweMode | SizeMode | PsnrMode,
    wavelet: str,
    levels: int | None,
) -> tuple[bytes, ChunkReport]:
    """The four compression stages, inside the ``chunk.compress`` span."""
    is_double = True  # numpy pipeline runs in float64 throughout

    t0 = time.perf_counter()
    with span("wavelet.forward", wavelet=wavelet):
        coeffs, plan = dwt_forward(data, wavelet=wavelet, levels=levels)
    t1 = time.perf_counter()

    if isinstance(mode, PweMode):
        q = mode.q
        tolerance = mode.tolerance
        max_bits = None
    elif isinstance(mode, PsnrMode):
        # Sec. VII average-error mode: near-orthogonality of CDF 9/7
        # equates coefficient-domain and data-domain RMS error, so the
        # step is calibrated on the coefficients directly — no inverse
        # transform, no outlier pass.
        rng = float(data.max() - data.min())
        if rng == 0.0:
            rng = max(1.0, abs(float(data.flat[0])))
        target_rmse = rng / (10.0 ** (mode.psnr_db / 20.0))
        q = calibrate_step(coeffs, target_rmse, margin=0.8)
        tolerance = 0.0
        max_bits = None
    else:
        max_abs = float(np.abs(coeffs).max())
        q = max_abs / float(2**SIZE_MODE_PLANES) if max_abs > 0 else 1.0
        tolerance = 0.0
        overhead_bits = 8 * (HEADER_SIZE + ChunkParams.SIZE)
        max_bits = max(64, int(mode.bpp * data.size) - overhead_bits)

    speck_stream, speck_nbits, stats, coeff_recon = encode_coefficients(
        coeffs, q, max_bits=max_bits
    )
    t2 = time.perf_counter()

    outlier_stream = b""
    outlier_nbits = 0
    n_outliers = 0
    t3 = t2
    t4 = t2
    if isinstance(mode, PweMode):
        with span("wavelet.inverse", wavelet=wavelet):
            recon = dwt_inverse(coeff_recon, plan)
        positions, corrections = locate_outliers(data, recon, tolerance)
        n_outliers = int(positions.size)
        t3 = time.perf_counter()
        if n_outliers:
            enc = encode_outliers(positions, corrections, data.size, tolerance)
            outlier_stream = enc.stream
            outlier_nbits = enc.nbits
        t4 = time.perf_counter()

    header = ChunkHeader(
        shape=_shape3(data.shape),
        speck_nbytes=len(speck_stream),
        is_double=is_double,
        pwe_mode=isinstance(mode, PweMode),
        has_outliers=n_outliers > 0,
    )
    params = ChunkParams(
        q=q,
        tolerance=tolerance,
        speck_nbits=speck_nbits,
        outlier_nbits=outlier_nbits,
        outlier_nbytes=len(outlier_stream),
        wavelet=wavelet,
        levels=levels,
    )
    stream = header.pack() + params.pack() + speck_stream + outlier_stream
    add_counter("speck.bits", speck_nbits)
    add_counter("outlier.bits", outlier_nbits)
    add_counter("outlier.count", n_outliers)
    add_counter("chunk.bytes", len(stream))
    report = ChunkReport(
        shape=data.shape,
        q=q,
        tolerance=tolerance,
        speck_nbits=speck_nbits,
        outlier_nbits=outlier_nbits,
        n_outliers=n_outliers,
        total_nbytes=len(stream),
        timings={
            "transform": t1 - t0,
            "speck": t2 - t1,
            "locate": t3 - t2,
            "outlier_code": t4 - t3,
        },
        speck_stats=stats,
    )
    return stream, report


def decompress_chunk(
    stream: bytes,
    rank: int | None = None,
    expected_shape: tuple[int, ...] | None = None,
) -> np.ndarray:
    """Decompress one chunk stream back to a float64 array.

    ``expected_shape`` cross-checks the untrusted header shape against
    what the caller's framing promised (the container's chunk bounds), so
    a forged or transplanted chunk stream is rejected instead of being
    stitched into the wrong region of the output volume.
    """
    header = ChunkHeader.unpack(stream)
    params = ChunkParams.unpack(stream[HEADER_SIZE:])
    if rank is None:
        rank = 3
        while rank > 1 and header.shape[rank - 1] == 1:
            rank -= 1
    shape = tuple(header.shape[:rank])
    if any(n != 1 for n in header.shape[rank:]):
        raise StreamFormatError(
            f"chunk shape {header.shape} inconsistent with rank {rank}"
        )
    if expected_shape is not None and shape != tuple(expected_shape):
        raise StreamFormatError(
            f"chunk header shape {shape} does not match the container's "
            f"chunk bounds {tuple(expected_shape)}"
        )
    if not np.isfinite(params.q) or params.q < 0:
        raise StreamFormatError(f"invalid quantization step {params.q!r}")
    body = stream[HEADER_SIZE + ChunkParams.SIZE :]
    if len(body) < header.speck_nbytes + params.outlier_nbytes:
        raise StreamFormatError("chunk stream shorter than its section table")
    if params.speck_nbits > 8 * header.speck_nbytes:
        raise StreamFormatError(
            f"SPECK section declares {params.speck_nbits} bits in "
            f"{header.speck_nbytes} bytes"
        )
    if params.outlier_nbits > 8 * params.outlier_nbytes:
        raise StreamFormatError(
            f"outlier section declares {params.outlier_nbits} bits in "
            f"{params.outlier_nbytes} bytes"
        )
    speck_stream = body[: header.speck_nbytes]
    outlier_stream = body[
        header.speck_nbytes : header.speck_nbytes + params.outlier_nbytes
    ]

    with span("chunk.decompress", shape=shape):
        coeffs = decode_coefficients(
            speck_stream, shape, params.q, nbits=params.speck_nbits
        )
        plan = wavelet_plan(shape, wavelet=params.wavelet, levels=params.levels)
        with span("wavelet.inverse", wavelet=params.wavelet):
            recon = dwt_inverse(coeffs, plan)
        if header.has_outliers and outlier_stream:
            coder = OutlierCoder(int(np.prod(shape)), params.tolerance)
            coder.apply(recon, outlier_stream, nbits=params.outlier_nbits)
    return recon
