"""Per-chunk codec dispatch for the adaptive compression tier.

SZ3's thesis (PAPERS.md) is that error-bounded compressors should be
*composable pipelines selected per data characteristics*; SZx shows an
ultra-fast block codec covers much of the workload at modest ratio cost.
This module is the routing brain between them: given a chunk and a PWE
bound, decide — from a cheap sample, before any real compression work —
whether the chunk goes to the ``szx`` fast tier, the ``sperr`` quality
tier, or verbatim ``stored`` bytes.

Every codec in the mix honors the same point-wise error bound (szx by
verify-and-demote, sperr by construction, stored trivially), so routing
only ever trades *ratio against throughput*, never correctness.  The
chosen tag is recorded per chunk in the container chunk table
(:mod:`repro.core.container` format v4), which makes mixed-codec
payloads self-describing on decode.

Routing proxies (both from one strided sample of at most
:data:`_SAMPLE_RUNS` × :data:`_RUN_LEN` contiguous points):

* **first-difference width** — the bit width of the typical first
  difference measured in quantization steps ``2t``.  Smooth fields have
  tiny local increments relative to the bound, so their szx residual
  planes are shallow and the fast tier compresses well; wide increments
  mean szx would spend near-raw bits and sperr's wavelet machinery earns
  its latency; increments beyond the szx plane coder entirely mean the
  chunk is noise at this bound and even sperr returns ratio ≈ 1, so
  storing raw bytes is strictly faster at the same size.
* **unique-value density** — fraction of distinct values in the sample.
  Quantized, masked-fill, or constant regions repeat values heavily and
  are szx's best case regardless of their gradient.
"""

from __future__ import annotations

import struct

import numpy as np

from .. import obs
from ..errors import (
    InvalidArgumentError,
    StreamFormatError,
    checked_shape,
    decode_guard,
)
from .modes import PweMode

__all__ = [
    "CODEC_SPERR",
    "CODEC_SZX",
    "CODEC_STORED",
    "CODEC_NAMES",
    "CODEC_POLICIES",
    "chunk_proxies",
    "choose_codecs",
    "encode_stored_chunk",
    "decode_stored_chunk",
    "STORED_MAGIC",
]

#: Chunk-table codec tags (container format v4, store index v3).
CODEC_SPERR = 0
CODEC_SZX = 1
CODEC_STORED = 2

CODEC_NAMES = {CODEC_SPERR: "sperr", CODEC_SZX: "szx", CODEC_STORED: "stored"}

#: The ``codec=`` knob values accepted by ``compress()``/CLI/service.
CODEC_POLICIES = ("quality", "fast", "adaptive")

#: Sampling geometry: up to 16 contiguous runs of 256 points spread
#: across the flattened chunk, so first differences reflect in-block
#: behaviour rather than stride-sized jumps.
_SAMPLE_RUNS = 16
_RUN_LEN = 256

#: Adaptive routing thresholds on the first-difference width proxy.
#: ``<= _SZX_WIDTH`` routes fast (szx planes stay shallow enough that
#: the ratio loss vs sperr is modest); ``>= _STORED_WIDTH`` routes to
#: verbatim bytes (even szx's raw-block escape — planes wider than
#: ``szxlike.blocks.MAX_WIDTH`` (30) — would trigger, and sperr gains
#: nothing on bound-relative noise this wide); in between, sperr.
#: core must not import repro.compressors at module scope (sperr.py
#: imports back into core), so the 30 is restated here; a unit test
#: pins the two constants together.
_SZX_WIDTH = 12
_STORED_WIDTH = 30 + 10

#: Unique-value density below which a chunk routes fast regardless of
#: its gradients (repeated/quantized/filled regions are szx's best case).
_LOW_UNIQUE_DENSITY = 0.02

STORED_MAGIC = b"RAW1"

#: Stored-chunk prologue: magic, version, rank, reserved.
_STORED_HEAD = struct.Struct("<4sBBH")


def chunk_proxies(data: np.ndarray, tolerance: float) -> tuple[int, float]:
    """Cheap smoothness/entropy proxies for one finite chunk.

    Returns ``(diff_width, unique_density)``: the bit width of the 95th
    percentile first difference measured in ``2 * tolerance`` steps, and
    the fraction of distinct values in the sample.  Cost is O(sample),
    not O(chunk): at most ~4096 points are touched.
    """
    if not np.isfinite(tolerance) or tolerance <= 0.0:
        raise InvalidArgumentError(f"tolerance must be positive, got {tolerance}")
    flat = np.asarray(data, dtype=np.float64).ravel()
    if flat.size == 0:
        raise InvalidArgumentError("cannot sample an empty chunk")
    if flat.size <= _SAMPLE_RUNS * _RUN_LEN:
        runs = flat[None, :]
    else:
        starts = np.linspace(
            0, flat.size - _RUN_LEN, _SAMPLE_RUNS, dtype=np.int64
        )
        runs = flat[starts[:, None] + np.arange(_RUN_LEN)]
    diffs = np.abs(np.diff(runs, axis=-1))
    if diffs.size:
        scale = float(np.percentile(diffs, 95.0))
    else:
        scale = 0.0
    steps = scale / (2.0 * tolerance)
    if not np.isfinite(steps):
        width = _STORED_WIDTH
    else:
        width = int(max(0.0, np.ceil(steps))).bit_length()
    sample = runs.ravel()
    density = float(np.unique(sample).size) / sample.size
    return width, density


def choose_codecs(
    chunks: list[np.ndarray], mode, policy: str
) -> np.ndarray:
    """Pick a codec tag for every chunk under the given policy.

    ``quality`` routes everything to sperr (byte-identical to the
    pre-adaptive pipeline); ``fast`` routes everything to szx except
    chunks so rough that szx's raw-block escape would fire, which store
    verbatim; ``adaptive`` samples each chunk and picks the cheapest
    tier whose ratio cost is acceptable.  ``fast`` and ``adaptive``
    need a PWE bound — szx has no rate-targeting mode — so any other
    mode is rejected.

    Returns a ``uint8`` array of :data:`CODEC_SPERR` /
    :data:`CODEC_SZX` / :data:`CODEC_STORED` tags, one per chunk, and
    records one ``adaptive.route.<codec>`` counter per decision on the
    active trace.
    """
    if policy not in CODEC_POLICIES:
        raise InvalidArgumentError(
            f"codec must be one of {CODEC_POLICIES}, got {policy!r}"
        )
    tags = np.full(len(chunks), CODEC_SPERR, dtype=np.uint8)
    if policy == "quality":
        return tags
    if not isinstance(mode, PweMode):
        raise InvalidArgumentError(
            f"codec={policy!r} needs a point-wise error bound (PweMode); "
            f"got {type(mode).__name__}"
        )
    with obs.span("adaptive.dispatch", policy=policy, n_chunks=len(chunks)):
        for i, chunk in enumerate(chunks):
            width, density = chunk_proxies(chunk, mode.tolerance)
            if policy == "fast":
                tag = CODEC_STORED if width >= _STORED_WIDTH else CODEC_SZX
            elif width >= _STORED_WIDTH:
                tag = CODEC_STORED
            elif width <= _SZX_WIDTH or density <= _LOW_UNIQUE_DENSITY:
                tag = CODEC_SZX
            else:
                tag = CODEC_SPERR
            tags[i] = tag
            obs.add_counter(f"adaptive.route.{CODEC_NAMES[tag]}")
    return tags


def encode_stored_chunk(data: np.ndarray) -> bytes:
    """Frame one finite chunk as verbatim little-endian float64 bytes."""
    data = np.ascontiguousarray(data, dtype=np.float64)
    if data.ndim < 1 or data.ndim > 3:
        raise InvalidArgumentError("stored chunks must be 1-D to 3-D")
    if data.size == 0:
        raise InvalidArgumentError("cannot store an empty chunk")
    head = _STORED_HEAD.pack(STORED_MAGIC, 1, data.ndim, 0)
    head += struct.pack(f"<{data.ndim}Q", *data.shape)
    return head + data.astype("<f8").tobytes()


def decode_stored_chunk(
    stream: bytes, expected_shape: tuple[int, ...] | None = None
) -> np.ndarray:
    """Decode a ``RAW1`` stored-chunk stream back to a float64 array."""
    with decode_guard("stored"):
        if stream[:4] != STORED_MAGIC:
            raise StreamFormatError("not a stored chunk stream")
        _magic, version, rank, _reserved = _STORED_HEAD.unpack_from(stream, 0)
        if version != 1:
            raise StreamFormatError(f"unknown stored chunk version {version}")
        if rank < 1 or rank > 3:
            raise StreamFormatError(f"stored chunk declares rank {rank}")
        pos = _STORED_HEAD.size
        shape = struct.unpack_from(f"<{rank}Q", stream, pos)
        pos += 8 * rank
        shape = checked_shape(shape, "stored")
        if expected_shape is not None and tuple(expected_shape) != shape:
            raise StreamFormatError(
                f"stored chunk declares shape {shape}, table says "
                f"{tuple(expected_shape)}"
            )
        n = int(np.prod(shape))
        if len(stream) != pos + 8 * n:
            raise StreamFormatError(
                f"stored chunk has {len(stream) - pos} payload bytes for "
                f"{n} samples"
            )
        return (
            np.frombuffer(stream, dtype="<f8", count=n, offset=pos)
            .astype(np.float64)
            .reshape(shape)
        )
