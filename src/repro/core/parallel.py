"""Chunk-level parallel execution — the OpenMP substitute.

Real SPERR parallelizes with OpenMP threads over chunks (paper
Sec. III-D).  The Python reproduction offers the same embarrassingly
parallel structure with three executors:

* ``serial``  — deterministic in-process loop (the baseline for the
  strong-scaling study);
* ``thread``  — ``concurrent.futures.ThreadPoolExecutor``; numpy releases
  the GIL in the heavy kernels so threads do overlap;
* ``process`` — ``ProcessPoolExecutor`` for full core isolation;
* ``batch``   — in-process stacked-lane kernels over same-shaped chunks
  (see :mod:`repro.core.batch`).  Only the compression fan-out has a
  dedicated batched implementation; everywhere else ``batch`` degrades
  to the serial loop, so it is always safe to request.

Two throughput mechanisms back the executors:

* **persistent pools** — thread/process pools are created once per
  ``(kind, workers)`` and reused across calls, so repeated compressions
  (the in-situ pattern) stop paying pool spin-up per volume;
* **zero-copy chunk dispatch** — :func:`map_chunk_arrays` places the
  volume in POSIX shared memory once and hands workers
  ``(shm_name, shape, dtype, bounds)`` descriptors instead of pickled
  chunk arrays, eliminating the per-chunk float64 round-trip through
  the pickle pipe.

All executors produce byte-identical results: the work functions are
deterministic and results are returned in input order.  The degree of
parallelism is bounded by the number of chunks, exactly the limitation
Sec. III-D concedes.
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FuturesTimeoutError,
)
from multiprocessing import shared_memory
from typing import Any, Callable, Sequence, TypeVar

import numpy as np

from ..errors import InvalidArgumentError
from ..obs import absorb_result, wrap_worker

__all__ = [
    "chunk_map",
    "map_chunk_arrays",
    "robust_chunk_map",
    "EXECUTORS",
    "default_workers",
    "get_pool",
    "shutdown_pools",
]

T = TypeVar("T")
R = TypeVar("R")

EXECUTORS = ("serial", "thread", "process", "batch")

_POOLS: dict[tuple[str, int], Any] = {}
_POOL_LOCK = threading.Lock()


def default_workers() -> int:
    """Leave a core for system processes, as the paper's Sec. V-D advises."""
    return max(1, (os.cpu_count() or 1) - 1)


def get_pool(kind: str, workers: int):
    """Persistent executor pool, created once per ``(kind, workers)``.

    Pools outlive individual :func:`chunk_map` calls so process workers
    are forked (and modules imported) exactly once per session.
    """
    if kind not in ("thread", "process"):
        raise InvalidArgumentError(f"no pool for executor kind {kind!r}")
    if workers < 1:
        raise InvalidArgumentError("workers must be at least 1")
    key = (kind, workers)
    with _POOL_LOCK:
        pool = _POOLS.get(key)
        if pool is None:
            cls = ThreadPoolExecutor if kind == "thread" else ProcessPoolExecutor
            pool = cls(max_workers=workers)
            _POOLS[key] = pool
        return pool


def _discard_pool(kind: str, workers: int) -> None:
    """Drop a broken pool so the next call builds a fresh one."""
    with _POOL_LOCK:
        pool = _POOLS.pop((kind, workers), None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_pools() -> None:
    """Shut down every persistent pool (registered as an atexit hook)."""
    with _POOL_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_pools)


def _pool_map(kind: str, workers: int, func, items) -> list:
    """Map through a persistent pool, recycling it if it breaks."""
    pool = get_pool(kind, workers)
    try:
        return list(pool.map(func, items))
    except BrokenExecutor:
        _discard_pool(kind, workers)
        raise


def chunk_map(
    func: Callable[[T], R],
    items: Sequence[T],
    *,
    executor: str = "serial",
    workers: int | None = None,
) -> list[R]:
    """Apply ``func`` to every chunk, preserving order.

    Results are returned in input order regardless of completion order,
    mirroring SPERR's deterministic concatenation of chunk bitstreams.
    For the ``process`` executor ``func`` must be picklable (a
    module-level callable, a bound method of a picklable object, or a
    ``functools.partial`` of one).
    """
    if executor not in EXECUTORS:
        raise InvalidArgumentError(
            f"unknown executor {executor!r}; choose from {EXECUTORS}"
        )
    if workers is not None and workers < 1:
        raise InvalidArgumentError("workers must be at least 1")
    if executor in ("serial", "batch") or len(items) <= 1 or (workers or 2) == 1:
        return [func(item) for item in items]
    n = min(workers or default_workers(), len(items))
    if executor == "process":
        # Thread workers share the parent's tracer; process workers must
        # collect spans locally and ship them back with each result.
        wrapped = wrap_worker(func)
        if wrapped is not func:
            results = _pool_map(executor, n, wrapped, items)
            return [
                absorb_result(r, worker_item=i) for i, r in enumerate(results)
            ]
    return _pool_map(executor, n, func, items)


def robust_chunk_map(
    func: Callable[[T], R],
    items: Sequence[T],
    *,
    executor: str = "serial",
    workers: int | None = None,
    timeout: float | None = None,
    max_rounds: int = 2,
) -> tuple[list[R], list[str]]:
    """Order-preserving map that degrades instead of failing.

    Semantics match :func:`chunk_map` — same executors, same ordering,
    exceptions raised by ``func`` itself propagate unchanged — but
    *infrastructure* failures are absorbed: a task that exceeds
    ``timeout`` seconds or dies with its pool is retried on a fresh pool
    (up to ``max_rounds`` parallel attempts total) and finally re-run
    serially.  Every degradation is recorded in the returned notes list
    so callers can surface it (e.g. in a
    :class:`~repro.core.container.DecodeReport`) rather than losing the
    whole volume to one broken worker.

    Returns ``(results, notes)``; ``notes`` is empty on a clean run.
    """
    if executor not in EXECUTORS:
        raise InvalidArgumentError(
            f"unknown executor {executor!r}; choose from {EXECUTORS}"
        )
    if workers is not None and workers < 1:
        raise InvalidArgumentError("workers must be at least 1")
    notes: list[str] = []
    if executor in ("serial", "batch") or len(items) <= 1 or (workers or 2) == 1:
        return [func(item) for item in items], notes

    traced = False
    if executor == "process":
        wrapped = wrap_worker(func)
        if wrapped is not func:
            func, traced = wrapped, True

    n = min(workers or default_workers(), len(items))
    results: list[Any] = [None] * len(items)
    pending = list(range(len(items)))
    for round_no in range(max_rounds):
        if not pending:
            break
        try:
            pool = get_pool(executor, n)
            futures = {i: pool.submit(func, items[i]) for i in pending}
        except (BrokenExecutor, RuntimeError) as exc:
            notes.append(
                f"{executor} pool unavailable ({type(exc).__name__}: {exc}); "
                f"falling back to serial for {len(pending)} chunks"
            )
            _discard_pool(executor, n)
            break
        failed: list[int] = []
        broken = False
        for i, fut in futures.items():
            try:
                results[i] = fut.result(timeout=timeout)
            except FuturesTimeoutError:
                fut.cancel()
                failed.append(i)
                notes.append(
                    f"chunk {i} exceeded the {timeout}s task timeout "
                    f"(round {round_no + 1})"
                )
            except BrokenExecutor as exc:
                failed.append(i)
                broken = True
                notes.append(
                    f"chunk {i} lost to a broken {executor} pool "
                    f"({type(exc).__name__})"
                )
        if failed and (broken or timeout is not None):
            # A timed-out task may still be wedging a worker; recycle so
            # the retry round starts from a clean pool.
            _discard_pool(executor, n)
        pending = failed
    if pending:
        notes.append(
            f"degraded to serial execution for chunks {sorted(pending)}"
        )
        for i in pending:
            results[i] = func(items[i])
    if traced:
        # Merge worker spans in item order regardless of completion
        # order, so repeated runs produce identical trace sequences.
        results = [absorb_result(r, worker_item=i) for i, r in enumerate(results)]
    return results, notes


def _shm_apply(job: tuple) -> Any:
    """Worker side of the zero-copy path: slice the shared volume and run.

    ``job`` is ``(func, shm_name, shape, dtype_str, bounds, args)``; the
    chunk is copied out of shared memory (workers never write the shared
    segment) and handed to ``func``.  Pool workers share the parent's
    resource-tracker process, so the attach here adds no extra tracking
    and the parent's ``unlink`` is the single point of cleanup.
    """
    func, name, shape, dtype_str, bounds, args = job
    shm = shared_memory.SharedMemory(name=name)
    try:
        arr = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=shm.buf)
        part = arr[tuple(slice(a, b) for a, b in bounds)].copy()
    finally:
        shm.close()
    return func(part, *args)


def map_chunk_arrays(
    func: Callable[..., R],
    data: np.ndarray,
    chunks: Sequence,
    *,
    args: tuple = (),
    executor: str = "serial",
    workers: int | None = None,
) -> list[R]:
    """Apply ``func(chunk_array, *args)`` to every chunk of ``data``.

    ``chunks`` is a sequence of :class:`~repro.core.chunking.Chunk`.
    With the ``serial`` and ``thread`` executors each chunk is a
    contiguous copy sliced in-process.  With the ``process`` executor the
    volume is written to POSIX shared memory once and workers receive
    ``(shm_name, shape, dtype, bounds)`` descriptors — no pickling of
    chunk arrays — so ``func`` (and everything in ``args``) must be
    picklable.  Output is byte-identical across executors.
    """
    if executor not in EXECUTORS:
        raise InvalidArgumentError(
            f"unknown executor {executor!r}; choose from {EXECUTORS}"
        )
    if workers is not None and workers < 1:
        raise InvalidArgumentError("workers must be at least 1")
    data = np.asarray(data)
    if not chunks:
        return []

    if executor != "process" or len(chunks) <= 1 or (workers or 2) == 1:
        parts = (np.ascontiguousarray(data[c.slices()]) for c in chunks)
        if executor == "thread" and len(chunks) > 1 and (workers or 2) != 1:
            n = min(workers or default_workers(), len(chunks))
            return _pool_map("thread", n, lambda part: func(part, *args), list(parts))
        return [func(part, *args) for part in parts]

    n = min(workers or default_workers(), len(chunks))
    wrapped = wrap_worker(func)
    shm = shared_memory.SharedMemory(create=True, size=max(1, data.nbytes))
    try:
        shared = np.ndarray(data.shape, dtype=data.dtype, buffer=shm.buf)
        np.copyto(shared, data)
        del shared  # release the buffer export so close() succeeds
        jobs = [
            (wrapped, shm.name, data.shape, data.dtype.str, c.bounds, args)
            for c in chunks
        ]
        results = _pool_map("process", n, _shm_apply, jobs)
    finally:
        shm.close()
        shm.unlink()
    if wrapped is not func:
        results = [absorb_result(r, worker_item=i) for i, r in enumerate(results)]
    return results
