"""Chunk-level parallel execution — the OpenMP substitute.

Real SPERR parallelizes with OpenMP threads over chunks (paper
Sec. III-D).  The Python reproduction offers the same embarrassingly
parallel structure with three executors:

* ``serial``  — deterministic in-process loop (default, and the baseline
  for the strong-scaling study);
* ``thread``  — ``concurrent.futures.ThreadPoolExecutor``; numpy releases
  the GIL in the heavy kernels so threads do overlap;
* ``process`` — ``ProcessPoolExecutor`` for full core isolation.

The degree of parallelism is bounded by the number of chunks, exactly the
limitation Sec. III-D concedes.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from ..errors import InvalidArgumentError

__all__ = ["chunk_map", "EXECUTORS", "default_workers"]

T = TypeVar("T")
R = TypeVar("R")

EXECUTORS = ("serial", "thread", "process")


def default_workers() -> int:
    """Leave a core for system processes, as the paper's Sec. V-D advises."""
    return max(1, (os.cpu_count() or 1) - 1)


def chunk_map(
    func: Callable[[T], R],
    items: Sequence[T],
    *,
    executor: str = "serial",
    workers: int | None = None,
) -> list[R]:
    """Apply ``func`` to every chunk, preserving order.

    Results are returned in input order regardless of completion order,
    mirroring SPERR's deterministic concatenation of chunk bitstreams.
    """
    if executor not in EXECUTORS:
        raise InvalidArgumentError(
            f"unknown executor {executor!r}; choose from {EXECUTORS}"
        )
    if workers is not None and workers < 1:
        raise InvalidArgumentError("workers must be at least 1")
    if executor == "serial" or len(items) <= 1 or (workers or 2) == 1:
        return [func(item) for item in items]
    n = min(workers or default_workers(), len(items))
    pool_cls = ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
    with pool_cls(max_workers=n) as pool:
        return list(pool.map(func, items))
