"""Multi-frame (time-series) archives.

The paper's motivating archives — CESM LENS, the Johns Hopkins
Turbulence Database — are *time series* of fields written once and read
for years (Sec. I).  This module frames a sequence of snapshots into a
single archive with random access per frame: each frame is an
independent SPERR container, so a reader can decompress one timestep
without touching the rest, and frames can use different modes or even
shapes (adaptive-resolution runs).

Layout::

    magic "SPRRTS1\\0"    8 bytes
    n_frames             u32
    frame byte lengths   n_frames * u64
    frame payloads       (standard containers, concatenated)
"""

from __future__ import annotations

import struct
from typing import Iterable, Sequence

import numpy as np

from ..errors import InvalidArgumentError, StreamFormatError
from .container import CompressionResult, compress, decompress
from .modes import PsnrMode, PweMode, SizeMode

__all__ = ["compress_frames", "decompress_frame", "decompress_frames", "frame_count"]

_MAGIC = b"SPRRTS1\x00"


def compress_frames(
    frames: Sequence[np.ndarray] | Iterable[np.ndarray],
    mode: PweMode | SizeMode | PsnrMode | Sequence[PweMode | SizeMode | PsnrMode],
    **kwargs,
) -> tuple[bytes, list[CompressionResult]]:
    """Compress a sequence of snapshots into one archive.

    ``mode`` may be a single mode (applied to every frame) or one mode
    per frame (e.g. tighter tolerances for scientifically interesting
    epochs).  Extra keyword arguments pass through to
    :func:`repro.core.compress` (chunking, wavelet, executor, ...).

    Returns ``(payload, per_frame_results)``.
    """
    frames = list(frames)
    if not frames:
        raise InvalidArgumentError("no frames to compress")
    if isinstance(mode, (PweMode, SizeMode, PsnrMode)):
        modes = [mode] * len(frames)
    else:
        modes = list(mode)
        if len(modes) != len(frames):
            raise InvalidArgumentError(
                f"{len(modes)} modes for {len(frames)} frames"
            )

    results = [compress(frame, m, **kwargs) for frame, m in zip(frames, modes)]
    payloads = [r.payload for r in results]
    head = bytearray()
    head += _MAGIC
    head += struct.pack("<I", len(payloads))
    for p in payloads:
        head += struct.pack("<Q", len(p))
    return bytes(head) + b"".join(payloads), results


def _frame_table(payload: bytes) -> list[tuple[int, int]]:
    """(offset, length) of every frame payload."""
    if payload[:8] != _MAGIC:
        raise StreamFormatError("not a SPERR time-series archive")
    (n,) = struct.unpack_from("<I", payload, 8)
    pos = 12
    lengths = struct.unpack_from(f"<{n}Q", payload, pos)
    pos += 8 * n
    table = []
    for length in lengths:
        table.append((pos, int(length)))
        pos += length
    if pos > len(payload):
        raise StreamFormatError("time-series archive truncated")
    return table


def frame_count(payload: bytes) -> int:
    """Number of frames in an archive."""
    return len(_frame_table(payload))


def decompress_frame(payload: bytes, index: int, **kwargs) -> np.ndarray:
    """Random access: decompress a single frame by index."""
    table = _frame_table(payload)
    if not -len(table) <= index < len(table):
        raise InvalidArgumentError(
            f"frame index {index} out of range for {len(table)} frames"
        )
    offset, length = table[index]
    return decompress(payload[offset : offset + length], **kwargs)


def decompress_frames(payload: bytes, **kwargs) -> list[np.ndarray]:
    """Decompress every frame, in order."""
    return [
        decompress(payload[offset : offset + length], **kwargs)
        for offset, length in _frame_table(payload)
    ]
