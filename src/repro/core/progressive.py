"""Progressive and multi-resolution access — the paper's Sec. VII roadmap.

Two capabilities fall out of SPERR's wavelet + embedded-bitplane design:

* :func:`truncate` — any prefix of a SPECK stream is decodable, so a
  stored container can be cut down to a byte budget *after the fact*
  without re-encoding (streaming / tiered-storage use cases).  The
  truncated container decodes to a coarser but valid reconstruction.
* :func:`decompress_multires` — the wavelet hierarchy represents the
  data as self-similar coarsened levels, so a low-resolution preview can
  be reconstructed by skipping the finest inverse-transform levels.

Both operate on standard containers produced by :func:`repro.compress`.
"""

from __future__ import annotations

import numpy as np

from .. import lossless
from ..bitstream import HEADER_SIZE, ChunkHeader, ChunkParams
from ..errors import InvalidArgumentError, StreamFormatError, UnsupportedModeError
from ..speck import decode_coefficients
from ..wavelets import WaveletPlan, inverse_to_level
from .container import build_container, parse_container

__all__ = ["truncate", "decompress_multires"]


def _split_chunk(raw: bytes) -> tuple[ChunkHeader, ChunkParams, bytes, bytes]:
    header = ChunkHeader.unpack(raw)
    params = ChunkParams.unpack(raw[HEADER_SIZE:])
    body = raw[HEADER_SIZE + ChunkParams.SIZE :]
    if len(body) < header.speck_nbytes + params.outlier_nbytes:
        raise StreamFormatError("chunk stream shorter than its section table")
    speck = body[: header.speck_nbytes]
    outliers = body[header.speck_nbytes : header.speck_nbytes + params.outlier_nbytes]
    return header, params, speck, outliers


def truncate(payload: bytes, fraction: float) -> bytes:
    """Cut every chunk's SPECK stream to ``fraction`` of its bits.

    Returns a new, self-contained container.  The outlier sections are
    dropped (their corrections refer to the full-precision coefficient
    reconstruction), so the result is a *size-mode* container: it decodes
    to a valid coarser reconstruction but no longer carries a PWE
    guarantee — exactly the trade-off of the streaming scenario in
    Sec. VII.
    """
    if not 0.0 < fraction <= 1.0:
        raise InvalidArgumentError("fraction must be in (0, 1]")
    parsed = parse_container(payload)
    new_streams: list[bytes] = []
    for stream in parsed.streams:
        header, params, speck, _outliers = _split_chunk(lossless.decompress(stream))
        new_nbits = max(16, int(params.speck_nbits * fraction))
        new_nbits = min(new_nbits, params.speck_nbits)
        new_speck = speck[: (new_nbits + 7) // 8]
        new_header = ChunkHeader(
            shape=header.shape,
            speck_nbytes=len(new_speck),
            is_double=header.is_double,
            pwe_mode=False,
            has_outliers=False,
        )
        new_params = ChunkParams(
            q=params.q,
            tolerance=0.0,
            speck_nbits=new_nbits,
            outlier_nbits=0,
            outlier_nbytes=0,
            wavelet=params.wavelet,
            levels=params.levels,
        )
        raw = new_header.pack() + new_params.pack() + new_speck
        new_streams.append(lossless.compress(raw, method="auto"))
    return build_container(
        parsed.rank, parsed.dtype, 1, parsed.shape, parsed.chunks, new_streams
    )


def decompress_multires(payload: bytes, level: int) -> np.ndarray:
    """Reconstruct a coarsened view: skip the finest ``level`` inverse
    wavelet levels (each skipped level roughly halves every axis).

    Requires a single-chunk container — coarse views of independently
    transformed chunks do not tile into one coherent coarse volume.
    ``level = 0`` is equivalent to full decompression without outlier
    corrections applied at coarser levels (corrections are point-wise at
    full resolution, so they are applied only when ``level == 0``).
    """
    if level < 0:
        raise InvalidArgumentError("level must be non-negative")
    parsed = parse_container(payload)
    if len(parsed.streams) != 1:
        raise UnsupportedModeError(
            "multi-resolution decoding requires a single-chunk container "
            f"(this one has {len(parsed.streams)} chunks)"
        )
    if level == 0:
        from .container import decompress

        return decompress(payload)

    raw = lossless.decompress(parsed.streams[0])
    header, params, speck, _outliers = _split_chunk(raw)
    shape = parsed.shape
    coeffs = decode_coefficients(speck, shape, params.q, nbits=params.speck_nbits)
    plan = WaveletPlan.create(shape, wavelet=params.wavelet, levels=params.levels)
    if level > plan.total_levels:
        raise InvalidArgumentError(
            f"container supports at most {plan.total_levels} coarsening levels"
        )
    box = inverse_to_level(coeffs, plan, level)
    return box.astype(parsed.dtype, copy=False)
