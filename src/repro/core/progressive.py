"""Progressive and multi-resolution access — the paper's Sec. VII roadmap.

Two capabilities fall out of SPERR's wavelet + embedded-bitplane design:

* :func:`truncate` — any prefix of a SPECK stream is decodable, so a
  stored container can be cut down to a byte budget *after the fact*
  without re-encoding (streaming / tiered-storage use cases).  The
  truncated container decodes to a coarser but valid reconstruction.
* :func:`decompress_multires` — the wavelet hierarchy represents the
  data as self-similar coarsened levels, so a low-resolution preview can
  be reconstructed by skipping the finest inverse-transform levels.

Both operate on standard containers produced by :func:`repro.compress`.
The chunk-level primitives (:func:`split_chunk_stream`,
:func:`truncate_chunk_stream`) are shared with the random-access store
(:mod:`repro.store`), which applies the same truncation per chunk to
serve windowed reads under a byte budget.

All payload parsing here runs behind the :func:`~repro.errors.decode_guard`
/ :func:`~repro.errors.checked_shape` trust boundary, matching every
other decoder in the package: a forged or corrupted payload surfaces as
:class:`~repro.errors.StreamFormatError`, never a raw ``struct``/numpy
exception, and declared shapes are capped before sizing an allocation.
"""

from __future__ import annotations

import numpy as np

from .. import lossless
from ..bitstream import HEADER_SIZE, ChunkHeader, ChunkParams
from ..errors import (
    InvalidArgumentError,
    StreamFormatError,
    UnsupportedModeError,
    checked_shape,
    decode_guard,
)
from ..speck import decode_coefficients
from ..wavelets import inverse_to_level
from .plans import wavelet_plan

__all__ = [
    "truncate",
    "decompress_multires",
    "split_chunk_stream",
    "truncate_chunk_stream",
]


def split_chunk_stream(raw: bytes) -> tuple[ChunkHeader, ChunkParams, bytes, bytes]:
    """Split a raw (lossless-decompressed) chunk stream into its parts.

    Returns ``(header, params, speck_section, outlier_section)`` after
    validating the section table against the actual byte count and the
    declared bit counts against the section sizes — the same checks
    :func:`~repro.core.pipeline.decompress_chunk` applies before
    trusting a stream.
    """
    header = ChunkHeader.unpack(raw)
    params = ChunkParams.unpack(raw[HEADER_SIZE:])
    body = raw[HEADER_SIZE + ChunkParams.SIZE :]
    if len(body) < header.speck_nbytes + params.outlier_nbytes:
        raise StreamFormatError("chunk stream shorter than its section table")
    if params.speck_nbits > 8 * header.speck_nbytes:
        raise StreamFormatError(
            f"SPECK section declares {params.speck_nbits} bits in "
            f"{header.speck_nbytes} bytes"
        )
    if params.outlier_nbits > 8 * params.outlier_nbytes:
        raise StreamFormatError(
            f"outlier section declares {params.outlier_nbits} bits in "
            f"{params.outlier_nbytes} bytes"
        )
    if not np.isfinite(params.q) or params.q < 0:
        raise StreamFormatError(f"invalid quantization step {params.q!r}")
    speck = body[: header.speck_nbytes]
    outliers = body[header.speck_nbytes : header.speck_nbytes + params.outlier_nbytes]
    return header, params, speck, outliers


def truncate_chunk_stream(raw: bytes, fraction: float) -> bytes:
    """Cut one raw chunk stream's SPECK section to ``fraction`` of its bits.

    Returns a new self-contained raw chunk stream.  The outlier section
    is dropped (its corrections refer to the full-precision coefficient
    reconstruction), so the result decodes as a size-mode stream: a
    valid coarser reconstruction without a PWE guarantee.  ``raw`` is
    parsed behind the decode guard, so a malformed stream raises
    :class:`~repro.errors.StreamFormatError`.
    """
    if not 0.0 < fraction <= 1.0:
        raise InvalidArgumentError("fraction must be in (0, 1]")
    with decode_guard("sperr"):
        header, params, speck, _outliers = split_chunk_stream(raw)
    new_nbits = max(16, int(params.speck_nbits * fraction))
    new_nbits = min(new_nbits, params.speck_nbits)
    new_speck = speck[: (new_nbits + 7) // 8]
    new_header = ChunkHeader(
        shape=header.shape,
        speck_nbytes=len(new_speck),
        is_double=header.is_double,
        pwe_mode=False,
        has_outliers=False,
    )
    new_params = ChunkParams(
        q=params.q,
        tolerance=0.0,
        speck_nbits=new_nbits,
        outlier_nbits=0,
        outlier_nbytes=0,
        wavelet=params.wavelet,
        levels=params.levels,
    )
    return new_header.pack() + new_params.pack() + new_speck


def truncate(payload: bytes, fraction: float) -> bytes:
    """Cut every chunk's SPECK stream to ``fraction`` of its bits.

    Returns a new, self-contained container.  The outlier sections are
    dropped (their corrections refer to the full-precision coefficient
    reconstruction), so the result is a *size-mode* container: it decodes
    to a valid coarser reconstruction but no longer carries a PWE
    guarantee — exactly the trade-off of the streaming scenario in
    Sec. VII.
    """
    from .adaptive import CODEC_SPERR
    from .container import build_container, parse_container

    if not 0.0 < fraction <= 1.0:
        raise InvalidArgumentError("fraction must be in (0, 1]")
    parsed = parse_container(payload)
    tags = parsed.codec_tags or (CODEC_SPERR,) * len(parsed.streams)
    new_streams: list[bytes] = []
    for stream, tag in zip(parsed.streams, tags):
        if tag != CODEC_SPERR:
            # szx/stored chunks have no embedded-bitplane structure to
            # cut; they pass through whole (they are already the cheap
            # tier) and keep their tag in the rebuilt table.
            new_streams.append(stream)
            continue
        with decode_guard("sperr"):
            raw = lossless.decompress(stream)
        new_streams.append(
            lossless.compress(truncate_chunk_stream(raw, fraction), method="auto")
        )
    return build_container(
        parsed.rank,
        parsed.dtype,
        1,
        parsed.shape,
        parsed.chunks,
        new_streams,
        version=parsed.format_version if parsed.codec_tags else 2,
        codec_tags=parsed.codec_tags,
    )


def decompress_multires(payload: bytes, level: int) -> np.ndarray:
    """Reconstruct a coarsened view: skip the finest ``level`` inverse
    wavelet levels (each skipped level roughly halves every axis).

    Requires a single-chunk container — coarse views of independently
    transformed chunks do not tile into one coherent coarse volume
    (:meth:`repro.store.CompressedArray.read_window` offers the
    chunk-aligned equivalent for sharded stores).  ``level = 0`` is
    equivalent to full decompression without outlier corrections applied
    at coarser levels (corrections are point-wise at full resolution, so
    they are applied only when ``level == 0``).
    """
    from .container import parse_container

    if level < 0:
        raise InvalidArgumentError("level must be non-negative")
    parsed = parse_container(payload)
    if len(parsed.streams) != 1:
        raise UnsupportedModeError(
            "multi-resolution decoding requires a single-chunk container "
            f"(this one has {len(parsed.streams)} chunks)"
        )
    if level == 0:
        from .container import decompress

        return decompress(payload)

    from .adaptive import CODEC_SPERR

    tag = parsed.codec_tags[0] if parsed.codec_tags else CODEC_SPERR
    if tag != CODEC_SPERR:
        # szx/stored chunks carry no wavelet hierarchy; a coarse view is
        # produced by full decode + per-level decimation, which matches
        # the (n+1)//2-per-level extents of the wavelet path.
        from .container import decode_tagged_chunk

        shape = checked_shape(parsed.shape, "adaptive")
        box = decode_tagged_chunk(parsed.streams[0], tag, parsed.rank, shape)
        for _ in range(level):
            box = box[tuple(slice(None, None, 2) for _ in range(box.ndim))]
        return box.astype(parsed.dtype, copy=False)

    shape = checked_shape(parsed.shape, "sperr")
    with decode_guard("sperr"):
        raw = lossless.decompress(parsed.streams[0])
        _header, params, speck, _outliers = split_chunk_stream(raw)
        coeffs = decode_coefficients(speck, shape, params.q, nbits=params.speck_nbits)
        plan = wavelet_plan(shape, wavelet=params.wavelet, levels=params.levels)
        if level > plan.total_levels:
            raise InvalidArgumentError(
                f"container supports at most {plan.total_levels} coarsening levels"
            )
        box = inverse_to_level(coeffs, plan, level)
    return box.astype(parsed.dtype, copy=False)
