"""Mask-aware input hardening: NaN/Inf detection, fill, and mask coding.

Real simulation output is not a clean float cube: SDRBench-style ocean
fields carry land masks stored as NaN, diagnostics overflow to ±Inf, and
restart dumps mix float32 and float64.  The wavelet/SPECK pipeline is
defined only on finite values, so non-finite samples are handled at the
container boundary:

1. :func:`classify_nonfinite` labels every sample with a 2-bit code
   (valid / NaN / +Inf / -Inf);
2. :func:`fill_masked` replaces the non-finite samples with a smooth
   neighbor-aware value (iterative neighbor-mean diffusion) so the DWT
   sees a field without artificial discontinuities at mask boundaries;
3. :func:`encode_mask` stores the code array as a run-length stream
   compressed through the lossless backend — ocean-land masks are large
   contiguous regions, so the blob is typically a few hundred bytes;
4. on decode, :func:`decode_mask` + :func:`apply_mask` restore the exact
   NaN/±Inf pattern, so masked positions round-trip bit-for-bit.

The PWE guarantee applies to the *valid* samples; filled positions are
overwritten on decode and carry no error contract.  Conditions that the
pipeline absorbs rather than rejects (all-masked input, constant fields,
denormal-heavy data) are reported as structured :class:`DegradationNote`
records on the compression result instead of being raised.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

from .. import lossless
from ..errors import StreamFormatError, decode_guard

__all__ = [
    "MASK_VALID",
    "MASK_NAN",
    "MASK_POSINF",
    "MASK_NEGINF",
    "DegradationNote",
    "classify_nonfinite",
    "fill_masked",
    "encode_mask",
    "decode_mask",
    "apply_mask",
    "mask_summary",
    "sanitize_array",
]

#: Sample classification codes stored in the mask blob.
MASK_VALID = 0
MASK_NAN = 1
MASK_POSINF = 2
MASK_NEGINF = 3

_MASK_MAGIC = b"MSK1"

#: Diffusion sweeps before falling back to the global mean for samples
#: deep inside a masked region.  Each sweep grows the filled rim by one
#: cell, so 32 sweeps cover any mask lobe up to 32 cells thick.
_MAX_FILL_SWEEPS = 32

#: Fraction of nonzero finite samples below the dtype's smallest normal
#: magnitude above which the input is flagged as denormal-heavy.
_DENORMAL_NOTE_FRACTION = 0.25


@dataclass(frozen=True)
class DegradationNote:
    """A condition the pipeline absorbed instead of raising.

    ``kind`` is a stable machine-readable tag (``masked_input``,
    ``all_masked``, ``constant_field``, ``denormal_heavy``,
    ``fill_fallback``, ...); ``detail`` is the human-readable account.
    """

    kind: str
    detail: str

    def __str__(self) -> str:
        return f"{self.kind}: {self.detail}"


def classify_nonfinite(data: np.ndarray) -> np.ndarray | None:
    """Label each sample of ``data`` with a mask code.

    Returns ``None`` when every sample is finite (the common case pays
    one vectorized ``isfinite`` and allocates nothing), otherwise a
    ``uint8`` array of :data:`MASK_VALID`/:data:`MASK_NAN`/
    :data:`MASK_POSINF`/:data:`MASK_NEGINF` codes.
    """
    finite = np.isfinite(data)
    if finite.all():
        return None
    codes = np.zeros(data.shape, dtype=np.uint8)
    codes[np.isnan(data)] = MASK_NAN
    codes[np.isposinf(data)] = MASK_POSINF
    codes[np.isneginf(data)] = MASK_NEGINF
    return codes


def _neighbor_mean(a: np.ndarray) -> np.ndarray:
    """Mean of each cell's finite face neighbors (NaN where none exist)."""
    sums = np.zeros(a.shape, dtype=np.float64)
    counts = np.zeros(a.shape, dtype=np.int64)
    for ax in range(a.ndim):
        for direction in (1, -1):
            shifted = np.full(a.shape, np.nan)
            dst = [slice(None)] * a.ndim
            src = [slice(None)] * a.ndim
            if direction == 1:
                dst[ax], src[ax] = slice(1, None), slice(None, -1)
            else:
                dst[ax], src[ax] = slice(None, -1), slice(1, None)
            shifted[tuple(dst)] = a[tuple(src)]
            good = ~np.isnan(shifted)
            sums[good] += shifted[good]
            counts[good] += 1
    with np.errstate(invalid="ignore"):
        return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)


def fill_masked(
    data: np.ndarray, codes: np.ndarray
) -> tuple[np.ndarray, list[DegradationNote]]:
    """Replace masked samples with smooth neighbor-aware values.

    Masked cells take the mean of their already-valid face neighbors;
    the fill front advances one cell per sweep (Jacobi diffusion), which
    keeps mask boundaries free of artificial jumps that would cost
    wavelet bits.  Cells still unfilled after :data:`_MAX_FILL_SWEEPS`
    sweeps (deep inside a large mask) take the global mean of the valid
    samples.  An all-masked input fills with zero and is reported via a
    :class:`DegradationNote` instead of raised.

    Returns a float64 copy plus any degradation notes.
    """
    notes: list[DegradationNote] = []
    mask = codes != MASK_VALID
    out = np.array(data, dtype=np.float64)
    if mask.all():
        out[...] = 0.0
        notes.append(
            DegradationNote(
                "all_masked",
                f"every one of {out.size} samples is non-finite; "
                "compressing a zero fill (mask restores them on decode)",
            )
        )
        return out, notes
    out[mask] = np.nan
    for _ in range(_MAX_FILL_SWEEPS):
        holes = np.isnan(out)
        if not holes.any():
            break
        candidate = _neighbor_mean(out)
        out[holes] = candidate[holes]
    holes = np.isnan(out)
    if holes.any():
        fallback = float(np.mean(out[~holes]))
        out[holes] = fallback
        notes.append(
            DegradationNote(
                "fill_fallback",
                f"{int(holes.sum())} masked samples deeper than "
                f"{_MAX_FILL_SWEEPS} cells filled with the field mean "
                f"({fallback:g})",
            )
        )
    return out, notes


def encode_mask(codes: np.ndarray) -> bytes:
    """Serialize a mask-code array as an RLE + lossless-backend blob.

    The flattened (C-order) codes are split into value runs — ocean-land
    masks are contiguous, so there are few — packed as ``u8`` values and
    ``u32`` lengths, and the whole record is handed to the lossless
    backend for a final squeeze.
    """
    flat = np.ascontiguousarray(codes, dtype=np.uint8).ravel()
    if flat.size == 0:
        raise StreamFormatError("cannot encode an empty mask")
    boundaries = np.flatnonzero(np.diff(flat)) + 1
    starts = np.concatenate(([0], boundaries))
    lengths = np.diff(np.concatenate((starts, [flat.size])))
    values = flat[starts]
    raw = (
        _MASK_MAGIC
        + struct.pack("<QI", flat.size, len(values))
        + values.astype(np.uint8).tobytes()
        + lengths.astype("<u4").tobytes()
    )
    return lossless.compress(raw, method="auto")


def decode_mask(blob: bytes, npoints: int) -> np.ndarray:
    """Decode a mask blob back to the flat ``uint8`` code array.

    ``npoints`` is the trusted sample count from the already-validated
    container shape; a blob that declares anything else, overlong runs,
    or out-of-range codes is rejected as malformed.
    """
    with decode_guard("mask"):
        raw = lossless.decompress(blob)
        if raw[:4] != _MASK_MAGIC:
            raise StreamFormatError("mask blob has a bad magic")
        declared, n_runs = struct.unpack_from("<QI", raw, 4)
        if declared != npoints:
            raise StreamFormatError(
                f"mask declares {declared} samples for a {npoints}-point volume"
            )
        if n_runs < 1 or n_runs > npoints:
            raise StreamFormatError(f"mask declares {n_runs} runs")
        pos = 4 + 12
        if len(raw) != pos + n_runs + 4 * n_runs:
            raise StreamFormatError("mask blob length disagrees with its run count")
        values = np.frombuffer(raw, dtype=np.uint8, count=n_runs, offset=pos)
        lengths = np.frombuffer(raw, dtype="<u4", count=n_runs, offset=pos + n_runs)
        if values.max() > MASK_NEGINF:
            raise StreamFormatError("mask blob contains an unknown sample code")
        if lengths.min() < 1 or int(lengths.sum()) != npoints:
            raise StreamFormatError("mask run lengths do not tile the volume")
        return np.repeat(values, lengths)


def apply_mask(out: np.ndarray, codes: np.ndarray) -> np.ndarray:
    """Restore the exact NaN/±Inf pattern onto a decoded array (in place).

    ``codes`` may be flat or shaped; it must cover ``out`` exactly.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size != out.size:
        raise StreamFormatError(
            f"mask covers {codes.size} samples, volume has {out.size}"
        )
    codes = codes.reshape(out.shape)
    out[codes == MASK_NAN] = np.nan
    out[codes == MASK_POSINF] = np.inf
    out[codes == MASK_NEGINF] = -np.inf
    return out


def mask_summary(codes: np.ndarray) -> dict[str, int]:
    """Count mask codes (for ``repro info`` and store introspection)."""
    flat = np.asarray(codes).ravel()
    return {
        "masked": int(np.count_nonzero(flat)),
        "nan": int(np.count_nonzero(flat == MASK_NAN)),
        "pos_inf": int(np.count_nonzero(flat == MASK_POSINF)),
        "neg_inf": int(np.count_nonzero(flat == MASK_NEGINF)),
    }


def mask_crc(blob: bytes) -> int:
    """CRC32 of a mask blob (stored next to it in container framing)."""
    return zlib.crc32(blob)


def tighten_pwe_for_dtype(mode, data: np.ndarray):
    """Tighten a PWE tolerance so it survives the cast back to float32.

    The reconstruction of a float32 input is rounded back to float32 on
    decode, which can add up to half a single-precision ULP on top of
    the codec's error.  Compressing against ``tolerance - 0.5 ulp``
    keeps the user-visible bound exact on the float32 output.  Mirrors
    the paper's idx caps for single-precision fields (Sec. VI-C); a
    tolerance at or below the ULP scale cannot survive the rounding at
    all and is rejected.  Non-float32 data and non-PWE modes pass
    through unchanged.
    """
    from ..errors import InvalidArgumentError
    from .modes import PweMode

    if data.dtype != np.float32 or not isinstance(mode, PweMode) or not data.size:
        return mode
    # Only finite samples matter: non-finite positions are mask-restored
    # exactly, and a stray Inf must not disable the guard entirely.
    finite = np.abs(data[np.isfinite(data)])
    if not finite.size:
        return mode
    ulp = float(finite.max()) * 2.0**-23
    if mode.tolerance <= 0.5 * ulp:
        raise InvalidArgumentError(
            f"tolerance {mode.tolerance:g} is below float32 precision "
            f"(~{ulp:g}) for this data; use float64 input or a looser "
            "tolerance"
        )
    return PweMode(mode.tolerance - 0.5 * ulp, q_factor=mode.q_factor)


def sanitize_array(
    data: np.ndarray,
) -> tuple[np.ndarray, np.ndarray | None, list[DegradationNote]]:
    """Harden one input array at the pipeline boundary.

    Returns ``(clean, codes, notes)`` where ``clean`` is finite
    everywhere and keeps ``data``'s dtype (float32 fills are re-rounded
    to float32 so PWE semantics stay defined on the stored precision),
    ``codes`` is the mask-code array (``None`` when the input was fully
    finite), and ``notes`` records every absorbed degradation: masked
    input, constant fields, and denormal-heavy data.
    """
    notes: list[DegradationNote] = []
    codes = classify_nonfinite(data)
    clean = data
    if codes is not None:
        counts = mask_summary(codes)
        notes.append(
            DegradationNote(
                "masked_input",
                f"{counts['masked']}/{data.size} samples non-finite "
                f"(NaN {counts['nan']}, +Inf {counts['pos_inf']}, "
                f"-Inf {counts['neg_inf']}); filled before transform",
            )
        )
        filled, fill_notes = fill_masked(data, codes)
        notes.extend(fill_notes)
        # Round the fill back to the input's precision so the values the
        # codec sees are exactly the values a same-dtype decode returns.
        clean = filled.astype(data.dtype) if data.dtype == np.float32 else filled

    if clean.size:
        lo = float(clean.min())
        hi = float(clean.max())
        if hi == lo:
            notes.append(
                DegradationNote(
                    "constant_field",
                    f"input is constant ({hi:g}); rate-only coding, PSNR "
                    "is undefined",
                )
            )
        tiny = float(np.finfo(data.dtype if data.dtype == np.float32 else np.float64).tiny)
        magnitudes = np.abs(np.asarray(clean, dtype=np.float64))
        nonzero = magnitudes > 0.0
        n_nonzero = int(np.count_nonzero(nonzero))
        if n_nonzero:
            n_denormal = int(np.count_nonzero(nonzero & (magnitudes < tiny)))
            if n_denormal / n_nonzero > _DENORMAL_NOTE_FRACTION:
                notes.append(
                    DegradationNote(
                        "denormal_heavy",
                        f"{n_denormal}/{n_nonzero} nonzero samples are "
                        "denormal; absolute tolerances near the subnormal "
                        "range lose precision",
                    )
                )
    return clean, codes, notes
