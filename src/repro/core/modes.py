"""Compression modes and tolerance bookkeeping.

SPERR terminates coding on either criterion (paper Sec. I):

* :class:`PweMode` — error-bounded: the reconstruction never deviates
  from the input by more than the point-wise tolerance ``t``;
* :class:`SizeMode` — size-bounded: the output reaches a prescribed
  bitrate (bits per point, BPP) and the embedded stream is truncated.

The paper labels tolerance levels with an integer ``idx`` such that
``t = Range / 2**idx`` (Table I); :func:`tolerance_from_idx` implements
that translation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidArgumentError

__all__ = [
    "PweMode",
    "SizeMode",
    "PsnrMode",
    "tolerance_from_idx",
    "data_range",
    "Q_FACTOR",
]

#: Default coefficient-quantization step in units of the tolerance
#: (paper Sec. IV-D: sweet spot lies in [1.4t, 1.8t]; SPERR picks 1.5t).
Q_FACTOR = 1.5


@dataclass(frozen=True)
class PweMode:
    """Error-bounded compression with a maximum point-wise error ``tolerance``.

    ``q_factor`` positions the balance between coefficient and outlier
    coding (quantization step ``q = q_factor * tolerance``); the default
    follows the paper's empirical sweet-spot study.
    """

    tolerance: float
    q_factor: float = Q_FACTOR

    def __post_init__(self) -> None:
        if not np.isfinite(self.tolerance) or self.tolerance <= 0:
            raise InvalidArgumentError("PWE tolerance must be a positive finite number")
        if not np.isfinite(self.q_factor) or self.q_factor <= 0:
            raise InvalidArgumentError("q_factor must be positive")

    @property
    def q(self) -> float:
        """Quantization step for coefficient coding."""
        return self.q_factor * self.tolerance


@dataclass(frozen=True)
class SizeMode:
    """Size-bounded compression targeting ``bpp`` bits per data point."""

    bpp: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.bpp) or self.bpp <= 0:
            raise InvalidArgumentError("target bitrate must be positive")


@dataclass(frozen=True)
class PsnrMode:
    """Average-error-bounded compression targeting ``psnr_db`` decibels.

    For SPERR this implements the first future-work item of Sec. VII:
    because the CDF 9/7 basis is near-orthogonal, the RMSE of the coded
    wavelet coefficients approximately equals the RMSE of the
    reconstruction, so a target average error can be hit by calibrating
    the quantization step in the *coefficient domain* — no inverse
    transform or outlier pass needed.
    """

    psnr_db: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.psnr_db) or self.psnr_db <= 0:
            raise InvalidArgumentError("PSNR target must be positive")


def data_range(data: np.ndarray) -> float:
    """``max(f) - min(f)`` of a field (the Range of Table I).

    Non-finite samples (NaN/Inf mask regions, see :mod:`repro.core.mask`)
    are excluded: the range — like the PWE contract — is defined over
    the valid samples only.
    """
    data = np.asarray(data)
    if data.size == 0:
        raise InvalidArgumentError("empty array has no range")
    finite = np.isfinite(data)
    if not finite.all():
        data = data[finite]
        if data.size == 0:
            raise InvalidArgumentError("all samples are non-finite; no range")
    return float(data.max() - data.min())


def tolerance_from_idx(data: np.ndarray | float, idx: int) -> float:
    """Translate a paper tolerance label ``idx`` into an actual PWE tolerance.

    ``t = Range / 2**idx`` (Table I): idx=10 is about a thousandth of the
    data range, idx=20 a millionth, and so on.  ``data`` may be the field
    itself or a precomputed range.
    """
    if idx < 0:
        raise InvalidArgumentError("idx must be non-negative")
    rng = float(data) if np.isscalar(data) else data_range(np.asarray(data))
    if rng <= 0:
        raise InvalidArgumentError(
            "data range is zero (constant field); a PWE tolerance cannot be "
            "derived from an idx label"
        )
    return rng / float(2**idx)
