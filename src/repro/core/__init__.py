"""SPERR core: modes, chunking, per-chunk pipeline, parallel executor,
and the container-level compress/decompress API."""

from .chunking import DEFAULT_CHUNK, Chunk, assemble, plan_chunks, split
from .container import (
    CONTAINER_VERSION,
    ChunkDecodeStatus,
    CompressionResult,
    DecodeReport,
    DecodeResult,
    ParsedContainer,
    compress,
    decompress,
    parse_container,
)
from .mask import (
    DegradationNote,
    apply_mask,
    classify_nonfinite,
    decode_mask,
    encode_mask,
    fill_masked,
    mask_summary,
    sanitize_array,
)
from .modes import Q_FACTOR, PsnrMode, PweMode, SizeMode, data_range, tolerance_from_idx
from .parallel import (
    EXECUTORS,
    chunk_map,
    default_workers,
    map_chunk_arrays,
    robust_chunk_map,
    shutdown_pools,
)
from .plans import PlanCache, cache_stats, clear_plan_caches
from .progressive import decompress_multires, truncate
from .timeseries import compress_frames, decompress_frame, decompress_frames, frame_count
from .pipeline import ChunkReport, compress_chunk, decompress_chunk

__all__ = [
    "CONTAINER_VERSION",
    "Chunk",
    "ChunkDecodeStatus",
    "ChunkReport",
    "CompressionResult",
    "DegradationNote",
    "apply_mask",
    "classify_nonfinite",
    "decode_mask",
    "encode_mask",
    "fill_masked",
    "mask_summary",
    "sanitize_array",
    "DEFAULT_CHUNK",
    "DecodeReport",
    "DecodeResult",
    "EXECUTORS",
    "ParsedContainer",
    "parse_container",
    "robust_chunk_map",
    "PlanCache",
    "PweMode",
    "PsnrMode",
    "Q_FACTOR",
    "SizeMode",
    "cache_stats",
    "clear_plan_caches",
    "map_chunk_arrays",
    "shutdown_pools",
    "assemble",
    "chunk_map",
    "compress",
    "compress_chunk",
    "data_range",
    "decompress",
    "decompress_multires",
    "truncate",
    "compress_frames",
    "decompress_frame",
    "decompress_frames",
    "frame_count",
    "decompress_chunk",
    "default_workers",
    "plan_chunks",
    "split",
    "tolerance_from_idx",
]
