"""Batched chunk compression: stacked-lane kernels over same-shaped chunks.

This is the ``executor="batch"`` execution mode (ROADMAP item 3): instead
of looping chunk-by-chunk through the four pipeline stages, chunks are
grouped by shape and every group traverses each stage as one stacked
``(n_chunks, *chunk_shape)`` numpy call — batched forward/inverse wavelet
lifting, batched quantization, stacked-lane SPECK with per-lane budget
masking, and batched outlier location/coding.  The per-chunk bitstreams
that come out are byte-identical to the serial path's
(:func:`repro.core.pipeline.compress_chunk`), so container framing,
golden fixtures, salvage, and progressive truncation are unaffected.

Groups of one chunk fall back to the serial reference path, as does PSNR
mode (its per-chunk bisection calibration is inherently sequential).
"""

from __future__ import annotations

import time

import numpy as np

from .. import lossless
from ..bitstream import HEADER_SIZE, ChunkHeader, ChunkParams
from ..errors import InvalidArgumentError
from ..obs import add_counter, span
from ..speck import encode_coefficients_batch
from ..wavelets.dwt import forward_batch, inverse_batch
from .chunking import Chunk, group_by_shape
from .modes import PsnrMode, PweMode, SizeMode
from .pipeline import SIZE_MODE_PLANES, ChunkReport, _shape3
from .plans import wavelet_plan

__all__ = ["compress_chunks_batched"]


def compress_chunks_batched(
    data: np.ndarray,
    chunks: list[Chunk],
    mode: PweMode | SizeMode,
    *,
    wavelet: str = "cdf97",
    levels: int | None = None,
    lossless_method: str = "auto",
) -> list[tuple[bytes, ChunkReport]]:
    """Compress every chunk of ``data`` via shape-grouped stacked kernels.

    Returns ``(packed_stream, report)`` pairs in chunk order, each
    byte-identical to the serial ``_compress_chunk_job`` output.
    """
    if isinstance(mode, PsnrMode):
        raise InvalidArgumentError("PSNR mode is not batchable; use the serial path")
    data = np.asarray(data, dtype=np.float64)
    results: list[tuple[bytes, ChunkReport] | None] = [None] * len(chunks)
    for shape, indices in group_by_shape(chunks):
        if len(indices) == 1:
            # Singleton groups gain nothing from stacking; run the serial
            # reference path (including its chunk.compress span).
            from .container import _compress_chunk_job

            i = indices[0]
            part = np.ascontiguousarray(data[chunks[i].slices()])
            results[i] = _compress_chunk_job(
                part, mode, wavelet, levels, lossless_method
            )
            continue
        stack = np.stack(
            [np.ascontiguousarray(data[chunks[i].slices()]) for i in indices]
        )
        for i, item in zip(indices, _compress_group(
            stack, mode, wavelet, levels, lossless_method
        )):
            results[i] = item
    return results  # type: ignore[return-value]


def _compress_group(
    stack: np.ndarray,
    mode: PweMode | SizeMode,
    wavelet: str,
    levels: int | None,
    lossless_method: str,
) -> list[tuple[bytes, ChunkReport]]:
    """Run one same-shaped group through the stacked stages."""
    n_lanes = stack.shape[0]
    shape = stack.shape[1:]
    if len(shape) < 1 or len(shape) > 3:
        raise InvalidArgumentError("chunks must be 1-D, 2-D, or 3-D")
    if not np.all(np.isfinite(stack)):
        raise InvalidArgumentError("input contains NaN or Inf")
    plan = wavelet_plan(shape, wavelet=wavelet, levels=levels)
    chunk_size = int(np.prod(shape))

    t0 = time.perf_counter()
    with span("wavelet.forward", wavelet=wavelet, lanes=n_lanes):
        coeffs = forward_batch(stack, plan)
    t1 = time.perf_counter()

    if isinstance(mode, PweMode):
        q = mode.q
        tolerance = mode.tolerance
        max_bits = None
    else:
        max_abs = np.abs(coeffs).reshape(n_lanes, -1).max(axis=1)
        q = np.where(max_abs > 0, max_abs / float(2**SIZE_MODE_PLANES), 1.0)
        tolerance = 0.0
        overhead_bits = 8 * (HEADER_SIZE + ChunkParams.SIZE)
        max_bits = max(64, int(mode.bpp * chunk_size) - overhead_bits)

    encoded, coeff_recon = encode_coefficients_batch(coeffs, q, max_bits=max_bits)
    t2 = time.perf_counter()

    outlier_sections = [(b"", 0, 0)] * n_lanes  # (stream, nbits, n_outliers)
    t3 = t2
    t4 = t2
    if isinstance(mode, PweMode):
        with span("wavelet.inverse", wavelet=wavelet, lanes=n_lanes):
            recon = inverse_batch(coeff_recon, plan)
        outlier_sections, t3 = _locate_and_code_outliers(
            stack, recon, tolerance, n_lanes, chunk_size
        )
        t4 = time.perf_counter()

    per_lane = max(1, n_lanes)
    timings = {
        "transform": (t1 - t0) / per_lane,
        "speck": (t2 - t1) / per_lane,
        "locate": (t3 - t2) / per_lane,
        "outlier_code": (t4 - t3) / per_lane,
    }

    out: list[tuple[bytes, ChunkReport]] = []
    for lane in range(n_lanes):
        speck_stream, speck_nbits, stats = encoded[lane]
        outlier_stream, outlier_nbits, n_outliers = outlier_sections[lane]
        q_lane = float(q) if np.isscalar(q) or np.ndim(q) == 0 else float(q[lane])
        header = ChunkHeader(
            shape=_shape3(shape),
            speck_nbytes=len(speck_stream),
            is_double=True,
            pwe_mode=isinstance(mode, PweMode),
            has_outliers=n_outliers > 0,
        )
        params = ChunkParams(
            q=q_lane,
            tolerance=tolerance,
            speck_nbits=speck_nbits,
            outlier_nbits=outlier_nbits,
            outlier_nbytes=len(outlier_stream),
            wavelet=wavelet,
            levels=levels,
        )
        stream = header.pack() + params.pack() + speck_stream + outlier_stream
        add_counter("speck.bits", speck_nbits)
        add_counter("outlier.bits", outlier_nbits)
        add_counter("outlier.count", n_outliers)
        add_counter("chunk.bytes", len(stream))
        packed = lossless.compress(stream, method=lossless_method)
        report = ChunkReport(
            shape=shape,
            q=q_lane,
            tolerance=tolerance,
            speck_nbits=speck_nbits,
            outlier_nbits=outlier_nbits,
            n_outliers=n_outliers,
            total_nbytes=len(packed),
            timings=dict(timings),
            speck_stats=stats,
        )
        out.append((packed, report))
    return out


def _locate_and_code_outliers(
    stack: np.ndarray,
    recon: np.ndarray,
    tolerance: float,
    n_lanes: int,
    chunk_size: int,
) -> tuple[list[tuple[bytes, int, int]], float]:
    """Batched outlier location and coding for one PWE-mode group.

    The error/threshold comparison runs on the whole stack at once;
    ``np.nonzero`` walks the mask in C order, so each lane's positions
    come out ascending exactly as the serial ``np.flatnonzero`` would.
    Only the sparse corrections are quantized (elementwise, identical to
    the serial coder) and only lanes that *have* outliers are SPECK-coded
    — the serial path emits no outlier section when a chunk has none.
    """
    from ..quant import integerize
    from ..speck import encode_batch

    with span("outlier.locate", tolerance=tolerance, lanes=n_lanes) as sp:
        err = stack.reshape(n_lanes, -1) - recon.reshape(n_lanes, -1)
        mask = np.abs(err) > tolerance
        rows, cols = np.nonzero(mask)
        counts = np.bincount(rows, minlength=n_lanes)
        sp.set(n_outliers=int(rows.size))
    t3 = time.perf_counter()

    sections: list[tuple[bytes, int, int]] = [(b"", 0, 0)] * n_lanes
    coded_lanes = np.nonzero(counts)[0]
    if coded_lanes.size:
        with span("outlier.encode", n_outliers=int(rows.size), lanes=len(coded_lanes)):
            mags, negative = integerize(err[rows, cols], tolerance)
            lane_row = np.full(n_lanes, -1, dtype=np.int64)
            lane_row[coded_lanes] = np.arange(coded_lanes.size)
            dense_mags = np.zeros((coded_lanes.size, chunk_size), dtype=np.uint64)
            dense_neg = np.zeros((coded_lanes.size, chunk_size), dtype=bool)
            dense_mags[lane_row[rows], cols] = mags
            dense_neg[lane_row[rows], cols] = negative
            encoded = encode_batch(dense_mags, dense_neg)
        for j, lane in enumerate(coded_lanes):
            o_stream, o_nbits, _ = encoded[j]
            sections[lane] = (o_stream, o_nbits, int(counts[lane]))
    return sections, t3
