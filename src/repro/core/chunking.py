"""Volume chunking for embarrassingly parallel compression.

Paper Sec. III-D: a large volume is divided into smaller chunks, each
compressed independently; the per-chunk bitstreams are concatenated.  The
chunk dimension need not divide the volume dimension nor be a power of
two; SPERR's default chunk size is 256³ (we default lower because this
reproduction operates at laptop-scale volumes).

Like real SPERR, trailing remainders are merged into the preceding chunk
when they are small (under half a chunk), which avoids slivers whose
wavelet decomposition would be shallow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidArgumentError

__all__ = [
    "Chunk",
    "plan_chunks",
    "split",
    "assemble",
    "group_by_shape",
    "DEFAULT_CHUNK",
]

#: Default per-axis chunk extent.
DEFAULT_CHUNK = 64


@dataclass(frozen=True)
class Chunk:
    """One tile of the volume: per-axis ``(start, stop)`` slices."""

    bounds: tuple[tuple[int, int], ...]

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(b - a for a, b in self.bounds)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape))

    def slices(self) -> tuple[slice, ...]:
        """Index expression selecting this chunk from the full volume."""
        return tuple(slice(a, b) for a, b in self.bounds)


def _axis_cuts(n: int, c: int) -> list[tuple[int, int]]:
    """Cut one axis of length ``n`` into runs of roughly ``c``.

    Remainders shorter than ``c // 2`` are merged into the final run.
    """
    if c <= 0:
        raise InvalidArgumentError("chunk extent must be positive")
    if n <= 0:
        raise InvalidArgumentError("axis length must be positive")
    cuts = list(range(0, n, c))
    bounds = [(s, min(s + c, n)) for s in cuts]
    if len(bounds) > 1 and (bounds[-1][1] - bounds[-1][0]) < max(1, c // 2):
        last = bounds.pop()
        prev = bounds.pop()
        bounds.append((prev[0], last[1]))
    return bounds


def plan_chunks(
    shape: tuple[int, ...], chunk_shape: int | tuple[int, ...] | None
) -> list[Chunk]:
    """Plan the chunk grid; ``None`` keeps the volume as one chunk."""
    if chunk_shape is None:
        return [Chunk(bounds=tuple((0, n) for n in shape))]
    if np.isscalar(chunk_shape):
        chunk_shape = tuple(int(chunk_shape) for _ in shape)
    if len(chunk_shape) != len(shape):
        raise InvalidArgumentError(
            f"chunk shape {chunk_shape} does not match volume rank {len(shape)}"
        )
    per_axis = [_axis_cuts(n, c) for n, c in zip(shape, chunk_shape)]
    chunks: list[Chunk] = []
    # C-order nesting keeps chunk order deterministic and cache-friendly.
    def rec(axis: int, acc: list[tuple[int, int]]) -> None:
        if axis == len(per_axis):
            chunks.append(Chunk(bounds=tuple(acc)))
            return
        for b in per_axis[axis]:
            rec(axis + 1, acc + [b])

    rec(0, [])
    return chunks


def group_by_shape(chunks: list[Chunk]) -> list[tuple[tuple[int, ...], list[int]]]:
    """Group chunk indices by chunk shape, first-seen shape order.

    The batched execution mode stacks every group of same-shaped chunks
    into one ``(n, *shape)`` array; interior chunks of a tiled volume all
    share a shape, so one volume typically produces one large group plus
    a few small edge-remainder groups.
    """
    groups: dict[tuple[int, ...], list[int]] = {}
    for i, chunk in enumerate(chunks):
        groups.setdefault(chunk.shape, []).append(i)
    return list(groups.items())


def split(data: np.ndarray, chunks: list[Chunk]) -> list[np.ndarray]:
    """Extract chunk arrays (contiguous copies, ready for the pipeline)."""
    return [np.ascontiguousarray(data[c.slices()]) for c in chunks]


def assemble(
    shape: tuple[int, ...], chunks: list[Chunk], parts: list[np.ndarray]
) -> np.ndarray:
    """Stitch decompressed chunk arrays back into one volume."""
    if len(chunks) != len(parts):
        raise InvalidArgumentError("chunk plan and part count differ")
    out = np.empty(shape, dtype=np.float64)
    filled = 0
    for chunk, part in zip(chunks, parts):
        if tuple(part.shape) != chunk.shape:
            raise InvalidArgumentError(
                f"part shape {part.shape} does not match chunk {chunk.shape}"
            )
        out[chunk.slices()] = part
        filled += part.size
    if filled != out.size:
        raise InvalidArgumentError("chunk plan does not tile the volume")
    return out
