"""repro — a pure-Python reproduction of SPERR (IPDPS 2023).

SPERR is a lossy compressor for structured scientific data built on the
CDF 9/7 wavelet transform and the SPECK set-partitioning coder, extended
with an outlier-coding stage that guarantees a maximum point-wise error
(PWE).  This package reimplements the full system plus the baseline
compressors and evaluation harness of the paper.

Quickstart::

    import numpy as np
    import repro

    data = np.random.default_rng(0).standard_normal((64, 64, 64))
    tol = repro.tolerance_from_idx(data, idx=20)       # Range / 2**20
    result = repro.compress(data, repro.PweMode(tol))
    recon = repro.decompress(result.payload)
    assert np.abs(recon - data).max() <= tol           # the PWE guarantee
"""

from .core import (
    CODEC_POLICIES,
    CompressionResult,
    DecodeReport,
    DecodeResult,
    DegradationNote,
    PsnrMode,
    PweMode,
    SizeMode,
    compress,
    data_range,
    decompress,
    tolerance_from_idx,
)
from .errors import (
    AllocationLimitError,
    BudgetError,
    IntegrityError,
    InvalidArgumentError,
    ReproError,
    StreamFormatError,
    UnsupportedModeError,
)

__version__ = "1.0.0"

__all__ = [
    "CODEC_POLICIES",
    "CompressionResult",
    "DecodeReport",
    "DecodeResult",
    "DegradationNote",
    "PweMode",
    "PsnrMode",
    "SizeMode",
    "compress",
    "decompress",
    "data_range",
    "tolerance_from_idx",
    "ReproError",
    "InvalidArgumentError",
    "StreamFormatError",
    "IntegrityError",
    "AllocationLimitError",
    "BudgetError",
    "UnsupportedModeError",
    "__version__",
]
