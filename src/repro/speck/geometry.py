"""Set-partitioning geometry and max-magnitude pyramids for SPECK.

SPECK "zooms in" from the full volume to individual significant
coefficients by recursive spatial division — octrees for 3-D, quadtrees
for 2-D, binary splits for 1-D (the outlier coder).  To vectorize the
significance tests we:

* pad each axis to the next power of two (padding magnitudes are zero and
  can never test significant, so the decoder stays in lock-step),
* precompute, for every partition depth ``d``, the maximum magnitude of
  every block at that depth (:class:`MaxPyramid`), turning a set
  significance test into a single gather, and
* represent the lists of insignificant sets as flat-index arrays per
  depth so whole batches are tested/split with numpy arithmetic.

At depth ``d`` a block spans ``2**max(e_ax - d, 0)`` cells along the axis
whose padded extent is ``2**e_ax``; every axis longer than one cell is
halved at each split (the canonical SPECK octree/quadtree division).
"""

from __future__ import annotations

import threading

import numpy as np

from ..errors import InvalidArgumentError

__all__ = ["Geometry", "MaxPyramid"]


class Geometry:
    """Partition schedule for one (possibly non power-of-two) shape."""

    def __init__(self, shape: tuple[int, ...]) -> None:
        if len(shape) < 1 or len(shape) > 3:
            raise InvalidArgumentError("SPECK supports 1-D, 2-D, and 3-D arrays")
        if any(n < 1 for n in shape):
            raise InvalidArgumentError(f"invalid shape {shape}")
        self.shape = tuple(int(n) for n in shape)
        self.ndim = len(shape)
        #: per-axis exponent of the padded extent
        self.exponents = tuple(int(np.ceil(np.log2(n))) if n > 1 else 0 for n in self.shape)
        self.padded_shape = tuple(1 << e for e in self.exponents)
        #: depth at which blocks shrink to single cells
        self.max_depth = max(self.exponents)

        # Grid shape (number of blocks per axis) at each depth.
        self.grids: list[tuple[int, ...]] = [
            tuple(1 << min(d, e) for e in self.exponents)
            for d in range(self.max_depth + 1)
        ]
        # Which axes split when going from depth d to d+1, and the
        # corresponding child coordinate offsets in deterministic
        # (lexicographic) order.
        self._splits: list[tuple[bool, ...]] = []
        self._offsets: list[np.ndarray] = []
        for d in range(self.max_depth):
            split = tuple(e > d for e in self.exponents)
            self._splits.append(split)
            ranges = [np.arange(2) if s else np.arange(1) for s in split]
            mesh = np.meshgrid(*ranges, indexing="ij")
            offs = np.stack([m.ravel() for m in mesh], axis=-1)
            self._offsets.append(offs.astype(np.int64))
        # Partition tables: per-depth (n_blocks, n_children) child-index
        # arrays, built lazily on first use.  A geometry instance is shared
        # across chunks via the plan cache, so each table amortizes over
        # every same-shaped chunk; the lock keeps the lazy build safe under
        # the thread executor.
        self._child_tables: list[np.ndarray | None] = [None] * self.max_depth
        self._table_lock = threading.Lock()

    def child_table(self, depth: int) -> np.ndarray:
        """Full child-index table for ``depth``: row ``i`` lists the
        (depth+1)-grid flat indices of block ``i``'s children in the
        deterministic lexicographic order."""
        table = self._child_tables[depth]
        if table is None:
            with self._table_lock:
                table = self._child_tables[depth]
                if table is None:
                    table = self._build_child_table(depth)
                    self._child_tables[depth] = table
        return table

    def _build_child_table(self, depth: int) -> np.ndarray:
        grid = self.grids[depth]
        grid2 = self.grids[depth + 1]
        split = self._splits[depth]
        offs = self._offsets[depth]  # (nchildren, ndim)
        parents = np.arange(int(np.prod(grid)), dtype=np.int64)
        coords = np.unravel_index(parents, grid)
        child_coords = []
        for ax in range(self.ndim):
            base = coords[ax][:, None] * (2 if split[ax] else 1)
            child_coords.append(base + offs[None, :, ax])
        flat = np.ravel_multi_index(tuple(c.ravel() for c in child_coords), grid2)
        table = flat.astype(np.int64).reshape(parents.size, offs.shape[0])
        table.setflags(write=False)
        return table

    def children(self, depth: int, flat_idx: np.ndarray) -> np.ndarray:
        """Flat indices (depth+1 grid) of all children of the given blocks.

        Children of one parent are contiguous in the output, parents keep
        their input order — the deterministic traversal order both the
        encoder and the decoder rely on.  The lookup is a single gather
        into the precomputed per-depth partition table.
        """
        return self.child_table(depth)[flat_idx].reshape(-1)

    def pixel_flat_to_array_flat(self, flat_idx: np.ndarray) -> np.ndarray:
        """Map padded-space pixel indices to flat indices in the original
        (unpadded) array.  Indices that fall in the padding map to -1."""
        coords = np.unravel_index(flat_idx, self.padded_shape)
        valid = np.ones(flat_idx.shape, dtype=bool)
        for ax, n in enumerate(self.shape):
            valid &= coords[ax] < n
        out = np.full(flat_idx.shape, -1, dtype=np.int64)
        if valid.any():
            clipped = tuple(c[valid] for c in coords)
            out[valid] = np.ravel_multi_index(clipped, self.shape)
        return out


class MaxPyramid:
    """Per-depth maxima of integer magnitudes over every SPECK block."""

    def __init__(self, geometry: Geometry, mags: np.ndarray) -> None:
        mags = np.asarray(mags, dtype=np.uint64)
        if mags.shape != geometry.shape:
            raise InvalidArgumentError(
                f"magnitude shape {mags.shape} does not match geometry {geometry.shape}"
            )
        self.geometry = geometry
        padded = np.zeros(geometry.padded_shape, dtype=np.uint64)
        padded[tuple(slice(0, n) for n in geometry.shape)] = mags

        levels: list[np.ndarray] = [None] * (geometry.max_depth + 1)  # type: ignore[list-item]
        levels[geometry.max_depth] = padded
        cur = padded
        for d in range(geometry.max_depth - 1, -1, -1):
            split = geometry._splits[d]
            for ax in range(geometry.ndim):
                if split[ax]:
                    shape = list(cur.shape)
                    shape[ax] //= 2
                    shape.insert(ax + 1, 2)
                    cur = cur.reshape(shape).max(axis=ax + 1)
            levels[d] = cur
        #: flattened max array per depth, indexed by grid flat index
        self.levels: list[np.ndarray] = [lvl.reshape(-1) for lvl in levels]

    def block_max(self, depth: int, flat_idx: np.ndarray) -> np.ndarray:
        """Maximum magnitude within each queried block (vectorized gather)."""
        return self.levels[depth][flat_idx]

    @property
    def global_max(self) -> int:
        return int(self.levels[0][0]) if self.levels[0].size == 1 else int(self.levels[0].max())
