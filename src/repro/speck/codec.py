"""Batched SPECK encoder / decoder.

This implements the improved SPECK of the paper (Sec. III-B/III-C):
bitplane-by-bitplane set-partitioning coding of quantized wavelet
coefficients, generalized to arbitrary quantization steps ``q`` by running
the integer machinery on pre-scaled magnitudes ``m = floor(|c| / q)``.

Faithfulness and the one deliberate deviation
---------------------------------------------
Canonical SPECK interleaves significance, sign, and refinement bits one at
a time while walking the recursion.  A pure-Python per-bit walk is three
orders of magnitude too slow, so this implementation processes each batch
of same-depth sets *together*: one vectorized significance gather emits
(or consumes) the whole batch's bits consecutively, then sign bits for the
batch's newly significant pixels, then recursion into the concatenated
children of the batch's significant sets.  Both sides replay the identical
deterministic traversal, so the stream stays prefix-decodable; truncating
it anywhere still yields a valid (less accurate) reconstruction — the
*embedded* property the paper's future-work section highlights.  Rate
behaviour is that of SPECK; only the intra-bitplane bit order differs.

Stream layout: ``[nmax+1 as 8 bits][pass for n=nmax][pass for nmax-1]...``
where each pass is a sorting pass followed by a refinement pass
(Listings 1–3 structure, shared with the outlier coder).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..bitstream import BitReader, BitWriter
from ..errors import InvalidArgumentError
from .geometry import Geometry, MaxPyramid

__all__ = ["SpeckEncoder", "SpeckDecoder", "SpeckStats", "encode", "decode"]


def _shared_geometry(shape: tuple[int, ...]) -> Geometry:
    """Geometry for ``shape`` from the plan cache (shared across chunks).

    Imported lazily to keep the package import graph acyclic.
    """
    from ..core.plans import speck_geometry

    return speck_geometry(shape)


@dataclass
class SpeckStats:
    """Per-bitplane bit accounting (used by the evaluation benches)."""

    planes: list[int] = field(default_factory=list)
    sorting_bits: list[int] = field(default_factory=list)
    sign_bits: list[int] = field(default_factory=list)
    refinement_bits: list[int] = field(default_factory=list)

    def total_bits(self) -> int:
        """All pass bits across every plane (excludes the 8-bit header)."""
        return sum(self.sorting_bits) + sum(self.sign_bits) + sum(self.refinement_bits)


class _Lists:
    """LIS (per-depth) and LSP state shared by encoder and decoder."""

    def __init__(self, geometry: Geometry) -> None:
        self.geometry = geometry
        d = geometry.max_depth
        # LIS: per-depth list of index-array chunks (consolidated lazily).
        self.lis: list[list[np.ndarray]] = [[] for _ in range(d + 1)]
        self.lis[0].append(np.zeros(1, dtype=np.int64))
        # LSP: pixels found significant, in discovery order.
        self.lsp_idx: list[np.ndarray] = []
        self.n_lsp_old = 0  # entries that predate the current pass

    def lis_batch(self, depth: int) -> np.ndarray:
        chunks = self.lis[depth]
        if not chunks:
            return np.zeros(0, dtype=np.int64)
        batch = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        return batch

    def lsp_count(self) -> int:
        return sum(c.size for c in self.lsp_idx)


class SpeckEncoder:
    """Encode integer magnitudes + signs into a SPECK bitstream."""

    def __init__(self, mags: np.ndarray, negative: np.ndarray) -> None:
        mags = np.asarray(mags, dtype=np.uint64)
        self.geometry = _shared_geometry(mags.shape)
        self.pyramid = MaxPyramid(self.geometry, mags)
        padded = np.zeros(self.geometry.padded_shape, dtype=np.uint64)
        padded[tuple(slice(0, n) for n in mags.shape)] = mags
        self._mags_flat = padded.reshape(-1)
        neg = np.zeros(self.geometry.padded_shape, dtype=bool)
        neg[tuple(slice(0, n) for n in mags.shape)] = np.asarray(negative, dtype=bool)
        self._neg_flat = neg.reshape(-1)
        self.stats = SpeckStats()

    def encode(self, max_bits: int | None = None) -> tuple[bytes, int]:
        """Produce the bitstream; returns ``(packed_bytes, nbits)``.

        ``max_bits`` enables size-bounded termination: encoding stops once
        the budget is reached and the stream is truncated to exactly the
        budget (any prefix of a SPECK stream is decodable).
        """
        writer = BitWriter()
        gmax = self.pyramid.global_max
        nmax = gmax.bit_length() - 1 if gmax > 0 else -1
        writer.write_uint(nmax + 1, 8)
        lists = _Lists(self.geometry)
        budget_hit = False
        for n in range(nmax, -1, -1):
            s0 = writer.nbits
            self._sorting_pass(writer, lists, n)
            s1 = writer.nbits
            self._refinement_pass(writer, lists, n)
            s2 = writer.nbits
            self.stats.planes.append(n)
            self.stats.refinement_bits.append(s2 - s1)
            if max_bits is not None and writer.nbits >= max_bits:
                budget_hit = True
                break
        nbits = writer.nbits if not budget_hit else min(writer.nbits, max_bits)
        return writer.getvalue(max_bits=max_bits), nbits

    # -- passes ---------------------------------------------------------

    def _sorting_pass(self, writer: BitWriter, lists: _Lists, n: int) -> None:
        threshold = np.uint64(1) << np.uint64(n)
        geometry = lists.geometry
        new_lis: list[list[np.ndarray]] = [[] for _ in range(geometry.max_depth + 1)]
        sort_bits = 0
        sign_bits = 0
        new_lsp: list[np.ndarray] = []

        def process(depth: int, idx: np.ndarray) -> None:
            nonlocal sort_bits, sign_bits
            if idx.size == 0:
                return
            sig = self.pyramid.block_max(depth, idx) >= threshold
            writer.write_bits(sig)
            sort_bits += idx.size
            insig = idx[~sig]
            if insig.size:
                new_lis[depth].append(insig)
            sig_idx = idx[sig]
            if sig_idx.size == 0:
                return
            if depth == geometry.max_depth:
                writer.write_bits(self._neg_flat[sig_idx])
                sign_bits += sig_idx.size
                new_lsp.append(sig_idx)
            else:
                process(depth + 1, geometry.children(depth, sig_idx))

        # Smallest sets first (paper: "in increasing order of their sizes").
        for depth in range(geometry.max_depth, -1, -1):
            process(depth, lists.lis_batch(depth))

        lists.lis = new_lis
        lists.n_lsp_old = lists.lsp_count()
        lists.lsp_idx.extend(new_lsp)
        self.stats.sorting_bits.append(sort_bits)
        self.stats.sign_bits.append(sign_bits)

    def _refinement_pass(self, writer: BitWriter, lists: _Lists, n: int) -> None:
        if lists.lsp_idx:
            # Consolidate so repeated passes stay cheap.
            lists.lsp_idx = [np.concatenate(lists.lsp_idx)]
        if lists.n_lsp_old == 0:
            return
        old = lists.lsp_idx[0][: lists.n_lsp_old]
        bit = (self._mags_flat[old] & (np.uint64(1) << np.uint64(n))) != 0
        writer.write_bits(bit)


class SpeckDecoder:
    """Decode a SPECK bitstream back to magnitudes and signs.

    Decoding tolerates truncated streams (embedded property): whatever
    bits are present refine the reconstruction; missing bits leave the
    remaining state untouched.
    """

    def __init__(self, shape: tuple[int, ...]) -> None:
        self.geometry = _shared_geometry(shape)

    def decode(self, data: bytes, nbits: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Returns ``(approx_mags, negative)`` in the original shape.

        ``approx_mags`` is a float64 array of reconstructed scaled
        magnitudes, already centered in their uncertainty intervals
        (i.e. multiply by ``q`` to obtain coefficient values).
        """
        reader = BitReader(data, nbits=nbits)
        geometry = self.geometry
        npix = int(np.prod(geometry.padded_shape))

        header = reader.read_bits(8)
        if header.size < 8:
            raise InvalidArgumentError("SPECK stream shorter than its header")
        nmax = int(np.packbits(header)[0]) - 1
        rec = np.zeros(npix, dtype=np.float64)
        neg = np.zeros(npix, dtype=bool)
        if nmax < 0:
            return self._crop(rec, neg)

        lists = _Lists(geometry)
        rec_mag = np.zeros(npix, dtype=np.uint64)
        last_plane = np.zeros(npix, dtype=np.int64)

        exhausted = False
        for n in range(nmax, -1, -1):
            exhausted = self._sorting_pass(reader, lists, n, rec_mag, last_plane, neg)
            if exhausted:
                break
            exhausted = self._refinement_pass(reader, lists, n, rec_mag, last_plane)
            if exhausted:
                break

        coded = rec_mag > 0
        rec[coded] = rec_mag[coded].astype(np.float64) + 0.5 * np.exp2(
            last_plane[coded].astype(np.float64)
        )
        return self._crop(rec, neg)

    def _crop(self, rec: np.ndarray, neg: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        shape = self.geometry.shape
        rec = rec.reshape(self.geometry.padded_shape)[
            tuple(slice(0, n) for n in shape)
        ]
        neg = neg.reshape(self.geometry.padded_shape)[
            tuple(slice(0, n) for n in shape)
        ]
        return rec, neg

    def _sorting_pass(
        self,
        reader: BitReader,
        lists: _Lists,
        n: int,
        rec_mag: np.ndarray,
        last_plane: np.ndarray,
        neg: np.ndarray,
    ) -> bool:
        geometry = lists.geometry
        new_lis: list[list[np.ndarray]] = [[] for _ in range(geometry.max_depth + 1)]
        new_lsp: list[np.ndarray] = []
        exhausted = False

        def process(depth: int, idx: np.ndarray) -> None:
            nonlocal exhausted
            if idx.size == 0:
                return
            sig = reader.read_bits(idx.size)
            if sig.size < idx.size:
                exhausted = True
                idx = idx[: sig.size]
                if idx.size == 0:
                    return
            insig = idx[~sig]
            if insig.size:
                new_lis[depth].append(insig)
            sig_idx = idx[sig]
            if sig_idx.size == 0:
                return
            if depth == geometry.max_depth:
                signs = reader.read_bits(sig_idx.size)
                if signs.size < sig_idx.size:
                    exhausted = True
                    sig_idx = sig_idx[: signs.size]
                    if sig_idx.size == 0:
                        return
                neg[sig_idx] = signs
                rec_mag[sig_idx] = np.uint64(1) << np.uint64(n)
                last_plane[sig_idx] = n
                new_lsp.append(sig_idx)
            else:
                process(depth + 1, geometry.children(depth, sig_idx))

        for depth in range(geometry.max_depth, -1, -1):
            if exhausted:
                break
            process(depth, lists.lis_batch(depth))

        lists.lis = new_lis
        lists.n_lsp_old = lists.lsp_count()
        lists.lsp_idx.extend(new_lsp)
        return exhausted

    def _refinement_pass(
        self,
        reader: BitReader,
        lists: _Lists,
        n: int,
        rec_mag: np.ndarray,
        last_plane: np.ndarray,
    ) -> bool:
        if lists.lsp_idx:
            lists.lsp_idx = [np.concatenate(lists.lsp_idx)]
        if lists.n_lsp_old == 0:
            return False
        old = lists.lsp_idx[0][: lists.n_lsp_old]
        bits = reader.read_bits(lists.n_lsp_old)
        refined = old[: bits.size]
        ones = refined[bits]
        rec_mag[ones] |= np.uint64(1) << np.uint64(n)
        last_plane[refined] = n
        return bits.size < lists.n_lsp_old


def encode(
    mags: np.ndarray,
    negative: np.ndarray,
    max_bits: int | None = None,
) -> tuple[bytes, int, SpeckStats]:
    """One-shot SPECK encode; see :class:`SpeckEncoder`."""
    enc = SpeckEncoder(mags, negative)
    data, nbits = enc.encode(max_bits=max_bits)
    return data, nbits, enc.stats


def decode(
    data: bytes, shape: tuple[int, ...], nbits: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """One-shot SPECK decode; see :class:`SpeckDecoder`."""
    return SpeckDecoder(shape).decode(data, nbits=nbits)
