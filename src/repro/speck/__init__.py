"""SPECK set-partitioning bitplane coder (the paper's Sec. III).

High-level entry points operate on real-valued coefficient arrays with an
arbitrary quantization step ``q``; the integer machinery lives in
:mod:`repro.speck.codec`.
"""

from __future__ import annotations

import numpy as np

from ..obs import span
from ..quant import dequantize, dequantize_batch, integerize, integerize_batch
from .batched import BatchedSpeckEncoder, encode_batch
from .codec import SpeckDecoder, SpeckEncoder, SpeckStats, decode, encode
from .geometry import Geometry, MaxPyramid

__all__ = [
    "SpeckEncoder",
    "SpeckDecoder",
    "SpeckStats",
    "BatchedSpeckEncoder",
    "Geometry",
    "MaxPyramid",
    "encode",
    "encode_batch",
    "decode",
    "encode_coefficients",
    "encode_coefficients_batch",
    "decode_coefficients",
]


def encode_coefficients(
    coeffs: np.ndarray, q: float, max_bits: int | None = None
) -> tuple[bytes, int, SpeckStats, np.ndarray]:
    """SPECK-encode real coefficients with quantization step ``q``.

    Returns ``(stream, nbits, stats, encoder_reconstruction)`` where the
    reconstruction is the coefficient array a decoder would produce from
    the *full* stream — used by the SPERR pipeline to locate outliers
    without running the decoder (Sec. V-C step 3 still performs the
    inverse transform).
    """
    with span("speck.encode", q=q) as sp:
        mags, negative = integerize(coeffs, q)
        stream, nbits, stats = encode(mags, negative, max_bits=max_bits)
        recon = dequantize(mags, negative, q)
        sp.set(nbits=nbits)
    return stream, nbits, stats, recon


def encode_coefficients_batch(
    coeffs: np.ndarray, q, max_bits=None
) -> tuple[list[tuple[bytes, int, SpeckStats]], np.ndarray]:
    """Stacked-lane :func:`encode_coefficients` for ``(lanes, *shape)``.

    ``q`` and ``max_bits`` are scalars or per-lane arrays.  Returns
    ``(per_lane_results, reconstruction_stack)`` where lane ``l`` of both
    is bit-identical to ``encode_coefficients(coeffs[l], q[l],
    max_bits[l])``.
    """
    with span("speck.encode", lanes=len(coeffs)) as sp:
        mags, negative = integerize_batch(coeffs, q)
        encoded = encode_batch(mags, negative, max_bits=max_bits)
        recon = dequantize_batch(mags, negative, q)
        sp.set(nbits=sum(nbits for _, nbits, _ in encoded))
    return encoded, recon


def decode_coefficients(
    data: bytes, shape: tuple[int, ...], q: float, nbits: int | None = None
) -> np.ndarray:
    """Decode a SPECK stream back to real coefficient values."""
    with span("speck.decode", q=q):
        rec_mags, negative = decode(data, shape, nbits=nbits)
        out = rec_mags * q
        out[negative] *= -1.0
    return out
