"""SPECK set-partitioning bitplane coder (the paper's Sec. III).

High-level entry points operate on real-valued coefficient arrays with an
arbitrary quantization step ``q``; the integer machinery lives in
:mod:`repro.speck.codec`.
"""

from __future__ import annotations

import numpy as np

from ..obs import span
from ..quant import dequantize, integerize
from .codec import SpeckDecoder, SpeckEncoder, SpeckStats, decode, encode
from .geometry import Geometry, MaxPyramid

__all__ = [
    "SpeckEncoder",
    "SpeckDecoder",
    "SpeckStats",
    "Geometry",
    "MaxPyramid",
    "encode",
    "decode",
    "encode_coefficients",
    "decode_coefficients",
]


def encode_coefficients(
    coeffs: np.ndarray, q: float, max_bits: int | None = None
) -> tuple[bytes, int, SpeckStats, np.ndarray]:
    """SPECK-encode real coefficients with quantization step ``q``.

    Returns ``(stream, nbits, stats, encoder_reconstruction)`` where the
    reconstruction is the coefficient array a decoder would produce from
    the *full* stream — used by the SPERR pipeline to locate outliers
    without running the decoder (Sec. V-C step 3 still performs the
    inverse transform).
    """
    with span("speck.encode", q=q) as sp:
        mags, negative = integerize(coeffs, q)
        stream, nbits, stats = encode(mags, negative, max_bits=max_bits)
        recon = dequantize(mags, negative, q)
        sp.set(nbits=nbits)
    return stream, nbits, stats, recon


def decode_coefficients(
    data: bytes, shape: tuple[int, ...], q: float, nbits: int | None = None
) -> np.ndarray:
    """Decode a SPECK stream back to real coefficient values."""
    with span("speck.decode", q=q):
        rec_mags, negative = decode(data, shape, nbits=nbits)
        out = rec_mags * q
        out[negative] *= -1.0
    return out
