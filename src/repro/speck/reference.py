"""Reference (canonical) SPECK: bit-at-a-time, textbook ordering.

This is a deliberately slow, obviously-correct implementation of the
SPECK algorithm exactly as Listings 1-3 and the classic papers describe
it: sets are processed one at a time in increasing size order, newly
split children are examined immediately (depth-first), a pixel's sign
bit directly follows its significance bit, and refinement bits are
emitted per pixel.

Its purpose is verification of the production codec in
:mod:`repro.speck.codec`, which batches each depth level for numpy
vectorization.  Batching only *reorders* bits within a deterministic
window — it adds or removes none — so the two implementations must
produce streams of identical length and bit-identical full-stream
reconstructions.  ``tests/test_speck_reference.py`` and the
``bench_ablation_batched_vs_reference`` bench hold them to that.
"""

from __future__ import annotations

import numpy as np

from ..errors import StreamFormatError
from .geometry import Geometry, MaxPyramid

__all__ = ["reference_encode", "reference_decode"]


def reference_encode(mags: np.ndarray, negative: np.ndarray) -> tuple[bytes, int]:
    """Canonical SPECK encode; returns ``(packed_bytes, nbits)``."""
    mags = np.asarray(mags, dtype=np.uint64)
    geometry = Geometry(mags.shape)
    pyramid = MaxPyramid(geometry, mags)
    padded = np.zeros(geometry.padded_shape, dtype=np.uint64)
    padded[tuple(slice(0, n) for n in mags.shape)] = mags
    mflat = padded.reshape(-1)
    neg = np.zeros(geometry.padded_shape, dtype=bool)
    neg[tuple(slice(0, n) for n in mags.shape)] = np.asarray(negative, dtype=bool)
    nflat = neg.reshape(-1)

    bits: list[int] = []
    gmax = pyramid.global_max
    nmax = gmax.bit_length() - 1 if gmax > 0 else -1
    for k in range(7, -1, -1):
        bits.append(((nmax + 1) >> k) & 1)
    if nmax < 0:
        return np.packbits(np.asarray(bits, dtype=np.uint8)).tobytes(), len(bits)

    max_depth = geometry.max_depth
    lis: list[list[int]] = [[] for _ in range(max_depth + 1)]
    lis[0].append(0)
    lsp: list[int] = []

    for n in range(nmax, -1, -1):
        thr = 1 << n
        n_old = len(lsp)
        new_lis: list[list[int]] = [[] for _ in range(max_depth + 1)]

        def process(depth: int, idx: int) -> None:
            sig = int(pyramid.levels[depth][idx]) >= thr
            bits.append(int(sig))
            if not sig:
                new_lis[depth].append(idx)
                return
            if depth == max_depth:
                bits.append(int(nflat[idx]))
                lsp.append(idx)
                return
            for child in geometry.children(depth, np.asarray([idx], dtype=np.int64)):
                process(depth + 1, int(child))

        # increasing set size: smallest (deepest) first, as Listing 2 asks
        for depth in range(max_depth, -1, -1):
            for idx in lis[depth]:
                process(depth, idx)
        lis = new_lis

        for idx in lsp[:n_old]:
            bits.append(int((int(mflat[idx]) >> n) & 1))

    arr = np.asarray(bits, dtype=np.uint8)
    return np.packbits(arr).tobytes(), len(bits)


def reference_decode(
    data: bytes, shape: tuple[int, ...], nbits: int
) -> tuple[np.ndarray, np.ndarray]:
    """Canonical SPECK decode of a *complete* reference stream.

    Returns ``(approx_mags, negative)`` with the same mid-riser-centered
    semantics as :meth:`repro.speck.codec.SpeckDecoder.decode`.
    """
    geometry = Geometry(shape)
    stream = np.unpackbits(np.frombuffer(data, dtype=np.uint8))[:nbits]
    pos = 0

    def take() -> int:
        nonlocal pos
        if pos >= stream.size:
            raise StreamFormatError("reference stream exhausted")
        b = int(stream[pos])
        pos += 1
        return b

    nmax_plus1 = 0
    for _ in range(8):
        nmax_plus1 = (nmax_plus1 << 1) | take()
    nmax = nmax_plus1 - 1
    npix = int(np.prod(geometry.padded_shape))
    rec_mag = np.zeros(npix, dtype=np.uint64)
    last_plane = np.zeros(npix, dtype=np.int64)
    neg = np.zeros(npix, dtype=bool)
    if nmax < 0:
        return _finish(geometry, rec_mag, last_plane, neg)

    max_depth = geometry.max_depth
    lis: list[list[int]] = [[] for _ in range(max_depth + 1)]
    lis[0].append(0)
    lsp: list[int] = []

    for n in range(nmax, -1, -1):
        n_old = len(lsp)
        new_lis: list[list[int]] = [[] for _ in range(max_depth + 1)]

        def process(depth: int, idx: int) -> None:
            sig = take()
            if not sig:
                new_lis[depth].append(idx)
                return
            if depth == max_depth:
                neg[idx] = bool(take())
                rec_mag[idx] = np.uint64(1) << np.uint64(n)
                last_plane[idx] = n
                lsp.append(idx)
                return
            for child in geometry.children(depth, np.asarray([idx], dtype=np.int64)):
                process(depth + 1, int(child))

        for depth in range(max_depth, -1, -1):
            for idx in lis[depth]:
                process(depth, idx)
        lis = new_lis

        for idx in lsp[:n_old]:
            if take():
                rec_mag[idx] |= np.uint64(1) << np.uint64(n)
            last_plane[idx] = n

    return _finish(geometry, rec_mag, last_plane, neg)


def _finish(
    geometry: Geometry,
    rec_mag: np.ndarray,
    last_plane: np.ndarray,
    neg: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    rec = np.zeros(rec_mag.shape, dtype=np.float64)
    coded = rec_mag > 0
    rec[coded] = rec_mag[coded].astype(np.float64) + 0.5 * np.exp2(
        last_plane[coded].astype(np.float64)
    )
    crop = tuple(slice(0, n) for n in geometry.shape)
    return (
        rec.reshape(geometry.padded_shape)[crop],
        neg.reshape(geometry.padded_shape)[crop],
    )
