"""Stacked-lane SPECK encoding: many same-shaped chunks per pass.

The serial encoder in :mod:`repro.speck.codec` re-enters the interpreter
for every chunk at every bitplane; with dozens of chunks the Python
dispatch dominates.  This module runs ``L`` same-shaped lanes through the
set-partitioning machinery *together*: every lane's blocks live in one
combined index space ``gidx = slot * n_blocks(depth) + local`` and each
significance gather, sign emission, child split, and refinement lookup is
one numpy call over all lanes at once.

Byte-identity with the serial encoder
-------------------------------------
Each emission is recorded as ``(bits, lane_ids)`` parts instead of being
written to a single stream.  Within every combined operation the relative
order of one lane's entries is preserved (boolean masking keeps order,
``children`` expands parents in order with contiguous child runs, list
chunks are appended in the same structural order as the serial pass), so
a stable sort of all emitted bits by lane id reproduces, for every lane,
exactly the bit sequence the serial encoder would have written.

Per-lane divergence is handled by masked lanes:

* a lane whose ``nmax`` is below the current plane simply has no entries
  yet; its root joins the LIS when the global plane reaches its ``nmax``
  (which is when the serial encoder would emit its first sorting bit);
* a lane that exhausts its bit budget at the end of a plane — the serial
  criterion is checked after each refinement pass — has its LIS/LSP
  entries filtered out and stops contributing;
* when fewer than half of the allocated lane slots are still needed the
  stacked arrays are compacted (live rows copied, indices re-based), so
  late planes of a few straggler lanes do not pay for the whole batch.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidArgumentError
from .codec import SpeckStats, _shared_geometry

__all__ = ["BatchedSpeckEncoder", "encode_batch"]

#: Compact the stacked arrays when needed slots drop below this fraction.
_COMPACT_FRACTION = 0.5


def _lane_counts(chunks: list[np.ndarray], n_lanes: int) -> np.ndarray:
    """Per-lane element counts over a list of lane-id arrays."""
    if not chunks:
        return np.zeros(n_lanes, dtype=np.int64)
    lanes = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
    return np.bincount(lanes, minlength=n_lanes)


class BatchedSpeckEncoder:
    """Encode ``L`` stacked magnitude/sign lanes in lock-step.

    ``mags`` and ``negative`` have shape ``(L, *chunk_shape)``; lane ``l``
    is encoded exactly as ``SpeckEncoder(mags[l], negative[l])`` would.
    """

    def __init__(self, mags: np.ndarray, negative: np.ndarray) -> None:
        mags = np.asarray(mags, dtype=np.uint64)
        if mags.ndim < 2 or mags.ndim > 4:
            raise InvalidArgumentError(
                "batched SPECK expects (lanes, ...) stacks of 1-D/2-D/3-D chunks"
            )
        if mags.shape[0] < 1:
            raise InvalidArgumentError("batched SPECK needs at least one lane")
        negative = np.asarray(negative, dtype=bool)
        if negative.shape != mags.shape:
            raise InvalidArgumentError("magnitude and sign stacks differ in shape")
        self.n_lanes = int(mags.shape[0])
        shape = mags.shape[1:]
        self.geometry = _shared_geometry(shape)
        g = self.geometry
        L = self.n_lanes

        #: blocks per grid and its log2, per depth (padded grids are
        #: powers of two, so slot/local split is shift/mask arithmetic)
        self._nblocks = [int(np.prod(grid)) for grid in g.grids]
        self._shifts = [nb.bit_length() - 1 for nb in self._nblocks]
        self._masks = [nb - 1 for nb in self._nblocks]

        pad = np.zeros((L,) + g.padded_shape, dtype=np.uint64)
        pad[(slice(None),) + tuple(slice(0, n) for n in shape)] = mags
        neg = np.zeros((L,) + g.padded_shape, dtype=bool)
        neg[(slice(None),) + tuple(slice(0, n) for n in shape)] = negative

        # Stacked max pyramid: levels[d] is (L, n_blocks(d)); the same
        # reduction as geometry.MaxPyramid with a leading lane axis.
        levels: list[np.ndarray] = [np.zeros(0)] * (g.max_depth + 1)
        cur = pad
        levels[g.max_depth] = cur.reshape(L, -1)
        for d in range(g.max_depth - 1, -1, -1):
            split = g._splits[d]
            for ax in range(g.ndim):
                if split[ax]:
                    s = list(cur.shape)
                    s[ax + 1] //= 2
                    s.insert(ax + 2, 2)
                    cur = cur.reshape(s).max(axis=ax + 2)
            levels[d] = cur.reshape(L, -1)
        self._levels = levels
        self._mags2d = pad.reshape(L, -1)
        self._neg2d = neg.reshape(L, -1)

        #: current slot -> original lane id (identity until compaction)
        self._slot_orig = np.arange(L, dtype=np.int64)
        self._nmax = np.array(
            [int(v).bit_length() - 1 for v in levels[0][:, 0]], dtype=np.int64
        )
        # Lane ids are emitted once per output bit; a narrow dtype keeps
        # the demux argsort in numpy's radix path (O(n), one pass per
        # byte) instead of comparison sorting int64 keys.
        self._lane_dtype = np.uint8 if L <= 256 else np.uint16
        self._refresh_flat()

    def _refresh_flat(self) -> None:
        """Rebuild the flattened views/casts the hot loop indexes into."""
        self._flat_levels = [lv.reshape(-1) for lv in self._levels]
        self._flat_mags = self._mags2d.reshape(-1)
        self._flat_neg = self._neg2d.reshape(-1)
        self._slot_small = self._slot_orig.astype(self._lane_dtype)

    # -- combined index helpers -----------------------------------------

    def _lanes_of(self, depth: int, gidx: np.ndarray) -> np.ndarray:
        """Original lane ids of combined indices at ``depth``."""
        return self._slot_small[gidx >> self._shifts[depth]]

    def _children(self, depth: int, gidx: np.ndarray) -> np.ndarray:
        """Combined child indices; parents keep order, children contiguous."""
        slot = gidx >> self._shifts[depth]
        local = gidx & self._masks[depth]
        table = self.geometry.child_table(depth)
        child = (slot << self._shifts[depth + 1])[:, None] + table[local]
        return child.reshape(-1)

    # -- encoding --------------------------------------------------------

    def encode(
        self, max_bits: int | np.ndarray | None = None
    ) -> list[tuple[bytes, int, SpeckStats]]:
        """Encode every lane; returns per-lane ``(stream, nbits, stats)``.

        ``max_bits`` may be ``None`` (no budget), a scalar applied to all
        lanes, or a per-lane integer array.
        """
        L = self.n_lanes
        if max_bits is None:
            budgets = np.full(L, -1, dtype=np.int64)
        else:
            budgets = np.broadcast_to(
                np.asarray(max_bits, dtype=np.int64), (L,)
            ).copy()
            if np.any(budgets[budgets >= 0] < 1) or np.any(budgets == 0):
                raise InvalidArgumentError("max_bits must be positive")
        has_budget = budgets >= 0

        nmax_lane = np.zeros(L, dtype=np.int64)
        nmax_lane[self._slot_orig] = self._nmax
        alive = np.ones(L, dtype=bool)  # by original lane id
        budget_hit = np.zeros(L, dtype=bool)
        cum_bits = np.full(L, 8, dtype=np.int64)  # 8-bit header per lane

        bits_parts: list[np.ndarray] = []
        lane_parts: list[np.ndarray] = []
        plane_records: list[tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []

        max_depth = self.geometry.max_depth
        lis: list[list[np.ndarray]] = [[] for _ in range(max_depth + 1)]
        lsp: list[np.ndarray] = []
        n_lsp_old = 0

        n_top = int(self._nmax.max(initial=-1))
        for n in range(n_top, -1, -1):
            alive_slot = alive[self._slot_orig]
            # Lanes whose nmax equals this plane start now: their root
            # (depth-0 block, combined index == slot) enters the LIS.
            joining = np.nonzero(alive_slot & (self._nmax == n))[0]
            if joining.size:
                lis[0].append(joining.astype(np.int64))
            participating = np.zeros(L, dtype=bool)
            participating[self._slot_orig[alive_slot & (self._nmax >= n)]] = True

            # ---- sorting pass (mirrors codec.SpeckEncoder._sorting_pass)
            threshold = np.uint64(1) << np.uint64(n)
            new_lis: list[list[np.ndarray]] = [[] for _ in range(max_depth + 1)]
            new_lsp: list[np.ndarray] = []
            # Per-lane counts are only needed once per plane (budget check
            # + stats); collect the lane arrays and bincount them after
            # the recursion instead of on every emission.
            sort_lanes_acc: list[np.ndarray] = []
            sign_lanes_acc: list[np.ndarray] = []
            flat_levels = self._flat_levels
            flat_neg = self._flat_neg

            def process(depth: int, idx: np.ndarray) -> None:
                if idx.size == 0:
                    return
                sig = flat_levels[depth][idx] >= threshold
                lanes = self._lanes_of(depth, idx)
                bits_parts.append(sig)
                lane_parts.append(lanes)
                sort_lanes_acc.append(lanes)
                insig = idx[~sig]
                if insig.size:
                    new_lis[depth].append(insig)
                sig_idx = idx[sig]
                if sig_idx.size == 0:
                    return
                if depth == max_depth:
                    slanes = lanes[sig]
                    bits_parts.append(flat_neg[sig_idx])
                    lane_parts.append(slanes)
                    sign_lanes_acc.append(slanes)
                    new_lsp.append(sig_idx)
                else:
                    process(depth + 1, self._children(depth, sig_idx))

            for depth in range(max_depth, -1, -1):
                chunks = lis[depth]
                if not chunks:
                    continue
                batch = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
                process(depth, batch)
            lis = new_lis
            n_lsp_old = sum(c.size for c in lsp)
            lsp.extend(new_lsp)
            sort_c = _lane_counts(sort_lanes_acc, L)
            sign_c = _lane_counts(sign_lanes_acc, L)

            # ---- refinement pass (codec.SpeckEncoder._refinement_pass)
            ref_c = np.zeros(L, dtype=np.int64)
            if lsp:
                lsp = [lsp[0] if len(lsp) == 1 else np.concatenate(lsp)]
            if n_lsp_old:
                old = lsp[0][:n_lsp_old]
                bit = (
                    self._flat_mags[old] & (np.uint64(1) << np.uint64(n))
                ) != 0
                rlanes = self._lanes_of(max_depth, old)
                bits_parts.append(bit)
                lane_parts.append(rlanes)
                ref_c = np.bincount(rlanes, minlength=L)

            plane_records.append((n, sort_c, sign_c, ref_c, participating))
            cum_bits += sort_c + sign_c + ref_c

            # ---- budget check at plane end (serial: break when
            # writer.nbits >= max_bits after the refinement pass)
            newly_dead = (
                participating & has_budget & alive & (cum_bits >= budgets)
            )
            if newly_dead.any():
                budget_hit |= newly_dead
                alive &= ~newly_dead
                alive_slot = alive[self._slot_orig]
                self._filter_dead(lis, lsp, alive_slot)

            if n > 0:
                needed = alive[self._slot_orig] & (self._nmax >= 0)
                n_needed = int(np.count_nonzero(needed))
                if n_needed == 0:
                    break
                if n_needed < self._slot_orig.size * _COMPACT_FRACTION:
                    lis, lsp = self._compact(needed, lis, lsp)

        return self._demux(
            bits_parts, lane_parts, plane_records, nmax_lane, budgets,
            has_budget, budget_hit,
        )

    # -- lane lifecycle --------------------------------------------------

    def _filter_dead(
        self,
        lis: list[list[np.ndarray]],
        lsp: list[np.ndarray],
        alive_slot: np.ndarray,
    ) -> None:
        """Drop LIS/LSP entries of lanes that just exhausted their budget."""
        for depth in range(len(lis)):
            if lis[depth]:
                shift = self._shifts[depth]
                lis[depth] = [
                    kept
                    for c in lis[depth]
                    if (kept := c[alive_slot[c >> shift]]).size
                ]
        shift = self._shifts[self.geometry.max_depth]
        for i, c in enumerate(lsp):
            lsp[i] = c[alive_slot[c >> shift]]

    def _compact(
        self,
        needed: np.ndarray,
        lis: list[list[np.ndarray]],
        lsp: list[np.ndarray],
    ) -> tuple[list[list[np.ndarray]], list[np.ndarray]]:
        """Copy live rows into a narrower stack and re-base all indices."""
        keep = np.nonzero(needed)[0]
        perm = np.full(self._slot_orig.size, -1, dtype=np.int64)
        perm[keep] = np.arange(keep.size, dtype=np.int64)
        for d in range(len(self._levels)):
            self._levels[d] = np.ascontiguousarray(self._levels[d][keep])
        self._mags2d = np.ascontiguousarray(self._mags2d[keep])
        self._neg2d = np.ascontiguousarray(self._neg2d[keep])
        self._slot_orig = self._slot_orig[keep]
        self._nmax = self._nmax[keep]
        self._refresh_flat()

        def remap(depth: int, c: np.ndarray) -> np.ndarray:
            shift = self._shifts[depth]
            return (perm[c >> shift] << shift) | (c & self._masks[depth])

        new_lis = [
            [remap(depth, c) for c in chunks] for depth, chunks in enumerate(lis)
        ]
        new_lsp = [remap(self.geometry.max_depth, c) for c in lsp]
        return new_lis, new_lsp

    # -- output assembly -------------------------------------------------

    def _demux(
        self,
        bits_parts: list[np.ndarray],
        lane_parts: list[np.ndarray],
        plane_records: list[tuple],
        nmax_lane: np.ndarray,
        budgets: np.ndarray,
        has_budget: np.ndarray,
        budget_hit: np.ndarray,
    ) -> list[tuple[bytes, int, SpeckStats]]:
        L = self.n_lanes
        if bits_parts:
            all_bits = np.concatenate(bits_parts)
            all_lanes = np.concatenate(lane_parts)
            order = np.argsort(all_lanes, kind="stable")
            sorted_bits = all_bits[order]
            counts = np.bincount(all_lanes, minlength=L).astype(np.int64)
        else:
            sorted_bits = np.zeros(0, dtype=bool)
            counts = np.zeros(L, dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(counts)])

        stats = [SpeckStats() for _ in range(L)]
        for n, sort_c, sign_c, ref_c, participating in plane_records:
            for lane in np.nonzero(participating)[0]:
                st = stats[lane]
                st.planes.append(int(n))
                st.sorting_bits.append(int(sort_c[lane]))
                st.sign_bits.append(int(sign_c[lane]))
                st.refinement_bits.append(int(ref_c[lane]))

        # Assemble every lane into one byte-aligned scratch bit array so
        # the whole batch needs a single packbits pass: lane ``l`` owns
        # region [region[l], region[l] + 8 + counts[l]) padded up to a
        # byte, so its packed stream is a plain byte slice.
        totals = counts + 8  # 8-bit nmax header per lane
        emit = totals.copy()
        np.minimum(emit, budgets, where=has_budget, out=emit)
        region = np.zeros(L + 1, dtype=np.int64)
        np.cumsum((totals + 7) >> 3 << 3, out=region[1:])
        scratch = np.zeros(int(region[-1]), dtype=bool)
        header_bits = np.unpackbits(
            (nmax_lane + 1).astype(np.uint8)[:, None], axis=1
        ).astype(bool)
        for lane in range(L):
            start = region[lane]
            scratch[start : start + 8] = header_bits[lane]
            scratch[start + 8 : start + totals[lane]] = sorted_bits[
                offsets[lane] : offsets[lane + 1]
            ]
            if emit[lane] < totals[lane]:
                # Serial writers pack only the first max_bits bits; zero
                # the tail so the shared packbits pass matches that.
                scratch[start + emit[lane] : start + totals[lane]] = False
        packed = np.packbits(scratch).tobytes()

        out: list[tuple[bytes, int, SpeckStats]] = []
        for lane in range(L):
            total = int(totals[lane])
            b0 = int(region[lane]) >> 3
            data = packed[b0 : b0 + ((int(emit[lane]) + 7) >> 3)]
            nbits = min(total, int(budgets[lane])) if budget_hit[lane] else total
            out.append((data, nbits, stats[lane]))
        return out


#: Lane-size ceiling (in pixels) for the stacked encoder.  Lock-step
#: stacking amortizes the per-plane interpreter dispatch, which pays off
#: while a lane's working set (magnitudes + max pyramid) is small; for
#: larger chunks the per-lane reference codec is cache-resident and
#: faster, so the batch routes through it lane by lane.  Measured
#: crossover: 8^3/16^2 lanes win stacked (2-5x), 16^3 lanes win serial.
_STACK_MAX_PIXELS = 2048

#: Minimum lanes for stacking to beat the per-lane loop's simplicity.
_STACK_MIN_LANES = 4


def encode_batch(
    mags: np.ndarray,
    negative: np.ndarray,
    max_bits: int | np.ndarray | None = None,
) -> list[tuple[bytes, int, SpeckStats]]:
    """One-shot batched SPECK encode over ``(lanes, *shape)`` stacks.

    Lane ``l`` of the result is byte-identical to
    ``codec.encode(mags[l], negative[l], max_bits=max_bits[l])``; small
    lanes run through the stacked :class:`BatchedSpeckEncoder`, large
    lanes through the per-lane reference codec (see
    :data:`_STACK_MAX_PIXELS`).
    """
    mags = np.asarray(mags, dtype=np.uint64)
    if mags.ndim < 2 or mags.ndim > 4:
        raise InvalidArgumentError(
            "batched SPECK expects (lanes, ...) stacks of 1-D/2-D/3-D chunks"
        )
    npix = int(np.prod(mags.shape[1:]))
    n_lanes = int(mags.shape[0])
    if npix <= _STACK_MAX_PIXELS and n_lanes >= _STACK_MIN_LANES:
        return BatchedSpeckEncoder(mags, negative).encode(max_bits=max_bits)
    from .codec import encode as _serial_encode

    negative = np.asarray(negative, dtype=bool)
    if max_bits is None:
        per_lane = [None] * n_lanes
    else:
        per_lane = [
            int(b)
            for b in np.broadcast_to(
                np.asarray(max_bits, dtype=np.int64), (n_lanes,)
            )
        ]
    return [
        _serial_encode(mags[lane], negative[lane], max_bits=per_lane[lane])
        for lane in range(n_lanes)
    ]
