"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries while still being
able to discriminate failure modes (malformed streams vs. bad arguments vs.
unsatisfiable requests).
"""

from __future__ import annotations

import math
import struct
from contextlib import contextmanager


class ReproError(Exception):
    """Base class for all errors raised by the repro/SPERR library."""


class InvalidArgumentError(ReproError, ValueError):
    """An argument is out of range, the wrong shape, or otherwise unusable."""


class StreamFormatError(ReproError):
    """A compressed stream is truncated, corrupt, or from a different codec."""


class IntegrityError(StreamFormatError):
    """A CRC32 checksum stored in the stream does not match its payload."""


class AllocationLimitError(StreamFormatError):
    """A length field in an untrusted stream requests an allocation beyond
    the decoder's safety cap (:data:`repro.core.container.MAX_TOTAL_POINTS`
    and :data:`repro.bitstream.header.MAX_CHUNK_POINTS`)."""


class BudgetError(ReproError):
    """A size budget is too small to produce any valid output."""


class UnsupportedModeError(ReproError):
    """The requested compression mode is not supported by this compressor."""


#: Decode-side cap on the number of points a single payload may declare.
#: 2 GiB of float64 output — far above any legitimate payload here.
MAX_DECODE_POINTS = 1 << 28


def checked_shape(
    shape, codec: str, max_points: int = MAX_DECODE_POINTS
) -> tuple[int, ...]:
    """Validate an untrusted shape field before it sizes an allocation.

    Rejects empty/zero/negative extents and caps the total point count,
    so a forged header cannot drive ``np.zeros`` to exabytes or a
    reconstruction loop to hours.
    """
    shape = tuple(int(s) for s in shape)
    if not shape or any(n < 1 for n in shape):
        raise StreamFormatError(f"{codec}: invalid shape {shape} in payload")
    if math.prod(shape) > max_points:
        raise AllocationLimitError(
            f"{codec}: payload declares shape {shape} "
            f"({math.prod(shape)} points), beyond the {max_points}-point "
            "decode cap"
        )
    return shape


@contextmanager
def decode_guard(codec: str):
    """Trust boundary for payload parsing.

    Library errors pass through; any raw exception a malformed payload
    provokes out of ``struct``/numpy internals (``struct.error``,
    reshape/broadcast ``ValueError``, ``OverflowError``, ...) is
    translated to :class:`StreamFormatError` so callers can rely on the
    documented :class:`ReproError` contract.
    """
    try:
        yield
    except ReproError:
        raise
    except (
        struct.error,
        ValueError,
        OverflowError,
        IndexError,
        KeyError,
        TypeError,
        EOFError,
        ZeroDivisionError,
        MemoryError,
    ) as exc:
        raise StreamFormatError(
            f"{codec}: malformed payload ({type(exc).__name__}: {exc})"
        ) from exc
