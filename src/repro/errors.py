"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries while still being
able to discriminate failure modes (malformed streams vs. bad arguments vs.
unsatisfiable requests).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro/SPERR library."""


class InvalidArgumentError(ReproError, ValueError):
    """An argument is out of range, the wrong shape, or otherwise unusable."""


class StreamFormatError(ReproError):
    """A compressed stream is truncated, corrupt, or from a different codec."""


class BudgetError(ReproError):
    """A size budget is too small to produce any valid output."""


class UnsupportedModeError(ReproError):
    """The requested compression mode is not supported by this compressor."""
