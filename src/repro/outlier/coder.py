"""Outlier coding (paper Sec. IV, Listings 1-3).

The outlier coder records ``(pos, corr)`` tuples so a decoder can correct
every reconstructed point whose error exceeds the PWE tolerance ``t``.  It
is "SPECK-inspired" in the strongest sense: with correction values
scattered into a dense 1-D array and quantized with step ``t``, the
algorithm of Listings 1-3 *is* the 1-D binary-partition instance of the
batched SPECK codec:

* the threshold schedule ``thrd = 2^n * t`` (Listing 1, line 4-6) is the
  bitplane schedule on integer magnitudes ``floor(|corr| / t)``;
* ``SortingPass`` (Listing 2) is the set-partitioning sorting pass with
  binary splits (1-D sets divide into two halves);
* ``RefinementPass`` (Listing 3) is mid-riser bitplane refinement — its
  decoder rules (lines 5, 7, 12) reproduce exactly the
  centered-in-interval reconstruction of the SPECK refinement machinery;
* termination at ``thrd = t`` guarantees every coded correction deviates
  from the truth by at most ``t/2``, satisfying the tolerance.

Inliers appear as zero-valued points of the dense array and fall in the
dead zone — they are never coded individually, only crossed during set
significance tests, which is what makes the amortized cost per outlier
land in the 6-16 bit range the paper measures (Fig. 4).

The input is flattened to 1-D per the paper's linearization choice
(Sec. IV-C): outlier positions carry essentially no spatial correlation,
so higher-dimensional partitioning buys nothing (Fig. 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidArgumentError
from ..obs import span
from ..quant import integerize
from ..speck import codec as _speck_codec

__all__ = ["OutlierCoder", "encode_outliers", "decode_outliers"]


@dataclass(frozen=True)
class OutlierEncoding:
    """Result of encoding an outlier list."""

    stream: bytes
    nbits: int
    n_outliers: int

    @property
    def bits_per_outlier(self) -> float:
        """Amortized coding cost (Fig. 4 / Fig. 11 metric)."""
        return self.nbits / self.n_outliers if self.n_outliers else 0.0


class OutlierCoder:
    """Encoder/decoder for outlier ``(pos, corr)`` tuples over a length-N domain."""

    def __init__(self, n: int, tolerance: float) -> None:
        if n < 1:
            raise InvalidArgumentError("domain length must be positive")
        if not np.isfinite(tolerance) or tolerance <= 0:
            raise InvalidArgumentError("PWE tolerance must be positive")
        self.n = int(n)
        self.tolerance = float(tolerance)

    def encode(self, positions: np.ndarray, corrections: np.ndarray) -> OutlierEncoding:
        """Encode outliers; corrections are the exact errors ``x - x̃``."""
        positions = np.asarray(positions, dtype=np.int64).reshape(-1)
        corrections = np.asarray(corrections, dtype=np.float64).reshape(-1)
        if positions.size != corrections.size:
            raise InvalidArgumentError("positions and corrections must pair up")
        if positions.size and (positions.min() < 0 or positions.max() >= self.n):
            raise InvalidArgumentError("outlier position out of range")
        if np.unique(positions).size != positions.size:
            raise InvalidArgumentError("duplicate outlier positions")

        # Quantize only the sparse corrections and scatter the integer
        # magnitudes: elementwise quantization of the implicit zeros is a
        # no-op, so this is bit-identical to quantizing the dense array
        # while skipping four full-domain float passes.
        with span("outlier.encode", n_outliers=int(positions.size)):
            mags, negative = integerize(corrections, self.tolerance)
            dense_mags = np.zeros(self.n, dtype=np.uint64)
            dense_neg = np.zeros(self.n, dtype=bool)
            dense_mags[positions] = mags
            dense_neg[positions] = negative
            stream, nbits, _ = _speck_codec.encode(dense_mags, dense_neg)
        return OutlierEncoding(stream=stream, nbits=nbits, n_outliers=positions.size)

    def decode(self, stream: bytes, nbits: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Decode to ``(positions, corrections)``; corrections are the
        quantized approximations with ``|corr - ĉorr| <= t/2``."""
        rec_mags, negative = _speck_codec.decode(stream, (self.n,), nbits=nbits)
        values = rec_mags * self.tolerance
        values[negative] *= -1.0
        positions = np.flatnonzero(rec_mags > 0)
        return positions, values[positions]

    def apply(self, reconstruction: np.ndarray, stream: bytes, nbits: int | None = None) -> None:
        """Add decoded corrections to a flattened reconstruction in place."""
        flat = reconstruction.reshape(-1)
        if flat.size != self.n:
            raise InvalidArgumentError("reconstruction length mismatch")
        with span("outlier.apply") as sp:
            positions, corrections = self.decode(stream, nbits=nbits)
            flat[positions] += corrections
            sp.set(n_outliers=int(positions.size))


def encode_outliers(
    positions: np.ndarray, corrections: np.ndarray, n: int, tolerance: float
) -> OutlierEncoding:
    """One-shot outlier encoding (see :class:`OutlierCoder`)."""
    return OutlierCoder(n, tolerance).encode(positions, corrections)


def decode_outliers(
    stream: bytes, n: int, tolerance: float, nbits: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """One-shot outlier decoding (see :class:`OutlierCoder`)."""
    return OutlierCoder(n, tolerance).decode(stream, nbits=nbits)
