"""Outlier location: step 3 of the SPERR pipeline (paper Sec. V-C).

Compares the wavelet reconstruction against the original input and
returns every point whose absolute error exceeds the PWE tolerance,
together with the exact correction value ``corr = x - x̃``.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidArgumentError
from ..obs import span

__all__ = ["locate_outliers"]


def locate_outliers(
    original: np.ndarray, reconstruction: np.ndarray, tolerance: float
) -> tuple[np.ndarray, np.ndarray]:
    """Find points violating the tolerance; returns flat ``(positions, corrections)``."""
    original = np.asarray(original, dtype=np.float64)
    reconstruction = np.asarray(reconstruction, dtype=np.float64)
    if original.shape != reconstruction.shape:
        raise InvalidArgumentError("original and reconstruction shapes differ")
    if not np.isfinite(tolerance) or tolerance <= 0:
        raise InvalidArgumentError("PWE tolerance must be positive")
    with span("outlier.locate", tolerance=tolerance) as sp:
        err = original.reshape(-1) - reconstruction.reshape(-1)
        positions = np.flatnonzero(np.abs(err) > tolerance)
        sp.set(n_outliers=int(positions.size))
    return positions, err[positions]
