"""Outlier location and coding — the machinery that turns size-bounded
SPECK into the PWE-bounded SPERR (paper Sec. IV)."""

from .alternatives import bitmap_decode, bitmap_encode, csr_decode, csr_encode
from .coder import OutlierCoder, OutlierEncoding, decode_outliers, encode_outliers
from .locate import locate_outliers

__all__ = [
    "OutlierCoder",
    "OutlierEncoding",
    "encode_outliers",
    "decode_outliers",
    "locate_outliers",
    "csr_encode",
    "csr_decode",
    "bitmap_encode",
    "bitmap_decode",
]
