"""Alternative outlier coders from the paper's Sec. II design space.

The paper motivates its SPECK-inspired outlier coder by dismissing three
simpler designs; this module implements them so the claim can be
measured (``bench_ablation_outlier_designs.py``):

* **CSR-style** — "Compressed Sparse Row ... far from optimal in our
  application because they still use naive storage to record element
  positions and values": positions as fixed-width integers, corrections
  quantized to ``t``-steps as fixed-width integers.
* **Bitmap + universal codes** — "record positions using bitmap coding
  ... and handle correction values using ... universal codes": a
  presence bitmap over the domain (RLE'd through the lossless backend)
  plus Elias-delta-coded zigzag quantized corrections.
* **SZ-style quant bins** — quantized correction value for *every*
  point, Huffman coded (implemented by the SZ-like baseline's codec;
  compared separately in the Fig. 11 bench).

All three satisfy the same contract as the production coder: positions
exact, corrections within ``t/2``.
"""

from __future__ import annotations

import struct

import numpy as np

from .. import lossless
from ..bitstream import BitReader, BitWriter
from ..errors import InvalidArgumentError, StreamFormatError
from ..lossless.universal import delta_decode, delta_encode, unzigzag, zigzag

__all__ = [
    "csr_encode",
    "csr_decode",
    "bitmap_encode",
    "bitmap_decode",
    "quantize_corrections",
    "dequantize_corrections",
]


def quantize_corrections(corrections: np.ndarray, tolerance: float) -> np.ndarray:
    """Integer codes with reconstruction error <= t/2 (round to t-steps)."""
    if tolerance <= 0:
        raise InvalidArgumentError("tolerance must be positive")
    return np.rint(np.asarray(corrections, dtype=np.float64) / tolerance).astype(
        np.int64
    )


def dequantize_corrections(codes: np.ndarray, tolerance: float) -> np.ndarray:
    return codes.astype(np.float64) * tolerance


def _position_width(n: int) -> int:
    return max(1, int(n - 1).bit_length())


def csr_encode(
    positions: np.ndarray, corrections: np.ndarray, n: int, tolerance: float
) -> bytes:
    """Naive sparse storage: fixed-width positions + fixed-width codes."""
    positions = np.asarray(positions, dtype=np.int64)
    codes = quantize_corrections(corrections, tolerance)
    pos_bits = _position_width(n)
    val_bits = max(1, int(np.abs(codes).max(initial=1)).bit_length() + 1)

    writer = BitWriter()
    for p, c in zip(positions.tolist(), codes.tolist()):
        writer.write_uint(p, pos_bits)
        writer.write_uint(int(zigzag(np.asarray([c]))[0]), val_bits)
    head = struct.pack("<QQdBB", n, positions.size, tolerance, pos_bits, val_bits)
    return head + writer.getvalue()


def csr_decode(payload: bytes) -> tuple[np.ndarray, np.ndarray, float]:
    """Returns ``(positions, corrections, tolerance)``."""
    head_size = struct.calcsize("<QQdBB")
    if len(payload) < head_size:
        raise StreamFormatError("truncated CSR outlier payload")
    n, k, tolerance, pos_bits, val_bits = struct.unpack_from("<QQdBB", payload)
    reader = BitReader(payload[head_size:])
    positions = np.empty(k, dtype=np.int64)
    codes = np.empty(k, dtype=np.int64)
    for i in range(k):
        positions[i] = reader.read_uint(pos_bits)
        codes[i] = reader.read_uint(val_bits)
    return positions, dequantize_corrections(unzigzag(codes), tolerance), tolerance


def bitmap_encode(
    positions: np.ndarray, corrections: np.ndarray, n: int, tolerance: float
) -> bytes:
    """Presence bitmap (lossless-compressed) + Elias-delta values."""
    positions = np.asarray(positions, dtype=np.int64)
    codes = quantize_corrections(corrections, tolerance)
    bitmap = np.zeros(n, dtype=np.bool_)
    bitmap[positions] = True
    bitmap_bytes = lossless.compress(np.packbits(bitmap).tobytes(), method="auto")

    writer = BitWriter()
    # outliers have |corr| > t so codes are nonzero; zigzag makes them
    # positive for the universal code
    delta_encode(zigzag(codes[np.argsort(positions)]), writer)
    head = struct.pack("<QQdI", n, positions.size, tolerance, len(bitmap_bytes))
    return head + bitmap_bytes + writer.getvalue()


def bitmap_decode(payload: bytes) -> tuple[np.ndarray, np.ndarray, float]:
    """Returns ``(positions, corrections, tolerance)``."""
    head_size = struct.calcsize("<QQdI")
    if len(payload) < head_size:
        raise StreamFormatError("truncated bitmap outlier payload")
    n, k, tolerance, bitmap_len = struct.unpack_from("<QQdI", payload)
    bitmap_raw = lossless.decompress(payload[head_size : head_size + bitmap_len])
    bitmap = np.unpackbits(np.frombuffer(bitmap_raw, dtype=np.uint8))[:n].astype(bool)
    positions = np.flatnonzero(bitmap)
    if positions.size != k:
        raise StreamFormatError("bitmap population does not match outlier count")
    reader = BitReader(payload[head_size + bitmap_len :])
    codes = unzigzag(delta_decode(reader, int(k)))
    return positions, dequantize_corrections(codes, tolerance), tolerance
