"""Lifting-scheme wavelet transforms along one axis.

Implements the CDF 9/7 biorthogonal wavelet (the transform SPERR uses,
paper Sec. III-A) plus CDF 5/3 and Haar for ablation studies.  All
transforms:

* use whole-sample symmetric boundary extension (QccPack convention),
* handle arbitrary (even or odd, non power-of-two) lengths,
* are vectorized along every other axis (the transform axis is moved last
  and the lifting steps are pure slice arithmetic), and
* achieve perfect reconstruction to floating-point round-off.

The 9/7 scaling constants are chosen so that the synthesis basis functions
have approximately unit L2 norm ("near orthogonality"), which is the
property SPERR relies on to equate coefficient-domain and data-domain L2
errors.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidArgumentError

__all__ = [
    "forward_97",
    "inverse_97",
    "forward_53",
    "inverse_53",
    "forward_haar",
    "inverse_haar",
    "FILTERS",
]

# CDF 9/7 lifting coefficients (Daubechies & Sweldens factorization).
_ALPHA = -1.586134342059924
_BETA = -0.052980118572961
_GAMMA = 0.882911075530934
_DELTA = 0.443506852043971
# Subband scaling for approximately unit-norm basis functions
# (K = 1.230174104914001 is the standard CDF 9/7 scaling constant).
_K = 1.230174104914001
_S_LOW = np.sqrt(2.0) / _K
_S_HIGH = _K / np.sqrt(2.0)


def _split(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Copy even/odd samples of the last axis into separate arrays.

    Always copies: the lifting steps mutate these in place and must never
    alias the caller's array (a strided slice can be a view when it has a
    single element).
    """
    return x[..., 0::2].astype(np.float64), x[..., 1::2].astype(np.float64)


def _even_neighbors(s: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """(s[i], s[i+1]) pairs seen by odd samples, with symmetric extension."""
    if n % 2 == 0:
        right = np.concatenate([s[..., 1:], s[..., -1:]], axis=-1)
        return s, right
    return s[..., :-1], s[..., 1:]


def _odd_neighbors(d: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """(d[i-1], d[i]) pairs seen by even samples, with symmetric extension."""
    left = np.concatenate([d[..., :1], d[..., :-1]], axis=-1)
    if n % 2 == 0:
        return left, d
    left = np.concatenate([d[..., :1], d], axis=-1)
    right = np.concatenate([d, d[..., -1:]], axis=-1)
    return left, right


def _even_sum(s: np.ndarray, n: int, out: np.ndarray) -> None:
    """``sl + sr`` of :func:`_even_neighbors` written into ``out``.

    Same elementwise sums as the concat-based helper (so results are
    bit-identical) without allocating the shifted copies.
    """
    if n % 2 == 0:
        np.add(s[..., :-1], s[..., 1:], out=out[..., :-1])
        np.add(s[..., -1], s[..., -1], out=out[..., -1])
    else:
        np.add(s[..., :-1], s[..., 1:], out=out)


def _odd_sum(d: np.ndarray, n: int, out: np.ndarray) -> None:
    """``dl + dr`` of :func:`_odd_neighbors` written into ``out``."""
    if n % 2 == 0:
        np.add(d[..., :-1], d[..., 1:], out=out[..., 1:])
        np.add(d[..., 0], d[..., 0], out=out[..., 0])
    else:
        np.add(d[..., :-1], d[..., 1:], out=out[..., 1:-1])
        np.add(d[..., 0], d[..., 0], out=out[..., 0])
        np.add(d[..., -1], d[..., -1], out=out[..., -1])


def forward_97(x: np.ndarray) -> np.ndarray:
    """One CDF 9/7 analysis pass along the last axis.

    Returns the coefficients in Mallat layout: ``[lowpass | highpass]``
    concatenated along the last axis (lowpass length is ``ceil(n/2)``).
    The lifting steps stage each neighbor sum in a reused scratch buffer;
    the arithmetic (add, scale, accumulate) matches the textbook form
    operation for operation, so outputs are bit-identical to it.
    """
    n = x.shape[-1]
    if n < 2:
        raise InvalidArgumentError("transform length must be at least 2")
    s, d = _split(x.astype(np.float64, copy=False))
    t_d = np.empty_like(d)
    t_s = np.empty_like(s)
    _even_sum(s, n, t_d)
    t_d *= _ALPHA
    d += t_d
    _odd_sum(d, n, t_s)
    t_s *= _BETA
    s += t_s
    _even_sum(s, n, t_d)
    t_d *= _GAMMA
    d += t_d
    _odd_sum(d, n, t_s)
    t_s *= _DELTA
    s += t_s
    s *= _S_LOW
    d *= _S_HIGH
    return np.concatenate([s, d], axis=-1)


def inverse_97(c: np.ndarray) -> np.ndarray:
    """Inverse of :func:`forward_97` (Mallat-layout input)."""
    n = c.shape[-1]
    half = (n + 1) // 2
    s = c[..., :half].astype(np.float64, copy=True)
    d = c[..., half:].astype(np.float64, copy=True)
    s /= _S_LOW
    d /= _S_HIGH
    t_d = np.empty_like(d)
    t_s = np.empty_like(s)
    _odd_sum(d, n, t_s)
    t_s *= _DELTA
    s -= t_s
    _even_sum(s, n, t_d)
    t_d *= _GAMMA
    d -= t_d
    _odd_sum(d, n, t_s)
    t_s *= _BETA
    s -= t_s
    _even_sum(s, n, t_d)
    t_d *= _ALPHA
    d -= t_d
    out = np.empty_like(c, dtype=np.float64)
    out[..., 0::2] = s
    out[..., 1::2] = d
    return out


# CDF 5/3 (LeGall) lifting, used by the wavelet-choice ablation.  The
# scalings below were calibrated numerically so the synthesis basis
# functions have mean unit L2 norm (5/3 is only loosely orthogonal).
_S53_LOW = 1.2260616233132038
_S53_HIGH = np.sqrt(2.0) / 2.0 * 1.1987347890132365


def forward_53(x: np.ndarray) -> np.ndarray:
    """One CDF 5/3 analysis pass along the last axis (Mallat layout)."""
    n = x.shape[-1]
    if n < 2:
        raise InvalidArgumentError("transform length must be at least 2")
    s, d = _split(x.astype(np.float64, copy=False))
    sl, sr = _even_neighbors(s, n)
    d -= 0.5 * (sl + sr)
    dl, dr = _odd_neighbors(d, n)
    s += 0.25 * (dl + dr)
    s *= _S53_LOW
    d *= _S53_HIGH
    return np.concatenate([s, d], axis=-1)


def inverse_53(c: np.ndarray) -> np.ndarray:
    """Inverse of :func:`forward_53`."""
    n = c.shape[-1]
    half = (n + 1) // 2
    s = c[..., :half].astype(np.float64, copy=True)
    d = c[..., half:].astype(np.float64, copy=True)
    s /= _S53_LOW
    d /= _S53_HIGH
    dl, dr = _odd_neighbors(d, n)
    s -= 0.25 * (dl + dr)
    sl, sr = _even_neighbors(s, n)
    d += 0.5 * (sl + sr)
    out = np.empty_like(c, dtype=np.float64)
    out[..., 0::2] = s
    out[..., 1::2] = d
    return out


_SQRT2 = np.sqrt(2.0)


def forward_haar(x: np.ndarray) -> np.ndarray:
    """Orthonormal Haar analysis pass (odd tail sample passed through)."""
    n = x.shape[-1]
    if n < 2:
        raise InvalidArgumentError("transform length must be at least 2")
    x = x.astype(np.float64, copy=False)
    m = n // 2
    a = x[..., 0 : 2 * m : 2]
    b = x[..., 1 : 2 * m : 2]
    s = (a + b) / _SQRT2
    d = (a - b) / _SQRT2
    if n % 2:
        tail = x[..., -1:] * 1.0
        return np.concatenate([s, tail, d], axis=-1)
    return np.concatenate([s, d], axis=-1)


def inverse_haar(c: np.ndarray) -> np.ndarray:
    """Inverse of :func:`forward_haar`."""
    n = c.shape[-1]
    half = (n + 1) // 2
    s = c[..., :half]
    d = c[..., half:]
    out = np.empty_like(c, dtype=np.float64)
    if n % 2:
        out[..., -1] = s[..., -1]
        s = s[..., :-1]
    a = (s + d) / _SQRT2
    b = (s - d) / _SQRT2
    m = n // 2
    out[..., 0 : 2 * m : 2] = a
    out[..., 1 : 2 * m : 2] = b
    return out


#: Registry of (forward, inverse) axis transforms by wavelet name.
FILTERS: dict[str, tuple] = {
    "cdf97": (forward_97, inverse_97),
    "cdf53": (forward_53, inverse_53),
    "haar": (forward_haar, inverse_haar),
}
