"""Wavelet transforms: CDF 9/7 (SPERR default), CDF 5/3, Haar; separable
multi-level n-D DWT with SPERR's level rule."""

from .dwt import (
    MAX_LEVELS,
    WaveletPlan,
    forward,
    inverse,
    inverse_to_level,
    lowpass_dc_gain,
    num_levels,
)
from .lifting import (
    FILTERS,
    forward_53,
    forward_97,
    forward_haar,
    inverse_53,
    inverse_97,
    inverse_haar,
)

__all__ = [
    "FILTERS",
    "MAX_LEVELS",
    "WaveletPlan",
    "forward",
    "inverse",
    "inverse_to_level",
    "lowpass_dc_gain",
    "num_levels",
    "forward_97",
    "inverse_97",
    "forward_53",
    "inverse_53",
    "forward_haar",
    "inverse_haar",
]
