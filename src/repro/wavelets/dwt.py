"""Separable multi-level n-D discrete wavelet transform.

Implements SPERR's transform strategy (paper Sec. III-A):

* transforms are applied separately along each axis (separable),
* the recursion depth per axis follows ``min(6, floor(log2 N) - 2)``,
* each level transforms only the low-pass box produced by the previous
  level (Mallat / dyadic decomposition, falling back to wavelet-packet
  style when axes have unequal depths), and
* arbitrary (non power-of-two, odd) extents are supported through the
  symmetric-extension lifting in :mod:`repro.wavelets.lifting`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import InvalidArgumentError
from .lifting import FILTERS

__all__ = [
    "num_levels",
    "WaveletPlan",
    "forward",
    "forward_batch",
    "inverse",
    "inverse_batch",
    "inverse_to_level",
    "lowpass_dc_gain",
]

#: Paper's cap on recursion depth ("diminishing benefit of deeply
#: recursive wavelet transforms").
MAX_LEVELS = 6


def num_levels(n: int, max_levels: int = MAX_LEVELS) -> int:
    """SPERR's per-axis level rule: ``min(6, floor(log2 N) - 2)``, >= 0."""
    if n < 1:
        raise InvalidArgumentError("axis length must be positive")
    if n < 8:
        return 0
    return max(0, min(max_levels, int(math.floor(math.log2(n))) - 2))


@dataclass(frozen=True)
class WaveletPlan:
    """Precomputed decomposition schedule for one array shape.

    ``low_lengths[level][axis]`` is the low-pass extent of each axis
    *before* applying level ``level`` (level 0 sees the full array).
    Axes whose per-axis depth is smaller than ``level`` keep their full
    current extent and are not transformed at that level.
    """

    shape: tuple[int, ...]
    wavelet: str
    axis_levels: tuple[int, ...]
    low_lengths: tuple[tuple[int, ...], ...]

    @property
    def total_levels(self) -> int:
        return len(self.low_lengths)

    @classmethod
    def create(
        cls,
        shape: tuple[int, ...],
        wavelet: str = "cdf97",
        max_levels: int = MAX_LEVELS,
        levels: int | None = None,
    ) -> "WaveletPlan":
        """Build the schedule for ``shape``.

        ``levels`` forcibly caps the number of levels on every axis (used
        by the chunk-size ablation); ``None`` applies the paper's rule.
        """
        if wavelet not in FILTERS:
            raise InvalidArgumentError(
                f"unknown wavelet {wavelet!r}; choose from {sorted(FILTERS)}"
            )
        axis_levels = tuple(num_levels(n, max_levels) for n in shape)
        if levels is not None:
            if levels < 0:
                raise InvalidArgumentError("levels must be non-negative")
            axis_levels = tuple(min(levels, a) for a in axis_levels)
        total = max(axis_levels, default=0)
        cur = list(shape)
        lows: list[tuple[int, ...]] = []
        for level in range(total):
            lows.append(tuple(cur))
            for ax, n_levels in enumerate(axis_levels):
                if level < n_levels:
                    cur[ax] = (cur[ax] + 1) // 2
        return cls(
            shape=tuple(shape),
            wavelet=wavelet,
            axis_levels=axis_levels,
            low_lengths=tuple(lows),
        )


def _axis_apply(arr: np.ndarray, axis: int, length: int, func) -> None:
    """Apply a last-axis transform to ``arr[..., :length, ...]`` in place.

    When the transform axis is strided (any axis but the last), the
    region is staged through one contiguous copy: the lifting steps make
    ~10 slice passes over the data, and paying two strided passes
    (gather + scatter) instead of ten is a large win on 3-D arrays.
    The staged values are identical, so outputs are bit-identical.
    """
    view = np.moveaxis(arr, axis, -1)
    region = view[..., :length]
    if region.strides[-1] != region.itemsize:
        np.copyto(region, func(np.ascontiguousarray(region)))
    else:
        np.copyto(region, func(region))


def forward(
    data: np.ndarray,
    wavelet: str = "cdf97",
    levels: int | None = None,
    plan: WaveletPlan | None = None,
) -> tuple[np.ndarray, WaveletPlan]:
    """Forward multi-level DWT; returns (coefficients, plan).

    The coefficient array has the same shape as the input, in nested
    Mallat layout.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim < 1 or data.ndim > 3:
        raise InvalidArgumentError("only 1-D, 2-D, and 3-D inputs are supported")
    if plan is None:
        # Shared per-shape schedule from the plan cache; imported lazily
        # because repro.core imports this module at package-init time.
        from ..core.plans import wavelet_plan

        plan = wavelet_plan(data.shape, wavelet=wavelet, levels=levels)
    fwd, _ = FILTERS[plan.wavelet]
    coeffs = data.copy()
    for level in range(plan.total_levels):
        lengths = plan.low_lengths[level]
        for ax in range(coeffs.ndim):
            if level < plan.axis_levels[ax] and lengths[ax] >= 2:
                _axis_apply(coeffs, ax, lengths[ax], fwd)
    return coeffs, plan


#: Target per-block working set for the stacked transforms.  The lifting
#: passes stream the block several times, so keeping it L2-resident beats
#: maximal stacking; measured optimum is ~128 KiB (a 16^3 chunk stacks 4
#: lanes per block, a 32^3 chunk runs lane-at-a-time).
_BLOCK_BYTES = 1 << 17


def _lane_block(shape: tuple[int, ...]) -> int:
    lane_bytes = int(np.prod(shape)) * 8
    return max(1, _BLOCK_BYTES // max(1, lane_bytes))


def forward_batch(stack: np.ndarray, plan: WaveletPlan) -> np.ndarray:
    """Forward DWT of a ``(lanes, *shape)`` stack, one pass per axis.

    The lifting steps are pure elementwise slice arithmetic broadcast
    over every non-transform axis, so lane ``l`` of the result is
    bit-identical to ``forward(stack[l], plan=plan)[0]``.  Lanes are
    processed in L2-sized blocks (see :data:`_BLOCK_BYTES`).
    """
    stack = np.asarray(stack, dtype=np.float64)
    if stack.shape[1:] != plan.shape:
        raise InvalidArgumentError(
            f"stack shape {stack.shape[1:]} does not match plan {plan.shape}"
        )
    fwd, _ = FILTERS[plan.wavelet]
    coeffs = stack.copy()
    block = _lane_block(plan.shape)
    for b0 in range(0, coeffs.shape[0], block):
        sub = coeffs[b0 : b0 + block]
        for level in range(plan.total_levels):
            lengths = plan.low_lengths[level]
            for ax in range(len(plan.shape)):
                if level < plan.axis_levels[ax] and lengths[ax] >= 2:
                    _axis_apply(sub, ax + 1, lengths[ax], fwd)
    return coeffs


def inverse_batch(stack: np.ndarray, plan: WaveletPlan) -> np.ndarray:
    """Inverse of :func:`forward_batch` (lane-wise identical to
    :func:`inverse`)."""
    stack = np.asarray(stack, dtype=np.float64)
    if stack.shape[1:] != plan.shape:
        raise InvalidArgumentError(
            f"stack shape {stack.shape[1:]} does not match plan {plan.shape}"
        )
    _, inv = FILTERS[plan.wavelet]
    data = stack.copy()
    block = _lane_block(plan.shape)
    for b0 in range(0, data.shape[0], block):
        sub = data[b0 : b0 + block]
        for level in range(plan.total_levels - 1, -1, -1):
            lengths = plan.low_lengths[level]
            for ax in range(len(plan.shape) - 1, -1, -1):
                if level < plan.axis_levels[ax] and lengths[ax] >= 2:
                    _axis_apply(sub, ax + 1, lengths[ax], inv)
    return data


_DC_GAIN_CACHE: dict[str, float] = {}


def lowpass_dc_gain(wavelet: str) -> float:
    """DC gain of one low-pass analysis level (measured numerically).

    The multi-level approximation of a constant signal is the constant
    times this gain per level per axis; multi-resolution reconstruction
    divides it back out so coarse views sit on the original scale.
    """
    if wavelet not in FILTERS:
        raise InvalidArgumentError(f"unknown wavelet {wavelet!r}")
    if wavelet not in _DC_GAIN_CACHE:
        fwd, _ = FILTERS[wavelet]
        c = fwd(np.ones(64))
        _DC_GAIN_CACHE[wavelet] = float(np.mean(c[:32]))
    return _DC_GAIN_CACHE[wavelet]


def inverse_to_level(
    coeffs: np.ndarray, plan: WaveletPlan, level: int
) -> np.ndarray:
    """Partially invert to the approximation at decomposition ``level``.

    ``level = 0`` is the full-resolution inverse; ``level = k`` skips the
    finest ``k`` levels and returns the low-pass box (roughly each axis
    halved ``min(k, axis_levels)`` times), rescaled to the original data
    scale.  This is the paper's Sec. VII multi-resolution reconstruction:
    the wavelet hierarchy makes every coarsened level a usable preview of
    the data, decoded from the same stream.
    """
    coeffs = np.asarray(coeffs, dtype=np.float64)
    if coeffs.shape != plan.shape:
        raise InvalidArgumentError(
            f"coefficient shape {coeffs.shape} does not match plan {plan.shape}"
        )
    if level < 0 or level > plan.total_levels:
        raise InvalidArgumentError(
            f"level must be in [0, {plan.total_levels}], got {level}"
        )
    if level == 0:
        return inverse(coeffs, plan)
    _, inv = FILTERS[plan.wavelet]
    data = coeffs.copy()
    for lv in range(plan.total_levels - 1, level - 1, -1):
        lengths = plan.low_lengths[lv]
        for ax in range(data.ndim - 1, -1, -1):
            if lv < plan.axis_levels[ax] and lengths[ax] >= 2:
                _axis_apply(data, ax, lengths[ax], inv)
    box_lengths = list(plan.shape)
    for lv in range(level):
        for ax in range(len(box_lengths)):
            if lv < plan.axis_levels[ax]:
                box_lengths[ax] = (box_lengths[ax] + 1) // 2
    box = data[tuple(slice(0, n) for n in box_lengths)].copy()
    gain = lowpass_dc_gain(plan.wavelet)
    for ax in range(box.ndim):
        skipped = min(level, plan.axis_levels[ax])
        if skipped:
            box /= gain**skipped
    return box


def inverse(coeffs: np.ndarray, plan: WaveletPlan) -> np.ndarray:
    """Inverse multi-level DWT (exact inverse of :func:`forward`)."""
    coeffs = np.asarray(coeffs, dtype=np.float64)
    if coeffs.shape != plan.shape:
        raise InvalidArgumentError(
            f"coefficient shape {coeffs.shape} does not match plan {plan.shape}"
        )
    _, inv = FILTERS[plan.wavelet]
    data = coeffs.copy()
    for level in range(plan.total_levels - 1, -1, -1):
        lengths = plan.low_lengths[level]
        for ax in range(data.ndim - 1, -1, -1):
            if level < plan.axis_levels[ax] and lengths[ax] >= 2:
                _axis_apply(data, ax, lengths[ax], inv)
    return data
