"""Linear-scaling quantization and the quant-bin entropy codec.

This is SZ's error-controlled quantization (Tao et al., IPDPS 2017 —
reference [6] of the SPERR paper): prediction residuals are quantized to
integer multiples of ``2t`` so the reconstruction error stays within the
tolerance ``t``; the integer bin codes are Huffman coded and the result
goes through the lossless backend (SZ uses ZSTD there).

``encode_bins`` / ``decode_bins`` double as the reproduction of QCAT's
``compressQuantBins`` tool, which the paper uses to compare SZ's outlier
coding cost against SPERR's (Fig. 11).
"""

from __future__ import annotations

import struct

import numpy as np

from ... import lossless
from ...errors import InvalidArgumentError, StreamFormatError
from ...lossless import huffman

__all__ = [
    "QUANT_RADIUS",
    "ESCAPE",
    "quantize_residuals",
    "dequantize_codes",
    "encode_bins",
    "decode_bins",
]

#: Half-width of the quantization code range (SZ default: 2^15 bins).
QUANT_RADIUS = 1 << 15
#: Symbol reserved for unpredictable (out-of-range) values.
ESCAPE = 0


def quantize_residuals(
    residuals: np.ndarray, tolerance: float
) -> tuple[np.ndarray, np.ndarray]:
    """Quantize residuals to integer multiples of ``2 * tolerance``.

    Returns ``(codes, escape_mask)``: ``codes[i]`` reconstructs the
    residual as ``codes[i] * 2t`` with error <= t; positions where the
    code would leave the representable range are flagged for raw storage.
    """
    if tolerance <= 0:
        raise InvalidArgumentError("tolerance must be positive")
    codes = np.rint(residuals / (2.0 * tolerance)).astype(np.int64)
    escape = np.abs(codes) >= QUANT_RADIUS
    codes[escape] = 0
    return codes, escape


def dequantize_codes(codes: np.ndarray, tolerance: float) -> np.ndarray:
    """Reconstruct residuals from bin codes."""
    return codes.astype(np.float64) * (2.0 * tolerance)


def encode_bins(codes: np.ndarray, escape_mask: np.ndarray | None = None) -> bytes:
    """Huffman + lossless coding of quantization bin codes.

    Symbols: 0 is the escape marker, code ``c`` maps to ``c + QUANT_RADIUS``.
    """
    codes = np.asarray(codes, dtype=np.int64).reshape(-1)
    if escape_mask is None:
        escape_mask = np.zeros(codes.shape, dtype=bool)
    escape_mask = np.asarray(escape_mask, dtype=bool).reshape(-1)
    if codes.size != escape_mask.size:
        raise InvalidArgumentError("codes and escape mask must align")
    if codes.size and (np.abs(codes).max() >= QUANT_RADIUS):
        raise InvalidArgumentError("bin code outside representable range")
    symbols = codes + QUANT_RADIUS
    symbols[escape_mask] = ESCAPE

    freqs = np.bincount(symbols, minlength=2 * QUANT_RADIUS)
    code_book = huffman.build_code(freqs)
    payload, nbits = huffman.encode(symbols, code_book) if symbols.size else (b"", 0)
    book = huffman.serialize_code(code_book)
    raw = (
        struct.pack("<QQI", codes.size, nbits, len(book))
        + book
        + payload
    )
    return lossless.compress(raw, method="auto")


def decode_bins(payload: bytes) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`encode_bins`; returns ``(codes, escape_mask)``."""
    raw = lossless.decompress(payload)
    if len(raw) < 20:
        raise StreamFormatError("truncated bin stream")
    n, nbits, book_len = struct.unpack("<QQI", raw[:20])
    code_book, consumed = huffman.deserialize_code(raw[20:])
    if consumed != book_len:
        raise StreamFormatError("bin stream code book length mismatch")
    if n == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=bool)
    # Untrusted counts: a Huffman code spends at least one bit per symbol
    # and the stream cannot hold more bits than bytes remain, so anything
    # outside those bounds is corruption — reject before allocating ``n``
    # output symbols.
    if nbits > 8 * (len(raw) - 20 - consumed) or n > nbits:
        raise StreamFormatError(
            f"bin stream declares {n} symbols / {nbits} bits in "
            f"{len(raw) - 20 - consumed} bytes"
        )
    symbols = huffman.decode(raw[20 + consumed :], int(nbits), int(n), code_book)
    escape_mask = symbols == ESCAPE
    codes = symbols - QUANT_RADIUS
    codes[escape_mask] = 0
    return codes, escape_mask
