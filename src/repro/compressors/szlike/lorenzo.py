"""First-order Lorenzo prediction (the classic SZ predictor).

Before SZ3's interpolation scheme, the SZ family's workhorse (Tao et
al., IPDPS 2017 — reference [6] of the SPERR paper) was the Lorenzo
predictor: each point is predicted from its already-reconstructed
lower-index neighbours by inclusion–exclusion,

    2-D:  p[i,j]   = r[i-1,j] + r[i,j-1] - r[i-1,j-1]
    3-D:  p[i,j,k] = r[i-1,..] + r[.,j-1,.] + r[..,k-1]
                   - r[i-1,j-1,.] - r[i-1,.,k-1] - r[.,j-1,k-1]
                   + r[i-1,j-1,k-1]

(out-of-range neighbours read as zero).  The recurrence is sequential in
raster order, but every point on an anti-diagonal *wavefront*
``i + j + k = s`` depends only on wavefronts ``< s`` — so the predictor
vectorizes wavefront by wavefront, which is how this implementation
stays numpy-speed.

Residuals go through the same linear-scaling quantizer and bin codec as
the interpolation path; the reconstruction loop uses dequantized values,
so the point-wise error bound is strict.
"""

from __future__ import annotations

import numpy as np

from ...errors import InvalidArgumentError
from . import codec

__all__ = ["wavefronts", "lorenzo_encode", "lorenzo_decode"]

#: neighbour offsets and inclusion-exclusion signs per rank
_STENCILS = {
    1: (((-1,), 1.0),),
    2: (((-1, 0), 1.0), ((0, -1), 1.0), ((-1, -1), -1.0)),
    3: (
        ((-1, 0, 0), 1.0),
        ((0, -1, 0), 1.0),
        ((0, 0, -1), 1.0),
        ((-1, -1, 0), -1.0),
        ((-1, 0, -1), -1.0),
        ((0, -1, -1), -1.0),
        ((-1, -1, -1), 1.0),
    ),
}


def wavefronts(shape: tuple[int, ...]) -> list[tuple[np.ndarray, ...]]:
    """Index arrays of each anti-diagonal ``sum(coords) = s``, ascending.

    Every point appears exactly once; within a wavefront points are in
    C-order, giving both sides a shared deterministic traversal.
    """
    if len(shape) not in _STENCILS:
        raise InvalidArgumentError("lorenzo supports 1-D to 3-D arrays")
    coords = np.indices(shape).reshape(len(shape), -1)
    s = coords.sum(axis=0)
    order = np.argsort(s, kind="stable")
    sorted_s = s[order]
    boundaries = np.flatnonzero(np.diff(sorted_s)) + 1
    groups = np.split(order, boundaries)
    return [tuple(coords[ax][g] for ax in range(len(shape))) for g in groups]


def _predict(recon_padded: np.ndarray, front: tuple[np.ndarray, ...]) -> np.ndarray:
    """Lorenzo prediction for one wavefront from the padded reconstruction."""
    nd = len(front)
    pred = np.zeros(front[0].size, dtype=np.float64)
    for offsets, sign in _STENCILS[nd]:
        idx = tuple(front[ax] + 1 + offsets[ax] for ax in range(nd))
        pred += sign * recon_padded[idx]
    return pred


def lorenzo_encode(
    data: np.ndarray, tolerance: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Predict + quantize the whole array.

    Returns ``(codes, escape_mask, wide_codes, exact_values)`` in
    wavefront order; the caller entropy-codes them.  ``wide_codes`` are
    int32 escape residual codes with INT32_MAX marking entries whose
    exact float64 value follows in ``exact_values``.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim not in _STENCILS:
        raise InvalidArgumentError("lorenzo supports 1-D to 3-D arrays")
    padded = np.zeros(tuple(n + 1 for n in data.shape), dtype=np.float64)
    inner = tuple(slice(1, None) for _ in data.shape)

    all_codes = []
    all_escapes = []
    all_wide = []
    all_exact = []
    for front in wavefronts(data.shape):
        pred = _predict(padded, front)
        target = data[front]
        codes, escape = codec.quantize_residuals(target - pred, tolerance)
        rec = pred + codec.dequantize_codes(codes, tolerance)
        bad = np.abs(target - rec) > tolerance
        escape |= bad
        codes[escape] = 0
        if escape.any():
            raw = np.rint((target[escape] - pred[escape]) / (2.0 * tolerance))
            overflow = np.abs(raw) >= 2**31 - 1
            wide = np.clip(raw, -(2**31) + 2, 2**31 - 2).astype(np.int64)
            rec_esc = pred[escape] + wide.astype(np.float64) * (2.0 * tolerance)
            overflow |= np.abs(target[escape] - rec_esc) > tolerance
            if overflow.any():
                rec_esc[overflow] = target[escape][overflow]
                wide[overflow] = 2**31 - 1
                all_exact.append(target[escape][overflow])
            rec[escape] = rec_esc
            all_wide.append(wide.astype(np.int32))
        fidx = tuple(front[ax] + 1 for ax in range(data.ndim))
        padded[fidx] = rec
        all_codes.append(codes)
        all_escapes.append(escape)

    cat = lambda parts, dtype: (  # noqa: E731
        np.concatenate(parts) if parts else np.zeros(0, dtype=dtype)
    )
    return (
        cat(all_codes, np.int64),
        cat(all_escapes, bool),
        cat(all_wide, np.int32),
        cat(all_exact, np.float64),
    )


def lorenzo_decode(
    shape: tuple[int, ...],
    tolerance: float,
    codes: np.ndarray,
    escape: np.ndarray,
    wide: np.ndarray,
    exact: np.ndarray,
) -> np.ndarray:
    """Mirror of :func:`lorenzo_encode`."""
    padded = np.zeros(tuple(n + 1 for n in shape), dtype=np.float64)
    pos = 0
    wide_pos = 0
    exact_pos = 0
    for front in wavefronts(shape):
        n = front[0].size
        pred = _predict(padded, front)
        c = codes[pos : pos + n]
        e = escape[pos : pos + n]
        pos += n
        rec = pred + codec.dequantize_codes(c, tolerance)
        k = int(e.sum())
        if k:
            w = wide[wide_pos : wide_pos + k].astype(np.int64)
            wide_pos += k
            vals = pred[e] + w.astype(np.float64) * (2.0 * tolerance)
            overflow = w == 2**31 - 1
            m = int(overflow.sum())
            if m:
                vals[overflow] = exact[exact_pos : exact_pos + m]
                exact_pos += m
            rec[e] = vals
        fidx = tuple(front[ax] + 1 for ax in range(len(shape)))
        padded[fidx] = rec
    return padded[tuple(slice(1, None) for _ in shape)]
