"""Multi-level interpolation predictor (the SZ3-Interp scheme).

SZ3's flagship predictor (Zhao et al., ICDE 2021 — reference [5] of the
SPERR paper) reconstructs a field level by level on a dyadic grid: at
each level, points midway between already-reconstructed grid points are
predicted by linear or cubic spline interpolation *along one axis at a
time*.  Because every prediction depends only on coarser-level
reconstructed values, each step vectorizes over all points of that step —
which is what makes this baseline fast in pure numpy.

The schedule (which points are predicted when, and from which neighbors)
is a pure function of the array shape, so encoder and decoder replay it
in lock-step without any side channel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import InvalidArgumentError

__all__ = ["InterpStep", "interpolation_schedule", "coarse_indices", "predict"]


@dataclass(frozen=True)
class InterpStep:
    """One vectorized prediction step.

    ``grids`` are per-axis index vectors (combined with ``np.ix_``);
    ``axis`` is the interpolation axis; ``stride`` the half-distance to
    the predictor neighbors along that axis.
    """

    level_stride: int
    axis: int
    grids: tuple[np.ndarray, ...]
    stride: int


def _smax(shape: tuple[int, ...]) -> int:
    n = max(shape)
    s = 1
    while s < n:
        s *= 2
    return max(s, 2)


def coarse_indices(shape: tuple[int, ...]) -> tuple[np.ndarray, ...]:
    """Per-axis indices of the coarsest (stored raw) grid points."""
    s = _smax(shape)
    return tuple(np.arange(0, n, s) for n in shape)


def interpolation_schedule(shape: tuple[int, ...]) -> list[InterpStep]:
    """Deterministic list of prediction steps from coarsest to finest."""
    if any(n < 1 for n in shape):
        raise InvalidArgumentError(f"invalid shape {shape}")
    steps: list[InterpStep] = []
    s = _smax(shape)
    while s >= 2:
        h = s // 2
        for axis in range(len(shape)):
            grids = []
            for j, n in enumerate(shape):
                if j < axis:
                    grids.append(np.arange(0, n, h))
                elif j == axis:
                    grids.append(np.arange(h, n, s))
                else:
                    grids.append(np.arange(0, n, s))
            if all(g.size > 0 for g in grids):
                steps.append(
                    InterpStep(level_stride=s, axis=axis, grids=tuple(grids), stride=h)
                )
        s = h
    return steps


def predict(recon: np.ndarray, step: InterpStep, kind: str = "cubic") -> np.ndarray:
    """Predict the values of one step's target points from ``recon``.

    Linear prediction averages the two axis neighbors at ``±stride``;
    cubic uses the 4-point spline ``(-1, 9, 9, -1)/16`` where the outer
    neighbors exist, degrading gracefully to linear and then to
    constant extrapolation at the boundary.
    """
    if kind not in ("linear", "cubic"):
        raise InvalidArgumentError(f"unknown interpolation kind {kind!r}")
    axis = step.axis
    h = step.stride
    t = step.grids[axis]
    n = recon.shape[axis]

    def gather(coords_along_axis: np.ndarray) -> np.ndarray:
        grids = list(step.grids)
        grids[axis] = coords_along_axis
        return recon[np.ix_(*grids)]

    left = gather(t - h)  # always valid: t starts at h
    has_right = t + h <= n - 1
    right = gather(np.minimum(t + h, n - 1))

    pred = 0.5 * (left + right)
    if kind == "cubic":
        has_ll = t - 3 * h >= 0
        has_rr = t + 3 * h <= n - 1
        ll = gather(np.maximum(t - 3 * h, 0))
        rr = gather(np.minimum(t + 3 * h, n - 1))
        cubic = (-ll + 9.0 * left + 9.0 * right - rr) / 16.0
        use_cubic = has_ll & has_rr & has_right
        shape_mask = [1] * recon.ndim
        shape_mask[axis] = t.size
        mask = use_cubic.reshape(shape_mask)
        pred = np.where(mask, cubic, pred)

    # Targets lacking a right neighbor fall back to the left value.
    shape_mask = [1] * recon.ndim
    shape_mask[axis] = t.size
    no_right = (~has_right).reshape(shape_mask)
    pred = np.where(no_right, left, pred)
    return pred
