"""SZ3-like prediction-based error-bounded compressor."""

from .codec import QUANT_RADIUS, decode_bins, dequantize_codes, encode_bins, quantize_residuals
from .interp import InterpStep, coarse_indices, interpolation_schedule, predict
from .sz3 import SzLikeCompressor

__all__ = [
    "SzLikeCompressor",
    "QUANT_RADIUS",
    "encode_bins",
    "decode_bins",
    "quantize_residuals",
    "dequantize_codes",
    "InterpStep",
    "interpolation_schedule",
    "coarse_indices",
    "predict",
]
