"""The SZ-like error-bounded compressor (SZ3-Interp reimplementation).

Pipeline: multi-level interpolation prediction on reconstructed values →
linear-scaling quantization of residuals (error <= t) → Huffman-coded
bins → lossless backend.  Unpredictable points (bin overflow) and the
coarsest grid are stored exactly, so the point-wise error bound is
strict, as with real SZ3's absolute error mode.
"""

from __future__ import annotations

import struct

import numpy as np

from ...core.modes import PweMode
from ...errors import InvalidArgumentError, StreamFormatError
from ..base import Compressor, Mode, checked_shape, decode_guard
from . import codec
from .interp import coarse_indices, interpolation_schedule, predict
from .lorenzo import lorenzo_decode, lorenzo_encode

__all__ = ["SzLikeCompressor"]

_MAGIC = b"SZLK"


_PREDICTOR_CODES = {"linear": 0, "cubic": 1, "lorenzo": 2}
_PREDICTOR_NAMES = {v: k for k, v in _PREDICTOR_CODES.items()}


class SzLikeCompressor(Compressor):
    """Error-bounded prediction compressor in the style of SZ3.

    ``interpolation`` selects the predictor: ``"cubic"`` / ``"linear"``
    are SZ3's multilevel interpolation (the default and flagship);
    ``"lorenzo"`` is the classic first-order Lorenzo predictor of the
    earlier SZ generations (see :mod:`repro.compressors.szlike.lorenzo`).
    """

    name = "sz-like"
    supported_modes = (PweMode,)

    def __init__(self, interpolation: str = "cubic") -> None:
        if interpolation not in _PREDICTOR_CODES:
            raise InvalidArgumentError(
                "interpolation must be 'linear', 'cubic', or 'lorenzo'"
            )
        self.interpolation = interpolation

    def compress(self, data: np.ndarray, mode: Mode) -> bytes:
        """Predict, quantize (error <= t), and entropy-code the residuals."""
        self.check_mode(mode)
        assert isinstance(mode, PweMode)
        data = np.asarray(data, dtype=np.float64)
        if data.ndim < 1 or data.ndim > 3:
            raise InvalidArgumentError("SZ-like supports 1-D to 3-D arrays")
        if not np.all(np.isfinite(data)):
            raise InvalidArgumentError("input contains NaN or Inf")
        t = mode.tolerance

        if self.interpolation == "lorenzo":
            return self._compress_lorenzo(data, t)

        recon = np.zeros_like(data)
        coarse = coarse_indices(data.shape)
        coarse_vals = data[np.ix_(*coarse)]
        recon[np.ix_(*coarse)] = coarse_vals

        all_codes: list[np.ndarray] = []
        all_escapes: list[np.ndarray] = []
        wide_codes: list[np.ndarray] = []
        for step in interpolation_schedule(data.shape):
            pred = predict(recon, step, kind=self.interpolation)
            target = data[np.ix_(*step.grids)]
            codes, escape = codec.quantize_residuals(target - pred, t)
            rec = pred + codec.dequantize_codes(codes, t)
            # Floating-point rounding in `pred + code*2t` can push an error
            # epsilon past the bound; promote such points to the escape path
            # so the guarantee stays strict.
            escape |= np.abs(target - rec) > t
            codes[escape] = 0
            if escape.any():
                # Unpredictable points: a wider (int32) residual code keeps
                # the error bound at a fraction of raw-float storage cost.
                # The rare residual beyond even the int32 code range (seen
                # only at the coarsest levels under trillionth-of-range
                # tolerances) is stored exactly: the marker code INT32_MAX
                # is followed by the value's float64 bit pattern packed as
                # two extra int32 words, in escape order.
                raw_res = target[escape] - pred[escape]
                wide = np.rint(raw_res / (2.0 * t))
                overflow = np.abs(wide) >= 2**31 - 1
                wide = np.clip(wide, -(2**31) + 2, 2**31 - 2).astype(np.int64)
                rec_esc = pred[escape] + wide.astype(np.float64) * (2.0 * t)
                # Same fp-rounding guard on the wide path: store exactly.
                overflow |= np.abs(target[escape] - rec_esc) > t
                if overflow.any():
                    exact = target[escape][overflow]
                    rec_esc[overflow] = exact
                    wide[overflow] = 2**31 - 1
                    extra = np.frombuffer(exact.astype("<f8").tobytes(), dtype="<i4")
                    wide = np.concatenate([wide, extra.astype(np.int64)])
                rec[escape] = rec_esc
                wide_codes.append(wide.astype(np.int32))
            recon[np.ix_(*step.grids)] = rec
            all_codes.append(codes.reshape(-1))
            all_escapes.append(escape.reshape(-1))

        codes_flat = (
            np.concatenate(all_codes) if all_codes else np.zeros(0, dtype=np.int64)
        )
        escapes_flat = (
            np.concatenate(all_escapes) if all_escapes else np.zeros(0, dtype=bool)
        )
        bins_payload = codec.encode_bins(codes_flat, escapes_flat)
        from ... import lossless as _lossless

        raw_payload = _lossless.compress(
            np.concatenate(wide_codes).astype("<i4").tobytes() if wide_codes else b"",
            method="auto",
        )
        coarse_payload = coarse_vals.astype(np.float64).tobytes()

        head = _MAGIC + struct.pack("<Bd", data.ndim, t)
        head += struct.pack(f"<{data.ndim}Q", *data.shape)
        head += bytes([_PREDICTOR_CODES[self.interpolation]])
        head += struct.pack("<QQQ", len(coarse_payload), len(raw_payload), len(bins_payload))
        return head + coarse_payload + raw_payload + bins_payload

    def _compress_lorenzo(self, data: np.ndarray, t: float) -> bytes:
        """Lorenzo path: the three section slots carry (exact values,
        wide escape codes, bin codes) instead of (coarse grid, wide
        codes, bin codes)."""
        from ... import lossless as _lossless

        codes, escape, wide, exact = lorenzo_encode(data, t)
        bins_payload = codec.encode_bins(codes, escape)
        wide_payload = _lossless.compress(wide.astype("<i4").tobytes(), method="auto")
        exact_payload = _lossless.compress(exact.astype("<f8").tobytes(), method="auto")

        head = _MAGIC + struct.pack("<Bd", data.ndim, t)
        head += struct.pack(f"<{data.ndim}Q", *data.shape)
        head += bytes([_PREDICTOR_CODES["lorenzo"]])
        head += struct.pack(
            "<QQQ", len(exact_payload), len(wide_payload), len(bins_payload)
        )
        return head + exact_payload + wide_payload + bins_payload

    def decompress(self, payload: bytes) -> np.ndarray:
        """Replay the prediction schedule with decoded residuals."""
        if payload[:4] != _MAGIC:
            raise StreamFormatError("not an SZ-like payload")
        with decode_guard(self.name):
            return self._decompress_body(payload)

    def _decompress_body(self, payload: bytes) -> np.ndarray:
        pos = 4
        ndim, t = struct.unpack_from("<Bd", payload, pos)
        pos += struct.calcsize("<Bd")
        shape = struct.unpack_from(f"<{ndim}Q", payload, pos)
        pos += 8 * ndim
        predictor_code = payload[pos]
        if predictor_code not in _PREDICTOR_NAMES:
            raise StreamFormatError(f"unknown predictor code {predictor_code}")
        interpolation = _PREDICTOR_NAMES[predictor_code]
        pos += 1
        n_coarse, n_raw, n_bins = struct.unpack_from("<QQQ", payload, pos)
        pos += 24
        coarse_payload = payload[pos : pos + n_coarse]
        pos += n_coarse
        raw_payload = payload[pos : pos + n_raw]
        pos += n_raw
        bins_payload = payload[pos : pos + n_bins]

        shape = checked_shape(shape, self.name)
        npoints = int(np.prod(shape))
        if interpolation == "lorenzo":
            from ... import lossless as _lossless

            codes, escape = codec.decode_bins(bins_payload)
            if codes.size != npoints:
                raise StreamFormatError(
                    f"SZ-like payload carries {codes.size} quantization codes "
                    f"for {npoints} points"
                )
            wide = np.frombuffer(_lossless.decompress(raw_payload), dtype="<i4")
            exact = np.frombuffer(_lossless.decompress(coarse_payload), dtype="<f8")
            return lorenzo_decode(shape, t, codes, escape, wide, exact)

        recon = np.zeros(shape, dtype=np.float64)
        coarse = coarse_indices(shape)
        coarse_shape = tuple(g.size for g in coarse)
        coarse_vals = np.frombuffer(coarse_payload, dtype=np.float64).reshape(coarse_shape)
        recon[np.ix_(*coarse)] = coarse_vals

        codes_flat, escapes_flat = codec.decode_bins(bins_payload)
        n_coarse = int(np.prod([len(g) for g in coarse]))
        if codes_flat.size != npoints - n_coarse:
            raise StreamFormatError(
                f"SZ-like payload carries {codes_flat.size} quantization "
                f"codes for {npoints - n_coarse} predicted points"
            )
        from ... import lossless as _lossless

        wide_vals = np.frombuffer(_lossless.decompress(raw_payload), dtype="<i4")
        code_pos = 0
        wide_pos = 0
        for step in interpolation_schedule(shape):
            pred = predict(recon, step, kind=interpolation)
            n = pred.size
            codes = codes_flat[code_pos : code_pos + n].reshape(pred.shape)
            escape = escapes_flat[code_pos : code_pos + n].reshape(pred.shape)
            code_pos += n
            rec = pred + codec.dequantize_codes(codes, t)
            k = int(escape.sum())
            if k:
                wide = wide_vals[wide_pos : wide_pos + k].astype(np.int64)
                wide_pos += k
                vals = pred[escape] + wide.astype(np.float64) * (2.0 * t)
                overflow = wide == 2**31 - 1
                n_over = int(overflow.sum())
                if n_over:
                    extra = wide_vals[wide_pos : wide_pos + 2 * n_over]
                    wide_pos += 2 * n_over
                    exact = np.frombuffer(extra.astype("<i4").tobytes(), dtype="<f8")
                    vals[overflow] = exact
                rec[escape] = vals
            recon[np.ix_(*step.grids)] = rec
        if code_pos != codes_flat.size:
            raise StreamFormatError("SZ-like payload has trailing bin codes")
        return recon
