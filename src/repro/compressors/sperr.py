"""SPERR wrapped in the uniform :class:`Compressor` interface so the
comparison harness can drive it alongside the baselines."""

from __future__ import annotations

import numpy as np

from ..core import compress as core_compress
from ..core import decompress as core_decompress
from ..core.modes import PweMode, SizeMode
from .base import Compressor, Mode

__all__ = ["SperrCompressor"]


class SperrCompressor(Compressor):
    """The paper's compressor: wavelets + SPECK + outlier coding."""

    name = "sperr"
    supported_modes = (PweMode, SizeMode)

    def __init__(
        self,
        chunk_shape: int | tuple[int, ...] | None = None,
        wavelet: str = "cdf97",
        lossless_method: str = "auto",
        executor: str = "batch",
        workers: int | None = None,
    ) -> None:
        self.chunk_shape = chunk_shape
        self.wavelet = wavelet
        self.lossless_method = lossless_method
        self.executor = executor
        self.workers = workers
        #: per-chunk reports from the most recent :meth:`compress` call
        self.last_reports = []
        #: degradation notes from the most recent :meth:`compress` call
        self.last_notes = []

    def compress(self, data: np.ndarray, mode: Mode) -> bytes:
        """Run the SPERR pipeline; per-chunk reports land in last_reports."""
        self.check_mode(mode)
        result = core_compress(
            data,
            mode,  # type: ignore[arg-type]
            chunk_shape=self.chunk_shape,
            wavelet=self.wavelet,
            lossless_method=self.lossless_method,
            executor=self.executor,
            workers=self.workers,
        )
        self.last_reports = result.reports
        self.last_notes = result.notes
        return result.payload

    def decompress(self, payload: bytes) -> np.ndarray:
        """Decompress a SPERR container."""
        return core_decompress(
            payload, executor=self.executor, workers=self.workers
        )
