"""TTHRESH-like Tucker-decomposition compressor (PSNR-targeted)."""

from .tthresh import TthreshLikeCompressor
from .tucker import hosvd, mode_product, tucker_reconstruct

__all__ = ["TthreshLikeCompressor", "hosvd", "tucker_reconstruct", "mode_product"]
