"""TTHRESH-like compressor: Tucker core + bitplane coding, PSNR-targeted.

Matches the evaluation-relevant traits of TTHRESH (paper Sec. VI):

* accepts only an average-error target (:class:`PsnrMode`) — no PWE mode,
  exactly why Fig. 9 excludes it;
* data-dependent orthogonal bases (HOSVD) make it strong at low rates on
  smooth data and expensive at high rates: the factor matrices must be
  stored at a precision matching the error target, so tight targets pay
  a large constant cost (the paper observes TTHRESH "starts to use
  significantly more bits" at tight tolerances);
* the core tensor is coded bitplane-by-bitplane (we reuse the SPECK
  machinery — TTHRESH's own coder is also a sorted bitplane scheme).

The quantization step for the core is calibrated by bisection against
the requested RMSE, exploiting the orthogonality of the factors
(coefficient-domain L2 error == data-domain L2 error).
"""

from __future__ import annotations

import math
import struct

import numpy as np

from ...errors import InvalidArgumentError, StreamFormatError
from ...quant import calibrate_step
from ...speck import decode_coefficients, encode_coefficients
from ..base import Compressor, Mode, PsnrMode, checked_shape, decode_guard
from .tucker import hosvd, tucker_reconstruct

__all__ = ["TthreshLikeCompressor"]

_MAGIC = b"TTHL"
#: beyond this PSNR target, float32 factor storage would dominate the error
_F32_PSNR_LIMIT = 120.0


class TthreshLikeCompressor(Compressor):
    """Tucker-decomposition compressor with an average-error (PSNR) target."""

    name = "tthresh-like"
    supported_modes = (PsnrMode,)

    def compress(self, data: np.ndarray, mode: Mode) -> bytes:
        """HOSVD, then bitplane-code the core at a PSNR-calibrated step."""
        self.check_mode(mode)
        assert isinstance(mode, PsnrMode)
        data = np.asarray(data, dtype=np.float64)
        if data.ndim < 1 or data.ndim > 3:
            raise InvalidArgumentError("tthresh-like supports 1-D to 3-D arrays")
        if not np.all(np.isfinite(data)):
            raise InvalidArgumentError("input contains NaN or Inf")
        rng = float(data.max() - data.min())
        if rng == 0.0:
            rng = max(1.0, abs(float(data.flat[0])))
        target_rmse = rng / (10.0 ** (mode.psnr_db / 20.0))

        core, factors = hosvd(data)
        q = calibrate_step(core, target_rmse)
        stream, nbits, _, _ = encode_coefficients(core, q)

        factor_dtype = "<f4" if mode.psnr_db <= _F32_PSNR_LIMIT else "<f8"
        factor_payload = b"".join(u.astype(factor_dtype).tobytes() for u in factors)

        head = _MAGIC + struct.pack(
            "<BBdQd", data.ndim, 0 if factor_dtype == "<f4" else 1, q, nbits,
            mode.psnr_db,
        )
        head += struct.pack(f"<{data.ndim}Q", *data.shape)
        # factor matrices need not be square: mode-k factor is
        # (n_k, min(n_k, prod other dims)), so record both extents
        for u in factors:
            head += struct.pack("<QQ", *u.shape)
        head += struct.pack("<Q", len(factor_payload))
        return head + factor_payload + stream

    def decompress(self, payload: bytes) -> np.ndarray:
        """Decode the core and reconstruct through the stored factors."""
        if payload[:4] != _MAGIC:
            raise StreamFormatError("not a tthresh-like payload")
        with decode_guard(self.name):
            return self._decompress_body(payload)

    def _decompress_body(self, payload: bytes) -> np.ndarray:
        pos = 4
        nd, wide, q, nbits, _psnr = struct.unpack_from("<BBdQd", payload, pos)
        pos += struct.calcsize("<BBdQd")
        if not 1 <= nd <= 3:
            raise StreamFormatError(f"tthresh-like payload declares rank {nd}")
        if wide not in (0, 1):
            raise StreamFormatError(f"unknown tthresh-like factor dtype {wide}")
        if not (math.isfinite(q) and q >= 0):
            raise StreamFormatError(f"invalid tthresh-like step {q!r}")
        shape = struct.unpack_from(f"<{nd}Q", payload, pos)
        pos += 8 * nd
        shape = checked_shape(shape, self.name)
        factor_shapes = []
        for i in range(nd):
            rows, cols = struct.unpack_from("<QQ", payload, pos)
            pos += 16
            # mode-i factor is (shape[i], min(shape[i], prod other dims)):
            # tie both extents to the declared data shape so a forged table
            # cannot size the factor matrices or the core arbitrarily.
            if rows != shape[i] or not 1 <= cols <= rows:
                raise StreamFormatError(
                    f"tthresh-like factor {i} shape ({rows}, {cols}) is "
                    f"inconsistent with data shape {shape}"
                )
            factor_shapes.append((int(rows), int(cols)))
        (fac_len,) = struct.unpack_from("<Q", payload, pos)
        pos += 8
        dtype = "<f8" if wide else "<f4"
        itemsize = 8 if wide else 4

        factors = []
        fpos = pos
        for rows, cols in factor_shapes:
            count = rows * cols
            chunk = payload[fpos : fpos + count * itemsize]
            # corrupt float32 bit patterns may not cast cleanly; the
            # values are garbage either way, so convert silently
            with np.errstate(invalid="ignore"):
                factors.append(
                    np.frombuffer(chunk, dtype=dtype)
                    .astype(np.float64)
                    .reshape(rows, cols)
                )
            fpos += count * itemsize
        if fpos - pos != fac_len:
            raise StreamFormatError("tthresh-like factor section length mismatch")

        stream = payload[pos + fac_len :]
        core_shape = tuple(cols for _, cols in factor_shapes)
        core = decode_coefficients(stream, core_shape, q, nbits=int(nbits))
        return tucker_reconstruct(core, factors)
