"""Tucker (HOSVD) decomposition for the TTHRESH-like compressor.

TTHRESH (Ballester-Ripoll et al., TVCG 2019 — reference [18] of the
SPERR paper) is the one comparison compressor with *data-dependent*
bases: it computes a higher-order SVD of the volume and bitplane-codes
the core tensor.  The factor matrices are orthogonal, so L2 error in the
core equals L2 error in the reconstruction — the property the codec's
PSNR targeting relies on.
"""

from __future__ import annotations

import numpy as np

from ...errors import InvalidArgumentError

__all__ = ["hosvd", "tucker_reconstruct", "mode_product"]


def _unfold(tensor: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``mode`` unfolding: axis ``mode`` becomes the rows."""
    return np.moveaxis(tensor, mode, 0).reshape(tensor.shape[mode], -1)


def mode_product(tensor: np.ndarray, matrix: np.ndarray, mode: int) -> np.ndarray:
    """n-mode product ``tensor x_mode matrix``."""
    moved = np.moveaxis(tensor, mode, 0)
    shape = moved.shape
    out = matrix @ moved.reshape(shape[0], -1)
    return np.moveaxis(out.reshape((matrix.shape[0],) + shape[1:]), 0, mode)


def hosvd(tensor: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
    """Full higher-order SVD; returns ``(core, factors)``.

    ``core`` has the same shape as the input; ``factors[k]`` is the
    orthogonal basis of mode ``k`` (columns = left singular vectors).
    Reconstruction: ``tucker_reconstruct(core, factors)``.
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    if tensor.ndim < 1 or tensor.ndim > 3:
        raise InvalidArgumentError("hosvd supports 1-D to 3-D tensors")
    factors: list[np.ndarray] = []
    for mode in range(tensor.ndim):
        unfolding = _unfold(tensor, mode)
        u, _, _ = np.linalg.svd(unfolding, full_matrices=False)
        factors.append(u)
    core = tensor
    for mode, u in enumerate(factors):
        core = mode_product(core, u.T, mode)
    return core, factors


def tucker_reconstruct(core: np.ndarray, factors: list[np.ndarray]) -> np.ndarray:
    """Inverse of :func:`hosvd` (exact up to floating-point round-off)."""
    out = core
    for mode, u in enumerate(factors):
        out = mode_product(out, u, mode)
    return out
