"""The five compressors of the paper's comparison study (Sec. VI-A):
SPERR plus reimplemented SZ3-, ZFP-, TTHRESH-, and MGARD-like baselines."""

from .base import Compressor, Mode, PsnrMode, psnr_target_for_idx
from .chunked import ChunkedCompressor
from .masked import MaskedCompressor
from .mgardlike import MgardLikeCompressor
from .sperr import SperrCompressor
from .szlike import SzLikeCompressor
from .szxlike import SzxLikeCompressor
from .tthreshlike import TthreshLikeCompressor
from .zfplike import ZfpLikeCompressor

#: Registry used by the analysis harness and CLI.
ALL_COMPRESSORS = {
    "sperr": SperrCompressor,
    "sz-like": SzLikeCompressor,
    "szx-like": SzxLikeCompressor,
    "zfp-like": ZfpLikeCompressor,
    "tthresh-like": TthreshLikeCompressor,
    "mgard-like": MgardLikeCompressor,
}

__all__ = [
    "ALL_COMPRESSORS",
    "ChunkedCompressor",
    "MaskedCompressor",
    "Compressor",
    "Mode",
    "PsnrMode",
    "psnr_target_for_idx",
    "SperrCompressor",
    "SzLikeCompressor",
    "SzxLikeCompressor",
    "ZfpLikeCompressor",
    "TthreshLikeCompressor",
    "MgardLikeCompressor",
]
