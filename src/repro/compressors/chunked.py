"""Chunk-parallel execution for any compressor.

The paper benchmarks every comparison compressor with OpenMP enabled
(Sec. VI-D runs all five with four threads).  SPERR's chunking is built
into its core; the baselines' reference implementations parallelize
block-wise internally.  This wrapper gives our baseline reimplementations
the equivalent capability: tile the volume, compress tiles through the
shared executor, frame the results in a small container.

Error-bound semantics are preserved exactly — each chunk satisfies the
same per-point criterion, so the assembled volume does too.  The rate
cost of chunk boundaries mirrors what the paper's Fig. 5 documents for
SPERR.

Framing is versioned like the main container: ``CHK2`` payloads carry a
header CRC32 and per-chunk CRC32s; legacy ``CHNK`` payloads (no CRCs)
remain readable.  ``CHK3`` adds an input dtype code and an optional
non-finite mask section (:mod:`repro.core.mask`) and is emitted only
when the input is float32 or carries NaN/Inf samples — float64 finite
inputs keep producing byte-identical ``CHK2`` payloads.
:meth:`ChunkedCompressor.decompress` supports the same
``on_error="salvage"`` fault-isolation mode as
:func:`repro.core.container.decompress`.
"""

from __future__ import annotations

import math
import struct
import zlib
from functools import partial

import numpy as np

from ..core.chunking import Chunk, assemble, plan_chunks
from ..core.container import (
    MAX_TOTAL_POINTS,
    ChunkDecodeStatus,
    DecodeReport,
    DecodeResult,
)
from ..core.parallel import map_chunk_arrays, robust_chunk_map
from ..obs import add_counter, span
from ..errors import (
    AllocationLimitError,
    IntegrityError,
    InvalidArgumentError,
    StreamFormatError,
)
from .base import Compressor, Mode

__all__ = ["ChunkedCompressor"]

_MAGIC_V1 = b"CHNK"
_MAGIC_V2 = b"CHK2"
_MAGIC_V3 = b"CHK3"

#: byte offset of the v2/v3 header-CRC field (right after the magic)
_HEADER_CRC_OFFSET = 4

_DTYPE_CODES = {np.dtype(np.float32): 0, np.dtype(np.float64): 1}
_DTYPE_BY_CODE = {v: k for k, v in _DTYPE_CODES.items()}


def _compress_part(part: np.ndarray, inner: Compressor, mode: Mode) -> bytes:
    """Module-level chunk job (picklable for the process executor)."""
    return inner.compress(part, mode)


def _salvage_part(
    item: tuple[bytes, tuple[int, ...], int | None], inner: Compressor
) -> tuple[str, np.ndarray | str]:
    """Salvage-mode tile job: CRC check + decode, never raises."""
    stream, expected_shape, crc = item
    if crc is not None and zlib.crc32(stream) != crc:
        return ("crc_mismatch", f"chunk CRC mismatch (stored {crc:#010x})")
    try:
        out = inner.decompress(stream)
        if tuple(out.shape) != tuple(expected_shape):
            return (
                "decode_error",
                f"tile decoded to shape {tuple(out.shape)}, bounds say "
                f"{tuple(expected_shape)}",
            )
        return ("ok", out)
    except Exception as exc:  # noqa: BLE001 - isolation boundary by design
        return ("decode_error", f"{type(exc).__name__}: {exc}")


class ChunkedCompressor(Compressor):
    """Tile-and-parallelize adapter around any :class:`Compressor`."""

    def __init__(
        self,
        inner: Compressor,
        chunk_shape: int | tuple[int, ...],
        *,
        executor: str = "serial",
        workers: int | None = None,
    ) -> None:
        if isinstance(inner, ChunkedCompressor):
            raise InvalidArgumentError("refusing to nest chunked compressors")
        self.inner = inner
        self.chunk_shape = chunk_shape
        self.executor = executor
        self.workers = workers
        self.name = f"{inner.name}+chunks"
        self.supported_modes = inner.supported_modes
        #: degradation notes from the most recent :meth:`compress` call
        self.last_notes: list = []

    def compress(self, data: np.ndarray, mode: Mode) -> bytes:
        """Tile, compress tiles through the executor, frame the results.

        Non-finite samples are masked and filled at this boundary
        (:func:`repro.core.mask.sanitize_array`), so the inner codec —
        whichever baseline it is — only ever sees finite values; float32
        inputs round-trip as float32.  Both conditions switch the framing
        to ``CHK3``; float64 finite inputs keep the ``CHK2`` bytes.
        """
        from ..core.mask import (
            encode_mask,
            sanitize_array,
            tighten_pwe_for_dtype,
        )

        self.check_mode(mode)
        data = np.asarray(data)
        dtype = (
            np.dtype(np.float32)
            if data.dtype == np.float32
            else np.dtype(np.float64)
        )
        data, mask_codes, self.last_notes = sanitize_array(
            data.astype(dtype, copy=False)
        )
        mode = tighten_pwe_for_dtype(mode, data)
        data = np.asarray(data, dtype=np.float64)
        mask_blob = None if mask_codes is None else encode_mask(mask_codes)
        chunks = plan_chunks(data.shape, self.chunk_shape)
        # The process path ships the volume through shared memory once
        # (workers slice their own chunks); serial/thread slice in-process.
        with span(
            "chunked.compress",
            codec=self.inner.name,
            chunks=len(chunks),
            executor=self.executor,
        ):
            if self._can_batch(mode, chunks):
                payloads = self._compress_parts_batched(data, chunks, mode)
            else:
                payloads = map_chunk_arrays(
                    _compress_part,
                    data,
                    chunks,
                    args=(self.inner, mode),
                    executor=self.executor,
                    workers=self.workers,
                )
        add_counter("chunked.bytes_out", sum(len(p) for p in payloads))
        v3 = mask_blob is not None or dtype == np.float32
        head = bytearray()
        head += _MAGIC_V3 if v3 else _MAGIC_V2
        head += b"\x00\x00\x00\x00"  # header CRC, patched below
        head += struct.pack("<B", data.ndim)
        if v3:
            head += struct.pack("<B", _DTYPE_CODES[dtype])
        head += struct.pack(f"<{data.ndim}Q", *data.shape)
        head += struct.pack("<I", len(chunks))
        for chunk in chunks:
            for a, b in chunk.bounds:
                head += struct.pack("<QQ", a, b)
        for p in payloads:
            head += struct.pack("<Q", len(p))
        for p in payloads:
            head += struct.pack("<I", zlib.crc32(p))
        mask = mask_blob if mask_blob is not None else b""
        if v3:
            head += struct.pack("<QI", len(mask), zlib.crc32(mask))
        struct.pack_into("<I", head, _HEADER_CRC_OFFSET, zlib.crc32(bytes(head)))
        return bytes(head) + mask + b"".join(payloads)

    def _can_batch(self, mode: Mode, chunks: list[Chunk]) -> bool:
        """Whether the stacked-kernel path applies to this compress call.

        The SPERR inner compressor (itself un-chunked, so each tile is
        one SPERR chunk) has batched kernels for the PWE and size modes,
        and the SZx-style compressor runs all tiles through one stacked
        lane encode; everything else keeps the generic per-tile fan-out.
        """
        from ..core.modes import PweMode, SizeMode
        from .sperr import SperrCompressor
        from .szxlike import SzxLikeCompressor

        if self.executor != "batch" or len(chunks) < 2:
            return False
        if isinstance(self.inner, SzxLikeCompressor):
            return isinstance(mode, PweMode)
        return (
            isinstance(self.inner, SperrCompressor)
            and self.inner.chunk_shape is None
            and isinstance(mode, (PweMode, SizeMode))
        )

    def _compress_parts_batched(
        self, data: np.ndarray, chunks: list[Chunk], mode: Mode
    ) -> list[bytes]:
        """Compress all tiles through the shape-grouped stacked kernels.

        Each tile's payload is the same single-chunk SPERR container that
        ``inner.compress(tile, mode)`` would build, byte for byte: the
        batched kernel output is byte-identical to the serial chunk
        stream, and the framing below mirrors ``core.compress`` with
        ``chunk_shape=None``.
        """
        from ..core.batch import compress_chunks_batched
        from ..core.container import build_container
        from ..core.modes import PweMode
        from .szxlike import SzxLikeCompressor

        inner = self.inner
        if isinstance(inner, SzxLikeCompressor):
            # One stacked lane-encode across every tile; each lane's
            # stream (and so each SZXF frame) is byte-identical to
            # ``inner.compress(tile, mode)`` on the already-sanitized
            # float64 tiles this method receives.
            from .szxlike.codec import encode_chunks

            parts = [
                np.ascontiguousarray(data[chunk.slices()]) for chunk in chunks
            ]
            with span("szx.encode", n_chunks=len(parts)):
                streams = encode_chunks(parts, mode.tolerance)
            return [
                inner.frame_stream(stream, part.ndim)
                for stream, part in zip(streams, parts)
            ]
        results = compress_chunks_batched(
            data,
            chunks,
            mode,
            wavelet=inner.wavelet,
            levels=None,
            lossless_method=inner.lossless_method,
        )
        mode_code = 0 if isinstance(mode, PweMode) else 1
        payloads = []
        for chunk, (packed, report) in zip(chunks, results):
            payload = build_container(
                len(chunk.shape),
                np.dtype(np.float64),
                mode_code,
                chunk.shape,
                plan_chunks(chunk.shape, None),
                [packed],
            )
            add_counter("container.bytes", len(payload))
            payloads.append(payload)
            inner.last_reports = [report]
        return payloads

    def _parse(
        self, payload: bytes
    ) -> tuple[
        int,
        tuple[int, ...],
        list[Chunk],
        list[bytes],
        list[int | None],
        np.dtype,
        bytes | None,
        int | None,
    ]:
        """Decode the tile framing (v1–v3) without touching tile payloads."""
        if payload[:4] == _MAGIC_V1:
            version = 1
        elif payload[:4] == _MAGIC_V2:
            version = 2
        elif payload[:4] == _MAGIC_V3:
            version = 3
        else:
            raise StreamFormatError("not a chunked-compressor payload")
        pos = 4
        dtype = np.dtype(np.float64)
        mask_blob: bytes | None = None
        mask_crc: int | None = None
        try:
            stored_crc = None
            if version >= 2:
                (stored_crc,) = struct.unpack_from("<I", payload, pos)
                pos += 4
            (rank,) = struct.unpack_from("<B", payload, pos)
            pos += 1
            if rank < 1 or rank > 3:
                raise StreamFormatError(f"invalid rank {rank}")
            if version >= 3:
                (dtype_code,) = struct.unpack_from("<B", payload, pos)
                pos += 1
                if dtype_code not in _DTYPE_BY_CODE:
                    raise StreamFormatError(f"invalid dtype code {dtype_code}")
                dtype = _DTYPE_BY_CODE[dtype_code]
            shape = struct.unpack_from(f"<{rank}Q", payload, pos)
            pos += 8 * rank
            (n_chunks,) = struct.unpack_from("<I", payload, pos)
            pos += 4
            npoints = math.prod(int(s) for s in shape)
            if npoints > MAX_TOTAL_POINTS:
                raise AllocationLimitError(
                    f"chunked payload declares {npoints} points, beyond the "
                    f"{MAX_TOTAL_POINTS}-point decode cap"
                )
            if n_chunks > max(1, npoints):
                raise StreamFormatError(
                    f"chunked payload declares {n_chunks} chunks for "
                    f"{npoints} points"
                )
            chunks = []
            for _ in range(n_chunks):
                bounds = []
                for axis in range(rank):
                    a, b = struct.unpack_from("<QQ", payload, pos)
                    pos += 16
                    if a >= b or b > int(shape[axis]):
                        raise StreamFormatError(
                            f"chunk bounds ({a}, {b}) outside axis extent "
                            f"{shape[axis]}"
                        )
                    bounds.append((a, b))
                chunks.append(Chunk(bounds=tuple(bounds)))
            sizes = struct.unpack_from(f"<{n_chunks}Q", payload, pos)
            pos += 8 * n_chunks
            crcs: list[int | None] = [None] * n_chunks
            if version >= 2:
                crcs = list(struct.unpack_from(f"<{n_chunks}I", payload, pos))
                pos += 4 * n_chunks
            mask_nbytes = 0
            if version >= 3:
                mask_nbytes, mask_crc = struct.unpack_from("<QI", payload, pos)
                pos += 12
            if version >= 2:
                header = bytearray(payload[:pos])
                header[_HEADER_CRC_OFFSET : _HEADER_CRC_OFFSET + 4] = b"\x00" * 4
                if zlib.crc32(bytes(header)) != stored_crc:
                    raise IntegrityError("chunked header CRC mismatch")
        except struct.error as exc:
            raise StreamFormatError(f"chunked header truncated: {exc}") from exc
        if mask_nbytes:
            if mask_nbytes > len(payload) - pos:
                raise StreamFormatError(
                    f"chunked payload truncated: mask section declares "
                    f"{mask_nbytes} bytes but only {len(payload) - pos} remain"
                )
            mask_blob = payload[pos : pos + mask_nbytes]
            pos += mask_nbytes
        # Validate the declared section table against the payload that is
        # actually present before slicing any stream.
        declared = sum(int(s) for s in sizes)
        available = len(payload) - pos
        if declared > available:
            raise StreamFormatError(
                f"chunked payload truncated: sections declare {declared} "
                f"bytes but only {available} remain"
            )
        if declared < available:
            raise StreamFormatError(
                f"{available - declared} trailing bytes after the last "
                "chunk stream"
            )
        streams = []
        for size in sizes:
            streams.append(payload[pos : pos + size])
            pos += size
        return (
            rank,
            tuple(int(s) for s in shape),
            chunks,
            streams,
            crcs,
            dtype,
            mask_blob,
            mask_crc,
        )

    def decompress(
        self,
        payload: bytes,
        *,
        on_error: str = "raise",
        fill_value: float = float("nan"),
        timeout: float | None = None,
    ) -> np.ndarray | DecodeResult:
        """Decompress tiles (optionally in parallel) and reassemble.

        Mirrors :func:`repro.core.container.decompress`: the default
        ``on_error="raise"`` verifies tile CRCs (v2) and raises on the
        first damaged tile; ``on_error="salvage"`` recovers every intact
        tile, fills the rest with ``fill_value``, and returns a
        :class:`~repro.core.container.DecodeResult`.
        """
        if on_error not in ("raise", "salvage"):
            raise InvalidArgumentError(
                f"on_error must be 'raise' or 'salvage', got {on_error!r}"
            )
        (
            _rank,
            shape,
            chunks,
            streams,
            crcs,
            dtype,
            mask_blob,
            mask_crc,
        ) = self._parse(payload)

        if on_error == "raise":
            for i, (stream, crc) in enumerate(zip(streams, crcs)):
                if crc is not None and zlib.crc32(stream) != crc:
                    raise IntegrityError(f"chunk {i} CRC mismatch")
            with span(
                "chunked.decompress", codec=self.inner.name, chunks=len(chunks)
            ):
                parts, _notes = robust_chunk_map(
                    self.inner.decompress,
                    streams,
                    executor=self.executor,
                    workers=self.workers,
                    timeout=timeout,
                )
                out = assemble(shape, chunks, parts).astype(dtype, copy=False)
                self._restore_mask(out, mask_blob, mask_crc)
                return out

        version = 2 if crcs and crcs[0] is not None else 1
        if mask_blob is not None or dtype == np.float32:
            version = 3
        report = DecodeReport(format_version=version)
        items = [(s, c.shape, crc) for s, c, crc in zip(streams, chunks, crcs)]
        results, notes = robust_chunk_map(
            partial(_salvage_part, inner=self.inner),
            items,
            executor=self.executor,
            workers=self.workers,
            timeout=timeout,
        )
        report.notes.extend(notes)
        parts = []
        for i, ((status, value), chunk) in enumerate(zip(results, chunks)):
            if status == "ok":
                report.chunk_status.append(ChunkDecodeStatus(index=i, status="ok"))
                parts.append(value)
            else:
                report.chunk_status.append(
                    ChunkDecodeStatus(index=i, status=status, error=str(value))
                )
                parts.append(np.full(chunk.shape, fill_value, dtype=np.float64))
        out = assemble(shape, chunks, parts).astype(dtype, copy=False)
        self._restore_mask(out, mask_blob, mask_crc, report)
        return DecodeResult(data=out, report=report)

    @staticmethod
    def _restore_mask(
        out: np.ndarray,
        mask_blob: bytes | None,
        mask_crc: int | None,
        report: DecodeReport | None = None,
    ) -> None:
        """Re-poke NaN/Inf samples recorded in a v3 mask section.

        Strict decodes raise on a damaged mask; salvage decodes note the
        loss and keep the filled values (which are legitimate data — the
        fill is smooth and within the codec's error bound elsewhere).
        """
        from ..core.mask import apply_mask, decode_mask

        if mask_blob is None:
            return
        try:
            if mask_crc is not None and zlib.crc32(mask_blob) != mask_crc:
                raise IntegrityError("chunked mask CRC mismatch")
            apply_mask(out, decode_mask(mask_blob, out.size))
        except (IntegrityError, StreamFormatError) as exc:
            if report is None:
                raise
            report.notes.append(f"mask section unrecoverable: {exc}")
