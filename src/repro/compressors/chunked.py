"""Chunk-parallel execution for any compressor.

The paper benchmarks every comparison compressor with OpenMP enabled
(Sec. VI-D runs all five with four threads).  SPERR's chunking is built
into its core; the baselines' reference implementations parallelize
block-wise internally.  This wrapper gives our baseline reimplementations
the equivalent capability: tile the volume, compress tiles through the
shared executor, frame the results in a small container.

Error-bound semantics are preserved exactly — each chunk satisfies the
same per-point criterion, so the assembled volume does too.  The rate
cost of chunk boundaries mirrors what the paper's Fig. 5 documents for
SPERR.
"""

from __future__ import annotations

import struct

import numpy as np

from ..core.chunking import Chunk, assemble, plan_chunks
from ..core.parallel import chunk_map, map_chunk_arrays
from ..errors import InvalidArgumentError, StreamFormatError
from .base import Compressor, Mode

__all__ = ["ChunkedCompressor"]

_MAGIC = b"CHNK"


def _compress_part(part: np.ndarray, inner: Compressor, mode: Mode) -> bytes:
    """Module-level chunk job (picklable for the process executor)."""
    return inner.compress(part, mode)


class ChunkedCompressor(Compressor):
    """Tile-and-parallelize adapter around any :class:`Compressor`."""

    def __init__(
        self,
        inner: Compressor,
        chunk_shape: int | tuple[int, ...],
        *,
        executor: str = "serial",
        workers: int | None = None,
    ) -> None:
        if isinstance(inner, ChunkedCompressor):
            raise InvalidArgumentError("refusing to nest chunked compressors")
        self.inner = inner
        self.chunk_shape = chunk_shape
        self.executor = executor
        self.workers = workers
        self.name = f"{inner.name}+chunks"
        self.supported_modes = inner.supported_modes

    def compress(self, data: np.ndarray, mode: Mode) -> bytes:
        """Tile, compress tiles through the executor, frame the results."""
        self.check_mode(mode)
        data = np.asarray(data, dtype=np.float64)
        chunks = plan_chunks(data.shape, self.chunk_shape)
        # The process path ships the volume through shared memory once
        # (workers slice their own chunks); serial/thread slice in-process.
        payloads = map_chunk_arrays(
            _compress_part,
            data,
            chunks,
            args=(self.inner, mode),
            executor=self.executor,
            workers=self.workers,
        )
        head = bytearray()
        head += _MAGIC
        head += struct.pack("<B", data.ndim)
        head += struct.pack(f"<{data.ndim}Q", *data.shape)
        head += struct.pack("<I", len(chunks))
        for chunk in chunks:
            for a, b in chunk.bounds:
                head += struct.pack("<QQ", a, b)
        for p in payloads:
            head += struct.pack("<Q", len(p))
        return bytes(head) + b"".join(payloads)

    def decompress(self, payload: bytes) -> np.ndarray:
        """Decompress tiles (optionally in parallel) and reassemble."""
        if payload[:4] != _MAGIC:
            raise StreamFormatError("not a chunked-compressor payload")
        pos = 4
        try:
            (rank,) = struct.unpack_from("<B", payload, pos)
            pos += 1
            if rank < 1 or rank > 3:
                raise StreamFormatError(f"invalid rank {rank}")
            shape = struct.unpack_from(f"<{rank}Q", payload, pos)
            pos += 8 * rank
            (n_chunks,) = struct.unpack_from("<I", payload, pos)
            pos += 4
            chunks = []
            for _ in range(n_chunks):
                bounds = []
                for _ in range(rank):
                    a, b = struct.unpack_from("<QQ", payload, pos)
                    pos += 16
                    bounds.append((a, b))
                chunks.append(Chunk(bounds=tuple(bounds)))
            sizes = struct.unpack_from(f"<{n_chunks}Q", payload, pos)
            pos += 8 * n_chunks
        except struct.error as exc:
            raise StreamFormatError(f"chunked header truncated: {exc}") from exc
        # Validate the declared section table against the payload that is
        # actually present before slicing any stream.
        declared = sum(int(s) for s in sizes)
        available = len(payload) - pos
        if declared > available:
            raise StreamFormatError(
                f"chunked payload truncated: sections declare {declared} "
                f"bytes but only {available} remain"
            )
        if declared < available:
            raise StreamFormatError(
                f"{available - declared} trailing bytes after the last "
                "chunk stream"
            )
        streams = []
        for size in sizes:
            streams.append(payload[pos : pos + size])
            pos += size

        parts = chunk_map(
            self.inner.decompress, streams, executor=self.executor, workers=self.workers
        )
        return assemble(tuple(int(s) for s in shape), chunks, parts)
