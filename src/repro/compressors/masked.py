"""Input-hardening adapter that gives any baseline codec the same
NaN/Inf and dtype robustness the SPERR container grew natively.

The baselines' payload formats predate the mask work and assume finite
float64 input.  Rather than revising four stream formats, this wrapper
applies :func:`repro.core.mask.sanitize_array` at the boundary and
records what it did in a small prefix frame:

``MSKW`` | header CRC32 | dtype code u8 | mask_nbytes u64 | mask_crc u32
| RLE mask blob | inner payload

The frame is emitted only when there is something to record — a
non-float64 input dtype or non-finite samples.  Finite float64 inputs
pass straight through, so wrapped payloads stay byte-identical to the
bare codec's and old payloads remain decodable (:meth:`decompress`
falls back to the inner codec when the magic is absent).
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from ..core.mask import (
    apply_mask,
    decode_mask,
    encode_mask,
    sanitize_array,
    tighten_pwe_for_dtype,
)
from ..errors import IntegrityError, InvalidArgumentError, StreamFormatError
from .base import Compressor, Mode

__all__ = ["MaskedCompressor"]

_MAGIC = b"MSKW"
_HEADER_CRC_OFFSET = 4
_HEADER_FMT = "<BQI"  # dtype code, mask_nbytes, mask_crc
_HEADER_SIZE = 4 + 4 + struct.calcsize(_HEADER_FMT)

_DTYPE_CODES = {np.dtype(np.float32): 0, np.dtype(np.float64): 1}
_DTYPE_BY_CODE = {v: k for k, v in _DTYPE_CODES.items()}


class MaskedCompressor(Compressor):
    """Sanitize-and-restore adapter around any :class:`Compressor`."""

    def __init__(self, inner: Compressor) -> None:
        if isinstance(inner, MaskedCompressor):
            raise InvalidArgumentError("refusing to nest masked compressors")
        self.inner = inner
        self.name = f"{inner.name}+mask"
        self.supported_modes = inner.supported_modes
        #: degradation notes from the most recent :meth:`compress` call
        self.last_notes: list = []

    def compress(self, data: np.ndarray, mode: Mode) -> bytes:
        """Sanitize, run the inner codec, prepend the mask frame if needed."""
        self.check_mode(mode)
        data = np.asarray(data)
        dtype = (
            np.dtype(np.float32)
            if data.dtype == np.float32
            else np.dtype(np.float64)
        )
        clean, mask_codes, self.last_notes = sanitize_array(
            data.astype(dtype, copy=False)
        )
        mode = tighten_pwe_for_dtype(mode, clean)
        payload = self.inner.compress(np.asarray(clean, dtype=np.float64), mode)
        if mask_codes is None and dtype == np.float64:
            return payload
        mask = b"" if mask_codes is None else encode_mask(mask_codes)
        head = bytearray()
        head += _MAGIC
        head += b"\x00\x00\x00\x00"  # header CRC, patched below
        head += struct.pack(
            _HEADER_FMT, _DTYPE_CODES[dtype], len(mask), zlib.crc32(mask)
        )
        struct.pack_into("<I", head, _HEADER_CRC_OFFSET, zlib.crc32(bytes(head)))
        return bytes(head) + mask + payload

    def decompress(self, payload: bytes) -> np.ndarray:
        """Inner decode plus dtype cast and NaN/Inf restoration."""
        if payload[:4] != _MAGIC:
            return self.inner.decompress(payload)
        if len(payload) < _HEADER_SIZE:
            raise StreamFormatError("masked-compressor header truncated")
        (stored_crc,) = struct.unpack_from("<I", payload, _HEADER_CRC_OFFSET)
        header = bytearray(payload[:_HEADER_SIZE])
        header[_HEADER_CRC_OFFSET : _HEADER_CRC_OFFSET + 4] = b"\x00" * 4
        if zlib.crc32(bytes(header)) != stored_crc:
            raise IntegrityError("masked-compressor header CRC mismatch")
        dtype_code, mask_nbytes, mask_crc = struct.unpack_from(
            _HEADER_FMT, payload, 8
        )
        if dtype_code not in _DTYPE_BY_CODE:
            raise StreamFormatError(f"invalid dtype code {dtype_code}")
        if mask_nbytes > len(payload) - _HEADER_SIZE:
            raise StreamFormatError(
                f"masked-compressor payload truncated: mask declares "
                f"{mask_nbytes} bytes but only "
                f"{len(payload) - _HEADER_SIZE} remain"
            )
        mask = payload[_HEADER_SIZE : _HEADER_SIZE + mask_nbytes]
        if mask_nbytes and zlib.crc32(mask) != mask_crc:
            raise IntegrityError("masked-compressor mask CRC mismatch")
        out = self.inner.decompress(payload[_HEADER_SIZE + mask_nbytes :])
        out = out.astype(_DTYPE_BY_CODE[dtype_code], copy=False)
        if mask_nbytes:
            apply_mask(out, decode_mask(mask, out.size))
        return out
