"""Chunk framing and the standalone registry codec for the SZx-style tier.

Two layers live here:

* :func:`encode_chunk` / :func:`encode_chunks` / :func:`decode_chunk` —
  the self-contained per-chunk stream (``SZX1`` framing) the adaptive
  container and store embed next to SPERR chunk streams.  Unlike the
  SPERR path these streams deliberately skip the lossless backend pass:
  the bitshuffled planes are already dense, and the whole point of the
  tier is to keep the byte path as short as possible.
* :class:`SzxLikeCompressor` — the registry codec (``szx-like``) used by
  the analysis scorecard.  It is mask- and dtype-aware on its own
  (``SZXF`` outer frame with a CRC, mask blob, and dtype tag), so the
  scorecard can run it bare against NaN-masked float32 scenarios.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from ...core import mask as mask_mod
from ...core.modes import PweMode
from ...errors import (
    IntegrityError,
    InvalidArgumentError,
    StreamFormatError,
    checked_shape,
    decode_guard,
)
from ..base import Compressor, Mode
from .blocks import decode_lane, encode_lanes

__all__ = [
    "CHUNK_MAGIC",
    "encode_chunk",
    "encode_chunks",
    "decode_chunk",
    "SzxLikeCompressor",
]

CHUNK_MAGIC = b"SZX1"

#: Chunk prologue: magic, version, rank, reserved, tolerance.
_CHUNK_HEAD = struct.Struct("<4sBBHd")

_FRAME_MAGIC = b"SZXF"
#: Frame prologue: magic, version, dtype code, rank, reserved,
#: mask blob nbytes, mask CRC32, chunk-stream CRC32.
_FRAME_HEAD = struct.Struct("<4sBBBBQII")

_DTYPE_CODES = {0: np.dtype(np.float64), 1: np.dtype(np.float32)}


def encode_chunks(arrays: list[np.ndarray], tolerance: float) -> list[bytes]:
    """Encode many finite float arrays as independent ``SZX1`` streams.

    All lanes run through one stacked kernel pass (see
    :func:`~repro.compressors.szxlike.blocks.encode_lanes`), and each
    stream depends only on its own lane — so this batched entry point
    and :func:`encode_chunk` produce byte-identical output.
    """
    for a in arrays:
        if a.ndim < 1 or a.ndim > 3:
            raise InvalidArgumentError("szx chunks must be 1-D to 3-D")
    bodies = encode_lanes(arrays, tolerance)
    out = []
    for a, body in zip(arrays, bodies):
        head = _CHUNK_HEAD.pack(CHUNK_MAGIC, 1, a.ndim, 0, float(tolerance))
        head += struct.pack(f"<{a.ndim}Q", *a.shape)
        out.append(head + body)
    return out


def encode_chunk(data: np.ndarray, tolerance: float) -> bytes:
    """Encode one finite float array as a self-contained ``SZX1`` stream."""
    return encode_chunks([data], tolerance)[0]


def decode_chunk(
    stream: bytes, expected_shape: tuple[int, ...] | None = None
) -> np.ndarray:
    """Decode an ``SZX1`` chunk stream back to a float64 array.

    The stream is untrusted: shape and sample counts are validated
    against the decode caps, and when the caller knows the chunk's shape
    from a validated container table, ``expected_shape`` pins it.
    """
    with decode_guard("szx"):
        if stream[:4] != CHUNK_MAGIC:
            raise StreamFormatError("not an szx chunk stream")
        magic, version, rank, _reserved, tolerance = _CHUNK_HEAD.unpack_from(
            stream, 0
        )
        if version != 1:
            raise StreamFormatError(f"unknown szx chunk version {version}")
        if rank < 1 or rank > 3:
            raise StreamFormatError(f"szx chunk declares rank {rank}")
        pos = _CHUNK_HEAD.size
        shape = struct.unpack_from(f"<{rank}Q", stream, pos)
        pos += 8 * rank
        shape = checked_shape(shape, "szx")
        if expected_shape is not None and tuple(expected_shape) != shape:
            raise StreamFormatError(
                f"szx chunk declares shape {shape}, table says "
                f"{tuple(expected_shape)}"
            )
        if not np.isfinite(tolerance) or tolerance <= 0.0:
            raise StreamFormatError(
                f"szx chunk declares tolerance {tolerance}"
            )
        flat = decode_lane(stream[pos:], tolerance)
        n = int(np.prod(shape))
        if flat.size != n:
            raise StreamFormatError(
                f"szx chunk decodes {flat.size} samples for shape {shape}"
            )
        return flat.reshape(shape)


class SzxLikeCompressor(Compressor):
    """SZx-style ultra-fast error-bounded compressor (Yu et al., PAPERS.md).

    Whole-array codec for the registry/scorecard: classifies fixed-size
    blocks as constant / linear / dense / raw, quantizes residuals
    against the PWE bound, and bitshuffles the code planes.  Handles
    NaN/Inf masks and float32 inputs itself via :mod:`repro.core.mask`,
    unlike the other baselines which lean on ``MaskedCompressor``.
    """

    name = "szx-like"
    supported_modes = (PweMode,)

    def compress(self, data: np.ndarray, mode: Mode) -> bytes:
        """Encode a 1-D to 3-D array under a point-wise error bound.

        Non-finite samples are masked out and restored exactly on
        decode; float32 inputs keep their dtype through the roundtrip.
        """
        self.check_mode(mode)
        assert isinstance(mode, PweMode)
        data = np.asarray(data)
        if data.ndim < 1 or data.ndim > 3:
            raise InvalidArgumentError("szx-like supports 1-D to 3-D arrays")
        if data.size == 0:
            raise InvalidArgumentError("cannot compress an empty array")
        dtype_code = 1 if data.dtype == np.float32 else 0
        if dtype_code == 0:
            data = np.asarray(data, dtype=np.float64)
        clean, codes, _notes = mask_mod.sanitize_array(data)
        mode = mask_mod.tighten_pwe_for_dtype(mode, clean)
        stream = encode_chunk(
            np.asarray(clean, dtype=np.float64), mode.tolerance
        )
        mask_blob = mask_mod.encode_mask(codes) if codes is not None else b""
        return self.frame_stream(
            stream, data.ndim, dtype_code=dtype_code, mask_blob=mask_blob
        )

    @staticmethod
    def frame_stream(
        stream: bytes,
        rank: int,
        *,
        dtype_code: int = 0,
        mask_blob: bytes = b"",
    ) -> bytes:
        """Wrap a ready ``SZX1`` chunk stream in the ``SZXF`` frame.

        Used by :meth:`compress` and by the chunked adapter's batched
        lane path, so both produce identical frames for the same stream.
        """
        head = _FRAME_HEAD.pack(
            _FRAME_MAGIC,
            1,
            dtype_code,
            rank,
            0,
            len(mask_blob),
            zlib.crc32(mask_blob),
            zlib.crc32(stream),
        )
        return head + stream + mask_blob

    def decompress(self, payload: bytes) -> np.ndarray:
        """Decode an ``SZXF`` frame back to the original array."""
        if payload[:4] != _FRAME_MAGIC:
            raise StreamFormatError("not an szx-like payload")
        with decode_guard(self.name):
            (
                _magic,
                version,
                dtype_code,
                rank,
                _reserved,
                mask_nbytes,
                mask_crc,
                chunk_crc,
            ) = _FRAME_HEAD.unpack_from(payload, 0)
            if version != 1:
                raise StreamFormatError(f"unknown szx-like version {version}")
            if dtype_code not in _DTYPE_CODES:
                raise StreamFormatError(
                    f"unknown szx-like dtype code {dtype_code}"
                )
            body = payload[_FRAME_HEAD.size :]
            if mask_nbytes > len(body):
                raise StreamFormatError(
                    "szx-like frame declares an oversized mask blob"
                )
            split = len(body) - mask_nbytes
            stream, mask_blob = body[:split], body[split:]
            if zlib.crc32(stream) != chunk_crc:
                raise IntegrityError("szx-like chunk stream CRC mismatch")
            if zlib.crc32(mask_blob) != mask_crc:
                raise IntegrityError("szx-like mask blob CRC mismatch")
            out = decode_chunk(stream)
            if out.ndim != rank:
                raise StreamFormatError(
                    f"szx-like frame declares rank {rank}, chunk has "
                    f"{out.ndim}"
                )
            out = out.astype(_DTYPE_CODES[dtype_code], copy=False)
            if mask_nbytes:
                mask_codes = mask_mod.decode_mask(mask_blob, out.size)
                mask_mod.apply_mask(out, mask_codes)
            return out
