"""Vectorized fixed-size block kernels of the SZx-style fast codec.

SZx's design (PAPERS.md) trades a little ratio for an order of magnitude
of speed: split the flattened field into fixed-size blocks, classify
each block with cheap reductions, and spend bits only where the data
demands them.  Every stage here runs as whole-matrix numpy passes over a
``(n_blocks, BLOCK)`` layout — there is no per-block Python loop on
either side.

Per-block classification (all thresholds derive from the PWE bound
``t``, quantization step ``q = 2t``):

* ``constant`` — block range ``<= q``: the midrange alone reconstructs
  every sample within ``t``.  Costs 8 bytes.
* ``linear`` — a least-squares ramp over the flattened index predicts
  the block; residuals are quantized to ``rint(r / q)`` and coded as
  zigzagged bit planes.  Costs 16 bytes + ``width`` planes.
* ``dense`` — no usable ramp: residuals against the midrange are
  quantized the same way.  Costs 8 bytes + ``width`` planes.
* ``raw`` — the escape hatch: quantized codes would overflow the plane
  coder, or a floating-point corner broke the ``<= t`` verification.
  The block is stored verbatim (lossless), so the PWE bound holds
  unconditionally.

Quantized residuals are *bitshuffled*: the ``width`` bit planes of a
block's 256 zigzag codes are emitted plane-major (one 32-byte row per
plane), the SZx trick that groups same-significance bits for any
downstream lossless pass.  The small side tables (2-bit block types,
5-bit plane widths) go through the :mod:`repro.lossless.bitpack`
kernels; the planes themselves pack with ``np.packbits``.

The encoder is *lane-based*: :func:`encode_lanes` concatenates many
chunks' block tables into one matrix, runs every kernel once, and slices
the per-lane streams back out.  A single-chunk encode is literally a
one-lane call, which is what makes the batched and serial paths
byte-identical by construction.
"""

from __future__ import annotations

import struct

import numpy as np

from ...errors import InvalidArgumentError, StreamFormatError
from ...lossless.bitpack import byte_windows, extract_msb, pack_msb

__all__ = [
    "BLOCK",
    "T_CONST",
    "T_LINEAR",
    "T_DENSE",
    "T_RAW",
    "MAX_WIDTH",
    "encode_lanes",
    "decode_lane",
]

#: Samples per block.  A multiple of 8 so every bit plane packs into
#: whole bytes (256 bits -> 32 bytes per plane).
BLOCK = 256

#: Block type codes (2-bit field in the lane's type table).
T_CONST, T_LINEAR, T_DENSE, T_RAW = 0, 1, 2, 3

#: Widest residual plane stack; quantized codes needing more bits (very
#: rough data under a very tight bound) push the block to ``raw``.
MAX_WIDTH = 30

#: Per-lane body prologue: ``u64 n_samples, u32 n_blocks``.
_LANE_HEAD = struct.Struct("<QI")

_PLANE_BYTES = BLOCK // 8

#: Parameter doubles stored per block type (raw blocks store the block).
_PARAM_COUNTS = np.array([1, 2, 1, BLOCK], dtype=np.int64)

# Centered index ramp shared by the linear predictor on both sides.
_IC = np.arange(BLOCK, dtype=np.float64) - (BLOCK - 1) / 2.0
_VAR_IC = float(np.sum(_IC * _IC))


def _bit_length(x: np.ndarray) -> np.ndarray:
    """Vectorized ``int.bit_length`` for non-negative integer arrays."""
    out = np.zeros(x.shape, dtype=np.int64)
    nz = x > 0
    if np.any(nz):
        out[nz] = np.floor(np.log2(x[nz].astype(np.float64))).astype(np.int64) + 1
    return out


def _pad_lanes(
    arrays: list[np.ndarray],
) -> tuple[np.ndarray, list[tuple[int, int]]]:
    """Flatten each lane, pad to whole blocks (edge value), and stack."""
    mats = []
    lanes = []
    for a in arrays:
        flat = np.ascontiguousarray(a, dtype=np.float64).ravel()
        n = flat.size
        if n == 0:
            raise InvalidArgumentError("cannot encode an empty array")
        nb = -(-n // BLOCK)
        padded = np.empty(nb * BLOCK, dtype=np.float64)
        padded[:n] = flat
        padded[n:] = flat[-1]
        mats.append(padded.reshape(nb, BLOCK))
        lanes.append((n, nb))
    stacked = mats[0] if len(mats) == 1 else np.concatenate(mats, axis=0)
    return stacked, lanes


def encode_lanes(arrays: list[np.ndarray], tolerance: float) -> list[bytes]:
    """Encode one lane body per input array, through shared stacked kernels.

    Every lane's stream is a pure function of its own samples and the
    tolerance — the classification, quantization, and packing of lane
    ``i`` never look at lane ``j`` — so calling this with one array or
    with a batch produces byte-identical per-lane streams.
    """
    if not np.isfinite(tolerance) or tolerance <= 0.0:
        raise InvalidArgumentError(f"tolerance must be positive, got {tolerance}")
    if not arrays:
        return []
    x, lanes = _pad_lanes(arrays)
    nb_total = x.shape[0]
    q = 2.0 * tolerance

    # -- classification (whole-matrix reductions) -------------------------
    bmin = x.min(axis=1)
    bmax = x.max(axis=1)
    mid = 0.5 * (bmin + bmax)
    mean = x.mean(axis=1)
    slope = (x * _IC).sum(axis=1) / _VAR_IC

    res_lin = x - mean[:, None] - slope[:, None] * _IC
    res_den = x - mid[:, None]
    rmax_lin = np.abs(res_lin).max(axis=1)
    rmax_den = np.abs(res_den).max(axis=1)

    # Cost model in bytes: params + one 32-byte row per plane.  Width is
    # estimated from the zigzag bound 2*|res|max/q (within one plane of
    # the quantized value); exact widths are recomputed below once the
    # type is fixed and only the winning branch is ever quantized.
    with np.errstate(invalid="ignore", over="ignore"):
        w_lin_est = _bit_length(
            np.minimum(2.0 * rmax_lin / q, 2.0**62).astype(np.int64)
        )
        w_den_est = _bit_length(
            np.minimum(2.0 * rmax_den / q, 2.0**62).astype(np.int64)
        )
    cost_lin = 16.0 + w_lin_est * _PLANE_BYTES
    cost_den = 8.0 + w_den_est * _PLANE_BYTES

    types = np.full(nb_total, T_DENSE, dtype=np.int64)
    types[cost_lin < cost_den] = T_LINEAR
    res_sel = np.where((types == T_LINEAR)[:, None], res_lin, res_den)
    with np.errstate(invalid="ignore"):
        codes = np.rint(res_sel / q)
    amax = np.abs(codes).max(axis=1)
    # Overflow guard: zigzag codes must fit MAX_WIDTH bit planes.
    types[~np.isfinite(amax) | (amax > 2.0 ** (MAX_WIDTH - 1) - 1)] = T_RAW
    types[(bmax - bmin) <= q] = T_CONST

    # -- PWE verification (demote floating-point corners to raw) ----------
    coded = (types == T_LINEAR) | (types == T_DENSE)
    if np.any(coded):
        err = np.abs(res_sel - codes * q).max(axis=1)
        types[coded & (err > tolerance)] = T_RAW
        coded = (types == T_LINEAR) | (types == T_DENSE)
    cmask = types == T_CONST
    if np.any(cmask):
        types[cmask & (rmax_den > tolerance)] = T_RAW
        cmask = types == T_CONST

    # -- exact widths and zigzag codes for coded blocks -------------------
    u = np.zeros((nb_total, BLOCK), dtype=np.uint32)
    if np.any(coded):
        c = codes[coded].astype(np.int32)
        u[coded] = ((c << 1) ^ (c >> 31)).astype(np.uint32)
    widths = np.zeros(nb_total, dtype=np.int64)
    widths[coded] = _bit_length(u[coded].max(axis=1))

    # -- parameter table (scatter by per-block offsets) -------------------
    counts = _PARAM_COUNTS[types]
    poff = np.concatenate(([0], np.cumsum(counts)))
    params = np.empty(int(poff[-1]), dtype=np.float64)
    params[poff[:-1][cmask]] = mid[cmask]
    lmask = types == T_LINEAR
    params[poff[:-1][lmask]] = mean[lmask]
    params[poff[:-1][lmask] + 1] = slope[lmask]
    dmask = types == T_DENSE
    params[poff[:-1][dmask]] = mid[dmask]
    rmask = types == T_RAW
    if np.any(rmask):
        idx = poff[:-1][rmask, None] + np.arange(BLOCK)
        params[idx.ravel()] = x[rmask].ravel()

    # -- bitshuffled planes: one 32-byte row per (block, plane) -----------
    pw = widths  # width == 0 for const/raw blocks already
    plane_off = np.concatenate(([0], np.cumsum(pw)))
    total_planes = int(plane_off[-1])
    if total_planes:
        planes = np.empty((total_planes, _PLANE_BYTES), dtype=np.uint8)
        # Pack one bit level at a time: each pass touches only the blocks
        # whose stack is still that deep, so no (total_planes, BLOCK)
        # gather is ever materialized.
        rows = np.flatnonzero(pw)
        row_off = plane_off[:-1]
        for k in range(int(widths.max())):
            if k:
                rows = rows[pw[rows] > k]
            bits = ((u[rows] >> np.uint32(k)) & np.uint32(1)).astype(np.uint8)
            planes[row_off[rows] + k] = np.packbits(bits, axis=1)
    else:
        planes = np.zeros((0, _PLANE_BYTES), dtype=np.uint8)

    # -- slice the shared tables back into per-lane streams ---------------
    out = []
    start = 0
    for n, nb in lanes:
        end = start + nb
        t_lane = types[start:end]
        w_lane = widths[start:end][
            (t_lane == T_LINEAR) | (t_lane == T_DENSE)
        ]
        type_bytes, _ = pack_msb(
            t_lane.astype(np.uint64), np.full(nb, 2, dtype=np.int64)
        )
        width_bytes, _ = pack_msb(
            w_lane.astype(np.uint64), np.full(w_lane.size, 5, dtype=np.int64)
        )
        body = bytearray()
        body += _LANE_HEAD.pack(n, nb)
        body += type_bytes
        body += width_bytes
        body += params[poff[start] : poff[end]].tobytes()
        body += planes[plane_off[start] : plane_off[end]].tobytes()
        out.append(bytes(body))
        start = end
    return out


def decode_lane(body: bytes, tolerance: float) -> np.ndarray:
    """Decode one lane body back to its flat float64 samples.

    The body is untrusted: every section length is validated against the
    declared block count before any allocation or slice, and malformed
    framing raises :class:`~repro.errors.StreamFormatError`.
    """
    if not np.isfinite(tolerance) or tolerance <= 0.0:
        raise InvalidArgumentError(f"tolerance must be positive, got {tolerance}")
    if len(body) < _LANE_HEAD.size:
        raise StreamFormatError("szx lane truncated before its prologue")
    n, nb = _LANE_HEAD.unpack_from(body, 0)
    if n < 1 or nb != -(-n // BLOCK):
        raise StreamFormatError(
            f"szx lane declares {nb} blocks for {n} samples"
        )
    q = 2.0 * tolerance
    pos = _LANE_HEAD.size

    type_nbytes = (2 * nb + 7) >> 3
    if len(body) < pos + type_nbytes:
        raise StreamFormatError("szx lane truncated in its type table")
    tw = byte_windows(body[pos : pos + type_nbytes])
    types = extract_msb(
        tw, np.arange(nb, dtype=np.int64) * 2, 2
    ).astype(np.int64)
    pos += type_nbytes

    coded = (types == T_LINEAR) | (types == T_DENSE)
    nw = int(coded.sum())
    width_nbytes = (5 * nw + 7) >> 3
    if len(body) < pos + width_nbytes:
        raise StreamFormatError("szx lane truncated in its width table")
    ww = byte_windows(body[pos : pos + width_nbytes])
    w_coded = extract_msb(
        ww, np.arange(nw, dtype=np.int64) * 5, 5
    ).astype(np.int64)
    pos += width_nbytes
    if nw and int(w_coded.max()) > MAX_WIDTH:
        raise StreamFormatError("szx lane declares an over-wide plane stack")
    widths = np.zeros(nb, dtype=np.int64)
    widths[coded] = w_coded

    counts = _PARAM_COUNTS[types]
    poff = np.concatenate(([0], np.cumsum(counts)))
    param_nbytes = int(poff[-1]) * 8
    if len(body) < pos + param_nbytes:
        raise StreamFormatError("szx lane truncated in its parameter table")
    params = np.frombuffer(body, dtype="<f8", count=int(poff[-1]), offset=pos)
    pos += param_nbytes

    plane_off = np.concatenate(([0], np.cumsum(widths)))
    total_planes = int(plane_off[-1])
    if len(body) != pos + total_planes * _PLANE_BYTES:
        raise StreamFormatError(
            f"szx lane has {len(body) - pos} plane bytes, expected "
            f"{total_planes * _PLANE_BYTES}"
        )

    recon = np.empty((nb, BLOCK), dtype=np.float64)
    cmask = types == T_CONST
    dmask = types == T_DENSE
    offmask = cmask | dmask
    if np.any(offmask):
        recon[offmask] = params[poff[:-1][offmask], None]
    lmask = types == T_LINEAR
    if np.any(lmask):
        recon[lmask] = (
            params[poff[:-1][lmask], None]
            + params[poff[:-1][lmask] + 1, None] * _IC
        )
    rmask = types == T_RAW
    if np.any(rmask):
        idx = poff[:-1][rmask, None] + np.arange(BLOCK)
        recon[rmask] = params[idx.ravel()].reshape(-1, BLOCK)

    if total_planes:
        raw_planes = np.frombuffer(
            body, dtype=np.uint8, count=total_planes * _PLANE_BYTES, offset=pos
        ).reshape(total_planes, _PLANE_BYTES)
        bits = np.unpackbits(raw_planes, axis=1).astype(np.uint32)
        k = (
            np.arange(total_planes) - np.repeat(plane_off[:-1], widths)
        ).astype(np.uint32)
        contrib = bits << k[:, None]
        planed = widths > 0
        starts = plane_off[:-1][planed]
        u = np.add.reduceat(contrib, starts, axis=0)
        codes = (u >> np.uint32(1)).astype(np.int32) ^ -(
            (u & np.uint32(1)).astype(np.int32)
        )
        recon[planed] += codes.astype(np.float64) * q

    return recon.reshape(-1)[:n]
