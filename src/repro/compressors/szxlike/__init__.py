"""SZx-style ultra-fast error-bounded codec (the service's fast tier).

See :mod:`repro.compressors.szxlike.blocks` for the block kernels and
:mod:`repro.compressors.szxlike.codec` for chunk framing plus the
standalone ``szx-like`` registry compressor.
"""

from .blocks import BLOCK, MAX_WIDTH, T_CONST, T_DENSE, T_LINEAR, T_RAW
from .codec import (
    CHUNK_MAGIC,
    SzxLikeCompressor,
    decode_chunk,
    encode_chunk,
    encode_chunks,
)

__all__ = [
    "BLOCK",
    "MAX_WIDTH",
    "T_CONST",
    "T_DENSE",
    "T_LINEAR",
    "T_RAW",
    "CHUNK_MAGIC",
    "SzxLikeCompressor",
    "decode_chunk",
    "encode_chunk",
    "encode_chunks",
]
