"""Common interface for all compressors in the comparison study.

The paper's Sec. VI compares SPERR against SZ3, ZFP, TTHRESH, and MGARD.
Each reimplemented baseline (and SPERR itself) is wrapped behind this
interface so the rate-distortion and runtime harnesses in
:mod:`repro.analysis` can drive them uniformly.

Termination criteria differ per compressor, exactly as in the paper:

* :class:`~repro.core.modes.PweMode` — point-wise error bound
  (SPERR, SZ-like, ZFP-like, MGARD-like);
* :class:`~repro.core.modes.SizeMode` — bits-per-point budget
  (SPERR, ZFP-like);
* :class:`PsnrMode` — average-error target (TTHRESH-like only; the paper
  converts idx levels to PSNR targets for TTHRESH via
  ``PSNR = 20 log10(2) * idx``).
"""

from __future__ import annotations

import abc

import numpy as np

from ..core.modes import PsnrMode, PweMode, SizeMode
from ..errors import (
    MAX_DECODE_POINTS,
    InvalidArgumentError,
    UnsupportedModeError,
    checked_shape,
    decode_guard,
)
from ..metrics import GAIN_DB_PER_BIT

__all__ = [
    "Compressor",
    "PsnrMode",
    "Mode",
    "MAX_DECODE_POINTS",
    "checked_shape",
    "decode_guard",
    "psnr_target_for_idx",
]

Mode = PweMode | SizeMode | PsnrMode


def psnr_target_for_idx(idx: int) -> float:
    """The paper's TTHRESH control mapping: ``PSNR = (20 log10 2) * idx``
    (Sec. VI-C), i.e. one idx increment halves the RMSE."""
    if idx <= 0:
        raise InvalidArgumentError("idx must be positive")
    return GAIN_DB_PER_BIT * idx


class Compressor(abc.ABC):
    """A lossy scientific-data compressor with self-describing payloads."""

    #: short name used in tables and plots
    name: str = "base"
    #: which mode classes :meth:`compress` accepts
    supported_modes: tuple[type, ...] = ()

    def check_mode(self, mode: Mode) -> None:
        """Raise :class:`UnsupportedModeError` for modes this codec lacks."""
        if not isinstance(mode, self.supported_modes):
            raise UnsupportedModeError(
                f"{self.name} supports {[m.__name__ for m in self.supported_modes]}, "
                f"got {type(mode).__name__}"
            )

    @abc.abstractmethod
    def compress(self, data: np.ndarray, mode: Mode) -> bytes:
        """Compress ``data`` under the given termination criterion."""

    @abc.abstractmethod
    def decompress(self, payload: bytes) -> np.ndarray:
        """Reconstruct the array from a payload produced by :meth:`compress`."""
