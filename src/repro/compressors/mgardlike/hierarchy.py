"""Multilevel piecewise-linear hierarchical decomposition (MGARD-style).

MGARD (Ainsworth et al. — references [2], [3] of the SPERR paper) is
"inspired by wavelet decompositions and multi-grid methods": a field is
split into a coarse approximation on every other grid point plus detail
coefficients measuring the deviation of the remaining points from
piecewise-linear interpolation of the coarse grid.  Applied recursively
and separably per axis, this yields the hierarchical-basis transform
implemented here.

Unlike the lifting DWT of :mod:`repro.wavelets`, there is no update
step: the coarse samples are *subsamples* (injection), which is what
makes the transform cheap and the error analysis multigrid-flavoured —
and also why point-wise error control requires level-dependent
quantization weights (see :mod:`repro.compressors.mgardlike.mgard`).
"""

from __future__ import annotations

import numpy as np

from ...errors import InvalidArgumentError

__all__ = ["decompose", "reconstruct", "level_schedule"]


def level_schedule(shape: tuple[int, ...], max_levels: int = 10) -> int:
    """Number of hierarchy levels: halve until any axis would drop below 3."""
    levels = 0
    cur = list(shape)
    while levels < max_levels and all(n >= 5 or n == 1 for n in cur):
        cur = [(n + 1) // 2 if n > 1 else 1 for n in cur]
        levels += 1
    return levels


def _axis_detail(arr: np.ndarray, axis: int, lengths: list[int]) -> None:
    """One hierarchy step along ``axis`` within the coarse box ``lengths``.

    Odd samples become details (value minus linear interpolation of even
    neighbors); even samples are kept as the coarse grid, packed to the
    front in Mallat-style layout.
    """
    box = arr[tuple(slice(0, n) for n in lengths)]
    view = np.moveaxis(box, axis, -1)
    region = view
    even = region[..., 0::2]
    odd = region[..., 1::2]
    n_odd = odd.shape[-1]
    left = even[..., :n_odd]
    # Right neighbor of odd sample i is even sample i+1; at the boundary
    # (odd tail sample with no right neighbor) fall back to the left value.
    if even.shape[-1] > n_odd:
        right = even[..., 1 : n_odd + 1]
    else:
        right = np.concatenate([even[..., 1:], even[..., -1:]], axis=-1)
    detail = odd - 0.5 * (left + right)
    packed = np.concatenate([even, detail], axis=-1)
    np.copyto(region, packed)


def _axis_undetail(arr: np.ndarray, axis: int, lengths: list[int]) -> None:
    """Inverse of :func:`_axis_detail`."""
    box = arr[tuple(slice(0, n) for n in lengths)]
    view = np.moveaxis(box, axis, -1)
    region = view
    length = lengths[axis]
    n_even = (length + 1) // 2
    even = region[..., :n_even].copy()
    detail = region[..., n_even:].copy()
    n_odd = detail.shape[-1]
    left = even[..., :n_odd]
    if n_even > n_odd:
        right = even[..., 1 : n_odd + 1]
    else:
        right = np.concatenate([even[..., 1:], even[..., -1:]], axis=-1)
    odd = detail + 0.5 * (left + right)
    out = np.empty_like(region)
    out[..., 0::2] = even
    out[..., 1::2] = odd
    np.copyto(region, out)


def decompose(data: np.ndarray, levels: int | None = None) -> tuple[np.ndarray, int]:
    """Forward hierarchical decomposition; returns ``(coeffs, levels)``."""
    data = np.asarray(data, dtype=np.float64)
    if data.ndim < 1 or data.ndim > 3:
        raise InvalidArgumentError("decompose supports 1-D to 3-D arrays")
    if levels is None:
        levels = level_schedule(data.shape)
    coeffs = data.copy()
    lengths = list(data.shape)
    for _ in range(levels):
        for ax in range(coeffs.ndim):
            if lengths[ax] >= 3:
                _axis_detail(coeffs, ax, lengths)
        lengths = [(n + 1) // 2 if n >= 3 else n for n in lengths]
    return coeffs, levels


def reconstruct(coeffs: np.ndarray, levels: int) -> np.ndarray:
    """Exact inverse of :func:`decompose`."""
    coeffs = np.asarray(coeffs, dtype=np.float64)
    data = coeffs.copy()
    all_lengths = [list(coeffs.shape)]
    lengths = list(coeffs.shape)
    for _ in range(levels):
        lengths = [(n + 1) // 2 if n >= 3 else n for n in lengths]
        all_lengths.append(list(lengths))
    for level in range(levels - 1, -1, -1):
        lengths = all_lengths[level]
        for ax in range(data.ndim - 1, -1, -1):
            if lengths[ax] >= 3:
                _axis_undetail(data, ax, lengths)
    return data
