"""MGARD-like compressor: hierarchical decomposition + level-weighted
quantization + entropy coding.

The PWE-mode quantization steps follow the hierarchical-basis error
telescope: every level introduces one detail-quantization error per axis
and linear interpolation carries coarser errors down without
amplification, so a uniform step of ``t / (ndim * levels + 1)`` bounds
the accumulated point-wise error by ``t`` in exact arithmetic.  At very tight tolerances the bound can
nevertheless be overrun by floating-point accumulation across the level
cascade — the same behaviour the paper reports for real MGARD ("MGARD
cannot bound the error tolerance" at tight ``t``, Sec. VI-C), which our
Fig. 9 bench records rather than hides.
"""

from __future__ import annotations

import math
import struct

import numpy as np

from ... import lossless
from ...core.modes import PweMode
from ...errors import InvalidArgumentError, StreamFormatError
from ..base import Compressor, Mode, checked_shape, decode_guard
from ..szlike import codec as _bins
from .hierarchy import decompose, level_schedule, reconstruct

__all__ = ["MgardLikeCompressor", "coefficient_levels"]

_MAGIC = b"MGDL"


def coefficient_levels(shape: tuple[int, ...], levels: int) -> np.ndarray:
    """Level index of every coefficient slot after :func:`decompose`.

    Level 0 = finest details, ``levels`` = the final coarse box (which is
    quantized like the coarsest details).
    """
    level_map = np.zeros(shape, dtype=np.int64)
    lengths = list(shape)
    for lv in range(levels):
        nxt = [(n + 1) // 2 if n >= 3 else n for n in lengths]
        # slots inside the current box but outside the next box are the
        # details produced at this level
        cur_box = tuple(slice(0, n) for n in lengths)
        nxt_box = tuple(slice(0, n) for n in nxt)
        inside_cur = np.zeros(shape, dtype=bool)
        inside_cur[cur_box] = True
        inside_nxt = np.zeros(shape, dtype=bool)
        inside_nxt[nxt_box] = True
        level_map[inside_cur & ~inside_nxt] = lv
        lengths = nxt
    level_map[tuple(slice(0, n) for n in lengths)] = levels
    return level_map


class MgardLikeCompressor(Compressor):
    """Multigrid-flavoured error-bounded compressor in the style of MGARD."""

    name = "mgard-like"
    supported_modes = (PweMode,)

    def compress(self, data: np.ndarray, mode: Mode) -> bytes:
        """Hierarchical decomposition + level-telescope quantization."""
        self.check_mode(mode)
        assert isinstance(mode, PweMode)
        data = np.asarray(data, dtype=np.float64)
        if data.ndim < 1 or data.ndim > 3:
            raise InvalidArgumentError("mgard-like supports 1-D to 3-D arrays")
        if not np.all(np.isfinite(data)):
            raise InvalidArgumentError("input contains NaN or Inf")
        t = mode.tolerance

        coeffs, levels = decompose(data)
        # Error telescope budget: each hierarchy level introduces one
        # detail-quantization error per axis, and interpolation carries
        # coarser errors down without amplification, so the point-wise
        # error is bounded by (ndim * levels + 1) * step.
        step = t / (data.ndim * levels + 1)
        codes, escape = _bins.quantize_residuals(coeffs, step)
        # Out-of-range coefficients (the coarse box and the largest details
        # at tight tolerances) are stored exactly.
        exact = coeffs[escape].astype("<f8") if escape.any() else np.zeros(0)
        bins_payload = _bins.encode_bins(codes.reshape(-1), escape.reshape(-1))
        wide_payload = lossless.compress(exact.tobytes(), method="auto")

        head = _MAGIC + struct.pack("<BdI", data.ndim, t, levels)
        head += struct.pack(f"<{data.ndim}Q", *data.shape)
        head += struct.pack("<QQ", len(bins_payload), len(wide_payload))
        return head + bins_payload + wide_payload

    def decompress(self, payload: bytes) -> np.ndarray:
        """Decode coefficients and invert the hierarchy."""
        if payload[:4] != _MAGIC:
            raise StreamFormatError("not an mgard-like payload")
        with decode_guard(self.name):
            return self._decompress_body(payload)

    def _decompress_body(self, payload: bytes) -> np.ndarray:
        pos = 4
        nd, t, levels = struct.unpack_from("<BdI", payload, pos)
        pos += struct.calcsize("<BdI")
        if not 1 <= nd <= 3:
            raise StreamFormatError(f"mgard-like payload declares rank {nd}")
        shape = struct.unpack_from(f"<{nd}Q", payload, pos)
        pos += 8 * nd
        n_bins, n_wide = struct.unpack_from("<QQ", payload, pos)
        pos += 16
        shape = checked_shape(shape, self.name)
        # ``levels`` drives the reconstruction loop; the hierarchy halves
        # each axis per level, so any real stream stays well under 64.
        if levels > 64:
            raise StreamFormatError(
                f"mgard-like payload declares {levels} hierarchy levels"
            )

        bins_payload = payload[pos : pos + n_bins]
        wide_payload = payload[pos + n_bins : pos + n_bins + n_wide]
        codes, escape = _bins.decode_bins(bins_payload)
        if codes.size != math.prod(shape):
            raise StreamFormatError(
                f"mgard-like payload carries {codes.size} quantization codes "
                f"for {math.prod(shape)} points"
            )
        exact = np.frombuffer(lossless.decompress(wide_payload), dtype="<f8")

        step = t / (nd * levels + 1)
        coeffs = _bins.dequantize_codes(codes, step).reshape(shape)
        if escape.any():
            flat = coeffs.reshape(-1)
            flat[escape] = exact
        return reconstruct(coeffs, levels)
