"""MGARD-like multilevel hierarchical compressor."""

from .hierarchy import decompose, level_schedule, reconstruct
from .mgard import MgardLikeCompressor, coefficient_levels

__all__ = [
    "MgardLikeCompressor",
    "decompose",
    "reconstruct",
    "level_schedule",
    "coefficient_levels",
]
