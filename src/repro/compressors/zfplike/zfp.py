"""The ZFP-like compressor: 4^d block transform coding.

Modes:

* :class:`~repro.core.modes.SizeMode` — fixed rate: every block gets
  exactly ``rate * 4**d`` bits (zfp's flagship mode, Sec. III-B of the
  SPERR paper notes both share this ability);
* :class:`~repro.core.modes.PweMode` — fixed accuracy: bitplanes whose
  contribution falls below the tolerance are dropped.  Like real zfp,
  the bound is enforced with a conservative per-dimension guard factor.

Per block: common exponent → block floating point (int64) → lifted
decorrelating transform → total-sequency reorder → negabinary →
bitplane coding with zfp's group-testing loop.  The numeric stages are
vectorized across blocks; the bit loop is per block (the price of a
pure-Python reproduction, noted in DESIGN.md).
"""

from __future__ import annotations

import math
import struct

import numpy as np

from ...bitstream import BitWriter
from ...core.modes import PweMode, SizeMode
from ...core.plans import zfp_scan_order
from ...errors import InvalidArgumentError, StreamFormatError
from ..base import Compressor, Mode, checked_shape, decode_guard
from .transform import (
    PRECISION,
    block_exponents,
    from_negabinary,
    fwd_lift,
    inv_lift,
    to_negabinary,
)

__all__ = ["ZfpLikeCompressor"]

_MAGIC = b"ZFPL"
_EXP_BITS = 12
_EXP_BIAS = 2048
#: block-float scaling exponent: ints are x * 2**(_SCALE_EXP - e), leaving
#: headroom for transform growth and the extra negabinary bit below the
#: top coded plane (PRECISION - 2)
_SCALE_EXP = PRECISION - 6
#: guard bits per dimension when deriving the accuracy-mode plane cutoff
_ACCURACY_GUARD = 2


def _blockify(data: np.ndarray) -> tuple[np.ndarray, tuple[int, ...], tuple[int, ...]]:
    """Pad to multiples of 4 (edge-replicated) and gather 4^d blocks."""
    shape = data.shape
    padded_shape = tuple(-(-n // 4) * 4 for n in shape)
    pad = [(0, p - n) for n, p in zip(shape, padded_shape)]
    padded = np.pad(data, pad, mode="edge")
    nd = data.ndim
    grid = tuple(p // 4 for p in padded_shape)
    view = padded.reshape(
        tuple(v for n in grid for v in (n, 4))
    )
    axes = tuple(range(0, 2 * nd, 2)) + tuple(range(1, 2 * nd, 2))
    blocks = view.transpose(axes).reshape((-1,) + (4,) * nd)
    return np.ascontiguousarray(blocks), padded_shape, grid


def _unblockify(
    blocks: np.ndarray, shape: tuple[int, ...], padded_shape: tuple[int, ...], grid: tuple[int, ...]
) -> np.ndarray:
    nd = len(shape)
    view = blocks.reshape(grid + (4,) * nd)
    axes_fwd = tuple(range(0, 2 * nd, 2)) + tuple(range(1, 2 * nd, 2))
    inv_axes = np.argsort(axes_fwd)
    padded = view.transpose(tuple(inv_axes)).reshape(padded_shape)
    return padded[tuple(slice(0, n) for n in shape)]


def _encode_block(
    writer: BitWriter,
    u: np.ndarray,
    e: int,
    nonzero: bool,
    kmin: int,
    max_bits: int | None,
) -> None:
    """zfp's per-block embedded coding (group testing per bitplane)."""
    start = writer.nbits
    writer.write_bit(nonzero)
    if not nonzero:
        if max_bits is not None:
            pad = max_bits - (writer.nbits - start)
            if pad > 0:
                writer.write_bits(np.zeros(pad, dtype=np.bool_))
        return
    writer.write_uint(e + _EXP_BIAS, _EXP_BITS)
    size = u.size
    vals = [int(v) for v in u.tolist()]
    n = 0
    bits: list[int] = []
    budget = None if max_bits is None else max_bits - (writer.nbits - start)
    for k in range(PRECISION - 2, kmin - 1, -1):
        x = 0
        for i in range(size):
            x |= ((vals[i] >> k) & 1) << i
        # verbatim bits for already-significant coefficients
        for i in range(n):
            bits.append((x >> i) & 1)
        x >>= n
        m = n
        while m < size:
            b = 1 if x else 0
            bits.append(b)
            if not b:
                break
            while m < size - 1:
                bit = x & 1
                bits.append(bit)
                if bit:
                    break
                x >>= 1
                m += 1
            x >>= 1
            m += 1
        n = m if m > n else n
        if budget is not None and len(bits) >= budget:
            break
    if budget is not None:
        bits = bits[:budget]
        if len(bits) < budget:
            bits.extend([0] * (budget - len(bits)))
    writer.write_bits(np.asarray(bits, dtype=np.bool_))


def _encode_blocks_vectorized(
    u: np.ndarray,
    exps: np.ndarray,
    nonzero: np.ndarray,
    kmins: np.ndarray,
    max_bits: int | None,
) -> tuple[bytes, int]:
    """Vectorized equivalent of the per-block :func:`_encode_block` loop.

    The group-testing emission of one (block, plane) pair has a closed
    positional form: with ``n`` coefficients already significant and ones
    at columns ``p_1 < ... < p_L`` among the rest, the serial walk writes

    * ``n`` verbatim bits (one per significant coefficient), then
    * a single 0 when ``L == 0`` (nothing if ``n == size``), otherwise
    * one bit per column ``n..e`` with ``e = min(p_L, size - 2)`` (the
      final column's 1 is implicit), interleaved with ``L`` group-1 bits
      plus a trailing 0 when ``p_L < size - 1``.

    Every emitted 1 therefore lands at a computable offset — a verbatim 1
    at its column, the leading group bit at ``n``, the 1 for the rank-``r``
    one at ``col + 1 + r``, and the group bit that follows it at
    ``col + r + 2`` — so the whole stream is a zeros array plus one
    scatter of 1-positions and a single :func:`numpy.packbits`.  Output is
    bit-identical to the serial writer.
    """
    nb, size = u.shape
    planes = np.arange(PRECISION - 2, int(kmins.min(initial=0)) - 1, -1)
    cols = np.arange(size, dtype=np.int64)

    # Pass 1: per-plane last-one column and emission lengths (the running
    # significance count n is the exclusive running max of lastpos + 1).
    # In fixed-rate mode a block whose flag + exponent + payload so far
    # has reached its budget can emit nothing more — every later 1 would
    # land past ``limits`` and be clipped — so exhausted blocks drop out
    # of ``active`` and the loop stops once no block is live.
    lens = np.zeros((planes.size, nb), dtype=np.int64)
    n_at = np.zeros((planes.size, nb), dtype=np.int64)
    lp_at = np.zeros((planes.size, nb), dtype=np.int64)
    act_at = np.zeros((planes.size, nb), dtype=bool)
    n_cur = np.zeros(nb, dtype=np.int64)
    cum = np.zeros(nb, dtype=np.int64)
    n_planes = planes.size
    for pi, k in enumerate(planes):
        active = nonzero & (k >= kmins)
        if max_bits is not None:
            active &= 13 + cum < max_bits
        if not active.any():
            # Nobody can come back: per-block activity only ever ends
            # (k falls below kmin, or the budget fills up).
            n_planes = pi
            break
        bitk = (u >> np.uint64(k)) & np.uint64(1)
        lp = (bitk.astype(np.int64) * (cols + 1)).max(axis=1) - 1
        n = n_cur
        has = lp >= n
        e = np.minimum(lp, size - 2)
        total_ones = bitk.sum(axis=1).astype(np.int64)
        before = np.take_along_axis(
            np.cumsum(bitk, axis=1, dtype=np.int64),
            np.maximum(n - 1, 0)[:, None],
            axis=1,
        )[:, 0]
        before[n == 0] = 0
        L = total_ones - before
        with_ones = (e + 1) + L + (lp < size - 1)
        empty = n + (n < size)
        lens[pi] = np.where(active, np.where(has, with_ones, empty), 0)
        n_at[pi] = n
        lp_at[pi] = lp
        act_at[pi] = active
        cum += lens[pi]
        n_cur = np.where(active, np.maximum(n, lp + 1), n_cur)

    # Block starts and per-plane offsets within each block.
    if max_bits is not None:
        starts = np.arange(nb, dtype=np.int64) * max_bits
        total = nb * max_bits
        limits = starts + max_bits
    else:
        block_len = np.where(nonzero, 13 + lens.sum(axis=0), 1)
        starts = np.zeros(nb, dtype=np.int64)
        np.cumsum(block_len[:-1], out=starts[1:])
        total = int(block_len.sum())
        limits = None
    plane_start = np.zeros((planes.size, nb), dtype=np.int64)
    np.cumsum(lens[:-1], axis=0, out=plane_start[1:])
    plane_start += starts + 13

    dests: list[np.ndarray] = []
    drows: list[np.ndarray] = []  # owning block of each scattered 1

    nz_rows = np.flatnonzero(nonzero)
    dests.append(starts[nz_rows])  # nonzero flag bits
    drows.append(nz_rows)
    ev = (exps[nz_rows] + _EXP_BIAS).astype(np.int64)
    erow, ebit = np.nonzero((ev[:, None] >> np.arange(11, -1, -1)) & 1)
    dests.append(starts[nz_rows][erow] + 1 + ebit)
    drows.append(nz_rows[erow])

    # Pass 2: scatter the plane payload ones.
    for pi in range(n_planes):
        k = planes[pi]
        active = act_at[pi]
        if not active.any():
            continue
        bitk = ((u >> np.uint64(k)) & np.uint64(1)).astype(bool)
        n = n_at[pi]
        lp = lp_at[pi]
        ps = plane_start[pi]
        has = (lp >= n) & active
        verb = bitk & (cols[None, :] < n[:, None]) & active[:, None]
        rows, cs = np.nonzero(verb)
        dests.append(ps[rows] + cs)
        drows.append(rows)
        hrows = np.flatnonzero(has)
        dests.append(ps[hrows] + n[hrows])  # leading group-1 of each run
        drows.append(hrows)
        sel = bitk & (cols[None, :] >= n[:, None]) & has[:, None]
        rank = np.cumsum(sel, axis=1, dtype=np.int64)
        rows, cs = np.nonzero(sel)
        rk = rank[rows, cs] - 1
        pos_one = cs <= np.minimum(lp, size - 2)[rows]
        dests.append(ps[rows[pos_one]] + cs[pos_one] + 1 + rk[pos_one])
        drows.append(rows[pos_one])
        grp = rk <= (rank[:, -1] - 2)[rows]
        dests.append(ps[rows[grp]] + cs[grp] + rk[grp] + 2)
        drows.append(rows[grp])

    dest = np.concatenate(dests)
    if limits is not None:
        # Fixed-rate truncation: the serial coder clips each block's
        # emission at its budget and zero-pads, so ones past the budget
        # simply vanish.
        dest = dest[dest < limits[np.concatenate(drows)]]
    bits = np.zeros(total, dtype=bool)
    bits[dest] = True
    return np.packbits(bits).tobytes(), total


def _decode_block_bits(
    bits: list[int], pos: int, total: int, size: int, kmin: int, max_bits: int | None
) -> tuple[list[int] | None, int, bool, int]:
    """Mirror of :func:`_encode_block` over a plain 0/1 list.

    Returns ``(negabinary values | None, e, nonzero, new_pos)``; ``None``
    values mean an all-zero block.  Working on a pre-unpacked bit list
    with an integer cursor keeps the group-testing walk free of reader
    method calls — this loop is the whole cost of ZFP decompression.
    """
    start = pos
    if pos >= total:
        raise StreamFormatError("zfp stream exhausted at block start")
    nonzero = bits[pos]
    pos += 1
    if not nonzero:
        if max_bits is not None:
            # skip the zero-padding up to the fixed block budget
            pos = min(total, max(pos, start + max_bits))
        return None, 0, False, pos
    if pos + _EXP_BITS > total:
        raise StreamFormatError("zfp stream exhausted reading block exponent")
    e = 0
    for _ in range(_EXP_BITS):
        e = (e << 1) | bits[pos]
        pos += 1
    e -= _EXP_BIAS
    vals = [0] * size
    n = 0
    # Every probe consumes exactly one bit, so the budget and stream
    # bounds collapse into a single stop position for the cursor.
    stop_at = total if max_bits is None else min(total, start + max_bits)

    stop = False
    for k in range(PRECISION - 2, kmin - 1, -1):
        # verbatim bits for already-significant coefficients
        for i in range(n):
            if pos >= stop_at:
                stop = True
                break
            if bits[pos]:
                vals[i] |= 1 << k
            pos += 1
        if stop:
            break
        m = n
        while m < size:
            if pos >= stop_at:  # group bit: "another 1 at or beyond m?"
                stop = True
                break
            b = bits[pos]
            pos += 1
            if not b:
                break
            # scan explicit zeros up to the next 1; if the scan reaches the
            # final coefficient, its 1 is implicit (the group bit proved it)
            while m < size - 1:
                if pos >= stop_at:
                    stop = True
                    break
                bit = bits[pos]
                pos += 1
                if bit:
                    break
                m += 1
            if stop:
                break
            vals[m] |= 1 << k  # explicit 1 at m, or implicit 1 at size-1
            m += 1
        if stop:
            break
        n = m if m > n else n
    if max_bits is not None:
        # consume any unread remainder of the fixed block budget
        pos = min(total, start + max_bits)
    return vals, e, True, pos


class ZfpLikeCompressor(Compressor):
    """Fixed-rate / fixed-accuracy block transform compressor (zfp-style)."""

    name = "zfp-like"
    supported_modes = (PweMode, SizeMode)

    def compress(self, data: np.ndarray, mode: Mode) -> bytes:
        """Block-transform and bitplane-code under a rate or accuracy bound."""
        self.check_mode(mode)
        data = np.asarray(data, dtype=np.float64)
        if data.ndim < 1 or data.ndim > 3:
            raise InvalidArgumentError("zfp-like supports 1-D to 3-D arrays")
        if not np.all(np.isfinite(data)):
            raise InvalidArgumentError("input contains NaN or Inf")
        nd = data.ndim
        blocks, padded_shape, grid = _blockify(data)
        nb = blocks.shape[0]
        flat = blocks.reshape(nb, -1)
        maxabs = np.abs(flat).max(axis=1)
        exps = block_exponents(maxabs)
        nonzero = maxabs > 0

        scale = np.exp2((_SCALE_EXP - exps).astype(np.float64))
        ints = np.rint(flat * scale[:, None]).astype(np.int64)
        iblocks = ints.reshape(blocks.shape)
        fwd_lift(iblocks)
        perm, _ = zfp_scan_order(nd)
        coeffs = iblocks.reshape(nb, -1)[:, perm]
        u = to_negabinary(coeffs)

        if isinstance(mode, SizeMode):
            block_bits = max(8, int(round(mode.bpp * 4**nd)))
            kmins = np.zeros(nb, dtype=np.int64)
            max_bits: int | None = block_bits
            tol = 0.0
        else:
            tol = mode.tolerance
            # bitplane k of the block's ints represents magnitude
            # 2^(k + e + 2 - PRECISION); drop planes below tolerance with
            # a 2^(ndim * guard) safety factor for transform error growth.
            guard = nd * _ACCURACY_GUARD
            kmins = np.maximum(
                0,
                np.floor(np.log2(tol)).astype(np.int64) + _SCALE_EXP - exps - guard,
            )
            max_bits = None
            block_bits = 0

        if max_bits is None or max_bits >= 13:
            payload, nbits = _encode_blocks_vectorized(
                u, exps, nonzero, kmins, max_bits
            )
        else:
            # Budgets below the flag + exponent header interact with the
            # writer's truncation in ways the scatter form does not model;
            # keep the reference coder for that corner.
            writer = BitWriter()
            for b in range(nb):
                _encode_block(
                    writer,
                    u[b],
                    int(exps[b]),
                    bool(nonzero[b]),
                    int(kmins[b]),
                    max_bits,
                )
            payload, nbits = writer.getvalue(), writer.nbits
        head = _MAGIC + struct.pack(
            "<BBdQ", nd, 0 if isinstance(mode, SizeMode) else 1,
            mode.bpp if isinstance(mode, SizeMode) else tol,
            nbits,
        )
        head += struct.pack(f"<{nd}Q", *data.shape)
        head += struct.pack("<I", block_bits)
        return head + payload

    def decompress(self, payload: bytes) -> np.ndarray:
        """Decode blocks, invert the transform, crop the padding."""
        if payload[:4] != _MAGIC:
            raise StreamFormatError("not a zfp-like payload")
        with decode_guard(self.name):
            return self._decompress_body(payload)

    def _decompress_body(self, payload: bytes) -> np.ndarray:
        pos = 4
        nd, mode_code, param, nbits = struct.unpack_from("<BBdQ", payload, pos)
        pos += struct.calcsize("<BBdQ")
        if not 1 <= nd <= 3:
            raise StreamFormatError(f"zfp-like payload declares rank {nd}")
        if mode_code not in (0, 1):
            raise StreamFormatError(f"unknown zfp-like mode code {mode_code}")
        if mode_code == 1 and not (math.isfinite(param) and param > 0):
            raise StreamFormatError(f"invalid zfp-like tolerance {param!r}")
        shape = struct.unpack_from(f"<{nd}Q", payload, pos)
        pos += 8 * nd
        (block_bits,) = struct.unpack_from("<I", payload, pos)
        pos += 4
        shape = checked_shape(shape, self.name)

        padded_shape = tuple(-(-n // 4) * 4 for n in shape)
        grid = tuple(p // 4 for p in padded_shape)
        nb = math.prod(grid)
        size = 4**nd
        if nbits > 8 * len(payload):
            raise StreamFormatError(
                f"zfp-like payload declares {nbits} bits in "
                f"{len(payload) - pos} bytes"
            )
        # Every block costs at least its nonzero flag bit, so a stream with
        # fewer bits than blocks is corrupt — reject before sizing the
        # ``(nb, size)`` workspace from the forged shape.
        if nb > max(1, int(nbits)):
            raise StreamFormatError(
                f"zfp-like payload declares {nb} blocks in {nbits} bits"
            )
        total = int(nbits)
        if total > 8 * (len(payload) - pos):
            raise StreamFormatError(
                f"declared {total} bits but buffer holds only "
                f"{8 * (len(payload) - pos)}"
            )
        bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8, offset=pos))[
            :total
        ].tolist()
        max_bits = block_bits if mode_code == 0 else None

        u = np.zeros((nb, size), dtype=np.uint64)
        exps = np.zeros(nb, dtype=np.int64)
        nonzero = np.zeros(nb, dtype=bool)
        if mode_code == 1:
            # fixed-accuracy: the encoder's plane cutoff is kbase - e per
            # block; everything but the exponent is block-independent, so
            # hoist it out of the loop (math.log2 == np.log2 on scalars).
            kbase = math.floor(math.log2(param)) + _SCALE_EXP - nd * _ACCURACY_GUARD
        bpos = 0
        for b in range(nb):
            if mode_code == 1:
                # peek at the flag + exponent to derive kmin, then decode
                # the block normally from its start (a list peek is free —
                # no reader rewind needed).
                if bpos >= total:
                    raise StreamFormatError("zfp stream exhausted")
                kmin = 0
                if bits[bpos]:
                    if bpos + 1 + _EXP_BITS > total:
                        raise StreamFormatError(
                            "zfp stream exhausted reading block exponent"
                        )
                    e = 0
                    for t in range(_EXP_BITS):
                        e = (e << 1) | bits[bpos + 1 + t]
                    kmin = max(0, kbase - (e - _EXP_BIAS))
                vals, e2, nz2, bpos = _decode_block_bits(
                    bits, bpos, total, size, kmin, None
                )
            else:
                vals, e2, nz2, bpos = _decode_block_bits(
                    bits, bpos, total, size, 0, max_bits
                )
            if nz2:
                u[b] = vals
                exps[b] = e2
                nonzero[b] = True

        _, inv_perm = zfp_scan_order(nd)
        coeffs = from_negabinary(u)[:, inv_perm]
        iblocks = coeffs.reshape((nb,) + (4,) * nd).copy()
        inv_lift(iblocks)
        flat = iblocks.reshape(nb, -1).astype(np.float64)
        # a corrupt stream can carry absurd exponents; the values are
        # garbage either way, so let them saturate silently
        with np.errstate(over="ignore"):
            scale = np.exp2((exps - _SCALE_EXP).astype(np.float64))
            flat *= scale[:, None]
        flat[~nonzero] = 0.0
        out = _unblockify(flat.reshape((nb,) + (4,) * nd), shape, padded_shape, grid)
        return out
