"""ZFP-like fixed-rate / fixed-accuracy block transform compressor."""

from .transform import (
    PRECISION,
    block_exponents,
    from_negabinary,
    fwd_lift,
    inv_lift,
    permutation,
    to_negabinary,
)
from .zfp import ZfpLikeCompressor

__all__ = [
    "ZfpLikeCompressor",
    "PRECISION",
    "fwd_lift",
    "inv_lift",
    "permutation",
    "to_negabinary",
    "from_negabinary",
    "block_exponents",
]
