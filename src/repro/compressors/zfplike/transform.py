"""ZFP's block decorrelating transform and supporting conversions.

ZFP (Lindstrom, TVCG 2014 — reference [8] of the SPERR paper) partitions
the input into 4^d blocks, aligns each block to a common exponent,
applies a custom integer lifted transform (a cheap approximation of the
DCT), reorders coefficients by total sequency, converts to negabinary,
and codes bitplanes with per-plane group testing.

This module implements the numeric pieces, all vectorized across blocks
(the length-4 axes are unrolled, everything else broadcasts); the
bit-level codec lives in :mod:`repro.compressors.zfplike.zfp`.  The
lifting steps are transcribed from zfp's ``fwd_lift`` / ``inv_lift`` and
are exactly invertible on int64.
"""

from __future__ import annotations

import numpy as np

from ...errors import InvalidArgumentError

__all__ = [
    "fwd_lift",
    "inv_lift",
    "permutation",
    "to_negabinary",
    "from_negabinary",
    "block_exponents",
    "PRECISION",
]

#: Integer precision of the block-floating-point representation (bits).
PRECISION = 64

_NBMASK = np.uint64(0xAAAAAAAAAAAAAAAA)


def _rows(blocks: np.ndarray, axis: int) -> list[np.ndarray]:
    """Copies of the four length-4 slices along ``axis``."""
    sl: list[slice | int] = [slice(None)] * blocks.ndim
    out = []
    for i in range(4):
        s = list(sl)
        s[axis] = i
        out.append(blocks[tuple(s)].copy())
    return out


def _store(blocks: np.ndarray, axis: int, rows: list[np.ndarray]) -> None:
    for i, v in enumerate(rows):
        s: list[slice | int] = [slice(None)] * blocks.ndim
        s[axis] = i
        blocks[tuple(s)] = v


def _fwd_lift_axis(blocks: np.ndarray, axis: int) -> None:
    #        ( 4  4  4  4) (x)
    # 1/16 * ( 5  1 -1 -5) (y)
    #        (-4  4  4 -4) (z)
    #        (-2  6 -6  2) (w)
    x, y, z, w = _rows(blocks, axis)
    x += w
    x >>= 1
    w -= x
    z += y
    z >>= 1
    y -= z
    x += z
    x >>= 1
    z -= x
    w += y
    w >>= 1
    y -= w
    w += y >> 1
    y -= w >> 1
    _store(blocks, axis, [x, y, z, w])


def _inv_lift_axis(blocks: np.ndarray, axis: int) -> None:
    #       ( 4  6 -4 -1) (x)
    # 1/4 * ( 4  2  4  5) (y)
    #       ( 4 -2  4 -5) (z)
    #       ( 4 -6 -4  1) (w)
    x, y, z, w = _rows(blocks, axis)
    y += w >> 1
    w -= y >> 1
    y += w
    w <<= 1
    w -= y
    z += x
    x <<= 1
    x -= z
    y += z
    z <<= 1
    z -= y
    w += x
    x <<= 1
    x -= w
    _store(blocks, axis, [x, y, z, w])


def fwd_lift(blocks: np.ndarray) -> None:
    """Forward transform of all blocks in place (int64, shape (n, 4[,4[,4]]))."""
    if blocks.dtype != np.int64:
        raise InvalidArgumentError("lifting operates on int64 blocks")
    for axis in range(1, blocks.ndim):
        _fwd_lift_axis(blocks, axis)


def inv_lift(blocks: np.ndarray) -> None:
    """Inverse transform of all blocks in place (exact inverse of fwd_lift)."""
    if blocks.dtype != np.int64:
        raise InvalidArgumentError("lifting operates on int64 blocks")
    for axis in range(blocks.ndim - 1, 0, -1):
        _inv_lift_axis(blocks, axis)


def permutation(ndim: int) -> np.ndarray:
    """Coefficient scan order: ascending total sequency (zfp's PERM).

    Ties are broken lexicographically — a deterministic stand-in for
    zfp's hand-rolled order with the same energy-ranking effect.
    """
    if ndim < 1 or ndim > 3:
        raise InvalidArgumentError("ndim must be 1, 2, or 3")
    coords = np.indices((4,) * ndim).reshape(ndim, -1).T
    keys = [tuple(c) for c in coords]
    order = sorted(range(len(keys)), key=lambda i: (sum(keys[i]), keys[i]))
    return np.asarray(order, dtype=np.int64)


def to_negabinary(i: np.ndarray) -> np.ndarray:
    """Two's-complement int64 -> negabinary uint64 (sign-free)."""
    u = i.astype(np.uint64)
    return (u + _NBMASK) ^ _NBMASK


def from_negabinary(u: np.ndarray) -> np.ndarray:
    """Negabinary uint64 -> int64."""
    return ((u ^ _NBMASK) - _NBMASK).astype(np.int64)


def block_exponents(maxabs: np.ndarray) -> np.ndarray:
    """Per-block common exponent e with ``maxabs < 2**e`` (0 for empty blocks)."""
    e = np.zeros(maxabs.shape, dtype=np.int64)
    nz = maxabs > 0
    if nz.any():
        _, exp = np.frexp(maxabs[nz])
        e[nz] = exp
    return e
