"""Dead-zone mid-riser quantization with arbitrary step size.

Implements Sec. III-C of the paper: SPERR relaxes SPECK's integer
power-of-two thresholds to an arbitrary real quantization step ``q`` by
pre-scaling coefficients by ``1/q`` and running the integer bitplane
machinery on the scaled magnitudes.

* dead zone: coefficients with ``|c| <= q`` quantize to integer 0 and
  reconstruct as exactly 0;
* outside the dead zone, values in ``(i*q, (i+1)*q]`` reconstruct at
  ``(i + 1/2) * q`` (mid-riser), so the per-coefficient error is at most
  ``q/2``.
"""

from .deadzone import (
    MAX_INT_MAGNITUDE,
    calibrate_step,
    dequantize,
    dequantize_batch,
    integerize,
    integerize_batch,
    quantize_error_bound,
)

__all__ = [
    "integerize",
    "integerize_batch",
    "dequantize",
    "dequantize_batch",
    "quantize_error_bound",
    "calibrate_step",
    "MAX_INT_MAGNITUDE",
]
