"""Dead-zone mid-riser quantizer (see package docstring)."""

from __future__ import annotations

import numpy as np

from ..errors import InvalidArgumentError

__all__ = [
    "integerize",
    "integerize_batch",
    "dequantize",
    "dequantize_batch",
    "quantize_error_bound",
    "calibrate_step",
    "MAX_INT_MAGNITUDE",
]

#: Integer magnitudes above this would overflow the bitplane machinery; a
#: request implying them (absurdly small q for the data range) is an error.
MAX_INT_MAGNITUDE = np.uint64(1) << np.uint64(62)


def integerize(values: np.ndarray, q: float) -> tuple[np.ndarray, np.ndarray]:
    """Scale by ``1/q`` and split into integer magnitudes and signs.

    Returns ``(mags, negative)`` where ``mags[i] = floor(|values[i]| / q)``
    as ``uint64`` and ``negative`` is a boolean sign array.  A magnitude of
    zero means the value falls in the dead zone ``[-q, q]``.
    """
    if not np.isfinite(q) or q <= 0:
        raise InvalidArgumentError(f"quantization step must be positive, got {q}")
    values = np.asarray(values, dtype=np.float64)
    if not np.all(np.isfinite(values)):
        raise InvalidArgumentError("input contains NaN or Inf")
    scaled = np.abs(values) / q
    if scaled.max(initial=0.0) >= float(MAX_INT_MAGNITUDE):
        raise InvalidArgumentError(
            "quantization step too small for the data range (integer overflow)"
        )
    mags = np.floor(scaled).astype(np.uint64)
    return mags, values < 0


def _lane_steps(q, ndim: int) -> np.ndarray:
    """Validate and reshape a scalar or per-lane step for broadcasting."""
    qa = np.asarray(q, dtype=np.float64)
    if not np.all(np.isfinite(qa)) or np.any(qa <= 0):
        raise InvalidArgumentError(f"quantization step must be positive, got {q}")
    if qa.ndim:
        return qa.reshape((-1,) + (1,) * (ndim - 1))
    return qa


def integerize_batch(values: np.ndarray, q) -> tuple[np.ndarray, np.ndarray]:
    """Per-lane :func:`integerize` of a ``(lanes, ...)`` stack.

    ``q`` is a scalar or a per-lane array; the scale/floor arithmetic is
    elementwise, so lane ``l`` is bit-identical to
    ``integerize(values[l], q[l])``.
    """
    values = np.asarray(values, dtype=np.float64)
    qb = _lane_steps(q, values.ndim)
    if not np.all(np.isfinite(values)):
        raise InvalidArgumentError("input contains NaN or Inf")
    # Same |v|/q -> floor arithmetic as the serial path, staged in one
    # scratch buffer instead of three temporaries.
    scaled = np.abs(values)
    scaled /= qb
    if scaled.max(initial=0.0) >= float(MAX_INT_MAGNITUDE):
        raise InvalidArgumentError(
            "quantization step too small for the data range (integer overflow)"
        )
    np.floor(scaled, out=scaled)
    return scaled.astype(np.uint64), values < 0


def dequantize_batch(mags: np.ndarray, negative: np.ndarray, q) -> np.ndarray:
    """Per-lane :func:`dequantize` of a ``(lanes, ...)`` stack."""
    mags = np.asarray(mags, dtype=np.uint64)
    qb = _lane_steps(q, mags.ndim)
    out = mags.astype(np.float64)
    out += 0.5
    out *= qb
    out[mags == 0] = 0.0
    out[np.asarray(negative, dtype=bool)] *= -1.0
    return out


def dequantize(mags: np.ndarray, negative: np.ndarray, q: float) -> np.ndarray:
    """Mid-riser reconstruction: ``sign * (m + 1/2) * q`` outside the dead zone."""
    mags = np.asarray(mags, dtype=np.uint64)
    out = (mags.astype(np.float64) + 0.5) * q
    out[mags == 0] = 0.0
    out[np.asarray(negative, dtype=bool)] *= -1.0
    return out


def calibrate_step(values: np.ndarray, target_rms: float, margin: float = 0.9) -> float:
    """Largest quantization step whose RMS quantization error stays under
    ``margin * target_rms``.

    The error is monotone in the step size, so a log-domain bisection
    converges quickly.  Used by the PSNR-targeted modes (SPERR's Sec. VII
    average-error mode and the TTHRESH-like baseline), where orthogonal
    or near-orthogonal bases make coefficient-domain RMS equal
    data-domain RMS.
    """
    if not np.isfinite(target_rms) or target_rms <= 0:
        raise InvalidArgumentError("target RMS must be positive")
    values = np.asarray(values, dtype=np.float64)
    amax = float(np.abs(values).max(initial=0.0))
    if amax == 0.0:
        return 1.0
    lo, hi = target_rms * 1e-3, amax * 2.0
    for _ in range(60):
        mid = float(np.sqrt(lo * hi))
        mags, neg = integerize(values, mid)
        err = values - dequantize(mags, neg, mid)
        rms = float(np.sqrt(np.mean(err**2)))
        if rms > target_rms * margin:
            hi = mid
        else:
            lo = mid
        if hi / lo < 1.05:
            break
    return lo


def quantize_error_bound(q: float) -> float:
    """Worst-case per-coefficient quantization error: the dead zone admits
    errors up to ``q`` (values just inside reconstruct to 0), coded values
    err by at most ``q/2``."""
    return float(q)
