"""Testing utilities: seeded fault injection and decoder fuzzing.

Production decoders must treat every byte of a payload as hostile; this
package provides the corruption operators and the fuzz driver that make
that requirement executable (see ``tests/test_robustness.py``).
"""

from .faults import (
    FAULT_OPERATORS,
    CorruptionResult,
    FaultOperator,
    FuzzReport,
    FuzzViolation,
    corrupt,
    fuzz_decoder,
)

__all__ = [
    "FAULT_OPERATORS",
    "CorruptionResult",
    "FaultOperator",
    "FuzzReport",
    "FuzzViolation",
    "corrupt",
    "fuzz_decoder",
]
