"""Seeded, composable corruption operators and a decoder-fuzz driver.

The fault model covers what real storage and transport actually do to
bitstreams: single/multi bit flips, tail truncation, forged section
tables, chunk swap/duplication, and inflated length fields.  Every
operator is a pure function ``(payload, rng) -> bytes`` wrapped in a
:class:`FaultOperator`, so corruption campaigns are reproducible from a
single integer seed.

The contract the fuzz driver enforces (:func:`fuzz_decoder`): feeding any
corrupted payload to a decoder must either

* decode to *something* (damage landed in a don't-care region or was
  salvaged), or
* raise a :class:`~repro.errors.ReproError` subclass.

A raw ``struct.error`` / ``IndexError`` / ``KeyError`` escaping, an
unbounded allocation, or a hang is a decoder bug; the driver records
each as a :class:`FuzzViolation` with the seed that reproduces it.
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import ReproError

__all__ = [
    "FaultOperator",
    "CorruptionResult",
    "FuzzViolation",
    "FuzzReport",
    "FAULT_OPERATORS",
    "ARRAY_FAULT_OPERATORS",
    "corrupt",
    "inject_nonfinite",
    "fuzz_decoder",
    "fuzz_codec_inputs",
]


@dataclass(frozen=True)
class FaultOperator:
    """A named, seeded corruption of a byte payload."""

    name: str
    fn: Callable[[bytes, np.random.Generator], bytes]

    def __call__(self, payload: bytes, rng: np.random.Generator) -> bytes:
        """Apply the operator; always returns a new ``bytes`` object."""
        return self.fn(payload, rng)


def _bit_flip(payload: bytes, rng: np.random.Generator) -> bytes:
    """Flip 1-8 random bits anywhere in the payload."""
    if not payload:
        return payload
    buf = bytearray(payload)
    for _ in range(int(rng.integers(1, 9))):
        pos = int(rng.integers(0, len(buf)))
        buf[pos] ^= 1 << int(rng.integers(0, 8))
    return bytes(buf)


def _truncate(payload: bytes, rng: np.random.Generator) -> bytes:
    """Cut the payload at a random point (including down to nothing)."""
    if not payload:
        return payload
    return payload[: int(rng.integers(0, len(payload)))]


def _forge_section_table(payload: bytes, rng: np.random.Generator) -> bytes:
    """Overwrite 8 aligned bytes in the header region with random garbage.

    Container headers (magic, shape, chunk bounds, size table) live at
    the front; damaging them exercises every framing validation path.
    """
    if len(payload) < 16:
        return _bit_flip(payload, rng)
    head_span = min(len(payload) - 8, 256)
    pos = int(rng.integers(0, head_span // 8 + 1)) * 8
    buf = bytearray(payload)
    buf[pos : pos + 8] = rng.integers(0, 256, size=8, dtype=np.uint8).tobytes()
    return bytes(buf)


def _inflate_length_field(payload: bytes, rng: np.random.Generator) -> bytes:
    """Replace an aligned u32/u64 with a huge value.

    Simulates a corrupted length/count field; the decoder must reject it
    (or cap the allocation) rather than call ``np.empty`` on terabytes.
    """
    width = 8 if rng.integers(0, 2) else 4
    if len(payload) < width + 4:
        return _bit_flip(payload, rng)
    span = min(len(payload) - width, 512)
    pos = int(rng.integers(0, span // 4 + 1)) * 4
    huge = int(rng.integers(2**30, 2**62)) if width == 8 else int(rng.integers(2**28, 2**31))
    buf = bytearray(payload)
    buf[pos : pos + width] = huge.to_bytes(width, "little")
    return bytes(buf)


def _swap_segments(payload: bytes, rng: np.random.Generator) -> bytes:
    """Swap two equal-length interior segments (chunk-swap stand-in).

    On a multi-chunk container this transplants stream bytes between
    chunks; on a single-stream payload it scrambles section contents.
    Either way the total length is preserved, so only content checks
    (CRCs, shape cross-checks) can catch it.
    """
    if len(payload) < 32:
        return _bit_flip(payload, rng)
    seg = int(rng.integers(4, min(64, len(payload) // 4)))
    a = int(rng.integers(0, len(payload) - 2 * seg))
    b = int(rng.integers(a + seg, len(payload) - seg + 1))
    buf = bytearray(payload)
    buf[a : a + seg], buf[b : b + seg] = buf[b : b + seg], buf[a : a + seg]
    return bytes(buf)


def _duplicate_segment(payload: bytes, rng: np.random.Generator) -> bytes:
    """Duplicate an interior segment in place (chunk-duplication stand-in).

    Grows the payload, so section tables no longer match the bytes that
    are actually present — decoders must notice the trailing surplus.
    """
    if len(payload) < 16:
        return payload + payload
    seg = int(rng.integers(4, min(128, len(payload) // 2)))
    a = int(rng.integers(0, len(payload) - seg))
    insert_at = int(rng.integers(0, len(payload)))
    piece = payload[a : a + seg]
    return payload[:insert_at] + piece + payload[insert_at:]


#: The composable fault model, keyed by operator name.
FAULT_OPERATORS: dict[str, FaultOperator] = {
    op.name: op
    for op in (
        FaultOperator("bit_flip", _bit_flip),
        FaultOperator("truncate", _truncate),
        FaultOperator("forge_section_table", _forge_section_table),
        FaultOperator("inflate_length_field", _inflate_length_field),
        FaultOperator("swap_segments", _swap_segments),
        FaultOperator("duplicate_segment", _duplicate_segment),
    )
}


# -- input-array fault model ---------------------------------------------
#
# Bitstream corruption (above) models what storage does to *payloads*;
# these operators model what simulations do to *inputs*: NaN land
# masks, ±Inf overflow points, and fully-invalid frames.  Each is a
# pure function ``(array, rng) -> array`` returning a modified copy.


def _inject_scattered_nan(data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Poke NaN into a random 0.1-10% of the samples."""
    out = np.array(data, copy=True)
    flat = out.reshape(-1)
    n = max(1, int(flat.size * float(rng.uniform(0.001, 0.1))))
    flat[rng.choice(flat.size, size=n, replace=False)] = np.nan
    return out


def _inject_scattered_inf(data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Poke ±Inf overflow points into a random handful of samples."""
    out = np.array(data, copy=True)
    flat = out.reshape(-1)
    n = max(2, int(flat.size * float(rng.uniform(0.0005, 0.02))))
    idx = rng.choice(flat.size, size=n, replace=False)
    flat[idx[: n // 2]] = np.inf
    flat[idx[n // 2 :]] = -np.inf
    return out


def _inject_nan_block(data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """NaN out a contiguous corner block (ocean land-mask style)."""
    out = np.array(data, copy=True)
    sel = tuple(
        slice(0, int(rng.integers(1, max(2, n // 2)))) for n in out.shape
    )
    out[sel] = np.nan
    return out


def _inject_all_nan(data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Invalidate the entire frame (a fully-masked region of a run)."""
    return np.full_like(data, np.nan)


#: The input-array fault model, keyed by operator name.
ARRAY_FAULT_OPERATORS: dict[str, FaultOperator] = {
    op.name: op
    for op in (
        FaultOperator("scattered_nan", _inject_scattered_nan),
        FaultOperator("scattered_inf", _inject_scattered_inf),
        FaultOperator("nan_block", _inject_nan_block),
        FaultOperator("all_nan", _inject_all_nan),
    )
}


@dataclass(frozen=True)
class CorruptionResult:
    """A corrupted payload plus the operators that produced it."""

    payload: bytes
    applied: tuple[str, ...]
    seed: int


def corrupt(
    payload: bytes,
    seed: int,
    operators: list[str] | None = None,
    n_ops: int = 1,
) -> CorruptionResult:
    """Apply ``n_ops`` seeded operators (composed left to right).

    ``operators=None`` draws from the full :data:`FAULT_OPERATORS` set;
    a list of names restricts the pool.  The same ``(payload, seed,
    operators, n_ops)`` always produces the same corruption.
    """
    rng = np.random.default_rng(seed)
    pool = list(operators) if operators is not None else sorted(FAULT_OPERATORS)
    applied = []
    out = payload
    for _ in range(n_ops):
        name = pool[int(rng.integers(0, len(pool)))]
        out = FAULT_OPERATORS[name](out, rng)
        applied.append(name)
    return CorruptionResult(payload=out, applied=tuple(applied), seed=seed)


def inject_nonfinite(
    data: np.ndarray,
    seed: int,
    operators: list[str] | None = None,
    n_ops: int = 1,
) -> tuple[np.ndarray, tuple[str, ...]]:
    """Apply ``n_ops`` seeded input-array operators (composed in order).

    The array analogue of :func:`corrupt`: ``operators=None`` draws from
    the full :data:`ARRAY_FAULT_OPERATORS` set.  Returns the corrupted
    copy plus the applied chain; the input is never modified.
    """
    rng = np.random.default_rng(seed)
    pool = (
        list(operators) if operators is not None else sorted(ARRAY_FAULT_OPERATORS)
    )
    applied = []
    out = np.asarray(data)
    for _ in range(n_ops):
        name = pool[int(rng.integers(0, len(pool)))]
        out = ARRAY_FAULT_OPERATORS[name](out, rng)
        applied.append(name)
    return out, tuple(applied)


@dataclass(frozen=True)
class FuzzViolation:
    """One fuzz case that broke the decoder contract."""

    seed: int
    applied: tuple[str, ...]
    kind: str  # "exception" | "hang" | "operator" | "contract"
    detail: str


@dataclass
class FuzzReport:
    """Outcome of a fuzz campaign over one decoder."""

    n_runs: int = 0
    n_decoded: int = 0
    n_rejected: int = 0
    violations: list[FuzzViolation] = field(default_factory=list)
    slowest_seconds: float = 0.0
    #: Campaign parameters, recorded so every violation is replayable
    #: without hunting through the test that launched it.  ``operators``
    #: is the *pool* the campaign drew from (None = all operators) — a
    #: replay must pass the same pool, not the applied chain, because
    #: :func:`corrupt` draws names from the pool with the seeded rng.
    operators: tuple[str, ...] | None = None
    n_ops: int = 1

    @property
    def ok(self) -> bool:
        """True when no corruption escaped the error contract."""
        return not self.violations

    def summary(self) -> str:
        """One-line digest for assertion messages."""
        head = (
            f"{self.n_runs} corruptions: {self.n_decoded} decoded, "
            f"{self.n_rejected} rejected cleanly, "
            f"{len(self.violations)} contract violations"
        )
        if self.violations:
            pool = list(self.operators) if self.operators is not None else None
            worst = self.violations[:5]
            lines = [
                f"  seed={v.seed} ops={'+'.join(v.applied)} [{v.kind}] {v.detail}"
                f"\n    replay: corrupt(payload, seed={v.seed}, "
                f"operators={pool!r}, n_ops={self.n_ops})"
                for v in worst
            ]
            head += "\n" + "\n".join(lines)
        return head


def fuzz_decoder(
    decode: Callable[[bytes], object],
    payload: bytes,
    *,
    n: int = 500,
    operators: list[str] | None = None,
    n_ops: int = 1,
    seed: int = 0,
    time_limit: float = 20.0,
) -> FuzzReport:
    """Run ``n`` seeded corruptions of ``payload`` through ``decode``.

    ``decode`` may return anything (the result is discarded); it must
    either succeed or raise a :class:`~repro.errors.ReproError`.  Any
    other exception, or a single decode slower than ``time_limit``
    seconds (the in-process stand-in for a hang), is recorded as a
    violation.  Seeds are ``seed .. seed+n-1``; the report records the
    operator pool and ``n_ops``, and :meth:`FuzzReport.summary` prints a
    ready-to-paste ``corrupt(...)`` replay line for each violation.
    """
    report = FuzzReport(
        operators=tuple(operators) if operators is not None else None,
        n_ops=n_ops,
    )
    for s in range(seed, seed + n):
        report.n_runs += 1
        try:
            case = corrupt(payload, s, operators=operators, n_ops=n_ops)
        except Exception as exc:  # noqa: BLE001 - operators must not raise
            report.violations.append(
                FuzzViolation(
                    seed=s,
                    applied=(),
                    kind="operator",
                    detail=f"corrupt() itself raised {type(exc).__name__}: {exc}",
                )
            )
            continue
        t0 = time.perf_counter()
        try:
            decode(case.payload)
            report.n_decoded += 1
        except ReproError:
            report.n_rejected += 1
        except Exception as exc:  # noqa: BLE001 - the contract under test
            report.violations.append(
                FuzzViolation(
                    seed=s,
                    applied=case.applied,
                    kind="exception",
                    detail=f"{type(exc).__name__}: {exc}",
                )
            )
        elapsed = time.perf_counter() - t0
        report.slowest_seconds = max(report.slowest_seconds, elapsed)
        if elapsed > time_limit:
            report.violations.append(
                FuzzViolation(
                    seed=s,
                    applied=case.applied,
                    kind="hang",
                    detail=f"decode took {elapsed:.1f}s (> {time_limit}s limit)",
                )
            )
    return report


def fuzz_codec_inputs(
    roundtrip: Callable[[np.ndarray], np.ndarray],
    data: np.ndarray,
    *,
    n: int = 50,
    operators: list[str] | None = None,
    n_ops: int = 1,
    seed: int = 0,
) -> FuzzReport:
    """Fuzz a codec with NaN/Inf-damaged *inputs* instead of payloads.

    For each seed the input is damaged through
    :data:`ARRAY_FAULT_OPERATORS` and pushed through ``roundtrip``
    (compress + decompress).  The contract: the roundtrip either raises
    a :class:`~repro.errors.ReproError` or returns an array that

    * keeps the input's dtype and shape,
    * reproduces the NaN/+Inf/-Inf pattern of the damaged input
      *exactly* (no unflagged garbage, no leaked fill values),
    * is finite everywhere the damaged input was finite.

    Anything else is recorded as a violation with a replayable seed.
    """
    report = FuzzReport(
        operators=tuple(operators) if operators is not None else None,
        n_ops=n_ops,
    )
    for s in range(seed, seed + n):
        report.n_runs += 1
        damaged, applied = inject_nonfinite(
            data, s, operators=operators, n_ops=n_ops
        )
        try:
            out = roundtrip(damaged)
        except ReproError:
            report.n_rejected += 1
            continue
        except Exception as exc:  # noqa: BLE001 - the contract under test
            report.violations.append(
                FuzzViolation(
                    seed=s,
                    applied=applied,
                    kind="exception",
                    detail=f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        problem = _check_masked_roundtrip(damaged, out)
        if problem is None:
            report.n_decoded += 1
        else:
            report.violations.append(
                FuzzViolation(
                    seed=s, applied=applied, kind="contract", detail=problem
                )
            )
    return report


def _check_masked_roundtrip(data: np.ndarray, out: np.ndarray) -> str | None:
    """The unflagged-garbage check behind :func:`fuzz_codec_inputs`."""
    if not isinstance(out, np.ndarray):
        return f"roundtrip returned {type(out).__name__}, not an ndarray"
    if out.dtype != data.dtype:
        return f"dtype changed: {data.dtype} -> {out.dtype}"
    if out.shape != data.shape:
        return f"shape changed: {data.shape} -> {out.shape}"
    for kind, pred in (
        ("NaN", np.isnan),
        ("+Inf", np.isposinf),
        ("-Inf", np.isneginf),
    ):
        want, got = pred(data), pred(out)
        if not np.array_equal(want, got):
            extra = int(np.count_nonzero(got & ~want))
            lost = int(np.count_nonzero(want & ~got))
            return f"{kind} pattern mismatch ({extra} unflagged, {lost} lost)"
    return None
