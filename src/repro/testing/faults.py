"""Seeded, composable corruption operators and a decoder-fuzz driver.

The fault model covers what real storage and transport actually do to
bitstreams: single/multi bit flips, tail truncation, forged section
tables, chunk swap/duplication, and inflated length fields.  Every
operator is a pure function ``(payload, rng) -> bytes`` wrapped in a
:class:`FaultOperator`, so corruption campaigns are reproducible from a
single integer seed.

The contract the fuzz driver enforces (:func:`fuzz_decoder`): feeding any
corrupted payload to a decoder must either

* decode to *something* (damage landed in a don't-care region or was
  salvaged), or
* raise a :class:`~repro.errors.ReproError` subclass.

A raw ``struct.error`` / ``IndexError`` / ``KeyError`` escaping, an
unbounded allocation, or a hang is a decoder bug; the driver records
each as a :class:`FuzzViolation` with the seed that reproduces it.
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import ReproError

__all__ = [
    "FaultOperator",
    "CorruptionResult",
    "FuzzViolation",
    "FuzzReport",
    "FAULT_OPERATORS",
    "corrupt",
    "fuzz_decoder",
]


@dataclass(frozen=True)
class FaultOperator:
    """A named, seeded corruption of a byte payload."""

    name: str
    fn: Callable[[bytes, np.random.Generator], bytes]

    def __call__(self, payload: bytes, rng: np.random.Generator) -> bytes:
        """Apply the operator; always returns a new ``bytes`` object."""
        return self.fn(payload, rng)


def _bit_flip(payload: bytes, rng: np.random.Generator) -> bytes:
    """Flip 1-8 random bits anywhere in the payload."""
    if not payload:
        return payload
    buf = bytearray(payload)
    for _ in range(int(rng.integers(1, 9))):
        pos = int(rng.integers(0, len(buf)))
        buf[pos] ^= 1 << int(rng.integers(0, 8))
    return bytes(buf)


def _truncate(payload: bytes, rng: np.random.Generator) -> bytes:
    """Cut the payload at a random point (including down to nothing)."""
    if not payload:
        return payload
    return payload[: int(rng.integers(0, len(payload)))]


def _forge_section_table(payload: bytes, rng: np.random.Generator) -> bytes:
    """Overwrite 8 aligned bytes in the header region with random garbage.

    Container headers (magic, shape, chunk bounds, size table) live at
    the front; damaging them exercises every framing validation path.
    """
    if len(payload) < 16:
        return _bit_flip(payload, rng)
    head_span = min(len(payload) - 8, 256)
    pos = int(rng.integers(0, head_span // 8 + 1)) * 8
    buf = bytearray(payload)
    buf[pos : pos + 8] = rng.integers(0, 256, size=8, dtype=np.uint8).tobytes()
    return bytes(buf)


def _inflate_length_field(payload: bytes, rng: np.random.Generator) -> bytes:
    """Replace an aligned u32/u64 with a huge value.

    Simulates a corrupted length/count field; the decoder must reject it
    (or cap the allocation) rather than call ``np.empty`` on terabytes.
    """
    width = 8 if rng.integers(0, 2) else 4
    if len(payload) < width + 4:
        return _bit_flip(payload, rng)
    span = min(len(payload) - width, 512)
    pos = int(rng.integers(0, span // 4 + 1)) * 4
    huge = int(rng.integers(2**30, 2**62)) if width == 8 else int(rng.integers(2**28, 2**31))
    buf = bytearray(payload)
    buf[pos : pos + width] = huge.to_bytes(width, "little")
    return bytes(buf)


def _swap_segments(payload: bytes, rng: np.random.Generator) -> bytes:
    """Swap two equal-length interior segments (chunk-swap stand-in).

    On a multi-chunk container this transplants stream bytes between
    chunks; on a single-stream payload it scrambles section contents.
    Either way the total length is preserved, so only content checks
    (CRCs, shape cross-checks) can catch it.
    """
    if len(payload) < 32:
        return _bit_flip(payload, rng)
    seg = int(rng.integers(4, min(64, len(payload) // 4)))
    a = int(rng.integers(0, len(payload) - 2 * seg))
    b = int(rng.integers(a + seg, len(payload) - seg + 1))
    buf = bytearray(payload)
    buf[a : a + seg], buf[b : b + seg] = buf[b : b + seg], buf[a : a + seg]
    return bytes(buf)


def _duplicate_segment(payload: bytes, rng: np.random.Generator) -> bytes:
    """Duplicate an interior segment in place (chunk-duplication stand-in).

    Grows the payload, so section tables no longer match the bytes that
    are actually present — decoders must notice the trailing surplus.
    """
    if len(payload) < 16:
        return payload + payload
    seg = int(rng.integers(4, min(128, len(payload) // 2)))
    a = int(rng.integers(0, len(payload) - seg))
    insert_at = int(rng.integers(0, len(payload)))
    piece = payload[a : a + seg]
    return payload[:insert_at] + piece + payload[insert_at:]


#: The composable fault model, keyed by operator name.
FAULT_OPERATORS: dict[str, FaultOperator] = {
    op.name: op
    for op in (
        FaultOperator("bit_flip", _bit_flip),
        FaultOperator("truncate", _truncate),
        FaultOperator("forge_section_table", _forge_section_table),
        FaultOperator("inflate_length_field", _inflate_length_field),
        FaultOperator("swap_segments", _swap_segments),
        FaultOperator("duplicate_segment", _duplicate_segment),
    )
}


@dataclass(frozen=True)
class CorruptionResult:
    """A corrupted payload plus the operators that produced it."""

    payload: bytes
    applied: tuple[str, ...]
    seed: int


def corrupt(
    payload: bytes,
    seed: int,
    operators: list[str] | None = None,
    n_ops: int = 1,
) -> CorruptionResult:
    """Apply ``n_ops`` seeded operators (composed left to right).

    ``operators=None`` draws from the full :data:`FAULT_OPERATORS` set;
    a list of names restricts the pool.  The same ``(payload, seed,
    operators, n_ops)`` always produces the same corruption.
    """
    rng = np.random.default_rng(seed)
    pool = list(operators) if operators is not None else sorted(FAULT_OPERATORS)
    applied = []
    out = payload
    for _ in range(n_ops):
        name = pool[int(rng.integers(0, len(pool)))]
        out = FAULT_OPERATORS[name](out, rng)
        applied.append(name)
    return CorruptionResult(payload=out, applied=tuple(applied), seed=seed)


@dataclass(frozen=True)
class FuzzViolation:
    """One fuzz case that broke the decoder contract."""

    seed: int
    applied: tuple[str, ...]
    kind: str  # "exception" | "hang" | "operator"
    detail: str


@dataclass
class FuzzReport:
    """Outcome of a fuzz campaign over one decoder."""

    n_runs: int = 0
    n_decoded: int = 0
    n_rejected: int = 0
    violations: list[FuzzViolation] = field(default_factory=list)
    slowest_seconds: float = 0.0
    #: Campaign parameters, recorded so every violation is replayable
    #: without hunting through the test that launched it.  ``operators``
    #: is the *pool* the campaign drew from (None = all operators) — a
    #: replay must pass the same pool, not the applied chain, because
    #: :func:`corrupt` draws names from the pool with the seeded rng.
    operators: tuple[str, ...] | None = None
    n_ops: int = 1

    @property
    def ok(self) -> bool:
        """True when no corruption escaped the error contract."""
        return not self.violations

    def summary(self) -> str:
        """One-line digest for assertion messages."""
        head = (
            f"{self.n_runs} corruptions: {self.n_decoded} decoded, "
            f"{self.n_rejected} rejected cleanly, "
            f"{len(self.violations)} contract violations"
        )
        if self.violations:
            pool = list(self.operators) if self.operators is not None else None
            worst = self.violations[:5]
            lines = [
                f"  seed={v.seed} ops={'+'.join(v.applied)} [{v.kind}] {v.detail}"
                f"\n    replay: corrupt(payload, seed={v.seed}, "
                f"operators={pool!r}, n_ops={self.n_ops})"
                for v in worst
            ]
            head += "\n" + "\n".join(lines)
        return head


def fuzz_decoder(
    decode: Callable[[bytes], object],
    payload: bytes,
    *,
    n: int = 500,
    operators: list[str] | None = None,
    n_ops: int = 1,
    seed: int = 0,
    time_limit: float = 20.0,
) -> FuzzReport:
    """Run ``n`` seeded corruptions of ``payload`` through ``decode``.

    ``decode`` may return anything (the result is discarded); it must
    either succeed or raise a :class:`~repro.errors.ReproError`.  Any
    other exception, or a single decode slower than ``time_limit``
    seconds (the in-process stand-in for a hang), is recorded as a
    violation.  Seeds are ``seed .. seed+n-1``; the report records the
    operator pool and ``n_ops``, and :meth:`FuzzReport.summary` prints a
    ready-to-paste ``corrupt(...)`` replay line for each violation.
    """
    report = FuzzReport(
        operators=tuple(operators) if operators is not None else None,
        n_ops=n_ops,
    )
    for s in range(seed, seed + n):
        report.n_runs += 1
        try:
            case = corrupt(payload, s, operators=operators, n_ops=n_ops)
        except Exception as exc:  # noqa: BLE001 - operators must not raise
            report.violations.append(
                FuzzViolation(
                    seed=s,
                    applied=(),
                    kind="operator",
                    detail=f"corrupt() itself raised {type(exc).__name__}: {exc}",
                )
            )
            continue
        t0 = time.perf_counter()
        try:
            decode(case.payload)
            report.n_decoded += 1
        except ReproError:
            report.n_rejected += 1
        except Exception as exc:  # noqa: BLE001 - the contract under test
            report.violations.append(
                FuzzViolation(
                    seed=s,
                    applied=case.applied,
                    kind="exception",
                    detail=f"{type(exc).__name__}: {exc}",
                )
            )
        elapsed = time.perf_counter() - t0
        report.slowest_seconds = max(report.slowest_seconds, elapsed)
        if elapsed > time_limit:
            report.violations.append(
                FuzzViolation(
                    seed=s,
                    applied=case.applied,
                    kind="hang",
                    detail=f"decode took {elapsed:.1f}s (> {time_limit}s limit)",
                )
            )
    return report
