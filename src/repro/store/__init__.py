"""Random-access compressed-array store (sharded chunks + footer index).

The container format (:mod:`repro.core.container`) is a single sealed
payload: reading any region means reading — and at minimum CRC-framing —
the whole thing.  This package adds a *store*: a directory of shard
files holding the same per-chunk compressed streams, plus a compact
binary footer index mapping every chunk id to its shard, byte extent,
CRC32, and bounding box.  Because the chunk streams are byte-identical
to container chunk streams, every existing decoder, the CRC salvage
path, and the progressive truncation primitives apply unchanged.

* :class:`StoreWriter` / :func:`write_store` build a store from one or
  more frames (arrays sharing a shape and chunk grid).
* :func:`open_store` returns a :class:`CompressedArray` — a lazy view
  whose :meth:`~CompressedArray.read_window` decodes only the chunks
  intersecting the requested window, optionally at a coarser multires
  level or under a per-request byte budget, with repeat traffic served
  from a thread-safe memory-budgeted LRU (:class:`DecodedChunkCache`).

See ``docs/store.md`` for the on-disk format and cache semantics.
"""

from .cache import (
    DEFAULT_CACHE_BYTES,
    DecodedChunkCache,
    TenantCacheBudget,
    TenantCacheView,
)
from .format import (
    DEFAULT_SHARD_BYTES,
    INDEX_NAME,
    ChunkEntry,
    StoreIndex,
    pack_index,
    parse_index,
    shard_name,
)
from .reader import CompressedArray, open_store
from .writer import StoreWriter, write_store

__all__ = [
    "StoreWriter",
    "write_store",
    "open_store",
    "CompressedArray",
    "DecodedChunkCache",
    "TenantCacheBudget",
    "TenantCacheView",
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_SHARD_BYTES",
    "StoreIndex",
    "ChunkEntry",
    "INDEX_NAME",
    "pack_index",
    "parse_index",
    "shard_name",
]
