"""Store writer: compress frames into shard files plus a footer index.

:class:`StoreWriter` drives the standard container pipeline
(:func:`repro.compress` — same chunking, same per-chunk streams, same
CRCs) and redistributes the resulting chunk streams across shard files,
rotating to a fresh shard once the current one exceeds the shard-size
target.  The footer index (:mod:`repro.store.format`) is written last,
atomically, so a crash mid-write leaves a store that simply fails to
open rather than one that opens onto garbage.

Because the chunk grid is a pure function of ``(shape, chunk_shape)``,
every appended frame shares one grid and the index stores it once.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from .. import obs
from ..errors import InvalidArgumentError
from ..core.container import CompressionResult, compress, parse_container
from ..core.modes import PsnrMode, PweMode, SizeMode
from .format import (
    DEFAULT_SHARD_BYTES,
    INDEX_NAME,
    SHARD_MAGIC,
    ChunkEntry,
    StoreIndex,
    pack_index,
    shard_name,
)

__all__ = ["StoreWriter", "write_store"]


class StoreWriter:
    """Create a store directory and append compressed frames to it.

    Usable as a context manager; the footer index is written by
    :meth:`close` (or a clean ``with`` exit).  Leaving the block on an
    exception closes the shard files without writing an index, so a
    partial store is never openable.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        mode: PweMode | SizeMode | PsnrMode,
        *,
        chunk_shape: int | tuple[int, ...] | None = None,
        wavelet: str = "cdf97",
        levels: int | None = None,
        lossless_method: str = "auto",
        shard_bytes: int = DEFAULT_SHARD_BYTES,
        executor: str = "serial",
        workers: int | None = None,
        codec: str = "quality",
    ) -> None:
        if shard_bytes < 1:
            raise InvalidArgumentError("shard_bytes must be positive")
        self.path = Path(path)
        if (self.path / INDEX_NAME).exists():
            raise InvalidArgumentError(
                f"{self.path} already contains a store index; refusing to "
                "overwrite an existing store"
            )
        self.mode = mode
        self.chunk_shape = chunk_shape
        self.wavelet = wavelet
        self.levels = levels
        self.lossless_method = lossless_method
        self.shard_bytes = int(shard_bytes)
        self.executor = executor
        self.workers = workers
        self.codec = codec
        self.path.mkdir(parents=True, exist_ok=True)
        self._meta: dict | None = None  # rank/dtype/mode_code/shape/chunks
        self._entries: list[tuple[ChunkEntry, ...]] = []
        self._frame_masks: list[bytes | None] = []
        self._frame_codecs: list[tuple[int, ...]] = []
        self._shard_id = -1
        self._shard_file = None
        self._shard_pos = 0
        self._closed = False

    def __enter__(self) -> "StoreWriter":
        """Enter the writer context."""
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Finalize the index on a clean exit; just close files on error."""
        if exc_type is None:
            self.close()
        else:
            self._close_shard()
            self._closed = True
        return False

    def append(self, data: np.ndarray) -> CompressionResult:
        """Compress one frame and append its chunk streams to the shards.

        The first frame fixes the store's shape, dtype, and chunk grid;
        later frames must match.  Returns the frame's
        :class:`~repro.core.container.CompressionResult` (per-chunk
        accounting; the container payload itself is transient).
        """
        if self._closed:
            raise InvalidArgumentError("store writer is closed")
        result = compress(
            data,
            self.mode,
            chunk_shape=self.chunk_shape,
            wavelet=self.wavelet,
            levels=self.levels,
            lossless_method=self.lossless_method,
            executor=self.executor,
            workers=self.workers,
            codec=self.codec,
        )
        parsed = parse_container(result.payload)
        if self._meta is None:
            self._meta = {
                "rank": parsed.rank,
                "dtype": parsed.dtype,
                "mode_code": parsed.mode_code,
                "shape": parsed.shape,
                "chunks": parsed.chunks,
            }
        else:
            if parsed.shape != self._meta["shape"]:
                raise InvalidArgumentError(
                    f"frame shape {parsed.shape} does not match the store's "
                    f"{self._meta['shape']}"
                )
            if parsed.dtype != self._meta["dtype"]:
                raise InvalidArgumentError(
                    f"frame dtype {parsed.dtype} does not match the store's "
                    f"{self._meta['dtype']}"
                )
        crcs = parsed.chunk_crcs or ()
        with obs.span(
            "store.write_frame", frame=len(self._entries), n_chunks=len(parsed.streams)
        ):
            frame_entries = tuple(
                self._write_stream(stream, crc)
                for stream, crc in zip(parsed.streams, crcs)
            )
            obs.add_counter(
                "store.bytes.written", sum(e.length for e in frame_entries)
            )
        self._entries.append(frame_entries)
        # Frames with NaN/Inf samples carry their mask in the footer
        # index (per-frame table), not in the shards — the chunk streams
        # themselves stay mask-free and byte-identical to container ones.
        self._frame_masks.append(parsed.mask_blob)
        self._frame_codecs.append(
            parsed.codec_tags or (0,) * len(parsed.streams)
        )
        return result

    def _write_stream(self, stream: bytes, crc: int) -> ChunkEntry:
        """Append one chunk stream, rotating shards past the size target."""
        if self._shard_file is None or (
            self._shard_pos > len(SHARD_MAGIC)
            and self._shard_pos + len(stream) > self.shard_bytes
        ):
            self._close_shard()
            self._shard_id += 1
            self._shard_file = open(self.path / shard_name(self._shard_id), "wb")
            self._shard_file.write(SHARD_MAGIC)
            self._shard_pos = len(SHARD_MAGIC)
        offset = self._shard_pos
        self._shard_file.write(stream)
        self._shard_pos += len(stream)
        return ChunkEntry(
            shard=self._shard_id, offset=offset, length=len(stream), crc32=crc
        )

    def _close_shard(self) -> None:
        if self._shard_file is not None:
            self._shard_file.flush()
            os.fsync(self._shard_file.fileno())
            self._shard_file.close()
            self._shard_file = None

    def close(self) -> StoreIndex:
        """Flush shards and write the footer index; returns the index.

        Closing a writer that never appended a frame is an error — an
        empty store has no shape and cannot be opened.
        """
        if self._closed:
            raise InvalidArgumentError("store writer is already closed")
        if self._meta is None:
            self._close_shard()
            self._closed = True
            raise InvalidArgumentError("cannot finalize a store with no frames")
        self._close_shard()
        index = StoreIndex(
            rank=self._meta["rank"],
            dtype=self._meta["dtype"],
            mode_code=self._meta["mode_code"],
            shape=self._meta["shape"],
            chunks=self._meta["chunks"],
            wavelet=self.wavelet,
            levels=self.levels,
            n_shards=self._shard_id + 1,
            entries=tuple(self._entries),
            frame_masks=tuple(self._frame_masks),
            frame_codecs=(
                tuple(self._frame_codecs)
                if any(any(t != 0 for t in f) for f in self._frame_codecs)
                else ()
            ),
        )
        # Durable, atomic index publication: the temp file is fsynced
        # before the rename and the directory after it, so a crash at
        # any point leaves either no index (store unreadable) or the
        # complete one — never a torn write, and never a rename that
        # itself vanishes because the directory entry was unsynced.
        tmp = self.path / (INDEX_NAME + ".tmp")
        with open(tmp, "wb") as f:
            f.write(pack_index(index))
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, self.path / INDEX_NAME)
        try:
            dir_fd = os.open(self.path, os.O_RDONLY)
        except OSError:
            pass  # platforms without directory fds lose only the dir sync
        else:
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        self._closed = True
        return index


def write_store(
    path: str | os.PathLike,
    data: np.ndarray,
    mode: PweMode | SizeMode | PsnrMode,
    **kwargs,
) -> CompressionResult:
    """Compress a single array into a new store at ``path``.

    Convenience wrapper over :class:`StoreWriter` for the common
    one-frame case; keyword arguments are forwarded to the writer.
    Returns the frame's compression accounting.
    """
    with StoreWriter(path, mode, **kwargs) as writer:
        return writer.append(data)
