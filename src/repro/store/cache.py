"""Memory-budgeted LRU cache of decoded chunks.

Repeat window reads over the same region of a store mostly hit the same
chunks; decoding a chunk costs milliseconds while copying its decoded
array out of memory costs microseconds.  :class:`DecodedChunkCache`
keeps recently decoded chunk arrays (keyed by ``(frame, chunk, level)``)
under a byte budget, evicting least-recently-used entries, so warm
window reads skip the SPECK/wavelet pipeline entirely.

The cache is shared by every thread reading through one
:class:`~repro.store.CompressedArray`: all bookkeeping happens under a
single lock, and cached arrays are marked read-only so a hit can be
served zero-copy without risking cache poisoning through an aliased
mutation.

:class:`TenantCacheBudget` layers multi-tenancy on the same idea for
the service tier: one LRU per tenant under a per-tenant byte quota,
plus a global ceiling, so one tenant's traffic cannot evict another
tenant's working set (see ``docs/service.md`` for the tenancy model).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

import numpy as np

from ..errors import InvalidArgumentError

__all__ = [
    "DecodedChunkCache",
    "DEFAULT_CACHE_BYTES",
    "TenantCacheBudget",
    "TenantCacheView",
]

#: Default decoded-chunk cache budget per open store (64 MiB).
DEFAULT_CACHE_BYTES = 64 << 20


class DecodedChunkCache:
    """Thread-safe LRU of decoded chunk arrays under a byte budget.

    ``max_bytes=0`` disables the cache (every :meth:`get` misses and
    :meth:`put` is a no-op), which is the reference behaviour the
    equivalence tests compare against.
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if max_bytes < 0:
            raise InvalidArgumentError("cache budget must be non-negative")
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()
        self._nbytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def enabled(self) -> bool:
        """True when the cache has a non-zero budget."""
        return self.max_bytes > 0

    @property
    def nbytes(self) -> int:
        """Current resident bytes (always ``<= max_bytes``)."""
        with self._lock:
            return self._nbytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> np.ndarray | None:
        """Look up a decoded chunk; a hit moves the entry to MRU.

        Returns the cached (read-only) array or ``None`` on a miss.
        """
        with self._lock:
            arr = self._entries.get(key)
            if arr is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return arr

    def put(self, key: Hashable, arr: np.ndarray) -> bool:
        """Insert a decoded chunk, evicting LRU entries over budget.

        Arrays larger than the whole budget are not cached (they would
        evict everything and then be evicted themselves on the next
        insert).  The stored array is marked read-only; callers must
        treat hits as immutable.  Returns True when the entry resides in
        the cache on return.
        """
        if not self.enabled or arr.nbytes > self.max_bytes:
            return False
        arr.setflags(write=False)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._nbytes -= old.nbytes
            self._entries[key] = arr
            self._nbytes += arr.nbytes
            while self._nbytes > self.max_bytes and self._entries:
                _, victim = self._entries.popitem(last=False)
                self._nbytes -= victim.nbytes
                self._evictions += 1
            return key in self._entries

    def clear(self) -> None:
        """Drop every entry (budget and counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._nbytes = 0

    def stats(self) -> dict[str, int]:
        """Snapshot of hit/miss/eviction counters and residency."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "entries": len(self._entries),
                "nbytes": self._nbytes,
                "max_bytes": self.max_bytes,
            }


class _TenantState:
    """Per-tenant bookkeeping inside a :class:`TenantCacheBudget`."""

    __slots__ = ("entries", "nbytes", "hits", "misses", "evictions")

    def __init__(self) -> None:
        self.entries: "OrderedDict[Hashable, tuple[np.ndarray, int]]" = OrderedDict()
        self.nbytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class TenantCacheBudget:
    """Multi-tenant decoded-chunk cache: per-tenant quotas + global ceiling.

    :class:`DecodedChunkCache` budgets one anonymous consumer; a service
    front door shares one cache between tenants with very different
    traffic, and a single hot tenant must not be able to evict another
    tenant's working set.  This policy keeps one LRU per tenant with a
    byte *quota* and enforces a global byte *ceiling* across tenants:

    * an insert first evicts the inserting tenant's own LRU entries
      while that tenant is over its quota;
    * if the global ceiling is still exceeded, eviction victims are
      drawn from tenants *over their quota* first (oldest entry first);
      only when every tenant is within quota — i.e. the quotas
      oversubscribe the ceiling — does eviction fall back to the
      globally least-recently-used entry.

    When the per-tenant quotas sum to at most ``max_bytes``, a tenant
    within its quota is therefore never evicted by another tenant's
    traffic.  All bookkeeping happens under one lock; cached arrays are
    marked read-only, exactly like :class:`DecodedChunkCache`.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_CACHE_BYTES,
        *,
        default_quota: int | None = None,
        quotas: dict[str, int] | None = None,
    ) -> None:
        if max_bytes < 0:
            raise InvalidArgumentError("cache ceiling must be non-negative")
        self.max_bytes = int(max_bytes)
        self.default_quota = (
            self.max_bytes if default_quota is None else int(default_quota)
        )
        if self.default_quota < 0:
            raise InvalidArgumentError("default quota must be non-negative")
        self.quotas = {str(k): int(v) for k, v in (quotas or {}).items()}
        if any(v < 0 for v in self.quotas.values()):
            raise InvalidArgumentError("tenant quotas must be non-negative")
        self._lock = threading.Lock()
        self._tenants: dict[str, _TenantState] = {}
        self._nbytes = 0
        self._stamp = 0

    def quota(self, tenant: str) -> int:
        """The byte quota in force for ``tenant``."""
        return self.quotas.get(tenant, self.default_quota)

    def view(self, tenant: str) -> "TenantCacheView":
        """A cache handle with ``tenant`` baked in (get/put compatible
        with :class:`DecodedChunkCache`, usable as a ``read_window``
        cache override)."""
        return TenantCacheView(self, tenant)

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = self._tenants[tenant] = _TenantState()
        return state

    def get(self, tenant: str, key: Hashable) -> np.ndarray | None:
        """Look up ``key`` in ``tenant``'s LRU; a hit refreshes recency."""
        with self._lock:
            state = self._state(tenant)
            hit = state.entries.get(key)
            if hit is None:
                state.misses += 1
                return None
            arr, _ = hit
            self._stamp += 1
            state.entries[key] = (arr, self._stamp)
            state.entries.move_to_end(key)
            state.hits += 1
            return arr

    def _evict_lru(self, state: _TenantState) -> None:
        _, (victim, _) = state.entries.popitem(last=False)
        state.nbytes -= victim.nbytes
        self._nbytes -= victim.nbytes
        state.evictions += 1

    def _pick_victim(self) -> _TenantState | None:
        """The tenant to evict from while over the global ceiling."""
        over = [
            s
            for t, s in self._tenants.items()
            if s.entries and s.nbytes > self.quota(t)
        ]
        pool = over or [s for s in self._tenants.values() if s.entries]
        if not pool:
            return None
        # Oldest (smallest stamp) front entry loses.
        return min(pool, key=lambda s: next(iter(s.entries.values()))[1])

    def put(self, tenant: str, key: Hashable, arr: np.ndarray) -> bool:
        """Insert under ``tenant``'s quota and the global ceiling.

        Arrays larger than the tenant's quota (or the ceiling) are not
        cached.  Returns True when the entry resides in the cache on
        return.
        """
        quota = self.quota(tenant)
        if arr.nbytes > quota or arr.nbytes > self.max_bytes:
            return False
        arr.setflags(write=False)
        with self._lock:
            state = self._state(tenant)
            old = state.entries.pop(key, None)
            if old is not None:
                state.nbytes -= old[0].nbytes
                self._nbytes -= old[0].nbytes
            self._stamp += 1
            state.entries[key] = (arr, self._stamp)
            state.nbytes += arr.nbytes
            self._nbytes += arr.nbytes
            while state.nbytes > quota and state.entries:
                self._evict_lru(state)
            while self._nbytes > self.max_bytes:
                victim = self._pick_victim()
                if victim is None:
                    break
                self._evict_lru(victim)
            return key in state.entries

    def clear(self) -> None:
        """Drop every tenant's entries (quotas and counters are kept)."""
        with self._lock:
            for state in self._tenants.values():
                state.entries.clear()
                state.nbytes = 0
            self._nbytes = 0

    @property
    def nbytes(self) -> int:
        """Total resident bytes across tenants (``<= max_bytes``)."""
        with self._lock:
            return self._nbytes

    def stats(self) -> dict:
        """Global counters plus a per-tenant breakdown."""
        with self._lock:
            tenants = {
                t: {
                    "entries": len(s.entries),
                    "nbytes": s.nbytes,
                    "quota": self.quota(t),
                    "hits": s.hits,
                    "misses": s.misses,
                    "evictions": s.evictions,
                }
                for t, s in self._tenants.items()
            }
            return {
                "nbytes": self._nbytes,
                "max_bytes": self.max_bytes,
                "default_quota": self.default_quota,
                "hits": sum(s.hits for s in self._tenants.values()),
                "misses": sum(s.misses for s in self._tenants.values()),
                "evictions": sum(s.evictions for s in self._tenants.values()),
                "entries": sum(len(s.entries) for s in self._tenants.values()),
                "tenants": tenants,
            }


class TenantCacheView:
    """One tenant's handle on a shared :class:`TenantCacheBudget`.

    Implements the :class:`DecodedChunkCache` ``get``/``put``/``stats``
    surface, so a :meth:`~repro.store.CompressedArray.read_window` call
    can be pointed at a tenant's slice of the shared budget via its
    ``cache=`` override.
    """

    __slots__ = ("budget", "tenant")

    def __init__(self, budget: TenantCacheBudget, tenant: str) -> None:
        self.budget = budget
        self.tenant = str(tenant)

    @property
    def enabled(self) -> bool:
        """True when this tenant can cache anything at all."""
        return self.budget.max_bytes > 0 and self.budget.quota(self.tenant) > 0

    def get(self, key: Hashable) -> np.ndarray | None:
        """Tenant-scoped :meth:`TenantCacheBudget.get`."""
        return self.budget.get(self.tenant, key)

    def put(self, key: Hashable, arr: np.ndarray) -> bool:
        """Tenant-scoped :meth:`TenantCacheBudget.put`."""
        return self.budget.put(self.tenant, key, arr)

    def stats(self) -> dict:
        """This tenant's slice of the shared budget's stats."""
        stats = self.budget.stats()
        mine = stats["tenants"].get(self.tenant)
        if mine is None:
            mine = {
                "entries": 0,
                "nbytes": 0,
                "quota": self.budget.quota(self.tenant),
                "hits": 0,
                "misses": 0,
                "evictions": 0,
            }
        mine["max_bytes"] = self.budget.max_bytes
        return mine
