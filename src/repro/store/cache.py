"""Memory-budgeted LRU cache of decoded chunks.

Repeat window reads over the same region of a store mostly hit the same
chunks; decoding a chunk costs milliseconds while copying its decoded
array out of memory costs microseconds.  :class:`DecodedChunkCache`
keeps recently decoded chunk arrays (keyed by ``(frame, chunk, level)``)
under a byte budget, evicting least-recently-used entries, so warm
window reads skip the SPECK/wavelet pipeline entirely.

The cache is shared by every thread reading through one
:class:`~repro.store.CompressedArray`: all bookkeeping happens under a
single lock, and cached arrays are marked read-only so a hit can be
served zero-copy without risking cache poisoning through an aliased
mutation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

import numpy as np

from ..errors import InvalidArgumentError

__all__ = ["DecodedChunkCache", "DEFAULT_CACHE_BYTES"]

#: Default decoded-chunk cache budget per open store (64 MiB).
DEFAULT_CACHE_BYTES = 64 << 20


class DecodedChunkCache:
    """Thread-safe LRU of decoded chunk arrays under a byte budget.

    ``max_bytes=0`` disables the cache (every :meth:`get` misses and
    :meth:`put` is a no-op), which is the reference behaviour the
    equivalence tests compare against.
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if max_bytes < 0:
            raise InvalidArgumentError("cache budget must be non-negative")
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()
        self._nbytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def enabled(self) -> bool:
        """True when the cache has a non-zero budget."""
        return self.max_bytes > 0

    @property
    def nbytes(self) -> int:
        """Current resident bytes (always ``<= max_bytes``)."""
        with self._lock:
            return self._nbytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> np.ndarray | None:
        """Look up a decoded chunk; a hit moves the entry to MRU.

        Returns the cached (read-only) array or ``None`` on a miss.
        """
        with self._lock:
            arr = self._entries.get(key)
            if arr is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return arr

    def put(self, key: Hashable, arr: np.ndarray) -> bool:
        """Insert a decoded chunk, evicting LRU entries over budget.

        Arrays larger than the whole budget are not cached (they would
        evict everything and then be evicted themselves on the next
        insert).  The stored array is marked read-only; callers must
        treat hits as immutable.  Returns True when the entry resides in
        the cache on return.
        """
        if not self.enabled or arr.nbytes > self.max_bytes:
            return False
        arr.setflags(write=False)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._nbytes -= old.nbytes
            self._entries[key] = arr
            self._nbytes += arr.nbytes
            while self._nbytes > self.max_bytes and self._entries:
                _, victim = self._entries.popitem(last=False)
                self._nbytes -= victim.nbytes
                self._evictions += 1
            return key in self._entries

    def clear(self) -> None:
        """Drop every entry (budget and counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._nbytes = 0

    def stats(self) -> dict[str, int]:
        """Snapshot of hit/miss/eviction counters and residency."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "entries": len(self._entries),
                "nbytes": self._nbytes,
                "max_bytes": self.max_bytes,
            }
