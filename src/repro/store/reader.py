"""Random-access reader: lazy views over a sharded compressed store.

:func:`open_store` returns a :class:`CompressedArray`, a lazy view that
decodes *only* the chunks a request actually touches:

* :meth:`CompressedArray.read_window` takes a window (a tuple of slices
  and/or integer indices in index space), finds the intersecting chunks
  through the per-axis grid index, decodes the cache misses (optionally
  in parallel through :mod:`repro.core.parallel`), and assembles the
  result with exact overlap cropping — byte-identical to slicing the
  full decompression at level 0.
* ``level > 0`` serves a chunk-aligned coarse preview: every chunk
  covering the window is reconstructed at the requested wavelet level
  and the coarse tiles are assembled on the coarse grid.
* ``budget=`` bounds the decode work: when the compressed bytes behind
  the cache misses exceed the budget, each miss is truncated to the
  proportional fraction of its SPECK bits via
  :func:`repro.core.progressive.truncate_chunk_stream` (a valid coarser
  reconstruction; the PWE guarantee is waived, and budgeted results
  bypass the decoded-chunk cache).
* ``on_error="salvage"`` honors the container salvage contract per
  chunk: a damaged chunk fills only its window intersection with
  ``fill_value`` and is reported in the returned
  :class:`~repro.core.container.DecodeReport` instead of aborting the
  read.

Repeat traffic is served from a shared, thread-safe
:class:`~repro.store.cache.DecodedChunkCache` keyed by
``(frame, chunk, level)``.  Every read is instrumented through
:mod:`repro.obs`: a ``store.read_window`` span wrapping per-chunk
``store.chunk.decode`` spans, plus counters for cache hits/misses,
chunks requested/decoded, and bytes read from disk vs. bytes served.
"""

from __future__ import annotations

import os
import zlib
from functools import partial
from pathlib import Path

import numpy as np

from .. import lossless, obs
from ..errors import (
    IntegrityError,
    InvalidArgumentError,
    StreamFormatError,
    decode_guard,
)
from ..core.adaptive import CODEC_SPERR
from ..core.container import (
    ChunkDecodeStatus,
    DecodeReport,
    DecodeResult,
    decode_tagged_chunk,
)
from ..core.mask import apply_mask, decode_mask, mask_summary
from ..core.parallel import robust_chunk_map
from ..core.pipeline import decompress_chunk
from ..core.plans import wavelet_plan
from ..core.progressive import split_chunk_stream, truncate_chunk_stream
from ..speck import decode_coefficients
from ..wavelets import inverse_to_level, num_levels
from .cache import DEFAULT_CACHE_BYTES, DecodedChunkCache
from .format import INDEX_NAME, SHARD_MAGIC, StoreIndex, parse_index, shard_name

__all__ = ["CompressedArray", "open_store"]

#: The store's chunk streams use the container-v2 chunk framing; decode
#: reports carry this so salvage reports read the same as container ones.
_REPORT_FORMAT_VERSION = 2


def _coarse_extent(n: int, level: int, levels_cap: int | None) -> int:
    """Axis extent of an ``n``-long axis coarsened ``level`` times under
    the store's wavelet level rule (capped by ``levels_cap``)."""
    depth = num_levels(n)
    if levels_cap is not None:
        depth = min(depth, levels_cap)
    for _ in range(min(level, depth)):
        n = (n + 1) // 2
    return n


def _decode_multires(
    raw: bytes,
    expected_shape: tuple[int, ...],
    level: int,
    levels_cap: int | None,
) -> np.ndarray:
    """Decode one raw chunk stream to its level-``level`` coarse box."""
    header, params, speck, _outliers = split_chunk_stream(raw)
    rank = len(expected_shape)
    shape = tuple(header.shape[:rank])
    if any(n != 1 for n in header.shape[rank:]) or shape != tuple(expected_shape):
        raise StreamFormatError(
            f"chunk header shape {header.shape} does not match the store's "
            f"chunk bounds {tuple(expected_shape)}"
        )
    coeffs = decode_coefficients(speck, shape, params.q, nbits=params.speck_nbits)
    plan = wavelet_plan(shape, wavelet=params.wavelet, levels=params.levels)
    box = inverse_to_level(coeffs, plan, min(level, plan.total_levels))
    expected_box = tuple(_coarse_extent(n, level, levels_cap) for n in shape)
    if box.shape != expected_box:
        raise StreamFormatError(
            f"chunk decodes to coarse shape {box.shape}, expected "
            f"{expected_box} (stream parameters disagree with the index)"
        )
    return box


def _decimate_to_level(
    box: np.ndarray, level: int, levels_cap: int | None
) -> np.ndarray:
    """Coarsen a fully decoded chunk by ``[::2]`` decimation per level.

    Non-sperr chunk streams (szx / stored) have no wavelet pyramid to
    reconstruct partway, so coarse previews subsample the full decode.
    The per-axis depth rule mirrors :func:`_coarse_extent` exactly —
    ``[::2]`` on an ``n``-long axis yields ``(n + 1) // 2`` points — so
    mixed-codec coarse tiles assemble on one grid.
    """
    for ax, n in enumerate(box.shape):
        depth = num_levels(n)
        if levels_cap is not None:
            depth = min(depth, levels_cap)
        for _ in range(min(level, depth)):
            sel = [slice(None)] * box.ndim
            sel[ax] = slice(None, None, 2)
            box = box[tuple(sel)]
    return box


def _decode_store_chunk(
    item: tuple[
        bytes, tuple[int, ...], int, int, int | None, float | None, int
    ],
    rank: int,
) -> np.ndarray:
    """Module-level chunk-decode job (picklable for the process executor).

    ``item`` is ``(stream, expected_shape, crc, level, levels_cap,
    fraction, codec_tag)``; the CRC is verified here, inside the
    executor, so a damaged chunk costs one checksum before any decode
    work.
    """
    stream, expected_shape, crc, level, levels_cap, fraction, tag = item
    with obs.span(
        "store.chunk.decode", nbytes=len(stream), level=level, codec=tag
    ):
        if zlib.crc32(stream) != crc:
            raise IntegrityError(f"chunk CRC mismatch (stored {crc:#010x})")
        if tag != CODEC_SPERR:
            # Fast-tier chunks decode whole: no embedded bitstream to
            # budget-truncate and no pyramid, so previews decimate.
            with decode_guard("store"):
                box = decode_tagged_chunk(stream, tag, rank, expected_shape)
            if level > 0:
                box = _decimate_to_level(box, level, levels_cap)
            return box
        with decode_guard("store"):
            raw = lossless.decompress(stream)
            if fraction is not None and fraction < 1.0:
                raw = truncate_chunk_stream(raw, fraction)
            if level == 0:
                return decompress_chunk(
                    raw, rank=rank, expected_shape=expected_shape
                )
            return _decode_multires(raw, expected_shape, level, levels_cap)


def _salvage_store_chunk(
    item: tuple[
        bytes, tuple[int, ...], int, int, int | None, float | None, int
    ],
    rank: int,
) -> tuple[str, np.ndarray | str]:
    """Salvage-mode decode job: never raises, returns ``(status, value)``."""
    stream = item[0]
    if zlib.crc32(stream) != item[2]:
        return ("crc_mismatch", f"chunk CRC mismatch (stored {item[2]:#010x})")
    try:
        return ("ok", _decode_store_chunk(item, rank))
    except Exception as exc:  # noqa: BLE001 - isolation boundary by design
        return ("decode_error", f"{type(exc).__name__}: {exc}")


def _normalize_window(
    shape: tuple[int, ...], window
) -> tuple[tuple[tuple[int, int], ...], tuple[int, ...]]:
    """Resolve a window spec to per-axis ``(lo, hi)`` bounds.

    Accepts ``None``/``Ellipsis`` (full array), a single slice or int,
    or a tuple mixing contiguous slices (step 1, Python negative-index
    semantics) and integers.  Missing trailing axes read fully.  Returns
    ``(bounds, squeeze_axes)`` where ``squeeze_axes`` lists the axes
    selected by integer index (dropped from the output, like numpy).
    """
    if window is None or window is Ellipsis:
        window = ()
    if isinstance(window, (slice, int, np.integer)):
        window = (window,)
    if not isinstance(window, (tuple, list)):
        raise InvalidArgumentError(
            f"window must be a tuple of slices/ints, got {type(window).__name__}"
        )
    if len(window) > len(shape):
        raise InvalidArgumentError(
            f"window has {len(window)} axes but the store is {len(shape)}-D"
        )
    bounds: list[tuple[int, int]] = []
    squeeze: list[int] = []
    for ax, n in enumerate(shape):
        w = window[ax] if ax < len(window) else slice(None)
        if isinstance(w, (int, np.integer)):
            i = int(w)
            if i < 0:
                i += n
            if not 0 <= i < n:
                raise InvalidArgumentError(
                    f"index {int(w)} out of bounds for axis {ax} of extent {n}"
                )
            bounds.append((i, i + 1))
            squeeze.append(ax)
        elif isinstance(w, slice):
            if w.step not in (None, 1):
                raise InvalidArgumentError(
                    "windows must be contiguous (slice step 1)"
                )
            start, stop, _step = w.indices(n)
            bounds.append((start, max(start, stop)))
        else:
            raise InvalidArgumentError(
                f"unsupported window component {w!r} on axis {ax}"
            )
    return tuple(bounds), tuple(squeeze)


class CompressedArray:
    """Lazy, random-access view of a compressed store.

    Obtained from :func:`open_store`.  Exposes the store's geometry
    (``shape``, ``dtype``, ``n_frames``, chunk grid) without touching
    any shard file; :meth:`read_window` decodes exactly the chunks a
    request intersects, through the shared decoded-chunk cache.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        executor: str = "serial",
        workers: int | None = None,
    ) -> None:
        self.path = Path(path)
        index_path = self.path / INDEX_NAME
        if not index_path.exists():
            raise StreamFormatError(f"{self.path} has no store index ({INDEX_NAME})")
        self._index = parse_index(index_path.read_bytes())
        self.cache = DecodedChunkCache(cache_bytes)
        self.executor = executor
        self.workers = workers
        self._mask_codes: dict[int, np.ndarray] = {}
        self._build_grid()

    # -- geometry ---------------------------------------------------------

    @property
    def index(self) -> StoreIndex:
        """The decoded footer index (chunk grid, shard map, entries)."""
        return self._index

    @property
    def shape(self) -> tuple[int, ...]:
        """Index-space shape of every stored frame."""
        return self._index.shape

    @property
    def dtype(self) -> np.dtype:
        """Element dtype reads are returned in."""
        return self._index.dtype

    @property
    def rank(self) -> int:
        """Number of index-space dimensions."""
        return self._index.rank

    @property
    def n_frames(self) -> int:
        """Number of stored frames."""
        return self._index.n_frames

    @property
    def n_chunks(self) -> int:
        """Number of chunks in the per-frame grid."""
        return self._index.n_chunks

    @property
    def max_level(self) -> int:
        """Deepest coarsening level any chunk supports (0 = none)."""
        return self._max_level

    def _build_grid(self) -> None:
        """Index the chunk list as an axis-aligned grid for fast lookup.

        The writer's grid is an outer product of per-axis runs; a forged
        index that is not axis-aligned, does not tile the volume, or
        repeats cells is rejected here, before any read.
        """
        index = self._index
        runs: list[list[tuple[int, int]]] = []
        pos_of: list[dict[tuple[int, int], int]] = []
        for ax in range(index.rank):
            axis_runs = sorted({c.bounds[ax] for c in index.chunks})
            expected = 0
            for a, b in axis_runs:
                if a != expected:
                    raise StreamFormatError(
                        f"chunk grid does not tile axis {ax} (gap at {expected})"
                    )
                expected = b
            if expected != index.shape[ax]:
                raise StreamFormatError(
                    f"chunk grid covers {expected} of axis {ax}'s "
                    f"{index.shape[ax]} points"
                )
            runs.append(axis_runs)
            pos_of.append({run: p for p, run in enumerate(axis_runs)})
        grid_shape = tuple(len(r) for r in runs)
        if int(np.prod(grid_shape)) != index.n_chunks:
            raise StreamFormatError(
                f"{index.n_chunks} chunks do not form a {grid_shape} grid"
            )
        grid = np.full(grid_shape, -1, dtype=np.int64)
        for i, chunk in enumerate(index.chunks):
            pos = tuple(pos_of[ax][chunk.bounds[ax]] for ax in range(index.rank))
            if grid[pos] != -1:
                raise StreamFormatError(f"duplicate chunk at grid cell {pos}")
            grid[pos] = i
        self._axis_runs = runs
        self._grid = grid
        self._max_level = max(
            max(
                (min(num_levels(n), index.levels)
                 if index.levels is not None else num_levels(n))
                for n in chunk.shape
            )
            for chunk in index.chunks
        )

    # -- reads ------------------------------------------------------------

    def read(self, frame: int = 0, **kwargs) -> np.ndarray | DecodeResult:
        """Decode one full frame (a full-array :meth:`read_window`)."""
        return self.read_window(None, frame=frame, **kwargs)

    def chunks_for_window(
        self, window=None, *, frame: int = 0
    ) -> list[int]:
        """Chunk ids a :meth:`read_window` of ``window`` would touch.

        Pure geometry — no shard file is opened.  A service front door
        uses this to coalesce concurrent reads that share chunks before
        any decode work is scheduled.
        """
        if not 0 <= frame < self.n_frames:
            raise InvalidArgumentError(
                f"frame {frame} out of range for {self.n_frames} stored frames"
            )
        bounds, _squeeze = _normalize_window(self.shape, window)
        return [
            i
            for i, chunk in enumerate(self._index.chunks)
            if all(
                a < hi and lo < b
                for (a, b), (lo, hi) in zip(chunk.bounds, bounds)
            )
        ]

    def read_window(
        self,
        window=None,
        *,
        frame: int = 0,
        level: int = 0,
        budget: int | None = None,
        on_error: str = "raise",
        fill_value: float = float("nan"),
        executor: str | None = None,
        workers: int | None = None,
        cache=None,
    ) -> np.ndarray | DecodeResult:
        """Decode the region of ``window``, touching only intersecting chunks.

        ``window`` is a tuple of contiguous slices and/or integer
        indices in index space (missing trailing axes read fully).  At
        ``level=0`` the result is byte-identical to slicing the full
        decompression.  ``level>0`` returns the chunk-aligned coarse
        preview of the covering region (integer indices are not
        supported there).  ``budget`` caps the compressed bytes decoded
        for cache misses by SPECK-truncating each miss proportionally —
        a valid coarser reconstruction without the PWE guarantee;
        budgeted chunks bypass the cache.  ``on_error="salvage"``
        returns a :class:`~repro.core.container.DecodeResult` whose
        report lists damaged chunks; only their window intersection is
        filled with ``fill_value``.  ``cache`` overrides the store's
        shared decoded-chunk cache for this read (anything with the
        :class:`~repro.store.cache.DecodedChunkCache` ``get``/``put``
        surface, e.g. a :class:`~repro.store.TenantCacheView`) — the
        service tier uses this to route each request through its
        tenant's slice of a shared budget.
        """
        if not 0 <= frame < self.n_frames:
            raise InvalidArgumentError(
                f"frame {frame} out of range for {self.n_frames} stored frames"
            )
        if on_error not in ("raise", "salvage"):
            raise InvalidArgumentError(
                f"on_error must be 'raise' or 'salvage', got {on_error!r}"
            )
        if level < 0:
            raise InvalidArgumentError("level must be non-negative")
        if level > self._max_level:
            raise InvalidArgumentError(
                f"store supports at most {self._max_level} coarsening levels"
            )
        if budget is not None and budget < 1:
            raise InvalidArgumentError("budget must be a positive byte count")
        bounds, squeeze = _normalize_window(self.shape, window)
        if level > 0 and squeeze:
            raise InvalidArgumentError(
                "integer indices are not supported for coarse (level > 0) reads"
            )
        executor = self.executor if executor is None else executor
        workers = self.workers if workers is None else workers
        cache = self.cache if cache is None else cache

        with obs.span(
            "store.read_window",
            frame=frame,
            level=level,
            window=str(tuple(bounds)),
        ):
            chosen = [
                i
                for i, chunk in enumerate(self._index.chunks)
                if all(
                    a < hi and lo < b
                    for (a, b), (lo, hi) in zip(chunk.bounds, bounds)
                )
            ]
            obs.add_counter("store.chunks.requested", len(chosen))
            use_cache = budget is None
            parts: dict[int, np.ndarray] = {}
            misses: list[int] = []
            for i in chosen:
                cached = cache.get((frame, i, level)) if use_cache else None
                if cached is not None:
                    parts[i] = cached
                    obs.add_counter("store.cache.hits")
                else:
                    obs.add_counter("store.cache.misses")
                    misses.append(i)

            salvage = on_error == "salvage"
            report = DecodeReport(format_version=_REPORT_FORMAT_VERSION)
            failures: dict[int, tuple[str, str]] = {}
            streams = self._read_streams(frame, misses, failures, salvage)
            fraction = None
            if budget is not None:
                total = sum(len(s) for s in streams.values())
                if total > budget:
                    fraction = budget / total

            entries = self._index.entries[frame]
            readable = [i for i in misses if i in streams]
            items = [
                (
                    streams[i],
                    self._index.chunks[i].shape,
                    entries[i].crc32,
                    level,
                    self._index.levels,
                    fraction,
                    self._index.codec_tag(frame, i),
                )
                for i in readable
            ]
            if salvage:
                work = partial(_salvage_store_chunk, rank=self.rank)
                results, notes = robust_chunk_map(
                    work, items, executor=executor, workers=workers
                )
                report.notes.extend(notes)
                for i, (status, value) in zip(readable, results):
                    if status == "ok":
                        parts[i] = value
                        if use_cache:
                            cache.put((frame, i, level), value)
                    else:
                        failures[i] = (status, str(value))
            else:
                work = partial(_decode_store_chunk, rank=self.rank)
                decoded, _notes = robust_chunk_map(
                    work, items, executor=executor, workers=workers
                )
                for i, arr in zip(readable, decoded):
                    parts[i] = arr
                    if use_cache:
                        cache.put((frame, i, level), arr)
            obs.add_counter("store.chunks.decoded", len(misses))

            for i in chosen:
                if i in failures:
                    status, error = failures[i]
                    report.chunk_status.append(
                        ChunkDecodeStatus(index=i, status=status, error=error)
                    )
                else:
                    report.chunk_status.append(
                        ChunkDecodeStatus(index=i, status="ok")
                    )

            if level == 0:
                out = self._assemble_window(bounds, chosen, parts, fill_value)
            else:
                out = self._assemble_coarse(
                    bounds, level, parts, fill_value, salvage
                )
            out = out.astype(self.dtype, copy=False)
            if level == 0:
                # Re-impose the frame's NaN/Inf pattern on the window.
                # Coarse previews stay on the filled field: a coarse cell
                # aggregates valid and masked fine samples, so there is
                # no faithful mask to apply at level > 0.
                codes = self._frame_mask_codes(frame)
                if codes is not None:
                    window_codes = codes[
                        tuple(slice(lo, hi) for lo, hi in bounds)
                    ]
                    apply_mask(out, window_codes)
            if squeeze:
                out = np.squeeze(out, axis=squeeze)
            obs.add_counter("store.bytes.served", out.nbytes)
        if salvage:
            return DecodeResult(data=out, report=report)
        return out

    def _frame_mask_codes(self, frame: int) -> np.ndarray | None:
        """Decoded (and cached) shaped mask-code array of ``frame``."""
        masks = self._index.frame_masks
        if not masks or masks[frame] is None:
            return None
        codes = self._mask_codes.get(frame)
        if codes is None:
            npoints = int(np.prod([int(s) for s in self.shape], dtype=np.int64))
            codes = decode_mask(masks[frame], npoints).reshape(self.shape)
            self._mask_codes[frame] = codes
        return codes

    def _read_streams(
        self,
        frame: int,
        misses: list[int],
        failures: dict[int, tuple[str, str]],
        salvage: bool,
    ) -> dict[int, bytes]:
        """Fetch the compressed streams of cache misses from the shards.

        Misses are grouped per shard and read in offset order (one open
        and a sequential-ish scan per shard).  In salvage mode an
        unreadable shard or a short read records a failure for each
        affected chunk instead of raising.
        """
        entries = self._index.entries[frame]
        by_shard: dict[int, list[int]] = {}
        for i in misses:
            by_shard.setdefault(entries[i].shard, []).append(i)
        out: dict[int, bytes] = {}
        for shard, idxs in sorted(by_shard.items()):
            path = self.path / shard_name(shard)
            try:
                with open(path, "rb") as f:
                    if f.read(len(SHARD_MAGIC)) != SHARD_MAGIC:
                        raise StreamFormatError(
                            f"{path.name} is not a store shard (bad magic)"
                        )
                    for i in sorted(idxs, key=lambda i: entries[i].offset):
                        f.seek(entries[i].offset)
                        data = f.read(entries[i].length)
                        if len(data) != entries[i].length:
                            raise StreamFormatError(
                                f"{path.name} truncated: chunk {i} wants "
                                f"{entries[i].length} bytes at offset "
                                f"{entries[i].offset}"
                            )
                        out[i] = data
                        obs.add_counter("store.bytes.disk", len(data))
            except (OSError, StreamFormatError) as exc:
                if not salvage:
                    if isinstance(exc, StreamFormatError):
                        raise
                    raise StreamFormatError(
                        f"cannot read shard {shard}: {exc}"
                    ) from exc
                for i in idxs:
                    if i not in out:
                        failures[i] = (
                            "decode_error",
                            f"shard read failed: {type(exc).__name__}: {exc}",
                        )
        return out

    def _assemble_window(
        self,
        bounds: tuple[tuple[int, int], ...],
        chosen: list[int],
        parts: dict[int, np.ndarray],
        fill_value: float,
    ) -> np.ndarray:
        """Stitch level-0 chunk overlaps into the window array."""
        out = np.empty(tuple(hi - lo for lo, hi in bounds), dtype=np.float64)
        for i in chosen:
            chunk = self._index.chunks[i]
            src = tuple(
                slice(max(a, lo) - a, min(b, hi) - a)
                for (a, b), (lo, hi) in zip(chunk.bounds, bounds)
            )
            dst = tuple(
                slice(max(a, lo) - lo, min(b, hi) - lo)
                for (a, b), (lo, hi) in zip(chunk.bounds, bounds)
            )
            part = parts.get(i)
            if part is None:
                out[dst] = fill_value
            else:
                out[dst] = part[src]
        return out

    def _assemble_coarse(
        self,
        bounds: tuple[tuple[int, int], ...],
        level: int,
        parts: dict[int, np.ndarray],
        fill_value: float,
        salvage: bool,
    ) -> np.ndarray:
        """Tile per-chunk coarse boxes over the covering grid region."""
        covered = [
            [p for p, (a, b) in enumerate(runs) if a < hi and lo < b]
            for runs, (lo, hi) in zip(self._axis_runs, bounds)
        ]
        levels_cap = self._index.levels
        extents = [
            [
                _coarse_extent(b - a, level, levels_cap)
                for p in pos
                for (a, b) in (self._axis_runs[ax][p],)
            ]
            for ax, pos in enumerate(covered)
        ]
        offsets = [np.concatenate(([0], np.cumsum(ext))).astype(int) for ext in extents]
        out = np.empty(tuple(int(off[-1]) for off in offsets), dtype=np.float64)
        if out.size == 0:
            return out
        from itertools import product

        for cell in product(*(range(len(pos)) for pos in covered)):
            pos = tuple(covered[ax][cell[ax]] for ax in range(self.rank))
            i = int(self._grid[pos])
            dst = tuple(
                slice(int(offsets[ax][cell[ax]]), int(offsets[ax][cell[ax] + 1]))
                for ax in range(self.rank)
            )
            part = parts.get(i)
            if part is None:
                if not salvage:
                    raise StreamFormatError(f"chunk {i} missing from coarse assembly")
                out[dst] = fill_value
            else:
                out[dst] = part
        return out

    # -- introspection -----------------------------------------------------

    def info(self) -> dict:
        """Summary dict for tooling (the CLI's ``store info``)."""
        index = self._index
        shard_sizes = []
        for s in range(index.n_shards):
            p = self.path / shard_name(s)
            shard_sizes.append(p.stat().st_size if p.exists() else None)
        masked_frames = [
            f
            for f, m in enumerate(index.frame_masks or ())
            if m is not None
        ]
        info = {
            "path": str(self.path),
            "shape": index.shape,
            "dtype": str(index.dtype),
            "mode_code": index.mode_code,
            "wavelet": index.wavelet,
            "levels": index.levels,
            "n_frames": index.n_frames,
            "n_chunks": index.n_chunks,
            "n_shards": index.n_shards,
            "max_level": self._max_level,
            "payload_bytes": index.payload_bytes,
            "shard_sizes": shard_sizes,
            "masked_frames": masked_frames,
            "cache": self.cache.stats(),
        }
        if index.frame_codecs:
            counts = {0: 0, 1: 0, 2: 0}
            for frame_tags in index.frame_codecs:
                for t in frame_tags:
                    counts[t] += 1
            info["codec_counts"] = {
                "sperr": counts[0], "szx": counts[1], "stored": counts[2]
            }
        if masked_frames:
            info["mask_bytes"] = sum(
                len(m) for m in index.frame_masks if m is not None
            )
            info["mask_summary"] = {
                f: mask_summary(self._frame_mask_codes(f)) for f in masked_frames
            }
        return info


def open_store(
    path: str | os.PathLike,
    *,
    cache_bytes: int = DEFAULT_CACHE_BYTES,
    executor: str = "serial",
    workers: int | None = None,
) -> CompressedArray:
    """Open a store directory as a lazy :class:`CompressedArray`.

    ``cache_bytes`` budgets the decoded-chunk LRU cache (0 disables
    caching); ``executor``/``workers`` set the default parallelism for
    cache-miss decoding (overridable per read).
    """
    return CompressedArray(
        path, cache_bytes=cache_bytes, executor=executor, workers=workers
    )
