"""On-disk layout of the random-access compressed-array store.

A *store* is a directory holding two kinds of files:

* ``shard-NNNN.bin`` — shard files, each an 8-byte magic prologue
  followed by concatenated per-chunk payload streams.  Every stream is
  byte-identical to the corresponding chunk stream of a container built
  by :func:`repro.compress` (lossless-compressed
  :func:`repro.core.pipeline.compress_chunk` output), so the existing
  chunk decoders, CRC verification, and salvage logic apply unchanged.
* ``index.bin`` — the footer index: global metadata (shape, dtype,
  mode, chunk grid, wavelet/levels) plus one
  :class:`ChunkEntry` per ``(frame, chunk)`` mapping the chunk id to
  ``(shard, offset, length, CRC32)``.  The chunk grid doubles as the
  bounding box in index space for every chunk of every frame.

Index layout (little-endian)::

    magic "SPRRIDX1"         8 bytes
    rank        u8
    dtype code  u8  (0=float32, 1=float64)
    mode code   u8  (0=PWE, 1=size, 2=PSNR)
    flags       u8  (reserved, 0)
    index CRC32 u32 (over the whole index, this field zeroed)
    wavelet id  u8
    levels      u8  (255 = auto level rule)
    reserved    u16
    shape       rank * u64
    n_chunks    u32
    bounds      n_chunks * rank * 2 * u64
    n_frames    u32
    n_shards    u32
    entries     n_frames * n_chunks * (u32 shard, u64 offset, u64 length, u32 crc)

``SPRRIDX2`` extends the layout with a per-frame non-finite mask table
(see :mod:`repro.core.mask`) appended after the entries::

    mask table  n_frames * (u64 mask_nbytes, u32 mask_crc)
    mask blobs  concatenated RLE mask blobs (mask_nbytes == 0 -> no mask)

The v2 magic is written only when at least one frame actually carries
NaN/Inf samples, so stores of finite data keep the v1 bytes.

``SPRRIDX3`` is the adaptive layout: a per-``(frame, chunk)`` codec tag
table (:mod:`repro.core.adaptive` tags, ``n_frames * n_chunks * u8``)
sits between the entries and the mask table, and the mask table is
always present (zero rows for finite frames)::

    codec tags  n_frames * n_chunks * u8
    mask table  n_frames * (u64 mask_nbytes, u32 mask_crc)
    mask blobs  concatenated RLE mask blobs

v3 is written only when some chunk of some frame routed away from
sperr, so quality-tier stores keep their v1/v2 bytes.

The index is untrusted input: :func:`parse_index` verifies the CRC
before trusting any field and runs every shape/count through the
:mod:`repro.errors` trust boundary (:func:`~repro.errors.decode_guard`,
:func:`~repro.errors.checked_shape`, explicit allocation caps), exactly
like container parsing.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

from ..bitstream.header import LEVELS_AUTO, WAVELET_IDS, WAVELET_NAMES
from ..errors import (
    IntegrityError,
    InvalidArgumentError,
    StreamFormatError,
    checked_shape,
    decode_guard,
)
from ..core.chunking import Chunk
from ..core.container import MAX_TOTAL_POINTS, _DTYPE_BY_CODE, _DTYPES

__all__ = [
    "ChunkEntry",
    "StoreIndex",
    "INDEX_NAME",
    "INDEX_MAGIC",
    "INDEX_MAGIC_V2",
    "INDEX_MAGIC_V3",
    "SHARD_MAGIC",
    "MAX_FRAMES",
    "DEFAULT_SHARD_BYTES",
    "shard_name",
    "pack_index",
    "parse_index",
]

INDEX_MAGIC = b"SPRRIDX1"
INDEX_MAGIC_V2 = b"SPRRIDX2"
INDEX_MAGIC_V3 = b"SPRRIDX3"
SHARD_MAGIC = b"SPRRSHD1"

#: File name of the footer index inside a store directory.
INDEX_NAME = "index.bin"

#: Cap on the number of frames an index may declare (anti-DoS: bounds
#: the entry-table allocation before any entry is read).
MAX_FRAMES = 1 << 20

#: Default shard rotation threshold: a shard is closed and a new one
#: opened once it exceeds this many payload bytes.
DEFAULT_SHARD_BYTES = 4 << 20

#: byte offset of the index CRC field (after magic + 4 meta bytes)
_INDEX_CRC_OFFSET = 12

_ENTRY_FMT = "<IQQI"
_ENTRY_SIZE = struct.calcsize(_ENTRY_FMT)


def shard_name(shard: int) -> str:
    """File name of shard ``shard`` inside a store directory."""
    return f"shard-{shard:04d}.bin"


@dataclass(frozen=True)
class ChunkEntry:
    """Index record for one stored chunk stream.

    ``offset`` is measured from the start of the shard file (the 8-byte
    shard magic counts, so offsets are directly seekable); ``crc32`` is
    the CRC of the ``length`` payload bytes — the same per-chunk CRC a
    v2 container would carry, so salvage semantics match.
    """

    shard: int
    offset: int
    length: int
    crc32: int


@dataclass(frozen=True)
class StoreIndex:
    """Decoded footer index of one store.

    ``chunks`` is the chunk grid shared by every frame; ``entries`` is
    one tuple of :class:`ChunkEntry` per frame, in chunk-grid order.
    ``levels`` is ``None`` when the writer used the paper's automatic
    per-axis level rule.  ``frame_masks`` holds one RLE non-finite mask
    blob (or ``None``) per frame; all-``None`` stores serialize as v1.
    ``frame_codecs`` holds one tuple of per-chunk codec tags
    (:mod:`repro.core.adaptive`) per frame; empty means every chunk is
    sperr, and all-sperr stores serialize without the v3 tag table.
    """

    rank: int
    dtype: np.dtype
    mode_code: int
    shape: tuple[int, ...]
    chunks: list[Chunk]
    wavelet: str
    levels: int | None
    n_shards: int
    entries: tuple[tuple[ChunkEntry, ...], ...]
    frame_masks: tuple[bytes | None, ...] = ()
    frame_codecs: tuple[tuple[int, ...], ...] = ()

    def codec_tag(self, frame: int, chunk: int) -> int:
        """Codec tag of one stored chunk (sperr when no tag table)."""
        if not self.frame_codecs:
            return 0
        return self.frame_codecs[frame][chunk]

    @property
    def n_frames(self) -> int:
        """Number of stored frames."""
        return len(self.entries)

    @property
    def n_chunks(self) -> int:
        """Number of chunks in the (per-frame) grid."""
        return len(self.chunks)

    @property
    def payload_bytes(self) -> int:
        """Total compressed chunk-stream bytes across all frames."""
        return sum(e.length for frame in self.entries for e in frame)


def pack_index(index: StoreIndex) -> bytes:
    """Serialize a :class:`StoreIndex` (inverse of :func:`parse_index`).

    Emits the v2 magic (with the per-frame mask table) only when some
    frame actually has a mask, so finite-data stores keep the v1 bytes.
    """
    if index.rank != len(index.shape):
        raise InvalidArgumentError("index rank does not match its shape")
    if index.wavelet not in WAVELET_IDS:
        raise InvalidArgumentError(f"unknown wavelet {index.wavelet!r}")
    masks: tuple[bytes | None, ...] = index.frame_masks or (None,) * index.n_frames
    if len(masks) != index.n_frames:
        raise InvalidArgumentError(
            f"frame_masks has {len(masks)} entries for {index.n_frames} frames"
        )
    codecs = index.frame_codecs
    if codecs and len(codecs) != index.n_frames:
        raise InvalidArgumentError(
            f"frame_codecs has {len(codecs)} entries for {index.n_frames} frames"
        )
    v3 = any(any(t != 0 for t in frame) for frame in codecs)
    v2 = any(m is not None for m in masks)
    out = bytearray()
    if v3:
        out += INDEX_MAGIC_V3
    elif v2:
        out += INDEX_MAGIC_V2
    else:
        out += INDEX_MAGIC
    out += struct.pack(
        "<BBBB", index.rank, _DTYPES[np.dtype(index.dtype)], index.mode_code, 0
    )
    out += b"\x00\x00\x00\x00"  # index CRC, patched below
    out += struct.pack(
        "<BBH",
        WAVELET_IDS[index.wavelet],
        LEVELS_AUTO if index.levels is None else index.levels,
        0,
    )
    out += struct.pack(f"<{index.rank}Q", *index.shape)
    out += struct.pack("<I", len(index.chunks))
    for chunk in index.chunks:
        for a, b in chunk.bounds:
            out += struct.pack("<QQ", a, b)
    out += struct.pack("<II", index.n_frames, index.n_shards)
    for frame in index.entries:
        if len(frame) != len(index.chunks):
            raise InvalidArgumentError("frame entry count does not match the grid")
        for e in frame:
            out += struct.pack(_ENTRY_FMT, e.shard, e.offset, e.length, e.crc32)
    if v3:
        for frame_tags in codecs:
            if len(frame_tags) != len(index.chunks):
                raise InvalidArgumentError(
                    "frame codec tag count does not match the grid"
                )
            if any(t not in (0, 1, 2) for t in frame_tags):
                raise InvalidArgumentError(f"unknown codec tag in {frame_tags}")
            out += struct.pack(f"<{len(frame_tags)}B", *frame_tags)
    if v2 or v3:
        for m in masks:
            blob = m if m is not None else b""
            out += struct.pack("<QI", len(blob), zlib.crc32(blob))
        for m in masks:
            if m is not None:
                out += m
    struct.pack_into("<I", out, _INDEX_CRC_OFFSET, zlib.crc32(bytes(out)))
    return bytes(out)


def parse_index(payload: bytes) -> StoreIndex:
    """Decode and validate an ``index.bin`` payload.

    The CRC over the whole index is verified before any field is
    trusted; malformed framing surfaces as
    :class:`~repro.errors.StreamFormatError` via the decode guard.
    """
    if payload[:8] == INDEX_MAGIC:
        version = 1
    elif payload[:8] == INDEX_MAGIC_V2:
        version = 2
    elif payload[:8] == INDEX_MAGIC_V3:
        version = 3
    else:
        raise StreamFormatError("not a store index (bad magic)")
    with decode_guard("store"):
        return _parse_index_body(payload, version)


def _parse_index_body(payload: bytes, version: int) -> StoreIndex:
    pos = 8
    rank, dtype_code, mode_code, _flags = struct.unpack_from("<BBBB", payload, pos)
    pos += 4
    (stored_crc,) = struct.unpack_from("<I", payload, pos)
    pos += 4
    body = bytearray(payload)
    body[_INDEX_CRC_OFFSET : _INDEX_CRC_OFFSET + 4] = b"\x00\x00\x00\x00"
    if zlib.crc32(bytes(body)) != stored_crc:
        raise IntegrityError("store index CRC mismatch")
    if rank < 1 or rank > 3:
        raise StreamFormatError(f"invalid rank {rank}")
    if dtype_code not in _DTYPE_BY_CODE:
        raise StreamFormatError(f"invalid dtype code {dtype_code}")
    wavelet_id, levels_code, _reserved = struct.unpack_from("<BBH", payload, pos)
    pos += 4
    if wavelet_id not in WAVELET_NAMES:
        raise StreamFormatError(f"unknown wavelet id {wavelet_id}")
    shape = checked_shape(
        struct.unpack_from(f"<{rank}Q", payload, pos),
        "store",
        max_points=MAX_TOTAL_POINTS,
    )
    pos += 8 * rank
    npoints = int(np.prod([int(s) for s in shape], dtype=np.int64))
    (n_chunks,) = struct.unpack_from("<I", payload, pos)
    pos += 4
    if n_chunks < 1 or n_chunks > max(1, npoints):
        raise StreamFormatError(
            f"index declares {n_chunks} chunks for {npoints} points"
        )
    chunks = []
    for _ in range(n_chunks):
        bounds = []
        for axis in range(rank):
            a, b = struct.unpack_from("<QQ", payload, pos)
            pos += 16
            if a >= b or b > int(shape[axis]):
                raise StreamFormatError(
                    f"chunk bounds ({a}, {b}) outside axis extent {shape[axis]}"
                )
            bounds.append((int(a), int(b)))
        chunks.append(Chunk(bounds=tuple(bounds)))
    n_frames, n_shards = struct.unpack_from("<II", payload, pos)
    pos += 8
    if n_frames < 1 or n_frames > MAX_FRAMES:
        raise StreamFormatError(f"index declares {n_frames} frames")
    if n_shards < 1:
        raise StreamFormatError("index declares zero shards")
    expected = pos + n_frames * n_chunks * _ENTRY_SIZE
    if version >= 3:
        expected += n_frames * n_chunks  # codec tag table
    if version >= 2:
        expected += n_frames * 12  # mask table, blob sizes checked below
    if (len(payload) != expected if version < 2 else len(payload) < expected):
        raise StreamFormatError(
            f"index is {len(payload)} bytes, expected {expected} for "
            f"{n_frames} frames of {n_chunks} chunks"
        )
    entries = []
    for _ in range(n_frames):
        frame = []
        for _ in range(n_chunks):
            shard, offset, length, crc = struct.unpack_from(_ENTRY_FMT, payload, pos)
            pos += _ENTRY_SIZE
            if shard >= n_shards:
                raise StreamFormatError(
                    f"entry references shard {shard} of {n_shards}"
                )
            if length < 1 or offset < len(SHARD_MAGIC):
                raise StreamFormatError(
                    f"entry has invalid extent (offset {offset}, length {length})"
                )
            frame.append(
                ChunkEntry(
                    shard=int(shard),
                    offset=int(offset),
                    length=int(length),
                    crc32=int(crc),
                )
            )
        entries.append(tuple(frame))
    frame_codecs: tuple[tuple[int, ...], ...] = ()
    if version >= 3:
        tags = []
        for _ in range(n_frames):
            frame_tags = struct.unpack_from(f"<{n_chunks}B", payload, pos)
            pos += n_chunks
            if any(t > 2 for t in frame_tags):
                raise StreamFormatError(
                    "store index carries an unknown codec tag"
                )
            tags.append(tuple(int(t) for t in frame_tags))
        frame_codecs = tuple(tags)
    frame_masks: tuple[bytes | None, ...] = (None,) * n_frames
    if version >= 2:
        table = []
        for _ in range(n_frames):
            nbytes, crc = struct.unpack_from("<QI", payload, pos)
            pos += 12
            table.append((int(nbytes), int(crc)))
        total = sum(n for n, _ in table)
        if len(payload) != pos + total:
            raise StreamFormatError(
                f"index mask blobs declare {total} bytes but "
                f"{len(payload) - pos} are present"
            )
        masks = []
        for nbytes, crc in table:
            if nbytes == 0:
                masks.append(None)
                continue
            blob = payload[pos : pos + nbytes]
            pos += nbytes
            if zlib.crc32(blob) != crc:
                raise IntegrityError("store index mask CRC mismatch")
            masks.append(blob)
        frame_masks = tuple(masks)
    return StoreIndex(
        rank=rank,
        dtype=_DTYPE_BY_CODE[dtype_code],
        mode_code=mode_code,
        shape=shape,
        chunks=chunks,
        wavelet=WAVELET_NAMES[wavelet_id],
        levels=None if levels_code == LEVELS_AUTO else int(levels_code),
        n_shards=int(n_shards),
        entries=tuple(entries),
        frame_masks=frame_masks,
        frame_codecs=frame_codecs,
    )
