"""Batched bit-oriented input stream, the mirror of :class:`BitWriter`.

Decoding a SPECK stream consumes bits in the same deterministic batch
order the encoder produced them, so the reader exposes a vectorized
``read_bits(n)`` returning a boolean array view.  Exhaustion is a normal
event for embedded streams (any prefix is decodable): ``read_bits`` returns
however many bits remain and the caller checks :attr:`exhausted`.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidArgumentError, StreamFormatError

__all__ = ["BitReader"]


class BitReader:
    """Sequential reader over a packed bit buffer (MSB-first per byte)."""

    def __init__(self, data: bytes | bytearray | np.ndarray, nbits: int | None = None) -> None:
        buf = np.frombuffer(bytes(data), dtype=np.uint8) if not isinstance(data, np.ndarray) else data
        if buf.dtype == np.bool_:
            self._bits = buf
        else:
            self._bits = np.unpackbits(buf.astype(np.uint8, copy=False)).astype(np.bool_)
        if nbits is not None:
            if nbits > self._bits.size:
                raise StreamFormatError(
                    f"declared {nbits} bits but buffer holds only {self._bits.size}"
                )
            self._bits = self._bits[:nbits]
        self._pos = 0

    @property
    def pos(self) -> int:
        """Number of bits consumed so far."""
        return self._pos

    @property
    def nbits(self) -> int:
        """Total number of bits in the stream."""
        return self._bits.size

    @property
    def remaining(self) -> int:
        """Number of unread bits."""
        return self._bits.size - self._pos

    @property
    def exhausted(self) -> bool:
        """True once every bit has been consumed."""
        return self._pos >= self._bits.size

    def seek(self, pos: int) -> None:
        """Reposition the cursor (used by codecs that re-read a block header)."""
        if pos < 0 or pos > self._bits.size:
            raise InvalidArgumentError(f"seek position {pos} out of range")
        self._pos = pos

    def read_bit(self) -> bool:
        """Read one bit; raises :class:`StreamFormatError` past the end."""
        if self._pos >= self._bits.size:
            raise StreamFormatError("bit stream exhausted")
        bit = bool(self._bits[self._pos])
        self._pos += 1
        return bit

    def read_bits(self, n: int) -> np.ndarray:
        """Read up to ``n`` bits as a boolean array.

        Returns fewer than ``n`` bits (possibly zero) if the stream runs
        out — embedded-stream truncation is not an error.  The returned
        array is a view; callers must not mutate it.
        """
        if n < 0:
            raise InvalidArgumentError("cannot read a negative number of bits")
        end = min(self._pos + n, self._bits.size)
        out = self._bits[self._pos:end]
        self._pos = end
        return out

    def read_bits_exact(self, n: int) -> np.ndarray:
        """Read exactly ``n`` bits or raise :class:`StreamFormatError`."""
        if self.remaining < n:
            raise StreamFormatError(
                f"needed {n} bits but only {self.remaining} remain"
            )
        return self.read_bits(n)

    def read_uint(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer (MSB first).

        The bits are packed into whole bytes in one vectorized step and
        assembled word-at-a-time, replacing the former per-bit Python loop.
        """
        bits = self.read_bits_exact(width)
        if width == 0:
            return 0
        # packbits zero-pads the tail byte on the LSB side; shift it out.
        return int.from_bytes(np.packbits(bits).tobytes(), "big") >> (-width % 8)

    def read_uints(self, width: int, count: int) -> np.ndarray:
        """Read ``count`` consecutive ``width``-bit unsigned integers.

        Batch refill for word-at-a-time consumers: one reshape + packbits
        replaces ``count`` scalar reads.  ``width`` must be 64 or less;
        raises :class:`StreamFormatError` if fewer than ``width * count``
        bits remain.
        """
        if width < 0 or width > 64:
            raise InvalidArgumentError("width must be in [0, 64]")
        if count < 0:
            raise InvalidArgumentError("count must be non-negative")
        if width == 0 or count == 0:
            self.read_bits_exact(width * count)
            return np.zeros(count, dtype=np.uint64)
        bits = self.read_bits_exact(width * count).reshape(count, width)
        padded = np.zeros((count, 64), dtype=np.bool_)
        padded[:, 64 - width :] = bits
        words = np.packbits(padded, axis=1)
        return words.view(">u8").astype(np.uint64).reshape(count)
