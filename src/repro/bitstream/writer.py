"""Batched bit-oriented output stream.

The SPECK and outlier coders emit bits in vectorized batches (one numpy
boolean array per sorting/refinement step).  :class:`BitWriter` therefore
accumulates whole boolean arrays and defers packing to a single
``np.packbits`` call at flush time, which keeps the per-bit Python overhead
near zero — the central performance requirement for a pure-numpy bitplane
coder (see DESIGN.md, "Batched set partitioning").
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidArgumentError

__all__ = ["BitWriter"]

#: MSB-first shift table shared by every ``write_uint`` call (avoids an
#: ``np.arange`` allocation per call in token-heavy coders such as LZ77).
_UINT_SHIFTS = np.arange(63, -1, -1, dtype=np.uint64)


class BitWriter:
    """Append-only bit buffer with cheap batched appends.

    Bits are stored MSB-first within each byte, matching
    :class:`~repro.bitstream.reader.BitReader`.
    """

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        self._nbits = 0

    def __len__(self) -> int:
        """Number of bits written so far."""
        return self._nbits

    @property
    def nbits(self) -> int:
        """Number of bits written so far."""
        return self._nbits

    @property
    def nbytes(self) -> int:
        """Number of bytes the packed stream will occupy (ceil of bits/8)."""
        return (self._nbits + 7) // 8

    def write_bit(self, bit: int | bool | np.bool_) -> None:
        """Append a single bit."""
        self._chunks.append(np.array([bool(bit)], dtype=np.bool_))
        self._nbits += 1

    def write_bits(self, bits: np.ndarray) -> None:
        """Append a 1-D boolean array of bits in order.

        The array is not copied unless needed; callers must not mutate it
        afterwards.
        """
        bits = np.asarray(bits)
        if bits.ndim != 1:
            raise InvalidArgumentError(f"bits must be 1-D, got shape {bits.shape}")
        if bits.size == 0:
            return
        if bits.dtype != np.bool_:
            bits = bits.astype(np.bool_)
        self._chunks.append(bits)
        self._nbits += bits.size

    def write_uint(self, value: int, width: int) -> None:
        """Append ``value`` as ``width`` bits, most significant bit first."""
        if width < 0:
            raise InvalidArgumentError(f"width must be non-negative, got {width}")
        if value < 0:
            raise InvalidArgumentError(
                f"write_uint requires a non-negative value, got {value}"
            )
        if value.bit_length() > width:
            raise InvalidArgumentError(
                f"value {value} does not fit in {width} bits"
            )
        if width == 0:
            return
        if width > 64:
            # Python ints are unbounded; emit the high bits first, then the
            # 64-bit tail through the vectorized path below.
            self.write_uint(value >> 64, width - 64)
            value &= (1 << 64) - 1
            width = 64
        bits = (np.uint64(value) >> _UINT_SHIFTS[64 - width :]) & np.uint64(1)
        self.write_bits(bits.astype(np.bool_))

    def as_bool_array(self) -> np.ndarray:
        """Return all written bits as one boolean array (concatenated copy)."""
        if not self._chunks:
            return np.zeros(0, dtype=np.bool_)
        if len(self._chunks) > 1:
            merged = np.concatenate(self._chunks)
            # Re-consolidate so repeated calls stay cheap.
            self._chunks = [merged]
        return self._chunks[0]

    def getvalue(self, *, max_bits: int | None = None) -> bytes:
        """Pack the stream into bytes (MSB-first), zero-padding the tail byte.

        ``max_bits`` truncates the stream — used by size-bounded SPECK
        termination, where the embedded property guarantees any prefix
        remains decodable.
        """
        bits = self.as_bool_array()
        if max_bits is not None:
            if max_bits < 0:
                raise InvalidArgumentError("max_bits must be non-negative")
            bits = bits[:max_bits]
        return np.packbits(bits).tobytes()
