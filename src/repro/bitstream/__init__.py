"""Bit-level I/O: batched bit writer/reader and SPERR stream headers."""

from .header import HEADER_SIZE, MAGIC, MAX_CHUNK_POINTS, VERSION, ChunkHeader, ChunkParams
from .reader import BitReader
from .writer import BitWriter

__all__ = [
    "BitReader",
    "BitWriter",
    "ChunkHeader",
    "ChunkParams",
    "HEADER_SIZE",
    "MAGIC",
    "MAX_CHUNK_POINTS",
    "VERSION",
]
