"""Stream and container headers.

The paper (Sec. V-A) states that SPERR uses a fixed 20-byte header per
stream; that cost is included in every bitrate we report.  We mirror this
with :class:`ChunkHeader`, a packed 20-byte record placed at the front of
every per-chunk stream.  Floating-point codec parameters that do not fit
in 20 bytes (quantization step ``q``, tolerance ``t``) travel in the
variable-size :class:`ChunkParams` record immediately after, exactly as
real SPERR carries its "conditioner" block.

The multi-chunk *container* format used by :func:`repro.compress` is
described in :mod:`repro.core.container`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import AllocationLimitError, StreamFormatError

__all__ = [
    "ChunkHeader",
    "ChunkParams",
    "HEADER_SIZE",
    "MAGIC",
    "MAX_CHUNK_POINTS",
    "VERSION",
]

MAGIC = b"SP"
VERSION = 1

#: Fixed header size in bytes, matching the paper's stated 20-byte header.
HEADER_SIZE = 20

#: Decode-side cap on points per chunk.  A header's shape fields are
#: untrusted input; caps keep a forged ``nx/ny/nz`` from requesting a
#: multi-terabyte ``np.zeros`` before any payload byte is validated.
#: 2**28 points (2 GiB as float64) is ~16x the paper's largest chunk.
MAX_CHUNK_POINTS = 1 << 28

_HEADER_FMT = "<2sBBIIII"  # magic, version, flags, nx, ny, nz, speck_nbytes
assert struct.calcsize(_HEADER_FMT) == HEADER_SIZE

_FLAG_DOUBLE = 1 << 0
_FLAG_PWE_MODE = 1 << 1
_FLAG_HAS_OUTLIERS = 1 << 2
_FLAG_LOSSLESS = 1 << 3


@dataclass(frozen=True)
class ChunkHeader:
    """Fixed 20-byte header for one compressed chunk.

    Attributes
    ----------
    shape:
        Chunk dimensions ``(nx, ny, nz)``; trailing dimensions of size 1
        encode lower-dimensional inputs (a 2-D slice has ``nz == 1``).
    speck_nbytes:
        Byte length of the SPECK coefficient section that follows the
        parameter block.
    is_double / pwe_mode / has_outliers / lossless:
        Format flags (input precision, termination criterion, whether an
        outlier-correction section is present, whether the payload went
        through the lossless backend).
    """

    shape: tuple[int, int, int]
    speck_nbytes: int
    is_double: bool = False
    pwe_mode: bool = True
    has_outliers: bool = False
    lossless: bool = False

    def pack(self) -> bytes:
        """Serialize to exactly :data:`HEADER_SIZE` bytes."""
        flags = (
            (_FLAG_DOUBLE if self.is_double else 0)
            | (_FLAG_PWE_MODE if self.pwe_mode else 0)
            | (_FLAG_HAS_OUTLIERS if self.has_outliers else 0)
            | (_FLAG_LOSSLESS if self.lossless else 0)
        )
        nx, ny, nz = self.shape
        return struct.pack(_HEADER_FMT, MAGIC, VERSION, flags, nx, ny, nz, self.speck_nbytes)

    @classmethod
    def unpack(cls, data: bytes) -> "ChunkHeader":
        """Parse a header from the first :data:`HEADER_SIZE` bytes of ``data``."""
        if len(data) < HEADER_SIZE:
            raise StreamFormatError(
                f"stream too short for header: {len(data)} < {HEADER_SIZE} bytes"
            )
        magic, version, flags, nx, ny, nz, speck_nbytes = struct.unpack(
            _HEADER_FMT, data[:HEADER_SIZE]
        )
        if magic != MAGIC:
            raise StreamFormatError(f"bad magic {magic!r}; not a SPERR stream")
        if version != VERSION:
            raise StreamFormatError(f"unsupported stream version {version}")
        if nx < 1 or ny < 1 or nz < 1:
            raise StreamFormatError(f"invalid chunk shape ({nx}, {ny}, {nz})")
        if nx * ny * nz > MAX_CHUNK_POINTS:
            raise AllocationLimitError(
                f"chunk shape ({nx}, {ny}, {nz}) exceeds the "
                f"{MAX_CHUNK_POINTS}-point decode cap"
            )
        return cls(
            shape=(nx, ny, nz),
            speck_nbytes=speck_nbytes,
            is_double=bool(flags & _FLAG_DOUBLE),
            pwe_mode=bool(flags & _FLAG_PWE_MODE),
            has_outliers=bool(flags & _FLAG_HAS_OUTLIERS),
            lossless=bool(flags & _FLAG_LOSSLESS),
        )


_PARAMS_FMT = "<ddQQQBB"  # q, tolerance, speck_nbits, outlier_nbits, outlier_nbytes, wavelet_id, levels

#: wavelet name <-> stream id mapping
WAVELET_IDS = {"cdf97": 0, "cdf53": 1, "haar": 2}
WAVELET_NAMES = {v: k for k, v in WAVELET_IDS.items()}

#: sentinel for "levels chosen by the paper's rule"
LEVELS_AUTO = 255


@dataclass(frozen=True)
class ChunkParams:
    """Variable ("conditioner") parameter block following the fixed header."""

    q: float
    tolerance: float
    speck_nbits: int
    outlier_nbits: int
    outlier_nbytes: int
    wavelet: str = "cdf97"
    levels: int | None = None

    SIZE = struct.calcsize(_PARAMS_FMT)

    def pack(self) -> bytes:
        """Serialize to exactly :attr:`SIZE` bytes."""
        return struct.pack(
            _PARAMS_FMT,
            self.q,
            self.tolerance,
            self.speck_nbits,
            self.outlier_nbits,
            self.outlier_nbytes,
            WAVELET_IDS[self.wavelet],
            LEVELS_AUTO if self.levels is None else self.levels,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "ChunkParams":
        """Parse the parameter block from the first :attr:`SIZE` bytes."""
        if len(data) < cls.SIZE:
            raise StreamFormatError("stream too short for parameter block")
        q, tol, nbits, onbits, onbytes, wid, levels = struct.unpack(
            _PARAMS_FMT, data[: cls.SIZE]
        )
        if wid not in WAVELET_NAMES:
            raise StreamFormatError(f"unknown wavelet id {wid}")
        return cls(
            q=q,
            tolerance=tol,
            speck_nbits=nbits,
            outlier_nbits=onbits,
            outlier_nbytes=onbytes,
            wavelet=WAVELET_NAMES[wid],
            levels=None if levels == LEVELS_AUTO else levels,
        )
