"""Asyncio compression service over :mod:`repro.store` and the codec pipeline.

:class:`CompressionService` is the repo's front door: a stdlib-only
asyncio TCP server speaking the length-prefixed protocol of
:mod:`repro.service.protocol`, exposing

* ``read_window`` / ``info`` over an open :class:`~repro.store.CompressedArray`,
* stateless ``compress`` / ``decompress`` through :func:`repro.compress`
  and :func:`repro.decompress`,
* ``stats`` (request counters, latency percentiles, tenant cache state)
  and ``ping``.

Three service-tier mechanisms sit between the socket and the store:

* **Request batching.**  Concurrent window reads drain into one batch;
  within a batch every distinct ``(frame, chunk, level)`` is decoded
  once and fanned back out to every request that touches it (a
  batch-local overlay in front of the tenant caches), so N clients
  hammering the same region cost one decode per chunk, not N.
* **Admission control.**  Per-tenant in-flight caps and a global
  pending cap; a request over either limit is answered immediately with
  a structured ``backpressure`` error (plus a ``retry_after_ms`` hint)
  instead of being queued without bound — peak memory stays a function
  of the caps, not of client enthusiasm.
* **Multi-tenant caching.**  Decoded chunks live in a shared
  :class:`~repro.store.TenantCacheBudget` (per-tenant byte quotas under
  a global ceiling) routed through ``read_window``'s per-call cache
  override, so one tenant's scan cannot evict another tenant's hot set.

Every request is tagged with a trace id and, when a :mod:`repro.obs`
trace is active, the worker-side spans (``service.compress``,
``service.batch.read`` wrapping the store's own ``store.read_window`` /
``store.chunk.decode`` spans) and service counters land in it, giving
request-level stage attribution with the same tooling as the pipeline.
See ``docs/service.md`` for the protocol and semantics.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from .. import obs
from ..core import PsnrMode, PweMode, SizeMode, compress, decompress
from ..errors import (
    IntegrityError,
    InvalidArgumentError,
    ReproError,
    StreamFormatError,
)
from ..store import DEFAULT_CACHE_BYTES, TenantCacheBudget, open_store
from .protocol import (
    DEFAULT_MAX_PAYLOAD,
    ERR_BACKPRESSURE,
    ERR_BAD_REQUEST,
    ERR_CORRUPT,
    ERR_INTERNAL,
    ERR_NOT_FOUND,
    ERR_PROTOCOL,
    KIND_NAMES,
    MSG_COMPRESS,
    MSG_DECOMPRESS,
    MSG_ERROR,
    MSG_INFO,
    MSG_OK,
    MSG_PING,
    MSG_READ_WINDOW,
    MSG_STATS,
    PRELUDE_SIZE,
    REQUEST_KINDS,
    Message,
    array_from_wire,
    array_to_wire,
    encode_message,
    parse_message,
    parse_prelude,
    unpack_window,
)

__all__ = ["ServiceConfig", "CompressionService", "ServiceHandle", "serve_in_thread"]


@dataclass
class ServiceConfig:
    """Tunable limits and policies of a :class:`CompressionService`.

    The defaults are sized for a single-host deployment; the test suite
    and the load generator shrink them to force the interesting regimes
    (tiny queues for backpressure, zero quotas for cold-cache
    coalescing).
    """

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is on ServiceHandle/address
    #: Frame payload cap enforced before any allocation.
    max_payload_bytes: int = DEFAULT_MAX_PAYLOAD
    #: Per-tenant concurrent admitted requests before backpressure.
    max_inflight_per_tenant: int = 8
    #: Global admitted-but-unfinished request cap before backpressure.
    max_pending: int = 64
    #: Max window reads coalesced into one decode batch.
    max_batch: int = 32
    #: Optional gathering delay after a batch's first request; >0 trades
    #: a little latency for deterministic coalescing of a burst.
    batch_hold_s: float = 0.0
    #: Global ceiling of the tenant-partitioned decoded-chunk cache.
    cache_bytes: int = DEFAULT_CACHE_BYTES
    #: Per-tenant quota (None = the global ceiling, i.e. no partition).
    tenant_quota_bytes: int | None = None
    #: Per-tenant quota overrides by tenant name.
    tenant_quotas: dict = field(default_factory=dict)
    #: Worker threads shared by compress/decompress/batch jobs.
    workers: int = 4
    #: Seconds a peer may take to deliver a frame body after its
    #: prelude; a mid-frame stall is cut off instead of pinning state.
    body_timeout_s: float = 30.0
    #: Retry hint (ms) attached to backpressure errors.
    retry_after_ms: int = 50
    #: Per-op latency samples kept for the stats percentiles.
    latency_window: int = 4096


class _BatchOverlay:
    """Batch-local decode dedup in front of one tenant's cache view.

    ``get`` serves chunks already decoded by an earlier request in the
    same batch (the coalescing fan-out); ``put`` publishes a fresh
    decode to both the batch and the tenant's slice of the shared
    budget.  Not thread-safe — each batch runs on one worker thread.
    """

    __slots__ = ("shared", "view", "service")

    def __init__(self, shared: dict, view, service: "CompressionService") -> None:
        self.shared = shared
        self.view = view
        self.service = service

    def get(self, key):
        arr = self.shared.get(key)
        if arr is not None:
            self.service._count("coalesced_chunk_hits")
            obs.add_counter("service.chunk.coalesced")
            return arr
        return self.view.get(key)

    def put(self, key, arr) -> bool:
        self.shared[key] = arr
        self.service._count("chunk_decodes")
        obs.add_counter("service.chunk.decodes")
        return self.view.put(key, arr)


@dataclass
class _ReadRequest:
    """One admitted window read waiting in the batch queue."""

    msg: Message
    tenant: str
    trace_id: str
    window: tuple | None
    frame: int
    level: int
    budget: int | None
    future: asyncio.Future


class CompressionService:
    """The asyncio server; see the module docstring for the design.

    ``store_path=None`` runs a store-less service: ``compress`` /
    ``decompress`` / ``ping`` / ``stats`` work, ``read_window`` and
    ``info`` answer with a structured ``not_found`` error.
    """

    def __init__(self, store_path=None, *, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        if self.config.max_inflight_per_tenant < 1:
            raise InvalidArgumentError("max_inflight_per_tenant must be >= 1")
        if self.config.max_pending < 1:
            raise InvalidArgumentError("max_pending must be >= 1")
        if self.config.max_batch < 1:
            raise InvalidArgumentError("max_batch must be >= 1")
        # The store's own cache is disabled: all caching goes through
        # the tenant budget so residency is accounted per tenant.
        self._arr = (
            open_store(store_path, cache_bytes=0) if store_path is not None else None
        )
        quota = self.config.tenant_quota_bytes
        self.budget = TenantCacheBudget(
            self.config.cache_bytes,
            default_quota=quota,
            quotas=dict(self.config.tenant_quotas),
        )
        self._server: asyncio.base_events.Server | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._batcher: asyncio.Task | None = None
        self._read_queue: asyncio.Queue[_ReadRequest] | None = None
        self._conn_ids = itertools.count(1)
        self._conn_tasks: set[asyncio.Task] = set()
        # Admission bookkeeping lives on the event-loop thread only.
        self._tenant_inflight: dict[str, int] = {}
        self._inflight_total = 0
        # Counters/latencies are touched from worker threads too.
        self._stats_lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._latencies: dict[str, deque] = {}
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` the server is bound to (after :meth:`start`)."""
        if self._server is None:
            raise InvalidArgumentError("service is not started")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def store(self):
        """The served :class:`~repro.store.CompressedArray` (or None)."""
        return self._arr

    async def start(self) -> tuple[str, int]:
        """Bind the listener, spin up workers, and return the address."""
        if self._server is not None:
            raise InvalidArgumentError("service already started")
        self._loop = asyncio.get_running_loop()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-service"
        )
        self._read_queue = asyncio.Queue()
        self._batcher = asyncio.create_task(self._batch_loop())
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        return self.address

    async def stop(self) -> None:
        """Stop accepting, cancel in-flight work, and release workers."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    # -- bookkeeping -------------------------------------------------------

    def _count(self, name: str, value: int = 1) -> None:
        with self._stats_lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def _record_latency(self, op: str, seconds: float) -> None:
        with self._stats_lock:
            ring = self._latencies.get(op)
            if ring is None:
                ring = self._latencies[op] = deque(
                    maxlen=self.config.latency_window
                )
            ring.append(seconds)

    def counters(self) -> dict[str, int]:
        """Snapshot of the service counters."""
        with self._stats_lock:
            return dict(self._counters)

    def latency_percentiles(self) -> dict[str, dict[str, float]]:
        """Per-op ``{p50, p99, count}`` over the recent latency window."""
        with self._stats_lock:
            snapshot = {op: list(ring) for op, ring in self._latencies.items()}
        out = {}
        for op, values in snapshot.items():
            if not values:
                continue
            values.sort()
            out[op] = {
                "p50_ms": 1e3 * _percentile(values, 0.50),
                "p99_ms": 1e3 * _percentile(values, 0.99),
                "max_ms": 1e3 * values[-1],
                "count": len(values),
            }
        return out

    def stats(self) -> dict:
        """The ``stats`` endpoint's document (JSON-safe)."""
        return {
            "counters": self.counters(),
            "latency": self.latency_percentiles(),
            "cache": self.budget.stats(),
            "inflight": self._inflight_total,
            "has_store": self._arr is not None,
            "limits": {
                "max_inflight_per_tenant": self.config.max_inflight_per_tenant,
                "max_pending": self.config.max_pending,
                "max_batch": self.config.max_batch,
                "max_payload_bytes": self.config.max_payload_bytes,
            },
        }

    # -- connection handling ----------------------------------------------

    async def _read_frame(self, reader: asyncio.StreamReader) -> Message:
        """Read and parse one frame from the stream, bounded end to end."""
        prelude = await reader.readexactly(PRELUDE_SIZE)
        # Validates magic/version and caps both lengths *before* the
        # body is read, so a forged length cannot drive the allocation.
        _kind, _rid, header_len, payload_len, _crc = parse_prelude(
            prelude, max_payload=self.config.max_payload_bytes
        )
        body = await asyncio.wait_for(
            reader.readexactly(header_len + payload_len),
            timeout=self.config.body_timeout_s,
        )
        return parse_message(
            prelude + body, max_payload=self.config.max_payload_bytes
        )

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn_id = next(self._conn_ids)
        write_lock = asyncio.Lock()
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    msg = await self._read_frame(reader)
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                    BrokenPipeError,
                ):
                    break  # clean or abrupt client close
                except asyncio.TimeoutError:
                    self._count("protocol_errors")
                    await self._send(
                        writer, write_lock,
                        _error(0, ERR_PROTOCOL, "frame body timed out"),
                    )
                    break
                except ReproError as exc:
                    # Framing is lost after a malformed prelude/frame:
                    # answer with a structured protocol error, then
                    # close rather than misparse subsequent bytes.
                    self._count("protocol_errors")
                    obs.add_counter("service.protocol_errors")
                    await self._send(
                        writer, write_lock, _error(0, ERR_PROTOCOL, str(exc))
                    )
                    break
                t = asyncio.get_running_loop().create_task(
                    self._serve_request(msg, conn_id, writer, write_lock)
                )
                self._conn_tasks.add(t)
                t.add_done_callback(self._conn_tasks.discard)
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _send(self, writer, write_lock, msg: Message) -> None:
        data = encode_message(msg, max_payload=self.config.max_payload_bytes)
        async with write_lock:
            writer.write(data)
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # -- request dispatch --------------------------------------------------

    async def _serve_request(
        self, msg: Message, conn_id: int, writer, write_lock
    ) -> None:
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        op = KIND_NAMES.get(msg.kind, f"kind_{msg.kind}")
        tenant = msg.header.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant or len(tenant) > 128:
            tenant = "default"
        trace_id = f"{conn_id:x}-{msg.request_id:x}"
        self._count("requests_total")
        self._count(f"requests.{op}")
        obs.add_counter("service.requests")
        obs.add_counter(f"service.requests.{op}")

        if msg.kind not in REQUEST_KINDS:
            self._count("responses_error")
            await self._send(
                writer, write_lock,
                _error(msg.request_id, ERR_BAD_REQUEST,
                       f"unknown request kind {msg.kind}"),
            )
            return

        # Cheap control-plane ops bypass admission so health stays
        # observable while the data plane is saturated.
        if msg.kind in (MSG_PING, MSG_STATS, MSG_INFO):
            response = self._handle_control(msg)
            self._count("responses_error" if response.kind == MSG_ERROR
                        else "responses_ok")
            await self._send(writer, write_lock, response)
            self._record_latency(op, loop.time() - t0)
            return

        # Admission control: explicit rejection beats unbounded queues.
        inflight = self._tenant_inflight.get(tenant, 0)
        if (
            self._inflight_total >= self.config.max_pending
            or inflight >= self.config.max_inflight_per_tenant
        ):
            self._count("backpressure_rejects")
            obs.add_counter("service.backpressure")
            await self._send(
                writer, write_lock,
                _error(
                    msg.request_id, ERR_BACKPRESSURE,
                    f"tenant {tenant!r}: {inflight} in flight "
                    f"(cap {self.config.max_inflight_per_tenant}), "
                    f"{self._inflight_total} pending globally "
                    f"(cap {self.config.max_pending})",
                    retry_after_ms=self.config.retry_after_ms,
                ),
            )
            return

        self._tenant_inflight[tenant] = inflight + 1
        self._inflight_total += 1
        try:
            response = await self._handle_data(msg, tenant, trace_id)
            response = self._response_within_cap(response, msg.request_id)
            self._count("responses_error" if response.kind == MSG_ERROR
                        else "responses_ok")
            # The send stays inside the admission window: a pipelining
            # client that stops reading pins its in-flight slots (new
            # requests get backpressure) instead of letting completed
            # payloads pile up in blocked send tasks without bound.
            await self._send_response(
                writer, write_lock, response, msg.request_id
            )
        finally:
            self._tenant_inflight[tenant] -= 1
            if self._tenant_inflight[tenant] <= 0:
                del self._tenant_inflight[tenant]
            self._inflight_total -= 1
        self._record_latency(op, loop.time() - t0)

    def _response_within_cap(self, response: Message, request_id: int) -> Message:
        """Replace a response whose payload exceeds the frame cap.

        ``MAX_DECODE_POINTS`` admits windows far larger than the default
        payload cap, so an oversized result is a legitimate-request
        outcome; it must surface as a structured error, not as an
        ``encode_message`` failure that would black-hole the request.
        """
        if len(response.payload) <= self.config.max_payload_bytes:
            return response
        self._count("oversized_responses")
        return _error(
            request_id, ERR_BAD_REQUEST,
            f"response payload is {len(response.payload)} bytes, above the "
            f"{self.config.max_payload_bytes}-byte frame cap; request a "
            f"smaller window or raise max_payload_bytes",
        )

    async def _send_response(
        self, writer, write_lock, response: Message, request_id: int
    ) -> None:
        """Send a response; on encoding failure reply with ERR_INTERNAL.

        Last-resort boundary: the client must always get *some* frame
        for its request id, or it hangs waiting on a response that was
        never written.
        """
        try:
            await self._send(writer, write_lock, response)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # client went away; nothing left to tell it
        except Exception as exc:  # noqa: BLE001 - encoding failed
            self._count("internal_errors")
            await self._send(
                writer, write_lock,
                _error(request_id, ERR_INTERNAL,
                       f"response encoding failed: {type(exc).__name__}: {exc}"),
            )

    def _handle_control(self, msg: Message) -> Message:
        """ping / stats / info — answered inline on the event loop."""
        if msg.kind == MSG_PING:
            return Message(MSG_OK, msg.request_id, {"pong": True})
        if msg.kind == MSG_STATS:
            return Message(MSG_OK, msg.request_id, self.stats())
        if self._arr is None:
            return _error(msg.request_id, ERR_NOT_FOUND, "no store is attached")
        info = dict(self._arr.info())
        info["shape"] = list(info["shape"])
        info["max_payload_bytes"] = self.config.max_payload_bytes
        return Message(MSG_OK, msg.request_id, info)

    async def _handle_data(
        self, msg: Message, tenant: str, trace_id: str
    ) -> Message:
        loop = asyncio.get_running_loop()
        try:
            if msg.kind == MSG_COMPRESS:
                return await loop.run_in_executor(
                    self._pool, self._do_compress, msg, trace_id
                )
            if msg.kind == MSG_DECOMPRESS:
                return await loop.run_in_executor(
                    self._pool, self._do_decompress, msg, trace_id
                )
            return await self._enqueue_read(msg, tenant, trace_id)
        except ReproError as exc:
            return _error_from_exception(msg.request_id, exc)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - last-resort boundary
            self._count("internal_errors")
            return _error(
                msg.request_id, ERR_INTERNAL, f"{type(exc).__name__}: {exc}"
            )

    # -- compress / decompress workers ------------------------------------

    def _do_compress(self, msg: Message, trace_id: str) -> Message:
        with obs.span("service.compress", trace_id=trace_id):
            data = array_from_wire(msg.header, msg.payload)
            mode = _mode_from_header(msg.header)
            chunk = msg.header.get("chunk")
            if chunk is not None and not (
                isinstance(chunk, int) and not isinstance(chunk, bool)
                and 0 < chunk <= 4096
            ):
                raise InvalidArgumentError(f"bad chunk spec {chunk!r}")
            codec = msg.header.get("codec", "quality")
            if not isinstance(codec, str):
                raise InvalidArgumentError(f"bad codec spec {codec!r}")
            result = compress(data, mode, chunk_shape=chunk, codec=codec)
            header = {
                "nbytes": result.nbytes,
                "bpp": result.bpp,
                "n_outliers": result.n_outliers,
            }
            return Message(MSG_OK, msg.request_id, header, result.payload)

    def _do_decompress(self, msg: Message, trace_id: str) -> Message:
        with obs.span("service.decompress", trace_id=trace_id):
            out = decompress(bytes(msg.payload))
            header, payload = array_to_wire(out)
            return Message(MSG_OK, msg.request_id, header, payload)

    # -- window-read batching ----------------------------------------------

    async def _enqueue_read(
        self, msg: Message, tenant: str, trace_id: str
    ) -> Message:
        if self._arr is None:
            return _error(msg.request_id, ERR_NOT_FOUND, "no store is attached")
        header = msg.header
        window = unpack_window(header.get("window"))
        frame = header.get("frame", 0)
        level = header.get("level", 0)
        budget = header.get("budget")
        for name, value in (("frame", frame), ("level", level)):
            if isinstance(value, bool) or not isinstance(value, int):
                raise InvalidArgumentError(f"{name} must be an integer")
        if budget is not None and (
            isinstance(budget, bool) or not isinstance(budget, int)
        ):
            raise InvalidArgumentError("budget must be an integer byte count")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await self._read_queue.put(
            _ReadRequest(
                msg=msg,
                tenant=tenant,
                trace_id=trace_id,
                window=window,
                frame=frame,
                level=level,
                budget=budget,
                future=future,
            )
        )
        return await future

    async def _batch_loop(self) -> None:
        """Drain the read queue into batches and run them on the pool."""
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._read_queue.get()]
            if self.config.batch_hold_s > 0:
                await asyncio.sleep(self.config.batch_hold_s)
            while (
                len(batch) < self.config.max_batch
                and not self._read_queue.empty()
            ):
                batch.append(self._read_queue.get_nowait())
            self._count("batches")
            self._count("batched_reads", len(batch))
            obs.add_counter("service.batches")
            try:
                results = await loop.run_in_executor(
                    self._pool, self._process_batch, batch
                )
            except asyncio.CancelledError:
                for req in batch:
                    if not req.future.done():
                        req.future.cancel()
                raise
            except Exception as exc:  # noqa: BLE001 - keep the loop alive
                for req in batch:
                    if not req.future.done():
                        req.future.set_result(
                            _error(
                                req.msg.request_id, ERR_INTERNAL,
                                f"{type(exc).__name__}: {exc}",
                            )
                        )
                continue
            for req, response in results:
                if not req.future.done():
                    req.future.set_result(response)

    def _process_batch(
        self, batch: list[_ReadRequest]
    ) -> list[tuple[_ReadRequest, Message]]:
        """Serve one batch of window reads on a worker thread.

        Requests run sequentially over a batch-local chunk overlay: the
        first request to touch a chunk decodes it (and publishes it to
        its tenant's cache slice); every later same-chunk request in the
        batch is a coalesced hit.  Results are byte-identical to direct
        ``read_window`` calls because the overlay serves the exact
        decoded arrays the store itself caches.
        """
        shared: dict = {}
        out = []
        for req in batch:
            try:
                with obs.span(
                    "service.batch.read",
                    trace_id=req.trace_id,
                    tenant=req.tenant,
                    batch_size=len(batch),
                ):
                    overlay = _BatchOverlay(
                        shared, self.budget.view(req.tenant), self
                    )
                    arr = self._arr.read_window(
                        req.window,
                        frame=req.frame,
                        level=req.level,
                        budget=req.budget,
                        cache=overlay,
                    )
                header, payload = array_to_wire(arr)
                out.append(
                    (req, Message(MSG_OK, req.msg.request_id, header, payload))
                )
            except ReproError as exc:
                out.append((req, _error_from_exception(req.msg.request_id, exc)))
            except Exception as exc:  # noqa: BLE001 - isolate batch items
                self._count("internal_errors")
                out.append(
                    (
                        req,
                        _error(
                            req.msg.request_id, ERR_INTERNAL,
                            f"{type(exc).__name__}: {exc}",
                        ),
                    )
                )
        return out


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[int(idx)]


def _error(request_id: int, code: str, message: str, **extra) -> Message:
    """Build a structured MSG_ERROR response."""
    header = {"code": code, "message": message}
    header.update(extra)
    return Message(MSG_ERROR, request_id, header)


def _error_from_exception(request_id: int, exc: ReproError) -> Message:
    """Map a library exception onto a wire error code."""
    if isinstance(exc, InvalidArgumentError):
        code = ERR_BAD_REQUEST
    elif isinstance(exc, (IntegrityError, StreamFormatError)):
        code = ERR_CORRUPT
    else:
        code = ERR_INTERNAL
    return _error(request_id, code, str(exc))


def _mode_from_header(header: dict):
    """Decode a compression-mode spec from a request header.

    ``{"mode": {"kind": "pwe"|"bpp"|"psnr", "value": number}}``.
    """
    spec = header.get("mode")
    if not isinstance(spec, dict):
        raise InvalidArgumentError("compress request needs a mode object")
    kind = spec.get("kind")
    value = spec.get("value")
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise InvalidArgumentError(f"bad mode value {value!r}")
    if kind == "pwe":
        return PweMode(float(value))
    if kind == "bpp":
        return SizeMode(bpp=float(value))
    if kind == "psnr":
        return PsnrMode(float(value))
    raise InvalidArgumentError(f"unknown mode kind {kind!r}")


class ServiceHandle:
    """A running service on a background thread (tests, benchmarks, CLI).

    Created by :func:`serve_in_thread`; exposes the bound address and a
    blocking :meth:`stop`.
    """

    def __init__(self, service: CompressionService, loop, thread) -> None:
        self.service = service
        self._loop = loop
        self._thread = thread
        self.host, self.port = service.address

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the server and join its event-loop thread."""
        if self._thread is None:
            return
        asyncio.run_coroutine_threadsafe(
            self.service.stop(), self._loop
        ).result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
        self._loop.close()
        self._thread = None

    def __enter__(self) -> "ServiceHandle":
        """Context-manager entry (the server is already running)."""
        return self

    def __exit__(self, *exc) -> bool:
        """Stop the server on context exit."""
        self.stop()
        return False


def serve_in_thread(
    store_path=None, *, config: ServiceConfig | None = None
) -> ServiceHandle:
    """Start a :class:`CompressionService` on a daemon thread.

    Returns once the listener is bound; the returned
    :class:`ServiceHandle` carries ``host``/``port`` and stops the
    server cleanly (usable as a context manager).
    """
    service = CompressionService(store_path, config=config)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    startup_error: list[BaseException] = []

    def runner() -> None:
        asyncio.set_event_loop(loop)

        async def boot():
            try:
                await service.start()
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                startup_error.append(exc)
            finally:
                started.set()

        loop.run_until_complete(boot())
        if not startup_error:
            loop.run_forever()

    thread = threading.Thread(target=runner, daemon=True, name="repro-service")
    thread.start()
    started.wait(10.0)
    if startup_error:
        thread.join(1.0)
        loop.close()
        raise startup_error[0]
    return ServiceHandle(service, loop, thread)
