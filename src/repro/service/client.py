"""Client library for the compression service (sync + asyncio).

:class:`ServiceClient` is the blocking client: one socket, one request
in flight at a time, exactly what a script or a load-generator thread
needs.  :class:`AsyncServiceClient` speaks the same protocol over an
asyncio connection and supports pipelining — requests are correlated by
request id, so many coroutines can share one connection.

Both clients translate ``MSG_ERROR`` responses into
:class:`ServiceError` (with the structured ``code``), and backpressure
rejections into the :class:`BackpressureError` subclass carrying the
server's ``retry_after_ms`` hint, so callers can branch on the class::

    try:
        window = client.read_window((slice(0, 32), slice(0, 32), 7))
    except BackpressureError as exc:
        time.sleep(exc.retry_after_ms / 1e3)
"""

from __future__ import annotations

import asyncio
import socket
import threading

import numpy as np

from ..errors import ReproError, StreamFormatError
from .protocol import (
    DEFAULT_MAX_PAYLOAD,
    ERR_BACKPRESSURE,
    MSG_COMPRESS,
    MSG_DECOMPRESS,
    MSG_ERROR,
    MSG_INFO,
    MSG_OK,
    MSG_PING,
    MSG_READ_WINDOW,
    MSG_STATS,
    PRELUDE_SIZE,
    Message,
    array_from_wire,
    array_to_wire,
    encode_message,
    parse_message,
    parse_prelude,
    pack_window,
)

__all__ = ["ServiceClient", "AsyncServiceClient", "ServiceError", "BackpressureError"]


class ServiceError(ReproError):
    """A structured error response from the service."""

    def __init__(self, code: str, message: str, retry_after_ms: int = 0) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.retry_after_ms = retry_after_ms


class BackpressureError(ServiceError):
    """The server rejected the request under admission control."""


def _raise_for_error(msg: Message) -> Message:
    """Translate an error response into an exception; pass OK through."""
    if msg.kind == MSG_ERROR:
        code = str(msg.header.get("code", "internal"))
        detail = str(msg.header.get("message", ""))
        retry = msg.header.get("retry_after_ms", 0)
        retry = int(retry) if isinstance(retry, (int, float)) else 0
        cls = BackpressureError if code == ERR_BACKPRESSURE else ServiceError
        raise cls(code, detail, retry_after_ms=retry)
    if msg.kind != MSG_OK:
        raise StreamFormatError(
            f"unexpected response kind {msg.kind} from service"
        )
    return msg


def _read_window_header(window, frame, level, budget, tenant) -> dict:
    header = {
        "window": pack_window(window),
        "frame": int(frame),
        "level": int(level),
        "tenant": tenant,
    }
    if budget is not None:
        header["budget"] = int(budget)
    return header


def _compress_header(
    data, mode_kind, mode_value, chunk, tenant, codec
) -> tuple[dict, bytes]:
    header, payload = array_to_wire(data)
    header["mode"] = {"kind": mode_kind, "value": float(mode_value)}
    header["tenant"] = tenant
    if chunk is not None:
        header["chunk"] = int(chunk)
    if codec != "quality":
        header["codec"] = str(codec)
    return header, payload


class ServiceClient:
    """Blocking client: one request in flight per connection.

    Thread-safe for callers that share one instance (a lock serializes
    the socket); the load generator gives each worker its own client
    instead, which is also the higher-throughput pattern.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        tenant: str = "default",
        timeout: float = 30.0,
        max_payload: int = DEFAULT_MAX_PAYLOAD,
    ) -> None:
        self.tenant = tenant
        self.max_payload = max_payload
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._lock = threading.Lock()
        self._next_id = 0

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        """Context-manager entry."""
        return self

    def __exit__(self, *exc) -> bool:
        """Close the connection on context exit."""
        self.close()
        return False

    def _recv_exactly(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            piece = self._sock.recv(min(remaining, 1 << 20))
            if not piece:
                raise StreamFormatError(
                    "service connection closed mid-response"
                )
            chunks.append(piece)
            remaining -= len(piece)
        return b"".join(chunks)

    def _request(self, kind: int, header: dict, payload: bytes = b"") -> Message:
        with self._lock:
            if self._sock is None:
                raise StreamFormatError("client is closed")
            # Skip 0 on wrap: rid 0 is reserved for connection-level
            # protocol errors.
            self._next_id = (self._next_id % 0xFFFFFFFF) + 1
            request_id = self._next_id
            frame = encode_message(
                Message(kind, request_id, header, payload),
                max_payload=self.max_payload,
            )
            self._sock.sendall(frame)
            prelude = self._recv_exactly(PRELUDE_SIZE)
            _k, _rid, header_len, payload_len, _crc = parse_prelude(
                prelude, max_payload=self.max_payload
            )
            body = self._recv_exactly(header_len + payload_len)
        response = parse_message(prelude + body, max_payload=self.max_payload)
        if response.request_id not in (request_id, 0):
            raise StreamFormatError(
                f"response correlates to request {response.request_id}, "
                f"expected {request_id}"
            )
        return _raise_for_error(response)

    def ping(self) -> bool:
        """Round-trip a ping; True when the server answered."""
        return bool(self._request(MSG_PING, {}).header.get("pong"))

    def info(self) -> dict:
        """The served store's geometry/summary document."""
        return self._request(MSG_INFO, {"tenant": self.tenant}).header

    def stats(self) -> dict:
        """Service counters, latency percentiles, and cache state."""
        return self._request(MSG_STATS, {}).header

    def read_window(
        self,
        window=None,
        *,
        frame: int = 0,
        level: int = 0,
        budget: int | None = None,
    ) -> np.ndarray:
        """Decode a window of the served store (see
        :meth:`repro.store.CompressedArray.read_window`)."""
        msg = self._request(
            MSG_READ_WINDOW,
            _read_window_header(window, frame, level, budget, self.tenant),
        )
        return array_from_wire(msg.header, msg.payload)

    def compress(
        self,
        data: np.ndarray,
        *,
        pwe: float | None = None,
        bpp: float | None = None,
        psnr: float | None = None,
        chunk: int | None = None,
        codec: str = "quality",
    ) -> bytes:
        """Compress an array server-side; returns the container payload.

        ``codec`` selects the routing policy (``quality`` / ``fast`` /
        ``adaptive``, see :data:`repro.CODEC_POLICIES`); non-quality
        policies need a PWE mode.
        """
        kind, value = _pick_mode(pwe, bpp, psnr)
        header, payload = _compress_header(
            data, kind, value, chunk, self.tenant, codec
        )
        return bytes(self._request(MSG_COMPRESS, header, payload).payload)

    def decompress(self, payload: bytes) -> np.ndarray:
        """Decompress a container payload server-side."""
        msg = self._request(
            MSG_DECOMPRESS, {"tenant": self.tenant}, bytes(payload)
        )
        return array_from_wire(msg.header, msg.payload)


def _pick_mode(pwe, bpp, psnr) -> tuple[str, float]:
    given = [(k, v) for k, v in (("pwe", pwe), ("bpp", bpp), ("psnr", psnr))
             if v is not None]
    if len(given) != 1:
        raise ReproError("give exactly one of pwe=, bpp=, psnr=")
    return given[0]


class AsyncServiceClient:
    """Asyncio client with request pipelining over one connection.

    A background reader task dispatches responses to their awaiting
    requests by request id, so any number of coroutines may issue
    requests concurrently on one instance.  Use ``await
    AsyncServiceClient.connect(host, port)`` to build one.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        tenant: str = "default",
        max_payload: int = DEFAULT_MAX_PAYLOAD,
    ) -> None:
        self.tenant = tenant
        self.max_payload = max_payload
        self._reader = reader
        self._writer = writer
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.get_event_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        tenant: str = "default",
        max_payload: int = DEFAULT_MAX_PAYLOAD,
    ) -> "AsyncServiceClient":
        """Open a connection and return a ready client."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, tenant=tenant, max_payload=max_payload)

    async def close(self) -> None:
        """Cancel the reader task and close the connection."""
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        self._fail_pending(StreamFormatError("client closed"))

    async def __aenter__(self) -> "AsyncServiceClient":
        """Async context-manager entry."""
        return self

    async def __aexit__(self, *exc) -> bool:
        """Close the connection on context exit."""
        await self.close()
        return False

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    async def _read_loop(self) -> None:
        try:
            while True:
                prelude = await self._reader.readexactly(PRELUDE_SIZE)
                _k, _rid, header_len, payload_len, _crc = parse_prelude(
                    prelude, max_payload=self.max_payload
                )
                body = await self._reader.readexactly(header_len + payload_len)
                msg = parse_message(
                    prelude + body, max_payload=self.max_payload
                )
                future = self._pending.pop(msg.request_id, None)
                if future is not None and not future.done():
                    future.set_result(msg)
                elif msg.request_id == 0:
                    # Connection-level protocol error: fail everything.
                    self._fail_pending(
                        ServiceError(
                            str(msg.header.get("code", "protocol")),
                            str(msg.header.get("message", "")),
                        )
                    )
        except asyncio.CancelledError:
            raise
        except asyncio.IncompleteReadError:
            self._fail_pending(StreamFormatError("service closed the connection"))
        except Exception as exc:  # noqa: BLE001 - fan the failure out
            self._fail_pending(
                exc if isinstance(exc, ReproError)
                else StreamFormatError(f"client reader failed: {exc}")
            )

    async def _request(
        self, kind: int, header: dict, payload: bytes = b""
    ) -> Message:
        # Skip 0 on wrap: rid 0 is reserved for connection-level
        # protocol errors (a rid-0 frame fails *all* pending requests).
        self._next_id = (self._next_id % 0xFFFFFFFF) + 1
        request_id = self._next_id
        frame = encode_message(
            Message(kind, request_id, header, payload),
            max_payload=self.max_payload,
        )
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        self._pending[request_id] = future
        async with self._write_lock:
            self._writer.write(frame)
            await self._writer.drain()
        return _raise_for_error(await future)

    async def ping(self) -> bool:
        """Round-trip a ping; True when the server answered."""
        return bool((await self._request(MSG_PING, {})).header.get("pong"))

    async def info(self) -> dict:
        """The served store's geometry/summary document."""
        return (await self._request(MSG_INFO, {"tenant": self.tenant})).header

    async def stats(self) -> dict:
        """Service counters, latency percentiles, and cache state."""
        return (await self._request(MSG_STATS, {})).header

    async def read_window(
        self,
        window=None,
        *,
        frame: int = 0,
        level: int = 0,
        budget: int | None = None,
    ) -> np.ndarray:
        """Decode a window of the served store."""
        msg = await self._request(
            MSG_READ_WINDOW,
            _read_window_header(window, frame, level, budget, self.tenant),
        )
        return array_from_wire(msg.header, msg.payload)

    async def compress(
        self,
        data: np.ndarray,
        *,
        pwe: float | None = None,
        bpp: float | None = None,
        psnr: float | None = None,
        chunk: int | None = None,
        codec: str = "quality",
    ) -> bytes:
        """Compress an array server-side; returns the container payload.

        ``codec`` selects the routing policy (``quality`` / ``fast`` /
        ``adaptive``); non-quality policies need a PWE mode.
        """
        kind, value = _pick_mode(pwe, bpp, psnr)
        header, payload = _compress_header(
            data, kind, value, chunk, self.tenant, codec
        )
        return bytes(
            (await self._request(MSG_COMPRESS, header, payload)).payload
        )

    async def decompress(self, payload: bytes) -> np.ndarray:
        """Decompress a container payload server-side."""
        msg = await self._request(
            MSG_DECOMPRESS, {"tenant": self.tenant}, bytes(payload)
        )
        return array_from_wire(msg.header, msg.payload)
