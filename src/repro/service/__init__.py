"""Async compression service tier: the system's network front door.

``repro.service`` turns the library into a server: an asyncio TCP
service (:class:`CompressionService`) speaking a CRC-framed,
length-prefixed binary protocol (:mod:`repro.service.protocol`) that
exposes window reads over a :class:`~repro.store.CompressedArray` plus
stateless compress/decompress, with

* same-chunk request **coalescing** (concurrent window reads touching a
  chunk decode it once per batch),
* **admission control** and explicit backpressure errors instead of
  unbounded queues,
* a **multi-tenant** decoded-chunk cache budget
  (:class:`~repro.store.TenantCacheBudget`),
* request-level telemetry threaded through :mod:`repro.obs`.

Clients: :class:`ServiceClient` (blocking) and
:class:`AsyncServiceClient` (asyncio, pipelined).  Start a server from
Python via :func:`serve_in_thread`, or from the shell via
``sperr serve``.  The protocol and operational semantics are specified
in ``docs/service.md``.
"""

from .client import AsyncServiceClient, BackpressureError, ServiceClient, ServiceError
from .protocol import (
    DEFAULT_MAX_PAYLOAD,
    MAX_HEADER_BYTES,
    PROTOCOL_VERSION,
    Message,
    encode_message,
    parse_message,
)
from .server import CompressionService, ServiceConfig, ServiceHandle, serve_in_thread

__all__ = [
    "CompressionService",
    "ServiceConfig",
    "ServiceHandle",
    "serve_in_thread",
    "ServiceClient",
    "AsyncServiceClient",
    "ServiceError",
    "BackpressureError",
    "Message",
    "encode_message",
    "parse_message",
    "PROTOCOL_VERSION",
    "MAX_HEADER_BYTES",
    "DEFAULT_MAX_PAYLOAD",
]
