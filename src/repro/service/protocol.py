"""Length-prefixed binary wire protocol for the compression service.

One *message* is one CRC-protected frame::

    offset  size  field
    0       2     magic  b"Rv"
    2       1     protocol version (currently 1)
    3       1     message kind (request or response code)
    4       4     request id (u32 LE; responses echo their request's id)
    8       4     header length  (u32 LE, capped at MAX_HEADER_BYTES)
    12      8     payload length (u64 LE, capped at the peer's limit)
    20      4     CRC32 of header + payload bytes (u32 LE)
    24      -     header bytes   (UTF-8 JSON object)
    24+h    -     payload bytes  (raw: array data or container payload)

The JSON header carries the small structured fields (window spec, frame,
tenant, dtype/shape, error codes); the payload carries the bulk bytes,
so a window read never round-trips float data through JSON.

Both sides parse frames behind the same anti-DoS discipline as the
container decoders: every length field is validated against an explicit
cap *before* any allocation, the CRC is checked before the header is
parsed, and any malformed frame raises a
:class:`~repro.errors.ReproError` subclass (``decode_guard`` translates
raw ``json``/``struct`` failures).  Unknown protocol versions are
rejected cleanly so a future v2 peer fails fast instead of
misinterpreting lengths.
"""

from __future__ import annotations

import json
import math
import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

from ..errors import (
    MAX_DECODE_POINTS,
    AllocationLimitError,
    IntegrityError,
    InvalidArgumentError,
    StreamFormatError,
    decode_guard,
)

__all__ = [
    "PROTOCOL_VERSION",
    "FRAME_MAGIC",
    "PRELUDE_SIZE",
    "MAX_HEADER_BYTES",
    "DEFAULT_MAX_PAYLOAD",
    "MSG_PING",
    "MSG_INFO",
    "MSG_READ_WINDOW",
    "MSG_COMPRESS",
    "MSG_DECOMPRESS",
    "MSG_STATS",
    "MSG_OK",
    "MSG_ERROR",
    "REQUEST_KINDS",
    "RESPONSE_KINDS",
    "KIND_NAMES",
    "ERR_BAD_REQUEST",
    "ERR_BACKPRESSURE",
    "ERR_NOT_FOUND",
    "ERR_CORRUPT",
    "ERR_INTERNAL",
    "ERR_PROTOCOL",
    "Message",
    "encode_message",
    "parse_message",
    "parse_prelude",
    "pack_window",
    "unpack_window",
    "array_to_wire",
    "array_from_wire",
]

#: Wire protocol version; peers reject frames from any other version.
PROTOCOL_VERSION = 1

#: Two-byte frame magic ("Repro serVice").
FRAME_MAGIC = b"Rv"

#: Fixed frame prelude size in bytes (everything before the header).
PRELUDE_SIZE = 24

#: Cap on the JSON header length — headers are small structured fields,
#: so anything beyond this is a corrupt or hostile length field.
MAX_HEADER_BYTES = 256 << 10

#: Default cap on a frame's raw payload (array bytes / container bytes).
DEFAULT_MAX_PAYLOAD = 256 << 20

# Request kinds.
MSG_PING = 1
MSG_INFO = 2
MSG_READ_WINDOW = 3
MSG_COMPRESS = 4
MSG_DECOMPRESS = 5
MSG_STATS = 6

# Response kinds.
MSG_OK = 128
MSG_ERROR = 129

#: All request message kinds.
REQUEST_KINDS = frozenset(
    {MSG_PING, MSG_INFO, MSG_READ_WINDOW, MSG_COMPRESS, MSG_DECOMPRESS, MSG_STATS}
)
#: All response message kinds.
RESPONSE_KINDS = frozenset({MSG_OK, MSG_ERROR})

#: Human-readable kind names (telemetry and error messages).
KIND_NAMES = {
    MSG_PING: "ping",
    MSG_INFO: "info",
    MSG_READ_WINDOW: "read_window",
    MSG_COMPRESS: "compress",
    MSG_DECOMPRESS: "decompress",
    MSG_STATS: "stats",
    MSG_OK: "ok",
    MSG_ERROR: "error",
}

# Structured error codes carried in MSG_ERROR headers.
ERR_BAD_REQUEST = "bad_request"
ERR_BACKPRESSURE = "backpressure"
ERR_NOT_FOUND = "not_found"
ERR_CORRUPT = "corrupt"
ERR_INTERNAL = "internal"
ERR_PROTOCOL = "protocol"

_PRELUDE = struct.Struct("<2sBBIIQI")


@dataclass(frozen=True)
class Message:
    """One decoded protocol frame (request or response)."""

    kind: int
    request_id: int
    header: dict = field(default_factory=dict)
    payload: bytes = b""

    @property
    def kind_name(self) -> str:
        """Human-readable name of :attr:`kind`."""
        return KIND_NAMES.get(self.kind, f"kind_{self.kind}")


def encode_message(
    msg: Message, *, max_payload: int = DEFAULT_MAX_PAYLOAD
) -> bytes:
    """Serialize a :class:`Message` into one wire frame.

    Enforces the same caps the parser enforces, so an encoder cannot
    produce a frame its peer is guaranteed to reject.
    """
    if not 0 <= msg.kind <= 255:
        raise InvalidArgumentError(f"message kind {msg.kind} not in [0, 255]")
    if not 0 <= msg.request_id <= 0xFFFFFFFF:
        raise InvalidArgumentError("request id must fit in u32")
    header = json.dumps(msg.header, separators=(",", ":")).encode("utf-8")
    if len(header) > MAX_HEADER_BYTES:
        raise InvalidArgumentError(
            f"header is {len(header)} bytes, above the {MAX_HEADER_BYTES} cap"
        )
    if len(msg.payload) > max_payload:
        raise InvalidArgumentError(
            f"payload is {len(msg.payload)} bytes, above the {max_payload} cap"
        )
    crc = zlib.crc32(msg.payload, zlib.crc32(header))
    prelude = _PRELUDE.pack(
        FRAME_MAGIC,
        PROTOCOL_VERSION,
        msg.kind,
        msg.request_id,
        len(header),
        len(msg.payload),
        crc,
    )
    return prelude + header + bytes(msg.payload)


def parse_prelude(
    prelude: bytes, *, max_payload: int = DEFAULT_MAX_PAYLOAD
) -> tuple[int, int, int, int, int]:
    """Validate a frame prelude; returns ``(kind, request_id, header_len,
    payload_len, crc)``.

    All framing checks happen here, *before* the caller reads or
    allocates the body: magic, version, and both length caps.  Raises
    :class:`~repro.errors.StreamFormatError` (or
    :class:`~repro.errors.AllocationLimitError` for oversized length
    fields) on anything malformed.
    """
    if len(prelude) < PRELUDE_SIZE:
        raise StreamFormatError(
            f"service frame prelude truncated ({len(prelude)} of "
            f"{PRELUDE_SIZE} bytes)"
        )
    with decode_guard("service"):
        magic, version, kind, request_id, header_len, payload_len, crc = (
            _PRELUDE.unpack(prelude[:PRELUDE_SIZE])
        )
    if magic != FRAME_MAGIC:
        raise StreamFormatError(
            f"not a service frame (magic {magic!r}, want {FRAME_MAGIC!r})"
        )
    if version != PROTOCOL_VERSION:
        raise StreamFormatError(
            f"unsupported protocol version {version} (this peer speaks "
            f"{PROTOCOL_VERSION})"
        )
    if header_len > MAX_HEADER_BYTES:
        raise AllocationLimitError(
            f"frame declares a {header_len}-byte header, above the "
            f"{MAX_HEADER_BYTES} cap"
        )
    if payload_len > max_payload:
        raise AllocationLimitError(
            f"frame declares a {payload_len}-byte payload, above the "
            f"{max_payload} cap"
        )
    return kind, request_id, header_len, payload_len, crc


def parse_message(
    data: bytes, *, max_payload: int = DEFAULT_MAX_PAYLOAD
) -> Message:
    """Parse one complete frame from ``data`` (must contain exactly one).

    The stream readers consume frames incrementally via
    :func:`parse_prelude`; this whole-buffer form is the entry point the
    fault-injection suite drives.  The CRC is verified before the JSON
    header is parsed, so flipped bits anywhere in the body surface as
    :class:`~repro.errors.IntegrityError` rather than as JSON weirdness.
    """
    kind, request_id, header_len, payload_len, crc = parse_prelude(
        data, max_payload=max_payload
    )
    want = PRELUDE_SIZE + header_len + payload_len
    if len(data) < want:
        raise StreamFormatError(
            f"service frame truncated ({len(data)} of {want} bytes)"
        )
    if len(data) > want:
        raise StreamFormatError(
            f"{len(data) - want} trailing bytes after service frame"
        )
    header_bytes = data[PRELUDE_SIZE : PRELUDE_SIZE + header_len]
    payload = data[PRELUDE_SIZE + header_len : want]
    got = zlib.crc32(payload, zlib.crc32(header_bytes))
    if got != crc:
        raise IntegrityError(
            f"service frame CRC mismatch (stored {crc:#010x}, got {got:#010x})"
        )
    with decode_guard("service"):
        header = json.loads(header_bytes.decode("utf-8")) if header_len else {}
    if not isinstance(header, dict):
        raise StreamFormatError(
            f"service frame header is {type(header).__name__}, not an object"
        )
    return Message(
        kind=kind, request_id=request_id, header=header, payload=payload
    )


# -- window / array marshalling -------------------------------------------


def pack_window(window) -> list | None:
    """Encode a ``read_window`` window spec as a JSON-safe value.

    ``None`` stays ``None`` (full array); a tuple becomes a list whose
    elements are ``None`` (full axis), an ``int`` (index), or a 2-list
    ``[lo, hi]`` with ``None`` for open ends.
    """
    if window is None or window is Ellipsis:
        return None
    if isinstance(window, (slice, int, np.integer)):
        window = (window,)
    out: list = []
    for w in window:
        if w is None:
            out.append(None)
        elif isinstance(w, slice):
            if w.step not in (None, 1):
                raise InvalidArgumentError("windows must be contiguous (step 1)")
            out.append([w.start, w.stop])
        elif isinstance(w, (int, np.integer)):
            out.append(int(w))
        else:
            raise InvalidArgumentError(f"unsupported window component {w!r}")
    return out


def unpack_window(spec) -> tuple | None:
    """Decode :func:`pack_window` output back into slices/ints.

    Validates shapes and types strictly — this runs on untrusted request
    headers, so anything unexpected raises
    :class:`~repro.errors.StreamFormatError`.
    """
    if spec is None:
        return None
    if not isinstance(spec, list):
        raise StreamFormatError(f"window spec must be a list, got {type(spec).__name__}")
    if len(spec) > 64:
        raise StreamFormatError(f"window spec has {len(spec)} axes (cap 64)")
    out: list = []
    for item in spec:
        if item is None:
            out.append(slice(None))
        elif isinstance(item, bool):
            raise StreamFormatError("window component must not be a bool")
        elif isinstance(item, int):
            out.append(item)
        elif (
            isinstance(item, list)
            and len(item) == 2
            and all(x is None or (isinstance(x, int) and not isinstance(x, bool))
                    for x in item)
        ):
            out.append(slice(item[0], item[1]))
        else:
            raise StreamFormatError(f"bad window component {item!r}")
    return tuple(out)


#: Dtypes an array may cross the wire as; anything else is rejected
#: before ``np.frombuffer`` sees attacker-controlled strings.
_WIRE_DTYPES = frozenset({"float32", "float64", "int32", "int64"})


def array_to_wire(arr: np.ndarray) -> tuple[dict, bytes]:
    """Split an array into a JSON-safe header and a raw byte payload."""
    dtype = str(arr.dtype)
    if dtype not in _WIRE_DTYPES:
        raise InvalidArgumentError(
            f"dtype {dtype} not supported on the wire ({sorted(_WIRE_DTYPES)})"
        )
    return (
        {"shape": list(arr.shape), "dtype": dtype},
        np.ascontiguousarray(arr).tobytes(),
    )


def array_from_wire(header: dict, payload: bytes) -> np.ndarray:
    """Rebuild an array from a wire header + payload, untrusted-safe.

    The declared shape is validated against the decode-side allocation
    cap, the dtype must be on the allowlist, and the payload length must
    match the declared geometry exactly.  Unlike container shapes, wire
    shapes may be 0-D (an integer-index window squeezes to a scalar) or
    carry zero extents (an empty slice reads an empty window).
    """
    with decode_guard("service"):
        dtype_name = header["dtype"]
        if not isinstance(dtype_name, str) or dtype_name not in _WIRE_DTYPES:
            raise StreamFormatError(
                f"wire dtype {dtype_name!r} not in {sorted(_WIRE_DTYPES)}"
            )
        raw_shape = header["shape"]
        if not isinstance(raw_shape, list) or len(raw_shape) > 64:
            raise StreamFormatError(f"bad wire shape {raw_shape!r}")
        shape = tuple(int(s) for s in raw_shape)
        if any(n < 0 for n in shape):
            raise StreamFormatError(f"bad wire shape {shape}")
        # Arbitrary-precision product: np.prod(..., dtype=int64) wraps
        # silently for huge extents, which would bypass the cap check.
        npoints = math.prod(shape)
        if npoints > MAX_DECODE_POINTS:
            raise AllocationLimitError(
                f"wire array declares shape {shape} ({npoints} points), "
                f"beyond the {MAX_DECODE_POINTS}-point decode cap"
            )
        dtype = np.dtype(dtype_name)
        want = npoints * dtype.itemsize
        if len(payload) != want:
            raise StreamFormatError(
                f"wire array declares {want} bytes ({shape} {dtype_name}) "
                f"but carries {len(payload)}"
            )
        return np.frombuffer(payload, dtype=dtype).reshape(shape).copy()
