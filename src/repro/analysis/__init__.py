"""Evaluation harness: RD sweeps, q-balance sweeps, timing, scaling,
outlier studies, and the Table II field grid."""

from .fields import TABLE_II, TableIIEntry, load_entry
from .outliers import (
    OutlierCodingComparison,
    OutlierMap,
    clark_evans_ratio,
    compare_outlier_coding,
    outlier_map,
)
from .rd import RdPoint, rd_point, rd_sweep
from .report import banner, format_series, format_table
from .scorecard import Scorecard, ScorecardCell, format_scorecard, run_scorecard
from .scaling import (
    ScalingStudy,
    lpt_makespan,
    measure_chunk_times,
    scaling_study,
    simulated_speedups,
)
from .spectra import SpectralFidelity, radial_power_spectrum, spectral_fidelity
from .subbands import SubbandProfile, compaction_curve, subband_profile
from .sweep import DEFAULT_Q_FACTORS, QSweepPoint, q_sweep
from .timing import StageBreakdown, runtime_point, time_breakdown

__all__ = [
    "TABLE_II",
    "TableIIEntry",
    "load_entry",
    "RdPoint",
    "rd_point",
    "rd_sweep",
    "QSweepPoint",
    "q_sweep",
    "DEFAULT_Q_FACTORS",
    "StageBreakdown",
    "time_breakdown",
    "runtime_point",
    "ScalingStudy",
    "scaling_study",
    "measure_chunk_times",
    "simulated_speedups",
    "lpt_makespan",
    "OutlierMap",
    "outlier_map",
    "clark_evans_ratio",
    "OutlierCodingComparison",
    "compare_outlier_coding",
    "banner",
    "SpectralFidelity",
    "radial_power_spectrum",
    "spectral_fidelity",
    "SubbandProfile",
    "subband_profile",
    "compaction_curve",
    "format_series",
    "format_table",
    "Scorecard",
    "ScorecardCell",
    "run_scorecard",
    "format_scorecard",
]
