"""Outlier-specific analyses: Fig. 1 (spatial randomness) and Fig. 11
(SPERR vs SZ outlier coding cost).

Fig. 1 argues that outlier positions carry little spatial correlation,
justifying 1-D linearization (Sec. IV-C).  We quantify that with the
Clark-Evans nearest-neighbour ratio: for complete spatial randomness
(CSR) the observed mean nearest-neighbour distance over the expected
CSR distance is ~1.0; clustered patterns fall well below 1.

Fig. 11 intercepts SPERR's outlier list and feeds the identical list to
both coders: SPERR's set-partitioning coder and the SZ scheme (quantized
correction values for *every* point, Huffman + lossless — reproduced by
:func:`repro.compressors.szlike.codec.encode_bins`, our QCAT
``compressQuantBins`` equivalent).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..compressors.szlike import codec as sz_codec
from ..core.modes import PweMode
from ..core.pipeline import compress_chunk
from ..errors import InvalidArgumentError
from ..outlier import encode_outliers, locate_outliers
from ..speck import decode_coefficients
from ..wavelets import WaveletPlan
from ..wavelets import inverse as dwt_inverse
from ..bitstream import HEADER_SIZE, ChunkParams

__all__ = [
    "OutlierMap",
    "outlier_map",
    "clark_evans_ratio",
    "OutlierCodingComparison",
    "compare_outlier_coding",
]


@dataclass(frozen=True)
class OutlierMap:
    """Outlier positions of one compression run (Fig. 1 raw material)."""

    shape: tuple[int, ...]
    positions: np.ndarray  # flat indices
    q_factor: float
    tolerance: float

    @property
    def fraction(self) -> float:
        return self.positions.size / float(np.prod(self.shape))

    def mask(self) -> np.ndarray:
        """Boolean outlier-presence array in the original shape."""
        m = np.zeros(int(np.prod(self.shape)), dtype=bool)
        m[self.positions] = True
        return m.reshape(self.shape)


def _intercept_outliers(
    data: np.ndarray, tolerance: float, q_factor: float
) -> tuple[np.ndarray, np.ndarray]:
    """Run the SPERR pipeline up to outlier location; return (pos, corr)."""
    stream, report = compress_chunk(data, PweMode(tolerance, q_factor=q_factor))
    params = ChunkParams.unpack(stream[HEADER_SIZE:])
    speck_stream = stream[
        HEADER_SIZE + ChunkParams.SIZE : HEADER_SIZE + ChunkParams.SIZE + len(stream)
    ][: report.speck_nbits // 8 + 1]
    coeffs = decode_coefficients(
        speck_stream, data.shape, params.q, nbits=params.speck_nbits
    )
    plan = WaveletPlan.create(data.shape, wavelet=params.wavelet, levels=params.levels)
    recon = dwt_inverse(coeffs, plan)
    return locate_outliers(data, recon, tolerance)


def outlier_map(data: np.ndarray, idx: int, q_factor: float) -> OutlierMap:
    """Outlier positions for one (field, idx, q) setting."""
    data = np.asarray(data, dtype=np.float64)
    rng = float(data.max() - data.min())
    tolerance = rng / float(2**idx)
    positions, _ = _intercept_outliers(data, tolerance, q_factor)
    return OutlierMap(
        shape=data.shape, positions=positions, q_factor=q_factor, tolerance=tolerance
    )


def clark_evans_ratio(positions: np.ndarray, shape: tuple[int, ...]) -> float:
    """Clark-Evans nearest-neighbour ratio (2-D): ~1.0 under CSR.

    Uses a KD-tree over the outlier coordinates; the CSR expectation for
    density rho is ``1 / (2 sqrt(rho))``.
    """
    if len(shape) != 2:
        raise InvalidArgumentError("clark_evans_ratio expects a 2-D point pattern")
    if positions.size < 2:
        raise InvalidArgumentError("need at least two points")
    from scipy.spatial import cKDTree

    coords = np.stack(np.unravel_index(positions, shape), axis=1).astype(np.float64)
    tree = cKDTree(coords)
    dists, _ = tree.query(coords, k=2)
    observed = float(dists[:, 1].mean())
    rho = positions.size / float(np.prod(shape))
    expected = 1.0 / (2.0 * np.sqrt(rho))
    return observed / expected


@dataclass(frozen=True)
class OutlierCodingComparison:
    """Fig. 11: bits per outlier for both coders on the same outlier list."""

    abbrev: str
    n_outliers: int
    sperr_bits_per_outlier: float
    sz_bits_per_outlier: float


def compare_outlier_coding(
    data: np.ndarray, idx: int, abbrev: str = "", q_factor: float = 1.5
) -> OutlierCodingComparison:
    """Intercept SPERR's outlier list and code it with both schemes."""
    data = np.asarray(data, dtype=np.float64)
    rng = float(data.max() - data.min())
    tolerance = rng / float(2**idx)
    positions, corrections = _intercept_outliers(data, tolerance, q_factor)
    n = positions.size
    if n == 0:
        return OutlierCodingComparison(abbrev, 0, 0.0, 0.0)

    enc = encode_outliers(positions, corrections, data.size, tolerance)

    # SZ scheme: a quantization bin for EVERY point (inliers are bin 0),
    # Huffman + ZSTD-substitute; positions are implicit.  Paper Sec. VI-E.
    dense = np.zeros(data.size, dtype=np.float64)
    dense[positions] = corrections
    codes, escape = sz_codec.quantize_residuals(dense, tolerance)
    sz_payload = sz_codec.encode_bins(codes, escape)
    return OutlierCodingComparison(
        abbrev=abbrev,
        n_outliers=n,
        sperr_bits_per_outlier=enc.nbits / n,
        sz_bits_per_outlier=8.0 * len(sz_payload) / n,
    )
