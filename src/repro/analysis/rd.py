"""Rate-distortion sweep driver (Fig. 8 and Fig. 9 machinery).

Runs a compressor across tolerance levels (``idx`` labels) and collects
``(bpp, PSNR, accuracy gain, max PWE)`` per level — one point of a
rate-distortion curve per idx, matching the paper's methodology
("We increment idx from zero to the point where t is approaching machine
epsilon", Sec. VI-C).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..compressors.base import Compressor, PsnrMode, psnr_target_for_idx
from ..core.modes import PweMode
from ..errors import ReproError
from ..metrics import accuracy_gain, max_pwe, psnr

__all__ = ["RdPoint", "rd_point", "rd_sweep"]


@dataclass(frozen=True)
class RdPoint:
    """One rate-distortion measurement."""

    compressor: str
    idx: int
    tolerance: float
    bpp: float
    psnr_db: float
    gain: float
    max_err: float
    compress_seconds: float
    decompress_seconds: float
    satisfied: bool  # PWE tolerance respected (always True for PSNR modes)


def rd_point(
    compressor: Compressor, data: np.ndarray, idx: int
) -> RdPoint:
    """Compress/decompress one field at one idx level and measure."""
    rng = float(data.max() - data.min())
    tolerance = rng / float(2**idx)
    if isinstance(compressor.supported_modes, tuple) and PsnrMode in compressor.supported_modes:
        mode = PsnrMode(psnr_target_for_idx(max(1, idx)))
    else:
        mode = PweMode(tolerance)
    t0 = time.perf_counter()
    payload = compressor.compress(data, mode)
    t1 = time.perf_counter()
    recon = compressor.decompress(payload)
    t2 = time.perf_counter()
    err = max_pwe(data, recon)
    bpp = 8.0 * len(payload) / data.size
    return RdPoint(
        compressor=compressor.name,
        idx=idx,
        tolerance=tolerance,
        bpp=bpp,
        psnr_db=psnr(data, recon),
        gain=accuracy_gain(data, recon, bpp),
        max_err=err,
        compress_seconds=t1 - t0,
        decompress_seconds=t2 - t1,
        satisfied=err <= tolerance or isinstance(mode, PsnrMode),
    )


def rd_sweep(
    compressor: Compressor,
    data: np.ndarray,
    idx_values: list[int],
    *,
    skip_errors: bool = True,
) -> list[RdPoint]:
    """Sweep idx levels; failed levels are skipped (the paper terminates
    offending runs, e.g. TTHRESH at tight tolerances) unless
    ``skip_errors=False``."""
    points: list[RdPoint] = []
    for idx in idx_values:
        try:
            points.append(rd_point(compressor, data, idx))
        except ReproError:
            if not skip_errors:
                raise
    return points
