"""Strong-scaling study (Fig. 7) on the chunk-parallel executor.

The paper measures OpenMP speedups on a 128-core node.  This container
exposes a single core, so — per the documented substitution in DESIGN.md
— the speedup curve is *modelled* from measured per-chunk serial times:

* each chunk's compression time is measured individually (serial);
* a P-worker schedule is simulated with longest-processing-time-first
  assignment (what a work-stealing OpenMP loop approximates);
* speedup(P) = serial_total / (makespan(P) + serial_overhead).

This reproduces exactly the phenomenology of Fig. 7: near-linear scaling
while chunks >> workers, a bend as the chunk count stops dividing
evenly, and a plateau at the chunk-count limit that the paper's
Sec. III-D concedes.  A real thread-pool measurement is also available
for machines with more cores.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass

import numpy as np

from ..core.chunking import plan_chunks, split
from ..core.modes import PweMode
from ..core.pipeline import compress_chunk
from ..errors import InvalidArgumentError

__all__ = ["ScalingStudy", "measure_chunk_times", "simulated_speedups", "lpt_makespan"]


@dataclass(frozen=True)
class ScalingStudy:
    """Measured per-chunk times plus the modelled speedup curve."""

    idx: int
    chunk_times: tuple[float, ...]
    overhead_seconds: float
    workers: tuple[int, ...]
    speedups: tuple[float, ...]


def measure_chunk_times(
    data: np.ndarray,
    idx: int,
    chunk_shape: int | tuple[int, ...],
) -> tuple[list[float], float]:
    """Per-chunk serial compression times and the serial setup overhead."""
    data = np.asarray(data, dtype=np.float64)
    rng = float(data.max() - data.min())
    mode = PweMode(rng / float(2**idx))
    t0 = time.perf_counter()
    chunks = plan_chunks(data.shape, chunk_shape)
    parts = split(data, chunks)
    overhead = time.perf_counter() - t0
    times = []
    for part in parts:
        t1 = time.perf_counter()
        compress_chunk(part, mode)
        times.append(time.perf_counter() - t1)
    return times, overhead


def lpt_makespan(times: list[float], workers: int) -> float:
    """Makespan of a longest-processing-time-first schedule on P workers."""
    if workers < 1:
        raise InvalidArgumentError("workers must be positive")
    loads = [0.0] * min(workers, max(1, len(times)))
    heap = list(loads)
    heapq.heapify(heap)
    for t in sorted(times, reverse=True):
        least = heapq.heappop(heap)
        heapq.heappush(heap, least + t)
    return max(heap) if heap else 0.0


def simulated_speedups(
    times: list[float],
    overhead: float,
    workers: list[int],
) -> list[float]:
    """Amdahl-style speedup model from measured chunk times."""
    serial = sum(times) + overhead
    out = []
    for p in workers:
        makespan = lpt_makespan(times, p)
        out.append(serial / (makespan + overhead) if makespan + overhead > 0 else 1.0)
    return out


def scaling_study(
    data: np.ndarray,
    idx: int,
    chunk_shape: int | tuple[int, ...],
    workers: list[int],
) -> ScalingStudy:
    """Full Fig. 7 measurement for one tolerance level."""
    times, overhead = measure_chunk_times(data, idx, chunk_shape)
    return ScalingStudy(
        idx=idx,
        chunk_times=tuple(times),
        overhead_seconds=overhead,
        workers=tuple(workers),
        speedups=tuple(simulated_speedups(times, overhead, workers)),
    )
