"""Plain-text table and series formatting for the benchmark harness.

The benches print the same rows/series the paper's figures plot; these
helpers keep that output aligned and uniform (pure ASCII, no plotting
dependencies).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series", "banner"]


def banner(title: str) -> str:
    """Section header used by every bench."""
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width ASCII table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> str:
    """One plotted series as `name: (x, y) (x, y) ...`."""
    pairs = " ".join(f"({_fmt(x)}, {_fmt(y)})" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"
