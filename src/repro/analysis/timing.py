"""Timing studies: the Fig. 6 stage breakdown and Fig. 10 runtime grid."""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..compressors.base import Compressor, PsnrMode, psnr_target_for_idx
from ..core.modes import PweMode
from ..core.pipeline import compress_chunk

__all__ = ["StageBreakdown", "time_breakdown", "runtime_point"]


@dataclass(frozen=True)
class StageBreakdown:
    """Serial per-stage compression time for one tolerance level (Fig. 6)."""

    idx: int
    transform: float
    speck: float
    locate: float
    outlier_code: float

    @property
    def total(self) -> float:
        return self.transform + self.speck + self.locate + self.outlier_code


def time_breakdown(data: np.ndarray, idx_values: list[int]) -> list[StageBreakdown]:
    """Measure the four pipeline stages at each tolerance level."""
    data = np.asarray(data, dtype=np.float64)
    rng = float(data.max() - data.min())
    out: list[StageBreakdown] = []
    for idx in idx_values:
        _, report = compress_chunk(data, PweMode(rng / float(2**idx)))
        t = report.timings
        out.append(
            StageBreakdown(
                idx=idx,
                transform=t["transform"],
                speck=t["speck"],
                locate=t["locate"],
                outlier_code=t["outlier_code"],
            )
        )
    return out


def runtime_point(
    compressor: Compressor, data: np.ndarray, idx: int
) -> float:
    """Wall-clock compression time for one (compressor, field, idx) cell
    of the Fig. 10 grid."""
    rng = float(data.max() - data.min())
    if PsnrMode in compressor.supported_modes:
        mode = PsnrMode(psnr_target_for_idx(max(1, idx)))
    else:
        mode = PweMode(rng / float(2**idx))
    t0 = time.perf_counter()
    compressor.compress(data, mode)
    return time.perf_counter() - t0
