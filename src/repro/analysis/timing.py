"""Timing studies: the Fig. 6 stage breakdown and Fig. 10 runtime grid."""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .. import obs
from ..compressors.base import Compressor, PsnrMode, psnr_target_for_idx
from ..core.modes import PweMode
from ..core.pipeline import compress_chunk

__all__ = [
    "StageBreakdown",
    "time_breakdown",
    "runtime_point",
    "STAGE_SPANS",
    "STAGE_SPANS_DECODE",
]

#: Fig. 6 stage -> the obs span names whose wall time it aggregates.
#: ``locate`` includes the PWE-path inverse transform because the paper
#: counts reconstruction as part of outlier detection.
STAGE_SPANS: dict[str, tuple[str, ...]] = {
    "transform": ("wavelet.forward",),
    "speck": ("speck.encode",),
    "locate": ("outlier.locate", "wavelet.inverse"),
    "outlier_code": ("outlier.encode",),
}

#: Decompress-side stage -> span names, the mirror of :data:`STAGE_SPANS`
#: for traced decode passes (``wavelet.inverse`` only runs once on that
#: path, so no disambiguation against ``locate`` is needed).
STAGE_SPANS_DECODE: dict[str, tuple[str, ...]] = {
    "lossless": ("lossless.decode",),
    "speck": ("speck.decode",),
    "transform": ("wavelet.inverse",),
    "outlier_apply": ("outlier.apply",),
}


@dataclass(frozen=True)
class StageBreakdown:
    """Serial per-stage compression time for one tolerance level (Fig. 6)."""

    idx: int
    transform: float
    speck: float
    locate: float
    outlier_code: float

    @property
    def total(self) -> float:
        return self.transform + self.speck + self.locate + self.outlier_code


def time_breakdown(
    data: np.ndarray, idx_values: list[int], *, repeats: int = 3
) -> list[StageBreakdown]:
    """Measure the four pipeline stages at each tolerance level.

    Each level runs ``repeats`` serial :func:`compress_chunk` passes
    under an :class:`~repro.obs.trace` and keeps the per-stage minimum
    (the classic noise-rejecting estimator), aggregating span wall time
    per :data:`STAGE_SPANS` — the same collector the CLI's ``--trace``
    and the regression benchmarks consume.
    """
    data = np.asarray(data, dtype=np.float64)
    rng = float(data.max() - data.min())
    if idx_values:
        # Untraced warm-up so the first measured level does not absorb
        # plan-cache misses and lazy numpy initialisation.
        compress_chunk(data, PweMode(rng / float(2 ** idx_values[0])))
    out: list[StageBreakdown] = []
    for idx in idx_values:
        best: dict[str, float] = {}
        for _ in range(max(1, repeats)):
            with obs.trace("fig6.breakdown") as tracer:
                compress_chunk(data, PweMode(rng / float(2**idx)))
            totals = tracer.report().stage_totals()
            for stage, names in STAGE_SPANS.items():
                wall = sum(totals.get(name, 0.0) for name in names)
                best[stage] = min(best.get(stage, wall), wall)
        out.append(StageBreakdown(idx=idx, **best))
    return out


def runtime_point(
    compressor: Compressor, data: np.ndarray, idx: int
) -> float:
    """Wall-clock compression time for one (compressor, field, idx) cell
    of the Fig. 10 grid."""
    rng = float(data.max() - data.min())
    if PsnrMode in compressor.supported_modes:
        mode = PsnrMode(psnr_target_for_idx(max(1, idx)))
    else:
        mode = PweMode(rng / float(2**idx))
    t0 = time.perf_counter()
    compressor.compress(data, mode)
    return time.perf_counter() - t0
