"""Codec × scenario robustness matrix.

Runs every codec of the comparison study over the robustness scenarios
(:mod:`repro.datasets.scenarios`) and scores each cell: compression
ratio, max point-wise error and PSNR on the *valid* samples, wall time,
and a pass/fail verdict.  The verdict is the robustness envelope in
one bit per cell:

* the roundtrip must not raise;
* the output dtype must equal the input dtype bit-for-bit;
* NaN/±Inf positions (and their kinds) must be restored exactly;
* for PWE-mode codecs, ``|x - x'| <= tolerance`` on every valid sample.

Baselines run behind :class:`~repro.compressors.masked.MaskedCompressor`
(their native formats predate the mask work); SPERR's container and the
szx fast tier handle masks natively.  The matrix also carries an
``adaptive`` row — the chunked core pipeline under per-chunk codec
dispatch — whose cells report the chunk-routing counts read back from
the container's chunk table.  4-D scenarios compress frame-by-frame
along the leading axis, matching the paper's time-series treatment.

``run_scorecard(smoke_only=True)`` is the tier-1 subset used by the
regression gate; the full matrix backs the opt-in CI sweep and the
``sperr scorecard --full`` CLI command.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field

import numpy as np

from ..compressors import ALL_COMPRESSORS, MaskedCompressor
from ..compressors.base import psnr_target_for_idx
from ..core.modes import PsnrMode, PweMode
from ..datasets.scenarios import SCENARIOS, Scenario
from ..errors import InvalidArgumentError
from ..metrics import max_pwe, psnr
from .report import format_table

__all__ = ["ScorecardCell", "Scorecard", "run_scorecard", "format_scorecard"]

#: PWE tolerance as a fraction of the valid-sample data range.
_TOL_FRACTION = 2.0**-10

#: Fallback absolute tolerance for zero-range (constant) scenarios.
_TOL_FLOOR = 1e-6

#: PSNR target for the PSNR-only codec (the paper's idx-16 operating point).
_PSNR_IDX = 16


@dataclass(frozen=True)
class ScorecardCell:
    """One codec × scenario result."""

    codec: str
    scenario: str
    passed: bool
    ratio: float | None = None
    max_pwe: float | None = None
    psnr_db: float | None = None
    seconds: float | None = None
    error: str | None = None
    notes: tuple[str, ...] = ()
    #: Per-chunk codec routing counts (adaptive rows only), e.g.
    #: ``{"sperr": 4, "szx": 4}``.
    routing: dict | None = None


@dataclass
class Scorecard:
    """The full matrix plus summary accounting."""

    cells: list[ScorecardCell] = field(default_factory=list)

    @property
    def n_failed(self) -> int:
        """Number of failing cells."""
        return sum(not c.passed for c in self.cells)

    def failures(self) -> list[ScorecardCell]:
        """The failing cells, for gate output."""
        return [c for c in self.cells if not c.passed]

    def to_dict(self) -> dict:
        """JSON-ready form (the CI artifact)."""
        return {
            "n_cells": len(self.cells),
            "n_failed": self.n_failed,
            "cells": [asdict(c) for c in self.cells],
        }


def _tolerance(data: np.ndarray) -> float:
    """PWE tolerance for a scenario: range/2^10 over the valid samples."""
    valid = data[np.isfinite(data)]
    if valid.size == 0:
        return _TOL_FLOOR
    rng = float(valid.max() - valid.min())
    return max(rng * _TOL_FRACTION, _TOL_FLOOR)


def _roundtrip(codec, data: np.ndarray, mode) -> np.ndarray:
    """Compress + decompress, per-frame along axis 0 for 4-D input."""
    if data.ndim <= 3:
        return codec.decompress(codec.compress(data, mode))
    frames = [
        codec.decompress(codec.compress(frame, mode)) for frame in data
    ]
    return np.stack(frames)


def _check_cell(
    data: np.ndarray, out: np.ndarray, mode, tol: float
) -> tuple[bool, str | None, float | None, float | None]:
    """Verdict plus valid-sample metrics for one finished roundtrip."""
    if out.dtype != data.dtype:
        return False, f"dtype {out.dtype} != input {data.dtype}", None, None
    if out.shape != data.shape:
        return False, f"shape {out.shape} != input {data.shape}", None, None
    for kind, pred in (
        ("NaN", np.isnan),
        ("+Inf", np.isposinf),
        ("-Inf", np.isneginf),
    ):
        if not np.array_equal(pred(data), pred(out)):
            return False, f"{kind} positions not restored exactly", None, None
    valid = np.isfinite(data)
    if not valid.any():
        return True, None, None, None
    err = max_pwe(data, out, mask=valid)
    quality = psnr(data, out, mask=valid)
    if isinstance(mode, PweMode) and err > tol * (1.0 + 1e-9):
        return False, f"PWE {err:.3e} exceeds tolerance {tol:.3e}", err, quality
    return True, None, err, quality


class _AdaptivePipeline:
    """The chunked core pipeline under ``codec="adaptive"`` as a matrix
    row.

    Unlike the registry codecs this is the full container path — masks,
    dtype preservation, and per-chunk dispatch are native — so it is
    never mask-wrapped.  Routing decisions are read back from the
    container chunk table and accumulated across frames for the
    scorecard's ``routing`` column.
    """

    name = "adaptive"
    _CHUNK = 16

    def __init__(self) -> None:
        self.routing: dict[str, int] = {}

    def compress(self, data: np.ndarray, mode) -> bytes:
        from ..core import compress as core_compress
        from ..core.adaptive import CODEC_NAMES
        from ..core.container import parse_container

        payload = core_compress(
            data, mode, chunk_shape=self._CHUNK, codec="adaptive"
        ).payload
        parsed = parse_container(payload)
        tags = parsed.codec_tags or (0,) * len(parsed.streams)
        for tag in tags:
            key = CODEC_NAMES[tag]
            self.routing[key] = self.routing.get(key, 0) + 1
        return payload

    def decompress(self, payload: bytes) -> np.ndarray:
        from ..core import decompress as core_decompress

        return core_decompress(payload)


def _make_codec(name: str):
    """Instantiate one matrix codec, mask-wrapped unless self-masking.

    SPERR's container and the szx tier handle NaN/Inf masks and dtype
    natively; ``adaptive`` is the chunked core pipeline, not a registry
    codec at all.  Everything else predates the mask work and leans on
    :class:`MaskedCompressor`.
    """
    if name == "adaptive":
        return _AdaptivePipeline()
    codec = ALL_COMPRESSORS[name]()
    if name in ("sperr", "szx-like"):
        return codec
    return MaskedCompressor(codec)


def run_scorecard(
    *,
    smoke_only: bool = True,
    codecs: list[str] | None = None,
    scenarios: list[Scenario] | None = None,
) -> Scorecard:
    """Run the matrix and return the populated :class:`Scorecard`."""
    if scenarios is None:
        scenarios = [
            s for s in SCENARIOS.values() if s.smoke or not smoke_only
        ]
    known = set(ALL_COMPRESSORS) | {"adaptive"}
    names = codecs if codecs is not None else [*ALL_COMPRESSORS, "adaptive"]
    unknown = [n for n in names if n not in known]
    if unknown:
        raise InvalidArgumentError(
            f"unknown codec(s) {', '.join(unknown)}; "
            f"choose from {', '.join(sorted(known))}"
        )
    card = Scorecard()
    for scenario in scenarios:
        data = scenario.build()
        tol = _tolerance(data)
        for name in names:
            codec = _make_codec(name)
            mode = (
                PsnrMode(psnr_target_for_idx(_PSNR_IDX))
                if name == "tthresh-like"
                else PweMode(tol)
            )
            start = time.perf_counter()
            try:
                payload_bytes = 0
                if data.ndim <= 3:
                    payload = codec.compress(data, mode)
                    payload_bytes = len(payload)
                    out = codec.decompress(payload)
                else:
                    outs = []
                    for frame in data:
                        payload = codec.compress(frame, mode)
                        payload_bytes += len(payload)
                        outs.append(codec.decompress(payload))
                    out = np.stack(outs)
            except Exception as exc:  # noqa: BLE001 - the verdict boundary
                card.cells.append(
                    ScorecardCell(
                        codec=name,
                        scenario=scenario.name,
                        passed=False,
                        seconds=time.perf_counter() - start,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            elapsed = time.perf_counter() - start
            passed, error, err, quality = _check_cell(data, out, mode, tol)
            card.cells.append(
                ScorecardCell(
                    codec=name,
                    scenario=scenario.name,
                    passed=passed,
                    ratio=data.nbytes / payload_bytes if payload_bytes else None,
                    max_pwe=err,
                    psnr_db=quality,
                    seconds=elapsed,
                    error=error,
                    notes=tuple(
                        str(n) for n in getattr(codec, "last_notes", ())
                    ),
                    routing=dict(getattr(codec, "routing", None) or {}) or None,
                )
            )
    return card


def format_scorecard(card: Scorecard) -> str:
    """ASCII matrix table plus a one-line verdict."""
    rows = []
    for c in card.cells:
        rows.append(
            [
                c.scenario,
                c.codec,
                "pass" if c.passed else "FAIL",
                "-" if c.ratio is None else f"{c.ratio:.1f}",
                "-" if c.max_pwe is None else f"{c.max_pwe:.2e}",
                "-" if c.psnr_db is None else f"{c.psnr_db:.1f}",
                "-" if c.seconds is None else f"{c.seconds:.2f}",
                "-"
                if not c.routing
                else " ".join(f"{k}:{v}" for k, v in sorted(c.routing.items())),
                c.error or "",
            ]
        )
    table = format_table(
        [
            "scenario",
            "codec",
            "verdict",
            "ratio",
            "max_pwe",
            "psnr",
            "sec",
            "routing",
            "error",
        ],
        rows,
    )
    verdict = (
        f"{len(card.cells)} cells, {card.n_failed} failed"
        if card.n_failed
        else f"{len(card.cells)} cells, all passing"
    )
    return f"{table}\n{verdict}"
