"""Power-spectrum fidelity analysis.

The paper closes its evaluation noting that "evaluations using more
domain-specific metrics ... are likely necessary to determine SPERR's
applicability in a particular use case" (Sec. VI-C).  For the turbulence
and cosmology communities the canonical such metric is the radial power
spectrum: lossy compression must not bend the inertial range or clip the
resolved scales.  These helpers measure exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidArgumentError
from ..datasets.spectral import radial_wavenumber

__all__ = ["radial_power_spectrum", "SpectralFidelity", "spectral_fidelity"]


def radial_power_spectrum(
    data: np.ndarray, nbins: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Isotropic (shell-averaged) power spectrum.

    Returns ``(k_centers, power)`` where ``power[i]`` is the mean
    squared FFT magnitude over the ``i``-th wavenumber shell.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.size == 0:
        raise InvalidArgumentError("empty array has no spectrum")
    if nbins is None:
        nbins = max(4, min(data.shape) // 2)
    spectrum = np.abs(np.fft.fftn(data - data.mean())) ** 2 / data.size
    k = radial_wavenumber(data.shape)
    kmax = float(min(data.shape)) / 2.0
    edges = np.linspace(0.5, kmax, nbins + 1)
    which = np.digitize(k.ravel(), edges) - 1
    power = np.zeros(nbins)
    counts = np.zeros(nbins)
    valid = (which >= 0) & (which < nbins)
    np.add.at(power, which[valid], spectrum.ravel()[valid])
    np.add.at(counts, which[valid], 1.0)
    counts[counts == 0] = 1.0
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, power / counts


@dataclass(frozen=True)
class SpectralFidelity:
    """Per-shell comparison of original and reconstructed spectra."""

    k: np.ndarray
    power_original: np.ndarray
    power_reconstruction: np.ndarray

    @property
    def ratio(self) -> np.ndarray:
        """Reconstructed over original shell power (1.0 = preserved)."""
        denom = np.where(self.power_original > 0, self.power_original, 1.0)
        return self.power_reconstruction / denom

    def resolved_fraction(self, rel_tol: float = 0.1) -> float:
        """Fraction of the wavenumber range whose shell power is
        preserved within ``rel_tol`` (contiguously from k = 0)."""
        ok = np.abs(self.ratio - 1.0) <= rel_tol
        for i, good in enumerate(ok):
            if not good:
                return i / ok.size
        return 1.0


def spectral_fidelity(
    original: np.ndarray, reconstruction: np.ndarray, nbins: int | None = None
) -> SpectralFidelity:
    """Compare shell-averaged spectra of an original and a reconstruction."""
    original = np.asarray(original, dtype=np.float64)
    reconstruction = np.asarray(reconstruction, dtype=np.float64)
    if original.shape != reconstruction.shape:
        raise InvalidArgumentError("shape mismatch")
    k, p_orig = radial_power_spectrum(original, nbins)
    _, p_rec = radial_power_spectrum(reconstruction, nbins)
    return SpectralFidelity(k=k, power_original=p_orig, power_reconstruction=p_rec)
