"""Table II: the field/tolerance grid used by Figs. 9, 10, and 11.

Abbreviations follow the paper exactly; each maps to a synthetic
stand-in field (see :mod:`repro.datasets.fields`) plus a tolerance label
``idx`` with ``t = Range / 2**idx``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets import get_field

__all__ = ["TableIIEntry", "TABLE_II", "load_entry"]


@dataclass(frozen=True)
class TableIIEntry:
    """One column of the Fig. 9-11 grids."""

    abbrev: str
    field: str
    idx: int


#: The paper's Table II grid (field abbreviation -> field + idx).
TABLE_II: tuple[TableIIEntry, ...] = (
    TableIIEntry("CH4-20", "s3d_ch4", 20),
    TableIIEntry("CH4-40", "s3d_ch4", 40),
    TableIIEntry("Temp-20", "s3d_temperature", 20),
    TableIIEntry("Temp-40", "s3d_temperature", 40),
    TableIIEntry("VX1-20", "s3d_velocity_x", 20),
    TableIIEntry("VX1-40", "s3d_velocity_x", 40),
    TableIIEntry("Press-20", "miranda_pressure", 20),
    TableIIEntry("Press-40", "miranda_pressure", 40),
    TableIIEntry("Visc-20", "miranda_viscosity", 20),
    TableIIEntry("Visc-40", "miranda_viscosity", 40),
    TableIIEntry("VX2-20", "miranda_velocity_x", 20),
    TableIIEntry("VX2-40", "miranda_velocity_x", 40),
    TableIIEntry("QMC-20", "qmcpack_orbitals", 20),
    TableIIEntry("Nyx-20", "nyx_dark_matter_density", 20),
    TableIIEntry("VX3-20", "nyx_velocity_x", 20),
)


def load_entry(
    entry: TableIIEntry, shape: tuple[int, ...] | None = None
) -> tuple[np.ndarray, float]:
    """Materialize a Table II entry; returns ``(field, tolerance)``."""
    data = get_field(entry.field, shape=shape)
    rng = float(data.max() - data.min())
    return data, rng / float(2**entry.idx)
