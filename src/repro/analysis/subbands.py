"""Wavelet subband statistics: the information-compaction evidence.

The paper's Sec. II premise: "most information is stored in a small
percentage of coefficients, whose information content is proportional
to their magnitude."  These helpers quantify that for any field —
per-decomposition-level energy shares and the coefficient-count /
energy concentration curve — and are used by tests to verify the
premise holds on the synthetic SDRBench stand-ins (it is *why* the
wavelet pipeline compresses them).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidArgumentError
from ..wavelets import WaveletPlan, forward

__all__ = ["SubbandProfile", "subband_profile", "compaction_curve"]


@dataclass(frozen=True)
class SubbandProfile:
    """Energy accounting of a multi-level decomposition.

    ``level_energy[l]`` is the energy of the detail shell produced at
    level ``l`` (level 0 = finest); the last entry is the final
    approximation box.
    """

    plan: WaveletPlan
    level_energy: tuple[float, ...]
    total_energy: float

    @property
    def approximation_share(self) -> float:
        """Fraction of total energy held by the coarsest approximation."""
        if self.total_energy == 0:
            return 1.0
        return self.level_energy[-1] / self.total_energy


def _box_mask(shape: tuple[int, ...], lengths: list[int]) -> np.ndarray:
    m = np.zeros(shape, dtype=bool)
    m[tuple(slice(0, n) for n in lengths)] = True
    return m


def subband_profile(data: np.ndarray, wavelet: str = "cdf97") -> SubbandProfile:
    """Decompose and attribute coefficient energy per level."""
    data = np.asarray(data, dtype=np.float64)
    if data.size == 0:
        raise InvalidArgumentError("empty array")
    coeffs, plan = forward(data, wavelet=wavelet)
    energy = coeffs**2

    lengths = list(data.shape)
    shells: list[float] = []
    prev_mask = np.ones(data.shape, dtype=bool)
    for level in range(plan.total_levels):
        nxt = [
            (lengths[ax] + 1) // 2 if level < plan.axis_levels[ax] else lengths[ax]
            for ax in range(data.ndim)
        ]
        inner = _box_mask(data.shape, nxt)
        shell = prev_mask & ~inner
        shells.append(float(energy[shell].sum()))
        prev_mask = inner
        lengths = nxt
    shells.append(float(energy[prev_mask].sum()))  # final approximation
    return SubbandProfile(
        plan=plan,
        level_energy=tuple(shells),
        total_energy=float(energy.sum()),
    )


def compaction_curve(
    data: np.ndarray, fractions: tuple[float, ...] = (0.001, 0.01, 0.05, 0.1),
    wavelet: str = "cdf97",
) -> dict[float, float]:
    """Energy captured by the largest-magnitude coefficient fractions.

    Returns ``{fraction_of_coefficients: fraction_of_energy}`` — the
    curve whose steepness is the "information compaction" the paper's
    Sec. II describes.
    """
    data = np.asarray(data, dtype=np.float64)
    coeffs, _ = forward(data, wavelet=wavelet)
    energy = np.sort((coeffs**2).ravel())[::-1]
    total = float(energy.sum())
    if total == 0:
        return {f: 1.0 for f in fractions}
    cumulative = np.cumsum(energy)
    out = {}
    for f in fractions:
        k = max(1, int(round(f * energy.size)))
        out[f] = float(cumulative[k - 1] / total)
    return out
