"""Quantization-step sweeps: the q/t balance studies of Figs. 2, 3, 4.

SPERR's total cost divides into wavelet-coefficient coding and outlier
coding; the split is controlled by ``q``, the coefficient quantization
step expressed in units of the tolerance ``t``.  These helpers compress
one field at a grid of ``q`` factors and record the full cost breakdown
per point, which the benches then shape into the paper's panels:

* Fig. 2 — BPP cost split (coefficients vs outliers) vs q;
* Fig. 3 top — Delta-BPP vs q (U-shaped curves, sweet spot 1.4t-1.8t);
* Fig. 3 bottom — Delta-PSNR vs q (monotonically decreasing);
* Fig. 4 — bits-per-outlier and outlier percentage vs q.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.modes import PweMode
from ..core.pipeline import compress_chunk, decompress_chunk
from ..metrics import psnr

__all__ = ["QSweepPoint", "q_sweep", "DEFAULT_Q_FACTORS"]

#: The paper's sweep range: q from t to 3t.
DEFAULT_Q_FACTORS = (1.0, 1.2, 1.4, 1.5, 1.6, 1.8, 2.0, 2.4, 3.0)


@dataclass(frozen=True)
class QSweepPoint:
    """Cost breakdown for one (field, tolerance, q) combination."""

    q_factor: float
    tolerance: float
    total_bpp: float
    coeff_bpp: float
    outlier_bpp: float
    n_outliers: int
    outlier_fraction: float
    bits_per_outlier: float
    psnr_db: float
    max_err: float


def q_sweep(
    data: np.ndarray,
    idx: int,
    q_factors: tuple[float, ...] = DEFAULT_Q_FACTORS,
) -> list[QSweepPoint]:
    """Sweep the coefficient quantization step at a fixed tolerance."""
    data = np.asarray(data, dtype=np.float64)
    rng = float(data.max() - data.min())
    tolerance = rng / float(2**idx)
    points: list[QSweepPoint] = []
    for qf in q_factors:
        stream, report = compress_chunk(data, PweMode(tolerance, q_factor=qf))
        recon = decompress_chunk(stream, rank=data.ndim)
        err = float(np.abs(recon - data).max())
        points.append(
            QSweepPoint(
                q_factor=qf,
                tolerance=tolerance,
                total_bpp=report.bpp,
                coeff_bpp=report.speck_bpp,
                outlier_bpp=report.outlier_bpp,
                n_outliers=report.n_outliers,
                outlier_fraction=report.outlier_fraction,
                bits_per_outlier=report.bits_per_outlier,
                psnr_db=psnr(data, recon),
                max_err=err,
            )
        )
    return points
