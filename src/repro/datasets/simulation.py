"""A miniature PDE solver for in-situ compression scenarios.

The paper's motivating data producers are long-running simulations whose
output bandwidth exceeds storage bandwidth (Sec. I).  This module
provides a small but honest stand-in: an explicit advection-diffusion
solver on a periodic grid, deterministic in its seed, cheap enough to
drive time-series tests and the in-situ example, and physical enough
that compression ratios evolve the way they do in practice (diffusion
smooths the field; ratios improve over time).
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidArgumentError
from .spectral import spectral_field

__all__ = ["AdvectionDiffusion"]


class AdvectionDiffusion:
    """Explicit advection-diffusion integrator on a periodic grid.

        du/dt = kappa * laplace(u) - c . grad(u)

    Discretized with central differences and forward Euler; the default
    parameters respect the stability bound ``dt <= h^2 / (2 d kappa)``.
    """

    def __init__(
        self,
        shape: tuple[int, ...],
        *,
        kappa: float = 0.05,
        velocity: tuple[float, ...] | None = None,
        dt: float = 0.2,
        seed: int = 0,
        init_slope: float = 2.0,
    ) -> None:
        if len(shape) not in (1, 2, 3):
            raise InvalidArgumentError("simulation supports 1-D to 3-D grids")
        if kappa < 0 or dt <= 0:
            raise InvalidArgumentError("kappa must be >= 0 and dt > 0")
        if velocity is None:
            velocity = tuple(0.1 for _ in shape)
        if len(velocity) != len(shape):
            raise InvalidArgumentError("velocity rank must match the grid rank")
        stability = 1.0 / (2.0 * len(shape) * kappa) if kappa > 0 else np.inf
        if dt > stability:
            raise InvalidArgumentError(
                f"dt={dt} violates the explicit stability bound {stability:.3g}"
            )
        self.shape = tuple(shape)
        self.kappa = float(kappa)
        self.velocity = tuple(float(v) for v in velocity)
        self.dt = float(dt)
        self.time = 0.0
        self.step_count = 0
        self.state = spectral_field(shape, slope=init_slope, seed=seed)

    def step(self, n: int = 1) -> np.ndarray:
        """Advance ``n`` steps; returns the current state (a view)."""
        if n < 0:
            raise InvalidArgumentError("cannot step backwards")
        u = self.state
        for _ in range(n):
            lap = sum(
                np.roll(u, +1, axis=ax) + np.roll(u, -1, axis=ax) - 2.0 * u
                for ax in range(u.ndim)
            )
            adv = sum(
                0.5 * c * (np.roll(u, 1, axis=ax) - np.roll(u, -1, axis=ax))
                for ax, c in enumerate(self.velocity)
            )
            u = u + self.dt * (self.kappa * lap + adv)
            self.step_count += 1
            self.time += self.dt
        self.state = u
        return self.state

    def set_state(self, state: np.ndarray) -> None:
        """Replace the field (e.g. restart from a decompressed checkpoint)."""
        state = np.asarray(state, dtype=np.float64)
        if state.shape != self.shape:
            raise InvalidArgumentError(
                f"state shape {state.shape} does not match grid {self.shape}"
            )
        self.state = state.copy()

    def total_mass(self) -> float:
        """Conserved under periodic advection-diffusion (a solver check)."""
        return float(self.state.sum())
