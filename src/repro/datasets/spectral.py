"""Spectrally shaped Gaussian random fields.

The rate-distortion behaviour of transform coders is governed primarily
by the spectral decay of the input: steep spectra (smooth fields) favour
wavelets, shallow spectra approach incompressible noise.  These helpers
synthesize fields with controlled power-law spectra ``P(k) ~ k^-slope``,
which is how the SDRBench stand-ins (see :mod:`repro.datasets.fields`)
match the *character* of the paper's simulation outputs without the
actual multi-terabyte data.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidArgumentError

__all__ = ["spectral_field", "radial_wavenumber"]


def radial_wavenumber(shape: tuple[int, ...]) -> np.ndarray:
    """Isotropic wavenumber magnitude grid for an FFT of ``shape``."""
    axes = [np.fft.fftfreq(n) * n for n in shape]
    mesh = np.meshgrid(*axes, indexing="ij")
    return np.sqrt(sum(m**2 for m in mesh))


def spectral_field(
    shape: tuple[int, ...],
    slope: float,
    seed: int | np.random.Generator = 0,
    *,
    kmin: float = 1.0,
) -> np.ndarray:
    """Gaussian random field with isotropic power spectrum ``k**-slope``.

    Returned field is normalized to zero mean, unit standard deviation.
    Larger ``slope`` means steeper spectral decay, i.e. a smoother field:
    ~5/3 resembles turbulent velocity (Kolmogorov), >3 resembles smooth
    thermodynamic fields, 0 is white noise.
    """
    if any(n < 2 for n in shape):
        raise InvalidArgumentError(f"every axis must have >= 2 samples, got {shape}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    white = rng.standard_normal(shape)
    spectrum = np.fft.fftn(white)
    k = radial_wavenumber(shape)
    k[tuple(0 for _ in shape)] = kmin  # avoid division by zero at DC
    amplitude = np.maximum(k, kmin) ** (-slope / 2.0)
    field = np.fft.ifftn(spectrum * amplitude).real
    field -= field.mean()
    std = field.std()
    if std > 0:
        field /= std
    return field
