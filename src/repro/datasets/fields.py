"""Synthetic stand-ins for the paper's SDRBench test fields (Sec. VI-B).

The paper evaluates on four open simulations — Miranda (hydrodynamics
turbulence), S3D (combustion), Nyx (cosmology), QMCPACK (quantum Monte
Carlo orbitals) — at volume sizes far beyond this container.  Each
generator below reproduces the statistical character that drives
compressor behaviour for the corresponding field family:

* Miranda fields: smooth turbulence with steep spectra; Viscosity adds
  sharp mixing-layer interfaces (material boundaries), Density adds
  large-scale stratification.
* S3D fields: thin curved reaction fronts (steep sigmoids) over smooth
  backgrounds, with high dynamic range in species concentrations.
* Nyx Dark Matter Density: log-normal, extremely clumpy, heavy-tailed —
  the classic hard case for transform coders.
* QMCPACK: stacks of smooth oscillatory orbital volumes with Gaussian
  envelopes.

All generators are deterministic in ``seed`` and return float64 arrays
normalized to reasonable physical-looking ranges.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import InvalidArgumentError
from .spectral import spectral_field

__all__ = [
    "FIELDS",
    "get_field",
    "miranda_pressure",
    "miranda_viscosity",
    "miranda_density",
    "miranda_velocity_x",
    "s3d_ch4",
    "s3d_temperature",
    "s3d_velocity_x",
    "nyx_dark_matter_density",
    "nyx_velocity_x",
    "qmcpack_orbitals",
]

_DEFAULT_SHAPE = (64, 64, 64)


def _grid(shape: tuple[int, ...]) -> list[np.ndarray]:
    axes = [np.linspace(0.0, 1.0, n) for n in shape]
    return list(np.meshgrid(*axes, indexing="ij"))


def miranda_pressure(shape: tuple[int, ...] = _DEFAULT_SHAPE, seed: int = 0) -> np.ndarray:
    """Smooth pressure field: steep spectrum plus a large-scale gradient."""
    rng = np.random.default_rng(seed)
    base = spectral_field(shape, slope=4.0, seed=rng)
    g = _grid(shape)
    trend = 2.0 * g[0] + 0.5 * np.sin(2 * np.pi * g[-1])
    return 1.0e6 * (1.0 + 0.05 * base + 0.02 * trend)


def miranda_viscosity(shape: tuple[int, ...] = _DEFAULT_SHAPE, seed: int = 1) -> np.ndarray:
    """Turbulent mixing layer: two materials separated by a wrinkled interface."""
    rng = np.random.default_rng(seed)
    g = _grid(shape)
    wrinkle = 0.12 * spectral_field(shape, slope=3.0, seed=rng)
    interface = np.tanh((g[0] - 0.5 + wrinkle) / 0.04)
    turb = 0.08 * spectral_field(shape, slope=2.5, seed=rng)
    return 1.0e-4 * (1.5 + interface + turb)


def miranda_density(shape: tuple[int, ...] = _DEFAULT_SHAPE, seed: int = 2) -> np.ndarray:
    """Stratified density with turbulent perturbations."""
    rng = np.random.default_rng(seed)
    g = _grid(shape)
    strat = np.exp(-1.5 * g[0])
    turb = 0.1 * spectral_field(shape, slope=11.0 / 3.0, seed=rng)
    return 2.0 * (strat + 0.15 * turb + 0.5)


def miranda_velocity_x(shape: tuple[int, ...] = _DEFAULT_SHAPE, seed: int = 3) -> np.ndarray:
    """Kolmogorov-spectrum velocity component."""
    return 350.0 * spectral_field(shape, slope=5.0 / 3.0 + 2.0, seed=seed)


def s3d_ch4(shape: tuple[int, ...] = _DEFAULT_SHAPE, seed: int = 4) -> np.ndarray:
    """CH4 mass fraction: consumed across a thin wrinkled flame front."""
    rng = np.random.default_rng(seed)
    g = _grid(shape)
    wrinkle = 0.1 * spectral_field(shape, slope=3.0, seed=rng)
    front = 0.5 * (1.0 - np.tanh((g[0] - 0.45 + wrinkle) / 0.03))
    background = 0.02 * np.abs(spectral_field(shape, slope=4.0, seed=rng))
    return 0.06 * front + 1e-3 * background


def s3d_temperature(shape: tuple[int, ...] = _DEFAULT_SHAPE, seed: int = 5) -> np.ndarray:
    """Temperature: cold reactants, hot products, smooth in each region."""
    rng = np.random.default_rng(seed)
    g = _grid(shape)
    wrinkle = 0.1 * spectral_field(shape, slope=3.0, seed=rng)
    front = 0.5 * (1.0 + np.tanh((g[0] - 0.45 + wrinkle) / 0.03))
    fluct = 0.01 * spectral_field(shape, slope=4.0, seed=rng)
    return 800.0 + 1400.0 * front + 30.0 * fluct


def s3d_velocity_x(shape: tuple[int, ...] = _DEFAULT_SHAPE, seed: int = 6) -> np.ndarray:
    """Velocity with flame-induced acceleration plus turbulence."""
    rng = np.random.default_rng(seed)
    g = _grid(shape)
    accel = 5.0 * np.tanh((g[0] - 0.45) / 0.1)
    turb = 2.0 * spectral_field(shape, slope=5.0 / 3.0 + 2.0, seed=rng)
    return accel + turb


def nyx_dark_matter_density(
    shape: tuple[int, ...] = _DEFAULT_SHAPE, seed: int = 7
) -> np.ndarray:
    """Log-normal clumpy density: heavy tails, huge dynamic range."""
    base = spectral_field(shape, slope=2.2, seed=seed)
    return np.exp(2.2 * base)


def nyx_velocity_x(shape: tuple[int, ...] = _DEFAULT_SHAPE, seed: int = 8) -> np.ndarray:
    """Large-scale coherent cosmological velocity field."""
    return 1.0e7 * spectral_field(shape, slope=3.5, seed=seed)


def qmcpack_orbitals(
    shape: tuple[int, ...] = (32, 32, 48),
    seed: int = 9,
    n_orbitals: int = 4,
) -> np.ndarray:
    """Stack of smooth oscillatory orbital volumes, shape ``(*shape, n_orbitals)``
    flattened into one 3-D array along the last axis (the paper treats the
    QMCPACK file as a stack of 3-D volumes)."""
    if n_orbitals < 1:
        raise InvalidArgumentError("need at least one orbital")
    rng = np.random.default_rng(seed)
    g = _grid(shape)
    volumes = []
    for _ in range(n_orbitals):
        k = rng.integers(1, 5, size=len(shape))
        phase = rng.uniform(0, 2 * np.pi, size=len(shape))
        wave = np.ones(shape)
        for ax, (kk, ph) in enumerate(zip(k, phase)):
            wave = wave * np.sin(2 * np.pi * kk * g[ax] + ph)
        center = rng.uniform(0.3, 0.7, size=len(shape))
        envelope = np.exp(
            -sum((g[ax] - center[ax]) ** 2 for ax in range(len(shape))) / 0.08
        )
        volumes.append(wave * envelope)
    return np.concatenate(volumes, axis=-1)


#: Field registry: name -> generator(shape=..., seed=...).
FIELDS: dict[str, Callable[..., np.ndarray]] = {
    "miranda_pressure": miranda_pressure,
    "miranda_viscosity": miranda_viscosity,
    "miranda_density": miranda_density,
    "miranda_velocity_x": miranda_velocity_x,
    "s3d_ch4": s3d_ch4,
    "s3d_temperature": s3d_temperature,
    "s3d_velocity_x": s3d_velocity_x,
    "nyx_dark_matter_density": nyx_dark_matter_density,
    "nyx_velocity_x": nyx_velocity_x,
    "qmcpack_orbitals": qmcpack_orbitals,
}


def get_field(name: str, shape: tuple[int, ...] | None = None, seed: int | None = None) -> np.ndarray:
    """Generate a registered field by name with optional shape/seed override."""
    if name not in FIELDS:
        raise InvalidArgumentError(f"unknown field {name!r}; choose from {sorted(FIELDS)}")
    kwargs = {}
    if shape is not None:
        kwargs["shape"] = tuple(shape)
    if seed is not None:
        kwargs["seed"] = seed
    return FIELDS[name](**kwargs)
