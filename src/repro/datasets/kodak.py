"""Procedural stand-in for the Kodak "Lighthouse" test image.

Fig. 1 of the paper plots outlier positions on the Lighthouse image from
the Kodak suite.  With no bundled image data we synthesize a 2-D scene
with the same compression-relevant structure: a smooth sky gradient, a
textured sea, a high-contrast striped lighthouse tower (sharp vertical
edges), a picket fence (dense periodic edges — the famously hard region
of the original photo), and grass texture.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidArgumentError
from .spectral import spectral_field

__all__ = ["lighthouse"]


def lighthouse(shape: tuple[int, int] = (256, 384), seed: int = 0) -> np.ndarray:
    """Grayscale lighthouse-like test image in [0, 255], float64."""
    if len(shape) != 2 or min(shape) < 32:
        raise InvalidArgumentError("lighthouse wants a 2-D shape of at least 32x32")
    h, w = shape
    rng = np.random.default_rng(seed)
    y, x = np.meshgrid(np.linspace(0, 1, h), np.linspace(0, 1, w), indexing="ij")

    # Sky: smooth vertical gradient with soft clouds.
    img = 200.0 - 60.0 * y + 10.0 * spectral_field(shape, slope=4.0, seed=rng)

    # Sea band with wave texture.
    sea = (y > 0.55) & (y < 0.72)
    img[sea] = (
        90.0
        + 15.0 * np.sin(40.0 * np.pi * x[sea] + 8.0 * np.sin(6.0 * np.pi * y[sea]))
        + 6.0 * spectral_field(shape, slope=2.0, seed=rng)[sea]
    )

    # Grass foreground: rough texture.
    grass = y >= 0.72
    img[grass] = 70.0 + 20.0 * spectral_field(shape, slope=1.2, seed=rng)[grass]

    # Lighthouse tower: tapered column with horizontal stripes.
    cx = 0.35
    half_width = 0.035 + 0.025 * y
    tower = (np.abs(x - cx) < half_width) & (y > 0.18) & (y < 0.72)
    stripes = (np.floor(y * 14.0) % 2).astype(np.float64)
    img[tower] = 40.0 + 190.0 * stripes[tower]

    # Lantern room on top.
    lantern = (np.abs(x - cx) < 0.045) & (y > 0.12) & (y <= 0.18)
    img[lantern] = 30.0

    # Picket fence: dense vertical stripes in the foreground.
    fence = (y > 0.80) & (y < 0.92)
    pickets = (np.floor(x * 60.0) % 2).astype(np.float64)
    img[fence] = 60.0 + 150.0 * pickets[fence]

    # Film grain.
    img += rng.normal(0.0, 1.5, size=shape)
    return np.clip(img, 0.0, 255.0)
