"""Deterministic synthetic data sets standing in for SDRBench and Kodak."""

from .fields import (
    FIELDS,
    get_field,
    miranda_density,
    miranda_pressure,
    miranda_velocity_x,
    miranda_viscosity,
    nyx_dark_matter_density,
    nyx_velocity_x,
    qmcpack_orbitals,
    s3d_ch4,
    s3d_temperature,
    s3d_velocity_x,
)
from .kodak import lighthouse
from .scenarios import (
    SCENARIOS,
    SMOKE_SCENARIOS,
    Scenario,
    get_scenario,
    list_scenarios,
)
from .simulation import AdvectionDiffusion
from .spectral import radial_wavenumber, spectral_field

__all__ = [
    "FIELDS",
    "get_field",
    "Scenario",
    "SCENARIOS",
    "SMOKE_SCENARIOS",
    "get_scenario",
    "list_scenarios",
    "lighthouse",
    "AdvectionDiffusion",
    "radial_wavenumber",
    "spectral_field",
    "miranda_pressure",
    "miranda_viscosity",
    "miranda_density",
    "miranda_velocity_x",
    "s3d_ch4",
    "s3d_temperature",
    "s3d_velocity_x",
    "nyx_dark_matter_density",
    "nyx_velocity_x",
    "qmcpack_orbitals",
]
