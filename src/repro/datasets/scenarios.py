"""Declarative robustness-scenario registry.

SDRBench fields are not clean float64 cubes: ocean models carry
land-mask NaN regions, restart dumps are float32, diagnostics overflow
to ±Inf, and domain decompositions produce prime-sized and strongly
non-cubic tiles.  This registry enumerates those shapes of trouble as
named, deterministic scenarios so the robustness matrix
(:mod:`repro.analysis.scorecard`) and the test suite share one
substrate instead of ad-hoc field functions.

A scenario is ``variant × ndim × dtype``:

* variants — ``smooth`` (well-behaved baseline), ``masked`` (NaN block
  + scattered ±Inf), ``constant``, ``denormal`` (heavy subnormal
  fraction), ``prime`` (prime axis extents), ``noncubic`` (16:1 aspect
  ratio);
* ndim — 2-D, 3-D, and 4-D (a short time series of 3-D frames);
* dtype — float32 and float64.

Every scenario builds from a fixed seed, so two processes always see
bit-identical arrays.  ``SMOKE_SCENARIOS`` is the tier-1 subset; the
full registry backs the opt-in CI sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from ..errors import InvalidArgumentError

__all__ = [
    "Scenario",
    "SCENARIOS",
    "SMOKE_SCENARIOS",
    "get_scenario",
    "list_scenarios",
]

#: Axis extents per dimensionality, chosen small enough that the full
#: matrix stays CI-sized but large enough for several wavelet levels.
_SHAPES = {
    "2d": {
        "default": (64, 64),
        "prime": (61, 67),
        "noncubic": (128, 8),
    },
    "3d": {
        "default": (32, 32, 32),
        "prime": (17, 19, 23),
        "noncubic": (64, 16, 4),
    },
    "4d": {
        "default": (3, 24, 24, 24),
        "prime": (3, 13, 17, 19),
        "noncubic": (3, 48, 12, 4),
    },
}


@dataclass(frozen=True)
class Scenario:
    """One named robustness scenario.

    ``build()`` returns a fresh array every call (scenarios are
    deterministic in their baked-in seed, so repeated builds are
    bit-identical).  ``tags`` supports registry filtering; ``smoke``
    marks membership in the tier-1 subset.
    """

    name: str
    description: str
    shape: tuple[int, ...]
    dtype: str
    tags: frozenset = field(default_factory=frozenset)
    smoke: bool = False
    _builder: Callable[[], np.ndarray] | None = None

    def build(self) -> np.ndarray:
        """Materialize the scenario's input array."""
        assert self._builder is not None
        data = self._builder()
        assert data.shape == self.shape and str(data.dtype) == self.dtype
        return data


def _base_field(shape: tuple[int, ...], seed: int) -> np.ndarray:
    """Smooth-but-structured field: filtered noise plus a slow trend.

    Deliberately cheaper than the spectral generators in
    :mod:`repro.datasets.fields` — the matrix builds dozens of these.
    """
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(shape)
    for ax in range(data.ndim):
        for _ in range(3):  # light smoothing: repeated axis-mean filter
            data = 0.5 * data + 0.25 * (
                np.roll(data, 1, axis=ax) + np.roll(data, -1, axis=ax)
            )
    grids = np.meshgrid(
        *[np.linspace(0.0, 1.0, n) for n in shape], indexing="ij"
    )
    return 4.0 * data + np.sin(2 * np.pi * grids[-1]) + grids[0]


def _masked_field(shape: tuple[int, ...], seed: int) -> np.ndarray:
    """Base field with an ocean-style NaN block and scattered ±Inf."""
    data = _base_field(shape, seed)
    block = tuple(slice(0, max(1, n // 4)) for n in shape)
    data[block] = np.nan
    rng = np.random.default_rng(seed + 1)
    flat = data.reshape(-1)
    idx = rng.choice(flat.size, size=max(2, flat.size // 500), replace=False)
    flat[idx[: len(idx) // 2]] = np.inf
    flat[idx[len(idx) // 2 :]] = -np.inf
    return data


def _constant_field(shape: tuple[int, ...], seed: int) -> np.ndarray:
    return np.full(shape, 3.25)


def _denormal_field(shape: tuple[int, ...], seed: int) -> np.ndarray:
    """Normal-range field where >25% of samples are subnormal."""
    data = _base_field(shape, seed)
    rng = np.random.default_rng(seed + 2)
    flat = data.reshape(-1)
    n_sub = flat.size // 3
    idx = rng.choice(flat.size, size=n_sub, replace=False)
    flat[idx] = rng.uniform(0.1, 0.9, size=n_sub) * 1e-310
    return data


def _mixed_field(shape: tuple[int, ...], seed: int) -> np.ndarray:
    """Half smooth, half heavy noise: the adaptive dispatcher's stress case.

    The leading-axis split means a chunked compress sees both genuinely
    smooth chunks (szx territory) and noise-dominated chunks (sperr
    territory at tight bounds) in one array.
    """
    data = _base_field(shape, seed)
    rng = np.random.default_rng(seed + 4)
    half = shape[0] // 2
    spread = float(data.max() - data.min())
    data[half:] += rng.normal(0.0, 0.5 * spread, size=data[half:].shape)
    return data


_VARIANTS: dict[str, tuple[str, Callable, str]] = {
    # variant -> (shape key, raw float64 builder, description)
    "smooth": ("default", _base_field, "well-behaved smooth field"),
    "masked": ("default", _masked_field, "NaN block + scattered ±Inf"),
    "constant": ("default", _constant_field, "constant field (zero range)"),
    "denormal": ("default", _denormal_field, "subnormal-heavy samples"),
    "prime": ("prime", _base_field, "prime axis extents"),
    "noncubic": ("noncubic", _base_field, "16:1 aspect-ratio tile"),
    "mixed": ("default", _mixed_field, "half smooth, half heavy noise"),
}

#: Variants in the tier-1 smoke subset (3-D only, both dtypes).
_SMOKE_VARIANTS = ("smooth", "masked", "constant", "prime", "mixed")


def _make_builder(
    builder: Callable, shape: tuple[int, ...], seed: int, dtype: np.dtype
) -> Callable[[], np.ndarray]:
    def build() -> np.ndarray:
        data = builder(shape, seed)
        if dtype == np.float32:
            data = data.astype(np.float32)
            # float64 subnormals underflow to 0 in float32; re-seed the
            # denormal fraction at float32 scale so the scenario still
            # stresses what its name promises.
            if builder is _denormal_field:
                rng = np.random.default_rng(seed + 3)
                flat = data.reshape(-1)
                idx = rng.choice(
                    flat.size, size=flat.size // 3, replace=False
                )
                flat[idx] = (
                    rng.uniform(0.1, 0.9, size=idx.size) * 1e-41
                ).astype(np.float32)
        return data

    return build


def _build_registry() -> dict[str, Scenario]:
    registry: dict[str, Scenario] = {}
    seed = 100
    for variant, (shape_key, builder, desc) in _VARIANTS.items():
        for ndim_key in ("2d", "3d", "4d"):
            shape = _SHAPES[ndim_key][shape_key]
            for dtype in (np.dtype(np.float64), np.dtype(np.float32)):
                seed += 1
                name = f"{variant}-{ndim_key}-{dtype.name[-2:]}"
                smoke = variant in _SMOKE_VARIANTS and ndim_key == "3d"
                registry[name] = Scenario(
                    name=name,
                    description=f"{desc}, {ndim_key} {dtype.name}",
                    shape=shape,
                    dtype=dtype.name,
                    tags=frozenset({variant, ndim_key, dtype.name}),
                    smoke=smoke,
                    _builder=_make_builder(builder, shape, seed, dtype),
                )
    return registry


#: All registered scenarios, keyed by name (e.g. ``masked-3d-64``).
SCENARIOS: dict[str, Scenario] = _build_registry()

#: The tier-1 smoke subset.
SMOKE_SCENARIOS: dict[str, Scenario] = {
    name: s for name, s in SCENARIOS.items() if s.smoke
}


def get_scenario(name: str) -> Scenario:
    """Look up one scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise InvalidArgumentError(
            f"unknown scenario {name!r}; see repro.datasets.scenarios.SCENARIOS"
        ) from None


def list_scenarios(
    tags: Iterable[str] | None = None, smoke_only: bool = False
) -> list[Scenario]:
    """Scenarios matching every tag in ``tags`` (and the smoke flag)."""
    wanted = frozenset(tags or ())
    return [
        s
        for s in SCENARIOS.values()
        if wanted <= s.tags and (s.smoke or not smoke_only)
    ]
