"""Trace exporters: Chrome ``trace_event`` JSON and a plain-text table.

The JSON exporter emits the subset of the Trace Event Format that
``chrome://tracing`` / Perfetto load directly: one complete (``"ph":
"X"``) event per span with microsecond timestamps normalized to the
trace start, plus one counter (``"ph": "C"``) event per trace counter.
Output is deterministic for a given report (events in span order, keys
sorted), which is what the golden-snapshot test pins.
"""

from __future__ import annotations

import json

from .trace import TraceReport

__all__ = [
    "chrome_trace",
    "to_json",
    "write_chrome_trace",
    "format_stage_table",
]


def chrome_trace(report: TraceReport) -> dict:
    """Build the Chrome ``trace_event`` document for a report."""
    base = min((s.start_us for s in report.spans), default=0.0)
    events = []
    for s in report.spans:
        events.append(
            {
                "name": s.name,
                "cat": "repro",
                "ph": "X",
                "ts": round(s.start_us - base, 3),
                "dur": round(s.dur_us, 3),
                "pid": s.pid,
                "tid": s.tid,
                "args": {**s.attrs, "cpu_us": round(s.cpu_us, 3)},
            }
        )
    end = max((s.end_us - base for s in report.spans), default=0.0)
    pid = report.spans[0].pid if report.spans else 0
    for name in sorted(report.counters):
        events.append(
            {
                "name": name,
                "cat": "repro",
                "ph": "C",
                "ts": round(end, 3),
                "pid": pid,
                "tid": 0,
                "args": {"value": report.counters[name]},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_name": report.name},
    }


def to_json(report: TraceReport, *, indent: int | None = 2) -> str:
    """Serialize the Chrome trace document to a JSON string."""
    return json.dumps(chrome_trace(report), indent=indent, sort_keys=True) + "\n"


def write_chrome_trace(report: TraceReport, path) -> None:
    """Write the Chrome-loadable trace JSON to ``path``."""
    with open(path, "w") as f:
        f.write(to_json(report))


def format_stage_table(report: TraceReport) -> str:
    """Per-stage breakdown: calls, wall ms, CPU ms, share of the trace.

    Stages (span names) are sorted by total wall time, descending.  The
    share column is relative to the trace's wall extent, so nested spans
    can sum past 100% — the table reports cost per stage name, not a
    partition of time.
    """
    totals = report.stage_totals()
    cpu = report.cpu_totals()
    calls = report.stage_calls()
    extent = report.wall_seconds()
    rows = []
    for name in sorted(totals, key=lambda n: -totals[n]):
        share = 100.0 * totals[name] / extent if extent > 0 else 0.0
        rows.append(
            f"{name:<24} {calls[name]:>6} {totals[name] * 1e3:>10.2f} "
            f"{cpu.get(name, 0.0) * 1e3:>10.2f} {share:>6.1f}%"
        )
    header = (
        f"{'stage':<24} {'calls':>6} {'wall ms':>10} {'cpu ms':>10} {'share':>7}"
    )
    lines = [header, "-" * len(header)] + rows
    if report.counters:
        lines.append("")
        for name in sorted(report.counters):
            lines.append(f"{name:<24} {report.counters[name]:>15g}")
    return "\n".join(lines)
