"""Pipeline observability: nested spans, counters, and trace export.

A zero-dependency tracing/metrics subsystem for the compression stack.
Instrumentation is disabled by default — :func:`span` and
:func:`add_counter` are no-ops until a :class:`trace` is active — so the
hot path pays nothing when nobody is measuring.  When a trace *is*
active, every stage of compress/decompress (wavelet transform, SPECK
coding, outlier passes, lossless backend, container framing) records a
:class:`Span` with wall and CPU time plus byte/bit counters; spans
recorded by thread workers land in the same collector, and spans from
process workers are shipped back with each result and merged in
deterministic submission order.

Typical use::

    from repro import obs
    from repro.obs.export import write_chrome_trace, format_stage_table

    with obs.trace("sperr.compress") as tracer:
        result = repro.compress(data, mode, chunk_shape=32)
    report = tracer.report()
    print(format_stage_table(report))
    write_chrome_trace(report, "out.json")   # chrome://tracing loadable

The CLI exposes the same machinery as ``sperr compress --trace out.json``
and the benchmark harnesses (``bench_fig6_time_breakdown``,
``bench_regression``) consume :meth:`TraceReport.stage_totals` instead of
hand-rolled timers.  See ``docs/observability.md``.
"""

from .export import chrome_trace, format_stage_table, to_json, write_chrome_trace
from .trace import (
    Span,
    TracedResult,
    TraceReport,
    Tracer,
    absorb_result,
    active_tracer,
    add_counter,
    is_active,
    span,
    trace,
    wrap_worker,
)

__all__ = [
    "Span",
    "Tracer",
    "TraceReport",
    "TracedResult",
    "trace",
    "span",
    "add_counter",
    "is_active",
    "active_tracer",
    "wrap_worker",
    "absorb_result",
    "chrome_trace",
    "to_json",
    "write_chrome_trace",
    "format_stage_table",
]
