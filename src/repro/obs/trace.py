"""Span collection: the core of the observability layer.

A *span* is one timed region of the pipeline — ``wavelet.forward``,
``speck.encode``, ``lossless.encode`` — carrying wall time, CPU time,
nesting depth, the recording process/thread, and free-form attributes.
A :class:`Tracer` collects finished spans and named counters; a
:class:`TraceReport` is the immutable snapshot handed to exporters and
benchmarks.

Design constraints (and how they are met):

* **zero overhead when disabled** — :func:`span` reads one module global
  and returns a shared no-op object when no trace is active, so the
  instrumentation scattered through the hot path costs a dict build and
  a global load per call site;
* **thread safety** — worker threads share the active tracer; span
  nesting is tracked per thread (``threading.local``) and the finished
  span list and counters are guarded by a lock;
* **process safety** — child processes cannot see the parent's tracer,
  so :func:`wrap_worker` wraps a job callable to collect spans in the
  worker and ship them back with the result, and :func:`absorb_result`
  merges them into the parent trace in deterministic (submission) order.

Timestamps use ``time.perf_counter_ns`` (CLOCK_MONOTONIC on Linux, a
system-wide clock), so spans recorded in different processes share a
timeline and interleave correctly in the Chrome trace viewer.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Tracer",
    "TraceReport",
    "TracedResult",
    "trace",
    "span",
    "add_counter",
    "is_active",
    "active_tracer",
    "wrap_worker",
    "absorb_result",
]


@dataclass
class Span:
    """One finished timed region.

    ``start_us``/``dur_us`` are wall-clock microseconds on the monotonic
    clock; ``cpu_us`` is the recording thread's CPU time over the same
    region.  ``depth`` is the nesting level within the recording thread
    (0 = no enclosing span).  ``attrs`` carries free-form, JSON-safe
    stage attributes (chunk index, method name, shape, ...).
    """

    name: str
    start_us: float
    dur_us: float
    cpu_us: float
    pid: int
    tid: int
    depth: int
    attrs: dict = field(default_factory=dict)

    @property
    def end_us(self) -> float:
        """Wall-clock end of the span in microseconds."""
        return self.start_us + self.dur_us


@dataclass(frozen=True)
class TraceReport:
    """Immutable snapshot of a finished (or in-flight) trace.

    Spans appear in completion order: a child span always precedes its
    parent, and spans merged from process workers keep their worker-local
    order, appended chunk by chunk in submission order.
    """

    name: str
    spans: tuple[Span, ...]
    counters: dict[str, float]

    def stage_totals(self) -> dict[str, float]:
        """Total wall seconds per span name (nested spans count toward
        both their own name and every enclosing span's name)."""
        out: dict[str, float] = {}
        for s in self.spans:
            out[s.name] = out.get(s.name, 0.0) + s.dur_us / 1e6
        return out

    def cpu_totals(self) -> dict[str, float]:
        """Total CPU seconds per span name."""
        out: dict[str, float] = {}
        for s in self.spans:
            out[s.name] = out.get(s.name, 0.0) + s.cpu_us / 1e6
        return out

    def stage_calls(self) -> dict[str, int]:
        """Number of spans recorded per name."""
        out: dict[str, int] = {}
        for s in self.spans:
            out[s.name] = out.get(s.name, 0) + 1
        return out

    def find(self, name: str) -> list[Span]:
        """All spans with the given name, in recorded order."""
        return [s for s in self.spans if s.name == name]

    def wall_seconds(self) -> float:
        """Extent of the trace: latest span end minus earliest start."""
        if not self.spans:
            return 0.0
        start = min(s.start_us for s in self.spans)
        end = max(s.end_us for s in self.spans)
        return (end - start) / 1e6


class Tracer:
    """Thread-safe collector of spans and counters for one trace."""

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._counters: dict[str, float] = {}
        self._tls = threading.local()

    def _stack(self) -> list:
        """The calling thread's stack of live spans."""
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _finish(self, finished: Span) -> None:
        with self._lock:
            self._spans.append(finished)

    def add(self, name: str, value: float = 1) -> None:
        """Increment the named counter by ``value``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def merge(
        self,
        spans: list[Span],
        counters: dict[str, float],
        extra_attrs: dict | None = None,
    ) -> None:
        """Append another collector's finished spans and fold in its
        counters, optionally tagging every merged span with
        ``extra_attrs`` (e.g. the worker item index)."""
        with self._lock:
            for s in spans:
                if extra_attrs:
                    s.attrs.update(extra_attrs)
                self._spans.append(s)
            for k, v in counters.items():
                self._counters[k] = self._counters.get(k, 0) + v

    def report(self) -> TraceReport:
        """Snapshot the collected spans and counters."""
        with self._lock:
            return TraceReport(
                name=self.name,
                spans=tuple(self._spans),
                counters=dict(self._counters),
            )


class _LiveSpan:
    """An open span: a context manager bound to its tracer."""

    __slots__ = ("_tracer", "name", "attrs", "_depth", "_t0", "_c0")

    def __init__(self, tracer: Tracer, name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_LiveSpan":
        stack = self._tracer._stack()
        self._depth = len(stack)
        stack.append(self)
        self._t0 = time.perf_counter_ns()
        self._c0 = time.thread_time_ns()
        return self

    def __exit__(self, *exc) -> bool:
        t1 = time.perf_counter_ns()
        c1 = time.thread_time_ns()
        self._tracer._stack().pop()
        self._tracer._finish(
            Span(
                name=self.name,
                start_us=self._t0 / 1e3,
                dur_us=(t1 - self._t0) / 1e3,
                cpu_us=(c1 - self._c0) / 1e3,
                pid=os.getpid(),
                tid=threading.get_ident(),
                depth=self._depth,
                attrs=self.attrs,
            )
        )
        return False

    def set(self, **attrs) -> "_LiveSpan":
        """Attach attributes to the span; chainable."""
        self.attrs.update(attrs)
        return self

    def add(self, name: str, value: float = 1) -> "_LiveSpan":
        """Increment a trace counter from inside the span; chainable."""
        self._tracer.add(name, value)
        return self


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def add(self, name: str, value: float = 1) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()

#: The process-wide active tracer (``None`` = tracing disabled, the
#: fast path).  One trace is active at a time; :class:`trace` stacks.
_ACTIVE: Tracer | None = None


def is_active() -> bool:
    """True when a trace is currently collecting spans."""
    return _ACTIVE is not None


def active_tracer() -> Tracer | None:
    """The currently active :class:`Tracer`, or ``None``."""
    return _ACTIVE


def span(name: str, **attrs):
    """Open a span under the active trace (no-op when tracing is off).

    Use as a context manager::

        with span("speck.encode", chunk=i) as sp:
            ...
            sp.add("speck.bits", nbits)
    """
    tracer = _ACTIVE
    if tracer is None:
        return _NOOP
    return _LiveSpan(tracer, name, attrs)


def add_counter(name: str, value: float = 1) -> None:
    """Increment a trace counter (no-op when tracing is off)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.add(name, value)


class trace:
    """Context manager that activates a fresh :class:`Tracer`.

    ::

        with trace("sperr.compress") as tracer:
            compress(...)
        report = tracer.report()

    Entering while another trace is active stacks: the previous tracer
    is restored on exit (its spans pause while the inner trace runs).
    """

    def __init__(self, name: str = "trace") -> None:
        self.tracer = Tracer(name)
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        """Activate this trace's tracer and return it."""
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self.tracer
        return self.tracer

    def __exit__(self, *exc) -> bool:
        """Deactivate, restoring whatever trace was active before."""
        global _ACTIVE
        _ACTIVE = self._previous
        return False


@dataclass
class TracedResult:
    """A worker job's return value bundled with the spans and counters
    it recorded; produced by :func:`wrap_worker` wrappers and unpacked
    by :func:`absorb_result` in the parent."""

    value: object
    spans: list[Span]
    counters: dict[str, float]


class _TracedJob:
    """Picklable callable wrapper collecting spans in a worker process."""

    __slots__ = ("func",)

    def __init__(self, func) -> None:
        self.func = func

    def __call__(self, *args, **kwargs) -> TracedResult:
        global _ACTIVE
        previous = _ACTIVE
        collector = Tracer("worker")
        _ACTIVE = collector
        try:
            value = self.func(*args, **kwargs)
        finally:
            _ACTIVE = previous
        snap = collector.report()
        return TracedResult(
            value=value, spans=list(snap.spans), counters=snap.counters
        )


def wrap_worker(func):
    """Wrap ``func`` so a child process records spans and returns them
    with its result.  When tracing is inactive, returns ``func``
    unchanged, so callers can test ``wrapped is not func`` to know
    whether results need :func:`absorb_result`."""
    if _ACTIVE is None:
        return func
    return _TracedJob(func)


def absorb_result(result, **attrs):
    """Merge a :class:`TracedResult`'s spans/counters into the active
    trace (tagging each span with ``attrs``) and return the bare value.
    Non-:class:`TracedResult` inputs pass through untouched, so this is
    safe to apply uniformly."""
    if isinstance(result, TracedResult):
        tracer = _ACTIVE
        if tracer is not None:
            tracer.merge(result.spans, result.counters, extra_attrs=attrs or None)
        return result.value
    return result
