"""Fig. 9: achieved bitrate when satisfying a PWE tolerance, across the
Table II field/level grid.

Only the error-bounded compressors participate (TTHRESH has no PWE mode,
exactly as in the paper).  MGARD-like entries are dropped at idx = 40
levels when they violate the tolerance or degenerate to exact storage —
mirroring the paper's exclusion of MGARD at idx = 40.

Expected shape: SPERR uses the fewest bits in all but a couple of cases.
"""

from __future__ import annotations

import numpy as np

from common import emit, quick_mode
from repro.analysis import TABLE_II, banner, format_table, load_entry
from repro.compressors import (
    MgardLikeCompressor,
    SperrCompressor,
    SzLikeCompressor,
    ZfpLikeCompressor,
)
from repro.core.modes import PweMode


def test_fig9_bpp_at_tolerance(benchmark):
    shape = (16, 16, 16) if quick_mode() else (24, 24, 24)
    entries = TABLE_II[:4] if quick_mode() else TABLE_II
    compressors = [
        SperrCompressor(),
        SzLikeCompressor(),
        ZfpLikeCompressor(),
        MgardLikeCompressor(),
    ]

    cells: dict[tuple[str, str], float | None] = {}

    def run():
        for entry in entries:
            data, tol = load_entry(entry, shape=shape)
            for comp in compressors:
                if comp.name == "mgard-like" and entry.idx >= 40:
                    # the paper excludes MGARD at idx=40 ("results obviously
                    # exceeding the error tolerance"); our stand-in instead
                    # degenerates to exact storage there — excluded either way
                    cells[(entry.abbrev, comp.name)] = None
                    continue
                payload = comp.compress(data, PweMode(tol))
                recon = comp.decompress(payload)
                err = float(np.abs(recon - data).max())
                bpp = 8.0 * len(payload) / data.size
                cells[(entry.abbrev, comp.name)] = bpp if err <= tol else None
        return cells

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    sperr_best = 0
    counted = 0
    for entry in entries:
        row: list[object] = [entry.abbrev]
        values = {}
        for comp in compressors:
            v = cells[(entry.abbrev, comp.name)]
            row.append("excluded" if v is None else v)
            if v is not None:
                values[comp.name] = v
        rows.append(row)
        if "sperr" in values and len(values) > 1:
            counted += 1
            if values["sperr"] <= min(values.values()) + 1e-9:
                sperr_best += 1

    # paper: SPERR uses the least bits in all but two cases
    assert sperr_best >= counted - 3, f"SPERR best in only {sperr_best}/{counted}"

    emit(
        "fig9",
        banner(f"Fig. 9: achieved BPP at the PWE tolerance (fields at {shape})")
        + "\n"
        + format_table(["field-idx"] + [c.name for c in compressors], rows)
        + f"\nSPERR lowest bitrate in {sperr_best}/{counted} grid cells "
        "(paper: all but two)",
    )
