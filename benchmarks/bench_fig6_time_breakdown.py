"""Fig. 6: serial compression time broken into the four pipeline stages
(wavelet transform, SPECK coding, outlier locating, outlier coding) as
the PWE tolerance tightens (Miranda Viscosity).

Expected shape: total time grows with idx, driven almost entirely by
SPECK coding; transform time is flat (it ignores the tolerance); outlier
locate/code times stay roughly stable because the q = 1.5t rule keeps
the outlier count steady.

Stage times come from the ``repro.obs`` span collector:
:func:`repro.analysis.time_breakdown` runs each tolerance level under a
trace and aggregates span wall time via ``STAGE_SPANS`` — the same data
the CLI's ``--trace`` exports to Chrome trace JSON.
"""

from __future__ import annotations

from common import emit, quick_mode
from repro.analysis import banner, format_table, time_breakdown
from repro.datasets import miranda_viscosity


def test_fig6_time_breakdown(benchmark):
    shape = (24, 24, 16) if quick_mode() else (48, 48, 32)
    data = miranda_viscosity(shape)
    idx_levels = [10, 20] if quick_mode() else [10, 20, 30, 40, 50]

    rows_data = benchmark.pedantic(
        lambda: time_breakdown(data, idx_levels), rounds=1, iterations=1
    )

    rows = [
        [r.idx, r.transform, r.speck, r.locate, r.outlier_code, r.total]
        for r in rows_data
    ]

    # total time grows with tighter tolerances, driven by SPECK.  On the
    # tiny quick-mode volume the outlier stages shrink by about as much
    # as SPECK grows, so there the growth check targets SPECK directly.
    if quick_mode():
        assert rows_data[-1].speck > rows_data[0].speck
    else:
        totals = [r.total for r in rows_data]
        assert totals[-1] > totals[0]
    speck_share_tight = rows_data[-1].speck / rows_data[-1].total
    assert speck_share_tight > 0.3, "SPECK should dominate at tight tolerances"
    # transform cost is tolerance-independent (flat within noise)
    transforms = [r.transform for r in rows_data]
    assert max(transforms) < 5 * max(min(transforms), 1e-4)

    emit(
        "fig6",
        banner(f"Fig. 6: compression time breakdown, Miranda-like viscosity {shape}")
        + "\n"
        + format_table(
            ["idx", "transform s", "speck s", "locate s", "outlier-code s", "total s"],
            rows,
        )
        + "\n(paper: SPECK time grows with idx; transform flat; outlier stages stable)",
    )
