"""Load generator for the async compression service (`repro.service`).

Starts an in-process server over a store built from
:mod:`repro.datasets.scenarios` frames, then drives N concurrent
clients with mixed traffic — window reads over shared hot regions and
scattered cold windows, stateless compress and decompress calls — and
records client-side latency percentiles, server-side coalescing /
backpressure / error counters, and peak process RSS.

A second short phase floods a deliberately tiny-capped server to verify
admission control answers with structured backpressure errors while the
server stays healthy.

Results land in the ``service`` block of ``BENCH_speed.json``::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick] [--no-write]

and are gated by ``benchmarks/check_regression.py`` (zero protocol /
internal errors, byte-identical reads, coalescing actually deduping,
sane p99).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.core.modes import PweMode  # noqa: E402
from repro.datasets.scenarios import get_scenario  # noqa: E402
from repro.service import (  # noqa: E402
    BackpressureError,
    ServiceClient,
    ServiceConfig,
    serve_in_thread,
)
from repro.store import StoreWriter, open_store  # noqa: E402

BENCH_FILE = ROOT / "BENCH_speed.json"

#: Scenario frames served by the store (shared shape, mixed content:
#: frame 1 carries a NaN block + scattered Inf through the mask path).
STORE_SCENARIOS = ("smooth-3d-64", "masked-3d-64")
#: Scenario arrays compressed/decompressed as the write-path traffic.
CODEC_SCENARIOS = ("smooth-2d-64", "prime-2d-32")

CHUNK = 16
PWE = 1e-3
SEED = 7

#: Traffic mix (must sum to 1.0): reads dominate, as they would behind
#: an analysis dashboard; compress/decompress model ingest traffic.
MIX = {"read": 0.7, "compress": 0.15, "decompress": 0.15}


def build_store(path: Path) -> None:
    """Compress the scenario frames into a store at ``path``."""
    frames = [get_scenario(name).build() for name in STORE_SCENARIOS]
    with StoreWriter(path, PweMode(PWE), chunk_shape=CHUNK) as writer:
        for frame in frames:
            writer.append(np.asarray(frame, dtype=np.float64))


def make_windows(shape, seed: int, n_cold: int = 24) -> list[tuple]:
    """Hot windows (shared by every client) plus scattered cold windows."""
    rng = np.random.default_rng(seed)
    hot = [
        tuple(slice(0, min(2 * CHUNK, s)) for s in shape),
        tuple(slice(s - min(CHUNK, s), s) for s in shape),
    ]
    cold = []
    for _ in range(n_cold):
        window = []
        for s in shape:
            size = int(rng.integers(4, max(5, s // 2)))
            lo = int(rng.integers(0, max(1, s - size)))
            window.append(slice(lo, lo + size))
        cold.append(tuple(window))
    return hot + cold


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    values = sorted(values)
    idx = min(len(values) - 1, max(0, round(q * (len(values) - 1))))
    return 1e3 * values[int(idx)]


class _Worker(threading.Thread):
    """One load-generating client thread."""

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str,
        windows: list,
        codec_arrays: list[np.ndarray],
        payloads: list[bytes],
        stop_at: float,
        seed: int,
    ) -> None:
        super().__init__(daemon=True)
        self.args = (host, port, tenant)
        self.windows = windows
        self.codec_arrays = codec_arrays
        self.payloads = payloads
        self.stop_at = stop_at
        self.rng = np.random.default_rng(seed)
        self.latencies: dict[str, list[float]] = {
            "read": [], "compress": [], "decompress": []
        }
        self.reads: list[tuple[tuple, int, bytes]] = []  # sampled for identity
        self.n_backpressure = 0
        self.n_errors = 0

    def run(self) -> None:
        host, port, tenant = self.args
        ops, weights = zip(*MIX.items())
        with ServiceClient(host, port, tenant=tenant) as client:
            while time.perf_counter() < self.stop_at:
                op = str(self.rng.choice(ops, p=weights))
                try:
                    self._one(client, op)
                except BackpressureError as exc:
                    self.n_backpressure += 1
                    time.sleep(max(exc.retry_after_ms, 1) / 1e3)
                except Exception:  # noqa: BLE001 - counted, not fatal
                    self.n_errors += 1

    def _one(self, client: ServiceClient, op: str) -> None:
        t0 = time.perf_counter()
        if op == "read":
            window = self.windows[int(self.rng.integers(0, len(self.windows)))]
            frame = int(self.rng.integers(0, 2))
            out = client.read_window(window, frame=frame)
            if len(self.reads) < 8:
                self.reads.append((window, frame, out.tobytes()))
        elif op == "compress":
            data = self.codec_arrays[
                int(self.rng.integers(0, len(self.codec_arrays)))
            ]
            client.compress(data, pwe=PWE)
        else:
            payload = self.payloads[int(self.rng.integers(0, len(self.payloads)))]
            client.decompress(payload)
        self.latencies[op].append(time.perf_counter() - t0)


def run_load(
    *,
    clients: int = 16,
    duration_s: float = 5.0,
    batch_hold_s: float = 0.002,
    seed: int = SEED,
) -> dict:
    """Drive the mixed workload and return the ``service`` bench entry."""
    import resource

    tmp = tempfile.TemporaryDirectory(prefix="repro-bench-service-")
    store_path = Path(tmp.name) / "store"
    build_store(store_path)
    direct = open_store(store_path, cache_bytes=0)
    windows = make_windows(direct.shape, seed)
    codec_arrays = [
        np.asarray(get_scenario(n).build(), dtype=np.float64)
        for n in CODEC_SCENARIOS
    ]
    from repro import compress

    payloads = [
        compress(a, PweMode(PWE), chunk_shape=32).payload for a in codec_arrays
    ]

    config = ServiceConfig(
        batch_hold_s=batch_hold_s,
        max_inflight_per_tenant=8,
        max_pending=2 * clients,
        workers=4,
    )
    results: dict = {"clients": clients, "duration_s": duration_s}
    with serve_in_thread(store_path, config=config) as handle:
        stop_at = time.perf_counter() + duration_s
        workers = [
            _Worker(
                handle.host,
                handle.port,
                tenant=f"tenant-{i % 4}",
                windows=windows,
                codec_arrays=codec_arrays,
                payloads=payloads,
                stop_at=stop_at,
                seed=seed + i,
            )
            for i in range(clients)
        ]
        t_start = time.perf_counter()
        for w in workers:
            w.start()
        for w in workers:
            w.join(duration_s + 60.0)
        elapsed = time.perf_counter() - t_start
        with ServiceClient(handle.host, handle.port) as probe:
            stats = probe.stats()

    # Client-side latency percentiles per op.
    for op in MIX:
        merged = [t for w in workers for t in w.latencies[op]]
        results[op] = {
            "count": len(merged),
            "p50_ms": round(_percentile(merged, 0.50), 3),
            "p99_ms": round(_percentile(merged, 0.99), 3),
        }
    n_requests = sum(results[op]["count"] for op in MIX)
    results["throughput_rps"] = round(n_requests / max(elapsed, 1e-9), 1)

    # Byte-identity of sampled service reads vs. direct read_window.
    checked = mismatched = 0
    for w in workers:
        for window, frame, got in w.reads:
            checked += 1
            want = direct.read_window(window, frame=frame)
            if got != want.tobytes():
                mismatched += 1
    results["correctness"] = {
        "reads_checked": checked,
        "reads_mismatched": mismatched,
    }

    counters = stats["counters"]
    read_requests = counters.get("requests.read_window", 0)
    results["coalescing"] = {
        "read_requests": read_requests,
        "chunk_decodes": counters.get("chunk_decodes", 0),
        "coalesced_chunk_hits": counters.get("coalesced_chunk_hits", 0),
        "cache_hits": stats["cache"].get("hits", 0),
        "batches": counters.get("batches", 0),
    }
    results["errors"] = {
        "protocol_errors": counters.get("protocol_errors", 0),
        "internal_errors": counters.get("internal_errors", 0),
        "client_errors": sum(w.n_errors for w in workers),
        "backpressure_retries": sum(w.n_backpressure for w in workers),
    }
    results["peak_rss_mib"] = round(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1
    )
    tmp.cleanup()
    return results


def run_backpressure_probe(*, flooders: int = 8, duration_s: float = 1.5) -> dict:
    """Flood a tiny-capped server; admission must reject, not queue.

    Returns the reject/accept counts and whether the server still
    answered a ping after the flood (the no-meltdown check).
    """
    tmp = tempfile.TemporaryDirectory(prefix="repro-bench-flood-")
    store_path = Path(tmp.name) / "store"
    build_store(store_path)
    config = ServiceConfig(
        max_inflight_per_tenant=1,
        max_pending=2,
        workers=1,
        batch_hold_s=0.02,  # slow the drain so the queue caps bind
    )
    rejected = completed = failed = 0
    lock = threading.Lock()
    with serve_in_thread(store_path, config=config) as handle:
        window = tuple(slice(0, 32) for _ in range(3))
        stop_at = time.perf_counter() + duration_s

        def flood(i: int) -> None:
            nonlocal rejected, completed, failed
            with ServiceClient(handle.host, handle.port, tenant="flood") as c:
                while time.perf_counter() < stop_at:
                    try:
                        c.read_window(window)
                        with lock:
                            completed += 1
                    except BackpressureError:
                        with lock:
                            rejected += 1
                    except Exception:  # noqa: BLE001
                        with lock:
                            failed += 1

        threads = [
            threading.Thread(target=flood, args=(i,), daemon=True)
            for i in range(flooders)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(duration_s + 30.0)
        with ServiceClient(handle.host, handle.port) as probe:
            alive = probe.ping()
            stats = probe.stats()
    tmp.cleanup()
    return {
        "flooders": flooders,
        "rejected": rejected,
        "completed": completed,
        "failed": failed,
        "server_rejects": stats["counters"].get("backpressure_rejects", 0),
        "alive_after_flood": bool(alive),
    }


def measure_service(*, quick: bool = False) -> dict:
    """The full ``service`` bench block (load + backpressure probe)."""
    duration = 2.0 if quick else 6.0
    entry = run_load(clients=16, duration_s=duration)
    entry["backpressure"] = run_backpressure_probe(
        duration_s=1.0 if quick else 1.5
    )
    return entry


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run the load, print a summary, update the block."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="short run")
    parser.add_argument(
        "--no-write", action="store_true",
        help="print the block without touching BENCH_speed.json",
    )
    args = parser.parse_args(argv)

    entry = measure_service(quick=args.quick)
    print(json.dumps(entry, indent=2, sort_keys=True))

    if not args.no_write:
        doc = {}
        if BENCH_FILE.exists():
            try:
                doc = json.loads(BENCH_FILE.read_text())
            except json.JSONDecodeError:
                doc = {}
        doc["service"] = entry
        BENCH_FILE.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"wrote service block to {BENCH_FILE}")

    problems = []
    if entry["errors"]["protocol_errors"]:
        problems.append("protocol errors under load")
    if entry["correctness"]["reads_mismatched"]:
        problems.append("service reads diverged from direct read_window")
    if not entry["backpressure"]["alive_after_flood"]:
        problems.append("server unresponsive after flood")
    for p in problems:
        print(f"PROBLEM: {p}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
