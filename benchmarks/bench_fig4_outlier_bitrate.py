"""Fig. 4: outlier bitrate (bits per outlier) and outlier percentage vs q.

Expected shape: cost mostly between 6 and 16 bits per outlier, falling
as q grows (each set-significance test amortizes over more outliers),
with the percentage of outliers rising; ~10 bits/outlier at the default
q = 1.5t.  The fixed 20-byte header is included, as in Sec. V-A.
"""

from __future__ import annotations

from common import emit, quick_mode
from repro.analysis import banner, format_table, q_sweep
from repro.datasets import miranda_viscosity, nyx_dark_matter_density


def test_fig4_outlier_bitrate(benchmark):
    shape = (16, 16, 16) if quick_mode() else (24, 24, 24)
    cases = {
        "Visc-20": (miranda_viscosity(shape), 20),
        "Visc-40": (miranda_viscosity(shape), 40),
        "Nyx-20": (nyx_dark_matter_density(shape), 20),
        "Nyx-30": (nyx_dark_matter_density(shape), 30),
    }
    q_factors = (1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0)

    results = {}

    def sweep():
        for label, (data, idx) in cases.items():
            results[label] = q_sweep(data, idx=idx, q_factors=q_factors)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    at_default = []
    for label, pts in results.items():
        for p in pts:
            if p.n_outliers == 0:
                continue
            rows.append(
                [label, p.q_factor, p.bits_per_outlier, f"{100 * p.outlier_fraction:.2f}%"]
            )
            if p.q_factor == 1.5:
                at_default.append(p.bits_per_outlier)
        # bitrate per outlier decreases as q (and the outlier count) grows
        coded = [p for p in pts if p.n_outliers > 20]
        if len(coded) >= 2:
            assert coded[0].bits_per_outlier >= coded[-1].bits_per_outlier - 0.5
        fractions = [p.outlier_fraction for p in pts]
        assert all(a <= b + 1e-9 for a, b in zip(fractions, fractions[1:]))

    # the paper's headline number: ~10 bits per outlier at q = 1.5t,
    # consistently across data sets; the 6-16 band with small-volume slack
    assert at_default, "no outliers produced at the default q"
    for b in at_default:
        assert 5.0 <= b <= 18.0

    emit(
        "fig4",
        banner(f"Fig. 4: outlier bitrate and percentage vs q ({shape})")
        + "\n"
        + format_table(["field-idx", "q/t", "bits/outlier", "outlier %"], rows)
        + f"\nbits/outlier at the q=1.5t default: {[round(b, 1) for b in at_default]}"
        " (paper: ~10)",
    )
