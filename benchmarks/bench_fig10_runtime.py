"""Fig. 10: wall-clock compression time per compressor across the
Table II grid (the paper uses four OpenMP threads; we use SPERR's
chunk-thread executor with four workers and note that the baselines run
their vectorized single-process paths).

The paper's absolute ordering (SZ3 and ZFP extremely fast in optimized
C++) cannot carry over to pure Python — our ZFP-like pays a per-block
Python bit loop — so this bench records the measured ordering and the
EXPERIMENTS.md entry discusses the deviation.  The SPERR-specific claims
that *do* carry over are asserted: time grows with idx, and SPERR's
runtime stays within a small factor of the fastest baseline rather than
orders of magnitude off.
"""

from __future__ import annotations

import numpy as np

from common import emit, quick_mode
from repro.analysis import TABLE_II, banner, format_table, load_entry, runtime_point
from repro.compressors import (
    ChunkedCompressor,
    MgardLikeCompressor,
    SperrCompressor,
    SzLikeCompressor,
    TthreshLikeCompressor,
    ZfpLikeCompressor,
)


def test_fig10_runtime(benchmark):
    shape = (16, 16, 16) if quick_mode() else (24, 24, 24)
    entries = [e for e in (TABLE_II[:2] if quick_mode() else TABLE_II)]
    chunk = shape[0] // 2
    # every compressor gets the paper's four-thread configuration: SPERR
    # through its native chunk executor, the baselines through the
    # chunk-parallel adapter (their reference builds use OpenMP blocks)
    compressors = [
        SperrCompressor(chunk_shape=chunk, executor="thread", workers=4),
        ChunkedCompressor(SzLikeCompressor(), chunk, executor="thread", workers=4),
        ChunkedCompressor(ZfpLikeCompressor(), chunk, executor="thread", workers=4),
        ChunkedCompressor(TthreshLikeCompressor(), chunk, executor="thread", workers=4),
        ChunkedCompressor(MgardLikeCompressor(), chunk, executor="thread", workers=4),
    ]

    times: dict[tuple[str, str], float] = {}

    def run():
        for entry in entries:
            data, _ = load_entry(entry, shape=shape)
            for comp in compressors:
                if comp.name.startswith("mgard-like") and entry.idx >= 40:
                    times[(entry.abbrev, comp.name)] = float("nan")
                    continue
                times[(entry.abbrev, comp.name)] = runtime_point(comp, data, entry.idx)
        return times

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for entry in entries:
        rows.append(
            [entry.abbrev]
            + [times[(entry.abbrev, c.name)] for c in compressors]
        )

    # SPERR time grows as the tolerance tightens (idx 20 -> 40 pairs)
    for f20, f40 in (("CH4-20", "CH4-40"), ("Visc-20", "Visc-40")):
        if (f20, "sperr") in times and (f40, "sperr") in times:
            assert times[(f40, "sperr")] > times[(f20, "sperr")] * 0.8

    # sanity: every run completed in bounded time
    finite = [v for v in times.values() if np.isfinite(v)]
    assert max(finite) < 120.0

    emit(
        "fig10",
        banner(f"Fig. 10: compression wall time in seconds (fields at {shape})")
        + "\n"
        + format_table(["field-idx"] + [c.name for c in compressors], rows)
        + "\n(paper: SZ3/ZFP fastest, SPERR a few times slower, TTHRESH slowest;"
        "\n our ZFP-like pays a per-block Python bit loop - see EXPERIMENTS.md)",
    )
