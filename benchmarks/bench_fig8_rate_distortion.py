"""Fig. 8: rate-distortion curves (accuracy gain vs BPP, log-x) for all
five compressors on nine data fields.

Expected shapes (Sec. VI-C):
* curves rise at low rates (real compression) then plateau (random bits);
* SPERR leads at mid-to-high rates (> 2 BPP) and stays competitive at
  low rates;
* TTHRESH is tested via PSNR targets and skipped where it fails.
"""

from __future__ import annotations

import numpy as np

from common import emit, quick_mode
from repro.analysis import banner, format_series, rd_sweep
from repro.compressors import (
    MgardLikeCompressor,
    SperrCompressor,
    SzLikeCompressor,
    TthreshLikeCompressor,
    ZfpLikeCompressor,
)
from repro.datasets import get_field

_FIELDS = (
    "miranda_pressure",
    "miranda_viscosity",
    "miranda_velocity_x",
    "s3d_ch4",
    "s3d_temperature",
    "s3d_velocity_x",
    "nyx_dark_matter_density",
    "nyx_velocity_x",
    "qmcpack_orbitals",
)


def test_fig8_rate_distortion(benchmark):
    shape = (16, 16, 16) if quick_mode() else (24, 24, 24)
    idx_values = [4, 10, 16] if quick_mode() else [3, 6, 9, 12, 15, 18, 21, 24]
    field_names = _FIELDS[:3] if quick_mode() else _FIELDS
    compressors = [
        SperrCompressor(),
        SzLikeCompressor(),
        ZfpLikeCompressor(),
        TthreshLikeCompressor(),
        MgardLikeCompressor(),
    ]

    curves: dict[tuple[str, str], list] = {}

    def run():
        for fname in field_names:
            data = get_field(fname, shape=shape)
            for comp in compressors:
                curves[(fname, comp.name)] = rd_sweep(comp, data, idx_values)
        return curves

    benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [banner(f"Fig. 8: rate-distortion, gain (Eq. 2) vs BPP, fields at {shape}")]
    sperr_wins_high_rate = 0
    comparisons = 0
    for fname in field_names:
        lines.append(f"\n--- {fname} ---")
        for comp in compressors:
            pts = curves[(fname, comp.name)]
            lines.append(
                format_series(
                    f"{comp.name:13s}",
                    [round(p.bpp, 3) for p in pts],
                    [round(p.gain, 3) for p in pts],
                )
            )
        # headline check: at the tightest common tolerance (high rate),
        # SPERR's gain beats each error-bounded baseline's
        sperr_last = curves[(fname, "sperr")][-1]
        for other in ("sz-like", "zfp-like", "mgard-like"):
            pts = curves[(fname, other)]
            if not pts:
                continue
            comparisons += 1
            if sperr_last.gain >= pts[-1].gain - 0.05:
                sperr_wins_high_rate += 1

    # the paper's claim: SPERR has a clear advantage at mid-to-high rates
    assert sperr_wins_high_rate >= 0.7 * comparisons, (
        f"SPERR led in only {sperr_wins_high_rate}/{comparisons} high-rate comparisons"
    )
    lines.append(
        f"\nSPERR leads at the highest tested rate in {sperr_wins_high_rate}/"
        f"{comparisons} pairings (paper: clear advantage above 2 BPP)"
    )
    emit("fig8", "\n".join(lines))
