"""Ablation: wavelet choice (Sec. III-A design decision).

The paper picks CDF 9/7 "among a large selection of available wavelets"
for its rate-distortion performance and near-orthogonality.  This bench
swaps in CDF 5/3 and Haar and measures accuracy gain at a fixed
tolerance — CDF 9/7 should win on every smooth field.
"""

from __future__ import annotations

from common import emit, quick_mode
from repro.analysis import banner, format_table
from repro.core import PweMode, compress, decompress, tolerance_from_idx
from repro.datasets import miranda_pressure, miranda_viscosity, nyx_velocity_x
from repro.metrics import accuracy_gain


def test_ablation_wavelet_choice(benchmark):
    shape = (16, 16, 16) if quick_mode() else (32, 32, 32)
    fields = {
        "Miranda Pressure": miranda_pressure(shape),
        "Miranda Viscosity": miranda_viscosity(shape),
        "Nyx X Velocity": nyx_velocity_x(shape),
    }
    idx = 16
    wavelets = ("cdf97", "cdf53", "haar")

    gains: dict[tuple[str, str], float] = {}

    def run():
        for fname, data in fields.items():
            mode = PweMode(tolerance_from_idx(data, idx))
            for wavelet in wavelets:
                result = compress(data, mode, wavelet=wavelet)
                recon = decompress(result.payload)
                gains[(fname, wavelet)] = accuracy_gain(data, recon, result.bpp)
        return gains

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for fname in fields:
        row = [fname] + [gains[(fname, w)] for w in wavelets]
        rows.append(row)
        # the longer 9/7 filter must dominate the 5/3 on every field
        assert gains[(fname, "cdf97")] >= gains[(fname, "cdf53")] - 0.05, fname

    # ... and win on the smooth fields overall.  (Haar can edge ahead on
    # fields dominated by sharp material interfaces — its compact support
    # avoids ringing — which is worth recording, not hiding.)
    assert gains[("Miranda Pressure", "cdf97")] >= gains[("Miranda Pressure", "haar")] - 0.05

    emit(
        "ablation_wavelets",
        banner(f"Ablation: accuracy gain by wavelet at idx={idx} ({shape})")
        + "\n"
        + format_table(["field"] + list(wavelets), rows)
        + "\n(paper: CDF 9/7 chosen for rate-distortion performance and "
        "near-orthogonality; note Haar's edge on interface-dominated "
        "fields at this small scale)",
    )
