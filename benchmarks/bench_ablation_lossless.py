"""Ablation: the lossless final pass (the paper's ZSTD stage, Sec. V).

SPECK output is entropy-dense, so the final lossless pass buys only a
small, data-dependent saving — this bench measures each backend method
on real SPERR chunk streams and confirms `auto` never loses to `stored`.
"""

from __future__ import annotations

from common import emit, quick_mode
from repro import lossless
from repro.analysis import banner, format_table
from repro.core import PweMode, compress_chunk, tolerance_from_idx
from repro.datasets import miranda_viscosity, s3d_ch4


def test_ablation_lossless_backend(benchmark):
    shape = (16, 16, 16) if quick_mode() else (32, 32, 32)
    cases = {
        "Visc idx=12": (miranda_viscosity(shape), 12),
        "Visc idx=24": (miranda_viscosity(shape), 24),
        "CH4 idx=12": (s3d_ch4(shape), 12),
    }
    methods = ("stored", "rle", "huffman", "rle+huffman", "auto")

    sizes: dict[tuple[str, str], int] = {}
    raw_sizes: dict[str, int] = {}

    def run():
        for label, (data, idx) in cases.items():
            stream, _ = compress_chunk(data, PweMode(tolerance_from_idx(data, idx)))
            raw_sizes[label] = len(stream)
            for method in methods:
                sizes[(label, method)] = len(lossless.compress(stream, method=method))
        return sizes

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label in cases:
        raw = raw_sizes[label]
        row = [label, raw] + [
            f"{100 * (1 - sizes[(label, m)] / raw):+.1f}%" for m in methods
        ]
        rows.append(row)
        # auto picks the best candidate: never worse than stored + tag
        assert sizes[(label, "auto")] <= sizes[(label, "stored")]
        for m in methods:
            assert lossless.decompress  # round-trip correctness covered in tests

    emit(
        "ablation_lossless",
        banner(f"Ablation: lossless backend saving on SPERR chunk streams ({shape})")
        + "\n"
        + format_table(["case", "raw bytes"] + [f"{m} saving" for m in methods], rows)
        + "\n(paper uses ZSTD here; savings on entropy-dense SPECK output are "
        "expected to be small)",
    )
