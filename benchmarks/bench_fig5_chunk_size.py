"""Fig. 5: accuracy gain vs chunk size (Miranda Density cutout).

Expected shape: bigger chunks give higher accuracy gain (fewer wavelet
boundaries, deeper transforms), with diminishing returns, and the
penalty of small chunks grows for tighter tolerances (bigger idx).
"""

from __future__ import annotations

import numpy as np

from common import emit, quick_mode
from repro.analysis import banner, format_series
from repro.core import PweMode, compress, decompress
from repro.datasets import miranda_density
from repro.metrics import accuracy_gain


def test_fig5_chunk_size(benchmark):
    shape = (32, 32, 32) if quick_mode() else (64, 64, 64)
    data = miranda_density(shape)
    rng = float(data.max() - data.min())
    chunk_sizes = (8, 16, 32, 64) if shape[0] == 64 else (8, 16, 32)
    idx_levels = (10, 15) if quick_mode() else (10, 15, 20)

    gains: dict[int, list[float]] = {idx: [] for idx in idx_levels}

    def run():
        for idx in idx_levels:
            mode = PweMode(rng / 2**idx)
            for cs in chunk_sizes:
                result = compress(data, mode, chunk_shape=cs)
                recon = decompress(result.payload)
                gains[idx].append(accuracy_gain(data, recon, result.bpp))
        return gains

    benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [banner(f"Fig. 5: accuracy-gain difference vs chunk size ({shape} volume)")]
    penalties = {}
    for idx in idx_levels:
        g = np.array(gains[idx])
        rel = g - g.max()
        lines.append(format_series(f"idx={idx}", [f"{c}^3" for c in chunk_sizes], rel))
        # bigger chunks never hurt by more than noise
        assert all(a <= b + 0.25 for a, b in zip(rel, rel[1:])), idx
        penalties[idx] = rel[0]  # penalty of the smallest chunk

    # smaller chunks hurt more at tighter tolerances (paper's observation)
    assert penalties[idx_levels[-1]] <= penalties[idx_levels[0]] + 0.25

    lines.append(
        "(paper: bigger chunks -> higher gain, diminishing returns; "
        "impact grows with idx; SPERR defaults to 256^3 at production scale)"
    )
    emit("fig5", "\n".join(lines))
