"""Ablation: the Sec. II outlier-coding design space, measured.

The paper motivates its SPECK-inspired outlier coder by arguing the
natural alternatives are worse:

* CSR/CSC sparse storage — "far from optimal ... naive storage to record
  element positions and values";
* bitmap-coded positions + universal-coded values;
* SZ's dense quantization-bin scheme (Huffman over all points).

This bench intercepts real SPERR outlier lists (positions clustered
nowhere, corrections concentrated just above t) and codes the *same*
lists with all four designs.
"""

from __future__ import annotations

import numpy as np

from common import emit, quick_mode
from repro.analysis import banner, format_table
from repro.analysis.outliers import _intercept_outliers
from repro.compressors.szlike import codec as sz_codec
from repro.datasets import miranda_viscosity, nyx_dark_matter_density, s3d_temperature
from repro.outlier import bitmap_encode, csr_encode, encode_outliers


def test_ablation_outlier_design_space(benchmark):
    shape = (16, 16, 16) if quick_mode() else (24, 24, 24)
    cases = {
        "Visc-20": (miranda_viscosity(shape), 20),
        "Temp-20": (s3d_temperature(shape), 20),
        "Nyx-20": (nyx_dark_matter_density(shape), 20),
    }

    rows = []

    def run():
        for label, (data, idx) in cases.items():
            t = float(data.max() - data.min()) / 2**idx
            pos, corr = _intercept_outliers(data, t, 1.5)
            k = pos.size
            if k == 0:
                continue
            n = data.size
            sperr_bits = encode_outliers(pos, corr, n, t).nbits / k
            csr_bits = 8 * len(csr_encode(pos, corr, n, t)) / k
            bitmap_bits = 8 * len(bitmap_encode(pos, corr, n, t)) / k
            dense = np.zeros(n)
            dense[pos] = corr
            codes, esc = sz_codec.quantize_residuals(dense, t)
            sz_bits = 8 * len(sz_codec.encode_bins(codes, esc)) / k
            rows.append([label, k, sperr_bits, bitmap_bits, sz_bits, csr_bits])
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    assert rows, "no outliers intercepted"

    sperr_best = 0
    for row in rows:
        label, k, sperr_bits, bitmap_bits, sz_bits, csr_bits = row
        # CSR's naive position storage is the worst of the bunch
        assert csr_bits >= max(sperr_bits, bitmap_bits) - 0.5, row
        if sperr_bits <= min(bitmap_bits, sz_bits, csr_bits) + 1e-9:
            sperr_best += 1
    assert sperr_best >= (len(rows) + 1) // 2

    emit(
        "ablation_outlier_designs",
        banner(f"Ablation: outlier coder design space, bits/outlier ({shape})")
        + "\n"
        + format_table(
            ["case", "outliers", "SPERR", "bitmap+Elias", "SZ bins", "CSR"], rows
        )
        + "\n(paper Sec. II: the unified SPECK-style coder beats naive sparse "
        "storage and the bitmap/universal-code split)",
    )
