"""Shared helpers for the benchmark harness.

Every ``bench_*`` module reproduces one table or figure of the paper:
it regenerates the figure's data series (workload, sweep, baselines),
prints them in the layout the paper plots, and stores a copy under
``benchmarks/results/`` so EXPERIMENTS.md can cite the measured values.

Volume sizes are scaled down from the paper's testbed (up to 3072^3) to
laptop-scale (24^3-64^3); DESIGN.md documents why the rate-distortion
*shape* survives the scaling.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Default volume for the heavier sweeps.
BENCH_SHAPE = (32, 32, 32)
#: Smaller volume for the per-compressor grids.
GRID_SHAPE = (24, 24, 24)


def emit(name: str, text: str) -> None:
    """Print a bench's series and persist them under results/."""
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    with open(path, "w") as f:
        f.write(text + "\n")


def quick_mode() -> bool:
    """Honour REPRO_BENCH_QUICK=1 for a fast smoke pass."""
    return os.environ.get("REPRO_BENCH_QUICK", "") == "1"
