"""Fig. 7: strong-scaling speedup of chunk-parallel compression, 1-126
workers, three tolerance levels.

The paper measures OpenMP threads on a 128-core node; this container has
one core, so the speedup curve is modelled from measured per-chunk serial
times with an LPT schedule (substitution documented in DESIGN.md).  The
model preserves the figure's phenomenology: near-linear speedup while
workers << chunks, sub-linear growth as the schedule loses balance, and
a plateau at the chunk-count limit conceded in Sec. III-D.
"""

from __future__ import annotations

from common import emit, quick_mode
from repro.analysis import banner, format_series, scaling_study
from repro.datasets import miranda_density


def test_fig7_strong_scaling(benchmark):
    shape = (32, 32, 32) if quick_mode() else (48, 48, 48)
    chunk = 8 if quick_mode() else 12  # 64 chunks at full size
    data = miranda_density(shape)
    workers = [1, 2, 4, 8, 16, 32, 64, 126]
    idx_levels = [10] if quick_mode() else [10, 15, 20]

    studies = {}

    def run():
        for idx in idx_levels:
            studies[idx] = scaling_study(data, idx, chunk, workers)
        return studies

    benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        banner(
            f"Fig. 7: modelled strong-scaling speedup ({shape} volume, "
            f"{chunk}^3 chunks = {len(studies[idx_levels[0]].chunk_times)} chunks)"
        )
    ]
    for idx, study in studies.items():
        lines.append(format_series(f"idx={idx}", study.workers, study.speedups))
        s = dict(zip(study.workers, study.speedups))
        n_chunks = len(study.chunk_times)
        # near-linear at low worker counts
        assert s[2] > 1.5 and s[4] > 2.5
        # monotone non-decreasing
        assert all(a <= b + 1e-9 for a, b in zip(study.speedups, study.speedups[1:]))
        # plateau: beyond the chunk count, no further speedup
        assert s[126] <= n_chunks + 1e-9

    lines.append(
        "(paper: close-to-linear up to 16 cores, slower growth after, "
        "plateau past 64 cores — the chunk-count limit of Sec. III-D)"
    )
    emit("fig7", "\n".join(lines))
