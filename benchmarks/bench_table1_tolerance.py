"""Table I: translation of idx labels to actual PWE tolerances.

Regenerates the table's rows for a concrete field and checks the
"intuitive understanding" column (thousandth/millionth/billionth/
trillionth of the data range).
"""

from __future__ import annotations

from common import emit
from repro.analysis import banner, format_table
from repro.core import data_range, tolerance_from_idx
from repro.datasets import miranda_pressure


def test_table1_tolerance_translation(benchmark):
    data = miranda_pressure((24, 24, 24))
    rng = data_range(data)

    def translate():
        return [tolerance_from_idx(rng, idx) for idx in (10, 20, 30, 40)]

    tolerances = benchmark(translate)

    rows = []
    for idx, t, label in zip(
        (10, 20, 30, 40),
        tolerances,
        (
            "one thousandth of the data range",
            "one millionth of the data range",
            "one billionth of the data range",
            "one trillionth of the data range",
        ),
    ):
        rows.append([idx, t, t / rng, label])
        # the "approx Range * 10^-k" reading of Table I
        assert 0.5 * 10 ** -(3 * idx // 10) < t / rng < 2.0 * 10 ** -(3 * idx // 10)

    emit(
        "table1",
        banner("Table I: idx -> PWE tolerance (Miranda-like pressure, range %.4g)" % rng)
        + "\n"
        + format_table(["idx", "tolerance t", "t / Range", "reading"], rows),
    )
