"""Fig. 1: outlier positions on the lighthouse image are spatially random.

The paper shows heat maps at three outlier-percentage levels produced by
q = 1.3t, 1.5t, 1.7t and argues no spatial correlation is visible.  We
regenerate the three maps on the procedural lighthouse stand-in and
quantify "no correlation" with the Clark-Evans nearest-neighbour ratio
(1.0 = complete spatial randomness; clustered patterns << 1).
"""

from __future__ import annotations

from common import emit, quick_mode
from repro.analysis import banner, clark_evans_ratio, format_table, outlier_map
from repro.datasets import lighthouse


def test_fig1_outlier_positions_are_random(benchmark):
    shape = (96, 144) if quick_mode() else (192, 288)
    img = lighthouse(shape)
    idx = 9

    rows = []
    maps = {}

    def build_maps():
        for qf in (1.3, 1.5, 1.7):
            maps[qf] = outlier_map(img, idx=idx, q_factor=qf)
        return maps

    benchmark.pedantic(build_maps, rounds=1, iterations=1)

    fractions = []
    for qf, om in sorted(maps.items()):
        ratio = clark_evans_ratio(om.positions, om.shape)
        rows.append([f"q = {qf}t", om.positions.size, f"{100 * om.fraction:.2f}%", ratio])
        fractions.append(om.fraction)
        # the paper's claim: near-CSR, no meaningful clustering
        assert 0.6 < ratio < 1.5
    # more outlier coding (bigger q) -> more outliers, as in the subfigure
    # captions (0.5% / 1.28% / 2.26% on the original image)
    assert fractions[0] < fractions[1] < fractions[2]

    emit(
        "fig1",
        banner(f"Fig. 1: outlier spatial randomness (lighthouse {shape}, idx={idx})")
        + "\n"
        + format_table(
            ["setting", "outliers", "fraction", "Clark-Evans ratio (1.0 = random)"],
            rows,
        ),
    )
