"""Fig. 2: total coding cost vs quantization step q, split into wavelet
coefficient and outlier components (Miranda Pressure at a tight t).

Expected shape: coefficient cost falls with q, outlier cost rises, and
their sum is U-shaped with the minimum near q in [1.4t, 1.8t].
"""

from __future__ import annotations

import numpy as np

from common import emit, quick_mode
from repro.analysis import banner, format_table, q_sweep
from repro.datasets import miranda_pressure


def test_fig2_cost_balance(benchmark):
    shape = (20, 20, 20) if quick_mode() else (32, 32, 32)
    data = miranda_pressure(shape)
    idx = 22  # a tight tolerance, mirroring the paper's 3.64e-11 setting
    q_factors = (1.0, 1.2, 1.4, 1.5, 1.6, 1.8, 2.0, 2.4, 3.0)

    points = benchmark.pedantic(
        lambda: q_sweep(data, idx=idx, q_factors=q_factors), rounds=1, iterations=1
    )

    rows = [
        [
            p.q_factor,
            p.total_bpp,
            p.coeff_bpp,
            p.outlier_bpp,
            f"{100 * p.outlier_bpp / p.total_bpp:.1f}%",
        ]
        for p in points
    ]

    coeff = [p.coeff_bpp for p in points]
    outlier = [p.outlier_bpp for p in points]
    total = [p.total_bpp for p in points]
    # coefficient cost monotonically falls with q, outlier cost rises
    assert all(a >= b - 0.05 for a, b in zip(coeff, coeff[1:]))
    assert all(a <= b + 0.05 for a, b in zip(outlier, outlier[1:]))
    # the minimum of the U-curve sits in the paper's sweet-spot band
    best_q = points[int(np.argmin(total))].q_factor
    assert 1.0 <= best_q <= 2.0

    emit(
        "fig2",
        banner(f"Fig. 2: coding cost vs q (Miranda-like pressure {shape}, idx={idx})")
        + "\n"
        + format_table(
            ["q/t", "total BPP", "coeff BPP", "outlier BPP", "outlier share"], rows
        )
        + f"\nminimum total cost at q = {best_q}t (paper: sweet spot 1.4t-1.8t)",
    )
