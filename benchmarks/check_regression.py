"""Performance-regression gate over ``BENCH_speed.json``.

Re-times the benchmark cases on the current tree and compares each stage
(compress / decompress / end-to-end) against the ``current`` block stored
in ``BENCH_speed.json`` — the numbers the last bench run recorded.  A
stage that got more than ``--threshold`` slower (default 25%) fails the
gate; so does a headline ``sperr_multichunk`` end-to-end speedup that
drops below the 1.5x acceptance floor relative to the frozen baseline.

Short stages are timer-noisy, so a regression is only flagged when the
absolute slowdown also exceeds a noise floor (default 20 ms).

Run from the repo root::

    PYTHONPATH=src python benchmarks/check_regression.py [--quick]

The same gate runs as an opt-in pytest marker::

    REPRO_BENCH_GATE=1 PYTHONPATH=src python -m pytest -m bench
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))
if str(ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(ROOT / "benchmarks"))

from bench_regression import (  # noqa: E402
    BENCH_FILE,
    HEADLINE_CASE,
    HEADLINE_MIN_SPEEDUP,
    SCALING_MAX_PER_CHUNK_RATIO,
    measure,
    measure_adaptive,
    measure_calibration,
    measure_chunk_scaling,
    measure_lossless_micro,
    measure_zfp_micro,
)

#: A stage regresses when current/reference exceeds this ratio.
DEFAULT_THRESHOLD = 1.25
#: Slowdowns smaller than this many seconds (absolute) are timer noise —
#: a 1.6x blip on a 16 ms stage is jitter, a 1.3x creep on 300 ms is not.
DEFAULT_NOISE_FLOOR_S = 0.020

_STAGE_KEYS = ("compress_s", "decompress_s", "end_to_end_s")


def compare(
    reference: dict,
    current: dict,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    noise_floor_s: float = DEFAULT_NOISE_FLOOR_S,
) -> list[str]:
    """Return a list of human-readable regression descriptions (empty = pass)."""
    problems = []
    for name, ref_entry in sorted(reference.items()):
        cur_entry = current.get(name)
        if cur_entry is None:
            problems.append(f"{name}: case missing from current run")
            continue
        for key in _STAGE_KEYS:
            ref = ref_entry.get(key, 0.0)
            cur = cur_entry.get(key, 0.0)
            if ref <= 0.0 or cur <= 0.0 or (cur - ref) <= noise_floor_s:
                continue
            ratio = cur / ref
            if ratio > threshold:
                problems.append(
                    f"{name}.{key.removesuffix('_s')}: {cur * 1e3:.1f} ms vs "
                    f"reference {ref * 1e3:.1f} ms ({ratio:.2f}x, "
                    f"threshold {threshold:.2f}x)"
                )
    return problems


def check_headline(baseline: dict, current: dict) -> list[str]:
    """Enforce the acceptance floor on the headline multi-chunk case."""
    base = baseline.get(HEADLINE_CASE, {}).get("end_to_end_s", 0.0)
    cur = current.get(HEADLINE_CASE, {}).get("end_to_end_s", 0.0)
    if base <= 0.0 or cur <= 0.0:
        return [f"{HEADLINE_CASE}: missing end-to-end timings for headline check"]
    factor = base / cur
    if factor < HEADLINE_MIN_SPEEDUP:
        return [
            f"{HEADLINE_CASE}: {factor:.2f}x end-to-end vs frozen baseline, "
            f"below the {HEADLINE_MIN_SPEEDUP}x floor"
        ]
    return []


def _merge_best(a: dict, b: dict) -> dict:
    """Elementwise minimum of two measurement runs (per case and stage)."""
    out = {}
    for name in set(a) | set(b):
        ea, eb = a.get(name), b.get(name)
        if ea is None or eb is None:
            out[name] = ea or eb
            continue
        merged = dict(ea)
        for key in _STAGE_KEYS:
            if key in ea and key in eb:
                merged[key] = min(ea[key], eb[key])
        out[name] = merged
    return out


#: The v2 integrity fields (header CRC + per-chunk CRC table) must stay
#: below this fraction of the container payload on the headline case.
MAX_CONTAINER_OVERHEAD = 0.001


def check_container_overhead() -> list[str]:
    """Assert the v2 CRC overhead is negligible on the 64^3 bench case.

    Rebuilds the same container in the legacy v1 layout and compares
    byte counts: the difference is exactly the integrity machinery
    (4-byte header CRC + 4 bytes per chunk).
    """
    from bench_regression import CONFIG, _field, _pwe

    from repro import compress
    from repro.core.container import build_container, parse_container

    data = _field(tuple(CONFIG["shape_multichunk"]))
    payload = compress(data, _pwe(data), chunk_shape=CONFIG["chunk"]).payload
    p = parse_container(payload)
    v1 = build_container(
        p.rank, p.dtype, p.mode_code, p.shape, p.chunks, p.streams, version=1
    )
    overhead = len(payload) - len(v1)
    ratio = overhead / len(payload)
    if ratio >= MAX_CONTAINER_OVERHEAD:
        return [
            f"container v2 overhead: {overhead} bytes on a {len(payload)}-byte "
            f"payload ({100 * ratio:.3f}%), above the "
            f"{100 * MAX_CONTAINER_OVERHEAD:.1f}% cap"
        ]
    print(
        f"container v2 overhead: {overhead} bytes / {len(payload)} "
        f"({100 * ratio:.4f}%) - ok"
    )
    return []


#: Stage names a SPERR case's span-derived breakdown may contain.
_KNOWN_STAGES = frozenset(
    {"transform", "speck", "locate", "outlier_code", "lossless"}
)
#: ... and on the decompress side.
_KNOWN_STAGES_DECODE = frozenset(
    {"transform", "speck", "lossless", "outlier_apply"}
)


def check_trace_consistency(timings: dict) -> list[str]:
    """Sanity-check the span-collector stage breakdowns.

    Every SPERR case must carry ``stages`` and ``stages_decompress``
    dicts (the baselines never enter the instrumented pipeline, so
    theirs may be absent), the names must be known, and SPECK coding —
    the pipeline's dominant stage — must have recorded real time on
    both sides.
    """
    problems = []
    for name, entry in sorted(timings.items()):
        if not name.startswith("sperr"):
            continue
        for key, known in (
            ("stages", _KNOWN_STAGES),
            ("stages_decompress", _KNOWN_STAGES_DECODE),
        ):
            stages = entry.get(key)
            if not stages:
                problems.append(f"{name}: no span-derived {key} breakdown recorded")
                continue
            unknown = set(stages) - known
            if unknown:
                problems.append(f"{name}: unknown {key} names {sorted(unknown)}")
            if stages.get("speck", 0.0) <= 0.0:
                problems.append(f"{name}: speck stage recorded no time in {key}")
            if any(v < 0.0 for v in stages.values()):
                problems.append(f"{name}: negative stage time in {stages}")
    return problems


def check_chunk_scaling(*, quick: bool = False) -> list[str]:
    """Gate the chunk-count scaling series (1 / 8 / 64 chunks of 32^3).

    The batched executor's contract is that per-chunk compress cost
    stays flat as the chunk count grows; the gate fails when the
    64-chunk per-chunk time exceeds
    :data:`~bench_regression.SCALING_MAX_PER_CHUNK_RATIO` times the
    single-chunk time.  A tripped run is re-measured once so a load
    spike does not read as a scaling regression.
    """
    repeats = 1 if quick else 3
    entry = measure_chunk_scaling(repeats=repeats)
    ratio = entry["per_chunk_ratio_64_vs_1"]
    if ratio > SCALING_MAX_PER_CHUNK_RATIO:
        print("chunk-scaling gate tripped - re-measuring once")
        retry = measure_chunk_scaling(repeats=repeats)
        ratio = min(ratio, retry["per_chunk_ratio_64_vs_1"])
    if ratio > SCALING_MAX_PER_CHUNK_RATIO:
        return [
            f"chunk scaling: per-chunk compress at 64 chunks is {ratio:.2f}x "
            f"the single-chunk time (cap {SCALING_MAX_PER_CHUNK_RATIO:.1f}x)"
        ]
    return []


#: Throughput keys gated in the lossless micro table (higher is better).
_MICRO_KEYS = ("encode_MBps", "decode_MBps")

#: Absolute throughput floors for the slowest lossless micros (the
#: relative gate below only catches drift against the last recorded run;
#: these pin the targets themselves).
MICRO_FLOORS = {
    "lz77": {"encode_MBps": 5.0},
    "huffman": {"decode_MBps": 20.0},
}


def calibration_scale(doc: dict) -> float:
    """Machine-speed factor for the absolute MB/s floors, capped at 1.

    Runs the fixed numpy calibration probe and divides it by the probe
    speed recorded in BENCH_speed.json: a CI box running the probe at
    60% of the recording machine's speed gets every absolute floor
    scaled to 60%.  The cap at 1.0 means a *faster* box never gets a
    raised bar — the recorded floors stay the binding targets.  Trees
    whose bench file predates the calibration block keep scale 1.0.
    """
    ref = doc.get("calibration", {}).get("probe_MBps", 0.0)
    if ref <= 0.0:
        return 1.0
    cur = measure_calibration(repeats=1)["probe_MBps"]
    scale = min(1.0, cur / ref)
    print(
        f"calibration: probe {cur:.1f} MB/s vs recorded {ref:.1f} MB/s "
        f"- floor scale {scale:.2f}"
    )
    return scale


def check_micro_floors(current: dict, *, scale: float = 1.0) -> list[str]:
    """Enforce the absolute MB/s floors in :data:`MICRO_FLOORS`.

    ``scale`` (from :func:`calibration_scale`) derates the floors on
    machines measurably slower than the one that recorded them, so the
    gate tracks code regressions rather than hardware variance.
    """
    problems = []
    for method, floors in sorted(MICRO_FLOORS.items()):
        entry = current.get(method)
        if entry is None:
            problems.append(f"lossless/{method}: missing from current run")
            continue
        for key, floor in sorted(floors.items()):
            val = entry.get(key, 0.0)
            if val < floor * scale:
                problems.append(
                    f"lossless/{method}.{key}: {val:.1f} MB/s is below the "
                    f"{floor * scale:.1f} MB/s floor "
                    f"({floor:.0f} MB/s at calibration scale {scale:.2f})"
                )
    return problems


#: Absolute throughput floors for the ZFP-like kernels, derated by the
#: calibration probe like the lossless floors.  Set at roughly half the
#: recording machine's measured speed so only a real kernel regression
#: (e.g. losing the vectorized group-testing encoder) trips them.
ZFP_FLOORS = {
    "accuracy": {"encode_MBps": 4.0, "decode_MBps": 4.0},
    "fixed_rate": {"encode_MBps": 3.0, "decode_MBps": 3.0},
}


def check_zfp_micro(*, quick: bool = False, scale: float = 1.0) -> list[str]:
    """Gate the ZFP-like codec's encode/decode throughput.

    The ZFP path was the one codec the earlier perf PRs never touched;
    this pins its vectorized block coder with absolute floors (derated
    by the calibration scale) for both accuracy and fixed-rate modes.
    A tripped run is re-measured once to rule out a load spike.
    """
    repeats = 1 if quick else 3

    def judge(entry: dict) -> list[str]:
        problems = []
        for mode, floors in sorted(ZFP_FLOORS.items()):
            cell = entry.get(mode)
            if cell is None:
                problems.append(f"zfp/{mode}: missing from micro run")
                continue
            for key, floor in sorted(floors.items()):
                val = cell.get(key, 0.0)
                if val < floor * scale:
                    problems.append(
                        f"zfp/{mode}.{key}: {val:.1f} MB/s is below the "
                        f"{floor * scale:.1f} MB/s floor "
                        f"({floor:.0f} MB/s at calibration scale {scale:.2f})"
                    )
        return problems

    entry = measure_zfp_micro(repeats=repeats)
    problems = judge(entry)
    if problems:
        print("zfp micro gate tripped - re-measuring once")
        problems = judge(measure_zfp_micro(repeats=repeats))
    return problems


def check_lossless_micro(
    reference: dict,
    current: dict,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    scale: float = 1.0,
) -> list[str]:
    """Gate the per-method lossless codec throughputs.

    A method whose encode or decode MB/s dropped by more than the
    threshold factor fails, as does a compression ratio that got
    measurably worse (ratios are deterministic, so the bound is tight).
    The recorded reference throughputs are derated by ``scale`` (from
    :func:`calibration_scale`) first: a reference recorded during a
    fast window on a shared box would otherwise read ordinary machine
    variance as a codec regression.
    """
    problems = []
    for method, ref_entry in sorted(reference.items()):
        cur_entry = current.get(method)
        if cur_entry is None:
            problems.append(f"lossless/{method}: missing from current run")
            continue
        for key in _MICRO_KEYS:
            ref = ref_entry.get(key, 0.0) * scale
            cur = cur_entry.get(key, 0.0)
            if ref <= 0.0 or cur <= 0.0:
                continue
            if ref / cur > threshold:
                problems.append(
                    f"lossless/{method}.{key}: {cur:.1f} MB/s vs reference "
                    f"{ref:.1f} MB/s at calibration scale {scale:.2f} "
                    f"({ref / cur:.2f}x slower, threshold {threshold:.2f}x)"
                )
        ref_ratio = ref_entry.get("ratio", 0.0)
        cur_ratio = cur_entry.get("ratio", 0.0)
        if ref_ratio > 0.0 and cur_ratio > ref_ratio * 1.02:
            problems.append(
                f"lossless/{method}: compression ratio worsened "
                f"{ref_ratio:.4f} -> {cur_ratio:.4f}"
            )
    return problems


def _merge_best_micro(a: dict, b: dict) -> dict:
    """Elementwise best (max throughput) of two micro-benchmark runs."""
    out = {}
    for method in set(a) | set(b):
        ea, eb = a.get(method), b.get(method)
        if ea is None or eb is None:
            out[method] = ea or eb
            continue
        merged = dict(ea)
        for key in _MICRO_KEYS:
            if key in ea and key in eb:
                merged[key] = max(ea[key], eb[key])
        out[method] = merged
    return out


#: A warm (cached) window re-read must be at least this much faster than
#: the cold read that decoded the same chunks — the acceptance floor for
#: the store's decoded-chunk LRU actually short-circuiting the pipeline.
STORE_MIN_WARM_SPEEDUP = 5.0


def check_store_micro(*, quick: bool = False) -> list[str]:
    """Gate the store's windowed-read micro-benchmark.

    Fails when the windowed read stops matching full-decode slicing
    bit-exactly, when a full store scan diverges from container
    decompression, or when the warm cached re-read is less than
    :data:`STORE_MIN_WARM_SPEEDUP` times faster than the cold read.
    The speedup check re-measures once before failing so a scheduler
    hiccup does not read as a cache regression.
    """
    from bench_regression import measure_store_micro

    repeats = 1 if quick else 3
    entry = measure_store_micro(repeats=repeats)
    problems = []
    if not entry["window_matches_full_decode"]:
        problems.append(
            "store: windowed read no longer matches full-decode slicing"
        )
    if not entry["full_scan_matches_container"]:
        problems.append(
            "store: full store scan no longer matches container decompression"
        )
    if entry["warm_speedup"] < STORE_MIN_WARM_SPEEDUP:
        print("store warm-read gate tripped - re-measuring once")
        entry = measure_store_micro(repeats=repeats)
        if entry["warm_speedup"] < STORE_MIN_WARM_SPEEDUP:
            problems.append(
                f"store: warm cached re-read only {entry['warm_speedup']:.1f}x "
                f"faster than cold (floor {STORE_MIN_WARM_SPEEDUP:.0f}x; "
                f"cold {entry['cold_window_s'] * 1e3:.1f} ms, "
                f"warm {entry['warm_window_s'] * 1e3:.3f} ms)"
            )
    return problems


def check_scorecard(*, quick: bool = False) -> list[str]:
    """Gate the robustness scorecard: no cell may fail.

    ``quick`` (and the default gate run) uses the tier-1 smoke subset;
    the opt-in CI sweep runs the full matrix through the CLI instead.
    A failing cell is a correctness regression — a codec crashed on,
    corrupted, or broke the PWE/dtype/NaN contract for a scenario that
    used to pass — so there is no re-measure step.
    """
    from repro.analysis import run_scorecard

    card = run_scorecard(smoke_only=True)
    print(
        f"scorecard: {len(card.cells)} smoke cells, {card.n_failed} failed"
    )
    return [
        f"scorecard {c.codec} x {c.scenario}: {c.error}"
        for c in card.failures()
    ]


#: Absolute p99 ceiling for service window reads under the standard
#: 16-client load.  Deliberately generous — it catches meltdowns
#: (lost coalescing, queue leaks, event-loop stalls), not jitter.
SERVICE_MAX_READ_P99_MS = 2000.0


def check_service(*, quick: bool = False) -> list[str]:
    """Gate the compression service under concurrent load.

    Re-runs the :mod:`bench_service` load (16 mixed-traffic clients plus
    the tiny-cap flood probe) and fails on any of the service tier's
    hard invariants: a protocol or internal error under load, a window
    read that diverged from direct ``read_window``, coalescing no longer
    deduplicating decodes, a flood that crashes instead of being
    rejected, or a read p99 past :data:`SERVICE_MAX_READ_P99_MS`.  The
    latency check re-measures once so a load spike on the machine does
    not read as a service regression.
    """
    from bench_service import measure_service

    entry = measure_service(quick=quick)
    problems = []
    errors = entry["errors"]
    if errors["protocol_errors"]:
        problems.append(
            f"service: {errors['protocol_errors']} protocol errors under load"
        )
    if errors["internal_errors"] or errors["client_errors"]:
        problems.append(
            f"service: {errors['internal_errors']} internal / "
            f"{errors['client_errors']} client errors under load"
        )
    if entry["correctness"]["reads_mismatched"]:
        problems.append(
            f"service: {entry['correctness']['reads_mismatched']} of "
            f"{entry['correctness']['reads_checked']} sampled reads diverged "
            "from direct read_window"
        )
    co = entry["coalescing"]
    if co["read_requests"] >= 64 and co["chunk_decodes"] >= co["read_requests"]:
        problems.append(
            f"service: coalescing/caching stopped deduplicating decodes "
            f"({co['chunk_decodes']} decodes for {co['read_requests']} reads)"
        )
    bp = entry["backpressure"]
    if not bp["alive_after_flood"]:
        problems.append("service: server unresponsive after flood")
    if bp["failed"]:
        problems.append(
            f"service: {bp['failed']} flood requests failed unstructured "
            "(expected backpressure rejections)"
        )
    if bp["rejected"] == 0:
        problems.append(
            "service: tiny-cap flood was never rejected - admission "
            "control is not binding"
        )
    p99 = entry["read"]["p99_ms"]
    if p99 > SERVICE_MAX_READ_P99_MS:
        print("service latency gate tripped - re-measuring once")
        p99 = min(p99, measure_service(quick=quick)["read"]["p99_ms"])
    if p99 > SERVICE_MAX_READ_P99_MS:
        problems.append(
            f"service: read p99 {p99:.0f} ms exceeds the "
            f"{SERVICE_MAX_READ_P99_MS:.0f} ms ceiling"
        )
    if not problems:
        print(
            f"service: {co['read_requests']} reads / {co['chunk_decodes']} "
            f"decodes, read p99 {p99:.0f} ms, "
            f"{bp['rejected']} flood rejects - ok"
        )
    return problems


#: The szx fast tier must beat the pure SPERR path by at least this
#: factor on smooth chunks at the same PWE bound (the ISSUE target).
ADAPTIVE_MIN_FAST_SPEEDUP = 5.0
#: ``adaptive`` must never be slower than pure SPERR on the same data.
ADAPTIVE_MIN_VS_QUALITY = 1.0


def check_adaptive(*, quick: bool = False) -> list[str]:
    """Gate the adaptive codec dispatcher's speed and routing contracts.

    Re-measures the policy x field matrix and enforces:

    * the fast tier is >= :data:`ADAPTIVE_MIN_FAST_SPEEDUP` x faster
      than pure SPERR on the smooth field at the same PWE bound;
    * ``adaptive`` compress is never slower than ``quality`` on either
      field (the dispatcher's proxies must stay cheap);
    * the dispatcher actually routes: some szx chunks on the smooth
      field, and a genuine sperr/szx mix on the half-noisy field;
    * every decoded cell meets the PWE bound (``measure_adaptive``
      raises on violation — surfaced here as a gate failure).

    A tripped speed check is re-measured once to rule out load spikes.
    """
    repeats = 1 if quick else 3

    def judge(entry: dict) -> list[str]:
        problems = []
        fast = entry["fast_speedup_smooth"]
        if fast < ADAPTIVE_MIN_FAST_SPEEDUP:
            problems.append(
                f"adaptive: fast tier only {fast:.2f}x vs pure sperr on "
                f"smooth chunks (floor {ADAPTIVE_MIN_FAST_SPEEDUP:.0f}x)"
            )
        for fname, ratio in sorted(entry["adaptive_vs_quality"].items()):
            if ratio < ADAPTIVE_MIN_VS_QUALITY:
                problems.append(
                    f"adaptive: {ratio:.2f}x vs quality on the {fname} field "
                    f"- adaptive must never be slower than pure sperr"
                )
        smooth = entry["smooth"]["adaptive"]["routing"]
        if smooth["szx"] == 0:
            problems.append(
                "adaptive: dispatcher routed no chunks to szx on the smooth "
                f"field (routing {smooth})"
            )
        mixed = entry["mixed"]["adaptive"]["routing"]
        if mixed["szx"] == 0 or mixed["sperr"] == 0:
            problems.append(
                "adaptive: dispatcher failed to mix codecs on the half-noisy "
                f"field (routing {mixed})"
            )
        return problems

    try:
        entry = measure_adaptive(repeats=repeats)
    except RuntimeError as exc:
        return [f"adaptive: {exc}"]
    problems = judge(entry)
    if problems:
        print("adaptive gate tripped - re-measuring once")
        try:
            entry = measure_adaptive(repeats=repeats)
        except RuntimeError as exc:
            return [f"adaptive: {exc}"]
        problems = judge(entry)
    return problems


def run_gate(*, quick: bool = False, threshold: float = DEFAULT_THRESHOLD) -> list[str]:
    """Measure the current tree and gate it against BENCH_speed.json.

    A run that trips the gate is re-measured once and judged on the
    elementwise best of both runs, so a transient load spike on the
    machine does not read as a code regression.
    """
    if not BENCH_FILE.exists():
        return [
            f"{BENCH_FILE.name} not found - run "
            "'PYTHONPATH=src python benchmarks/bench_regression.py' first"
        ]
    doc = json.loads(BENCH_FILE.read_text())
    reference = doc.get("current", {}).get("cases", {})
    baseline = doc.get("baseline", {}).get("cases", {})
    if not reference:
        return [f"{BENCH_FILE.name} has no 'current' block to gate against"]

    repeats = 1 if quick else 3

    def judge(timings: dict) -> list[str]:
        problems = compare(reference, timings, threshold=threshold)
        if baseline:
            problems += check_headline(baseline, timings)
        return problems

    timings = measure(repeats=repeats)
    problems = judge(timings)
    if problems:
        print("gate tripped - re-measuring once to rule out machine noise")
        timings = _merge_best(timings, measure(repeats=repeats))
        problems = judge(timings)

    scale = calibration_scale(doc)
    micro_ref = doc.get("lossless_micro", {})
    micro = measure_lossless_micro(repeats=repeats)
    micro_problems = check_micro_floors(micro, scale=scale)
    if micro_ref:
        micro_problems += check_lossless_micro(
            micro_ref, micro, threshold=threshold, scale=scale
        )
    if micro_problems:
        print("lossless micro gate tripped - re-measuring once")
        # re-probe too: the machine's speed may have shifted since the
        # scale was taken, and the re-measure should be judged at its
        # own contemporaneous derating
        scale = min(scale, calibration_scale(doc))
        micro = _merge_best_micro(micro, measure_lossless_micro(repeats=repeats))
        micro_problems = check_micro_floors(micro, scale=scale)
        if micro_ref:
            micro_problems += check_lossless_micro(
                micro_ref, micro, threshold=threshold, scale=scale
            )
    problems += micro_problems

    problems += check_zfp_micro(quick=quick, scale=scale)
    problems += check_adaptive(quick=quick)
    problems += check_chunk_scaling(quick=quick)
    problems += check_trace_consistency(timings)
    problems += check_container_overhead()
    problems += check_store_micro(quick=quick)
    problems += check_scorecard(quick=quick)
    problems += check_service(quick=quick)
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="single repeat")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="max allowed current/reference ratio per stage (default 1.25)",
    )
    args = parser.parse_args(argv)

    problems = run_gate(quick=args.quick, threshold=args.threshold)
    if problems:
        print("REGRESSIONS DETECTED:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("no perf regressions (all stages within threshold)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
