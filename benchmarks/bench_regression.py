"""Benchmark-regression harness: per-stage timings with a persistent trail.

Times compress/decompress for SPERR and the four baseline compressors on
fixed seeds and writes ``BENCH_speed.json`` at the repo root.  The file
keeps two measurement blocks:

* ``baseline`` — frozen numbers recorded before the hot-path PR landed
  (refresh only deliberately, with ``--rebaseline``);
* ``current``  — refreshed on every run, giving each future PR a perf
  trajectory to compare against.

The headline series is ``sperr_multichunk``: a 64^3 volume compressed in
32^3 chunks with a warm plan cache, the configuration of the paper's
strong-scaling study (Fig. 7/10).  ``speedup_vs_baseline`` records how
the current tree compares against the frozen baseline per stage.  Stage
splits come from the ``repro.obs`` span collector (one traced compress
pass per case); the timed repeats themselves run untraced so the gate
keeps measuring the production fast path.

Run from the repo root (or anywhere)::

    PYTHONPATH=src python benchmarks/bench_regression.py [--quick] [--label L]

``benchmarks/check_regression.py`` consumes the same file as an opt-in
CI gate (fails when any stage regresses >25%).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

import numpy as np  # noqa: E402

from repro import obs  # noqa: E402
from repro import lossless  # noqa: E402
from repro.analysis.timing import STAGE_SPANS, STAGE_SPANS_DECODE  # noqa: E402
from repro.compressors import (  # noqa: E402
    MgardLikeCompressor,
    SperrCompressor,
    SzLikeCompressor,
    TthreshLikeCompressor,
    ZfpLikeCompressor,
)
from repro.compressors.base import PsnrMode  # noqa: E402
from repro.core.modes import PweMode  # noqa: E402
from repro.datasets.fields import get_field  # noqa: E402

BENCH_FILE = ROOT / "BENCH_speed.json"
SCHEMA = 1

#: Fixed workload parameters — every number in BENCH_speed.json is
#: reproducible from these.
CONFIG = {
    "field": "miranda_density",
    "seed": 7,
    "shape_small": [32, 32, 32],
    "shape_multichunk": [64, 64, 64],
    "chunk": 32,
    "tol_rel": 1e-3,
    "psnr_db": 60.0,
}

#: The case the acceptance criterion tracks: multi-chunk SPERR with a
#: warm plan cache must stay >= 1.5x faster than the pre-PR baseline.
HEADLINE_CASE = "sperr_multichunk"
HEADLINE_MIN_SPEEDUP = 1.5

#: Chunk-count scaling series: the same 32^3 chunk shape at 1, 8 and 64
#: chunks (32^3, 64^3 and 128^3 volumes).  The batched executor exists
#: to keep per-chunk cost flat as the chunk count grows, so the gate
#: asserts exactly that (see ``check_regression.check_chunk_scaling``).
SCALING_CHUNK_COUNTS = (1, 8, 64)
#: Per-chunk compress time at 64 chunks must stay within this factor of
#: the single-chunk time.
SCALING_MAX_PER_CHUNK_RATIO = 1.5


def _field(shape: tuple[int, ...]) -> np.ndarray:
    return get_field(CONFIG["field"], shape, seed=CONFIG["seed"])


def _pwe(data: np.ndarray) -> PweMode:
    return PweMode(CONFIG["tol_rel"] * float(data.max() - data.min()))


def _make_cases() -> dict[str, dict]:
    """Build the case table: (compressor factory, data, mode) per name."""
    small = _field(tuple(CONFIG["shape_small"]))
    big = _field(tuple(CONFIG["shape_multichunk"]))
    return {
        "sperr": {"comp": lambda: SperrCompressor(), "data": small, "mode": _pwe(small)},
        "sz3": {"comp": lambda: SzLikeCompressor(), "data": small, "mode": _pwe(small)},
        "zfp": {"comp": lambda: ZfpLikeCompressor(), "data": small, "mode": _pwe(small)},
        "tthresh": {
            "comp": lambda: TthreshLikeCompressor(),
            "data": small,
            "mode": PsnrMode(CONFIG["psnr_db"]),
        },
        "mgard": {"comp": lambda: MgardLikeCompressor(), "data": small, "mode": _pwe(small)},
        HEADLINE_CASE: {
            "comp": lambda: SperrCompressor(chunk_shape=CONFIG["chunk"]),
            "data": big,
            "mode": _pwe(big),
        },
    }


def _stage_breakdown(comp, data, mode) -> tuple[dict[str, float], dict[str, float]]:
    """Per-stage compress and decompress seconds from traced passes.

    Aggregates span wall time with the same Fig. 6 mapping the analysis
    layer uses (:data:`repro.analysis.timing.STAGE_SPANS` on the encode
    side, plus the lossless final pass, and
    :data:`~repro.analysis.timing.STAGE_SPANS_DECODE` on the decode
    side).  Baselines that never enter the SPERR pipeline record no
    spans and get empty dicts.
    """
    with obs.trace("bench.stages") as tracer:
        payload = comp.compress(data, mode)
    totals = tracer.report().stage_totals()
    groups = dict(STAGE_SPANS, lossless=("lossless.encode",))
    stages = {
        stage: sum(totals.get(name, 0.0) for name in names)
        for stage, names in groups.items()
    }
    with obs.trace("bench.stages.decode") as tracer:
        comp.decompress(payload)
    totals = tracer.report().stage_totals()
    d_stages = {
        stage: sum(totals.get(name, 0.0) for name in names)
        for stage, names in STAGE_SPANS_DECODE.items()
    }
    return (
        {k: v for k, v in stages.items() if v > 0.0},
        {k: v for k, v in d_stages.items() if v > 0.0},
    )


def _time_case(case: dict, repeats: int) -> dict:
    """Median compress/decompress seconds (plus SPERR stage breakdown)."""
    comp = case["comp"]()
    data, mode = case["data"], case["mode"]
    # Warm-up pass: fills the plan caches (post-PR) and any lazy numpy
    # state, so the timed repeats measure the steady warm-path regime.
    payload = comp.compress(data, mode)
    comp.decompress(payload)

    # The timed repeats run untraced so the gate numbers keep measuring
    # the production fast path; a separate traced compress pass supplies
    # the per-stage split.
    c_times, d_times = [], []
    for _ in range(repeats):
        t0 = time.perf_counter()
        payload = comp.compress(data, mode)
        t1 = time.perf_counter()
        out = comp.decompress(payload)
        t2 = time.perf_counter()
        c_times.append(t1 - t0)
        d_times.append(t2 - t1)
    stages, d_stages = _stage_breakdown(comp, data, mode)
    if out.shape != data.shape:
        raise RuntimeError(f"round-trip shape mismatch: {out.shape} vs {data.shape}")
    if isinstance(mode, PweMode):
        worst = float(np.max(np.abs(out - data)))
        if worst > mode.tolerance * 1.0000001:
            raise RuntimeError(f"tolerance violated: {worst} > {mode.tolerance}")

    entry = {
        "compress_s": statistics.median(c_times),
        "decompress_s": statistics.median(d_times),
        "end_to_end_s": statistics.median(
            [c + d for c, d in zip(c_times, d_times)]
        ),
        "payload_bytes": len(payload),
        "repeats": repeats,
    }
    if stages:
        entry["stages"] = dict(sorted(stages.items()))
    if d_stages:
        entry["stages_decompress"] = dict(sorted(d_stages.items()))
    return entry


def measure(repeats: int = 3, cases: dict | None = None) -> dict:
    """Measure every case; returns ``{case_name: stage timings}``."""
    cases = cases if cases is not None else _make_cases()
    out = {}
    for name, case in cases.items():
        out[name] = _time_case(case, repeats)
        print(
            f"  {name:16s} compress {out[name]['compress_s'] * 1e3:8.1f} ms   "
            f"decompress {out[name]['decompress_s'] * 1e3:8.1f} ms   "
            f"{out[name]['payload_bytes']:9d} B"
        )
    return out


def measure_chunk_scaling(repeats: int = 3) -> dict:
    """Per-chunk compress time at 1 / 8 / 64 chunks of the 32^3 shape.

    Every point compresses a cube of ``count`` 32^3 chunks with the same
    compressor configuration as the headline case, after one warm-up
    pass, and records the median wall time and its per-chunk share.  The
    summary key ``per_chunk_ratio_64_vs_1`` is what the gate reads: with
    the stacked-lane batch executor the 64-chunk per-chunk time should
    sit at (or below) the single-chunk time, since chunk fan-out no
    longer re-enters the interpreter per stage per chunk.
    """
    out = {}
    chunk = CONFIG["chunk"]
    for count in SCALING_CHUNK_COUNTS:
        side = chunk * round(count ** (1.0 / 3.0))
        data = _field((side,) * 3)
        mode = _pwe(data)
        comp = SperrCompressor(chunk_shape=chunk)
        payload = comp.compress(data, mode)  # warm-up: plan caches etc.
        times = []
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            payload = comp.compress(data, mode)
            times.append(time.perf_counter() - t0)
        med = statistics.median(times)
        out[str(count)] = {
            "shape": [side] * 3,
            "compress_s": med,
            "per_chunk_s": med / count,
            "payload_bytes": len(payload),
            "repeats": repeats,
        }
        print(
            f"  scaling/{count:3d} x 32^3   compress {med * 1e3:8.1f} ms   "
            f"{med / count * 1e3:6.1f} ms/chunk"
        )
    ratio = out["64"]["per_chunk_s"] / out["1"]["per_chunk_s"]
    out["per_chunk_ratio_64_vs_1"] = round(ratio, 3)
    print(
        f"  scaling per-chunk ratio (64 vs 1): {ratio:.2f}x "
        f"(gate <= {SCALING_MAX_PER_CHUNK_RATIO}x)"
    )
    return out


#: Per-method lossless micro-benchmark inputs: (method, generator, size).
#: Each method gets data shaped to exercise its strengths, so the MB/s
#: numbers track the code path that actually wins on such data.  The
#: legacy per-bit ``ac`` coder runs on a small input (it exists only for
#: stream compatibility and is ~40x slower than the range coder).
_MICRO_SIZE = 1 << 20
_MICRO_SIZE_AC = 1 << 16


def _micro_runs(rng: np.random.Generator, n: int) -> bytes:
    """Long runs of few byte values (RLE territory)."""
    return np.repeat(
        rng.integers(0, 4, size=n // 64, dtype=np.uint8), 64
    )[:n].tobytes()


def _micro_skewed(rng: np.random.Generator, n: int) -> bytes:
    """Skewed iid bytes, ~3 bits/byte of entropy (Huffman/RC territory)."""
    return np.minimum(rng.geometric(0.25, size=n) - 1, 255).astype(np.uint8).tobytes()


def _micro_repetitive(rng: np.random.Generator, n: int) -> bytes:
    """Random 256-byte fragments drawn from a small pool (LZ77 territory)."""
    pool = rng.integers(0, 256, size=(16, 256), dtype=np.uint8)
    picks = rng.integers(0, 16, size=n // 256 + 1)
    return pool[picks].reshape(-1)[:n].tobytes()


_MICRO_CASES = (
    ("rle", _micro_runs, _MICRO_SIZE),
    ("huffman", _micro_skewed, _MICRO_SIZE),
    ("rle+huffman", _micro_runs, _MICRO_SIZE),
    ("lz77", _micro_repetitive, _MICRO_SIZE),
    ("ac", _micro_skewed, _MICRO_SIZE_AC),
    ("rc", _micro_skewed, _MICRO_SIZE),
)


def measure_lossless_micro(repeats: int = 3) -> dict:
    """Encode/decode throughput (MB of raw data per second) per method.

    Every method is timed explicitly (not through ``auto``), so these
    numbers isolate each codec kernel; a decoded-equals-input check runs
    on every repeat.
    """
    out = {}
    for method, gen, size in _MICRO_CASES:
        data = gen(np.random.default_rng(42), size)
        e_times, d_times = [], []
        payload = lossless.compress(data, method=method)
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            payload = lossless.compress(data, method=method)
            t1 = time.perf_counter()
            back = lossless.decompress(payload)
            t2 = time.perf_counter()
            if back != data:
                raise RuntimeError(f"lossless micro round-trip failed for {method}")
            e_times.append(t1 - t0)
            d_times.append(t2 - t1)
        mb = len(data) / 1e6
        entry = {
            "input_bytes": len(data),
            "payload_bytes": len(payload),
            "ratio": round(len(payload) / len(data), 4),
            "encode_MBps": round(mb / statistics.median(e_times), 2),
            "decode_MBps": round(mb / statistics.median(d_times), 2),
        }
        out[method] = entry
        print(
            f"  lossless/{method:12s} encode {entry['encode_MBps']:8.1f} MB/s   "
            f"decode {entry['decode_MBps']:8.1f} MB/s   ratio {entry['ratio']:.3f}"
        )
    return out


#: Store micro-bench window: offset by 8 so the window crosses a chunk
#: boundary on every axis of the 64^3 / 32^3-chunk headline layout.
_STORE_WINDOW_OFFSET = 8


def measure_store_micro(repeats: int = 3) -> dict:
    """Store window-read micro-benchmark: cold read, warm cached re-read.

    Builds a multi-chunk store of the 64^3 headline field in a temporary
    directory, then times a cold window read (decoded-chunk cache
    cleared) against an immediately repeated warm read of the same
    window (served from the LRU).  Also checks the two equivalence
    properties the gate relies on: the windowed read matches slicing the
    full container decompression bit-exactly, and a full store scan
    matches container decompression.
    """
    import shutil
    import tempfile

    from repro import compress, decompress
    from repro.store import open_store, write_store

    data = _field(tuple(CONFIG["shape_multichunk"]))
    mode = _pwe(data)
    chunk = CONFIG["chunk"]
    tmp = tempfile.mkdtemp(prefix="repro-store-bench-")
    try:
        write_store(tmp, data, mode, chunk_shape=chunk)
        arr = open_store(tmp)
        window = tuple(
            slice(_STORE_WINDOW_OFFSET, _STORE_WINDOW_OFFSET + chunk)
            for _ in data.shape
        )
        full = decompress(compress(data, mode, chunk_shape=chunk).payload)
        # Equivalence checks run first; they double as the warm-up pass
        # (plan caches, lazy numpy state) so the cold timings below
        # measure chunk decoding, not first-touch initialisation.
        full_ok = bool(np.array_equal(np.asarray(arr.read()), full))
        window_ok = bool(
            np.array_equal(np.asarray(arr.read_window(window)), full[window])
        )
        cold_times, warm_times = [], []
        for _ in range(max(1, repeats)):
            arr.cache.clear()
            t0 = time.perf_counter()
            arr.read_window(window)
            t1 = time.perf_counter()
            arr.read_window(window)
            t2 = time.perf_counter()
            cold_times.append(t1 - t0)
            warm_times.append(t2 - t1)
        cold = statistics.median(cold_times)
        warm = statistics.median(warm_times)
        entry = {
            "cold_window_s": cold,
            "warm_window_s": warm,
            "warm_speedup": round(cold / warm, 2) if warm > 0 else float("inf"),
            "window_matches_full_decode": window_ok,
            "full_scan_matches_container": full_ok,
            "payload_bytes": arr.index.payload_bytes,
            "repeats": repeats,
        }
        print(
            f"  store/window      cold {cold * 1e3:8.1f} ms   "
            f"warm {warm * 1e3:8.3f} ms   "
            f"({entry['warm_speedup']:.0f}x, window match: {window_ok}, "
            f"full match: {full_ok})"
        )
        return entry
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


#: Calibration probe size: a fixed numpy workload (unpackbits, cumsum,
#: table gather, packbits) over this many bytes.  The probe exercises
#: the same primitive mix as the lossless kernels, so its MB/s tracks
#: how fast *this* machine runs them — letting the gate scale absolute
#: MB/s floors instead of flapping on slower CI boxes.
_CALIBRATION_BYTES = 4 << 20


def measure_calibration(repeats: int = 3) -> dict:
    """Machine-speed probe: MB/s on a fixed numpy kernel workload.

    The workload is deterministic (seeded) and dependency-free, so the
    number is comparable across commits on the same box and across boxes
    of the same class.  ``check_regression`` divides the current probe
    by the recorded one to scale the absolute lossless/zfp MB/s floors:
    a box running the probe at half speed gets half the floor.
    """
    rng = np.random.default_rng(1234)
    data = rng.integers(0, 256, size=_CALIBRATION_BYTES, dtype=np.uint8)
    table = rng.permutation(256).astype(np.uint8)
    # Warm-up, then timed repeats of the fixed kernel mix.
    times = []
    for rep in range(max(1, repeats) + 1):
        t0 = time.perf_counter()
        bits = np.unpackbits(data)
        np.cumsum(bits[: _CALIBRATION_BYTES], dtype=np.int64)
        gathered = table[data]
        np.packbits(bits)
        if int(gathered[0]) > 256:  # keep the work observable
            raise RuntimeError("unreachable")
        if rep:
            times.append(time.perf_counter() - t0)
    mbps = _CALIBRATION_BYTES / 1e6 / statistics.median(times)
    entry = {"probe_MBps": round(mbps, 2), "bytes": _CALIBRATION_BYTES}
    print(f"  calibration       probe {mbps:8.1f} MB/s")
    return entry


def measure_zfp_micro(repeats: int = 3) -> dict:
    """ZFP-like kernel throughput on the 32^3 field, both rate modes.

    ``accuracy`` drives the codec with the standard PWE bound;
    ``fixed_rate`` pins the per-block bit budget via :class:`SizeMode`
    (the mode the paper's Fig. 4 rate sweeps use).  MB/s is raw float64
    input bytes over median wall time, mirroring the lossless micro
    table, so the gate can hold an absolute floor on the one codec the
    earlier perf PRs never touched.
    """
    from repro.core.modes import SizeMode

    data = _field(tuple(CONFIG["shape_small"]))
    mb = data.nbytes / 1e6
    modes = {
        "accuracy": _pwe(data),
        "fixed_rate": SizeMode(8.0),
    }
    out = {}
    for name, mode in modes.items():
        comp = ZfpLikeCompressor()
        payload = comp.compress(data, mode)  # warm-up
        e_times, d_times = [], []
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            payload = comp.compress(data, mode)
            t1 = time.perf_counter()
            back = comp.decompress(payload)
            t2 = time.perf_counter()
            e_times.append(t1 - t0)
            d_times.append(t2 - t1)
        if back.shape != data.shape:
            raise RuntimeError("zfp micro round-trip shape mismatch")
        entry = {
            "input_bytes": data.nbytes,
            "payload_bytes": len(payload),
            "encode_MBps": round(mb / statistics.median(e_times), 2),
            "decode_MBps": round(mb / statistics.median(d_times), 2),
        }
        out[name] = entry
        print(
            f"  zfp/{name:13s} encode {entry['encode_MBps']:8.1f} MB/s   "
            f"decode {entry['decode_MBps']:8.1f} MB/s"
        )
    return out


def _adaptive_mixed_field() -> np.ndarray:
    """The smooth headline field with heavy noise on one half.

    The noisy half pushes the dispatcher's width proxy into SPERR
    territory while the smooth half stays in szx range, so an adaptive
    pass over this field must produce a genuinely mixed chunk table.
    """
    data = _field(tuple(CONFIG["shape_multichunk"])).copy()
    rng = np.random.default_rng(99)
    half = data.shape[0] // 2
    spread = float(data.max() - data.min())
    data[half:] += rng.normal(0.0, 0.5 * spread, size=data[half:].shape)
    return data


def measure_adaptive(repeats: int = 3) -> dict:
    """RD-vs-throughput for the codec policies on smooth and mixed data.

    For each (field, policy) cell this times ``compress``/``decompress``
    end to end at the same PWE bound, verifies the bound on the decoded
    output, and records payload size plus the per-chunk routing counts
    read back from the container chunk table — so the JSON shows *what*
    the dispatcher decided, not just how fast it ran.  The summary keys
    are what the gate consumes: ``fast_speedup_smooth`` (szx tier vs the
    pure SPERR path on smooth chunks, ISSUE target >= 5x) and
    ``adaptive_vs_quality`` (adaptive must never be slower than pure
    SPERR, on either field).
    """
    from repro.core import compress, decompress
    from repro.core.adaptive import CODEC_POLICIES
    from repro.core.container import parse_container

    chunk = CONFIG["chunk"]
    smooth_data = _field(tuple(CONFIG["shape_multichunk"]))
    mixed_data = _adaptive_mixed_field()
    # The smooth field runs at the headline 1e-3 relative bound.  The
    # mixed field runs 100x tighter: at 1e-3 even heavy noise stays
    # within the szx width threshold (a first difference can never
    # exceed the value range, so the width proxy is bounded by
    # ~log2(1/tol_rel)), and the point of this cell is to exercise a
    # genuine sperr/szx split in one container.
    fields = {
        "smooth": (smooth_data, _pwe(smooth_data)),
        "mixed": (
            mixed_data,
            PweMode(1e-5 * float(mixed_data.max() - mixed_data.min())),
        ),
    }
    out: dict = {}
    for fname, (data, mode) in fields.items():
        cell: dict = {}
        for policy in CODEC_POLICIES:
            result = compress(data, mode, chunk_shape=chunk, codec=policy)
            c_times, d_times = [], []
            for _ in range(max(1, repeats)):
                t0 = time.perf_counter()
                result = compress(data, mode, chunk_shape=chunk, codec=policy)
                t1 = time.perf_counter()
                back = decompress(result.payload)
                t2 = time.perf_counter()
                c_times.append(t1 - t0)
                d_times.append(t2 - t1)
            worst = float(np.max(np.abs(back - data)))
            if worst > mode.tolerance * 1.0000001:
                raise RuntimeError(
                    f"adaptive bench: {policy} on {fname} violated the bound"
                )
            parsed = parse_container(result.payload)
            tags = parsed.codec_tags
            counts = {"sperr": len(parsed.streams), "szx": 0, "stored": 0}
            if tags is not None:
                counts = {
                    "sperr": sum(1 for t in tags if t == 0),
                    "szx": sum(1 for t in tags if t == 1),
                    "stored": sum(1 for t in tags if t == 2),
                }
            cell[policy] = {
                "compress_s": statistics.median(c_times),
                "decompress_s": statistics.median(d_times),
                "payload_bytes": len(result.payload),
                "max_err_over_tol": round(worst / mode.tolerance, 4),
                "routing": counts,
            }
            print(
                f"  adaptive/{fname:7s} {policy:9s} "
                f"compress {cell[policy]['compress_s'] * 1e3:8.1f} ms   "
                f"{cell[policy]['payload_bytes']:9d} B   routing {counts}"
            )
        out[fname] = cell
    smooth = out["smooth"]
    out["fast_speedup_smooth"] = round(
        smooth["quality"]["compress_s"] / smooth["fast"]["compress_s"], 3
    )
    out["adaptive_vs_quality"] = {
        fname: round(
            out[fname]["quality"]["compress_s"]
            / out[fname]["adaptive"]["compress_s"],
            3,
        )
        for fname in fields
    }
    print(
        f"  adaptive summary: fast {out['fast_speedup_smooth']:.2f}x on smooth "
        f"(target >= 5x), adaptive-vs-quality {out['adaptive_vs_quality']}"
    )
    return out


def _plan_cache_stats() -> dict:
    """Plan-cache hit/miss counters, when the cache layer is available."""
    try:
        from repro.core import plans
    except ImportError:  # pre plan-cache trees
        return {}
    return plans.cache_stats()


def _speedups(baseline: dict, current: dict) -> dict:
    out = {}
    for name, cur in current.items():
        base = baseline.get(name)
        if not base:
            continue
        entry = {}
        for key in ("compress_s", "decompress_s", "end_to_end_s"):
            if base.get(key, 0) > 0 and cur.get(key, 0) > 0:
                entry[key.removesuffix("_s")] = round(base[key] / cur[key], 3)
        out[name] = entry
    return out


def run(argv: list[str] | None = None) -> int:
    """CLI entry point; writes BENCH_speed.json and prints the table."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="single repeat")
    parser.add_argument(
        "--rebaseline",
        action="store_true",
        help="overwrite the frozen baseline block with this run",
    )
    parser.add_argument("--label", default=None, help="label for the current block")
    args = parser.parse_args(argv)
    repeats = 1 if (args.quick or os.environ.get("REPRO_BENCH_QUICK") == "1") else 3

    print(f"bench_regression: {repeats} repeat(s) per case")
    timings = measure(repeats)
    scaling = measure_chunk_scaling(repeats)
    micro = measure_lossless_micro(repeats)
    store_micro = measure_store_micro(repeats)
    calibration = measure_calibration(repeats)
    zfp_micro = measure_zfp_micro(repeats)
    adaptive = measure_adaptive(repeats)

    doc = {}
    if BENCH_FILE.exists():
        try:
            doc = json.loads(BENCH_FILE.read_text())
        except json.JSONDecodeError:
            doc = {}
    block = {"label": args.label or "current", "cases": timings}
    if args.rebaseline or "baseline" not in doc:
        doc["baseline"] = {
            "label": args.label or "baseline",
            "cases": timings,
        }
    doc.update(
        {
            "schema": SCHEMA,
            "config": CONFIG,
            "machine": {
                "python": platform.python_version(),
                "platform": platform.platform(),
                "cpu_count": os.cpu_count(),
            },
            "current": block,
            "chunk_scaling": scaling,
            "lossless_micro": micro,
            "store_micro": store_micro,
            "calibration": calibration,
            "zfp_micro": zfp_micro,
            "adaptive": adaptive,
            "plan_cache": _plan_cache_stats(),
        }
    )
    doc["speedup_vs_baseline"] = _speedups(doc["baseline"]["cases"], timings)

    BENCH_FILE.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {BENCH_FILE}")

    head = doc["speedup_vs_baseline"].get(HEADLINE_CASE, {})
    if head:
        factor = head.get("end_to_end", 1.0)
        verdict = "OK" if factor >= HEADLINE_MIN_SPEEDUP else "BELOW TARGET"
        print(
            f"{HEADLINE_CASE}: {factor:.2f}x end-to-end vs baseline "
            f"(target >= {HEADLINE_MIN_SPEEDUP}x) [{verdict}]"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(run())
