"""Sec. VI-B detail: QMCPACK should be compressed volume by volume.

The QMCPACK file is a stack of independent 3-D orbital volumes.  The
paper configures SPERR with a chunk size equal to one orbital
(69 x 69 x 115) and notes the alternative used by the other tools — one
monolithic volume of 69 x 69 x 33120 — "is less than ideal": orbitals
are mutually uncorrelated, so transforming across the stack axis wastes
the wavelet's decorrelation.

This bench reproduces the effect at reduced scale: chunk-per-orbital
compression must beat whole-stack compression on accuracy gain.
"""

from __future__ import annotations

from common import emit, quick_mode
from repro.analysis import banner, format_table
from repro.core import PweMode, compress, decompress, tolerance_from_idx
from repro.datasets import qmcpack_orbitals
from repro.metrics import accuracy_gain


def test_qmcpack_chunk_per_orbital(benchmark):
    base = (16, 16, 24) if quick_mode() else (24, 24, 32)
    n_orbitals = 4
    stack = qmcpack_orbitals(base, n_orbitals=n_orbitals)
    mode = PweMode(tolerance_from_idx(stack, 16))

    results = {}

    def run():
        for label, chunk in (
            ("per-orbital chunks", (base[0], base[1], base[2])),
            ("monolithic stack", None),
        ):
            result = compress(stack, mode, chunk_shape=chunk)
            recon = decompress(result.payload)
            results[label] = (
                result.bpp,
                accuracy_gain(stack, recon, result.bpp),
                len(result.reports),
            )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[label, *vals] for label, vals in results.items()]
    per_orbital_gain = results["per-orbital chunks"][1]
    monolithic_gain = results["monolithic stack"][1]
    assert results["per-orbital chunks"][2] == n_orbitals
    # the paper's configuration advice: per-volume chunking wins
    assert per_orbital_gain >= monolithic_gain - 0.05

    emit(
        "qmcpack_chunking",
        banner(
            f"QMCPACK configuration study ({base} x {n_orbitals} orbitals, idx=16)"
        )
        + "\n"
        + format_table(["configuration", "bpp", "gain", "#chunks"], rows)
        + "\n(paper Sec. VI-B: per-orbital chunks are the right configuration; "
        "the monolithic layout 'is less than ideal')",
    )
