"""Ablation: SZ predictor generations (interpolation vs Lorenzo).

SZ3's headline improvement over earlier SZ versions is replacing the
Lorenzo predictor with multilevel spline interpolation (Zhao et al.,
ICDE 2021 — reference [5] of the SPERR paper), which wins chiefly at
low-to-medium bitrates.  This bench runs both predictors of our SZ-like
baseline across tolerance levels and records the gap.
"""

from __future__ import annotations

from common import emit, quick_mode
from repro.analysis import banner, format_table
from repro.compressors.szlike import SzLikeCompressor
from repro.core.modes import PweMode
from repro.datasets import miranda_pressure, nyx_dark_matter_density


def test_ablation_sz_predictor(benchmark):
    shape = (16, 16, 16) if quick_mode() else (32, 32, 32)
    fields = {
        "Miranda Pressure": miranda_pressure(shape),
        "Nyx DM Density": nyx_dark_matter_density(shape),
    }
    idx_levels = (10, 20) if quick_mode() else (10, 20, 30)

    rows = []

    def run():
        for fname, data in fields.items():
            rng = float(data.max() - data.min())
            for idx in idx_levels:
                mode = PweMode(rng / 2**idx)
                cell = [f"{fname} idx={idx}"]
                for pred in ("cubic", "linear", "lorenzo"):
                    c = SzLikeCompressor(interpolation=pred)
                    payload = c.compress(data, mode)
                    cell.append(8 * len(payload) / data.size)
                rows.append(cell)
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    cubic_wins = 0
    for row in rows:
        cubic, linear, lorenzo = row[1], row[2], row[3]
        # cubic interpolation never loses badly to either alternative
        assert cubic <= min(linear, lorenzo) * 1.15, row
        if cubic <= lorenzo:
            cubic_wins += 1
    assert cubic_wins >= len(rows) // 2

    emit(
        "ablation_predictor",
        banner(f"Ablation: SZ-like predictor, achieved BPP at tolerance ({shape})")
        + "\n"
        + format_table(["case", "cubic", "linear", "lorenzo"], rows)
        + "\n(SZ3 paper: interpolation supersedes Lorenzo, biggest wins at "
        "loose tolerances)",
    )
