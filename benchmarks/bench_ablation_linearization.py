"""Ablation: outlier linearization (Sec. IV-C design decision).

The paper flattens multi-dimensional outlier arrays to 1-D before
coding, arguing outlier positions carry no spatial correlation (Fig. 1)
so quadtree/octree partitioning would buy nothing over binary splits.
This bench codes the same outlier sets both ways — 1-D binary partition
(production path) versus native-2-D quadtree partition — and confirms
their costs are close, vindicating the simpler choice.
"""

from __future__ import annotations

import numpy as np

from common import emit, quick_mode
from repro.analysis import banner, format_table
from repro.datasets import lighthouse
from repro.quant import integerize
from repro.speck import codec as speck_codec


def test_ablation_outlier_linearization(benchmark):
    shape = (96, 144) if quick_mode() else (160, 240)
    img = lighthouse(shape)
    rng = np.random.default_rng(0)
    t = 1.0

    rows = []

    def run():
        for frac in (0.005, 0.02, 0.08):
            n_out = max(2, int(img.size * frac))
            pos = rng.choice(img.size, size=n_out, replace=False)
            corr = t * (1.0 + 3.0 * rng.random(n_out)) * np.where(
                rng.random(n_out) < 0.5, -1.0, 1.0
            )
            dense = np.zeros(img.size)
            dense[pos] = corr

            mags1, neg1 = integerize(dense, t)
            _, bits_1d, _ = speck_codec.encode(mags1, neg1)

            mags2, neg2 = integerize(dense.reshape(shape), t)
            _, bits_2d, _ = speck_codec.encode(mags2, neg2)

            rows.append(
                [
                    f"{100 * frac:.1f}%",
                    n_out,
                    bits_1d / n_out,
                    bits_2d / n_out,
                    f"{100 * (bits_2d - bits_1d) / bits_1d:+.1f}%",
                ]
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    for row in rows:
        ratio = row[3] / row[2]
        # spatially random outliers: quadtree gains (or loses) only a
        # little versus the simpler 1-D scheme
        assert 0.8 < ratio < 1.25, row

    emit(
        "ablation_linearization",
        banner(f"Ablation: 1-D vs 2-D outlier partitioning ({shape} domain, CSR outliers)")
        + "\n"
        + format_table(
            ["outlier %", "count", "1-D bits/outlier", "2-D bits/outlier", "2-D vs 1-D"],
            rows,
        )
        + "\n(paper Sec. IV-C: with no spatial correlation to exploit, "
        "linearization is the right simplification)",
    )
