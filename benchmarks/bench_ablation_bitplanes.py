"""Ablation: where SPECK's bits go, plane by plane.

Backs the Fig. 6 explanation with direct evidence: tightening the
tolerance adds *bitplanes*, and the late planes are dominated by
refinement bits of the by-then-large LSP — which is why SPECK time (and
size) grows with idx while the transform does not.
"""

from __future__ import annotations

from common import emit, quick_mode
from repro.analysis import banner, format_table
from repro.core import PweMode, compress_chunk, tolerance_from_idx
from repro.datasets import miranda_viscosity


def test_ablation_bitplane_profile(benchmark):
    shape = (16, 16, 16) if quick_mode() else (32, 32, 32)
    data = miranda_viscosity(shape)

    profiles = {}

    def run():
        for idx in (12, 24):
            _, report = compress_chunk(data, PweMode(tolerance_from_idx(data, idx)))
            profiles[idx] = report.speck_stats
        return profiles

    benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [banner(f"Ablation: SPECK bit budget per bitplane ({shape})")]
    for idx, stats in profiles.items():
        rows = []
        for i, plane in enumerate(stats.planes):
            rows.append(
                [plane, stats.sorting_bits[i], stats.sign_bits[i], stats.refinement_bits[i]]
            )
        lines.append(f"\nidx={idx} ({len(stats.planes)} planes):")
        lines.append(
            format_table(["plane", "sorting bits", "sign bits", "refinement bits"], rows)
        )

    shallow = profiles[12]
    deep = profiles[24]
    # tighter tolerance -> more planes, and more total bits
    assert len(deep.planes) > len(shallow.planes)
    assert deep.total_bits() > shallow.total_bits()
    # the last plane of a deep run is refinement-dominated (big LSP)
    assert deep.refinement_bits[-1] > deep.sign_bits[-1]

    lines.append(
        "\n(tight tolerances add planes; late planes are refinement-dominated "
        "- the mechanism behind Fig. 6's growing SPECK time)"
    )
    emit("ablation_bitplanes", "\n".join(lines))
