"""Fig. 3: Delta-BPP (top row) and Delta-PSNR (bottom row) vs q for four
fields at multiple tolerance levels.

Expected shapes: the Delta-BPP curves are U-shaped with minima mostly in
q = 1.4t..1.8t; the Delta-PSNR curves are monotonically decreasing
(more outlier coding only hurts average error), which together justify
SPERR's conservative q = 1.5t default (Sec. IV-D).
"""

from __future__ import annotations

import numpy as np

from common import emit, quick_mode
from repro.analysis import banner, format_series, q_sweep
from repro.datasets import (
    miranda_pressure,
    miranda_viscosity,
    nyx_dark_matter_density,
    nyx_velocity_x,
)


def test_fig3_q_sweep(benchmark):
    shape = (16, 16, 16) if quick_mode() else (24, 24, 24)
    fields = {
        "Miranda Viscosity": (miranda_viscosity(shape), (10, 16) if quick_mode() else (10, 16, 22)),
        "Miranda Pressure": (miranda_pressure(shape), (10, 16) if quick_mode() else (10, 16, 22)),
        "Nyx DM Density": (nyx_dark_matter_density(shape), (10, 16)),
        "Nyx X Velocity": (nyx_velocity_x(shape), (10, 16)),
    }
    q_factors = (1.0, 1.2, 1.4, 1.5, 1.6, 1.8, 2.0, 2.4, 3.0)

    results: dict[tuple[str, int], list] = {}

    def sweep_all():
        for name, (data, idx_levels) in fields.items():
            for idx in idx_levels:
                results[(name, idx)] = q_sweep(data, idx=idx, q_factors=q_factors)
        return results

    benchmark.pedantic(sweep_all, rounds=1, iterations=1)

    lines = [banner(f"Fig. 3 top: Delta-BPP vs q (relative to the per-curve minimum), {shape}")]
    sweet_spot_hits = 0
    for (name, idx), pts in results.items():
        bpp = np.array([p.total_bpp for p in pts])
        lines.append(format_series(f"{name} idx={idx}", q_factors, bpp - bpp.min()))
        if 1.2 <= q_factors[int(np.argmin(bpp))] <= 2.0:
            sweet_spot_hits += 1

    lines.append(banner("Fig. 3 bottom: Delta-PSNR vs q (relative to the per-curve minimum)"))
    for (name, idx), pts in results.items():
        psnr = np.array([p.psnr_db for p in pts])
        lines.append(format_series(f"{name} idx={idx}", q_factors, psnr - psnr.min()))
        # bottom row: monotonically decreasing (within measurement noise)
        assert all(a >= b - 0.5 for a, b in zip(psnr, psnr[1:])), (name, idx)

    # most U-curve minima fall in/near the paper's sweet-spot band
    assert sweet_spot_hits >= len(results) // 2

    emit("fig3", "\n".join(lines))
