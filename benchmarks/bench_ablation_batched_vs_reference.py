"""Ablation: batched (vectorized) SPECK vs the canonical reference coder.

DESIGN.md's one deliberate deviation from the textbook algorithm is
batch processing of each depth level.  This bench quantifies the two
facts that justify it: the bit cost is *identical* (batching only
reorders bits inside deterministic windows) and the vectorized codec is
orders of magnitude faster in Python.
"""

from __future__ import annotations

import time

import numpy as np

from common import emit, quick_mode
from repro.analysis import banner, format_table
from repro.datasets import spectral_field
from repro.quant import integerize
from repro.speck import codec as speck_codec
from repro.speck.reference import reference_encode


def test_ablation_batched_vs_reference(benchmark):
    shape = (12, 12, 12) if quick_mode() else (16, 16, 16)
    field = spectral_field(shape, slope=3.0, seed=9)
    q = float(field.max() - field.min()) / 2**12
    mags, neg = integerize(field, q)

    rows = []

    def run():
        t0 = time.perf_counter()
        _, bits_batched, _ = speck_codec.encode(mags, neg)
        t_batched = time.perf_counter() - t0
        t0 = time.perf_counter()
        _, bits_reference = reference_encode(mags, neg)
        t_reference = time.perf_counter() - t0
        rows.append(
            [
                f"{shape}",
                bits_batched,
                bits_reference,
                t_batched,
                t_reference,
                f"{t_reference / max(t_batched, 1e-9):.0f}x",
            ]
        )
        return bits_batched, bits_reference

    bits_batched, bits_reference = benchmark.pedantic(run, rounds=1, iterations=1)
    assert bits_batched == bits_reference, "batching changed the bit cost"

    emit(
        "ablation_batched",
        banner("Ablation: batched vs canonical SPECK")
        + "\n"
        + format_table(
            ["volume", "batched bits", "reference bits", "batched s", "reference s", "speedup"],
            rows,
        )
        + "\n(identical bit cost by construction; the batching exists purely "
        "for numpy vectorization)",
    )
