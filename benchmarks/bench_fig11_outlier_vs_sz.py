"""Fig. 11: outlier coding efficiency, SPERR's coder vs SZ's scheme.

Methodology reproduced from Sec. VI-E: intercept SPERR's pipeline to get
the exact outlier list, then feed the *same* list to both coders —
SPERR's set-partitioning coder, and the SZ scheme (a quantization bin
for every data point, inliers as zeros, Huffman + lossless; the QCAT
``compressQuantBins`` equivalent).

Expected shape: SPERR around 10 bits/outlier throughout; SZ consistently
costlier, usually by a 1-2 bit margin.
"""

from __future__ import annotations

import numpy as np

from common import emit, quick_mode
from repro.analysis import TABLE_II, banner, compare_outlier_coding, format_table, load_entry


def test_fig11_outlier_coding_efficiency(benchmark):
    shape = (16, 16, 16) if quick_mode() else (24, 24, 24)
    entries = TABLE_II[:3] if quick_mode() else TABLE_II

    results = []

    def run():
        for entry in entries:
            data, _ = load_entry(entry, shape=shape)
            cmp_ = compare_outlier_coding(data, entry.idx, abbrev=entry.abbrev)
            if cmp_.n_outliers > 0:
                results.append(cmp_)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    assert results, "no case produced outliers"

    rows = []
    sperr_cheaper = 0
    for r in results:
        rows.append(
            [r.abbrev, r.n_outliers, r.sperr_bits_per_outlier, r.sz_bits_per_outlier,
             r.sz_bits_per_outlier - r.sperr_bits_per_outlier]
        )
        # SPERR lands near the paper's ~10 bits/outlier
        assert 4.0 <= r.sperr_bits_per_outlier <= 18.0
        if r.sperr_bits_per_outlier <= r.sz_bits_per_outlier:
            sperr_cheaper += 1

    # paper: SPERR consistently uses fewer bits than SZ on the same list
    assert sperr_cheaper >= 0.7 * len(results)
    mean_sperr = float(np.mean([r.sperr_bits_per_outlier for r in results]))
    assert 6.0 <= mean_sperr <= 14.0

    emit(
        "fig11",
        banner(f"Fig. 11: bits per outlier, SPERR coder vs SZ scheme ({shape})")
        + "\n"
        + format_table(
            ["field-idx", "outliers", "SPERR b/outlier", "SZ b/outlier", "margin"],
            rows,
        )
        + f"\nSPERR cheaper in {sperr_cheaper}/{len(results)} cases; "
        f"mean SPERR cost {mean_sperr:.1f} bits/outlier (paper: ~10, margin 1-2 bits)",
    )
