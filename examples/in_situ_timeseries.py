"""In-situ compression of a simulation time series.

The gap between compute and storage bandwidth (the paper's opening
motivation) is most acute *in situ*: each timestep must be reduced
before the next one lands.  This example drives the bundled
advection-diffusion solver, archives every K-th step into a single
multi-frame `.sperr` time-series archive under a PWE tolerance, then
demonstrates the two reader-side capabilities the format provides:

* random access — decompress one timestep without touching the rest;
* restart — resume the solver from a decompressed checkpoint and verify
  the trajectory stays within the expected error envelope.

Run: python examples/in_situ_timeseries.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis import format_table
from repro.core import compress_frames, decompress_frame, frame_count
from repro.datasets import AdvectionDiffusion


def main() -> None:
    sim = AdvectionDiffusion((48, 48), seed=42, kappa=0.05)
    idx = 14
    steps_between_outputs = 20
    n_outputs = 6

    # --- producer side: collect snapshots ------------------------------
    frames = []
    for _ in range(n_outputs):
        sim.step(steps_between_outputs)
        frames.append(sim.state.copy())

    tolerances = [repro.tolerance_from_idx(f, idx) for f in frames]
    payload, results = compress_frames(
        frames, [repro.PweMode(t) for t in tolerances]
    )

    rows = []
    for i, (frame, result) in enumerate(zip(frames, results)):
        rows.append(
            [
                (i + 1) * steps_between_outputs,
                f"{frame.std():.4f}",
                f"{result.bpp:.2f}",
                f"{frame.nbytes / result.nbytes:.1f}x",
                result.n_outliers,
            ]
        )
    print("in-situ archive of an advection-diffusion run (PWE idx=14):\n")
    print(format_table(["step", "field std", "bpp", "ratio", "outliers"], rows))
    raw_total = sum(f.nbytes for f in frames)
    print(
        f"\narchive: {frame_count(payload)} frames in {len(payload) / 1024:.0f} KiB "
        f"({raw_total / len(payload):.1f}x vs raw)"
    )

    # --- reader side: random access + restart --------------------------
    checkpoint_index = 2
    restart_state = decompress_frame(payload, checkpoint_index)
    assert (
        np.abs(restart_state - frames[checkpoint_index]).max()
        <= tolerances[checkpoint_index]
    )

    resumed = AdvectionDiffusion((48, 48), seed=42, kappa=0.05)
    resumed.set_state(restart_state)
    resumed.step((n_outputs - 1 - checkpoint_index) * steps_between_outputs)
    drift = np.abs(resumed.state - frames[-1]).max()
    print(
        f"restart check: resuming from frame {checkpoint_index} "
        f"(checkpoint error <= {tolerances[checkpoint_index]:.2e}) drifts the "
        f"final state by {drift:.2e} - diffusion keeps the perturbation bounded"
    )


if __name__ == "__main__":
    main()
