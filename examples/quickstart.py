"""Quickstart: compress a 3-D field with a point-wise error guarantee.

Run: python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.datasets import miranda_viscosity
from repro.metrics import max_pwe, psnr


def main() -> None:
    # A synthetic turbulence field standing in for simulation output.
    data = miranda_viscosity((48, 48, 48))
    print(f"input: {data.shape} float64, {data.nbytes} bytes")

    # Pick a tolerance the way the paper labels them (Table I):
    # idx=20 means one millionth of the data range.
    tolerance = repro.tolerance_from_idx(data, idx=20)
    print(f"PWE tolerance: {tolerance:.3e}")

    # Error-bounded compression (SPERR's headline mode).
    result = repro.compress(data, repro.PweMode(tolerance))
    print(
        f"compressed: {result.nbytes} bytes "
        f"({result.bpp:.2f} bits/point, ratio {data.nbytes / result.nbytes:.1f}x), "
        f"{result.n_outliers} outliers corrected"
    )

    # Decompress and verify the guarantee.
    recon = repro.decompress(result.payload)
    err = max_pwe(data, recon)
    print(f"max point-wise error: {err:.3e}  (<= tolerance: {err <= tolerance})")
    print(f"PSNR: {psnr(data, recon):.1f} dB")
    assert err <= tolerance

    # Size-bounded compression (fixed bitrate) is one line away.
    fixed = repro.compress(data, repro.SizeMode(bpp=2.0))
    recon2 = repro.decompress(fixed.payload)
    print(
        f"\nsize-bounded at 2 bpp: achieved {fixed.bpp:.2f} bpp, "
        f"PSNR {psnr(data, recon2):.1f} dB"
    )


if __name__ == "__main__":
    main()
