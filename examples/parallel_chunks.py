"""Chunk-parallel compression of a larger volume (Sec. III-D).

Divides a volume into chunks, compresses them through the thread
executor, and reports the efficiency cost of chunking (smaller chunks
mean more wavelet boundaries and shallower transforms — the Fig. 5
trade-off) against the parallelism each chunk count enables.

Run: python examples/parallel_chunks.py
"""

from __future__ import annotations

import time

import numpy as np

import repro
from repro.analysis import format_table, lpt_makespan
from repro.datasets import miranda_density
from repro.metrics import accuracy_gain


def main() -> None:
    data = miranda_density((64, 64, 64))
    tolerance = repro.tolerance_from_idx(data, idx=12)
    mode = repro.PweMode(tolerance)

    rows = []
    for chunk in (64, 32, 16, 8):
        t0 = time.perf_counter()
        result = repro.compress(data, mode, chunk_shape=chunk, executor="thread")
        elapsed = time.perf_counter() - t0
        recon = repro.decompress(result.payload)
        assert np.abs(recon - data).max() <= tolerance
        n_chunks = len(result.reports)
        # modelled speedup on a 16-worker node for this chunking
        times = [r.timings["speck"] + r.timings["transform"] for r in result.reports]
        speedup16 = sum(times) / max(lpt_makespan(times, 16), 1e-9)
        rows.append(
            [
                f"{chunk}^3",
                n_chunks,
                f"{result.bpp:.3f}",
                f"{accuracy_gain(data, recon, result.bpp):.2f}",
                f"{elapsed:.2f}s",
                f"{min(speedup16, n_chunks):.1f}x",
            ]
        )

    print("chunk-size trade-off on a 64^3 volume (PWE idx=12):\n")
    print(
        format_table(
            ["chunk", "#chunks", "bpp", "gain", "wall time", "16-worker speedup"],
            rows,
        )
    )
    print(
        "\nbigger chunks compress better (higher gain, lower bpp); smaller"
        "\nchunks expose more parallelism - SPERR defaults to 256^3 at"
        "\nproduction scale to get both (paper Sec. V-B)."
    )


if __name__ == "__main__":
    main()
