"""Rate-distortion shoot-out on a turbulence field.

Reproduces the Fig. 8 methodology at example scale: sweep tolerance
levels on one field, run all five compressors, and print accuracy-gain
vs bitrate curves (the paper's efficiency metric, Eq. 2).

Run: python examples/turbulence_rd_study.py
"""

from __future__ import annotations

from repro.analysis import format_table, rd_sweep
from repro.compressors import (
    MgardLikeCompressor,
    SperrCompressor,
    SzLikeCompressor,
    TthreshLikeCompressor,
    ZfpLikeCompressor,
)
from repro.datasets import miranda_velocity_x


def main() -> None:
    data = miranda_velocity_x((32, 32, 32))
    idx_values = [4, 8, 12, 16, 20]
    compressors = [
        SperrCompressor(),
        SzLikeCompressor(),
        ZfpLikeCompressor(),
        TthreshLikeCompressor(),
        MgardLikeCompressor(),
    ]

    print("rate-distortion study on a Kolmogorov-spectrum velocity field\n")
    rows = []
    for comp in compressors:
        for p in rd_sweep(comp, data, idx_values):
            rows.append(
                [
                    comp.name,
                    p.idx,
                    f"{p.bpp:.2f}",
                    f"{p.psnr_db:.1f}",
                    f"{p.gain:.2f}",
                    "yes" if p.satisfied else "NO",
                ]
            )
    print(format_table(["compressor", "idx", "bpp", "PSNR dB", "gain", "bound ok"], rows))
    print(
        "\nreading: higher gain = more information inferred per stored bit;"
        "\nSPERR should lead at the tight-tolerance (high-rate) end, matching Fig. 8."
    )


if __name__ == "__main__":
    main()
