"""2-D image compression with outlier inspection (the Fig. 1 setting).

SPERR handles 2-D slices with the same pipeline as volumes (quadtree
instead of octree partitioning).  This example compresses the procedural
lighthouse test image at several tolerances and reports PSNR, SSIM, and
the outlier statistics that Fig. 1 visualizes — including the
Clark-Evans ratio showing outlier positions are spatially random, the
paper's justification for 1-D linearization.

Run: python examples/image_compression.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis import clark_evans_ratio, format_table, outlier_map
from repro.datasets import lighthouse
from repro.metrics import psnr, ssim


def main() -> None:
    img = lighthouse((192, 288))
    print(f"input image: {img.shape}, range [{img.min():.0f}, {img.max():.0f}]\n")

    rows = []
    for idx in (6, 8, 10, 12):
        tol = repro.tolerance_from_idx(img, idx)
        result = repro.compress(img, repro.PweMode(tol))
        recon = repro.decompress(result.payload)
        assert np.abs(recon - img).max() <= tol
        rows.append(
            [
                idx,
                f"{result.bpp:.2f}",
                f"{psnr(img, recon):.1f}",
                f"{ssim(img, recon):.4f}",
                f"{100 * result.n_outliers / img.size:.2f}%",
            ]
        )
    print(format_table(["idx", "bpp", "PSNR dB", "SSIM", "outliers"], rows))

    # Fig. 1: outlier maps at the paper's three q settings.
    print("\noutlier spatial statistics at idx=9 (Fig. 1 reproduction):")
    for qf in (1.3, 1.5, 1.7):
        om = outlier_map(img, idx=9, q_factor=qf)
        ce = clark_evans_ratio(om.positions, om.shape)
        print(
            f"  q = {qf}t: {om.positions.size:5d} outliers "
            f"({100 * om.fraction:5.2f}%), Clark-Evans ratio {ce:.3f} "
            "(1.0 = spatially random)"
        )
    print(
        "\nno clustering at any setting - which is why SPERR flattens outlier"
        "\narrays to 1-D before coding (paper Sec. IV-C)."
    )


if __name__ == "__main__":
    main()
