"""Domain-specific quality control: power-spectrum preservation.

The paper's evaluation uses generic metrics (accuracy gain, PSNR) and
explicitly recommends domain-specific checks before adopting a
compressor (Sec. VI-C).  For turbulence users the question is: down to
which scale does the compressed field preserve the energy spectrum?

This example compresses a Kolmogorov-like velocity field at several
tolerance levels and reports, per level, the achieved bitrate and the
fraction of the wavenumber range whose shell power survives within 10%.

Run: python examples/spectral_fidelity.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis import format_table, spectral_fidelity
from repro.datasets import miranda_velocity_x


def main() -> None:
    data = miranda_velocity_x((48, 48, 48))
    rows = []
    for idx in (4, 8, 12, 16, 20):
        tol = repro.tolerance_from_idx(data, idx)
        result = repro.compress(data, repro.PweMode(tol))
        recon = repro.decompress(result.payload)
        fid = spectral_fidelity(data, recon, nbins=16)
        rows.append(
            [
                idx,
                f"{result.bpp:.2f}",
                f"{data.nbytes / result.nbytes:.1f}x",
                f"{100 * fid.resolved_fraction(0.10):.0f}%",
                f"{fid.ratio[-1]:.3f}",
            ]
        )

    print("spectral fidelity of SPERR on a turbulence-like velocity field:\n")
    print(
        format_table(
            ["idx", "bpp", "ratio", "spectrum preserved (10%)", "Nyquist-shell power ratio"],
            rows,
        )
    )
    print(
        "\nreading: loose tolerances clip the smallest scales (power ratio at"
        "\nthe Nyquist shell < 1) while tighter ones preserve the full inertial"
        "\nrange - choose idx by the scales your analysis needs."
    )


if __name__ == "__main__":
    main()
