"""Progressive (embedded) decoding from a truncated stream.

SPECK's bitplane-by-bitplane output is *embedded*: any prefix of the
coefficient stream decodes to a valid, coarser reconstruction (paper
Sec. VII lists this as a key capability for streaming applications).
This example compresses a field once, then reconstructs from 5%, 20%,
50%, and 100% of the SPECK stream, showing quality ramping up while the
transmitted byte count shrinks.

Run: python examples/progressive_streaming.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.datasets import qmcpack_orbitals
from repro.metrics import psnr, rmse
from repro.speck import decode_coefficients, encode_coefficients
from repro.wavelets import forward, inverse


def main() -> None:
    data = qmcpack_orbitals((24, 24, 24), n_orbitals=2)
    coeffs, plan = forward(data)

    # Encode once at high precision; the receiver decides how much to read.
    q = float(np.abs(coeffs).max()) / 2**20
    stream, nbits, _, _ = encode_coefficients(coeffs, q)
    print(f"full SPECK stream: {len(stream)} bytes ({nbits / data.size:.2f} bpp)\n")

    rows = []
    for fraction in (0.05, 0.2, 0.5, 1.0):
        nb = max(8, int(nbits * fraction))
        prefix = stream[: (nb + 7) // 8]
        partial = decode_coefficients(prefix, coeffs.shape, q, nbits=nb)
        recon = inverse(partial, plan)
        rows.append(
            [
                f"{100 * fraction:.0f}%",
                len(prefix),
                f"{nb / data.size:.2f}",
                f"{rmse(data, recon):.3e}",
                f"{psnr(data, recon):.1f}",
            ]
        )
    print(format_table(["prefix", "bytes sent", "bpp", "RMSE", "PSNR dB"], rows))
    print(
        "\nevery prefix is decodable; quality improves monotonically with the"
        "\nnumber of transmitted bits - no re-encoding, one stream serves all."
    )


if __name__ == "__main__":
    main()
