"""Archiving a multi-variable climate-like data set under error control.

This mirrors the paper's motivating scenario (Sec. I): large community
data sets — e.g. the 500 TB CESM LENS archive — are written once and
read for years, so rate matters more than speed, and every variable
needs a quality guarantee that downstream scientists can rely on.

The script compresses several variables with per-variable tolerances,
verifies the guarantee on every one, and prints an archive manifest.

Run: python examples/climate_archive.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis import format_table
from repro.datasets import (
    miranda_density,
    miranda_pressure,
    miranda_velocity_x,
    s3d_temperature,
)
from repro.metrics import max_pwe, psnr, ssim

#: variable name -> (generator, tolerance label idx)
VARIABLES = {
    "pressure": (miranda_pressure, 20),
    "temperature": (s3d_temperature, 20),
    "density": (miranda_density, 24),
    "u_velocity": (miranda_velocity_x, 16),
}

SHAPE = (48, 48, 48)
CHUNK = 24  # chunked for parallel decompression by downstream readers


def main() -> None:
    rows = []
    total_in = 0
    total_out = 0
    for name, (gen, idx) in VARIABLES.items():
        data = gen(SHAPE)
        tolerance = repro.tolerance_from_idx(data, idx)
        result = repro.compress(
            data, repro.PweMode(tolerance), chunk_shape=CHUNK, executor="thread"
        )
        recon = repro.decompress(result.payload)
        err = max_pwe(data, recon)
        assert err <= tolerance, f"guarantee violated for {name}"
        rows.append(
            [
                name,
                idx,
                f"{data.nbytes / result.nbytes:.1f}x",
                f"{result.bpp:.2f}",
                f"{psnr(data, recon):.1f}",
                f"{ssim(data, recon, window=5):.5f}",
                result.n_outliers,
            ]
        )
        total_in += data.nbytes
        total_out += result.nbytes

    print("archive manifest (every variable satisfies its PWE tolerance):\n")
    print(
        format_table(
            ["variable", "idx", "ratio", "bpp", "PSNR dB", "SSIM", "outliers"], rows
        )
    )
    print(
        f"\narchive total: {total_in / 1e6:.1f} MB -> {total_out / 1e6:.2f} MB "
        f"({total_in / total_out:.1f}x reduction)"
    )


if __name__ == "__main__":
    main()
