"""Outlier location and coding (paper Sec. IV, Listings 1-3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidArgumentError
from repro.outlier import (
    OutlierCoder,
    decode_outliers,
    encode_outliers,
    locate_outliers,
)


class TestLocateOutliers:
    def test_finds_violations_only(self):
        orig = np.array([0.0, 1.0, 2.0, 3.0])
        rec = np.array([0.05, 1.0, 2.5, 2.8])
        pos, corr = locate_outliers(orig, rec, tolerance=0.1)
        assert pos.tolist() == [2, 3]
        np.testing.assert_allclose(corr, [-0.5, 0.2])

    def test_boundary_not_an_outlier(self):
        """|err| == t is within tolerance (strict > in the definition)."""
        orig = np.array([1.0])
        rec = np.array([0.9])
        pos, _ = locate_outliers(orig, rec, tolerance=0.1)
        assert pos.size == 0

    def test_multidimensional_flattening(self):
        orig = np.zeros((4, 4))
        rec = np.zeros((4, 4))
        rec[2, 3] = 1.0
        pos, corr = locate_outliers(orig, rec, 0.5)
        assert pos.tolist() == [2 * 4 + 3]
        np.testing.assert_allclose(corr, [-1.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidArgumentError):
            locate_outliers(np.zeros(3), np.zeros(4), 0.1)

    def test_invalid_tolerance_rejected(self):
        with pytest.raises(InvalidArgumentError):
            locate_outliers(np.zeros(3), np.zeros(3), 0.0)


class TestOutlierCoder:
    def test_round_trip_positions_exact(self, rng):
        n = 1000
        t = 0.01
        pos = np.sort(rng.choice(n, size=40, replace=False))
        corr = (rng.random(40) * 2 + 1.01) * t * np.where(rng.random(40) < 0.5, -1, 1)
        enc = OutlierCoder(n, t).encode(pos, corr)
        dpos, dcorr = OutlierCoder(n, t).decode(enc.stream, nbits=enc.nbits)
        assert np.array_equal(dpos, pos)
        assert np.abs(dcorr - corr).max() <= t / 2 + 1e-15

    def test_correction_error_within_half_tolerance(self, rng):
        """Listing 1 terminates at thrd = t, leaving at most t/2 error."""
        n = 4096
        t = 3.7e-4  # arbitrary non power-of-two tolerance
        k = 200
        pos = rng.choice(n, size=k, replace=False)
        corr = rng.standard_normal(k) * 50 * t
        corr[np.abs(corr) <= t] = 1.5 * t  # ensure all are genuine outliers
        enc = encode_outliers(pos, corr, n, t)
        dpos, dcorr = decode_outliers(enc.stream, n, t, nbits=enc.nbits)
        lookup = dict(zip(dpos.tolist(), dcorr.tolist()))
        for p, c in zip(pos.tolist(), corr.tolist()):
            assert p in lookup
            assert abs(lookup[p] - c) <= t / 2 * (1 + 1e-9)

    def test_apply_corrections_in_place(self, rng):
        n = 256
        t = 0.05
        recon = rng.standard_normal(n)
        truth = recon.copy()
        pos = np.array([3, 77, 200])
        corr = np.array([10 * t, -4 * t, 2 * t])
        truth[pos] += corr
        enc = encode_outliers(pos, truth[pos] - recon[pos], n, t)
        coder = OutlierCoder(n, t)
        coder.apply(recon, enc.stream, nbits=enc.nbits)
        assert np.abs(recon - truth).max() <= t / 2 * (1 + 1e-9)

    def test_no_outliers_edge_case(self):
        enc = OutlierCoder(100, 0.1).encode(np.zeros(0), np.zeros(0))
        assert enc.n_outliers == 0
        assert enc.bits_per_outlier == 0.0
        pos, corr = OutlierCoder(100, 0.1).decode(enc.stream, nbits=enc.nbits)
        assert pos.size == 0

    def test_single_outlier(self):
        enc = OutlierCoder(64, 0.5).encode(np.array([13]), np.array([7.3]))
        pos, corr = OutlierCoder(64, 0.5).decode(enc.stream, nbits=enc.nbits)
        assert pos.tolist() == [13]
        assert abs(corr[0] - 7.3) <= 0.25 * (1 + 1e-9)

    def test_bits_per_outlier_reasonable(self, rng):
        """Sec. V-A: the cost is mostly 6-16 bits per outlier."""
        n = 64 * 64 * 64
        t = 1.0
        k = int(n * 0.01)  # ~1% outliers, typical at q = 1.5t
        pos = rng.choice(n, size=k, replace=False)
        corr = (1.0 + rng.random(k)) * t * np.where(rng.random(k) < 0.5, -1, 1)
        enc = encode_outliers(pos, corr, n, t)
        assert 4.0 <= enc.bits_per_outlier <= 18.0

    def test_duplicate_positions_rejected(self):
        with pytest.raises(InvalidArgumentError):
            OutlierCoder(10, 0.1).encode(np.array([1, 1]), np.array([1.0, 2.0]))

    def test_out_of_range_position_rejected(self):
        with pytest.raises(InvalidArgumentError):
            OutlierCoder(10, 0.1).encode(np.array([10]), np.array([1.0]))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(InvalidArgumentError):
            OutlierCoder(10, 0.1).encode(np.array([1, 2]), np.array([1.0]))

    def test_invalid_domain_or_tolerance(self):
        with pytest.raises(InvalidArgumentError):
            OutlierCoder(0, 0.1)
        with pytest.raises(InvalidArgumentError):
            OutlierCoder(10, -1.0)

    def test_reconstruction_length_mismatch_rejected(self):
        coder = OutlierCoder(10, 0.1)
        enc = coder.encode(np.array([1]), np.array([1.0]))
        with pytest.raises(InvalidArgumentError):
            coder.apply(np.zeros(5), enc.stream, nbits=enc.nbits)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=4, max_value=2000),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.floats(min_value=1e-6, max_value=10.0),
)
def test_outlier_guarantee_property(n, seed, t):
    """For arbitrary outlier sets the decoded corrections always land
    within t/2 of the truth and every position is recovered exactly."""
    g = np.random.default_rng(seed)
    k = g.integers(1, max(2, n // 4))
    pos = g.choice(n, size=k, replace=False)
    magnitude = t * (1.0 + g.random(k) * 100.0)
    corr = magnitude * np.where(g.random(k) < 0.5, -1.0, 1.0)
    enc = encode_outliers(pos, corr, n, t)
    dpos, dcorr = decode_outliers(enc.stream, n, t, nbits=enc.nbits)
    assert np.array_equal(np.sort(dpos), np.sort(pos))
    order = np.argsort(dpos)
    order_in = np.argsort(pos)
    assert np.abs(dcorr[order] - corr[order_in]).max() <= t / 2 * (1 + 1e-9) + 1e-15
