"""The embedded-stream property, exhaustively.

Any prefix of a SPECK stream must decode to a valid reconstruction, and
quality must be monotone in prefix length — the property behind SPERR's
size-bounded mode, post-hoc truncation, and streaming use cases
(Sec. VII).  These tests cut streams at hostile positions: byte
boundaries, mid-batch, inside the header, one bit short of complete.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import spectral_field
from repro.quant import integerize
from repro.speck import decode, decode_coefficients, encode, encode_coefficients


@pytest.fixture(scope="module")
def stream_case():
    field = spectral_field((16, 16, 16), slope=2.5, seed=31)
    q = float(field.max() - field.min()) / 2**12
    stream, nbits, _, recon = encode_coefficients(field, q)
    return field, q, stream, nbits, recon


class TestPrefixDecoding:
    def test_every_byte_boundary_decodes(self, stream_case):
        field, q, stream, nbits, _ = stream_case
        for nbytes in range(2, len(stream), max(1, len(stream) // 40)):
            nb = min(nbits, nbytes * 8)
            out = decode_coefficients(stream[:nbytes], field.shape, q, nbits=nb)
            assert out.shape == field.shape
            assert np.all(np.isfinite(out))

    def test_arbitrary_bit_positions_decode(self, stream_case):
        field, q, stream, nbits, _ = stream_case
        rng = np.random.default_rng(0)
        for nb in rng.integers(9, nbits, size=25).tolist():
            out = decode_coefficients(
                stream[: (nb + 7) // 8], field.shape, q, nbits=nb
            )
            assert np.all(np.isfinite(out))

    def test_one_bit_short_of_complete(self, stream_case):
        field, q, stream, nbits, recon = stream_case
        out = decode_coefficients(stream, field.shape, q, nbits=nbits - 1)
        # at most a handful of values can differ from the full decode
        diff = np.count_nonzero(out != recon)
        assert diff <= 4

    def test_header_only_prefix_decodes_to_zero(self, stream_case):
        field, q, stream, _, _ = stream_case
        out = decode_coefficients(stream[:1], field.shape, q, nbits=8)
        assert np.all(out == 0)

    def test_rmse_monotone_dense_sampling(self, stream_case):
        field, q, stream, nbits, _ = stream_case
        prev = np.inf
        for frac in np.linspace(0.02, 1.0, 15):
            nb = max(8, int(nbits * frac))
            out = decode_coefficients(
                stream[: (nb + 7) // 8], field.shape, q, nbits=nb
            )
            rmse = float(np.sqrt(np.mean((out - field) ** 2)))
            assert rmse <= prev * 1.002  # tiny slack for plateau jitter
            prev = rmse

    def test_nbits_none_reads_whole_buffer(self, stream_case):
        field, q, stream, nbits, recon = stream_case
        # without an explicit bit count, trailing pad bits of the final
        # byte are consumed as stream bits; the result must still be a
        # valid reconstruction (the decoder treats them as extra data)
        out = decode_coefficients(stream, field.shape, q)
        assert np.all(np.isfinite(out))


class TestBudgetedEncoding:
    @pytest.mark.parametrize("budget", [64, 500, 5000, 50_000])
    def test_budget_respected_and_decodable(self, budget):
        g = np.random.default_rng(7)
        mags = g.integers(0, 4000, size=(12, 12, 12)).astype(np.uint64)
        neg = g.random((12, 12, 12)) < 0.5
        stream, nbits, _ = encode(mags, neg, max_bits=budget)
        assert nbits <= budget
        rec, _ = decode(stream, (12, 12, 12), nbits=nbits)
        assert np.all(np.isfinite(rec))
        assert np.all(rec <= mags.max() + 1)

    def test_budget_larger_than_stream_is_harmless(self):
        g = np.random.default_rng(8)
        mags = g.integers(0, 8, size=(6, 6)).astype(np.uint64)
        neg = np.zeros((6, 6), dtype=bool)
        full, full_bits, _ = encode(mags, neg)
        capped, capped_bits, _ = encode(mags, neg, max_bits=10**9)
        assert capped == full and capped_bits == full_bits

    def test_more_budget_never_hurts(self):
        g = np.random.default_rng(9)
        field = spectral_field((12, 12), slope=2.0, seed=9)
        q = float(field.max() - field.min()) / 2**14
        prev_rmse = np.inf
        for budget in (200, 1000, 5000, 20000):
            stream, nbits, _, _ = encode_coefficients(field, q, max_bits=budget)
            out = decode_coefficients(stream, field.shape, q, nbits=nbits)
            rmse = float(np.sqrt(np.mean((out - field) ** 2)))
            assert rmse <= prev_rmse * 1.002
            prev_rmse = rmse


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    frac=st.floats(min_value=0.01, max_value=0.99),
)
def test_any_prefix_is_valid_property(seed, frac):
    g = np.random.default_rng(seed)
    mags = g.integers(0, 100, size=(8, 8)).astype(np.uint64)
    neg = g.random((8, 8)) < 0.5
    stream, nbits, _ = encode(mags, neg)
    nb = max(8, int(nbits * frac))
    rec, _ = decode(stream[: (nb + 7) // 8], (8, 8), nbits=nb)
    assert np.all(np.isfinite(rec))
    # a value discovered at plane n reconstructs at the center of
    # [2^n, 2^{n+1}), so a partial decode can overshoot the truth by at
    # most 50% (plus the final half-step)
    assert np.all(rec <= 1.5 * mags.astype(np.float64) + 0.5 + 1e-9)
    # and zero-magnitude positions never become significant
    assert np.all(rec[mags == 0] == 0)
