"""Decoded-chunk cache: LRU semantics, byte budget, and thread safety.

Pins the two properties the store's warm path rests on:

* the cache never holds more than its byte budget, even while a thread
  pool hammers overlapping windows through one shared cache;
* the obs counters reconcile exactly — every requested chunk is either a
  cache hit or a miss, and every miss is decoded exactly once per read
  (``hits + misses == requested`` and ``misses == decoded``), under
  concurrency included.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import decompress, obs
from repro.core.modes import PweMode
from repro.errors import InvalidArgumentError
from repro.store import DecodedChunkCache, open_store, write_store


def _arr(n, fill):
    return np.full(n // 8, float(fill), dtype=np.float64)  # nbytes == n


class TestLruSemantics:
    def test_hit_miss_and_readonly(self):
        cache = DecodedChunkCache(1024)
        assert cache.get("a") is None
        a = _arr(256, 1.0)
        assert cache.put("a", a)
        hit = cache.get("a")
        assert hit is a and not hit.flags.writeable
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_budget_enforced_lru_order(self):
        cache = DecodedChunkCache(1024)
        for key in "abcd":  # 4 x 256 bytes == budget exactly
            cache.put(key, _arr(256, 0))
        assert len(cache) == 4 and cache.nbytes == 1024
        cache.get("a")  # refresh "a" -> "b" is now LRU
        cache.put("e", _arr(256, 0))
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.nbytes <= 1024
        assert cache.stats()["evictions"] == 1

    def test_replace_same_key_accounts_bytes(self):
        cache = DecodedChunkCache(1024)
        cache.put("a", _arr(256, 0))
        cache.put("a", _arr(512, 0))
        assert len(cache) == 1 and cache.nbytes == 512

    def test_oversized_entry_rejected(self):
        cache = DecodedChunkCache(100)
        assert not cache.put("big", _arr(256, 0))
        assert len(cache) == 0

    def test_disabled_cache(self):
        cache = DecodedChunkCache(0)
        assert not cache.enabled
        assert not cache.put("a", _arr(256, 0))
        assert cache.get("a") is None

    def test_negative_budget_rejected(self):
        with pytest.raises(InvalidArgumentError):
            DecodedChunkCache(-1)

    def test_clear(self):
        cache = DecodedChunkCache(1024)
        cache.put("a", _arr(256, 0))
        cache.clear()
        assert len(cache) == 0 and cache.nbytes == 0


@pytest.fixture(scope="module")
def small_store(tmp_path_factory):
    path = tmp_path_factory.mktemp("cache_store") / "st"
    rng = np.random.default_rng(9)
    x, y, z = np.meshgrid(*[np.linspace(0, 2, 32)] * 3, indexing="ij")
    data = (np.sin(3 * x) * np.cos(2 * y) + 0.2 * z).astype(np.float32)
    result = write_store(path, data, PweMode(1e-3), chunk_shape=8)
    return path, decompress(result.payload)


class TestConcurrentReaders:
    def test_budget_respected_under_hammering(self, small_store):
        path, full = small_store
        # Budget holds ~4 decoded 8^3 float64 chunks (4 KiB each) while
        # the store has 64 — constant eviction pressure.
        budget = 4 * 8**3 * 8
        arr = open_store(path, cache_bytes=budget)
        rng = np.random.default_rng(0)
        windows = []
        for _ in range(40):
            lo = rng.integers(0, 24, size=3)
            hi = lo + rng.integers(4, 9, size=3)
            windows.append(tuple(slice(int(a), int(b)) for a, b in zip(lo, hi)))
        over_budget = []
        errors = []
        stop = threading.Event()

        def watch():
            while not stop.is_set():
                n = arr.cache.nbytes
                if n > budget:
                    over_budget.append(n)

        def reader(seed):
            r = np.random.default_rng(seed)
            try:
                for _ in range(12):
                    w = windows[int(r.integers(0, len(windows)))]
                    if not np.array_equal(arr.read_window(w), full[w]):
                        errors.append(f"mismatch on {w}")
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(repr(exc))

        watcher = threading.Thread(target=watch)
        watcher.start()
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(reader, range(8)))
        stop.set()
        watcher.join()
        assert not errors
        assert not over_budget, f"cache exceeded budget: {max(over_budget)}"
        assert arr.cache.nbytes <= budget
        assert arr.cache.stats()["evictions"] > 0

    def test_counters_reconcile_under_concurrency(self, small_store):
        path, full = small_store
        arr = open_store(path)
        windows = [
            (slice(0, 16), slice(0, 16), slice(0, 16)),
            (slice(8, 24), slice(8, 24), slice(8, 24)),
            (slice(4, 28), slice(0, 8), slice(16, 32)),
            (slice(0, 32), slice(24, 32), slice(0, 8)),
        ]
        with obs.trace("t") as tracer:
            with ThreadPoolExecutor(max_workers=4) as pool:
                results = list(
                    pool.map(lambda w: arr.read_window(w), windows * 3)
                )
        for w, got in zip(windows * 3, results):
            assert np.array_equal(got, full[w])
        c = tracer.report().counters
        requested = c["store.chunks.requested"]
        hits = c.get("store.cache.hits", 0)
        misses = c.get("store.cache.misses", 0)
        decoded = c.get("store.chunks.decoded", 0)
        assert hits + misses == requested
        assert misses == decoded
        # repeat traffic must have produced real hits
        assert hits > 0

    def test_cache_disabled_never_decodes_stale(self, small_store):
        path, full = small_store
        arr = open_store(path, cache_bytes=0)
        with obs.trace("t") as tracer:
            arr.read_window((slice(0, 8),) * 3)
            arr.read_window((slice(0, 8),) * 3)
        c = tracer.report().counters
        assert c.get("store.cache.hits", 0) == 0
        assert c["store.cache.misses"] == c["store.chunks.requested"] == 2
        assert c["store.chunks.decoded"] == 2


class TestTenantCacheBudget:
    """Per-tenant quotas, eviction order, and the isolation guarantee."""

    def _budget(self, **kw):
        from repro.store import TenantCacheBudget

        return TenantCacheBudget(**kw)

    def test_tenants_do_not_share_keys(self):
        budget = self._budget(max_bytes=4096)
        a, b = _arr(256, 1.0), _arr(256, 2.0)
        assert budget.put("t1", "k", a)
        assert budget.put("t2", "k", b)
        assert budget.get("t1", "k") is a
        assert budget.get("t2", "k") is b
        assert budget.nbytes == 512

    def test_quota_evicts_own_lru_first(self):
        budget = self._budget(max_bytes=4096, default_quota=512)
        budget.put("t", "a", _arr(256, 0))
        budget.put("t", "b", _arr(256, 0))
        budget.get("t", "a")  # refresh: "b" becomes this tenant's LRU
        budget.put("t", "c", _arr(256, 0))
        assert budget.get("t", "b") is None
        assert budget.get("t", "a") is not None
        assert budget.get("t", "c") is not None
        assert budget.stats()["tenants"]["t"]["evictions"] == 1

    def test_oversized_entry_not_cached(self):
        budget = self._budget(max_bytes=4096, default_quota=256)
        assert not budget.put("t", "big", _arr(512, 0))
        assert budget.get("t", "big") is None
        assert budget.nbytes == 0

    def test_replace_same_key_reaccounts_bytes(self):
        budget = self._budget(max_bytes=4096, default_quota=1024)
        budget.put("t", "k", _arr(256, 0))
        budget.put("t", "k", _arr(512, 0))
        stats = budget.stats()["tenants"]["t"]
        assert stats["entries"] == 1 and stats["nbytes"] == 512

    def test_within_quota_tenant_survives_anothers_flood(self):
        # Quotas sum to the ceiling: the protective guarantee must hold.
        budget = self._budget(max_bytes=1024, default_quota=512)
        for key in ("a1", "a2"):  # tenant A fills its quota exactly
            budget.put("alice", key, _arr(256, 1.0))
        for i in range(20):  # tenant B floods far past its own quota
            budget.put("bob", f"b{i}", _arr(256, 2.0))
        assert budget.get("alice", "a1") is not None
        assert budget.get("alice", "a2") is not None
        stats = budget.stats()["tenants"]
        assert stats["alice"]["evictions"] == 0
        assert stats["bob"]["evictions"] > 0
        assert stats["bob"]["nbytes"] <= 512
        assert budget.nbytes <= 1024

    def test_ceiling_evicts_over_quota_tenants_first(self):
        # Quotas oversubscribe the ceiling; "greedy" is over quota while
        # "modest" is within its own -- greedy must lose first.
        budget = self._budget(
            max_bytes=1024, quotas={"modest": 512, "greedy": 768}
        )
        budget.put("modest", "m1", _arr(256, 0))
        budget.put("greedy", "g1", _arr(256, 0))
        budget.put("greedy", "g2", _arr(256, 0))
        budget.put("greedy", "g3", _arr(256, 0))  # greedy: 768 == quota
        # Ceiling now binds (1024 resident + 256 incoming): greedy goes
        # over quota with this insert and must evict its own oldest.
        budget.put("greedy", "g4", _arr(256, 0))
        assert budget.get("modest", "m1") is not None
        assert budget.get("greedy", "g1") is None
        assert budget.nbytes <= 1024

    def test_ceiling_falls_back_to_global_lru_when_all_within_quota(self):
        # Both tenants within quota but the ceiling is oversubscribed:
        # the globally oldest entry loses, whoever owns it.
        budget = self._budget(max_bytes=512, default_quota=512)
        budget.put("t1", "old", _arr(256, 0))
        budget.put("t2", "mid", _arr(256, 0))
        budget.put("t1", "new", _arr(256, 0))
        assert budget.get("t1", "old") is None  # globally oldest evicted
        assert budget.get("t2", "mid") is not None
        assert budget.get("t1", "new") is not None

    def test_hit_refreshes_against_global_lru(self):
        budget = self._budget(max_bytes=512, default_quota=512)
        budget.put("t1", "a", _arr(256, 0))
        budget.put("t2", "b", _arr(256, 0))
        budget.get("t1", "a")  # refresh: t2's entry is now globally LRU
        budget.put("t1", "c", _arr(256, 0))
        assert budget.get("t2", "b") is None
        assert budget.get("t1", "a") is not None

    def test_zero_quota_disables_one_tenant_only(self):
        budget = self._budget(max_bytes=4096, quotas={"cold": 0})
        assert not budget.put("cold", "k", _arr(256, 0))
        assert budget.put("warm", "k", _arr(256, 0))
        assert not budget.view("cold").enabled
        assert budget.view("warm").enabled

    def test_invalid_configuration_rejected(self):
        from repro.store import TenantCacheBudget

        with pytest.raises(InvalidArgumentError):
            TenantCacheBudget(-1)
        with pytest.raises(InvalidArgumentError):
            TenantCacheBudget(1024, default_quota=-1)
        with pytest.raises(InvalidArgumentError):
            TenantCacheBudget(1024, quotas={"t": -5})

    def test_clear_keeps_quotas_and_counters(self):
        budget = self._budget(max_bytes=4096, quotas={"t": 512})
        budget.put("t", "k", _arr(256, 0))
        budget.get("t", "k")
        budget.clear()
        assert budget.nbytes == 0
        assert budget.get("t", "k") is None
        stats = budget.stats()["tenants"]["t"]
        assert stats["hits"] == 1 and stats["quota"] == 512


class TestTenantCacheView:
    def test_view_is_cache_override_compatible(self, small_store):
        """A TenantCacheView plugged into read_window behaves as a cache."""
        from repro.store import TenantCacheBudget

        path, full = small_store
        arr = open_store(path, cache_bytes=0)
        budget = TenantCacheBudget(1 << 20)
        view = budget.view("tenant")
        window = (slice(0, 16),) * 3
        with obs.trace("t") as tracer:
            first = arr.read_window(window, cache=view)
            second = arr.read_window(window, cache=view)
        assert np.array_equal(first, full[window])
        assert np.array_equal(second, full[window])
        c = tracer.report().counters
        assert c["store.chunks.decoded"] == c["store.cache.misses"]
        assert c.get("store.cache.hits", 0) > 0  # warm pass hit the view
        assert budget.stats()["tenants"]["tenant"]["entries"] > 0

    def test_view_arrays_are_readonly(self):
        from repro.store import TenantCacheBudget

        view = TenantCacheBudget(4096).view("t")
        arr = _arr(256, 3.0)
        assert view.put("k", arr)
        hit = view.get("k")
        assert hit is arr and not hit.flags.writeable
        stats = view.stats()
        assert stats["entries"] == 1 and stats["max_bytes"] == 4096

    def test_empty_view_stats(self):
        from repro.store import TenantCacheBudget

        view = TenantCacheBudget(4096, quotas={"q": 128}).view("q")
        stats = view.stats()
        assert stats["entries"] == 0 and stats["quota"] == 128
