"""Decoded-chunk cache: LRU semantics, byte budget, and thread safety.

Pins the two properties the store's warm path rests on:

* the cache never holds more than its byte budget, even while a thread
  pool hammers overlapping windows through one shared cache;
* the obs counters reconcile exactly — every requested chunk is either a
  cache hit or a miss, and every miss is decoded exactly once per read
  (``hits + misses == requested`` and ``misses == decoded``), under
  concurrency included.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import decompress, obs
from repro.core.modes import PweMode
from repro.errors import InvalidArgumentError
from repro.store import DecodedChunkCache, open_store, write_store


def _arr(n, fill):
    return np.full(n // 8, float(fill), dtype=np.float64)  # nbytes == n


class TestLruSemantics:
    def test_hit_miss_and_readonly(self):
        cache = DecodedChunkCache(1024)
        assert cache.get("a") is None
        a = _arr(256, 1.0)
        assert cache.put("a", a)
        hit = cache.get("a")
        assert hit is a and not hit.flags.writeable
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_budget_enforced_lru_order(self):
        cache = DecodedChunkCache(1024)
        for key in "abcd":  # 4 x 256 bytes == budget exactly
            cache.put(key, _arr(256, 0))
        assert len(cache) == 4 and cache.nbytes == 1024
        cache.get("a")  # refresh "a" -> "b" is now LRU
        cache.put("e", _arr(256, 0))
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.nbytes <= 1024
        assert cache.stats()["evictions"] == 1

    def test_replace_same_key_accounts_bytes(self):
        cache = DecodedChunkCache(1024)
        cache.put("a", _arr(256, 0))
        cache.put("a", _arr(512, 0))
        assert len(cache) == 1 and cache.nbytes == 512

    def test_oversized_entry_rejected(self):
        cache = DecodedChunkCache(100)
        assert not cache.put("big", _arr(256, 0))
        assert len(cache) == 0

    def test_disabled_cache(self):
        cache = DecodedChunkCache(0)
        assert not cache.enabled
        assert not cache.put("a", _arr(256, 0))
        assert cache.get("a") is None

    def test_negative_budget_rejected(self):
        with pytest.raises(InvalidArgumentError):
            DecodedChunkCache(-1)

    def test_clear(self):
        cache = DecodedChunkCache(1024)
        cache.put("a", _arr(256, 0))
        cache.clear()
        assert len(cache) == 0 and cache.nbytes == 0


@pytest.fixture(scope="module")
def small_store(tmp_path_factory):
    path = tmp_path_factory.mktemp("cache_store") / "st"
    rng = np.random.default_rng(9)
    x, y, z = np.meshgrid(*[np.linspace(0, 2, 32)] * 3, indexing="ij")
    data = (np.sin(3 * x) * np.cos(2 * y) + 0.2 * z).astype(np.float32)
    result = write_store(path, data, PweMode(1e-3), chunk_shape=8)
    return path, decompress(result.payload)


class TestConcurrentReaders:
    def test_budget_respected_under_hammering(self, small_store):
        path, full = small_store
        # Budget holds ~4 decoded 8^3 float64 chunks (4 KiB each) while
        # the store has 64 — constant eviction pressure.
        budget = 4 * 8**3 * 8
        arr = open_store(path, cache_bytes=budget)
        rng = np.random.default_rng(0)
        windows = []
        for _ in range(40):
            lo = rng.integers(0, 24, size=3)
            hi = lo + rng.integers(4, 9, size=3)
            windows.append(tuple(slice(int(a), int(b)) for a, b in zip(lo, hi)))
        over_budget = []
        errors = []
        stop = threading.Event()

        def watch():
            while not stop.is_set():
                n = arr.cache.nbytes
                if n > budget:
                    over_budget.append(n)

        def reader(seed):
            r = np.random.default_rng(seed)
            try:
                for _ in range(12):
                    w = windows[int(r.integers(0, len(windows)))]
                    if not np.array_equal(arr.read_window(w), full[w]):
                        errors.append(f"mismatch on {w}")
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(repr(exc))

        watcher = threading.Thread(target=watch)
        watcher.start()
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(reader, range(8)))
        stop.set()
        watcher.join()
        assert not errors
        assert not over_budget, f"cache exceeded budget: {max(over_budget)}"
        assert arr.cache.nbytes <= budget
        assert arr.cache.stats()["evictions"] > 0

    def test_counters_reconcile_under_concurrency(self, small_store):
        path, full = small_store
        arr = open_store(path)
        windows = [
            (slice(0, 16), slice(0, 16), slice(0, 16)),
            (slice(8, 24), slice(8, 24), slice(8, 24)),
            (slice(4, 28), slice(0, 8), slice(16, 32)),
            (slice(0, 32), slice(24, 32), slice(0, 8)),
        ]
        with obs.trace("t") as tracer:
            with ThreadPoolExecutor(max_workers=4) as pool:
                results = list(
                    pool.map(lambda w: arr.read_window(w), windows * 3)
                )
        for w, got in zip(windows * 3, results):
            assert np.array_equal(got, full[w])
        c = tracer.report().counters
        requested = c["store.chunks.requested"]
        hits = c.get("store.cache.hits", 0)
        misses = c.get("store.cache.misses", 0)
        decoded = c.get("store.chunks.decoded", 0)
        assert hits + misses == requested
        assert misses == decoded
        # repeat traffic must have produced real hits
        assert hits > 0

    def test_cache_disabled_never_decodes_stale(self, small_store):
        path, full = small_store
        arr = open_store(path, cache_bytes=0)
        with obs.trace("t") as tracer:
            arr.read_window((slice(0, 8),) * 3)
            arr.read_window((slice(0, 8),) * 3)
        c = tracer.report().counters
        assert c.get("store.cache.hits", 0) == 0
        assert c["store.cache.misses"] == c["store.chunks.requested"] == 2
        assert c["store.chunks.decoded"] == 2
