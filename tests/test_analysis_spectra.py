"""Power-spectrum analysis helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import radial_power_spectrum, spectral_fidelity
from repro.datasets import spectral_field
from repro.errors import InvalidArgumentError


class TestRadialSpectrum:
    def test_slope_recovered(self):
        """A k^-s field's shell spectrum must decay with roughly slope -s."""
        f = spectral_field((64, 64), slope=3.0, seed=2)
        k, p = radial_power_spectrum(f, nbins=12)
        mask = (k > 2) & (p > 0)
        slope = np.polyfit(np.log(k[mask]), np.log(p[mask]), 1)[0]
        assert -4.0 < slope < -2.0

    def test_white_noise_is_flat(self, rng):
        f = rng.standard_normal((64, 64))
        k, p = radial_power_spectrum(f, nbins=10)
        assert p.max() / p.min() < 3.0

    def test_single_mode_concentrates(self):
        n = 64
        g = np.arange(n)
        f = np.sin(2 * np.pi * 8 * g / n)[:, None] * np.ones(n)[None, :]
        k, p = radial_power_spectrum(f, nbins=16)
        assert k[np.argmax(p)] == pytest.approx(8, abs=2)

    def test_mean_removed(self):
        f = np.full((32, 32), 100.0)
        _, p = radial_power_spectrum(f)
        assert p.max() == 0.0

    def test_3d_supported(self):
        f = spectral_field((24, 24, 24), slope=2.0, seed=1)
        k, p = radial_power_spectrum(f)
        assert k.size == p.size > 0

    def test_empty_rejected(self):
        with pytest.raises(InvalidArgumentError):
            radial_power_spectrum(np.zeros(0))


class TestSpectralFidelity:
    def test_identical_fields(self):
        f = spectral_field((32, 32), slope=2.5, seed=4)
        fid = spectral_fidelity(f, f)
        np.testing.assert_allclose(fid.ratio, 1.0)
        assert fid.resolved_fraction() == 1.0

    def test_smoothed_field_loses_high_k(self):
        from scipy.ndimage import gaussian_filter

        f = spectral_field((64, 64), slope=1.5, seed=5)
        smooth = gaussian_filter(f, 2.0)
        fid = spectral_fidelity(f, smooth, nbins=16)
        assert fid.ratio[-1] < 0.3  # high-k power destroyed
        assert fid.ratio[0] > 0.8  # large scales survive
        assert fid.resolved_fraction(0.2) < 0.8

    def test_sperr_preserves_spectrum_at_tight_tolerance(self):
        import repro

        f = spectral_field((24, 24, 24), slope=2.5, seed=6)
        t = repro.tolerance_from_idx(f, 16)
        recon = repro.decompress(repro.compress(f, repro.PweMode(t)).payload)
        fid = spectral_fidelity(f, recon, nbins=8)
        assert fid.resolved_fraction(0.05) == 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidArgumentError):
            spectral_fidelity(np.zeros((4, 4)), np.zeros((4, 5)))


class TestSubbandAnalysis:
    def test_energy_accounting_sums(self):
        from repro.analysis import subband_profile

        f = spectral_field((32, 32), slope=3.0, seed=9)
        profile = subband_profile(f)
        assert sum(profile.level_energy) == pytest.approx(profile.total_energy)

    def test_smooth_field_energy_in_approximation(self):
        """Sec. II premise: wavelets concentrate smooth-field energy in
        the coarse approximation."""
        from repro.analysis import subband_profile

        f = spectral_field((64, 64), slope=4.0, seed=10)
        profile = subband_profile(f)
        assert profile.approximation_share > 0.5

    def test_white_noise_energy_in_details(self):
        from repro.analysis import subband_profile

        rng = np.random.default_rng(11)
        profile = subband_profile(rng.standard_normal((64, 64)))
        assert profile.approximation_share < 0.1

    def test_compaction_curve_monotone_and_steep(self):
        from repro.analysis import compaction_curve

        f = spectral_field((48, 48, 48), slope=3.5, seed=12)
        curve = compaction_curve(f)
        values = [curve[k] for k in sorted(curve)]
        assert values == sorted(values)
        # "most information in a small percentage of coefficients":
        # 1% of coefficients carry the bulk of the energy on this field
        assert curve[0.01] > 0.8
        assert curve[0.001] > 0.5

    def test_compaction_flat_for_noise(self):
        from repro.analysis import compaction_curve

        rng = np.random.default_rng(13)
        curve = compaction_curve(rng.standard_normal((32, 32)))
        assert curve[0.01] < 0.2
