"""Compression modes and the Table I tolerance translation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.modes import Q_FACTOR, PweMode, SizeMode, data_range, tolerance_from_idx
from repro.errors import InvalidArgumentError


class TestTableI:
    def test_translation_formula(self):
        """Table I: t = Range / 2**idx."""
        rng = 1024.0
        assert tolerance_from_idx(rng, 10) == rng / 2**10
        assert tolerance_from_idx(rng, 20) == rng / 2**20
        assert tolerance_from_idx(rng, 30) == rng / 2**30
        assert tolerance_from_idx(rng, 40) == rng / 2**40

    def test_intuitive_magnitudes(self):
        """idx=10 is ~1e-3 of the range, idx=20 ~1e-6, etc. (Table I)."""
        for idx, approx in ((10, 1e-3), (20, 1e-6), (30, 1e-9), (40, 1e-12)):
            t = tolerance_from_idx(1.0, idx)
            assert 0.5 * approx < t < 2.0 * approx

    def test_from_array(self):
        data = np.array([2.0, -6.0, 1.0])
        assert tolerance_from_idx(data, 3) == 8.0 / 8.0

    def test_constant_field_rejected(self):
        with pytest.raises(InvalidArgumentError):
            tolerance_from_idx(np.zeros(10), 10)

    def test_negative_idx_rejected(self):
        with pytest.raises(InvalidArgumentError):
            tolerance_from_idx(1.0, -1)


class TestModes:
    def test_default_q_factor_is_one_point_five(self):
        """Sec. IV-D: SPERR conservatively chooses q = 1.5t."""
        assert Q_FACTOR == 1.5
        assert PweMode(2.0).q == 3.0

    def test_custom_q_factor(self):
        assert PweMode(1.0, q_factor=1.8).q == 1.8

    def test_invalid_tolerance_rejected(self):
        for t in (0.0, -1.0, np.nan, np.inf):
            with pytest.raises(InvalidArgumentError):
                PweMode(t)

    def test_invalid_q_factor_rejected(self):
        with pytest.raises(InvalidArgumentError):
            PweMode(1.0, q_factor=0.0)

    def test_invalid_bpp_rejected(self):
        for b in (0.0, -2.0, np.inf):
            with pytest.raises(InvalidArgumentError):
                SizeMode(b)

    def test_data_range(self):
        assert data_range(np.array([-1.0, 4.0])) == 5.0
        with pytest.raises(InvalidArgumentError):
            data_range(np.zeros(0))
