"""Property test: every codec restores masks and dtypes exactly.

Hypothesis sweeps random shapes, dtypes, mask patterns (including the
all-NaN and single-valid-sample edge cases), and PWE levels through all
five codecs, asserting the input-hardening contract:

* the output dtype is *bit-exactly* the input dtype;
* NaN/+Inf/-Inf land exactly where they were in the input — nowhere
  else, never dropped;
* valid samples obey the requested point-wise tolerance.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import ALL_COMPRESSORS, MaskedCompressor
from repro.compressors.base import PsnrMode, psnr_target_for_idx
from repro.core.modes import PweMode

_SLACK = 1.0 + 1e-9
_PWE_LEVELS = (1e-2, 1e-4)


def _codec(name: str):
    codec = ALL_COMPRESSORS[name]()
    return codec if name == "sperr" else MaskedCompressor(codec)


@st.composite
def masked_arrays(draw):
    """A small array with a drawn non-finite pattern."""
    ndim = draw(st.integers(1, 3))
    shape = tuple(
        draw(st.lists(st.integers(2, 8), min_size=ndim, max_size=ndim))
    )
    if math.prod(shape) > 256:
        shape = tuple(min(s, 4) for s in shape)
    dtype = draw(st.sampled_from([np.float32, np.float64]))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    data = rng.normal(size=shape)

    pattern = draw(
        st.sampled_from(
            ["none", "scattered", "block", "inf_mix", "all_nan", "single_valid"]
        )
    )
    flat = data.reshape(-1)
    if pattern == "scattered":
        k = draw(st.integers(1, max(1, flat.size // 4)))
        idx = rng.choice(flat.size, size=k, replace=False)
        flat[idx] = np.nan
    elif pattern == "block":
        cut = tuple(slice(0, max(1, s // 2)) for s in shape)
        data[cut] = np.nan
    elif pattern == "inf_mix":
        flat[0] = np.inf
        flat[-1] = -np.inf
        if flat.size > 2:
            flat[flat.size // 2] = np.nan
    elif pattern == "all_nan":
        flat[:] = np.nan
    elif pattern == "single_valid":
        keep = draw(st.integers(0, flat.size - 1))
        value = flat[keep]
        flat[:] = np.nan
        flat[keep] = value
    return data.astype(dtype), pattern


@pytest.mark.parametrize("name", sorted(ALL_COMPRESSORS))
@given(case=masked_arrays(), level=st.sampled_from(_PWE_LEVELS))
@settings(max_examples=25, deadline=None)
def test_roundtrip_preserves_dtype_and_mask(name, case, level):
    data, pattern = case
    codec = _codec(name)
    mode = (
        PsnrMode(psnr_target_for_idx(16))
        if name == "tthresh-like"
        else PweMode(level)
    )
    out = codec.decompress(codec.compress(data, mode))

    assert out.dtype == data.dtype, f"dtype drift on pattern={pattern}"
    assert out.shape == data.shape
    assert np.array_equal(np.isnan(out), np.isnan(data))
    assert np.array_equal(np.isposinf(out), np.isposinf(data))
    assert np.array_equal(np.isneginf(out), np.isneginf(data))

    valid = np.isfinite(data)
    assert np.isfinite(out[valid]).all(), "unflagged non-finite output"
    if isinstance(mode, PweMode) and valid.any():
        err = np.abs(
            out[valid].astype(np.float64) - data[valid].astype(np.float64)
        ).max()
        assert err <= level * _SLACK, f"PWE {err:g} > {level:g} ({pattern})"
