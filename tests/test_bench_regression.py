"""Opt-in perf-regression gate (pytest marker ``bench``).

The gate re-times the benchmark cases and fails when any stage regresses
more than 25% against the reference block in ``BENCH_speed.json``.  It is
too slow and too machine-sensitive for the default tier-1 run, so it only
executes when explicitly requested::

    REPRO_BENCH_GATE=1 PYTHONPATH=src python -m pytest -m bench

The ``compare`` unit tests below always run: they pin the gate's own
decision logic (threshold, noise floor, missing cases) without timing
anything.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from check_regression import compare, run_gate  # noqa: E402


class TestCompareLogic:
    def test_within_threshold_passes(self):
        ref = {"sperr": {"compress_s": 0.100, "decompress_s": 0.050}}
        cur = {"sperr": {"compress_s": 0.110, "decompress_s": 0.060}}
        assert compare(ref, cur) == []

    def test_regression_flagged(self):
        ref = {"sperr": {"compress_s": 0.100}}
        cur = {"sperr": {"compress_s": 0.200}}
        problems = compare(ref, cur)
        assert len(problems) == 1
        assert "sperr.compress" in problems[0]

    def test_noise_floor_suppresses_small_absolute_slowdowns(self):
        ref = {"tthresh": {"compress_s": 0.016}}
        cur = {"tthresh": {"compress_s": 0.027}}  # 1.69x, but only +11 ms
        assert compare(ref, cur) == []

    def test_missing_case_flagged(self):
        assert compare({"zfp": {"compress_s": 0.1}}, {}) != []

    def test_custom_threshold(self):
        ref = {"sperr": {"compress_s": 0.200}}
        cur = {"sperr": {"compress_s": 0.230}}
        assert compare(ref, cur) == []
        assert compare(ref, cur, threshold=1.10) != []


@pytest.mark.bench
@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_GATE") != "1",
    reason="perf gate is opt-in: set REPRO_BENCH_GATE=1",
)
def test_no_perf_regressions():
    problems = run_gate(quick=True)
    assert not problems, "perf regressions:\n" + "\n".join(problems)
