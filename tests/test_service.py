"""Compression service: protocol contract, endpoints, structured errors.

Three layers of coverage:

* the wire protocol in isolation — encode/parse round-trips (a
  Hypothesis property over every message kind), strict rejection of
  unknown versions, forged lengths, flipped bits, truncation;
* the protocol under the :mod:`repro.testing.faults` operators — every
  corruption of a valid frame either parses or raises a
  :class:`~repro.errors.ReproError`, with bounded allocations and no
  hangs;
* a live in-process server — every endpoint through both clients,
  structured error codes for bad requests, and raw-socket abuse
  (garbage bytes, mid-frame stalls) answered with protocol errors
  instead of hangs or tracebacks.

Concurrency behaviour (coalescing, backpressure, tenant isolation) is
pinned separately in ``test_service_concurrency.py``.
"""

from __future__ import annotations

import asyncio
import socket
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import compress, decompress
from repro.core.modes import PweMode
from repro.errors import (
    AllocationLimitError,
    IntegrityError,
    InvalidArgumentError,
    ReproError,
    StreamFormatError,
)
from repro.service import (
    AsyncServiceClient,
    BackpressureError,
    Message,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    encode_message,
    parse_message,
    serve_in_thread,
)
from repro.service.protocol import (
    FRAME_MAGIC,
    MSG_COMPRESS,
    MSG_ERROR,
    MSG_OK,
    MSG_PING,
    MSG_READ_WINDOW,
    PRELUDE_SIZE,
    PROTOCOL_VERSION,
    REQUEST_KINDS,
    RESPONSE_KINDS,
    array_from_wire,
    array_to_wire,
    pack_window,
    unpack_window,
)
from repro.store import write_store
from repro.testing.faults import FAULT_OPERATORS, fuzz_decoder

PWE = 1e-3


def _field(shape=(32, 32, 32), seed=3):
    rng = np.random.default_rng(seed)
    x = np.linspace(0.0, 2.0 * np.pi, shape[0])
    base = np.add.outer(np.sin(x), np.cos(x))
    for _ in range(len(shape) - 2):
        base = np.multiply.outer(base, np.cos(x))
    return base + 0.05 * rng.standard_normal(shape)


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("service") / "store.rps"
    write_store(path, _field(), PweMode(PWE), chunk_shape=16)
    return path


@pytest.fixture(scope="module")
def server(store_path):
    with serve_in_thread(store_path) as handle:
        yield handle


@pytest.fixture()
def client(server):
    with ServiceClient(server.host, server.port) as c:
        yield c


# -- protocol unit tests ---------------------------------------------------


class TestProtocolFrames:
    def _frame(self, **kw) -> bytes:
        msg = Message(
            kw.get("kind", MSG_READ_WINDOW),
            kw.get("request_id", 7),
            kw.get("header", {"window": [[0, 8], None, 3], "frame": 0}),
            kw.get("payload", b"\x01\x02\x03\x04" * 8),
        )
        return encode_message(msg)

    def test_roundtrip(self):
        frame = self._frame()
        msg = parse_message(frame)
        assert msg.kind == MSG_READ_WINDOW and msg.request_id == 7
        assert msg.header["window"] == [[0, 8], None, 3]
        assert msg.payload == b"\x01\x02\x03\x04" * 8
        assert msg.kind_name == "read_window"

    def test_bad_magic_rejected(self):
        frame = bytearray(self._frame())
        frame[0:2] = b"ZZ"
        with pytest.raises(StreamFormatError, match="magic"):
            parse_message(bytes(frame))

    def test_unknown_version_rejected(self):
        frame = bytearray(self._frame())
        frame[2] = PROTOCOL_VERSION + 1
        with pytest.raises(StreamFormatError, match="version"):
            parse_message(bytes(frame))

    def test_forged_header_length_capped_before_allocation(self):
        frame = bytearray(self._frame())
        struct.pack_into("<I", frame, 8, 1 << 31)
        with pytest.raises(AllocationLimitError):
            parse_message(bytes(frame))

    def test_forged_payload_length_capped_before_allocation(self):
        frame = bytearray(self._frame())
        struct.pack_into("<Q", frame, 12, 1 << 60)
        with pytest.raises(AllocationLimitError):
            parse_message(bytes(frame))

    def test_truncation_and_trailing_bytes_rejected(self):
        frame = self._frame()
        with pytest.raises(StreamFormatError, match="truncated"):
            parse_message(frame[: len(frame) - 3])
        with pytest.raises(StreamFormatError, match="trailing"):
            parse_message(frame + b"\x00")

    def test_payload_bit_flip_caught_by_crc(self):
        frame = bytearray(self._frame())
        frame[-1] ^= 0x40
        with pytest.raises(IntegrityError, match="CRC"):
            parse_message(bytes(frame))

    def test_non_object_header_rejected(self):
        header = b"[1,2,3]"
        import zlib

        crc = zlib.crc32(b"", zlib.crc32(header))
        prelude = struct.pack(
            "<2sBBIIQI", FRAME_MAGIC, PROTOCOL_VERSION, MSG_PING, 1,
            len(header), 0, crc,
        )
        with pytest.raises(StreamFormatError, match="not an object"):
            parse_message(prelude + header)

    def test_encoder_enforces_caps(self):
        with pytest.raises(InvalidArgumentError):
            encode_message(Message(MSG_PING, 1, {}, b"x" * 64), max_payload=32)
        with pytest.raises(InvalidArgumentError):
            encode_message(Message(999, 1))
        with pytest.raises(InvalidArgumentError):
            encode_message(Message(MSG_PING, 1 << 33))


class TestWindowMarshalling:
    @pytest.mark.parametrize(
        "window",
        [
            None,
            (slice(0, 8), slice(None), 3),
            (slice(None, 5), 0),
            (slice(2, None),),
            5,
        ],
    )
    def test_roundtrip(self, window):
        spec = pack_window(window)
        out = unpack_window(spec)
        want = window
        if want is not None and not isinstance(want, tuple):
            want = (want,)
        if want is None:
            assert out is None
        else:
            norm = tuple(
                slice(w.start, w.stop) if isinstance(w, slice) else int(w)
                for w in want
            )
            assert out == norm

    def test_strided_window_rejected(self):
        with pytest.raises(InvalidArgumentError, match="step"):
            pack_window((slice(0, 8, 2),))

    @pytest.mark.parametrize(
        "spec",
        ["0:8", [True], [[0, 8, 1]], [[0.5, 8]], [{}], [[0, True]]],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(StreamFormatError):
            unpack_window(spec)

    def test_axis_cap(self):
        with pytest.raises(StreamFormatError, match="axes"):
            unpack_window([None] * 65)


class TestArrayMarshalling:
    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(24, dtype=np.float64).reshape(2, 3, 4),
            np.float32(3.5).reshape(()),  # 0-D: integer-index windows
            np.zeros((0, 5), dtype=np.int64),  # zero extent: empty windows
            np.arange(7, dtype=np.int32),
        ],
    )
    def test_roundtrip(self, arr):
        header, payload = array_to_wire(arr)
        out = array_from_wire(header, payload)
        assert out.dtype == arr.dtype and out.shape == arr.shape
        np.testing.assert_array_equal(out, arr)
        assert out.flags.writeable  # a private copy, not the wire buffer

    def test_unlisted_dtype_rejected_both_ways(self):
        with pytest.raises(InvalidArgumentError):
            array_to_wire(np.zeros(4, dtype=np.float16))
        with pytest.raises(StreamFormatError):
            array_from_wire({"shape": [4], "dtype": "object"}, b"\x00" * 32)

    def test_declared_bytes_must_match(self):
        with pytest.raises(StreamFormatError, match="carries"):
            array_from_wire({"shape": [4], "dtype": "float64"}, b"\x00" * 31)

    def test_huge_shape_rejected_before_allocation(self):
        with pytest.raises(AllocationLimitError):
            array_from_wire(
                {"shape": [1 << 20, 1 << 20, 1 << 20], "dtype": "float64"}, b""
            )

    def test_negative_extent_rejected(self):
        with pytest.raises(StreamFormatError):
            array_from_wire({"shape": [-1, 4], "dtype": "float64"}, b"")

    def test_overflowing_shape_product_rejected(self):
        # int64-accumulated products wrap ([2**32, 2**32] -> 0) and would
        # slip past the decode-point cap; the check must be exact.
        with pytest.raises(AllocationLimitError):
            array_from_wire(
                {"shape": [1 << 32, 1 << 32], "dtype": "float64"}, b""
            )


# -- fault injection over the frame parser ---------------------------------


class TestProtocolFaults:
    def _valid_frame(self) -> bytes:
        data = np.arange(512, dtype=np.float64).reshape(8, 8, 8)
        header, payload = array_to_wire(data)
        header["mode"] = {"kind": "pwe", "value": PWE}
        return encode_message(Message(MSG_COMPRESS, 42, header, payload))

    def test_all_operators_respect_error_contract(self):
        report = fuzz_decoder(
            lambda b: parse_message(b),
            self._valid_frame(),
            n=400,
            n_ops=2,
            time_limit=5.0,
        )
        assert report.ok, report.summary()
        assert report.n_rejected > 0  # corruption is actually detected

    @pytest.mark.parametrize("op", sorted(FAULT_OPERATORS))
    def test_each_operator_individually(self, op):
        report = fuzz_decoder(
            lambda b: parse_message(b),
            self._valid_frame(),
            n=100,
            operators=[op],
            time_limit=5.0,
        )
        assert report.ok, f"{op}: {report.summary()}"


# -- hypothesis properties -------------------------------------------------

_kinds = st.sampled_from(sorted(REQUEST_KINDS | RESPONSE_KINDS))
_headers = st.dictionaries(
    st.text(min_size=1, max_size=12),
    st.one_of(
        st.integers(-(10**9), 10**9),
        st.text(max_size=16),
        st.none(),
        st.lists(st.integers(0, 255), max_size=4),
    ),
    max_size=5,
)


class TestProtocolProperties:
    @given(
        kind=_kinds,
        request_id=st.integers(0, 0xFFFFFFFF),
        header=_headers,
        payload=st.binary(max_size=256),
    )
    @settings(max_examples=120, deadline=None)
    def test_encode_parse_roundtrip(self, kind, request_id, header, payload):
        msg = Message(kind, request_id, header, payload)
        out = parse_message(encode_message(msg))
        assert out.kind == kind
        assert out.request_id == request_id
        assert out.header == header
        assert out.payload == payload

    @given(
        version=st.integers(0, 255).filter(lambda v: v != PROTOCOL_VERSION),
        payload=st.binary(max_size=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_unknown_versions_always_rejected(self, version, payload):
        frame = bytearray(encode_message(Message(MSG_PING, 1, {}, payload)))
        frame[2] = version
        with pytest.raises(StreamFormatError, match="version"):
            parse_message(bytes(frame))

    @given(data=st.binary(max_size=2 * PRELUDE_SIZE))
    @settings(max_examples=120, deadline=None)
    def test_arbitrary_bytes_never_escape_error_contract(self, data):
        try:
            parse_message(data)
        except ReproError:
            pass


# -- live server: endpoints and structured errors --------------------------


class TestServerEndpoints:
    def test_ping_info_stats(self, client):
        assert client.ping() is True
        info = client.info()
        assert info["shape"] == [32, 32, 32]
        assert info["n_frames"] == 1
        stats = client.stats()
        assert stats["counters"]["requests_total"] >= 2
        assert "cache" in stats and "limits" in stats

    @pytest.mark.parametrize(
        "window",
        [None, (slice(0, 20), slice(4, 28), slice(None)), (slice(1, 9), 3, 5), 0],
    )
    def test_read_window_matches_direct(self, client, server, window):
        got = client.read_window(window)
        want = server.service.store.read_window(window)
        assert got.dtype == want.dtype and got.shape == want.shape
        assert got.tobytes() == want.tobytes()

    def test_read_budget_forwarded(self, client):
        # A tiny positive budget yields a coarse same-shape result ...
        window = (slice(0, 32), slice(0, 32), slice(0, 32))
        coarse = client.read_window(window, budget=64)
        assert coarse.shape == (32, 32, 32)
        # ... and an invalid budget comes back as a structured rejection.
        with pytest.raises(ServiceError) as err:
            client.read_window(window, budget=0)
        assert err.value.code == "bad_request"

    def test_compress_decompress_roundtrip(self, client):
        data = _field((24, 24), seed=11)
        payload = client.compress(data, pwe=PWE)
        assert decompress(payload).shape == (24, 24)
        out = client.decompress(payload)
        assert out.shape == data.shape
        assert np.max(np.abs(out - data)) <= PWE * 1.0001

    def test_compress_matches_local_pipeline(self, client):
        data = _field((16, 16, 16), seed=5)
        remote = client.decompress(client.compress(data, pwe=PWE, chunk=8))
        local = decompress(compress(data, PweMode(PWE), chunk_shape=8).payload)
        assert remote.tobytes() == local.tobytes()

    def test_bad_frame_index_is_structured(self, client):
        with pytest.raises(ServiceError) as err:
            client.read_window(None, frame=99)
        assert err.value.code == "bad_request"
        assert not isinstance(err.value, BackpressureError)

    def test_bad_window_is_structured(self, client):
        # Strided windows are rejected client-side, before the wire.
        with pytest.raises(InvalidArgumentError, match="contiguous"):
            client.read_window((slice(0, 8, 2),))
        # A malformed spec smuggled past the client helpers is rejected
        # server-side with a structured error, not a dropped connection.
        with pytest.raises(ServiceError) as err:
            client._request(MSG_READ_WINDOW, {"window": [[0, 8, 1]]})
        assert err.value.code in ("bad_request", "corrupt")
        assert client.ping()  # connection survives a rejected request

    def test_corrupt_decompress_payload_is_structured(self, client):
        good = client.compress(_field((16, 16), seed=2), pwe=PWE)
        bad = bytearray(good)
        bad[len(bad) // 2] ^= 0xFF
        with pytest.raises(ServiceError) as err:
            client.decompress(bytes(bad))
        assert err.value.code in ("corrupt", "bad_request")
        assert client.ping()

    def test_bad_mode_and_chunk_are_structured(self, client):
        data = _field((16, 16), seed=2)
        with pytest.raises(ServiceError) as err:
            client.compress(data, pwe=PWE, chunk=-4)
        assert err.value.code == "bad_request"
        with pytest.raises(ReproError):
            client.compress(data)  # no mode given: rejected client-side

    def test_unknown_request_kind_is_structured(self, client):
        with pytest.raises(ServiceError) as err:
            client._request(77, {})
        assert err.value.code == "bad_request"

    def test_storeless_service(self):
        with serve_in_thread(None) as handle:
            with ServiceClient(handle.host, handle.port) as c:
                assert c.ping()
                with pytest.raises(ServiceError) as err:
                    c.info()
                assert err.value.code == "not_found"
                with pytest.raises(ServiceError) as err:
                    c.read_window(None)
                assert err.value.code == "not_found"
                data = _field((16, 16), seed=9)
                out = c.decompress(c.compress(data, pwe=PWE))
                assert np.max(np.abs(out - data)) <= PWE * 1.0001


class TestServerProtocolAbuse:
    def test_garbage_bytes_get_protocol_error_then_close(self, server):
        with socket.create_connection(
            (server.host, server.port), timeout=10.0
        ) as sock:
            sock.sendall(b"GET / HTTP/1.1\r\n\r\n" + b"\x00" * PRELUDE_SIZE)
            response = b""
            while len(response) < PRELUDE_SIZE:
                piece = sock.recv(4096)
                if not piece:
                    break
                response += piece
            while True:  # drain until the server closes
                piece = sock.recv(4096)
                if not piece:
                    break
                response += piece
        msg = parse_message(response)
        assert msg.kind == MSG_ERROR
        assert msg.request_id == 0  # connection-level, not request-level
        assert msg.header["code"] == "protocol"

    def test_oversized_declared_payload_rejected_without_allocation(self, server):
        frame = bytearray(encode_message(Message(MSG_PING, 3)))
        struct.pack_into("<Q", frame, 12, 1 << 62)
        with socket.create_connection(
            (server.host, server.port), timeout=10.0
        ) as sock:
            sock.sendall(bytes(frame))
            response = sock.recv(1 << 16)
        msg = parse_message(response)
        assert msg.kind == MSG_ERROR and msg.header["code"] == "protocol"

    def test_mid_frame_stall_times_out(self, store_path):
        config = ServiceConfig(body_timeout_s=0.2)
        with serve_in_thread(store_path, config=config) as handle:
            frame = encode_message(Message(MSG_PING, 1))
            with socket.create_connection(
                (handle.host, handle.port), timeout=10.0
            ) as sock:
                # Claim a 64-byte header, deliver only the prelude, stall.
                stalled = bytearray(frame[:PRELUDE_SIZE])
                struct.pack_into("<I", stalled, 8, 64)
                sock.sendall(bytes(stalled))
                response = sock.recv(1 << 16)
            msg = parse_message(response)
            assert msg.kind == MSG_ERROR
            assert "timed out" in msg.header["message"]
            # The server is still fine for well-behaved clients.
            with ServiceClient(handle.host, handle.port) as c:
                assert c.ping()


class TestResponsePayloadCap:
    """Responses above ``max_payload_bytes`` must come back as structured
    errors — never as an encode failure that black-holes the request
    (the client would hang on a response frame that is never written)."""

    CAP = 64 << 10  # the full 32^3 float64 store is 256 KiB, 4x over

    def test_oversized_read_response_is_structured(self, store_path):
        config = ServiceConfig(max_payload_bytes=self.CAP)
        with serve_in_thread(store_path, config=config) as handle:
            with ServiceClient(handle.host, handle.port) as c:
                with pytest.raises(ServiceError) as err:
                    c.read_window(None)
                assert err.value.code == "bad_request"
                assert "cap" in str(err.value)
                # The connection survives, and reads that fit still work.
                small = c.read_window((slice(0, 8), slice(0, 8), slice(0, 8)))
                assert small.shape == (8, 8, 8)
                counters = c.stats()["counters"]
                assert counters["oversized_responses"] >= 1
                assert counters.get("internal_errors", 0) == 0

    def test_oversized_decompress_response_is_structured(self):
        config = ServiceConfig(max_payload_bytes=self.CAP)
        with serve_in_thread(None, config=config) as handle:
            # The request (compressed payload) fits under the cap; the
            # decompressed response (128 KiB raw) does not.
            data = _field((128, 128), seed=4)
            payload = compress(data, PweMode(PWE)).payload
            assert len(payload) <= self.CAP
            with ServiceClient(handle.host, handle.port) as c:
                with pytest.raises(ServiceError) as err:
                    c.decompress(payload)
                assert err.value.code == "bad_request"
                assert c.ping()

    def test_pipelined_oversized_reads_all_resolve(self, store_path):
        # Regression: an unanswered oversized read left the async
        # client's future pending forever.
        config = ServiceConfig(max_payload_bytes=self.CAP)
        with serve_in_thread(store_path, config=config) as handle:

            async def drive():
                async with await AsyncServiceClient.connect(
                    handle.host, handle.port
                ) as client:
                    async def read(window):
                        try:
                            return await client.read_window(window)
                        except ServiceError as exc:
                            return exc

                    small = (slice(0, 8), slice(0, 8), slice(0, 8))
                    return await asyncio.wait_for(
                        asyncio.gather(read(None), read(small), read(None)),
                        timeout=30.0,
                    )

            big1, small, big2 = asyncio.run(drive())
            for err in (big1, big2):
                assert isinstance(err, ServiceError)
                assert err.code == "bad_request"
            assert small.shape == (8, 8, 8)


class TestRequestIdWrap:
    """Request ids skip 0 on wrap: rid 0 is the connection-level error
    channel, and an echo of it would be ambiguous (async clients fail
    *all* pending requests on a rid-0 error frame)."""

    def test_sync_client_skips_zero(self, client):
        client._next_id = 0xFFFFFFFF
        assert client.ping()
        assert client._next_id == 1
        assert client.ping()  # and keeps counting normally
        assert client._next_id == 2

    def test_async_client_skips_zero(self, server):
        async def drive():
            async with await AsyncServiceClient.connect(
                server.host, server.port
            ) as c:
                c._next_id = 0xFFFFFFFF
                ok = await c.ping()
                return ok, c._next_id

        ok, next_id = asyncio.run(drive())
        assert ok is True
        assert next_id == 1


class TestAsyncClient:
    def test_pipelined_requests_on_one_connection(self, server):
        direct = server.service.store

        async def drive():
            async with await AsyncServiceClient.connect(
                server.host, server.port
            ) as client:
                windows = [
                    (slice(0, 16), slice(0, 16), slice(0, 16)),
                    (slice(8, 24), slice(8, 24), slice(8, 24)),
                    (slice(0, 32), slice(0, 8), 3),
                    None,
                ]
                results = await asyncio.gather(
                    client.ping(),
                    *[client.read_window(w) for w in windows],
                )
                return windows, results

        windows, results = asyncio.run(drive())
        assert results[0] is True
        for window, got in zip(windows, results[1:]):
            want = direct.read_window(window)
            assert got.tobytes() == want.tobytes()

    def test_async_errors_are_structured(self, server):
        async def drive():
            async with await AsyncServiceClient.connect(
                server.host, server.port
            ) as client:
                with pytest.raises(ServiceError) as err:
                    await client.read_window(None, frame=99)
                return err.value.code

        assert asyncio.run(drive()) == "bad_request"
