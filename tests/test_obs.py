"""Observability layer: span nesting, counters, worker merge, exporters.

Covers the contracts the instrumentation relies on: spans nest and land
in completion order, counters agree with the bytes the pipeline actually
emitted, process-worker traces merge deterministically, the disabled
path stays cheap, and the Chrome exporter's output is pinned by a golden
snapshot.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.core import PweMode, compress, decompress
from repro.obs.trace import _NOOP

GOLDEN = Path(__file__).parent / "data" / "golden_trace.json"


@pytest.fixture
def volume():
    rng = np.random.default_rng(42)
    return rng.normal(size=(16, 16, 16))


def _golden_report() -> obs.TraceReport:
    """A hand-built report with fixed values (no clocks, no pids)."""
    spans = (
        obs.Span(
            name="speck.encode",
            start_us=1100.0,
            dur_us=200.0,
            cpu_us=190.5,
            pid=1234,
            tid=7,
            depth=1,
            attrs={"q": 0.5, "nbits": 1024},
        ),
        obs.Span(
            name="chunk.compress",
            start_us=1000.0,
            dur_us=500.0,
            cpu_us=450.0,
            pid=1234,
            tid=7,
            depth=0,
            attrs={"shape": [8, 8]},
        ),
    )
    return obs.TraceReport(
        name="golden",
        spans=spans,
        counters={"speck.bits": 1024, "container.bytes": 128},
    )


class TestSpans:
    def test_nesting_depths_and_completion_order(self):
        with obs.trace("t") as tracer:
            with obs.span("outer"):
                with obs.span("mid"):
                    with obs.span("inner"):
                        pass
        report = tracer.report()
        order = [(s.name, s.depth) for s in report.spans]
        # children finish (and are appended) before their parents
        assert order == [("inner", 2), ("mid", 1), ("outer", 0)]

    def test_span_timing_and_containment(self):
        with obs.trace("t") as tracer:
            with obs.span("outer"):
                with obs.span("inner"):
                    time.sleep(0.01)
        inner, outer = tracer.report().spans
        assert inner.dur_us >= 10_000  # the sleep
        assert outer.start_us <= inner.start_us
        assert outer.end_us >= inner.end_us
        assert inner.pid == os.getpid()

    def test_set_and_add_from_inside_span(self):
        with obs.trace("t") as tracer:
            with obs.span("s", chunk=3) as sp:
                sp.set(nbits=17).add("bits", 17)
        report = tracer.report()
        assert report.spans[0].attrs == {"chunk": 3, "nbits": 17}
        assert report.counters == {"bits": 17}

    def test_trace_stacking_restores_previous(self):
        with obs.trace("outer") as outer:
            with obs.span("before"):
                pass
            with obs.trace("inner") as inner:
                with obs.span("shadowed"):
                    pass
            with obs.span("after"):
                pass
        assert [s.name for s in outer.report().spans] == ["before", "after"]
        assert [s.name for s in inner.report().spans] == ["shadowed"]
        assert not obs.is_active()

    def test_report_helpers(self):
        with obs.trace("t") as tracer:
            for _ in range(3):
                with obs.span("work"):
                    pass
        report = tracer.report()
        assert report.stage_calls() == {"work": 3}
        assert set(report.stage_totals()) == {"work"}
        assert len(report.find("work")) == 3
        assert report.find("absent") == []
        assert report.wall_seconds() >= 0.0


class TestDisabledPath:
    def test_noop_singleton_when_inactive(self):
        assert not obs.is_active()
        assert obs.active_tracer() is None
        sp = obs.span("anything", chunk=1)
        assert sp is _NOOP
        with sp as inner:
            inner.set(a=1).add("c", 2)  # all no-ops, nothing raises
        obs.add_counter("c", 5)  # no-op

    def test_wrap_worker_identity_when_inactive(self):
        f = len
        assert obs.wrap_worker(f) is f

    def test_absorb_passthrough(self):
        assert obs.absorb_result(41) == 41
        traced = obs.TracedResult(value="v", spans=[], counters={"c": 1})
        # inactive: value unwrapped, spans dropped
        assert obs.absorb_result(traced) == "v"

    def test_disabled_overhead_guard(self):
        """50k disabled span() calls must stay far below a generous bound.

        The bound is absolute and loose (CI machines vary); the point is
        to catch the no-op path growing real work, not to microbenchmark.
        """
        t0 = time.perf_counter()
        for i in range(50_000):
            with obs.span("hot", chunk=i):
                pass
        elapsed = time.perf_counter() - t0
        assert elapsed < 2.0, f"disabled span path took {elapsed:.2f}s / 50k calls"


class TestPipelineCounters:
    def test_counters_match_emitted_bytes(self, volume):
        with obs.trace("t") as tracer:
            result = compress(volume, PweMode(1e-2))
        counters = tracer.report().counters
        assert counters["container.bytes"] == len(result.payload)
        assert counters["speck.bits"] == sum(r.speck_nbits for r in result.reports)
        assert counters["outlier.count"] == result.n_outliers
        assert counters["chunk.bytes"] <= len(result.payload)

    def test_compress_trace_kwarg_attaches_report(self, volume):
        result = compress(volume, PweMode(1e-2), trace=True)
        assert result.trace is not None
        names = {s.name for s in result.trace.spans}
        assert {"wavelet.forward", "speck.encode", "lossless.encode"} <= names
        assert not obs.is_active()

    def test_compress_without_trace_has_none(self, volume):
        assert compress(volume, PweMode(1e-2)).trace is None

    def test_decompress_spans(self, volume):
        payload = compress(volume, PweMode(1e-2)).payload
        with obs.trace("t") as tracer:
            out = decompress(payload)
        assert out.shape == volume.shape
        names = {s.name for s in tracer.report().spans}
        assert {"sperr.decompress", "container.parse", "speck.decode"} <= names


class TestWorkerMerge:
    def test_thread_workers_share_collector(self, volume):
        with obs.trace("t") as tracer:
            compress(volume, PweMode(1e-2), chunk_shape=8, executor="thread", workers=2)
        report = tracer.report()
        assert len(report.find("chunk.compress")) == 8
        assert all(s.pid == os.getpid() for s in report.spans)

    def test_process_worker_merge_is_deterministic(self, volume):
        def run():
            with obs.trace("t") as tracer:
                result = compress(
                    volume, PweMode(1e-2), chunk_shape=8,
                    executor="process", workers=2,
                )
            report = tracer.report()
            key = [
                (s.name, s.depth, s.attrs.get("worker_item"))
                for s in report.spans
            ]
            return result.payload, key, report

        payload_a, key_a, report_a = run()
        payload_b, key_b, _ = run()
        assert payload_a == payload_b
        assert key_a == key_b, "merged span sequence must not depend on scheduling"
        # worker spans really came from other processes and are tagged
        worker_spans = [
            s for s in report_a.spans if s.attrs.get("worker_item") is not None
        ]
        assert len(report_a.find("chunk.compress")) == 8
        assert worker_spans and all(s.pid != os.getpid() for s in worker_spans)
        # worker counters folded into the parent totals
        assert report_a.counters["chunk.bytes"] > 0


class TestExporters:
    def test_chrome_trace_structure(self, volume):
        with obs.trace("t") as tracer:
            compress(volume, PweMode(1e-2))
        doc = obs.chrome_trace(tracer.report())
        events = doc["traceEvents"]
        assert events, "trace must contain events"
        assert {e["ph"] for e in events} <= {"X", "C"}
        xs = [e for e in events if e["ph"] == "X"]
        assert min(e["ts"] for e in xs) == 0.0  # normalized to trace start
        assert all(e["dur"] >= 0 for e in xs)
        names = {e["name"] for e in xs}
        assert "speck.encode" in names

    def test_write_chrome_trace_round_trips(self, volume, tmp_path):
        with obs.trace("t") as tracer:
            compress(volume, PweMode(1e-2))
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(tracer.report(), path)
        doc = json.loads(path.read_text())
        assert doc["otherData"]["trace_name"] == "t"
        assert doc["traceEvents"]

    def test_format_stage_table(self, volume):
        with obs.trace("t") as tracer:
            compress(volume, PweMode(1e-2))
        table = obs.format_stage_table(tracer.report())
        assert "speck.encode" in table
        assert "wall ms" in table
        assert "container.bytes" in table

    def test_golden_chrome_trace_snapshot(self):
        """The exporter's byte-exact output is pinned by a golden file.

        The report is hand-built from fixed values, so any change to
        event layout, rounding, ordering, or key names shows up as a
        diff against ``tests/data/golden_trace.json``.
        """
        got = obs.to_json(_golden_report())
        assert got == GOLDEN.read_text(), (
            "Chrome trace output changed; if intentional, regenerate the "
            "golden file with: PYTHONPATH=src python -c \"from tests.test_obs "
            "import _regen_golden; _regen_golden()\""
        )


def _regen_golden() -> None:
    """Rewrite the golden snapshot from the current exporter."""
    GOLDEN.write_text(obs.to_json(_golden_report()))
