"""Failure injection: corrupted payloads, precision edges, hostile input.

A production decompressor must reject damage with a clear error — never
crash, hang, or silently return garbage-typed output.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.compressors import (
    MgardLikeCompressor,
    SzLikeCompressor,
    TthreshLikeCompressor,
    ZfpLikeCompressor,
)
from repro.compressors.base import PsnrMode
from repro.core.modes import PweMode
from repro.datasets import spectral_field
from repro.errors import InvalidArgumentError, ReproError


@pytest.fixture(scope="module")
def field():
    return spectral_field((16, 16, 16), slope=3.0, seed=11)


@pytest.fixture(scope="module")
def payload(field):
    t = repro.tolerance_from_idx(field, 14)
    return repro.compress(field, repro.PweMode(t)).payload


class TestContainerCorruption:
    def test_truncation_everywhere_raises_or_errors(self, payload):
        """Cutting the container at any section boundary must raise a
        library error (not IndexError/segfault-style failures)."""
        for cut in (0, 4, 8, 12, 30, len(payload) // 2, len(payload) - 3):
            with pytest.raises((ReproError, Exception)) as exc_info:
                repro.decompress(payload[:cut])
            assert not isinstance(exc_info.value, (MemoryError, RecursionError))

    def test_flipped_magic_rejected(self, payload):
        bad = b"X" + payload[1:]
        with pytest.raises(ReproError):
            repro.decompress(bad)

    def test_corrupt_chunk_size_table(self, payload):
        # inflate the first chunk size field beyond the payload
        bad = bytearray(payload)
        # the size table sits right after magic+meta+shape+nchunks+bounds
        # for a single-chunk 3-D container: 8+4+24+4+48 = 88
        bad[88:96] = (2**40).to_bytes(8, "little")
        with pytest.raises(ReproError):
            repro.decompress(bytes(bad))

    def test_bitflips_in_body_do_not_hang(self, payload):
        """Flipping bytes inside the compressed body either decodes to
        *something* or raises cleanly — bounded behaviour always."""
        rng = np.random.default_rng(3)
        for _ in range(8):
            bad = bytearray(payload)
            pos = int(rng.integers(120, len(payload)))
            bad[pos] ^= 0xFF
            try:
                out = repro.decompress(bytes(bad))
                assert out.shape == (16, 16, 16)
            except Exception as exc:  # noqa: BLE001 - any *clean* error is fine
                assert not isinstance(exc, (MemoryError, RecursionError))


class TestBaselinePayloadChecks:
    @pytest.mark.parametrize(
        "compressor,mode",
        [
            (SzLikeCompressor(), PweMode(0.01)),
            (ZfpLikeCompressor(), PweMode(0.01)),
            (TthreshLikeCompressor(), PsnrMode(50.0)),
            (MgardLikeCompressor(), PweMode(0.01)),
        ],
    )
    def test_wrong_magic_rejected(self, compressor, mode, field):
        payload = compressor.compress(field, mode)
        with pytest.raises(ReproError):
            compressor.decompress(b"JUNK" + payload[4:])

    def test_cross_compressor_payloads_rejected(self, field):
        sz = SzLikeCompressor()
        zfp = ZfpLikeCompressor()
        p = sz.compress(field, PweMode(0.01))
        with pytest.raises(ReproError):
            zfp.decompress(p)


class TestPrecisionEdges:
    def test_float32_tolerance_below_precision_rejected(self, rng):
        data = (rng.standard_normal((12, 12)) * 100).astype(np.float32)
        t = float(np.abs(data).max()) * 2.0**-25
        with pytest.raises(InvalidArgumentError):
            repro.compress(data, repro.PweMode(t))

    def test_float32_bound_holds_after_cast(self, rng):
        data = (rng.standard_normal((16, 16)) * 1e6).astype(np.float32)
        t = float(data.max() - data.min()) / 2**14
        res = repro.compress(data, repro.PweMode(t))
        recon = repro.decompress(res.payload)
        assert recon.dtype == np.float32
        err = np.abs(recon.astype(np.float64) - data.astype(np.float64)).max()
        assert err <= t

    def test_huge_and_tiny_scales(self):
        for scale in (1e-300, 1e300):
            data = spectral_field((12, 12), slope=2.0, seed=5) * scale
            t = float(data.max() - data.min()) / 2**12
            res = repro.compress(data, repro.PweMode(t))
            recon = repro.decompress(res.payload)
            assert np.abs(recon - data).max() <= t

    def test_denormal_free_output(self, field):
        res = repro.compress(field, repro.PweMode(1e-6))
        recon = repro.decompress(res.payload)
        assert np.all(np.isfinite(recon))


@settings(max_examples=30, deadline=None)
@given(st.binary(min_size=0, max_size=200))
def test_garbage_never_crashes_decompress(blob):
    """Arbitrary bytes into the container parser: clean error or nothing."""
    try:
        repro.decompress(blob)
    except Exception as exc:  # noqa: BLE001
        assert not isinstance(exc, (MemoryError, RecursionError, SystemError))
