"""Failure injection: corrupted payloads, precision edges, hostile input.

A production decompressor must reject damage with a clear error — never
crash, hang, or silently return garbage-typed output.
"""

from __future__ import annotations

import os
import re
import zlib
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.compressors import (
    MgardLikeCompressor,
    SperrCompressor,
    SzLikeCompressor,
    SzxLikeCompressor,
    TthreshLikeCompressor,
    ZfpLikeCompressor,
)
from repro.compressors.base import PsnrMode
from repro.core.container import parse_container
from repro.core.modes import PweMode
from repro.datasets import spectral_field
from repro.errors import IntegrityError, InvalidArgumentError, ReproError
from repro.testing.faults import FAULT_OPERATORS, corrupt, fuzz_decoder

DATA_DIR = Path(__file__).parent / "data"


@pytest.fixture(scope="module")
def field():
    return spectral_field((16, 16, 16), slope=3.0, seed=11)


@pytest.fixture(scope="module")
def payload(field):
    t = repro.tolerance_from_idx(field, 14)
    return repro.compress(field, repro.PweMode(t)).payload


class TestContainerCorruption:
    def test_truncation_everywhere_raises_or_errors(self, payload):
        """Cutting the container at any section boundary must raise a
        library error (not IndexError/segfault-style failures)."""
        for cut in (0, 4, 8, 12, 30, len(payload) // 2, len(payload) - 3):
            with pytest.raises((ReproError, Exception)) as exc_info:
                repro.decompress(payload[:cut])
            assert not isinstance(exc_info.value, (MemoryError, RecursionError))

    def test_flipped_magic_rejected(self, payload):
        bad = b"X" + payload[1:]
        with pytest.raises(ReproError):
            repro.decompress(bad)

    def test_corrupt_chunk_size_table(self, payload):
        # inflate the first chunk size field beyond the payload
        bad = bytearray(payload)
        # the size table sits right after magic+meta+shape+nchunks+bounds
        # for a single-chunk 3-D container: 8+4+24+4+48 = 88
        bad[88:96] = (2**40).to_bytes(8, "little")
        with pytest.raises(ReproError):
            repro.decompress(bytes(bad))

    def test_bitflips_in_body_do_not_hang(self, payload):
        """Flipping bytes inside the compressed body either decodes to
        *something* or raises cleanly — bounded behaviour always."""
        rng = np.random.default_rng(3)
        for _ in range(8):
            bad = bytearray(payload)
            pos = int(rng.integers(120, len(payload)))
            bad[pos] ^= 0xFF
            try:
                out = repro.decompress(bytes(bad))
                assert out.shape == (16, 16, 16)
            except Exception as exc:  # noqa: BLE001 - any *clean* error is fine
                assert not isinstance(exc, (MemoryError, RecursionError))


class TestBaselinePayloadChecks:
    @pytest.mark.parametrize(
        "compressor,mode",
        [
            (SzLikeCompressor(), PweMode(0.01)),
            (ZfpLikeCompressor(), PweMode(0.01)),
            (TthreshLikeCompressor(), PsnrMode(50.0)),
            (MgardLikeCompressor(), PweMode(0.01)),
        ],
    )
    def test_wrong_magic_rejected(self, compressor, mode, field):
        payload = compressor.compress(field, mode)
        with pytest.raises(ReproError):
            compressor.decompress(b"JUNK" + payload[4:])

    def test_cross_compressor_payloads_rejected(self, field):
        sz = SzLikeCompressor()
        zfp = ZfpLikeCompressor()
        p = sz.compress(field, PweMode(0.01))
        with pytest.raises(ReproError):
            zfp.decompress(p)


class TestPrecisionEdges:
    def test_float32_tolerance_below_precision_rejected(self, rng):
        data = (rng.standard_normal((12, 12)) * 100).astype(np.float32)
        t = float(np.abs(data).max()) * 2.0**-25
        with pytest.raises(InvalidArgumentError):
            repro.compress(data, repro.PweMode(t))

    def test_float32_bound_holds_after_cast(self, rng):
        data = (rng.standard_normal((16, 16)) * 1e6).astype(np.float32)
        t = float(data.max() - data.min()) / 2**14
        res = repro.compress(data, repro.PweMode(t))
        recon = repro.decompress(res.payload)
        assert recon.dtype == np.float32
        err = np.abs(recon.astype(np.float64) - data.astype(np.float64)).max()
        assert err <= t

    def test_huge_and_tiny_scales(self):
        for scale in (1e-300, 1e300):
            data = spectral_field((12, 12), slope=2.0, seed=5) * scale
            t = float(data.max() - data.min()) / 2**12
            res = repro.compress(data, repro.PweMode(t))
            recon = repro.decompress(res.payload)
            assert np.abs(recon - data).max() <= t

    def test_denormal_free_output(self, field):
        res = repro.compress(field, repro.PweMode(1e-6))
        recon = repro.decompress(res.payload)
        assert np.all(np.isfinite(recon))


@settings(max_examples=30, deadline=None)
@given(st.binary(min_size=0, max_size=200))
def test_garbage_never_crashes_decompress(blob):
    """Arbitrary bytes into the container parser: clean error or nothing."""
    try:
        repro.decompress(blob)
    except Exception as exc:  # noqa: BLE001
        assert not isinstance(exc, (MemoryError, RecursionError, SystemError))


# --- seeded fault-injection matrix -----------------------------------------

_FUZZ_CODECS = {
    "sperr": (SperrCompressor(chunk_shape=8), PweMode(1e-3)),
    "sz-like": (SzLikeCompressor(), PweMode(1e-3)),
    "zfp-like": (ZfpLikeCompressor(), PweMode(1e-3)),
    "tthresh-like": (TthreshLikeCompressor(), PsnrMode(60.0)),
    "mgard-like": (MgardLikeCompressor(), PweMode(1e-3)),
    "szx-like": (SzxLikeCompressor(), PweMode(1e-3)),
}


@pytest.fixture(scope="module")
def fuzz_payloads(field):
    """One clean payload per codec, compressed once for the whole matrix."""
    return {
        name: comp.compress(field, mode)
        for name, (comp, mode) in _FUZZ_CODECS.items()
    }


class TestFaultInjectionMatrix:
    """Every codec × every fault operator × seeded corruption campaigns.

    The contract: a corrupted payload either decodes (to garbage or a
    salvage) or raises a ``ReproError`` subclass.  Raw ``struct.error`` /
    ``IndexError``, unbounded allocations, and hangs are decoder bugs.
    """

    @pytest.mark.parametrize("codec", sorted(_FUZZ_CODECS))
    @pytest.mark.parametrize("operator", sorted(FAULT_OPERATORS))
    def test_codec_survives_operator(self, codec, operator, fuzz_payloads):
        comp, _ = _FUZZ_CODECS[codec]
        report = fuzz_decoder(
            comp.decompress,
            fuzz_payloads[codec],
            n=50,
            operators=[operator],
            seed=zlib.crc32(f"{codec}/{operator}".encode()) % 10_000,
            time_limit=20.0,
        )
        assert report.ok, f"{codec} × {operator}: {report.summary()}"

    @pytest.mark.parametrize("codec", sorted(_FUZZ_CODECS))
    def test_codec_survives_composed_faults(self, codec, fuzz_payloads):
        """Two stacked operators per case — compound damage."""
        comp, _ = _FUZZ_CODECS[codec]
        report = fuzz_decoder(
            comp.decompress, fuzz_payloads[codec], n=50, n_ops=2, seed=777
        )
        assert report.ok, f"{codec} composed: {report.summary()}"

    @pytest.mark.fuzz
    @pytest.mark.skipif(
        os.environ.get("REPRO_FUZZ_DEEP") != "1",
        reason="deep fuzz is opt-in: set REPRO_FUZZ_DEEP=1 and run -m fuzz",
    )
    @pytest.mark.parametrize("codec", sorted(_FUZZ_CODECS))
    def test_deep_fuzz(self, codec, fuzz_payloads):
        """The acceptance campaign: 500 seeded corruptions per codec.

        ``REPRO_FUZZ_N`` scales the campaign (CI smoke runs use a
        smaller count; nightly runs can raise it).
        """
        comp, _ = _FUZZ_CODECS[codec]
        n = int(os.environ.get("REPRO_FUZZ_N", "500"))
        report = fuzz_decoder(comp.decompress, fuzz_payloads[codec], n=n, seed=0)
        assert report.ok, f"{codec} deep fuzz: {report.summary()}"

    def test_corrupt_is_deterministic(self, payload):
        a = corrupt(payload, seed=99, n_ops=3)
        b = corrupt(payload, seed=99, n_ops=3)
        assert a.payload == b.payload and a.applied == b.applied


# --- lossless-layer fault injection -----------------------------------------

#: Every lossless stream tag the backend can emit (or still decode),
#: fuzzed directly against the tag-dispatch decoder rather than through
#: the container, so corruption always lands inside the codec payloads.
_LOSSLESS_METHODS = ("stored", "rle", "huffman", "rle+huffman", "lz77", "ac", "rc")


@pytest.fixture(scope="module")
def lossless_payloads(field):
    """One clean payload per lossless method over SPECK-like bytes."""
    from repro import lossless

    raw = field.astype(np.float32).tobytes()[: 1 << 14]
    return {m: lossless.compress(raw, method=m) for m in _LOSSLESS_METHODS}


class TestLosslessFaultInjection:
    """The vectorized decoders (Huffman window tables, rANS lanes, LZ77
    batch unpack) must uphold the same contract as the container layer:
    corrupted payloads decode or raise ``ReproError`` — never hang, crash,
    or allocate unboundedly."""

    @pytest.mark.parametrize("method", _LOSSLESS_METHODS)
    def test_method_survives_corruption(self, method, lossless_payloads):
        from repro import lossless

        report = fuzz_decoder(
            lossless.decompress,
            lossless_payloads[method],
            n=100,
            seed=zlib.crc32(f"lossless/{method}".encode()) % 10_000,
            time_limit=20.0,
        )
        assert report.ok, f"lossless/{method}: {report.summary()}"

    @pytest.mark.parametrize("method", _LOSSLESS_METHODS)
    def test_method_survives_composed_faults(self, method, lossless_payloads):
        from repro import lossless

        report = fuzz_decoder(
            lossless.decompress, lossless_payloads[method], n=100, n_ops=2, seed=31
        )
        assert report.ok, f"lossless/{method} composed: {report.summary()}"


# --- container v2 integrity and salvage ------------------------------------


@pytest.fixture(scope="module")
def chunked_payload(field):
    """A v2 container with 8 chunks (16^3 split into 8^3 tiles)."""
    t = repro.tolerance_from_idx(field, 14)
    return repro.compress(field, repro.PweMode(t), chunk_shape=8).payload


class TestContainerV2Integrity:
    def test_header_bit_flip_detected(self, chunked_payload):
        """Any single-bit flip in the CRC-covered header must be caught."""
        rng = np.random.default_rng(0)
        parsed = parse_container(chunked_payload)
        head_len = len(chunked_payload) - sum(len(s) for s in parsed.streams)
        for _ in range(16):
            pos = int(rng.integers(8, head_len))
            bit = int(rng.integers(0, 8))
            bad = bytearray(chunked_payload)
            bad[pos] ^= 1 << bit
            with pytest.raises(ReproError):
                repro.decompress(bytes(bad))

    def test_each_chunk_bit_flip_detected(self, chunked_payload):
        """A single-bit flip inside any chunk stream trips that chunk's CRC."""
        parsed = parse_container(chunked_payload)
        head_len = len(chunked_payload) - sum(len(s) for s in parsed.streams)
        offset = head_len
        for idx, stream in enumerate(parsed.streams):
            bad = bytearray(chunked_payload)
            bad[offset + len(stream) // 2] ^= 0x01
            with pytest.raises(IntegrityError, match=f"chunk {idx} "):
                repro.decompress(bytes(bad))
            offset += len(stream)

    def test_salvage_preserves_intact_chunks_exactly(self, field, chunked_payload):
        """Corrupting one chunk must not perturb any other chunk's bytes."""
        clean = repro.decompress(chunked_payload)
        parsed = parse_container(chunked_payload)
        head_len = len(chunked_payload) - sum(len(s) for s in parsed.streams)
        target = 3
        offset = head_len + sum(len(s) for s in parsed.streams[:target])
        bad = bytearray(chunked_payload)
        bad[offset + 5] ^= 0xFF
        result = repro.decompress(bytes(bad), on_error="salvage")
        report = result.report
        assert report.failed_chunks == [target]
        assert report.crc_mismatches == [target]
        sel = tuple(slice(a, b) for a, b in parsed.chunks[target].bounds)
        assert np.isnan(result.data[sel]).all()
        mask = np.ones(field.shape, dtype=bool)
        mask[sel] = False
        assert np.array_equal(result.data[mask], clean[mask])

    def test_salvage_clean_payload_reports_ok(self, chunked_payload):
        result = repro.decompress(chunked_payload, on_error="salvage")
        assert result.report.ok
        assert result.report.failed_chunks == []
        assert not np.isnan(result.data).any()

    def test_salvage_custom_fill_value(self, chunked_payload):
        parsed = parse_container(chunked_payload)
        head_len = len(chunked_payload) - sum(len(s) for s in parsed.streams)
        bad = bytearray(chunked_payload)
        bad[head_len + 2] ^= 0xFF
        result = repro.decompress(bytes(bad), on_error="salvage", fill_value=0.0)
        sel = tuple(slice(a, b) for a, b in parsed.chunks[0].bounds)
        assert (result.data[sel] == 0.0).all()

    def test_decode_result_is_array_like(self, chunked_payload):
        result = repro.decompress(chunked_payload, on_error="salvage")
        assert np.asarray(result).shape == (16, 16, 16)


# --- container v4 (mixed-codec chunk table) integrity and salvage -----------


@pytest.fixture(scope="module")
def mixed_payload(field):
    """A v4 container whose chunk table mixes szx and sperr tags."""
    rough = np.array(field)
    rough[8:] += np.random.default_rng(5).normal(
        0.0, 0.5 * float(field.max() - field.min()), size=rough[8:].shape
    )
    t = 1e-5 * float(rough.max() - rough.min())
    payload = repro.compress(
        rough, repro.PweMode(t), chunk_shape=8, codec="adaptive"
    ).payload
    tags = parse_container(payload).codec_tags
    assert tags is not None and len(set(tags)) > 1, "fixture must mix codecs"
    return payload


class TestContainerV4Integrity:
    """The adaptive chunk table keeps the v2 integrity contract: tags are
    CRC-covered, per-chunk damage is localized, and corrupted mixed
    payloads never escape the error hierarchy."""

    def test_codec_tag_bit_flip_detected(self, mixed_payload):
        # The tag column sits inside the CRC-covered header; flipping a
        # tag must be caught before any chunk decode trusts it.
        parsed = parse_container(mixed_payload)
        head_len = len(mixed_payload) - sum(len(s) for s in parsed.streams)
        n = len(parsed.streams)
        # tag column: n bytes before the 12-byte mask-blob record that
        # ends the (CRC-covered) header; the mask blob itself is empty
        # for this all-finite fixture.
        for pos in range(head_len - 12 - n, head_len - 12):
            bad = bytearray(mixed_payload)
            bad[pos] ^= 0x01
            with pytest.raises(ReproError):
                repro.decompress(bytes(bad))

    def test_szx_chunk_bit_flip_detected_and_salvageable(self, mixed_payload):
        parsed = parse_container(mixed_payload)
        assert parsed.codec_tags is not None
        target = parsed.codec_tags.index(1)  # first szx-tagged chunk
        head_len = len(mixed_payload) - sum(len(s) for s in parsed.streams)
        offset = head_len + sum(len(s) for s in parsed.streams[:target])
        bad = bytearray(mixed_payload)
        bad[offset + len(parsed.streams[target]) // 2] ^= 0xFF
        with pytest.raises(ReproError):
            repro.decompress(bytes(bad))
        result = repro.decompress(bytes(bad), on_error="salvage")
        assert result.report.failed_chunks == [target]
        sel = tuple(slice(a, b) for a, b in parsed.chunks[target].bounds)
        assert np.isnan(result.data[sel]).all()

    def test_mixed_container_survives_fault_operators(self, mixed_payload):
        report = fuzz_decoder(
            repro.decompress, mixed_payload, n=100, seed=4242, time_limit=20.0
        )
        assert report.ok, f"v4 container fuzz: {report.summary()}"

    def test_mixed_container_survives_composed_faults(self, mixed_payload):
        report = fuzz_decoder(
            repro.decompress, mixed_payload, n=100, n_ops=2, seed=515
        )
        assert report.ok, f"v4 composed fuzz: {report.summary()}"


class TestV1Compatibility:
    """Golden v1 payloads (pre-CRC format) must keep decoding bit-identically."""

    def test_golden_v1_parses_as_version_1(self):
        payload = (DATA_DIR / "container_v1.sperr").read_bytes()
        parsed = parse_container(payload)
        assert parsed.format_version == 1
        assert parsed.chunk_crcs is None
        assert parsed.shape == (16, 16, 16)

    def test_golden_v1_decodes_bit_identically(self):
        payload = (DATA_DIR / "container_v1.sperr").read_bytes()
        expected = np.load(DATA_DIR / "container_v1_decode.npy")
        recon = repro.decompress(payload)
        assert recon.dtype == expected.dtype
        assert np.array_equal(recon, expected)

    def test_golden_v1_salvage_mode_works(self):
        payload = (DATA_DIR / "container_v1.sperr").read_bytes()
        result = repro.decompress(payload, on_error="salvage")
        assert result.report.format_version == 1
        assert result.report.ok


def test_no_raw_valueerror_raises_in_library():
    """Lint: the library must raise its own hierarchy, never bare
    ``ValueError``/``Exception`` (satellite of the error-contract work)."""
    src_root = Path(repro.__file__).parent
    pattern = re.compile(r"raise (ValueError|Exception)\b")
    offenders = []
    for path in sorted(src_root.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if pattern.search(line):
                offenders.append(f"{path.relative_to(src_root)}:{lineno}: {line.strip()}")
    assert not offenders, "raw raises found:\n" + "\n".join(offenders)
